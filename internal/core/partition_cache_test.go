package core

import (
	"testing"

	"cwcs/internal/vjob"
)

// cacheCluster builds the two-slice reuse scenario: two fenced pairs
// of 1-CPU nodes, each hosting one busy VM and one idle VM on the same
// node, so raising an idle VM's demand overloads its node and the only
// fix is an intra-slice migration.
func cacheCluster(t *testing.T) (*vjob.Configuration, []PlacementRule, []*vjob.VJob) {
	t.Helper()
	cfg := mkCluster(4, 1, 4096)
	ja := vjob.NewVJob("ja", 0,
		vjob.NewVM("a1", "ja", 1, 1024), vjob.NewVM("a2", "ja", 0, 1024))
	jb := vjob.NewVJob("jb", 0,
		vjob.NewVM("b1", "jb", 1, 1024), vjob.NewVM("b2", "jb", 0, 1024))
	for _, v := range append(ja.VMs, jb.VMs...) {
		cfg.AddVM(v)
	}
	mustRun(t, cfg, "a1", "n00")
	mustRun(t, cfg, "a2", "n00")
	mustRun(t, cfg, "b1", "n02")
	mustRun(t, cfg, "b2", "n02")
	rules := []PlacementRule{
		Fence{VMs: []string{"a1", "a2"}, Nodes: []string{"n00", "n01"}},
		Fence{VMs: []string{"b1", "b2"}, Nodes: []string{"n02", "n03"}},
	}
	return cfg, rules, []*vjob.VJob{ja, jb}
}

// TestPartitionCacheReusedAcrossWakeUps: consecutive wake-ups whose
// events carry no arrivals/departures reuse the carve — including
// across an executed switch whose plan came from slice solves.
func TestPartitionCacheReusedAcrossWakeUps(t *testing.T) {
	cfg, rules, jobs := cacheCluster(t)
	l, a := eventLoop(cfg, rules, jobs)
	l.Start(a)
	a.run(1)

	// First overload: slice A. The wake-up carves (and caches).
	cfg.VM("a2").SetCPUDemand(1)
	l.Notify(a, Event{Kind: LoadChange, At: a.now, VMs: []string{"a2"}})
	a.run(20)
	if cfg.HostOf("a2") != "n01" {
		t.Fatalf("a2 on %s (want n01)", cfg.HostOf("a2"))
	}
	if l.Stats.PartitionReuses != 0 {
		t.Fatalf("premature reuse: %d", l.Stats.PartitionReuses)
	}

	// Second overload: slice B. No structural event happened and the
	// previous switch was slice-derived, so the carve is reused.
	cfg.VM("b2").SetCPUDemand(1)
	l.Notify(a, Event{Kind: LoadChange, At: a.now, VMs: []string{"b2"}})
	a.run(40)
	if cfg.HostOf("b2") != "n03" {
		t.Fatalf("b2 on %s (want n03)", cfg.HostOf("b2"))
	}
	if l.Stats.PartitionReuses == 0 {
		t.Fatal("carve not reused on the structurally-quiet wake-up")
	}
	if !cfg.Viable() {
		t.Fatalf("non-viable: %v", cfg.Violations())
	}
}

// TestPartitionCacheInvalidatedByArrival: a structural event forces a
// re-carve.
func TestPartitionCacheInvalidatedByArrival(t *testing.T) {
	cfg, rules, jobs := cacheCluster(t)
	l, a := eventLoop(cfg, rules, jobs)
	l.Start(a)
	a.run(1)

	cfg.VM("a2").SetCPUDemand(1)
	l.Notify(a, Event{Kind: LoadChange, At: a.now, VMs: []string{"a2"}})
	a.run(20)

	// An arrival lands in slice B and overloads it: the wake-up must
	// re-carve, not reuse.
	arrive(t, cfg, "b3", "jb", "n02")
	l.Notify(a, Event{Kind: VMArrival, At: a.now, VMs: []string{"b3"}})
	a.run(40)
	if l.Stats.PartitionReuses != 0 {
		t.Fatalf("stale carve reused across an arrival: %d", l.Stats.PartitionReuses)
	}
	if !cfg.Viable() {
		t.Fatalf("non-viable: %v", cfg.Violations())
	}
}

// TestPartitionCacheInvalidatedByDrainGeneration: mutating the drain
// set without any event still invalidates via the generation stamp, so
// the re-carve sees the new Drained rule's bindings.
func TestPartitionCacheInvalidatedByDrainGeneration(t *testing.T) {
	cfg, rules, jobs := cacheCluster(t)
	l, a := eventLoop(cfg, rules, jobs)
	l.Drains = &DrainSet{}
	l.Start(a)
	a.run(1)

	cfg.VM("a2").SetCPUDemand(1)
	l.Notify(a, Event{Kind: LoadChange, At: a.now, VMs: []string{"a2"}})
	a.run(20)

	// Drain n02 without a NodeDown event (belt-and-suspenders: the
	// control plane always sends one, but the cache must not depend on
	// it). Any later wake-up re-carves — seeing the Drained rule — and
	// evacuates b1 and b2 to n03 (b2 is idle, so both fit).
	l.Drains.Drain("n02")
	l.Notify(a, Event{Kind: LoadChange, At: a.now, VMs: []string{"b2"}})
	a.run(60)
	if l.Stats.PartitionReuses != 0 {
		t.Fatalf("stale carve reused across a drain: %d", l.Stats.PartitionReuses)
	}
	if n := len(cfg.RunningOn("n02")); n != 0 {
		t.Fatalf("%d VMs still on the drained node", n)
	}
	if !cfg.Viable() {
		t.Fatalf("non-viable: %v", cfg.Violations())
	}
}
