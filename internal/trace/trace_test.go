package trace

import (
	"strings"
	"testing"
)

func TestPlotRender(t *testing.T) {
	p := NewPlot("costs", "vms", "cost")
	a := p.AddSeries("ffd")
	b := p.AddSeries("entropy")
	for i := 0; i < 10; i++ {
		a.Add(float64(i), float64(i*i))
		b.Add(float64(i), float64(i))
	}
	out := p.Render(40, 10)
	for _, want := range []string{"costs", "ffd", "entropy", "+", "x", "vms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestPlotEmpty(t *testing.T) {
	p := NewPlot("empty", "x", "y")
	p.AddSeries("nothing")
	if !strings.Contains(p.Render(20, 8), "(no data)") {
		t.Fatal("empty plot should say so")
	}
}

func TestPlotDegenerate(t *testing.T) {
	p := NewPlot("flat", "x", "y")
	s := p.AddSeries("s")
	s.Add(1, 5)
	s.Add(1, 5)           // single distinct point: ranges are zero
	out := p.Render(5, 3) // also exercises minimum size clamping
	if out == "" {
		t.Fatal("degenerate plot crashed")
	}
}

func TestPlotCSV(t *testing.T) {
	p := NewPlot("t", "x", "y")
	s := p.AddSeries("s1")
	s.Add(1, 2)
	s.Add(3, 4.5)
	csv := p.CSV()
	if !strings.Contains(csv, "s1,1,2\n") || !strings.Contains(csv, "s1,3,4.5\n") {
		t.Fatalf("csv = %q", csv)
	}
	if !strings.HasPrefix(csv, "series,x,y\n") {
		t.Fatal("missing header")
	}
}

func TestGantt(t *testing.T) {
	g := NewGantt()
	g.Mark("job1", 0, 50)
	g.Mark("job2", 50, 100)
	g.Mark("job1", 80, 100) // resumed later
	out := g.Render(20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	if !strings.HasPrefix(lines[0], "job1") || !strings.HasPrefix(lines[1], "job2") {
		t.Fatalf("row order: %v", lines)
	}
	// job1 active in first half and the tail.
	row1 := lines[0][13:]
	if row1[0] != '#' || row1[19] != '#' {
		t.Fatalf("job1 row = %q", row1)
	}
	if row1[12] != '.' {
		t.Fatalf("job1 gap missing: %q", row1)
	}
}

func TestGanttEmpty(t *testing.T) {
	if NewGantt().Render(30) != "(empty)\n" {
		t.Fatal("empty gantt")
	}
}

func TestGanttTinyInterval(t *testing.T) {
	g := NewGantt()
	g.Mark("j", 0, 1000)
	g.Mark("k", 1, 2) // shorter than one cell: still visible
	out := g.Render(10)
	if !strings.Contains(out, "k") {
		t.Fatal("row missing")
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "k") && !strings.Contains(line, "#") {
			t.Fatalf("tiny interval invisible: %q", line)
		}
	}
}
