// Batchcompare: the §5.2 experiment in miniature. The same NAS-Grid
// style workload (vjobs of gang-scheduled VMs) runs twice on the same
// simulated cluster: once under a static FCFS resource manager that
// books a full processing unit per VM and never preempts, and once
// under Entropy's dynamic consolidation with cluster-wide context
// switches. The run prints both completion times and the utilization
// gap — the paper reports a 40% reduction.
package main

import (
	"fmt"
	"time"

	"cwcs/internal/experiments"
	"cwcs/internal/sched"
)

func main() {
	opts := experiments.DefaultClusterOptions()
	opts.VJobs = 6
	opts.WorkScale = 0.5 // keep the demo around a second of real time
	opts.Timeout = time.Second

	fmt.Println("running the static FCFS baseline...")
	fopts := opts
	fopts.PinRunning = true // a static RMS never migrates
	fcfs := experiments.RunCluster(sched.StaticFCFS{ReserveFullCPU: true}, fopts)

	fmt.Println("running Entropy's dynamic consolidation...")
	entropy := experiments.RunCluster(sched.Consolidation{}, opts)

	fmt.Println()
	fmt.Println("allocation under static FCFS:")
	fmt.Print(fcfs.Gantt.Render(64))
	fmt.Println()
	fmt.Println("allocation under Entropy:")
	fmt.Print(entropy.Gantt.Render(64))

	fmt.Println()
	fmt.Printf("completion: FCFS %.0f s (%.1f min) vs Entropy %.0f s (%.1f min) -> %.0f%% faster\n",
		fcfs.Completion, fcfs.Completion/60,
		entropy.Completion, entropy.Completion/60,
		100*(1-entropy.Completion/fcfs.Completion))
	fmt.Printf("Entropy performed %d context switches (mean %.0f s): %v\n",
		len(entropy.Records), entropy.MeanSwitchDuration(), entropy.ActionCounts)
	fmt.Printf("transfers: %d local, %d remote\n", entropy.LocalOps, entropy.RemoteOps)
}
