package sim

import (
	"math/rand"
	"sort"
)

// This file holds the chaos-scenario injectors: deterministic,
// rng-stream-compatible schedule generators for correlated node
// failures (rack bursts), flapping nodes, and windowed event loss.
// Like FailureStorm they only *plan* adversity — the experiments
// harness wires the plans into the control loop (drain rules, NodeDown
// / NodeUp notifications, a lossy event feed), so the injectors stay
// free of any dependency on the loop. Every generator draws from the
// rng it is handed in a documented order and draws nothing when asked
// for nothing, so adding a scenario to a seeded study never shifts the
// streams of the published workload generators.

// Burst is one correlated failure: every node of one rack — a fence
// scope, the natural correlation domain of a shared switch or PDU —
// goes down together at At and, when RecoverAt is non-zero, returns
// at RecoverAt.
type Burst struct {
	// At is when the rack fails; RecoverAt when it returns (0 = the
	// outage outlives the scenario).
	At, RecoverAt float64
	// Nodes are the members of the failed rack.
	Nodes []string
}

// BurstOptions parameterizes PlanBursts.
type BurstOptions struct {
	// Count is how many bursts to draw; 0 plans nothing (and consumes
	// no rng).
	Count int
	// From and Until delimit the window the failure instants are drawn
	// from, uniformly. Until <= From pins every burst to From.
	From, Until float64
	// Outage is how long each failed rack stays down; 0 means the
	// outage never ends within the scenario.
	Outage float64
}

// PlanBursts draws Count correlated rack failures: for each burst one
// rack uniformly among racks, then one failure instant uniformly in
// [From, Until). Two draws per burst, in that order, so a seeded
// schedule is reproducible from the options alone; the returned
// bursts are sorted by failure time. A nil/empty rack list or a
// non-positive count plans nothing and leaves rng untouched.
func PlanBursts(rng *rand.Rand, racks [][]string, o BurstOptions) []Burst {
	if o.Count <= 0 || len(racks) == 0 {
		return nil
	}
	width := o.Until - o.From
	if width < 0 {
		width = 0
	}
	out := make([]Burst, 0, o.Count)
	for i := 0; i < o.Count; i++ {
		rack := racks[rng.Intn(len(racks))]
		at := o.From + rng.Float64()*width
		b := Burst{At: at, Nodes: append([]string(nil), rack...)}
		if o.Outage > 0 {
			b.RecoverAt = at + o.Outage
		}
		out = append(out, b)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// FlapTransition is one edge of a flapping node's health signal.
type FlapTransition struct {
	// At is the transition instant.
	At float64
	// Node is the flapping node.
	Node string
	// Down reports the direction: true = the node just failed, false =
	// it just recovered.
	Down bool
}

// FlapOptions parameterizes PlanFlaps.
type FlapOptions struct {
	// Nodes are the flappers. Empty plans nothing (and consumes no
	// rng).
	Nodes []string
	// From and Until delimit the flap window.
	From, Until float64
	// MeanDown and MeanUp are the mean lengths of the down and up
	// intervals (exponentially distributed).
	MeanDown, MeanUp float64
}

// PlanFlaps draws, for each node in list order, an alternating
// down/up schedule inside [From, Until): the node stays healthy for
// an Exp(MeanUp) interval, fails for an Exp(MeanDown) interval, and
// so on until the window closes. A node left down at Until gets a
// final recovery edge there, so every plan ends with the cluster
// whole and the scenario can converge. Transitions are returned
// sorted by (time, node); rng is consumed per node in list order, so
// reordering the node list is the only way to change a seeded
// schedule.
func PlanFlaps(rng *rand.Rand, o FlapOptions) []FlapTransition {
	if len(o.Nodes) == 0 || o.Until <= o.From {
		return nil
	}
	var out []FlapTransition
	for _, n := range o.Nodes {
		t := o.From + rng.ExpFloat64()*o.MeanUp
		down := true
		for t < o.Until {
			out = append(out, FlapTransition{At: t, Node: n, Down: down})
			if down {
				t += rng.ExpFloat64() * o.MeanDown
			} else {
				t += rng.ExpFloat64() * o.MeanUp
			}
			down = !down
		}
		// down flags the direction of the *next* edge: when the next
		// edge would have been a recovery, the node is down right now
		// and the window must close it.
		if !down {
			out = append(out, FlapTransition{At: o.Until, Node: n, Down: false})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// EventLoss is a windowed monitoring-event drop schedule: inside
// [From, Until) each offered event is silently discarded with
// probability Fraction — the partition-style staleness scenario where
// the cluster keeps changing but the control loop's event feed goes
// quiet. Until <= From makes the loss permanent (the degenerate
// flat-loss schedule, like FailureStorm's flat rate).
type EventLoss struct {
	// Fraction is the drop probability in force inside the window.
	Fraction float64
	// From and Until delimit the loss window.
	From, Until float64
}

// Rate is the drop probability in force at virtual time now.
func (l EventLoss) Rate(now float64) float64 {
	if l.Until > l.From && (now < l.From || now >= l.Until) {
		return 0
	}
	return l.Fraction
}

// Dropper returns the drop filter: one rng variate per offered event,
// whatever the rate in force — the same stream shape as a flat-rate
// filter, so seeded scenarios stay comparable when a window is added
// or removed. A Fraction of 0 never drops (the no-op identity) while
// still consuming the identical stream.
func (l EventLoss) Dropper(rng *rand.Rand) func(now float64) bool {
	return func(now float64) bool {
		return rng.Float64() < l.Rate(now)
	}
}
