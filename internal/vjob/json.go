package vjob

import (
	"encoding/json"
	"fmt"

	"cwcs/internal/resources"
)

// configJSON is the serialized form of a Configuration, the format
// understood by cmd/planviz and cmd/entropyd.
type configJSON struct {
	Nodes []nodeJSON `json:"nodes"`
	VMs   []vmJSON   `json:"vms"`
}

// The paper's two dimensions keep their dedicated fields; extra
// registered dimensions (net, disk) ride in the optional "resources"
// object, zero dimensions omitted — so a 2-D configuration encodes to
// exactly the bytes it did before the multi-resource model existed.
type nodeJSON struct {
	Name      string         `json:"name"`
	CPU       int            `json:"cpu"`
	Memory    int            `json:"memory"`
	Resources map[string]int `json:"resources,omitempty"`
}

type vmJSON struct {
	Name      string         `json:"name"`
	VJob      string         `json:"vjob,omitempty"`
	CPU       int            `json:"cpu"`
	Memory    int            `json:"memory"`
	Resources map[string]int `json:"resources,omitempty"`
	State     string         `json:"state"`
	Node      string         `json:"node,omitempty"`
}

// extraMap extracts the non-zero extra dimensions of v as a wire map,
// nil when the vector lives in the 2-D fast path. encoding/json sorts
// map keys, so the encoding is deterministic.
func extraMap(v resources.Vector) map[string]int {
	var out map[string]int
	for _, k := range resources.ExtraKinds() {
		if x := v.Get(k); x != 0 {
			if out == nil {
				out = make(map[string]int)
			}
			out[k.String()] = x
		}
	}
	return out
}

// vectorOf rebuilds a full vector from the dedicated cpu/memory fields
// plus the extras map through resources.FromWire, the single home of
// the interchange format's trust boundary (unknown kinds, duplicated
// base kinds and negative quantities are rejected).
func vectorOf(what string, cpu, memory int, extras map[string]int) (resources.Vector, error) {
	v, err := resources.FromWire(cpu, memory, extras)
	if err != nil {
		return resources.Vector{}, fmt.Errorf("vjob: %s: %w", what, err)
	}
	return v, nil
}

// MarshalJSON encodes the configuration with nodes and VMs in
// deterministic order.
func (c *Configuration) MarshalJSON() ([]byte, error) {
	out := configJSON{}
	for _, n := range c.Nodes() {
		out.Nodes = append(out.Nodes, nodeJSON{
			Name:      n.Name,
			CPU:       n.CPU(),
			Memory:    n.Memory(),
			Resources: extraMap(n.Capacity),
		})
	}
	for _, v := range c.VMs() {
		out.VMs = append(out.VMs, vmJSON{
			Name:      v.Name,
			VJob:      v.VJob,
			CPU:       v.CPUDemand(),
			Memory:    v.MemoryDemand(),
			Resources: extraMap(v.Demand),
			State:     c.StateOf(v.Name).String(),
			Node:      c.LocationOf(v.Name),
		})
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes a configuration previously produced by
// MarshalJSON (or written by hand; see cmd/planviz -example).
func (c *Configuration) UnmarshalJSON(data []byte) error {
	var in configJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	*c = *NewConfiguration()
	for _, n := range in.Nodes {
		if n.Name == "" {
			// An empty node name would collide with the "no placement"
			// encoding (the omitempty on vmJSON.Node) and break the
			// round trip.
			return fmt.Errorf("vjob: node with empty name")
		}
		cap, err := vectorOf("node "+n.Name, n.CPU, n.Memory, n.Resources)
		if err != nil {
			return err
		}
		c.AddNode(NewNodeRes(n.Name, cap))
	}
	for _, v := range in.VMs {
		if v.Name == "" {
			return fmt.Errorf("vjob: VM with empty name")
		}
		demand, err := vectorOf("VM "+v.Name, v.CPU, v.Memory, v.Resources)
		if err != nil {
			return err
		}
		c.AddVM(NewVMRes(v.Name, v.VJob, demand))
		switch v.State {
		case "running":
			if err := c.SetRunning(v.Name, v.Node); err != nil {
				return err
			}
		case "sleeping":
			if err := c.SetSleeping(v.Name, v.Node); err != nil {
				return err
			}
		case "waiting", "":
		default:
			return fmt.Errorf("vjob: VM %s has unknown state %q", v.Name, v.State)
		}
	}
	return nil
}
