package duration

import (
	"math"
	"testing"
	"time"

	"cwcs/internal/plan"
	"cwcs/internal/resources"
	"cwcs/internal/vjob"
)

// TestNominalRatesMatchPlanConstants: the planner's static admission
// rates (plan.*RateMbps) must be the rates the Default() calibration
// implies, or the planner and the simulator would disagree about what
// saturates a NIC.
func TestNominalRatesMatchPlanConstants(t *testing.T) {
	m := Default()
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"migrate", m.MigrateSpec(0).NominalMbps, plan.MigrateRateMbps},
		{"suspend+scp", m.SuspendSpec(0, SCP).NominalMbps, plan.SuspendPushRateMbps},
		{"resume+scp", m.ResumeSpec(0, SCP).NominalMbps, plan.ResumePushRateMbps},
	}
	for _, c := range cases {
		if math.Abs(c.got-c.want) > 1e-6*c.want {
			t.Errorf("%s nominal rate = %v, want %v", c.name, c.got, c.want)
		}
	}
}

// TestDurationAtNominalReproducesCalibration: at the nominal wire rate
// (or with bandwidth unmodeled, bw <= 0) the decomposition returns
// exactly the §2.3 durations — the compile-away guarantee.
func TestDurationAtNominalReproducesCalibration(t *testing.T) {
	m := Default()
	const tol = time.Millisecond
	for _, mem := range []int{0, 256, 1024, 2048} {
		cases := []struct {
			name   string
			spec   TransferSpec
			legacy time.Duration
		}{
			{"migrate", m.MigrateSpec(mem), m.Migrate(mem)},
			{"suspend+scp", m.SuspendSpec(mem, SCP), m.Suspend(mem, SCP)},
			{"suspend+rsync", m.SuspendSpec(mem, Rsync), m.Suspend(mem, Rsync)},
			{"resume+scp", m.ResumeSpec(mem, SCP), m.Resume(mem, SCP)},
		}
		for _, c := range cases {
			for _, bw := range []float64{0, -5, c.spec.NominalMbps, 1e9} {
				got := c.spec.DurationAt(bw)
				if diff := got - c.legacy; diff < -tol || diff > tol {
					t.Errorf("%s(mem=%d) at bw=%v: %v, legacy %v", c.name, mem, bw, got, c.legacy)
				}
			}
		}
	}
}

// TestDurationAtEdgeCases drives the bandwidth parameter through its
// corners: zero/negative bandwidth falls back to nominal, huge
// bandwidth is capped at nominal (the hypervisor copy loop, not the
// NIC, limits an idle fat link), a constrained link stretches only the
// wire part, and a zero-memory VM pays exactly the fixed part at any
// bandwidth.
func TestDurationAtEdgeCases(t *testing.T) {
	m := Default()
	cases := []struct {
		name string
		spec TransferSpec
		bw   float64
		want time.Duration
	}{
		{"zero bw -> nominal", m.MigrateSpec(1024), 0, m.Migrate(1024)},
		{"negative bw -> nominal", m.MigrateSpec(1024), -1, m.Migrate(1024)},
		{"huge bw capped at nominal", m.MigrateSpec(1024), 1e12, m.Migrate(1024)},
		// 1024 MiB = 8192 Mbit at 100 Mbit/s = 81.92 s + 5 s fixed.
		{"constrained link stretches wire part", m.MigrateSpec(1024), 100,
			secs(m.MigrateBaseSec + 1024*8/100.0)},
		// Crawling link: fixed 5 s + 8192 Mbit at 1 Mbit/s.
		{"crawling link", m.MigrateSpec(1024), 1,
			secs(m.MigrateBaseSec + 1024*8/1.0)},
		{"zero-memory VM, nominal", m.MigrateSpec(0), 0, secs(m.MigrateBaseSec)},
		{"zero-memory VM, slow link", m.MigrateSpec(0), 1, secs(m.MigrateBaseSec)},
		// Remote suspend fixed part carries the SCP factor: 2×5 s.
		{"suspend fixed part scales with factor", m.SuspendSpec(0, SCP), 0,
			secs(m.SuspendBaseSec * m.RemoteFactorSCP)},
	}
	const tol = time.Millisecond
	for _, c := range cases {
		if got := c.spec.DurationAt(c.bw); got-c.want < -tol || got-c.want > tol {
			t.Errorf("%s: DurationAt(%v) = %v, want %v", c.name, c.bw, got, c.want)
		}
	}
}

// TestAtConveniences: the *At wrappers agree with spec construction
// plus DurationAt, and reduce to the legacy methods at bw=0.
func TestAtConveniences(t *testing.T) {
	m := Default()
	if m.MigrateAt(1024, 0) != m.Migrate(1024) {
		t.Errorf("MigrateAt(1024, 0) = %v, want %v", m.MigrateAt(1024, 0), m.Migrate(1024))
	}
	if m.SuspendAt(1024, SCP, 0) != m.Suspend(1024, SCP) {
		t.Error("SuspendAt(…, 0) deviates from Suspend")
	}
	if m.ResumeAt(1024, Rsync, 0) != m.Resume(1024, Rsync) {
		t.Error("ResumeAt(…, 0) deviates from Resume")
	}
	// Heterogeneous endpoints: the duration is governed by min(src,dst)
	// residual bandwidth — the caller takes the min, the model must be
	// monotone in it.
	fast, slow := m.MigrateAt(1024, 800), m.MigrateAt(1024, math.Min(800, 50))
	if slow <= fast {
		t.Errorf("migration at min(src,dst)=50 (%v) not slower than at 800 (%v)", slow, fast)
	}
}

// TestActionTransfer: only cross-node movers carry a wire transfer,
// and the volume folds the extra dimensions via plan.TransferSize.
func TestActionTransfer(t *testing.T) {
	m := Default()
	vm := vjob.NewVM("v", "j", 1, 1024)
	cases := []struct {
		a     plan.Action
		ok    bool
		vol   int
		fixed time.Duration
		mbps  float64
		mode  Transfer
	}{
		{&plan.Migration{Machine: vm, Src: "n1", Dst: "n2"}, true, 1024, secs(m.MigrateBaseSec), 800, Local},
		{&plan.Suspend{Machine: vm, On: "n1", To: "n2"}, true, 1024, secs(m.SuspendBaseSec * 2), 80, SCP},
		{&plan.Suspend{Machine: vm, On: "n1", To: "n1"}, false, 0, 0, 0, Local},
		{&plan.Resume{Machine: vm, From: "n1", On: "n2"}, true, 1024, secs(m.ResumeBaseSec * 2), 100, SCP},
		{&plan.Resume{Machine: vm, From: "n1", On: "n1"}, false, 0, 0, 0, Local},
		{&plan.Run{Machine: vm, On: "n1"}, false, 0, 0, 0, Local},
		{&plan.Stop{Machine: vm, On: "n1"}, false, 0, 0, 0, Local},
		{nil, false, 0, 0, 0, Local},
	}
	for _, c := range cases {
		spec, ok := m.ActionTransfer(c.a)
		if ok != c.ok {
			t.Errorf("%v: ok = %v, want %v", c.a, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if spec.VolumeMiB != c.vol || spec.Fixed != c.fixed || spec.Tr != c.mode {
			t.Errorf("%v: spec = %+v, want vol %d fixed %v tr %v", c.a, spec, c.vol, c.fixed, c.mode)
		}
		if math.Abs(spec.NominalMbps-c.mbps) > 1e-6*c.mbps {
			t.Errorf("%v: nominal = %v, want %v", c.a, spec.NominalMbps, c.mbps)
		}
	}

	// A net/disk-heavy VM moves a bigger volume.
	d := resources.New(1, 1024)
	d.Set(resources.NetBW, 200)
	d.Set(resources.DiskIO, 76)
	heavy := vjob.NewVMRes("h", "j", d)
	spec, ok := m.ActionTransfer(&plan.Migration{Machine: heavy, Src: "n1", Dst: "n2"})
	if !ok || spec.VolumeMiB != 1024+200+76 {
		t.Fatalf("heavy VM volume = %d, want %d", spec.VolumeMiB, 1024+200+76)
	}
}

// TestNominalMbpsDegenerate: a zero per-MiB slope means the transfer
// is instant in the calibration; the spec degrades to fixed-only.
func TestNominalMbpsDegenerate(t *testing.T) {
	m := Default()
	m.MigratePerMiB = 0
	spec := m.MigrateSpec(4096)
	if spec.NominalMbps != 0 {
		t.Fatalf("nominal = %v, want 0", spec.NominalMbps)
	}
	if got := spec.DurationAt(100); got != secs(m.MigrateBaseSec) {
		t.Fatalf("degenerate DurationAt = %v, want fixed %v", got, secs(m.MigrateBaseSec))
	}
}
