package sched

import (
	"testing"

	"cwcs/internal/vjob"
)

func weightedCluster(t *testing.T) (*vjob.Configuration, []*vjob.VJob) {
	t.Helper()
	c := mkCluster(1, 1, 4096) // room for exactly one busy VM
	var jobs []*vjob.VJob
	for _, name := range []string{"cheap", "gold"} {
		j := vjob.NewVJob(name, len(jobs), vjob.NewVM(name+"-1", "", 1, 1024))
		c.AddVM(j.VMs[0])
		jobs = append(jobs, j)
	}
	return c, jobs
}

func TestWeightedPrefersHeavyJob(t *testing.T) {
	c, jobs := weightedCluster(t)
	w := &WeightedConsolidation{Weight: func(j *vjob.VJob) float64 {
		if j.Name == "gold" {
			return 10
		}
		return 1
	}}
	target := w.Decide(c, jobs)
	// "gold" outweighs "cheap" despite arriving later.
	if target["gold"] != vjob.Running || target["cheap"] != vjob.Waiting {
		t.Fatalf("target = %v", target)
	}
}

func TestWeightedUniformMatchesFCFS(t *testing.T) {
	c, jobs := weightedCluster(t)
	w := &WeightedConsolidation{}
	plain := Consolidation{}.Decide(c, jobs)
	weighted := w.Decide(c, jobs)
	for name, st := range plain {
		if weighted[name] != st {
			t.Fatalf("uniform weighted differs from FCFS: %v vs %v", weighted, plain)
		}
	}
}

func TestWeightedPreemptsLighterRunningJob(t *testing.T) {
	c, jobs := weightedCluster(t)
	// cheap runs; gold (heavier) arrives: cheap is suspended.
	if err := c.SetRunning("cheap-1", "n00"); err != nil {
		t.Fatal(err)
	}
	w := &WeightedConsolidation{Weight: func(j *vjob.VJob) float64 {
		if j.Name == "gold" {
			return 10
		}
		return 1
	}}
	target := w.Decide(c, jobs)
	if target["gold"] != vjob.Running {
		t.Fatalf("gold -> %v", target["gold"])
	}
	if target["cheap"] != vjob.Sleeping {
		t.Fatalf("cheap -> %v, want sleeping (preempted)", target["cheap"])
	}
}

func TestStarvationGuardPromotes(t *testing.T) {
	c, jobs := weightedCluster(t)
	w := &WeightedConsolidation{
		Weight: func(j *vjob.VJob) float64 {
			if j.Name == "gold" {
				return 10
			}
			return 1
		},
		StarvationRounds: 3,
	}
	// For three rounds gold wins; on the fourth, cheap has starved
	// long enough and is promoted.
	for round := 0; round < 3; round++ {
		target := w.Decide(c, jobs)
		if target["cheap"] != vjob.Waiting {
			t.Fatalf("round %d: cheap = %v", round, target["cheap"])
		}
	}
	target := w.Decide(c, jobs)
	if target["cheap"] != vjob.Running {
		t.Fatalf("starved vjob not promoted: %v", target)
	}
	if target["gold"] != vjob.Waiting && target["gold"] != vjob.Sleeping {
		t.Fatalf("gold = %v", target["gold"])
	}
	// Once it runs, its counter resets: gold wins again next round
	// (cheap keeps running is also acceptable FCFS-wise; what matters
	// is the counter reset, observable via no immediate re-promotion).
	if w.passedOver["cheap"] != 0 {
		t.Fatal("starvation counter not reset")
	}
}

func TestWeightedSkipsTerminated(t *testing.T) {
	c, _ := weightedCluster(t)
	gone := vjob.NewVJob("gone", 9, vjob.NewVM("gone-1", "", 1, 512))
	w := &WeightedConsolidation{}
	target := w.Decide(c, []*vjob.VJob{gone})
	if _, ok := target["gone"]; ok {
		t.Fatal("terminated vjob targeted")
	}
}
