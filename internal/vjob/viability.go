package vjob

import "fmt"

// Violation describes one node whose running VMs over-commit a
// resource, making the configuration non-viable.
type Violation struct {
	// Node is the overloaded node's name.
	Node string
	// Resource is "cpu" or "memory".
	Resource string
	// Demand is the aggregated demand of the running VMs.
	Demand int
	// Capacity is the node capacity for the resource.
	Capacity int
}

// Error renders the violation; Violation satisfies the error interface
// so callers can wrap a non-viable configuration into an error chain.
func (v Violation) Error() string {
	return fmt.Sprintf("node %s overloaded on %s: demand %d > capacity %d",
		v.Node, v.Resource, v.Demand, v.Capacity)
}

// Violations returns every capacity violation of the configuration, in
// node order. An empty slice means the configuration is viable: every
// running VM has access to sufficient memory and processing units
// (Section 3.2 of the paper). Waiting and sleeping VMs consume nothing.
func (c *Configuration) Violations() []Violation {
	var out []Violation
	for _, n := range c.Nodes() {
		cpu, mem := 0, 0
		for _, v := range c.RunningOn(n.Name) {
			cpu += v.CPUDemand
			mem += v.MemoryDemand
		}
		if cpu > n.CPU {
			out = append(out, Violation{Node: n.Name, Resource: "cpu", Demand: cpu, Capacity: n.CPU})
		}
		if mem > n.Memory {
			out = append(out, Violation{Node: n.Name, Resource: "memory", Demand: mem, Capacity: n.Memory})
		}
	}
	return out
}

// Viable reports whether every running VM has access to sufficient
// memory and CPU resources.
func (c *Configuration) Viable() bool { return len(c.Violations()) == 0 }

// VJobState derives the state of a vjob from the states of its VMs. A
// vjob is Running (resp. Sleeping, Waiting) when all its VMs are; it is
// Terminated when none of its VMs remain. During a context switch the
// VMs of a vjob may transiently disagree; in that case the function
// returns the state of the majority-progress rule used by the paper's
// monitoring: Running if any VM runs, else Sleeping if any sleeps, else
// Waiting.
func (c *Configuration) VJobState(j *VJob) State {
	if len(j.VMs) == 0 {
		return Terminated
	}
	counts := map[State]int{}
	present := 0
	for _, v := range j.VMs {
		if c.VM(v.Name) == nil {
			continue
		}
		present++
		counts[c.StateOf(v.Name)]++
	}
	switch {
	case present == 0:
		return Terminated
	case counts[Running] == present:
		return Running
	case counts[Sleeping] == present:
		return Sleeping
	case counts[Waiting] == present:
		return Waiting
	case counts[Running] > 0:
		return Running
	case counts[Sleeping] > 0:
		return Sleeping
	default:
		return Waiting
	}
}
