package api

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"cwcs/internal/core"
	"cwcs/internal/obs"
)

// traceTestbed wires a tracer through the loop, the actuator and the
// control plane, the way cmd/entropyd does when serving.
func traceTestbed(t *testing.T, nodes, cpu, mem int) (*testbed, *obs.Tracer) {
	t.Helper()
	b := newTestbed(t, nodes, cpu, mem)
	tr := obs.NewTracer(1024)
	b.loop.Trace = tr
	b.act.Trace = tr
	b.srv.Trace = tr
	return b, tr
}

// churn drives one reconfiguration episode: an overload arrival the
// loop has to migrate away, producing spans across the pipeline.
func (b *testbed) churn(t *testing.T) {
	t.Helper()
	b.place("ja", 2, 2, 1024, []string{"node000", "node000"})
	b.locked(func() {
		b.loop.Notify(b.act, core.Event{
			Kind: core.VMArrival, At: b.c.Now(),
			VMs: []string{"ja-vm0", "ja-vm1"}, Nodes: []string{"node000"},
		})
	})
	b.advance(60)
}

func TestTraceEndpointJSONL(t *testing.T) {
	b, _ := traceTestbed(t, 4, 2, 4096)
	b.churn(t)

	resp, err := http.Get(b.ts.URL + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type = %q, want application/x-ndjson", ct)
	}
	var spans []obs.SpanRecord
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var r obs.SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		spans = append(spans, r)
	}
	if len(spans) == 0 {
		t.Fatal("no spans after a reconfiguration episode")
	}
	kinds := map[string]bool{}
	var lastSeq uint64
	for _, s := range spans {
		kinds[s.Kind] = true
		if s.Seq <= lastSeq {
			t.Fatalf("spans not in Seq order: %d after %d", s.Seq, lastSeq)
		}
		lastSeq = s.Seq
	}
	for _, want := range []string{"reconfig", "wake", "solve", "action"} {
		if !kinds[want] {
			t.Errorf("no %s span in the trace (have %v)", want, kinds)
		}
	}

	// limit caps the span count and keeps the newest.
	limited := strings.Count(string(b.get(t, "/v1/trace?limit=2", http.StatusOK)), "\n")
	if limited != 2 {
		t.Errorf("limit=2 returned %d spans", limited)
	}
	b.get(t, "/v1/trace?limit=-1", http.StatusBadRequest)
	b.get(t, "/v1/trace?limit=many", http.StatusBadRequest)
	b.get(t, "/v1/trace?format=xml", http.StatusBadRequest)
}

func TestTraceEndpointChromeFormat(t *testing.T) {
	b, _ := traceTestbed(t, 4, 2, 4096)
	b.churn(t)

	body := b.get(t, "/v1/trace?format=chrome", http.StatusOK)
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
}

func TestTraceDisabledReturns501(t *testing.T) {
	b := newTestbed(t, 2, 2, 4096) // no tracer wired
	b.get(t, "/v1/trace", http.StatusNotImplemented)
	b.get(t, "/v1/watch", http.StatusNotImplemented)
}

// TestWatchStreamsLiveDrain subscribes a real SSE client, then drains
// a node through the control plane: the evacuation's spans must arrive
// over the stream while the loop keeps running.
func TestWatchStreamsLiveDrain(t *testing.T) {
	b, _ := traceTestbed(t, 4, 2, 4096)
	b.srv.WatchHeartbeat = 50 * time.Millisecond
	b.place("ja", 2, 1, 1024, []string{"node000", "node001"})
	b.advance(30) // bootstrap quietly

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", b.ts.URL+"/v1/watch", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q, want text/event-stream", ct)
	}

	events := make(chan string, 64)
	go func() {
		defer close(events)
		sc := bufio.NewScanner(resp.Body)
		var event string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				events <- event + " " + strings.TrimPrefix(line, "data: ")
			}
		}
	}()

	// The handshake arrives before any workload moves.
	select {
	case ev := <-events:
		if !strings.HasPrefix(ev, "hello ") {
			t.Fatalf("first event = %q, want hello", ev)
		}
	case <-ctx.Done():
		t.Fatal("no hello event")
	}

	// Drain node000: the loop evacuates it while the client listens.
	b.do(t, "POST", "/v1/nodes/node000/drain", nil, http.StatusAccepted)
	deadline := time.After(25 * time.Second)
	sawSpan := false
	for !sawSpan {
		b.advance(10)
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatal("stream closed before any span arrived")
			}
			if strings.HasPrefix(ev, "span ") {
				var payload obs.StreamEvent
				if err := json.Unmarshal([]byte(strings.TrimPrefix(ev, "span ")), &payload); err != nil {
					t.Fatalf("bad span payload %q: %v", ev, err)
				}
				if payload.Span.Kind == "" {
					t.Fatalf("span event without a kind: %+v", payload)
				}
				sawSpan = true
			}
		case <-deadline:
			t.Fatal("no span event while draining")
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	cancel() // client disconnects; the handler must return, Cleanup closes the server
}

// TestWatchSlowClientDroppedNotBlocking pins the backpressure policy
// end to end: a subscriber that never drains its 1-slot buffer is
// disconnected (its channel closes), the loop's publishing side never
// blocks, and /metrics counts the drop.
func TestWatchSlowClientDroppedNotBlocking(t *testing.T) {
	b, tr := traceTestbed(t, 4, 2, 4096)
	slow := tr.Subscribe(1) // never drained, like a stalled SSE client
	b.churn(t)              // many spans: must complete without blocking

	if tr.WatchDrops() == 0 {
		t.Fatal("slow subscriber was never dropped")
	}
	// Drain what was buffered; the channel must be closed behind it.
	closed := false
	for i := 0; i < 3 && !closed; i++ {
		_, ok := <-slow.C
		closed = !ok
	}
	if !closed {
		t.Fatal("slow subscriber's channel still open")
	}
	text := string(b.get(t, "/metrics", http.StatusOK))
	if v := metricValue(t, text, "cwcs_watch_drops_total"); v < 1 {
		t.Fatalf("cwcs_watch_drops_total = %g, want >= 1", v)
	}
}

// TestMetricsExpositionWellFormed parses every line of /metrics with
// the tracer's histograms present and checks the exposition contract:
// HELP and TYPE precede each metric family exactly once, names are
// [a-z_]+, counters end in _total, histogram buckets are cumulative
// and consistent with _count, and label values are quoted and escaped.
func TestMetricsExpositionWellFormed(t *testing.T) {
	b, tr := traceTestbed(t, 4, 2, 4096)
	b.churn(t)
	text := string(b.get(t, "/metrics", http.StatusOK))

	helped := map[string]bool{}
	typed := map[string]string{}
	samples := map[string]bool{}
	buckets := map[string][]float64{} // series key -> le bounds in order
	counts := map[string]map[string]float64{}

	for ln, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: empty line in exposition", ln+1)
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, found := strings.Cut(rest, " ")
			if !found || help == "" {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			if helped[name] {
				t.Fatalf("line %d: duplicate HELP for %s", ln+1, name)
			}
			helped[name] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, found := strings.Cut(rest, " ")
			if !found {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown type %q", ln+1, typ)
			}
			if _, dup := typed[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			if !helped[name] {
				t.Fatalf("line %d: TYPE %s before its HELP", ln+1, name)
			}
			typed[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		}

		name, labels, value := splitSample(t, ln+1, line)
		if !metricNameRe.MatchString(name) {
			t.Fatalf("line %d: metric name %q not [a-z_]+", ln+1, name)
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
			"_bucket"), "_sum"), "_count")
		family := base
		if typed[name] != "" {
			family = name
		}
		typ, ok := typed[family]
		if !ok {
			t.Fatalf("line %d: sample %s has no TYPE header", ln+1, name)
		}
		if typ == "counter" && !strings.HasSuffix(name, "_total") {
			t.Fatalf("line %d: counter %s does not end in _total", ln+1, name)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			t.Fatalf("line %d: bad sample value %q: %v", ln+1, value, err)
		}
		samples[family] = true

		if typ == "histogram" && strings.HasSuffix(name, "_bucket") {
			kv := parseLabels(t, ln+1, labels)
			le, ok := kv["le"]
			if !ok {
				t.Fatalf("line %d: histogram bucket without le: %q", ln+1, line)
			}
			key := family + "|" + kv["kind"]
			var bound float64
			if le == "+Inf" {
				bound = float64(1 << 62)
			} else {
				var err error
				if bound, err = strconv.ParseFloat(le, 64); err != nil {
					t.Fatalf("line %d: bad le %q", ln+1, le)
				}
			}
			n, _ := strconv.ParseFloat(value, 64)
			if prev := buckets[key]; len(prev) > 0 {
				lastCount := counts[key][fmt.Sprint(prev[len(prev)-1])]
				if bound <= prev[len(prev)-1] {
					t.Fatalf("line %d: le bounds not increasing for %s", ln+1, key)
				}
				if n < lastCount {
					t.Fatalf("line %d: bucket counts not cumulative for %s", ln+1, key)
				}
			}
			buckets[key] = append(buckets[key], bound)
			if counts[key] == nil {
				counts[key] = map[string]float64{}
			}
			counts[key][fmt.Sprint(bound)] = n
		}
	}

	// Every family with headers produced at least one sample and vice
	// versa. The coverage set is the registry itself plus the tracer's
	// histograms — not a hand-kept name list — so a family cannot ship
	// unrendered.
	for family := range typed {
		if !samples[family] {
			t.Errorf("family %s has headers but no samples", family)
		}
	}
	for _, f := range b.srv.metricFamilies() {
		if len(f.samples) == 0 {
			if typed[f.name] != "" {
				t.Errorf("family %s has no samples but left headers in the exposition", f.name)
			}
			continue
		}
		if !samples[f.name] {
			t.Errorf("registry family %s missing from exposition", f.name)
		}
	}
	for _, h := range tr.Histograms() {
		if name := h.Snapshot().Name; !samples[name] {
			t.Errorf("histogram %s missing from exposition", name)
		}
	}
	// Every histogram series ends in +Inf.
	for key, bounds := range buckets {
		if bounds[len(bounds)-1] != float64(1<<62) {
			t.Errorf("histogram %s has no +Inf bucket", key)
		}
	}
}

// TestConcurrentScrapesDuringChurn hammers the read endpoints from
// several goroutines while the simulator churns, as a -race probe of
// the lock-free ring and the histogram snapshots.
func TestConcurrentScrapesDuringChurn(t *testing.T) {
	b, tr := traceTestbed(t, 4, 2, 4096)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, path := range []string{"/metrics", "/v1/trace", "/v1/trace?format=chrome"} {
		wg.Add(1)
		go func(p string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(b.ts.URL + p)
				if err != nil {
					t.Errorf("GET %s: %v", p, err)
					return
				}
				_ = resp.Body.Close()
			}
		}(path)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			sub := tr.Subscribe(4)
			for i := 0; i < 2; i++ {
				select {
				case <-sub.C:
				case <-time.After(time.Millisecond):
				}
			}
			sub.Close()
		}
	}()

	b.churn(t)
	for i := 0; i < 5; i++ {
		b.locked(func() {
			b.loop.Notify(b.act, core.Event{
				Kind: core.LoadChange, At: b.c.Now(), VMs: []string{"ja-vm0"},
			})
		})
		b.advance(20)
	}
	close(stop)
	wg.Wait()
}

var metricNameRe = regexp.MustCompile(`^[a-z_]+$`)

// splitSample cuts one exposition sample into name, label block and
// value, validating the brace structure.
func splitSample(t *testing.T, ln int, line string) (name, labels, value string) {
	t.Helper()
	sp := strings.LastIndex(line, " ")
	if sp < 0 {
		t.Fatalf("line %d: no value separator: %q", ln, line)
	}
	series, value := line[:sp], line[sp+1:]
	if i := strings.IndexByte(series, '{'); i >= 0 {
		if !strings.HasSuffix(series, "}") {
			t.Fatalf("line %d: unterminated label block: %q", ln, line)
		}
		return series[:i], series[i+1 : len(series)-1], value
	}
	return series, "", value
}

// parseLabels decodes a label block, checking every value is a valid
// quoted Go string (the escaping %q guarantees).
func parseLabels(t *testing.T, ln int, block string) map[string]string {
	t.Helper()
	out := map[string]string{}
	for block != "" {
		eq := strings.IndexByte(block, '=')
		if eq < 0 || len(block) < eq+2 || block[eq+1] != '"' {
			t.Fatalf("line %d: malformed label block %q", ln, block)
		}
		key := block[:eq]
		rest := block[eq+1:]
		// Find the closing quote, honouring backslash escapes.
		end := -1
		for i := 1; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			t.Fatalf("line %d: unterminated label value in %q", ln, block)
		}
		val, err := strconv.Unquote(rest[:end+1])
		if err != nil {
			t.Fatalf("line %d: label %s value %q not a valid quoted string: %v", ln, key, rest[:end+1], err)
		}
		out[key] = val
		block = strings.TrimPrefix(rest[end+1:], ",")
	}
	return out
}
