package experiments

import (
	"bytes"
	"embed"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"cwcs/internal/core"
	"cwcs/internal/drivers"
	"cwcs/internal/duration"
	"cwcs/internal/monitor"
	"cwcs/internal/obs"
	"cwcs/internal/sched"
	"cwcs/internal/sim"
	"cwcs/internal/trace"
	"cwcs/internal/vjob"
	"cwcs/internal/workload"
)

// The chaos study replays the churn scenario under one adversarial
// condition per cell — correlated rack failures, flapping nodes,
// windowed monitoring-event loss, an action-failure storm — plus a
// trace-replay cell driving the loop from a recorded workload, and
// reports recovery-time distributions (p50/p95/max of violation
// episodes, monitor.WatchRecovery) and structural-breach counts per
// cell. The structural audit is always on: chaos that corrupts the
// configuration must fail the study, not just raise exposure.
//
// Every cell draws its chaos randomness from a dedicated stream at
// Seed+3 (bursts first, then flaps, then the event-loss filter), so
// the published Seed/Seed+1/Seed+2 streams of the workload generator,
// arrivals and action failures stay byte-identical to the churn and
// repair-storm studies.

// ChaosScenarios lists the study's cells in run order.
func ChaosScenarios() []string {
	return []string{ScenarioBaseline, ScenarioBursts, ScenarioFlapping, ScenarioLoss, ScenarioStorm, ScenarioReplay}
}

// The scenario cell names.
const (
	// ScenarioBaseline is the untouched churn scenario: the control
	// cell the chaos cells are read against.
	ScenarioBaseline = "baseline"
	// ScenarioBursts injects correlated rack failures: every node of a
	// randomly drawn rack (a fence scope — the correlation domain of a
	// shared switch or PDU) receives an urgent drain order and a
	// NodeDown event at once, and returns Outage seconds later.
	ScenarioBursts = "rack-bursts"
	// ScenarioFlapping drives a set of nodes through rapid down/up
	// cycles, stressing the threshold hysteresis and the loop's
	// partition-cache invalidation.
	ScenarioFlapping = "flapping"
	// ScenarioLoss silently drops a fraction of the monitoring events
	// inside a window — partition-style staleness the loop must
	// survive via the periodic reconciliation sweep re-offering what
	// the cluster still disagrees about.
	ScenarioLoss = "event-loss"
	// ScenarioStorm spikes the action-failure rate far beyond the 2%
	// baseline inside a window (sim.FailureStorm).
	ScenarioStorm = "action-storm"
	// ScenarioReplay feeds the loop from a committed trace file
	// instead of the synthetic generator (trace.StartReplay).
	ScenarioReplay = "trace-replay"
)

// ChaosOptions parameterizes the chaos study.
type ChaosOptions struct {
	// Churn is the underlying cluster/workload scenario (the chaos
	// cells perturb it; FailureRate stays the flat baseline).
	Churn ChurnOptions
	// Scenarios are the cells to run; empty means ChaosScenarios().
	Scenarios []string

	// Racks is how many fence-scoped racks the nodes split into
	// (contiguous index ranges); Bursts how many rack failures to
	// draw in [BurstFrom, BurstUntil), each lasting Outage seconds.
	Racks, Bursts         int
	BurstFrom, BurstUntil float64
	Outage                float64

	// Flappers is how many nodes flap (spread over the index space)
	// inside [FlapFrom, FlapUntil), with Exp(MeanDown)/Exp(MeanUp)
	// down/up intervals.
	Flappers            int
	FlapFrom, FlapUntil float64
	MeanDown, MeanUp    float64

	// Loss is the monitoring-event drop schedule of the event-loss
	// cell.
	Loss sim.EventLoss

	// StormRate/StormFrom/StormUntil are the action-storm cell's
	// failure spike.
	StormRate             float64
	StormFrom, StormUntil float64

	// ResyncInterval is the anti-entropy sweep period: every interval
	// the harness compares the desired state with the configuration
	// and re-offers events for anything stale — persistent capacity
	// violations, still-waiting VMs, finished-but-present vjobs. This
	// is what lets the loop survive event loss: a dropped event's
	// condition is re-detected and re-offered until one gets through.
	// 0 defaults to 60 s.
	ResyncInterval float64

	// Trace names the committed sample trace the replay cell decodes
	// (SampleTraces lists them).
	Trace string

	// CollectSpans retains every closed span of each cell in
	// ChaosResult.Spans (the -trace-out export).
	CollectSpans bool
}

// DefaultChaosOptions is the BENCH_chaos.json scenario: the 500-node
// churn cluster, each chaos window opening after the arrival wave.
func DefaultChaosOptions() ChaosOptions {
	churn := DefaultChurnOptions()
	churn.ArrivalStop = 600
	churn.Horizon = 3600
	return ChaosOptions{
		Churn: churn,
		Racks: 10, Bursts: 3, BurstFrom: 600, BurstUntil: 1800, Outage: 400,
		Flappers: 8, FlapFrom: 600, FlapUntil: 1800, MeanDown: 30, MeanUp: 120,
		Loss:      sim.EventLoss{Fraction: 0.5, From: 600, Until: 1500},
		StormRate: 0.30, StormFrom: 600, StormUntil: 1200,
		Trace: "web-tide",
	}
}

func (o ChaosOptions) scenarios() []string {
	if len(o.Scenarios) == 0 {
		return ChaosScenarios()
	}
	return o.Scenarios
}

func (o ChaosOptions) resyncInterval() float64 {
	if o.ResyncInterval <= 0 {
		return 60
	}
	return o.ResyncInterval
}

// ChaosResult is one scenario cell's measurements.
type ChaosResult struct {
	// Scenario is the cell name (ChaosScenarios).
	Scenario string
	// Episodes counts violation episodes; RecoveryP50/P95/Max are the
	// nearest-rank quantiles of their lengths in virtual seconds
	// (monitor.RecoveryLog). Unrecovered counts episodes still open
	// at the horizon (censored: their partial length enters the
	// distribution too).
	Episodes                              int
	RecoveryP50, RecoveryP95, RecoveryMax float64
	Unrecovered                           int
	// Breaches is the structural invariant-breach count (always
	// audited; must be 0).
	Breaches int
	// Dropped counts monitoring events the loss filter discarded.
	Dropped int
	// ViolationSeconds integrates violation exposure over the run;
	// FinalViolations is the count at the horizon.
	ViolationSeconds float64
	FinalViolations  int
	// Stats is the loop telemetry; Switches the executed switches.
	Stats    core.LoopStats
	Switches int
	// Arrived and Completed count vjobs over the run.
	Arrived, Completed int
	// End is the virtual time the run went quiescent; Wall the real
	// time it took.
	End  float64
	Wall time.Duration
	// MatchedEpisodes counts episodes a reconfiguration span covered;
	// RemediationP50/P95/Max summarize the per-episode
	// event-to-remediation times (obs.RemediationTimes — clamped to
	// the recovery time, falling back to it when no span covers the
	// episode).
	MatchedEpisodes                                int
	RemediationP50, RemediationP95, RemediationMax float64
	// Spans is the retained span stream when CollectSpans is set.
	Spans []obs.SpanRecord
	// Ledger is the per-entity attribution behind ViolationSeconds
	// (ViolationSeconds == Ledger.Total() by construction). TopVJob /
	// TopNode name the worst-suffering vjob and node with their
	// violation-second integrals; RuleBreachSeconds integrates drain
	// rules breached while a failed node still hosted VMs.
	Ledger            *monitor.Ledger
	TopVJob           string
	TopVJobSeconds    float64
	TopNode           string
	TopNodeSeconds    float64
	RuleBreachSeconds float64
}

// RunChaos replays one scenario cell. Unknown scenario names panic:
// they are programmer errors, not measurements.
func RunChaos(scenario string, opts ChaosOptions) ChaosResult {
	co := opts.Churn
	genRng := rand.New(rand.NewSource(co.Seed))
	arrRng := rand.New(rand.NewSource(co.Seed + 1))
	failRng := rand.New(rand.NewSource(co.Seed + 2))
	chaosRng := rand.New(rand.NewSource(co.Seed + 3))

	cfg := vjob.NewConfiguration()
	for i := 0; i < co.Nodes; i++ {
		cfg.AddNode(vjob.NewNode(fmt.Sprintf("node%03d", i), co.NodeCPU, co.NodeMemory))
	}
	c := sim.New(cfg, duration.Default())
	inv := sim.WatchInvariants(c)

	res := ChaosResult{Scenario: scenario}

	// The replay cell reads its population from the trace; every other
	// cell uses the churn generator.
	var jobs []*vjob.VJob
	var replay *trace.Replay
	queue := func() []*vjob.VJob { return jobs }
	if scenario == ScenarioReplay {
		queue = func() []*vjob.VJob { return replay.Jobs() }
	}

	// Span stream: reconfiguration spans feed the remediation columns
	// (no randomness — the chaos Seed+3 stream stays byte-identical).
	tracer := obs.NewTracer(0)
	var reconfigs []obs.SpanRecord
	tracer.OnClose(func(r obs.SpanRecord) {
		if r.Kind == obs.KindReconfig.String() {
			reconfigs = append(reconfigs, r)
		}
		if opts.CollectSpans {
			res.Spans = append(res.Spans, r)
		}
	})

	drains := &core.DrainSet{}
	loop := &core.Loop{
		Decision:    queueTerminator{c: c, inner: sched.Consolidation{}, queue: queue},
		Optimizer:   core.Optimizer{Timeout: co.Timeout, Workers: co.Workers, Partitions: co.Partitions},
		EventDriven: true,
		Debounce:    co.Debounce,
		RepairWiden: co.RepairWiden,
		Drains:      drains,
		Queue:       queue,
		Trace:       tracer,
	}
	act := &drivers.Actuator{C: c, Trace: tracer}

	// feed is the single monitoring path into the loop; the event-loss
	// cell interposes the drop filter on it. One rng variate per
	// offered event in that cell only — the other cells leave the
	// chaos stream where the planners left it.
	notify := func(ev core.Event) { loop.Notify(act, ev) }
	feed := notify
	if scenario == ScenarioLoss {
		drop := opts.Loss.Dropper(chaosRng)
		feed = func(ev core.Event) {
			if drop(c.Now()) {
				res.Dropped++
				return
			}
			notify(ev)
		}
	}

	c.OnLoadChange(func(vm string) {
		feed(core.Event{Kind: core.LoadChange, At: c.Now(), VMs: []string{vm}})
	})

	// Action failures: the flat churn baseline everywhere, spiked by
	// the storm window in the action-storm cell. Identical stream
	// shape either way (one variate per action).
	storm := sim.FailureStorm{Base: co.FailureRate}
	if scenario == ScenarioStorm {
		storm.Storm, storm.From, storm.Until = opts.StormRate, opts.StormFrom, opts.StormUntil
	}
	if storm.Base > 0 || storm.Storm > 0 {
		c.InstallFailureStorm(failRng, storm)
	}

	if scenario == ScenarioReplay {
		recs, err := SampleTrace(opts.Trace)
		if err != nil {
			panic(err)
		}
		replay = trace.StartReplay(c, recs, feed)
	} else {
		submit := func(i int) workload.Spec {
			bench := workload.Benchmarks[i%len(workload.Benchmarks)]
			class := workload.Classes[1+i%2]
			spec := workload.NewSpec(fmt.Sprintf("vjob%03d", i), bench, class, co.VMsPerVJob, i, genRng)
			scalePhases(&spec, co.WorkScale)
			spec.Install(cfg, c)
			jobs = append(jobs, spec.Job)
			return spec
		}
		for i := 0; i < co.InitialVJobs; i++ {
			submit(i)
		}
		res.Arrived = co.InitialVJobs

		idx := co.InitialVJobs
		var scheduleArrival func()
		scheduleArrival = func() {
			dt := arrRng.ExpFloat64() / co.ArrivalRate
			at := c.Now() + dt
			if at > co.ArrivalStop {
				return
			}
			c.Schedule(at, func() {
				spec := submit(idx)
				idx++
				res.Arrived++
				names := make([]string, len(spec.Job.VMs))
				for i, v := range spec.Job.VMs {
					names[i] = v.Name
				}
				feed(core.Event{Kind: core.VMArrival, At: c.Now(), VMs: names})
				scheduleArrival()
			})
		}
		if co.ArrivalRate > 0 {
			scheduleArrival()
		}
	}

	// Node-level chaos. A failed node cannot simply vanish — the sim
	// refuses to drop a loaded node, and so would a real inventory —
	// so a failure is an urgent evacuation: a drain rule that forbids
	// the node to the optimizer plus a NodeDown event, exactly the
	// signal path of the maintenance lifecycle, and recovery is the
	// Undrain + NodeUp pair.
	fail := func(n string) {
		if !drains.Drain(n) {
			return
		}
		ev := core.Event{Kind: core.NodeDown, At: c.Now(), Nodes: []string{n}}
		for _, v := range cfg.RunningOn(n) {
			ev.VMs = append(ev.VMs, v.Name)
		}
		feed(ev)
	}
	recover := func(n string) {
		if !drains.Undrain(n) {
			return
		}
		feed(core.Event{Kind: core.NodeUp, At: c.Now(), Nodes: []string{n}})
	}

	switch scenario {
	case ScenarioBursts:
		bursts := sim.PlanBursts(chaosRng, rackNames(co.Nodes, opts.Racks), sim.BurstOptions{
			Count: opts.Bursts, From: opts.BurstFrom, Until: opts.BurstUntil, Outage: opts.Outage,
		})
		for _, b := range bursts {
			b := b
			c.Schedule(b.At, func() {
				for _, n := range b.Nodes {
					fail(n)
				}
			})
			if b.RecoverAt > 0 {
				c.Schedule(b.RecoverAt, func() {
					for _, n := range b.Nodes {
						recover(n)
					}
				})
			}
		}
	case ScenarioFlapping:
		flaps := sim.PlanFlaps(chaosRng, sim.FlapOptions{
			Nodes: spreadNodes(co.Nodes, opts.Flappers),
			From:  opts.FlapFrom, Until: opts.FlapUntil,
			MeanDown: opts.MeanDown, MeanUp: opts.MeanUp,
		})
		for _, tr := range flaps {
			tr := tr
			c.Schedule(tr.At, func() {
				if tr.Down {
					fail(tr.Node)
				} else {
					recover(tr.Node)
				}
			})
		}
	}

	// The anti-entropy sweep: desired state vs configuration, offered
	// through the same (possibly lossy) feed. It is the loss cell's
	// recovery mechanism and a no-op wake source elsewhere (a clean
	// cluster re-offers nothing).
	var resync func()
	resync = func() {
		for _, ev := range reconcile(c, cfg, queue()) {
			feed(ev)
		}
		c.Schedule(c.Now()+opts.resyncInterval(), resync)
	}
	c.Schedule(opts.resyncInterval(), resync)

	led := monitor.WatchLedger(c, drains.Rules)
	recovery := monitor.WatchRecovery(c)
	c.Schedule(co.Horizon, func() {}) // pin the clock for censoring

	start := time.Now()
	loop.Start(act)
	c.Run(co.Horizon)
	res.Wall = time.Since(start)

	res.ViolationSeconds = led.Total()
	res.Ledger = led
	if top := led.TopVJobs(1); len(top) > 0 {
		res.TopVJob, res.TopVJobSeconds = top[0].VJob, top[0].Seconds
	}
	if top := led.TopNodes(1); len(top) > 0 {
		res.TopNode, res.TopNodeSeconds = top[0].Node, top[0].Seconds
	}
	res.RuleBreachSeconds = led.RuleBreachSeconds()
	if recovery.Open {
		res.Unrecovered = 1
		recovery.CloseAt(c.Now())
	}
	res.Episodes = recovery.Episodes()
	res.RecoveryP50 = recovery.Quantile(0.50)
	res.RecoveryP95 = recovery.Quantile(0.95)
	res.RecoveryMax = recovery.Max()
	remediations, matched := obs.RemediationTimes(reconfigs, recovery.Starts, recovery.Durations)
	res.MatchedEpisodes = matched
	res.RemediationP50 = monitor.Quantile(remediations, 0.50)
	res.RemediationP95 = monitor.Quantile(remediations, 0.95)
	res.RemediationMax = monitor.Quantile(remediations, 1)
	res.Breaches = inv.StructuralCount()
	res.FinalViolations = len(cfg.Violations())
	res.Stats = loop.Stats
	res.Switches = len(loop.Records)
	res.End = c.Now()
	if scenario == ScenarioReplay {
		res.Arrived = len(replay.Jobs())
	}
	for _, j := range queue() {
		if c.VJobDone(j) {
			res.Completed++
		}
	}
	return res
}

// rackNames splits the node index space into racks contiguous groups
// — the fence scopes rack failures take down together.
func rackNames(nodes, racks int) [][]string {
	if racks < 1 {
		racks = 1
	}
	if racks > nodes {
		racks = nodes
	}
	out := make([][]string, racks)
	for i := 0; i < nodes; i++ {
		r := i * racks / nodes
		out[r] = append(out[r], fmt.Sprintf("node%03d", i))
	}
	return out
}

// spreadNodes picks count node names evenly over the index space,
// like the drain study's order targets.
func spreadNodes(nodes, count int) []string {
	if count < 1 {
		return nil
	}
	if count > nodes {
		count = nodes
	}
	out := make([]string, count)
	for i := range out {
		out[i] = fmt.Sprintf("node%03d", i*nodes/count)
	}
	return out
}

// reconcile compares the desired state with the configuration and
// returns events for everything stale: violated nodes (LoadChange),
// VMs still waiting (VMArrival), and finished vjobs whose VMs linger
// (VMDeparture). Deterministic order; empty when the cluster agrees.
func reconcile(c *sim.Cluster, cfg *vjob.Configuration, jobs []*vjob.VJob) []core.Event {
	var out []core.Event
	now := c.Now()
	var hot []string
	seen := map[string]bool{}
	for _, v := range cfg.Violations() {
		if !seen[v.Node] {
			seen[v.Node] = true
			hot = append(hot, v.Node)
		}
	}
	if len(hot) > 0 {
		ev := core.Event{Kind: core.LoadChange, At: now, Nodes: hot}
		for _, n := range hot {
			for _, v := range cfg.RunningOn(n) {
				ev.VMs = append(ev.VMs, v.Name)
			}
		}
		out = append(out, ev)
	}
	if waiting := cfg.InState(vjob.Waiting); len(waiting) > 0 {
		names := make([]string, len(waiting))
		for i, v := range waiting {
			names[i] = v.Name
		}
		out = append(out, core.Event{Kind: core.VMArrival, At: now, VMs: names})
	}
	var done []string
	for _, j := range jobs {
		if !c.VJobDone(j) {
			continue
		}
		for _, v := range j.VMs {
			if cfg.VM(v.Name) != nil {
				done = append(done, v.Name)
			}
		}
	}
	if len(done) > 0 {
		sort.Strings(done)
		out = append(out, core.Event{Kind: core.VMDeparture, At: now, VMs: done})
	}
	return out
}

// ChaosStudy runs every requested scenario cell.
func ChaosStudy(opts ChaosOptions) []ChaosResult {
	var rows []ChaosResult
	for _, s := range opts.scenarios() {
		rows = append(rows, RunChaos(s, opts))
	}
	return rows
}

// ChaosTable renders the study.
func ChaosTable(rows []ChaosResult) string {
	var b strings.Builder
	b.WriteString("Chaos study: recovery-time distributions and structural breaches per scenario (event-driven loop)\n")
	fmt.Fprintf(&b, "%-13s %8s %8s %8s %8s %8s %8s %6s %8s %8s %10s %8s %9s\n",
		"scenario", "episodes", "rec-p50", "rec-p95", "rec-max", "rem-p50", "rem-p95", "open", "dropped", "breaches", "viol-sec", "final", "done/arr")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-13s %8d %8.0f %8.0f %8.0f %8.0f %8.0f %6d %8d %8d %10.0f %8d %5d/%-3d\n",
			r.Scenario, r.Episodes, r.RecoveryP50, r.RecoveryP95, r.RecoveryMax,
			r.RemediationP50, r.RemediationP95,
			r.Unrecovered, r.Dropped, r.Breaches, r.ViolationSeconds,
			r.FinalViolations, r.Completed, r.Arrived)
	}
	return b.String()
}

// ChaosCSV renders the rows for external plotting.
func ChaosCSV(rows []ChaosResult) string {
	var b strings.Builder
	b.WriteString("scenario,episodes,recovery_p50,recovery_p95,recovery_max,remediation_p50,remediation_p95,remediation_max,matched_episodes,unrecovered,dropped,breaches,violation_seconds,final_violations,sub_solves,full_solves,repairs,switches,events,arrived,completed,end,top_vjob,top_vjob_viol_sec,top_node,top_node_viol_sec,rule_breach_sec\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%d,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f,%d,%d,%d,%d,%.1f,%d,%d,%d,%d,%d,%d,%d,%d,%.0f,%s,%.1f,%s,%.1f,%.1f\n",
			r.Scenario, r.Episodes, r.RecoveryP50, r.RecoveryP95, r.RecoveryMax,
			r.RemediationP50, r.RemediationP95, r.RemediationMax, r.MatchedEpisodes,
			r.Unrecovered, r.Dropped, r.Breaches, r.ViolationSeconds, r.FinalViolations,
			r.Stats.SubSolves, r.Stats.FullSolves, r.Stats.Repairs, r.Switches,
			r.Stats.Events, r.Arrived, r.Completed, r.End,
			r.TopVJob, r.TopVJobSeconds, r.TopNode, r.TopNodeSeconds, r.RuleBreachSeconds)
	}
	return b.String()
}

//go:embed traces/*.jsonl
var sampleTraces embed.FS

// SampleTraces lists the committed sample traces by name.
func SampleTraces() []string {
	entries, err := sampleTraces.ReadDir("traces")
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		out = append(out, strings.TrimSuffix(e.Name(), ".jsonl"))
	}
	sort.Strings(out)
	return out
}

// SampleTrace decodes one committed sample trace by name.
func SampleTrace(name string) ([]trace.Record, error) {
	data, err := sampleTraces.ReadFile("traces/" + name + ".jsonl")
	if err != nil {
		return nil, fmt.Errorf("experiments: unknown sample trace %q (have %v)", name, SampleTraces())
	}
	return trace.Decode(bytes.NewReader(data))
}
