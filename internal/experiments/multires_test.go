package experiments

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"cwcs/internal/core"
	"cwcs/internal/resources"
	"cwcs/internal/sched"
	"cwcs/internal/vjob"
	"cwcs/internal/workload"
)

// quickMultiResOptions shrinks the BENCH_multires.json scenario so the
// study completes in well under a second while keeping the phenomenon:
// the 2-D stack over-commits the network, the 4-D stack does not.
func quickMultiResOptions() MultiResOptions {
	o := DefaultMultiResOptions()
	o.Nodes = 48
	o.Timeout = 500 * time.Millisecond
	o.Workers = 1
	return o
}

// TestMultiResStudy pins the study's headline: on a heterogeneous
// cluster the CPU+memory-only stack produces a destination that
// over-commits an extra dimension, while the 4-dimension model reaches
// a violation-free configuration under the same budget.
func TestMultiResStudy(t *testing.T) {
	r := RunMultiRes(quickMultiResOptions())
	if r.Blind.Err != "" || r.Aware.Err != "" {
		t.Fatalf("solve failed: blind=%q aware=%q", r.Blind.Err, r.Aware.Err)
	}
	if r.NetBoundVMs == 0 {
		t.Fatal("scenario generated no net-bound VMs; the study is vacuous")
	}
	if free := r.Blind.ViolationFree(); free {
		t.Fatalf("blind model reached a violation-free configuration; the seed no longer exhibits the over-commit (violations %v)", r.Blind.Violations)
	}
	if r.Blind.Violations["net"]+r.Blind.Violations["disk"] == 0 {
		t.Fatalf("blind model's violations are not on the hidden dimensions: %v", r.Blind.Violations)
	}
	if !r.Aware.ViolationFree() {
		t.Fatalf("4-dim model left violations: %v", r.Aware.Violations)
	}
	// Both sides' cpu/mem books must be clean: the blind stack is blind
	// to net/disk, not broken.
	if r.Blind.Violations["cpu"] != 0 || r.Blind.Violations["memory"] != 0 {
		t.Fatalf("blind model violated the dimensions it does see: %v", r.Blind.Violations)
	}
}

// TestMultiResRenderings smokes the table/CSV shapes the CLI exports.
func TestMultiResRenderings(t *testing.T) {
	r := RunMultiRes(quickMultiResOptions())
	table := MultiResTable(r)
	for _, want := range []string{"cpu+mem", "4-dim", "net-bound"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
	csv := MultiResCSV(r)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV should be header + 2 rows:\n%s", csv)
	}
	if lines[0] != "model,ok,solve_ms,cost,optimal,running,cpu_viol,memory_viol,net_viol,disk_viol" {
		t.Fatalf("CSV header drifted: %s", lines[0])
	}
}

// TestStripExtrasAndTransplant pins the audit plumbing: stripping
// erases only the extra dimensions, and transplant faithfully replays
// a destination onto the true demands.
func TestStripExtrasAndTransplant(t *testing.T) {
	cfg := vjob.NewConfiguration()
	cap := resources.New(2, 4096)
	cap.Set(resources.NetBW, 1000)
	cfg.AddNode(vjob.NewNodeRes("n1", cap))
	cfg.AddNode(vjob.NewNodeRes("n2", cap))
	d := resources.New(1, 1024)
	d.Set(resources.NetBW, 800)
	cfg.AddVM(vjob.NewVMRes("v1", "j", d))
	cfg.AddVM(vjob.NewVMRes("v2", "j", d))
	if err := cfg.SetRunning("v1", "n1"); err != nil {
		t.Fatal(err)
	}
	if err := cfg.SetRunning("v2", "n1"); err != nil {
		t.Fatal(err)
	}

	blind := stripExtras(cfg)
	if got := blind.VM("v1").Demand.Get(resources.NetBW); got != 0 {
		t.Fatalf("strip kept net demand %d", got)
	}
	if blind.VM("v1").MemoryDemand() != 1024 || blind.Node("n1").CPU() != 2 {
		t.Fatal("strip altered the base dimensions")
	}
	if !blind.Viable() {
		t.Fatalf("stripped configuration should be 2-D viable: %v", blind.Violations())
	}
	if cfg.Viable() {
		t.Fatal("true configuration should over-commit net")
	}

	// A blind destination keeping both VMs on n1 transplants back to a
	// net-violating truth; moving one to n2 clears it.
	truth, err := transplant(cfg, blind)
	if err != nil {
		t.Fatal(err)
	}
	if violationsByKind(truth)["net"] != 1 {
		t.Fatalf("transplanted violations: %v", violationsByKind(truth))
	}
	if err := blind.SetRunning("v2", "n2"); err != nil {
		t.Fatal(err)
	}
	truth, err = transplant(cfg, blind)
	if err != nil {
		t.Fatal(err)
	}
	if n := violationsByKind(truth)["net"]; n != 0 {
		t.Fatalf("spread placement still violates net %d times", n)
	}
	if truth.HostOf("v2") != "n2" {
		t.Fatal("transplant dropped the move")
	}
}

// BenchmarkMultiResourceSolve measures the optimizer on the multires
// scenario, 2-D stripped vs full 4-D, at the bench-regress scale: the
// dims=2 side pins "extra dimensions compile away" (no solver-time
// regression on the paper's model), the dims=4 side pins the cost of
// the two extra Packing propagators.
func BenchmarkMultiResourceSolve(b *testing.B) {
	opts := quickMultiResOptions()
	opts.Timeout = 250 * time.Millisecond
	g := workload.GenerateConfiguration(rand.New(rand.NewSource(opts.Seed)), workload.GenerateOptions{
		Nodes:   opts.Nodes,
		NodeCPU: opts.NodeCPU, NodeMemory: opts.NodeMemory,
		NodeNet: opts.NodeNet, NodeDisk: opts.NodeDisk,
		VMs:         int(float64(opts.Nodes) * opts.VMFactor),
		NetFraction: opts.NetFraction, DiskFraction: opts.DiskFraction,
	})
	blindSrc := stripExtras(g.Cfg)
	problems := map[string]core.Problem{
		"dims=2": {Src: blindSrc, Target: sched.Consolidation{}.Decide(blindSrc, jobsOf(blindSrc, g.Jobs))},
		"dims=4": {Src: g.Cfg, Target: sched.Consolidation{}.Decide(g.Cfg, g.Jobs)},
	}
	for _, name := range []string{"dims=2", "dims=4"} {
		p := problems[name]
		b.Run(name, func(b *testing.B) {
			opt := core.Optimizer{Timeout: opts.Timeout, Workers: 1, Partitions: opts.Partitions}
			for i := 0; i < b.N; i++ {
				if _, err := opt.Solve(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
