package sched

import (
	"fmt"
	"sort"
	"strings"
)

// BatchJob is a rigid job as a traditional RMS sees it (§2.1): a
// processor count, a user-provided walltime estimate, and the actual
// runtime (often shorter — user estimates are inaccurate).
type BatchJob struct {
	// ID names the job ("1" to "4" in Figure 1).
	ID string
	// Procs is the number of processors the job reserves.
	Procs int
	// Runtime is the real execution time, in abstract time units.
	Runtime int
	// Estimate is the user's walltime request; the scheduler reasons
	// with it. Must be >= 1.
	Estimate int
}

// Segment is one contiguous execution interval of a job.
type Segment struct {
	Job        string
	Start, End int
	Procs      int
}

// Schedule is the outcome of a batch-scheduling policy.
type Schedule struct {
	Segments []Segment
	Makespan int
	// Wasted is the processor-time units left idle before the
	// makespan (the gray areas of Figure 1).
	Wasted int
	Procs  int
}

// batchState simulates unit time steps.
type batchState struct {
	procs   int
	t       int
	pending []*batchRun
	running []*batchRun
	done    []*batchRun
}

type batchRun struct {
	job       BatchJob
	remaining int
	start     int // start of the current segment, -1 if not running
	segments  []Segment
	started   bool
}

func newBatchState(jobs []BatchJob, procs int) *batchState {
	st := &batchState{procs: procs}
	for _, j := range jobs {
		if j.Estimate <= 0 || j.Runtime <= 0 || j.Procs <= 0 {
			panic(fmt.Sprintf("sched: invalid batch job %+v", j))
		}
		if j.Procs > procs {
			panic(fmt.Sprintf("sched: job %s requests %d > %d processors", j.ID, j.Procs, procs))
		}
		st.pending = append(st.pending, &batchRun{job: j, remaining: j.Runtime, start: -1})
	}
	return st
}

func (st *batchState) freeProcs() int {
	used := 0
	for _, r := range st.running {
		used += r.job.Procs
	}
	return st.procs - used
}

func (st *batchState) begin(r *batchRun) {
	r.start = st.t
	r.started = true
	st.running = append(st.running, r)
}

func (st *batchState) pause(r *batchRun) {
	r.segments = append(r.segments, Segment{Job: r.job.ID, Start: r.start, End: st.t, Procs: r.job.Procs})
	r.start = -1
	for i, x := range st.running {
		if x == r {
			st.running = append(st.running[:i], st.running[i+1:]...)
			break
		}
	}
}

// step advances one time unit and retires finished jobs.
func (st *batchState) step() {
	st.t++
	var still []*batchRun
	for _, r := range st.running {
		r.remaining--
		if r.remaining == 0 {
			r.segments = append(r.segments, Segment{Job: r.job.ID, Start: r.start, End: st.t, Procs: r.job.Procs})
			st.done = append(st.done, r)
		} else {
			still = append(still, r)
		}
	}
	st.running = still
}

func (st *batchState) schedule() Schedule {
	s := Schedule{Makespan: st.t, Procs: st.procs}
	for _, r := range st.done {
		s.Segments = append(s.Segments, r.segments...)
	}
	sort.Slice(s.Segments, func(i, j int) bool {
		if s.Segments[i].Start != s.Segments[j].Start {
			return s.Segments[i].Start < s.Segments[j].Start
		}
		return s.Segments[i].Job < s.Segments[j].Job
	})
	busy := 0
	for _, seg := range s.Segments {
		busy += (seg.End - seg.Start) * seg.Procs
	}
	s.Wasted = st.t*st.procs - busy
	return s
}

// FCFS runs the jobs strictly in order: the queue head blocks everyone
// behind it until it can start (Figure 1 before backfilling).
func FCFS(jobs []BatchJob, procs int) Schedule {
	st := newBatchState(jobs, procs)
	for len(st.pending) > 0 || len(st.running) > 0 {
		for len(st.pending) > 0 && st.pending[0].job.Procs <= st.freeProcs() {
			st.begin(st.pending[0])
			st.pending = st.pending[1:]
		}
		st.step()
	}
	return st.schedule()
}

// EASY adds EASY backfilling (Figure 1b): when the head is blocked, a
// later job may start if — according to the estimates — it cannot
// delay the head's reservation.
func EASY(jobs []BatchJob, procs int) Schedule {
	st := newBatchState(jobs, procs)
	for len(st.pending) > 0 || len(st.running) > 0 {
		for len(st.pending) > 0 && st.pending[0].job.Procs <= st.freeProcs() {
			st.begin(st.pending[0])
			st.pending = st.pending[1:]
		}
		if len(st.pending) > 0 {
			st.backfill()
		}
		st.step()
	}
	return st.schedule()
}

// backfill implements the EASY rule with the head's shadow time.
func (st *batchState) backfill() {
	head := st.pending[0]
	// Project when the head can start, using ESTIMATED completions.
	type release struct{ at, procs int }
	var rel []release
	for _, r := range st.running {
		est := r.start + r.job.Estimate
		if done := r.job.Runtime - r.remaining; done > r.job.Estimate {
			est = st.t + 1 // overrun: assume imminent end
		}
		rel = append(rel, release{at: est, procs: r.job.Procs})
	}
	sort.Slice(rel, func(i, j int) bool { return rel[i].at < rel[j].at })
	free := st.freeProcs()
	shadow := st.t
	for _, r := range rel {
		if free >= head.job.Procs {
			break
		}
		free += r.procs
		shadow = r.at
	}
	extra := free - head.job.Procs // processors spare at shadow time
	for _, cand := range st.pending[1:] {
		if cand.job.Procs > st.freeProcs() {
			continue
		}
		fitsBefore := st.t+cand.job.Estimate <= shadow
		fitsBeside := cand.job.Procs <= extra
		if fitsBefore || fitsBeside {
			st.begin(cand)
			if fitsBeside && !fitsBefore {
				extra -= cand.job.Procs
			}
			// remove from pending
			for i, p := range st.pending {
				if p == cand {
					st.pending = append(st.pending[:i], st.pending[i+1:]...)
					break
				}
			}
			return // one backfill per step keeps the policy simple
		}
	}
}

// Conservative applies conservative backfilling (§2.1): a job may be
// backfilled only if it delays NO waiting job's reservation, not just
// the queue head's. Reservations are computed for every pending job
// from the estimated completions, so guarantees are stronger than
// EASY's but fewer holes get filled.
func Conservative(jobs []BatchJob, procs int) Schedule {
	st := newBatchState(jobs, procs)
	for len(st.pending) > 0 || len(st.running) > 0 {
		for len(st.pending) > 0 && st.pending[0].job.Procs <= st.freeProcs() {
			st.begin(st.pending[0])
			st.pending = st.pending[1:]
		}
		if len(st.pending) > 1 {
			st.conservativeBackfill()
		}
		st.step()
	}
	return st.schedule()
}

// conservativeBackfill starts one later job only when simulating the
// reservations of every pending job shows none would start later.
func (st *batchState) conservativeBackfill() {
	base := st.reservations(nil)
	for _, cand := range st.pending[1:] {
		if cand.job.Procs > st.freeProcs() {
			continue
		}
		with := st.reservations(cand)
		delayed := false
		for id, t0 := range base {
			if id == cand.job.ID {
				continue
			}
			if with[id] > t0 {
				delayed = true
				break
			}
		}
		if delayed {
			continue
		}
		st.begin(cand)
		for i, p := range st.pending {
			if p == cand {
				st.pending = append(st.pending[:i], st.pending[i+1:]...)
				break
			}
		}
		return
	}
}

// reservations simulates, on estimates, when each pending job would
// start; `extra`, when non-nil, is treated as started now.
func (st *batchState) reservations(extra *batchRun) map[string]int {
	type ev struct{ at, procs int }
	var releases []ev
	used := 0
	for _, r := range st.running {
		used += r.job.Procs
		releases = append(releases, ev{at: maxInt(st.t+1, r.start+r.job.Estimate), procs: r.job.Procs})
	}
	if extra != nil {
		used += extra.job.Procs
		releases = append(releases, ev{at: st.t + extra.job.Estimate, procs: extra.job.Procs})
	}
	out := make(map[string]int)
	free := st.procs - used
	t := st.t
	i := 0
	sort.Slice(releases, func(a, b int) bool { return releases[a].at < releases[b].at })
	for _, p := range st.pending {
		if extra != nil && p == extra {
			continue
		}
		for p.job.Procs > free && i < len(releases) {
			free += releases[i].procs
			t = releases[i].at
			i++
		}
		if p.job.Procs > free {
			t = 1 << 30 // never within the horizon
		}
		out[p.job.ID] = t
		// The job occupies processors from its reservation on; model
		// it as consuming immediately for subsequent queue entries.
		free -= p.job.Procs
		releases = append(releases, ev{at: t + p.job.Estimate, procs: p.job.Procs})
		sort.Slice(releases[i:], func(a, b int) bool { return releases[i+a].at < releases[i+b].at })
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// EASYPreempt is the Figure 1c policy: EASY backfilling plus
// preemption. Each step, processors go to jobs in queue order; any
// leftover processors let later jobs run partially, and such jobs are
// suspended again the moment an older job needs the room. Progress is
// never lost (the paper realizes this with vjob suspend/resume).
func EASYPreempt(jobs []BatchJob, procs int) Schedule {
	st := newBatchState(jobs, procs)
	var all []*batchRun
	all = append(all, st.pending...)
	st.pending = nil
	for {
		remaining := 0
		for _, r := range all {
			if r.remaining > 0 {
				remaining++
			}
		}
		if remaining == 0 {
			break
		}
		// Allocate processors in FCFS priority order.
		free := st.procs
		for _, r := range all {
			if r.remaining == 0 {
				continue
			}
			if r.job.Procs <= free {
				free -= r.job.Procs
				if r.start < 0 {
					st.begin(r)
				}
			} else if r.start >= 0 {
				st.pause(r)
			}
		}
		st.step()
	}
	return st.schedule()
}

// Gantt renders the schedule as ASCII art, one row per job, matching
// the layout of Figure 1 and Figure 12.
func (s Schedule) Gantt() string {
	jobs := map[string][]Segment{}
	var order []string
	for _, seg := range s.Segments {
		if _, ok := jobs[seg.Job]; !ok {
			order = append(order, seg.Job)
		}
		jobs[seg.Job] = append(jobs[seg.Job], seg)
	}
	sort.Strings(order)
	var b strings.Builder
	fmt.Fprintf(&b, "time    %s\n", ruler(s.Makespan))
	for _, id := range order {
		row := make([]byte, s.Makespan)
		for i := range row {
			row[i] = '.'
		}
		for _, seg := range jobs[id] {
			for t := seg.Start; t < seg.End && t < len(row); t++ {
				row[t] = '#'
			}
		}
		fmt.Fprintf(&b, "job %-3s %s\n", id, row)
	}
	fmt.Fprintf(&b, "makespan=%d wasted=%d proc-units\n", s.Makespan, s.Wasted)
	return b.String()
}

func ruler(n int) string {
	b := make([]byte, n)
	for i := range b {
		if (i+1)%10 == 0 {
			b[i] = '|'
		} else {
			b[i] = ' '
		}
	}
	return string(b)
}
