package sched

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// figure1Jobs is the 4-job workload of Figure 1 on a 4-processor
// cluster: job 1 narrow, job 2 wide (blocks the queue), jobs 3-4
// narrow fillers. Numbers are chosen so each policy exhibits exactly
// the figure's behaviour: EASY backfills job 3 beside job 1;
// preemption additionally starts job 4 immediately and suspends it
// while the wide job 2 runs.
func figure1Jobs() ([]BatchJob, int) {
	return []BatchJob{
		{ID: "1", Procs: 2, Runtime: 2, Estimate: 2},
		{ID: "2", Procs: 4, Runtime: 3, Estimate: 3},
		{ID: "3", Procs: 1, Runtime: 2, Estimate: 2},
		{ID: "4", Procs: 1, Runtime: 4, Estimate: 4},
	}, 4
}

func firstStart(s Schedule, id string) int {
	first := 1 << 30
	for _, seg := range s.Segments {
		if seg.Job == id && seg.Start < first {
			first = seg.Start
		}
	}
	return first
}

func TestFCFSBlocksBehindWideJob(t *testing.T) {
	jobs, procs := figure1Jobs()
	s := FCFS(jobs, procs)
	// Job 2 (4 procs) waits for job 1 (ends t=2), runs 2-5; jobs 3-4
	// start at 5; job 4 runs 4 units -> makespan 9.
	if s.Makespan != 9 {
		t.Fatalf("FCFS makespan = %d, want 9\n%s", s.Makespan, s.Gantt())
	}
	if s.Wasted == 0 {
		t.Fatal("FCFS should waste processor time (gray areas)")
	}
	if got := firstStart(s, "3"); got != 5 {
		t.Fatalf("job 3 starts at %d under FCFS, want 5", got)
	}
}

func TestEASYBackfillImproves(t *testing.T) {
	jobs, procs := figure1Jobs()
	fcfs := FCFS(jobs, procs)
	easy := EASY(jobs, procs)
	if easy.Makespan > fcfs.Makespan {
		t.Fatalf("EASY (%d) worse than FCFS (%d)\n%s", easy.Makespan, fcfs.Makespan, easy.Gantt())
	}
	// Job 3 (1 proc, 2 units) fits beside job 1 before job 2's shadow
	// at t=2: it is backfilled to t=0 (Figure 1b).
	if got := firstStart(easy, "3"); got != 0 {
		t.Fatalf("job 3 backfilled at %d, want 0\n%s", got, easy.Gantt())
	}
	// Backfilling must not delay the reserved head: job 2 still starts
	// at t=2.
	if got := firstStart(easy, "2"); got != 2 {
		t.Fatalf("job 2 delayed to %d by backfilling\n%s", got, easy.Gantt())
	}
}

func TestEASYPreemptImprovesFurther(t *testing.T) {
	jobs, procs := figure1Jobs()
	easy := EASY(jobs, procs)
	pre := EASYPreempt(jobs, procs)
	// Preemption runs job 4 in the t=0..2 hole and finishes the whole
	// workload sooner: makespan 7 vs 9 (Figure 1c).
	if pre.Makespan >= easy.Makespan {
		t.Fatalf("preemption (%d) should beat EASY (%d)\n%s", pre.Makespan, easy.Makespan, pre.Gantt())
	}
	if pre.Wasted >= easy.Wasted {
		t.Fatalf("preemption should waste less (%d vs %d)", pre.Wasted, easy.Wasted)
	}
	// The 4th job starts sooner under preemption without impacting the
	// head job 2.
	if firstStart(pre, "4") >= firstStart(easy, "4") {
		t.Fatalf("job 4 starts at %d under preemption vs %d under EASY",
			firstStart(pre, "4"), firstStart(easy, "4"))
	}
	if got := firstStart(pre, "2"); got != 2 {
		t.Fatalf("head job 2 delayed to %d by preemption\n%s", got, pre.Gantt())
	}
	// Job 4 must have been suspended and resumed: at least 2 segments.
	segs := 0
	for _, seg := range pre.Segments {
		if seg.Job == "4" {
			segs++
		}
	}
	if segs < 2 {
		t.Fatalf("job 4 not preempted (%d segment)\n%s", segs, pre.Gantt())
	}
}

func TestConservativeNeverDelaysReservations(t *testing.T) {
	jobs, procs := figure1Jobs()
	cons := Conservative(jobs, procs)
	fcfs := FCFS(jobs, procs)
	// Conservative backfilling never makes anything start later than
	// plain FCFS would.
	for _, j := range jobs {
		if firstStart(cons, j.ID) > firstStart(fcfs, j.ID) {
			t.Fatalf("job %s delayed: conservative %d vs fcfs %d\n%s",
				j.ID, firstStart(cons, j.ID), firstStart(fcfs, j.ID), cons.Gantt())
		}
	}
	if cons.Makespan > fcfs.Makespan {
		t.Fatalf("conservative (%d) worse than FCFS (%d)", cons.Makespan, fcfs.Makespan)
	}
	// Job 3 still backfills into the t=0 hole (it cannot delay anyone:
	// it ends before job 2's reservation).
	if got := firstStart(cons, "3"); got != 0 {
		t.Fatalf("job 3 starts at %d under conservative, want 0\n%s", got, cons.Gantt())
	}
}

// TestConservativeGuaranteeProperty: across random workloads with
// accurate estimates, conservative backfilling never starts any job
// later than plain FCFS would — the per-job guarantee EASY does not
// give. Work conservation and capacity are also re-checked.
func TestConservativeGuaranteeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		procs := 2 + rng.Intn(6)
		n := 2 + rng.Intn(6)
		jobs := make([]BatchJob, n)
		for i := range jobs {
			rt := 1 + rng.Intn(6)
			jobs[i] = BatchJob{
				ID:       fmt.Sprintf("j%d", i),
				Procs:    1 + rng.Intn(procs),
				Runtime:  rt,
				Estimate: rt,
			}
		}
		fcfs := FCFS(jobs, procs)
		cons := Conservative(jobs, procs)
		for _, j := range jobs {
			if firstStart(cons, j.ID) > firstStart(fcfs, j.ID) {
				t.Logf("seed %d: job %s delayed (%d > %d)\nFCFS:\n%s\nConservative:\n%s",
					seed, j.ID, firstStart(cons, j.ID), firstStart(fcfs, j.ID), fcfs.Gantt(), cons.Gantt())
				return false
			}
		}
		total := map[string]int{}
		for _, seg := range cons.Segments {
			total[seg.Job] += seg.End - seg.Start
		}
		for _, j := range jobs {
			if total[j.ID] != j.Runtime {
				return false
			}
		}
		for tick := 0; tick < cons.Makespan; tick++ {
			used := 0
			for _, seg := range cons.Segments {
				if seg.Start <= tick && tick < seg.End {
					used += seg.Procs
				}
			}
			if used > procs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPreemptionRunsPartially(t *testing.T) {
	// One wide job arrives behind a narrow one; with preemption the
	// narrow one runs in pieces around it.
	jobs := []BatchJob{
		{ID: "head", Procs: 1, Runtime: 2, Estimate: 2},
		{ID: "wide", Procs: 2, Runtime: 2, Estimate: 2},
		{ID: "tail", Procs: 1, Runtime: 4, Estimate: 4},
	}
	s := EASYPreempt(jobs, 2)
	// All work completes.
	total := map[string]int{}
	for _, seg := range s.Segments {
		total[seg.Job] += seg.End - seg.Start
	}
	for _, j := range jobs {
		if total[j.ID] != j.Runtime {
			t.Fatalf("job %s ran %d units, want %d\n%s", j.ID, total[j.ID], j.Runtime, s.Gantt())
		}
	}
	// tail must have been split (ran at t=0..? then preempted by wide).
	segs := 0
	for _, seg := range s.Segments {
		if seg.Job == "tail" {
			segs++
		}
	}
	if segs < 2 {
		t.Fatalf("tail not preempted (%d segment)\n%s", segs, s.Gantt())
	}
}

func TestEstimatesDriveBackfillNotCompletion(t *testing.T) {
	// A job that finishes earlier than estimated frees processors
	// early; completions use Runtime, reservations use Estimate.
	jobs := []BatchJob{
		{ID: "over", Procs: 2, Runtime: 2, Estimate: 10},
		{ID: "next", Procs: 2, Runtime: 2, Estimate: 2},
	}
	s := FCFS(jobs, 2)
	if s.Makespan != 4 {
		t.Fatalf("makespan = %d, want 4 (early completion honoured)", s.Makespan)
	}
}

func TestGanttRendering(t *testing.T) {
	jobs, procs := figure1Jobs()
	g := FCFS(jobs, procs).Gantt()
	for _, want := range []string{"job 1", "job 4", "makespan=9"} {
		if !strings.Contains(g, want) {
			t.Fatalf("gantt missing %q:\n%s", want, g)
		}
	}
}

func TestBatchValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid job accepted")
		}
	}()
	FCFS([]BatchJob{{ID: "bad", Procs: 9, Runtime: 1, Estimate: 1}}, 4)
}

// Property-ish: across the three policies, every job receives exactly
// its runtime and no step exceeds the processor count.
func TestPoliciesConserveWorkAndCapacity(t *testing.T) {
	jobs, procs := figure1Jobs()
	for name, s := range map[string]Schedule{
		"fcfs": FCFS(jobs, procs), "easy": EASY(jobs, procs), "pre": EASYPreempt(jobs, procs),
	} {
		total := map[string]int{}
		for _, seg := range s.Segments {
			total[seg.Job] += seg.End - seg.Start
		}
		for _, j := range jobs {
			if total[j.ID] != j.Runtime {
				t.Fatalf("%s: job %s ran %d, want %d", name, j.ID, total[j.ID], j.Runtime)
			}
		}
		for tick := 0; tick < s.Makespan; tick++ {
			used := 0
			for _, seg := range s.Segments {
				if seg.Start <= tick && tick < seg.End {
					used += seg.Procs
				}
			}
			if used > procs {
				t.Fatalf("%s: %d procs used at t=%d (capacity %d)", name, used, tick, procs)
			}
		}
	}
}
