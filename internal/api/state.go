package api

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"cwcs/internal/vjob"
)

// stateEvent is one rendered SSE frame of GET /v1/watch/state.
type stateEvent struct {
	name string
	data []byte
}

// nodesDelta is the payload of one `nodes` event: the full name-sorted
// list with Reset on the initial snapshot (and after any resync), then
// only the nodes whose rendered status changed plus the names that
// disappeared.
type nodesDelta struct {
	Reset   bool       `json:"reset,omitempty"`
	Nodes   []nodeJSON `json:"nodes,omitempty"`
	Removed []string   `json:"removed,omitempty"`
}

// parseStateStreams validates the ?streams selection. An empty
// selection means every stream the host wired sources for.
func (s *Server) parseStateStreams(q string) ([]string, error) {
	if q == "" {
		streams := []string{"config", "nodes"}
		if s.Execution != nil {
			streams = append(streams, "plan")
		}
		return streams, nil
	}
	var out []string
	seen := map[string]bool{}
	for _, name := range strings.Split(q, ",") {
		switch name {
		case "nodes", "config":
		case "plan":
			if s.Execution == nil {
				return nil, fmt.Errorf("stream %q has no execution source", name)
			}
		default:
			return nil, fmt.Errorf("unknown stream %q (want nodes, plan or config)", name)
		}
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	return out, nil
}

// handleWatchState streams cluster state as Server-Sent Events with
// snapshot-then-deltas semantics: the first frame of each selected
// stream is a full snapshot (`reset` for nodes), every later frame
// only what changed — so a dashboard that reconnects mid-evacuation
// resyncs from the snapshot and converges to exactly what polling
// /v1/nodes would report, without polling. Backpressure follows the
// /v1/watch discipline: a client that falls StateBuffer frames behind
// gets a terminal `dropped` event and is disconnected
// (cwcs_state_watch_drops_total counts it); the producer — and the
// Exec serializer it samples under — is never blocked by a stalled
// consumer.
func (s *Server) handleWatchState(w http.ResponseWriter, r *http.Request) {
	if s.Config == nil {
		writeError(w, http.StatusNotImplemented, "no configuration source")
		return
	}
	streams, err := s.parseStateStreams(r.URL.Query().Get("streams"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "watch/state: %v", err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "watch/state: streaming unsupported")
		return
	}
	buf := s.StateBuffer
	if buf <= 0 {
		buf = 16
	}
	ch := make(chan stateEvent, buf)
	go s.produceState(r.Context(), streams, ch)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "event: hello\ndata: {\"streams\":%q,\"drops\":%d}\n\n", strings.Join(streams, ","), s.stateDrops.Load())
	fl.Flush()

	hb := s.WatchHeartbeat
	if hb <= 0 {
		hb = 15 * time.Second
	}
	ticker := time.NewTicker(hb)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-ch:
			if !ok {
				// The producer dropped this subscriber as too slow; say
				// goodbye if the pipe still works and disconnect.
				fmt.Fprint(w, "event: dropped\ndata: {}\n\n")
				return
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, ev.data)
			fl.Flush()
		case <-ticker.C:
			fmt.Fprint(w, ": heartbeat\n\n")
			fl.Flush()
		}
	}
}

// produceState polls the cluster under Exec at StateInterval, diffs
// each selected stream against what it last sent, and feeds the
// subscriber's channel without ever blocking on it: an enqueue that
// finds the buffer full closes the channel instead (the handler then
// writes the terminal dropped event). It owns the channel — only the
// producer closes it — and exits when the request context dies.
func (s *Server) produceState(ctx context.Context, streams []string, ch chan stateEvent) {
	interval := s.StateInterval
	if interval <= 0 {
		interval = time.Second
	}
	want := map[string]bool{}
	for _, st := range streams {
		want[st] = true
	}
	send := func(ev stateEvent) bool {
		select {
		case ch <- ev:
			return true
		default:
			s.stateDrops.Add(1)
			close(ch)
			return false
		}
	}

	lastNodes := map[string][]byte{}
	var lastPlan, lastConfig []byte
	first := true
	pass := func() bool {
		var nodes []nodeJSON
		var pl planJSON
		var cfg *vjob.Configuration
		s.exec(func() {
			if want["nodes"] {
				nodes = s.nodeListLocked()
			}
			if want["plan"] {
				pl = s.planLocked()
			}
			if want["config"] {
				cfg = s.Config().Clone()
			}
		})
		for _, stream := range streams {
			switch stream {
			case "config":
				data, err := json.Marshal(cfg)
				if err != nil {
					continue
				}
				if first || string(data) != string(lastConfig) {
					lastConfig = data
					if !send(stateEvent{name: "config", data: data}) {
						return false
					}
				}
			case "nodes":
				delta := nodesDelta{Reset: first}
				next := make(map[string][]byte, len(nodes))
				for _, n := range nodes {
					data, err := json.Marshal(n)
					if err != nil {
						continue
					}
					next[n.Name] = data
					if first || string(data) != string(lastNodes[n.Name]) {
						delta.Nodes = append(delta.Nodes, n)
					}
				}
				for name := range lastNodes {
					if _, ok := next[name]; !ok {
						delta.Removed = append(delta.Removed, name)
					}
				}
				sort.Strings(delta.Removed)
				lastNodes = next
				if first || len(delta.Nodes) > 0 || len(delta.Removed) > 0 {
					data, err := json.Marshal(delta)
					if err != nil {
						continue
					}
					if !send(stateEvent{name: "nodes", data: data}) {
						return false
					}
				}
			case "plan":
				data, err := json.Marshal(pl)
				if err != nil {
					continue
				}
				if first || string(data) != string(lastPlan) {
					lastPlan = data
					if !send(stateEvent{name: "plan", data: data}) {
						return false
					}
				}
			}
		}
		first = false
		return true
	}

	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		if ctx.Err() != nil {
			return
		}
		if !pass() {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}
