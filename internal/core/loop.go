package core

import (
	"context"

	"cwcs/internal/plan"
	"cwcs/internal/vjob"
)

// DecisionModule is the pluggable scheduling policy of §3.1: from an
// observed configuration and the vjob queue it decides the state each
// vjob must reach. internal/sched provides the paper's sample modules.
type DecisionModule interface {
	Decide(cfg *vjob.Configuration, queue []*vjob.VJob) map[string]vjob.State
}

// Actuator abstracts the cluster the loop drives: a clock, an observer
// (monitoring) and an executor (drivers). internal/drivers adapts the
// simulator to this interface.
type Actuator interface {
	// Now returns the current virtual time in seconds.
	Now() float64
	// Schedule runs fn at the given virtual time.
	Schedule(at float64, fn func())
	// Observe returns a stable snapshot of the configuration.
	Observe() *vjob.Configuration
	// Execute runs the plan, then calls done with the execution
	// duration in seconds and the number of failed actions.
	Execute(p *plan.Plan, done func(duration float64, failures int))
}

// SwitchRecord is the telemetry of one cluster-wide context switch,
// the data points of Figure 11.
type SwitchRecord struct {
	// At is the virtual time the switch started.
	At float64
	// Cost is the §4.2 plan cost.
	Cost int
	// Duration is the execution time in seconds.
	Duration float64
	// Actions and Pools describe the executed plan.
	Actions, Pools int
	// Failures counts actions whose application failed.
	Failures int
}

// Loop is the Entropy control loop (§3.1, Figure 4): iteratively
// observe the cluster, run the decision module, optimize the
// reconfiguration, and execute the cluster-wide context switch. A new
// iteration is scheduled Interval seconds after the previous one
// finished (execution included), modelling the paper's behaviour of
// accumulating fresh monitoring data between iterations.
type Loop struct {
	// Decision chooses vjob states; required.
	Decision DecisionModule
	// Ctx, when non-nil, cancels the loop: in-flight optimizations
	// stop (returning their best result so far) and no further
	// iteration is scheduled once it is done.
	Ctx context.Context
	// Optimizer computes the context switch; the zero value works.
	Optimizer Optimizer
	// Interval is the pause between iterations in seconds (the
	// paper's sample module runs every 30 s; 0 defaults to that).
	Interval float64
	// Queue supplies the live vjob queue at each iteration; required.
	Queue func() []*vjob.VJob
	// Done, when non-nil, is polled at each iteration; returning true
	// stops the loop (e.g. every vjob terminated).
	Done func() bool
	// OnSwitch, when non-nil, receives the record of each non-empty
	// context switch.
	OnSwitch func(SwitchRecord)

	// Records accumulates every non-empty context switch.
	Records []SwitchRecord

	stopped bool
}

// Start schedules the first iteration immediately and returns; the
// loop then lives on the actuator's clock.
func (l *Loop) Start(a Actuator) {
	a.Schedule(a.Now(), func() { l.iterate(a) })
}

// Stop halts the loop after the current iteration.
func (l *Loop) Stop() { l.stopped = true }

func (l *Loop) interval() float64 {
	if l.Interval <= 0 {
		return 30
	}
	return l.Interval
}

func (l *Loop) ctx() context.Context {
	if l.Ctx != nil {
		return l.Ctx
	}
	return context.Background()
}

func (l *Loop) iterate(a Actuator) {
	if l.stopped || l.ctx().Err() != nil || (l.Done != nil && l.Done()) {
		return
	}
	next := func() {
		a.Schedule(a.Now()+l.interval(), func() { l.iterate(a) })
	}
	cfg := a.Observe()
	queue := l.Queue()
	target := l.Decision.Decide(cfg, queue)
	res, err := l.Optimizer.SolveContext(l.ctx(), Problem{Src: cfg, Target: target})
	if err != nil || res.Plan.NumActions() == 0 {
		next()
		return
	}
	rec := SwitchRecord{
		At:      a.Now(),
		Cost:    res.Cost,
		Actions: res.Plan.NumActions(),
		Pools:   len(res.Plan.Pools),
	}
	a.Execute(res.Plan, func(duration float64, failures int) {
		rec.Duration = duration
		rec.Failures = failures
		l.Records = append(l.Records, rec)
		if l.OnSwitch != nil {
			l.OnSwitch(rec)
		}
		next()
	})
}
