package core

import (
	"testing"

	"cwcs/internal/vjob"
)

// TestSolverTelemetryNilIsInertAndFree pins the obs-style nil
// discipline: a nil *SolverTelemetry records and reports nothing
// without allocating.
func TestSolverTelemetryNilIsInertAndFree(t *testing.T) {
	var st *SolverTelemetry
	st.RecordSolve(SolveReport{Winner: "base", Nodes: 5})
	snap := st.Snapshot()
	if snap.Solves != 0 || snap.Wins != nil || snap.Recent != nil {
		t.Fatalf("nil telemetry snapshot = %+v, want zero", snap)
	}
	if wr := st.WinRates(); len(wr) != 0 {
		t.Fatalf("nil telemetry win rates = %+v", wr)
	}
	allocs := testing.AllocsPerRun(100, func() {
		st.RecordSolve(SolveReport{Winner: "base"})
		_ = st.Snapshot()
		_ = st.WinRates()
	})
	if allocs != 0 {
		t.Fatalf("nil telemetry allocates %.1f per run, want 0", allocs)
	}
}

// TestSolverTelemetryAggregates: wins, warm-start tallies, search
// totals and cause counts fold per report; recent reports come back
// oldest first.
func TestSolverTelemetryAggregates(t *testing.T) {
	st := NewSolverTelemetry(8)
	st.RecordSolve(SolveReport{Virt: 1, Scope: "full", Cause: "vm-arrival", Winner: "base", Nodes: 10, Backtracks: 2, WarmStart: true, WarmHit: true})
	st.RecordSolve(SolveReport{Virt: 2, Scope: "slice", Cause: "vm-arrival", Winner: "knapsack", Nodes: 7, Backtracks: 1, WarmStart: true})
	st.RecordSolve(SolveReport{Virt: 3, Scope: "slice", Cause: "load-change", Winner: "base", Nodes: 3})

	snap := st.Snapshot()
	if snap.Solves != 3 {
		t.Fatalf("solves = %d", snap.Solves)
	}
	if snap.Wins["base"] != 2 || snap.Wins["knapsack"] != 1 {
		t.Fatalf("wins = %v", snap.Wins)
	}
	if snap.WarmStartHits != 1 || snap.WarmStartMisses != 1 {
		t.Fatalf("warm hits/misses = %d/%d, want 1/1", snap.WarmStartHits, snap.WarmStartMisses)
	}
	if snap.NodesExplored != 20 || snap.Backtracks != 3 {
		t.Fatalf("search totals = %d nodes / %d backtracks", snap.NodesExplored, snap.Backtracks)
	}
	if snap.ResolveCauses["vm-arrival"] != 2 || snap.ResolveCauses["load-change"] != 1 {
		t.Fatalf("causes = %v", snap.ResolveCauses)
	}
	if len(snap.Recent) != 3 || snap.Recent[0].Virt != 1 || snap.Recent[2].Virt != 3 {
		t.Fatalf("recent order = %+v", snap.Recent)
	}

	wr := st.WinRates()
	if len(wr) != 2 || wr[0].Strategy != "base" || wr[0].Improvements != 2 || wr[1].Strategy != "knapsack" {
		t.Fatalf("win rates = %+v", wr)
	}
}

// TestSolverTelemetryRingWraps: the recent ring keeps only the last
// `keep` reports and Snapshot still returns them oldest first.
func TestSolverTelemetryRingWraps(t *testing.T) {
	st := NewSolverTelemetry(2)
	for i := 1; i <= 5; i++ {
		st.RecordSolve(SolveReport{Virt: float64(i)})
	}
	snap := st.Snapshot()
	if snap.Solves != 5 {
		t.Fatalf("solves = %d", snap.Solves)
	}
	if len(snap.Recent) != 2 || snap.Recent[0].Virt != 4 || snap.Recent[1].Virt != 5 {
		t.Fatalf("wrapped recent = %+v, want virt 4 then 5", snap.Recent)
	}
}

// TestLoopSolverTelemetryEndToEnd replays the dirty-slice scenario with
// telemetry attached: every solve reports a winner and its dirty
// cause, and slice re-solves are distinguishable from full ones.
func TestLoopSolverTelemetryEndToEnd(t *testing.T) {
	cfg, rules, jobs := fencedChurnCluster(t)
	l, a := eventLoop(cfg, rules, jobs)
	st := NewSolverTelemetry(0)
	l.Solver = st
	l.Start(a)
	a.run(4)

	a.Schedule(5, func() {
		arrive(t, cfg, "a2", "ja", "n00")
		l.Notify(a, Event{Kind: VMArrival, At: a.Now(), Nodes: []string{"n00"}, VMs: []string{"a2"}})
	})
	a.run(40)

	if !cfg.Viable() {
		t.Fatalf("cluster still non-viable: %v", cfg.Violations())
	}
	snap := st.Snapshot()
	if snap.Solves == 0 {
		t.Fatal("no solves recorded")
	}
	if snap.Solves != l.Stats.SolverCalls {
		t.Fatalf("telemetry solves %d != loop SolverCalls %d", snap.Solves, l.Stats.SolverCalls)
	}
	if snap.ResolveCauses["vm-arrival"] == 0 {
		t.Fatalf("arrival cause not recorded: %v", snap.ResolveCauses)
	}
	totalWins := uint64(0)
	for _, w := range snap.Wins {
		totalWins += w
	}
	if totalWins != uint64(snap.Solves) {
		t.Fatalf("wins %v do not cover all %d solves", snap.Wins, snap.Solves)
	}
	sawSlice := false
	for _, r := range snap.Recent {
		if r.Scope != "full" && r.Scope != "slice" {
			t.Fatalf("scope = %q", r.Scope)
		}
		if r.Scope == "slice" {
			sawSlice = true
		}
		if r.Winner == "" {
			t.Fatalf("solve without winner: %+v", r)
		}
		if r.WallSeconds < 0 || r.Nodes < 0 {
			t.Fatalf("nonsense search cost: %+v", r)
		}
		if len(r.Workers) == 0 {
			t.Fatalf("solve without worker outcomes: %+v", r)
		}
	}
	if !sawSlice {
		t.Fatal("dirty-slice scenario recorded no slice-scoped solve")
	}
}

// TestLoopSolverDisabledIsByteIdentical mirrors the tracer test:
// running the identical scenario with and without telemetry must not
// change the loop's observable behaviour.
func TestLoopSolverDisabledIsByteIdentical(t *testing.T) {
	run := func(st *SolverTelemetry) (LoopStats, int) {
		cfg, rules, jobs := fencedChurnCluster(t)
		l, a := eventLoop(cfg, rules, jobs)
		l.Solver = st
		l.Start(a)
		a.run(4)
		a.Schedule(5, func() {
			arrive(t, cfg, "a2", "ja", "n00")
			l.Notify(a, Event{Kind: VMArrival, At: a.Now(), Nodes: []string{"n00"}, VMs: []string{"a2"}})
		})
		a.run(40)
		return l.Stats, len(l.Records)
	}
	offStats, offRecs := run(nil)
	onStats, onRecs := run(NewSolverTelemetry(16))
	if offStats != onStats || offRecs != onRecs {
		t.Fatalf("telemetry changed loop behaviour:\n off %+v (%d switches)\n on  %+v (%d switches)",
			offStats, offRecs, onStats, onRecs)
	}
}

// TestOptimizerResultSearchFields: a direct solve labels its winner
// and worker outcomes even without the loop.
func TestOptimizerResultSearchFields(t *testing.T) {
	cfg := vjob.NewConfiguration()
	cfg.AddNode(vjob.NewNode("n0", 4, 8192))
	cfg.AddNode(vjob.NewNode("n1", 4, 8192))
	v := vjob.NewVM("v1", "j", 1, 1024)
	cfg.AddVM(v)
	if err := cfg.SetRunning("v1", "n0"); err != nil {
		t.Fatal(err)
	}
	res, err := Optimizer{Workers: 1}.Solve(Problem{Src: cfg, Target: map[string]vjob.State{"j": vjob.Running}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner == "" {
		t.Fatal("result carries no winner")
	}
	if len(res.Outcomes) == 0 {
		t.Fatal("result carries no worker outcomes")
	}
	for _, w := range res.Outcomes {
		if w.Strategy == "" {
			t.Fatalf("outcome without strategy: %+v", w)
		}
	}
}
