// Package packing provides the placement heuristics and the knapsack
// reasoning the paper relies on: the First-Fit-Decrease heuristic used
// by the sample decision module (§3.2) and by the baseline planner of
// the §5.1 evaluation, a Best-Fit-Decrease variant for ablation, and a
// dynamic-programming subset-sum bound in the spirit of Trick's
// knapsack propagation (§4.3) used by the constraint solver.
package packing

import (
	"fmt"
	"sort"

	"cwcs/internal/vjob"
)

// ErrNoFit is wrapped by placement errors when a VM fits on no node.
type ErrNoFit struct {
	// VM is the machine that could not be placed.
	VM *vjob.VM
}

// Error describes the unplaceable VM.
func (e ErrNoFit) Error() string {
	return fmt.Sprintf("packing: no node can host %s", e.VM)
}

// SortDecreasing orders VMs by decreasing memory demand, then
// decreasing CPU demand, then name — the FFD ordering of §3.2. The
// slice is sorted in place and returned for chaining.
func SortDecreasing(vms []*vjob.VM) []*vjob.VM {
	sort.SliceStable(vms, func(i, j int) bool {
		if vms[i].MemoryDemand != vms[j].MemoryDemand {
			return vms[i].MemoryDemand > vms[j].MemoryDemand
		}
		if vms[i].CPUDemand != vms[j].CPUDemand {
			return vms[i].CPUDemand > vms[j].CPUDemand
		}
		return vms[i].Name < vms[j].Name
	})
	return vms
}

// FirstFitDecrease places every VM of vms as Running in c using the
// First Fit Decrease heuristic: VMs are considered in decreasing
// (memory, CPU) order and assigned to the first node with sufficient
// free resources. The configuration is mutated; on failure it is left
// untouched and an ErrNoFit is returned. Free resources are tracked
// incrementally, so a full pass costs O(nodes·VMs) rather than the
// quadratic rescans of Configuration.Fits.
func FirstFitDecrease(c *vjob.Configuration, vms []*vjob.VM) error {
	ordered := SortDecreasing(append([]*vjob.VM(nil), vms...))
	freeCPU, freeMem := c.FreeResources()
	nodes := c.Nodes()
	assigned := make(map[string]string, len(vms))
	for _, v := range ordered {
		placed := false
		for _, n := range nodes {
			if freeCPU[n.Name] >= v.CPUDemand && freeMem[n.Name] >= v.MemoryDemand {
				freeCPU[n.Name] -= v.CPUDemand
				freeMem[n.Name] -= v.MemoryDemand
				assigned[v.Name] = n.Name
				placed = true
				break
			}
		}
		if !placed {
			return ErrNoFit{VM: v}
		}
		creditOldHost(c, v, freeCPU, freeMem)
	}
	return commit(c, assigned, vms)
}

// BestFitDecrease is the ablation variant: same ordering, but each VM
// goes to the fitting node with the LEAST remaining memory, keeping
// large holes available for large VMs.
func BestFitDecrease(c *vjob.Configuration, vms []*vjob.VM) error {
	ordered := SortDecreasing(append([]*vjob.VM(nil), vms...))
	freeCPU, freeMem := c.FreeResources()
	nodes := c.Nodes()
	assigned := make(map[string]string, len(vms))
	for _, v := range ordered {
		best := ""
		bestFree := -1
		for _, n := range nodes {
			if freeCPU[n.Name] < v.CPUDemand || freeMem[n.Name] < v.MemoryDemand {
				continue
			}
			if best == "" || freeMem[n.Name] < bestFree {
				best, bestFree = n.Name, freeMem[n.Name]
			}
		}
		if best == "" {
			return ErrNoFit{VM: v}
		}
		freeCPU[best] -= v.CPUDemand
		freeMem[best] -= v.MemoryDemand
		assigned[v.Name] = best
		creditOldHost(c, v, freeCPU, freeMem)
	}
	return commit(c, assigned, vms)
}

// creditOldHost returns the resources a just-re-placed VM was consuming
// on its current host to the free pool: the commit will move it, so
// later VMs of the same pass may use the space (the behavior of the
// former clone-based implementation).
func creditOldHost(c *vjob.Configuration, v *vjob.VM, freeCPU, freeMem map[string]int) {
	if host := c.HostOf(v.Name); host != "" {
		freeCPU[host] += v.CPUDemand
		freeMem[host] += v.MemoryDemand
	}
}

// commit applies the computed placements to c.
func commit(c *vjob.Configuration, assigned map[string]string, vms []*vjob.VM) error {
	for _, v := range vms {
		if err := c.SetRunning(v.Name, assigned[v.Name]); err != nil {
			return err
		}
	}
	return nil
}

// MaxReachableLoad returns the largest subset-sum of weights that does
// not exceed cap, computed with the dynamic-programming reachability
// of Trick's knapsack propagation. The solver uses it to bound the
// load a node can still accept: a partial packing whose reachable
// loads cannot absorb the remaining mandatory demand is dead and can
// be pruned.
func MaxReachableLoad(cap int, weights []int) int {
	if cap <= 0 {
		return 0
	}
	// Bitset DP: bit i set <=> load i reachable.
	words := cap/64 + 1
	reach := make([]uint64, words)
	reach[0] = 1
	for _, w := range weights {
		if w <= 0 {
			continue
		}
		if w > cap {
			continue
		}
		shiftOrInto(reach, w, cap)
	}
	for i := cap; i >= 0; i-- {
		if reach[i/64]&(1<<uint(i%64)) != 0 {
			return i
		}
	}
	return 0
}

// shiftOrInto performs reach |= reach << w, truncated to cap+1 bits.
func shiftOrInto(reach []uint64, w, cap int) {
	words := len(reach)
	wordShift := w / 64
	bitShift := uint(w % 64)
	for i := words - 1; i >= 0; i-- {
		var v uint64
		if i-wordShift >= 0 {
			v = reach[i-wordShift] << bitShift
			if bitShift > 0 && i-wordShift-1 >= 0 {
				v |= reach[i-wordShift-1] >> (64 - bitShift)
			}
		}
		reach[i] |= v
	}
	// Mask bits above cap.
	last := cap / 64
	reach[last] &= (1 << uint(cap%64+1)) - 1
	for i := last + 1; i < words; i++ {
		reach[i] = 0
	}
}

// Reachable reports whether some subset of weights sums exactly to
// target (a helper for tests and for exact-fit reasoning).
func Reachable(target int, weights []int) bool {
	if target < 0 {
		return false
	}
	if target == 0 {
		return true
	}
	reach := make([]uint64, target/64+1)
	reach[0] = 1
	for _, w := range weights {
		if w <= 0 || w > target {
			continue
		}
		shiftOrInto(reach, w, target)
	}
	return reach[target/64]&(1<<uint(target%64)) != 0
}
