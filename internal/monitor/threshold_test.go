package monitor

import (
	"fmt"
	"testing"

	"cwcs/internal/core"
	"cwcs/internal/duration"
	"cwcs/internal/sim"
	"cwcs/internal/vjob"
)

func thresholdConfig() *vjob.Configuration {
	cfg := vjob.NewConfiguration()
	cfg.AddNode(vjob.NewNode("n0", 2, 4096))
	cfg.AddNode(vjob.NewNode("n1", 2, 4096))
	cfg.AddVM(vjob.NewVM("v1", "j", 2, 1024))
	return cfg
}

// TestThresholdSustainedOverload: one hot sample is noise; Sustain
// consecutive hot samples fire exactly one LoadChange, and no second
// event fires until the node cools below Low.
func TestThresholdSustainedOverload(t *testing.T) {
	cfg := thresholdConfig()
	if err := cfg.SetRunning("v1", "n0"); err != nil {
		t.Fatal(err)
	}
	w := &ThresholdWatcher{High: 0.9, Low: 0.5, Sustain: 2}

	// CPU demand 2 of 2 = 1.0 > High: hot.
	if evs := w.Sample(0, cfg); len(evs) != 0 {
		t.Fatalf("first hot sample fired early: %v", evs)
	}
	evs := w.Sample(10, cfg)
	if len(evs) != 1 || evs[0].Kind != core.LoadChange {
		t.Fatalf("sustained overload events: %v", evs)
	}
	if len(evs[0].Nodes) != 1 || evs[0].Nodes[0] != "n0" || len(evs[0].VMs) != 1 {
		t.Fatalf("event scope: %+v", evs[0])
	}
	// Still hot: hysteresis holds the event back.
	for i := 0; i < 5; i++ {
		if evs := w.Sample(float64(20+10*i), cfg); len(evs) != 0 {
			t.Fatalf("re-fired while hot: %v", evs)
		}
	}
	// Cool below Low, then overload again: a new event may fire.
	cfg.VM("v1").CPUDemand = 0
	if evs := w.Sample(100, cfg); len(evs) != 0 {
		t.Fatalf("cooling fired: %v", evs)
	}
	cfg.VM("v1").CPUDemand = 2
	w.Sample(110, cfg)
	if evs := w.Sample(120, cfg); len(evs) != 1 {
		t.Fatalf("re-armed overload not fired: %v", evs)
	}
}

// TestThresholdNodeDownUp: nodes vanishing from (and returning to) the
// configuration become NodeDown / NodeUp events.
func TestThresholdNodeDownUp(t *testing.T) {
	cfg := thresholdConfig()
	w := &ThresholdWatcher{}
	if evs := w.Sample(0, cfg); len(evs) != 0 {
		t.Fatalf("baseline fired: %v", evs)
	}
	if err := cfg.RemoveNode("n1"); err != nil {
		t.Fatal(err)
	}
	evs := w.Sample(10, cfg)
	if len(evs) != 1 || evs[0].Kind != core.NodeDown || evs[0].Nodes[0] != "n1" {
		t.Fatalf("node-down events: %v", evs)
	}
	if evs := w.Sample(20, cfg); len(evs) != 0 {
		t.Fatalf("node-down re-fired: %v", evs)
	}
	cfg.AddNode(vjob.NewNode("n1", 2, 4096))
	evs = w.Sample(30, cfg)
	if len(evs) != 1 || evs[0].Kind != core.NodeUp || evs[0].Nodes[0] != "n1" {
		t.Fatalf("node-up events: %v", evs)
	}
}

// TestThresholdMemoryAndZeroCapacity: the utilization fraction takes
// the worse of CPU and memory, and zero-capacity nodes only count as
// saturated when demanded.
func TestThresholdMemoryAndZeroCapacity(t *testing.T) {
	cfg := vjob.NewConfiguration()
	cfg.AddNode(vjob.NewNode("n0", 0, 1000))
	cfg.AddVM(vjob.NewVM("v1", "j", 0, 990))
	if err := cfg.SetRunning("v1", "n0"); err != nil {
		t.Fatal(err)
	}
	w := &ThresholdWatcher{Sustain: 1}
	// 99% memory > default High 0.9 and Sustain 1: fires immediately,
	// and the zero-capacity CPU (with zero demand) contributes nothing.
	if evs := w.Sample(0, cfg); len(evs) != 1 || evs[0].Kind != core.LoadChange {
		t.Fatalf("memory overload: %v", evs)
	}
	if evs := w.Sample(10, cfg); len(evs) != 0 {
		t.Fatalf("hysteresis broken: %v", evs)
	}
}

// TestThresholdAttachFeedsSim: wired to the simulator, the watcher
// samples on the virtual clock and pushes events through Emit.
func TestThresholdAttachFeedsSim(t *testing.T) {
	cfg := vjob.NewConfiguration()
	cfg.AddNode(vjob.NewNode("n0", 1, 4096))
	cfg.AddVM(vjob.NewVM("v1", "j", 1, 1024))
	if err := cfg.SetRunning("v1", "n0"); err != nil {
		t.Fatal(err)
	}
	c := sim.New(cfg, duration.Default())
	c.SetWorkload("v1", []sim.Phase{{CPU: 1, Seconds: 500}})

	var got []core.Event
	w := &ThresholdWatcher{Interval: 10, High: 0.9, Low: 0.5, Sustain: 2,
		Emit: func(ev core.Event) { got = append(got, ev) }}
	w.Attach(c)
	c.Run(100)
	if len(got) != 1 || got[0].Kind != core.LoadChange {
		t.Fatalf("attached watcher events: %v", got)
	}
	if got[0].At < 10 {
		t.Fatalf("event time: %+v", got[0])
	}
	w.Stop()
	before := len(got)
	c.Run(200)
	if len(got) != before {
		t.Fatal("watcher kept sampling after Stop")
	}
	_ = fmt.Sprint(got)
}
