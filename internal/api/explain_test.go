package api

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cwcs/internal/core"
)

// TestViolationsEndpoint drives a real overload episode through the
// loop and checks GET /v1/violations attributes the accrued exposure:
// who suffered (the overloading vjob), where (the oversubscribed
// node), on which dimension — and that the labeled
// cwcs_violation_seconds_total series carry the same attribution.
func TestViolationsEndpoint(t *testing.T) {
	b := newTestbed(t, 4, 2, 4096)
	// Two 2-cpu VMs on one 2-cpu node: violated until the loop migrates
	// one away, so violation-seconds accrue with a clear dominant
	// consumer.
	b.place("ja", 2, 2, 1024, []string{"node000", "node000"})
	b.locked(func() {
		b.loop.Notify(b.act, core.Event{
			Kind: core.VMArrival, At: b.c.Now(),
			VMs: []string{"ja-vm0", "ja-vm1"}, Nodes: []string{"node000"},
		})
	})
	b.advance(60)

	var v violationsJSON
	if err := json.Unmarshal(b.get(t, "/v1/violations", http.StatusOK), &v); err != nil {
		t.Fatalf("violations: %v", err)
	}
	if v.Total <= 0 {
		t.Fatalf("no violation exposure after an overload episode: %+v", v)
	}
	b.locked(func() {
		if got := b.violSec(); got != v.Total {
			t.Fatalf("endpoint total %v != ledger integral %v", v.Total, got)
		}
	})
	if len(v.VJobs) == 0 || v.VJobs[0].VJob != "ja" || v.VJobs[0].Seconds <= 0 {
		t.Fatalf("vjob attribution: %+v", v.VJobs)
	}
	if v.VJobs[0].Kinds["cpu"] <= 0 {
		t.Fatalf("cpu dimension not charged: %+v", v.VJobs[0].Kinds)
	}
	if len(v.Nodes) == 0 || v.Nodes[0].Node != "node000" || v.Nodes[0].Seconds <= 0 {
		t.Fatalf("node attribution: %+v", v.Nodes)
	}

	// ?k caps the per-entity rows; 0 means all; junk is rejected.
	var capped violationsJSON
	if err := json.Unmarshal(b.get(t, "/v1/violations?k=1", http.StatusOK), &capped); err != nil {
		t.Fatalf("violations?k=1: %v", err)
	}
	if len(capped.VJobs) > 1 || len(capped.Nodes) > 1 {
		t.Fatalf("k=1 not honoured: %d vjobs, %d nodes", len(capped.VJobs), len(capped.Nodes))
	}
	b.get(t, "/v1/violations?k=0", http.StatusOK)
	b.get(t, "/v1/violations?k=-1", http.StatusBadRequest)
	b.get(t, "/v1/violations?k=many", http.StatusBadRequest)

	// The scrape carries the same attribution as labeled series.
	text := string(b.get(t, "/metrics", http.StatusOK))
	for _, want := range []string{
		`cwcs_violation_seconds_total{vjob="ja",kind="cpu"}`,
		`cwcs_violation_seconds_total{node="node000",kind="cpu"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %s:\n%s", want, text)
		}
	}
}

// TestSolverEndpoint checks GET /v1/solver serves the loop's search
// telemetry after a reconfiguration episode: solves with winners,
// causes and scopes, mirrored by the portfolio-win and warm-start
// metric families.
func TestSolverEndpoint(t *testing.T) {
	b := newTestbed(t, 4, 2, 4096)
	b.churn(t)

	var snap core.SolverSnapshot
	if err := json.Unmarshal(b.get(t, "/v1/solver", http.StatusOK), &snap); err != nil {
		t.Fatalf("solver: %v", err)
	}
	if snap.Solves == 0 {
		t.Fatal("no solves recorded after a reconfiguration episode")
	}
	total := uint64(0)
	for _, w := range snap.Wins {
		total += w
	}
	if total != uint64(snap.Solves) {
		t.Fatalf("wins %v do not cover all %d solves", snap.Wins, snap.Solves)
	}
	if snap.ResolveCauses["vm-arrival"] == 0 {
		t.Fatalf("arrival cause not recorded: %v", snap.ResolveCauses)
	}
	if len(snap.Recent) == 0 {
		t.Fatal("no recent solve reports")
	}
	for _, r := range snap.Recent {
		if r.Winner == "" || (r.Scope != "full" && r.Scope != "slice") {
			t.Fatalf("malformed solve report: %+v", r)
		}
	}

	text := string(b.get(t, "/metrics", http.StatusOK))
	if !strings.Contains(text, `cwcs_portfolio_wins_total{strategy=`) {
		t.Errorf("no portfolio win series in metrics:\n%s", text)
	}
	metricValue(t, text, "cwcs_warm_start_hits_total")
	metricValue(t, text, "cwcs_warm_start_misses_total")
}

// TestExplainEndpointsDisabledReturn501: without a ledger or solver
// telemetry wired, the attribution endpoints decline instead of
// serving empty data.
func TestExplainEndpointsDisabledReturn501(t *testing.T) {
	s := &Server{}
	for path, h := range map[string]http.HandlerFunc{
		"/v1/violations": s.handleViolations,
		"/v1/solver":     s.handleSolver,
	} {
		w := httptest.NewRecorder()
		h(w, httptest.NewRequest("GET", path, nil))
		if w.Code != http.StatusNotImplemented {
			t.Errorf("%s without a source: status %d, want 501", path, w.Code)
		}
	}
}
