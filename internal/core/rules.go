package core

import (
	"fmt"

	"cwcs/internal/cp"
	"cwcs/internal/vjob"
)

// PlacementRule is an administrator-supplied low-level constraint on
// where VMs may run (the paper's §7: Entropy already supports such
// relations — e.g. hosting VMs on different nodes for high
// availability — and this engine maintains them while optimizing the
// cluster-wide context switch). Rules apply to the VMs that end up in
// the Running state; sleeping and waiting VMs hold no placement.
type PlacementRule interface {
	// Apply posts the rule on the solver. vars maps VM names (of the
	// VMs that will run) to their assignment variable; nodeIdx maps
	// node names to variable values. Unknown VM names are ignored: the
	// rule binds placement, not scheduling.
	Apply(s *cp.Solver, vars map[string]*cp.IntVar, nodeIdx map[string]int) error
	// Check validates a concrete configuration against the rule, for
	// plan validation and tests.
	Check(cfg *vjob.Configuration) error
}

// Spread keeps the named VMs on pairwise distinct nodes (the classic
// high-availability anti-affinity rule).
type Spread struct {
	// VMs are the VM names the rule covers.
	VMs []string
}

// Apply posts an AllDifferent over the covered running VMs.
func (r Spread) Apply(s *cp.Solver, vars map[string]*cp.IntVar, nodeIdx map[string]int) error {
	var items []*cp.IntVar
	for _, name := range r.VMs {
		if v, ok := vars[name]; ok {
			items = append(items, v)
		}
	}
	if len(items) > 1 {
		s.Post(&cp.AllDifferent{Items: items})
	}
	return nil
}

// Check verifies pairwise distinct hosts among the running VMs.
func (r Spread) Check(cfg *vjob.Configuration) error {
	seen := map[string]string{}
	for _, name := range r.VMs {
		h := cfg.HostOf(name)
		if h == "" {
			continue
		}
		if prev, ok := seen[h]; ok {
			return fmt.Errorf("core: spread violated: %s and %s share node %s", prev, name, h)
		}
		seen[h] = name
	}
	return nil
}

// Ban keeps the named VMs off the given nodes (e.g. nodes entering
// maintenance).
type Ban struct {
	VMs   []string
	Nodes []string
}

// Apply removes the banned nodes from the VMs' domains.
func (r Ban) Apply(s *cp.Solver, vars map[string]*cp.IntVar, nodeIdx map[string]int) error {
	for _, name := range r.VMs {
		v, ok := vars[name]
		if !ok {
			continue
		}
		for _, n := range r.Nodes {
			idx, ok := nodeIdx[n]
			if !ok {
				return fmt.Errorf("core: ban references unknown node %q", n)
			}
			if err := s.RemoveValue(v, idx); err != nil {
				return fmt.Errorf("core: ban leaves no host for %s: %w", name, err)
			}
		}
	}
	return nil
}

// Check verifies no covered running VM sits on a banned node.
func (r Ban) Check(cfg *vjob.Configuration) error {
	banned := map[string]bool{}
	for _, n := range r.Nodes {
		banned[n] = true
	}
	for _, name := range r.VMs {
		if h := cfg.HostOf(name); h != "" && banned[h] {
			return fmt.Errorf("core: ban violated: %s runs on %s", name, h)
		}
	}
	return nil
}

// Fence restricts the named VMs to the given node group (e.g. nodes
// holding a dataset or a licence).
type Fence struct {
	VMs   []string
	Nodes []string
}

// Apply prunes every node outside the fence from the VMs' domains.
func (r Fence) Apply(s *cp.Solver, vars map[string]*cp.IntVar, nodeIdx map[string]int) error {
	inside := map[int]bool{}
	for _, n := range r.Nodes {
		idx, ok := nodeIdx[n]
		if !ok {
			return fmt.Errorf("core: fence references unknown node %q", n)
		}
		inside[idx] = true
	}
	for _, name := range r.VMs {
		v, ok := vars[name]
		if !ok {
			continue
		}
		for _, val := range v.Values() {
			if !inside[val] {
				if err := s.RemoveValue(v, val); err != nil {
					return fmt.Errorf("core: fence leaves no host for %s: %w", name, err)
				}
			}
		}
	}
	return nil
}

// Check verifies every covered running VM sits inside the fence.
func (r Fence) Check(cfg *vjob.Configuration) error {
	inside := map[string]bool{}
	for _, n := range r.Nodes {
		inside[n] = true
	}
	for _, name := range r.VMs {
		if h := cfg.HostOf(name); h != "" && !inside[h] {
			return fmt.Errorf("core: fence violated: %s runs on %s", name, h)
		}
	}
	return nil
}

// Gather co-locates the named VMs on one node (latency-bound
// communication).
type Gather struct {
	VMs []string
}

// Apply chains equality between consecutive covered VMs through a
// dedicated propagator.
func (r Gather) Apply(s *cp.Solver, vars map[string]*cp.IntVar, nodeIdx map[string]int) error {
	var items []*cp.IntVar
	for _, name := range r.VMs {
		if v, ok := vars[name]; ok {
			items = append(items, v)
		}
	}
	if len(items) < 2 {
		return nil
	}
	s.Post(&cp.FuncConstraint{On: items, Run: func(s *cp.Solver) error {
		// Intersect the domains: all variables must share a value.
		for _, val := range items[0].Values() {
			keep := true
			for _, v := range items[1:] {
				if !v.Contains(val) {
					keep = false
					break
				}
			}
			if !keep {
				if err := s.RemoveValue(items[0], val); err != nil {
					return err
				}
			}
		}
		// Mirror item 0's (now intersected) domain onto the others.
		for _, v := range items[1:] {
			for _, val := range v.Values() {
				if !items[0].Contains(val) {
					if err := s.RemoveValue(v, val); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}})
	return nil
}

// Check verifies the covered running VMs share a node.
func (r Gather) Check(cfg *vjob.Configuration) error {
	host := ""
	first := ""
	for _, name := range r.VMs {
		h := cfg.HostOf(name)
		if h == "" {
			continue
		}
		if host == "" {
			host, first = h, name
			continue
		}
		if h != host {
			return fmt.Errorf("core: gather violated: %s on %s but %s on %s", first, host, name, h)
		}
	}
	return nil
}
