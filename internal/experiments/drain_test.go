package experiments

import (
	"strings"
	"testing"
	"time"
)

// quickDrainOptions is a scenario small enough for the test suite: 24
// nodes, drain 3, light churn.
func quickDrainOptions() DrainOptions {
	o := DefaultDrainOptions()
	o.Nodes = 24
	o.InitialVJobs = 4
	o.VMsPerVJob = 4
	o.ArrivalRate = 1.0 / 60
	o.ArrivalStop = 120
	o.DrainAt = 120
	o.WorkScale = 0.2
	o.Horizon = 1500
	o.Timeout = 100 * time.Millisecond
	o.Workers = 1
	o.DrainFraction = 0.125
	return o
}

func TestRunDrainEvacuatesWithoutBreaches(t *testing.T) {
	r := RunDrain(quickDrainOptions())
	if r.Drained != 3 {
		t.Fatalf("drained %d nodes (want 3)", r.Drained)
	}
	if r.Evacuated != r.Drained {
		t.Fatalf("evacuated %d of %d drained nodes", r.Evacuated, r.Drained)
	}
	if r.TimeToEmpty < 0 {
		t.Fatal("drained nodes never emptied")
	}
	if r.InvariantBreaches != 0 {
		t.Fatalf("%d invariant breaches during the evacuation", r.InvariantBreaches)
	}
	if r.Stats.SubSolves == 0 {
		t.Fatal("no solver activity recorded")
	}
}

func TestDrainTableAndCSV(t *testing.T) {
	r := DrainResult{
		Nodes: 24, Drained: 3, Evacuated: 3, Offline: 2,
		TimeToEmpty: 42, ViolationSeconds: 7, Switches: 5,
		Arrived: 6, Completed: 4, End: 1500,
	}
	r.Stats.SubSolves = 9
	table := DrainTable(r)
	for _, want := range []string{"evacuate 3 of 24 nodes", "42 s", "invariant breaches", "9 sub-solves"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
	never := r
	never.TimeToEmpty = -1
	if !strings.Contains(DrainTable(never), "never") {
		t.Fatal("unfinished evacuation not rendered as never")
	}
	csv := DrainCSV(r)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines: %d", len(lines))
	}
	if nf, nh := len(strings.Split(lines[1], ",")), len(strings.Split(lines[0], ",")); nf != nh {
		t.Fatalf("csv row has %d fields, header %d", nf, nh)
	}
}

// BenchmarkDrainEvacuation is the regression-gated evacuation loop: a
// small cluster drains 3 nodes to empty under the event-driven loop.
func BenchmarkDrainEvacuation(b *testing.B) {
	opts := quickDrainOptions()
	opts.ArrivalRate = 0 // pure evacuation, no churn noise
	for i := 0; i < b.N; i++ {
		r := RunDrain(opts)
		if r.Evacuated != r.Drained {
			b.Fatalf("evacuated %d of %d", r.Evacuated, r.Drained)
		}
	}
}
