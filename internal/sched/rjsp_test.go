package sched

import (
	"fmt"
	"testing"

	"cwcs/internal/vjob"
)

func mkCluster(nodes, cpu, mem int) *vjob.Configuration {
	c := vjob.NewConfiguration()
	for i := 0; i < nodes; i++ {
		c.AddNode(vjob.NewNode(fmt.Sprintf("n%02d", i), cpu, mem))
	}
	return c
}

// figure6 builds the paper's Figure 6 scenario: 3 uniprocessor nodes;
// vjob1 (running) uses 2 busy VMs, vjob2 (running) needs 2 busy VMs,
// vjob3 (waiting) needs 1 busy VM. Each computing VM needs a full CPU.
// Demands have grown so vjob1+vjob2 no longer fit together.
func figure6(t *testing.T) (*vjob.Configuration, []*vjob.VJob) {
	t.Helper()
	c := mkCluster(3, 1, 4096)
	j1 := vjob.NewVJob("vjob1", 1,
		vjob.NewVM("vjob1-1", "", 1, 1024),
		vjob.NewVM("vjob1-2", "", 1, 1024))
	j2 := vjob.NewVJob("vjob2", 2,
		vjob.NewVM("vjob2-1", "", 1, 1024),
		vjob.NewVM("vjob2-2", "", 1, 1024))
	j3 := vjob.NewVJob("vjob3", 3,
		vjob.NewVM("vjob3-1", "", 1, 1024))
	for _, j := range []*vjob.VJob{j1, j2, j3} {
		for _, v := range j.VMs {
			c.AddVM(v)
		}
	}
	// vjob1 and vjob2 are running (overloaded now that all VMs compute).
	if err := c.SetRunning("vjob1-1", "n00"); err != nil {
		t.Fatal(err)
	}
	if err := c.SetRunning("vjob1-2", "n01"); err != nil {
		t.Fatal(err)
	}
	if err := c.SetRunning("vjob2-1", "n02"); err != nil {
		t.Fatal(err)
	}
	if err := c.SetRunning("vjob2-2", "n02"); err != nil {
		t.Fatal(err)
	}
	return c, []*vjob.VJob{j1, j2, j3}
}

// TestRJSPFigure6: vjob1 and vjob3 run, vjob2 is suspended — exactly
// the paper's walkthrough.
func TestRJSPFigure6(t *testing.T) {
	c, queue := figure6(t)
	target := Consolidation{}.Decide(c, queue)
	if target["vjob1"] != vjob.Running {
		t.Fatalf("vjob1 -> %v, want running", target["vjob1"])
	}
	if target["vjob2"] != vjob.Sleeping {
		t.Fatalf("vjob2 -> %v, want sleeping", target["vjob2"])
	}
	if target["vjob3"] != vjob.Running {
		t.Fatalf("vjob3 -> %v, want running", target["vjob3"])
	}
}

// TestRJSPRespectsQueueOrder: with room for only one vjob, the highest
// priority (lowest number) wins.
func TestRJSPRespectsQueueOrder(t *testing.T) {
	c := mkCluster(1, 1, 4096)
	j1 := vjob.NewVJob("a", 2, vjob.NewVM("a-1", "", 1, 1024))
	j2 := vjob.NewVJob("b", 1, vjob.NewVM("b-1", "", 1, 1024))
	for _, j := range []*vjob.VJob{j1, j2} {
		for _, v := range j.VMs {
			c.AddVM(v)
		}
	}
	target := Consolidation{}.Decide(c, []*vjob.VJob{j1, j2})
	if target["b"] != vjob.Running || target["a"] != vjob.Waiting {
		t.Fatalf("target = %v", target)
	}
}

// TestRJSPResumesSleepingWhenRoomFrees: a sleeping vjob is selected to
// run once resources allow.
func TestRJSPResumesSleepingWhenRoomFrees(t *testing.T) {
	c := mkCluster(2, 1, 4096)
	j := vjob.NewVJob("s", 1, vjob.NewVM("s-1", "", 1, 1024))
	c.AddVM(j.VMs[0])
	if err := c.SetSleeping("s-1", "n00"); err != nil {
		t.Fatal(err)
	}
	target := Consolidation{}.Decide(c, []*vjob.VJob{j})
	if target["s"] != vjob.Running {
		t.Fatalf("sleeping vjob -> %v, want running", target["s"])
	}
}

// TestRJSPSkipsTerminated: a vjob with no VMs left gets no target.
func TestRJSPSkipsTerminated(t *testing.T) {
	c := mkCluster(1, 1, 4096)
	j := vjob.NewVJob("gone", 1, vjob.NewVM("gone-1", "", 1, 512))
	// VM never added to the configuration: terminated.
	target := Consolidation{}.Decide(c, []*vjob.VJob{j})
	if _, ok := target["gone"]; ok {
		t.Fatal("terminated vjob received a target state")
	}
}

// TestStaticFCFSNeverPreempts: running vjobs stay running even when a
// higher-priority vjob waits.
func TestStaticFCFSNeverPreempts(t *testing.T) {
	c := mkCluster(1, 1, 4096)
	lo := vjob.NewVJob("lo", 2, vjob.NewVM("lo-1", "", 1, 1024))
	hi := vjob.NewVJob("hi", 1, vjob.NewVM("hi-1", "", 1, 1024))
	c.AddVM(lo.VMs[0])
	c.AddVM(hi.VMs[0])
	if err := c.SetRunning("lo-1", "n00"); err != nil {
		t.Fatal(err)
	}
	target := StaticFCFS{}.Decide(c, []*vjob.VJob{hi, lo})
	if target["lo"] != vjob.Running {
		t.Fatal("static FCFS preempted a running vjob")
	}
	if target["hi"] != vjob.Waiting {
		t.Fatal("hi should wait")
	}
}

// TestStaticFCFSHeadBlocks: without backfill, a blocked head stops all
// later vjobs, even ones that would fit.
func TestStaticFCFSHeadBlocks(t *testing.T) {
	c := mkCluster(2, 1, 4096)
	blockerVMs := []*vjob.VM{
		vjob.NewVM("big-1", "", 1, 1024),
		vjob.NewVM("big-2", "", 1, 1024),
		vjob.NewVM("big-3", "", 1, 1024),
	}
	big := vjob.NewVJob("big", 1, blockerVMs...) // needs 3 CPUs, cluster has 2
	small := vjob.NewVJob("small", 2, vjob.NewVM("small-1", "", 1, 1024))
	for _, v := range big.VMs {
		c.AddVM(v)
	}
	c.AddVM(small.VMs[0])

	strict := StaticFCFS{}.Decide(c, []*vjob.VJob{big, small})
	if strict["small"] != vjob.Waiting {
		t.Fatalf("strict FCFS let small jump: %v", strict)
	}
	easy := StaticFCFS{Backfill: true}.Decide(c, []*vjob.VJob{big, small})
	if easy["small"] != vjob.Running {
		t.Fatalf("backfill did not start small: %v", easy)
	}
}

func TestSortQueueOrdering(t *testing.T) {
	a := &vjob.VJob{Name: "a", Priority: 2}
	b := &vjob.VJob{Name: "b", Priority: 1, Submitted: 5}
	c := &vjob.VJob{Name: "c", Priority: 1, Submitted: 3}
	d := &vjob.VJob{Name: "d", Priority: 1, Submitted: 3}
	got := SortQueue([]*vjob.VJob{a, b, c, d})
	want := []string{"c", "d", "b", "a"}
	for i, w := range want {
		if got[i].Name != w {
			t.Fatalf("order = %v", got)
		}
	}
}
