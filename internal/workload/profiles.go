package workload

import (
	"math/rand"

	"cwcs/internal/resources"
	"cwcs/internal/vjob"
)

// Profile classifies what a vjob is bound on beyond CPU and memory.
// The paper's NGB gangs are compute-bound; the multi-resource model
// adds network-bound vjobs (data-intensive exchanges saturating the
// NIC long before the CPU) and disk-bound vjobs (checkpoint/scan
// loads saturating storage throughput), so experiments can build
// heterogeneous clusters where CPU+memory packing alone over-commits
// another dimension.
type Profile int

const (
	// ComputeBound is the paper's workload: CPU and memory demands
	// only. The zero value, so existing call sites are unchanged.
	ComputeBound Profile = iota
	// NetBound vjobs stream data: every VM holds a large slice of the
	// node NIC while computing little.
	NetBound
	// DiskBound vjobs hammer storage: every VM holds a large slice of
	// the node's disk throughput.
	DiskBound
)

// Profiles lists the vjob classes, for sweeps.
var Profiles = []Profile{ComputeBound, NetBound, DiskBound}

// String names the profile.
func (p Profile) String() string {
	switch p {
	case NetBound:
		return "net-bound"
	case DiskBound:
		return "disk-bound"
	default:
		return "compute-bound"
	}
}

// Per-VM extra demands of the bound profiles. Sized against the
// DefaultMultiResNode capacities: four net-bound or four disk-bound
// VMs saturate their dimension on one node, while their CPU/memory
// footprint leaves room for twice that — the imbalance that makes a
// 2-D packer over-commit.
const (
	// DefaultNodeNet is the reference node NIC capacity in Mbit/s.
	DefaultNodeNet = 1000
	// DefaultNodeDisk is the reference node storage throughput in
	// MiB/s.
	DefaultNodeDisk = 600
	// NetBoundBandwidth is one net-bound VM's NIC demand in Mbit/s.
	NetBoundBandwidth = 250
	// NetBoundDisk is the light storage demand of a net-bound VM.
	NetBoundDisk = 10
	// DiskBoundThroughput is one disk-bound VM's storage demand in
	// MiB/s.
	DiskBoundThroughput = 150
	// DiskBoundBandwidth is the light NIC demand of a disk-bound VM.
	DiskBoundBandwidth = 25
)

// ExtraDemand returns the profile's per-VM demand on the extra
// dimensions (zero vector for ComputeBound).
func (p Profile) ExtraDemand() resources.Vector {
	var v resources.Vector
	switch p {
	case NetBound:
		v.Set(resources.NetBW, NetBoundBandwidth)
		v.Set(resources.DiskIO, NetBoundDisk)
	case DiskBound:
		v.Set(resources.DiskIO, DiskBoundThroughput)
		v.Set(resources.NetBW, DiskBoundBandwidth)
	}
	return v
}

// Apply stamps the profile's extra demands onto every VM of the vjob.
func (p Profile) Apply(j *vjob.VJob) {
	extra := p.ExtraDemand()
	if extra.IsZero() {
		return
	}
	for _, v := range j.VMs {
		v.Demand = v.Demand.Add(extra)
	}
}

// NewSpecProfile generates a vjob like NewSpec and stamps the
// profile's extra resource demands on its VMs. ComputeBound reproduces
// NewSpec exactly (same rng consumption).
func NewSpecProfile(name string, bench Benchmark, class Class, profile Profile, nVMs, priority int, rng *rand.Rand) Spec {
	spec := NewSpec(name, bench, class, nVMs, priority, rng)
	profile.Apply(spec.Job)
	return spec
}
