package api

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// sseEvent is one decoded frame of a test SSE client; heartbeat
// comments decode as the synthetic name "heartbeat".
type sseEvent struct {
	name, data string
}

// sseStream decodes an SSE response body into a channel until the body
// closes.
func sseStream(resp *http.Response) <-chan sseEvent {
	ch := make(chan sseEvent, 1024)
	go func() {
		defer close(ch)
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20) // config snapshots are big
		var name string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				ch <- sseEvent{name: name, data: strings.TrimPrefix(line, "data: ")}
			case strings.HasPrefix(line, ": heartbeat"):
				ch <- sseEvent{name: "heartbeat"}
			}
		}
	}()
	return ch
}

// watchState opens GET /v1/watch/state with the given query and
// returns the decoded event stream; the connection dies with ctx.
func (b *testbed) watchState(t *testing.T, ctx context.Context, query string) <-chan sseEvent {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, "GET", b.ts.URL+"/v1/watch/state"+query, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q, want text/event-stream", ct)
	}
	return sseStream(resp)
}

// nextEvent reads one frame or fails the test.
func nextEvent(t *testing.T, events <-chan sseEvent, what string) sseEvent {
	t.Helper()
	select {
	case ev, ok := <-events:
		if !ok {
			t.Fatalf("stream closed waiting for %s", what)
		}
		return ev
	case <-time.After(15 * time.Second):
		t.Fatalf("timeout waiting for %s", what)
	}
	panic("unreachable")
}

// TestWatchStateSnapshotThenDeltas pins the stream contract: after the
// hello, each selected stream opens with a full snapshot (reset for
// nodes), and later frames carry only what changed.
func TestWatchStateSnapshotThenDeltas(t *testing.T) {
	b := newTestbed(t, 4, 2, 4096)
	b.srv.StateInterval = 5 * time.Millisecond
	b.place("ja", 2, 1, 1024, []string{"node000", "node001"})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := b.watchState(t, ctx, "") // empty selection: everything wired

	if ev := nextEvent(t, events, "hello"); ev.name != "hello" {
		t.Fatalf("first event = %q, want hello", ev.name)
	}
	// The first frame of every stream is a snapshot, in selection order
	// (config, nodes, plan).
	snap := map[string]sseEvent{}
	for len(snap) < 3 {
		ev := nextEvent(t, events, "initial snapshots")
		if _, seen := snap[ev.name]; !seen {
			snap[ev.name] = ev
		}
	}
	var delta nodesDelta
	if err := json.Unmarshal([]byte(snap["nodes"].data), &delta); err != nil {
		t.Fatalf("nodes snapshot: %v", err)
	}
	if !delta.Reset || len(delta.Nodes) != 4 {
		t.Fatalf("nodes snapshot: reset=%v with %d nodes, want reset with 4", delta.Reset, len(delta.Nodes))
	}
	if !strings.Contains(snap["config"].data, `"ja-vm0"`) {
		t.Fatalf("config snapshot misses the placed VM: %s", snap["config"].data)
	}

	// A state change arrives as a delta: only the drained node, no
	// reset.
	b.do(t, "POST", "/v1/nodes/node003/drain", nil, http.StatusAccepted)
	for {
		ev := nextEvent(t, events, "nodes delta after drain")
		if ev.name != "nodes" {
			continue // plan/config may legitimately move too
		}
		var d nodesDelta
		if err := json.Unmarshal([]byte(ev.data), &d); err != nil {
			t.Fatalf("nodes delta: %v", err)
		}
		if d.Reset {
			t.Fatalf("delta frame carries reset: %s", ev.data)
		}
		if len(d.Nodes) == 1 && d.Nodes[0].Name == "node003" && d.Nodes[0].Draining {
			break
		}
		t.Fatalf("unexpected nodes delta: %s", ev.data)
	}
}

// TestWatchStateStreamValidation: unknown streams and streams without a
// wired source are rejected; no config source at all means 501.
func TestWatchStateStreamValidation(t *testing.T) {
	b := newTestbed(t, 2, 2, 4096)
	b.get(t, "/v1/watch/state?streams=bogus", http.StatusBadRequest)
	b.get(t, "/v1/watch/state?streams=nodes,bogus", http.StatusBadRequest)

	bare := &Server{}
	w := httptest.NewRecorder()
	bare.handleWatchState(w, httptest.NewRequest("GET", "/v1/watch/state", nil))
	if w.Code != http.StatusNotImplemented {
		t.Fatalf("no config source: status %d, want 501", w.Code)
	}
	if _, err := bare.parseStateStreams("plan"); err == nil {
		t.Fatal("plan stream accepted without an execution source")
	}
}

// TestWatchStateHeartbeat: a quiet stream still emits keep-alive
// comments at the configured period.
func TestWatchStateHeartbeat(t *testing.T) {
	b := newTestbed(t, 2, 2, 4096)
	b.srv.WatchHeartbeat = 20 * time.Millisecond
	b.srv.StateInterval = time.Hour // one snapshot, then silence

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := b.watchState(t, ctx, "?streams=nodes")
	for {
		if ev := nextEvent(t, events, "heartbeat"); ev.name == "heartbeat" {
			return
		}
	}
}

// gatedWriter is a ResponseWriter whose Write blocks until the gate
// closes — a stalled SSE client as seen by the handler.
type gatedWriter struct {
	gate <-chan struct{}
	mu   sync.Mutex
	buf  bytes.Buffer
}

func (g *gatedWriter) Header() http.Header { return http.Header{} }
func (g *gatedWriter) WriteHeader(int)     {}
func (g *gatedWriter) Flush()              {}
func (g *gatedWriter) Write(p []byte) (int, error) {
	<-g.gate
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.buf.Write(p)
}
func (g *gatedWriter) String() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.buf.String()
}

// TestWatchStateSlowClientDropped pins the backpressure policy: a
// subscriber that stops reading is disconnected with a terminal
// dropped event once it falls StateBuffer frames behind, the producer
// never blocks (state keeps changing under it), and /metrics counts
// the drop.
func TestWatchStateSlowClientDropped(t *testing.T) {
	b := newTestbed(t, 4, 2, 4096)
	b.srv.StateBuffer = 1
	b.srv.StateInterval = time.Millisecond

	gate := make(chan struct{})
	gw := &gatedWriter{gate: gate}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		b.srv.handleWatchState(gw, httptest.NewRequest("GET", "/v1/watch/state?streams=nodes", nil).WithContext(ctx))
	}()

	// Keep the node set changing while the handler is stalled on its
	// very first write: the 1-slot buffer fills and the next delta
	// drops the subscriber.
	deadline := time.Now().Add(20 * time.Second)
	for b.srv.stateDrops.Load() == 0 && time.Now().Before(deadline) {
		b.do(t, "POST", "/v1/nodes/node001/drain", nil, http.StatusAccepted)
		b.do(t, "POST", "/v1/nodes/node001/undrain", nil, http.StatusOK)
		time.Sleep(2 * time.Millisecond)
	}
	dropped := b.srv.stateDrops.Load()
	close(gate) // un-stall the client; the handler can now say goodbye
	if dropped == 0 {
		cancel()
		<-done
		t.Fatal("producer never dropped the stalled subscriber")
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("handler did not terminate after the drop")
	}
	if out := gw.String(); !strings.Contains(out, "event: dropped") {
		t.Fatalf("no terminal dropped event in the stream:\n%s", out)
	}
	text := string(b.get(t, "/metrics", http.StatusOK))
	if v := metricValue(t, text, "cwcs_state_watch_drops_total"); v < 1 {
		t.Fatalf("cwcs_state_watch_drops_total = %g, want >= 1", v)
	}
}

// TestWatchStateReconnectResyncMidEvacuation is the dashboard-restart
// scenario: a client watches a cluster, disconnects while a drain is
// evacuating a node, reconnects mid-flight, and — applying the fresh
// snapshot plus every later delta — converges to exactly what polling
// /v1/nodes reports at quiescence.
func TestWatchStateReconnectResyncMidEvacuation(t *testing.T) {
	b := newTestbed(t, 40, 2, 4096)
	b.srv.StateInterval = 2 * time.Millisecond
	var busy []string
	for i := 0; i < 24; i++ {
		busy = append(busy, fmt.Sprintf("node%03d", i))
	}
	for j := 0; j < 12; j++ {
		b.place(fmt.Sprintf("job%02d", j), 4, 1, 1024, busy[j*2:j*2+2])
	}
	b.advance(5)

	// First client: sees the quiet snapshot, then its dashboard dies
	// just as the evacuation starts.
	ctx1, cancel1 := context.WithCancel(context.Background())
	events1 := b.watchState(t, ctx1, "?streams=nodes")
	nextEvent(t, events1, "hello")
	var first nodesDelta
	if err := json.Unmarshal([]byte(nextEvent(t, events1, "first snapshot").data), &first); err != nil {
		t.Fatal(err)
	}
	if !first.Reset || len(first.Nodes) != 40 {
		t.Fatalf("first snapshot: reset=%v, %d nodes", first.Reset, len(first.Nodes))
	}
	b.do(t, "POST", "/v1/nodes/node000/drain", nil, http.StatusAccepted)
	b.advance(10) // evacuation begins while the client is attached
	cancel1()     // ... and the dashboard restarts mid-flight

	b.advance(20) // state keeps moving with nobody watching

	// Reconnect and maintain a view: snapshot replaces everything,
	// deltas update in place.
	view := map[string]nodeJSON{}
	apply := func(ev sseEvent) {
		if ev.name != "nodes" {
			return
		}
		var d nodesDelta
		if err := json.Unmarshal([]byte(ev.data), &d); err != nil {
			t.Fatalf("bad nodes frame: %v", err)
		}
		if d.Reset {
			view = map[string]nodeJSON{}
		}
		for _, n := range d.Nodes {
			view[n.Name] = n
		}
		for _, name := range d.Removed {
			delete(view, name)
		}
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	events2 := b.watchState(t, ctx2, "?streams=nodes")
	apply(nextEvent(t, events2, "resync snapshot"))

	// Drive the evacuation to completion, consuming deltas as they
	// stream.
	evacuated := false
	for i := 0; i < 120 && !evacuated; i++ {
		b.advance(10)
		var st nodeJSON
		if err := json.Unmarshal(b.get(t, "/v1/nodes/node000", http.StatusOK), &st); err != nil {
			t.Fatal(err)
		}
		evacuated = st.Evacuated
		for drained := false; !drained; {
			select {
			case ev := <-events2:
				apply(ev)
			default:
				drained = true
			}
		}
	}
	if !evacuated {
		t.Fatal("node was not evacuated")
	}

	// Quiescence: wait until the stream goes silent, then the converged
	// view must match a poll byte-for-byte.
	for quiet := false; !quiet; {
		select {
		case ev, ok := <-events2:
			if !ok {
				t.Fatal("stream closed before quiescence")
			}
			apply(ev)
		case <-time.After(20 * b.srv.StateInterval):
			quiet = true
		}
	}
	var polled []nodeJSON
	if err := json.Unmarshal(b.get(t, "/v1/nodes", http.StatusOK), &polled); err != nil {
		t.Fatal(err)
	}
	if len(polled) != len(view) {
		t.Fatalf("view has %d nodes, poll has %d", len(view), len(polled))
	}
	for _, n := range polled {
		got, err := json.Marshal(view[n.Name])
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(n)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("node %s diverged:\n stream %s\n poll   %s", n.Name, got, want)
		}
	}
}
