// Package trace is the workload-trace layer: it reads and writes the
// versioned JSONL trace format (arrival / load-change / departure
// records with per-dimension demand, Azure/Google-cluster-trace
// shaped — see FormatVersion), converts flat CSV extracts into it
// (FromCSV), and replays a decoded trace against the simulated
// cluster through the same core.Loop notify path the synthetic
// generators use (StartReplay), so externally recorded workloads
// drive the identical machinery.
//
// It also renders experiment results: XY series as CSV and as ASCII
// scatter/line plots, and vjob allocation diagrams (Gantt) like
// Figure 12. Everything is plain text so the harness works in any
// terminal and the outputs diff cleanly.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one observation.
type Point struct{ X, Y float64 }

// Series is a named sequence of points.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// Plot is a set of series with axis labels.
type Plot struct {
	Title, XLabel, YLabel string
	Series                []*Series
}

// NewPlot returns an empty plot.
func NewPlot(title, xlabel, ylabel string) *Plot {
	return &Plot{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries creates, attaches and returns a new series.
func (p *Plot) AddSeries(name string) *Series {
	s := &Series{Name: name}
	p.Series = append(p.Series, s)
	return s
}

// markers distinguish series in ASCII plots.
var markers = []byte{'+', 'x', 'o', '*', '#', '@'}

// Render draws the plot as an ASCII scatter chart of the given grid
// size (characters).
func (p *Plot) Render(width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	empty := true
	for _, s := range p.Series {
		for _, pt := range s.Points {
			empty = false
			minX, maxX = math.Min(minX, pt.X), math.Max(maxX, pt.X)
			minY, maxY = math.Min(minY, pt.Y), math.Max(maxY, pt.Y)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", p.Title)
	if empty {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range p.Series {
		m := markers[si%len(markers)]
		for _, pt := range s.Points {
			cx := int(math.Round((pt.X - minX) / (maxX - minX) * float64(width-1)))
			cy := int(math.Round((pt.Y - minY) / (maxY - minY) * float64(height-1)))
			row := height - 1 - cy
			grid[row][cx] = m
		}
	}
	fmt.Fprintf(&b, "%s max=%.4g\n", p.YLabel, maxY)
	for _, row := range grid {
		fmt.Fprintf(&b, "|%s\n", row)
	}
	fmt.Fprintf(&b, "+%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, " %s: %.4g .. %.4g   (%s min=%.4g)\n", p.XLabel, minX, maxX, p.YLabel, minY)
	for si, s := range p.Series {
		fmt.Fprintf(&b, " %c = %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

// CSV emits x plus one column per series (aligned by point index for
// series sampled on the same grid, or per-series rows otherwise).
func (p *Plot) CSV() string {
	var b strings.Builder
	b.WriteString("series,x,y\n")
	for _, s := range p.Series {
		for _, pt := range s.Points {
			fmt.Fprintf(&b, "%s,%g,%g\n", s.Name, pt.X, pt.Y)
		}
	}
	return b.String()
}

// Gantt records execution intervals per row (vjob) and renders an
// allocation diagram like Figure 12.
type Gantt struct {
	rows  map[string][][2]float64
	order []string
	// End is the time horizon; 0 means max interval end.
	End float64
}

// NewGantt returns an empty diagram.
func NewGantt() *Gantt { return &Gantt{rows: make(map[string][][2]float64)} }

// Mark records that row was active on [from, to).
func (g *Gantt) Mark(row string, from, to float64) {
	if _, ok := g.rows[row]; !ok {
		g.order = append(g.order, row)
	}
	g.rows[row] = append(g.rows[row], [2]float64{from, to})
}

// Render draws the diagram, width characters across.
func (g *Gantt) Render(width int) string {
	if width < 10 {
		width = 10
	}
	end := g.End
	for _, ivs := range g.rows {
		for _, iv := range ivs {
			if iv[1] > end {
				end = iv[1]
			}
		}
	}
	if end == 0 {
		return "(empty)\n"
	}
	var b strings.Builder
	names := append([]string(nil), g.order...)
	sort.Strings(names)
	for _, name := range names {
		row := []byte(strings.Repeat(".", width))
		for _, iv := range g.rows[name] {
			from := int(iv[0] / end * float64(width))
			to := int(iv[1] / end * float64(width))
			if to == from {
				to = from + 1
			}
			for i := from; i < to && i < width; i++ {
				row[i] = '#'
			}
		}
		fmt.Fprintf(&b, "%-12s %s\n", name, row)
	}
	fmt.Fprintf(&b, "%-12s 0%s%.0fs\n", "", strings.Repeat(" ", width-len(fmt.Sprintf("%.0fs", end))), end)
	return b.String()
}
