package core

import (
	"container/heap"
	"testing"

	"cwcs/internal/plan"
	"cwcs/internal/vjob"
)

// fakeActuator drives the loop on a synthetic clock: plans apply
// instantly to the configuration, with a fixed virtual duration.
type fakeActuator struct {
	now      float64
	cfg      *vjob.Configuration
	execSecs float64
	events   fakeQueue
	seq      int
	executed []*plan.Plan
}

type fakeEvent struct {
	at  float64
	seq int
	fn  func()
}

type fakeQueue []*fakeEvent

func (q fakeQueue) Len() int { return len(q) }
func (q fakeQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q fakeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *fakeQueue) Push(x interface{}) { *q = append(*q, x.(*fakeEvent)) }
func (q *fakeQueue) Pop() interface{} {
	old := *q
	e := old[len(old)-1]
	*q = old[:len(old)-1]
	return e
}

func (a *fakeActuator) Now() float64 { return a.now }

func (a *fakeActuator) Schedule(at float64, fn func()) {
	a.seq++
	heap.Push(&a.events, &fakeEvent{at: at, seq: a.seq, fn: fn})
}

func (a *fakeActuator) Observe() *vjob.Configuration { return a.cfg.Clone() }

func (a *fakeActuator) Execute(p *plan.Plan, done func(float64, int)) {
	a.executed = append(a.executed, p)
	failures := 0
	for _, action := range p.Actions() {
		if err := action.Apply(a.cfg); err != nil {
			failures++
		}
	}
	dur := a.execSecs
	a.Schedule(a.now+dur, func() { done(dur, failures) })
}

// run processes events until the horizon or quiescence.
func (a *fakeActuator) run(until float64) {
	for len(a.events) > 0 {
		e := heap.Pop(&a.events).(*fakeEvent)
		if e.at > until {
			return
		}
		if e.at > a.now {
			a.now = e.at
		}
		e.fn()
	}
}

// scriptedDecision returns canned targets, one per call.
type scriptedDecision struct {
	calls   int
	targets []map[string]vjob.State
}

func (d *scriptedDecision) Decide(cfg *vjob.Configuration, queue []*vjob.VJob) map[string]vjob.State {
	i := d.calls
	d.calls++
	if i < len(d.targets) {
		return d.targets[i]
	}
	return map[string]vjob.State{}
}

func loopCluster(t *testing.T) (*vjob.Configuration, []*vjob.VJob) {
	t.Helper()
	cfg := mkCluster(2, 1, 4096)
	j := vjob.NewVJob("j", 0, vjob.NewVM("j-1", "", 1, 1024))
	cfg.AddVM(j.VMs[0])
	return cfg, []*vjob.VJob{j}
}

func TestLoopExecutesSwitchAndRecords(t *testing.T) {
	cfg, jobs := loopCluster(t)
	a := &fakeActuator{cfg: cfg, execSecs: 12}
	dec := &scriptedDecision{targets: []map[string]vjob.State{
		{"j": vjob.Running},
	}}
	var got []SwitchRecord
	l := &Loop{
		Decision: dec,
		Interval: 30,
		Queue:    func() []*vjob.VJob { return jobs },
		OnSwitch: func(r SwitchRecord) { got = append(got, r) },
	}
	l.Start(a)
	a.run(100)
	if cfg.StateOf("j-1") != vjob.Running {
		t.Fatal("loop did not start the vjob")
	}
	if len(l.Records) != 1 || len(got) != 1 {
		t.Fatalf("records = %d, callbacks = %d", len(l.Records), len(got))
	}
	if got[0].Duration != 12 || got[0].Actions != 1 {
		t.Fatalf("record = %+v", got[0])
	}
	// Subsequent iterations produce empty decisions: no more records,
	// but the decision module keeps being polled every interval.
	if dec.calls < 2 {
		t.Fatalf("decision polled %d times", dec.calls)
	}
}

func TestLoopSkipsEmptyPlans(t *testing.T) {
	cfg, jobs := loopCluster(t)
	a := &fakeActuator{cfg: cfg}
	l := &Loop{
		Decision: &scriptedDecision{}, // always empty targets
		Interval: 10,
		Queue:    func() []*vjob.VJob { return jobs },
	}
	l.Start(a)
	a.run(55)
	if len(l.Records) != 0 {
		t.Fatalf("empty decisions produced %d switches", len(l.Records))
	}
	if len(a.executed) != 0 {
		t.Fatal("empty plan executed")
	}
}

func TestLoopStops(t *testing.T) {
	cfg, jobs := loopCluster(t)
	a := &fakeActuator{cfg: cfg}
	dec := &scriptedDecision{}
	l := &Loop{Decision: dec, Interval: 10, Queue: func() []*vjob.VJob { return jobs }}
	l.Start(a)
	a.run(25) // a few iterations
	calls := dec.calls
	l.Stop()
	a.run(200)
	if dec.calls > calls+1 {
		t.Fatalf("loop kept deciding after Stop (%d -> %d)", calls, dec.calls)
	}
}

func TestLoopDonePredicate(t *testing.T) {
	cfg, jobs := loopCluster(t)
	a := &fakeActuator{cfg: cfg}
	dec := &scriptedDecision{}
	done := false
	l := &Loop{
		Decision: dec,
		Interval: 10,
		Queue:    func() []*vjob.VJob { return jobs },
		Done:     func() bool { return done },
	}
	l.Start(a)
	a.run(35)
	before := dec.calls
	done = true
	a.run(500)
	if dec.calls != before {
		t.Fatalf("loop continued after Done (%d -> %d)", before, dec.calls)
	}
}

func TestLoopDefaultInterval(t *testing.T) {
	l := &Loop{}
	if l.interval() != 30 {
		t.Fatalf("default interval = %v", l.interval())
	}
	l.Interval = 7
	if l.interval() != 7 {
		t.Fatalf("interval = %v", l.interval())
	}
}

func TestLoopCountsFailures(t *testing.T) {
	cfg, jobs := loopCluster(t)
	// Sabotage: the actuator executes against a configuration where
	// the VM was already moved, so the planned run fails on apply.
	a := &fakeActuator{cfg: cfg}
	dec := &scriptedDecision{targets: []map[string]vjob.State{
		{"j": vjob.Running},
	}}
	l := &Loop{Decision: dec, Interval: 10, Queue: func() []*vjob.VJob { return jobs }}
	// Pre-apply the run so the loop's plan conflicts.
	preRun := &plan.Run{Machine: jobs[0].VMs[0], On: "n00"}
	l.Start(a)
	// Before the first iteration executes, mutate the live config.
	a.Schedule(0, func() {})
	if err := preRun.Apply(cfg); err != nil {
		t.Fatal(err)
	}
	a.run(50)
	if len(l.Records) == 1 && l.Records[0].Failures == 0 {
		t.Fatalf("conflicting action not counted as failure: %+v", l.Records[0])
	}
}
