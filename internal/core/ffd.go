package core

import (
	"errors"

	"cwcs/internal/packing"
	"cwcs/internal/plan"
	"cwcs/internal/vjob"
)

// FFDPlan is the standard heuristic the paper compares Entropy against
// in the §5.1 scalability study: it computes the destination
// configuration with a plain First-Fit-Decrease pass — stopping at the
// first completed viable configuration, with no regard for the current
// placement of the VMs — and plans the resulting graph. Because FFD
// ignores locality, its plans migrate and remotely resume far more
// than necessary, which is precisely the gap Figure 10 quantifies.
func FFDPlan(p Problem) (*Result, error) {
	goals, err := p.compile()
	if err != nil {
		return nil, err
	}
	dst := p.Src.Clone()
	scratch := vjob.NewConfiguration()
	for _, n := range p.Src.Nodes() {
		scratch.AddNode(n)
	}
	var runners []*vjob.VM
	for _, g := range goals {
		switch g.want {
		case vjob.Running:
			runners = append(runners, g.vm)
			scratch.AddVM(g.vm)
		case vjob.Sleeping:
			if g.cur == vjob.Running {
				if err := dst.SetSleeping(g.vm.Name, g.curLoc); err != nil {
					return nil, err
				}
			}
		case vjob.Terminated:
			dst.RemoveVM(g.vm.Name)
		}
	}
	if err := packing.FirstFitDecrease(scratch, runners); err != nil {
		var nf packing.ErrNoFit
		if errors.As(err, &nf) {
			return nil, ErrNoViableConfiguration
		}
		return nil, err
	}
	for _, v := range runners {
		if err := dst.SetRunning(v.Name, scratch.HostOf(v.Name)); err != nil {
			return nil, err
		}
	}
	g, err := plan.BuildGraph(p.Src, dst)
	if err != nil {
		return nil, err
	}
	pl, err := plan.Builder{}.Plan(g)
	if err != nil {
		return nil, err
	}
	return &Result{Dst: dst, Plan: pl, Cost: pl.Cost(), Solutions: 1}, nil
}
