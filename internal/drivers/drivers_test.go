package drivers

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"cwcs/internal/core"
	"cwcs/internal/duration"
	"cwcs/internal/plan"
	"cwcs/internal/sched"
	"cwcs/internal/sim"
	"cwcs/internal/vjob"
)

func newSim(t *testing.T, nodes, cpu, mem int) *sim.Cluster {
	t.Helper()
	cfg := vjob.NewConfiguration()
	for i := 0; i < nodes; i++ {
		cfg.AddNode(vjob.NewNode(fmt.Sprintf("n%02d", i), cpu, mem))
	}
	c := sim.New(cfg, duration.Default())
	// Every driver run is audited: executing a plan must never push a
	// node past its capacities beyond the initial over-commitment.
	w := sim.WatchInvariants(c)
	t.Cleanup(func() {
		if err := w.Err(); err != nil {
			t.Errorf("invariants violated: %v", err)
		}
	})
	return c
}

// planDst replays the plan on a snapshot of its source and returns the
// configuration it must leave behind. Call it BEFORE executing: the
// plan's Src is the live cluster configuration.
func planDst(t *testing.T, p *plan.Plan) *vjob.Configuration {
	t.Helper()
	want, err := p.Result()
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// assertReaches checks that the executed plan left the cluster exactly
// in the destination captured by planDst.
func assertReaches(t *testing.T, c *sim.Cluster, want *vjob.Configuration) {
	t.Helper()
	if got := c.Config(); !got.Equal(want) {
		t.Fatalf("cluster after execution:\n%swant destination:\n%s", got, want)
	}
}

func TestExecuteSequentialPools(t *testing.T) {
	// Figure 7 scenario executed end to end: the migration must start
	// only after the suspend completes.
	c := newSim(t, 2, 2, 3072)
	vm1 := vjob.NewVM("vm1", "a", 1, 2048)
	vm2 := vjob.NewVM("vm2", "b", 1, 2048)
	cfg := c.Config()
	cfg.AddVM(vm1)
	cfg.AddVM(vm2)
	if err := cfg.SetRunning("vm1", "n00"); err != nil {
		t.Fatal(err)
	}
	if err := cfg.SetRunning("vm2", "n01"); err != nil {
		t.Fatal(err)
	}
	dst := cfg.Clone()
	if err := dst.SetSleeping("vm2", "n01"); err != nil {
		t.Fatal(err)
	}
	if err := dst.SetRunning("vm1", "n01"); err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(cfg, dst)
	if err != nil {
		t.Fatal(err)
	}

	wantDst := planDst(t, p)
	var rep Report
	doneCalled := false
	Execute(c, p, func(r Report) { rep = r; doneCalled = true })
	c.Run(10_000)
	if !doneCalled {
		t.Fatal("execution never completed")
	}
	if len(rep.Errs) != 0 {
		t.Fatalf("errors: %v", rep.Errs)
	}
	m := duration.Default()
	want := m.Suspend(2048, duration.Local).Seconds() + m.Migrate(2048).Seconds()
	if math.Abs(rep.Duration()-want) > 1e-6 {
		t.Fatalf("duration = %v, want %v (suspend then migrate)", rep.Duration(), want)
	}
	if c.Config().HostOf("vm1") != "n01" || c.Config().StateOf("vm2") != vjob.Sleeping {
		t.Fatal("destination not reached")
	}
	assertReaches(t, c, wantDst)
	if rep.String() == "" {
		t.Fatal("report string empty")
	}
}

func TestPipelinedSuspends(t *testing.T) {
	// Three suspends of one vjob start 1 s apart, ordered by host.
	c := newSim(t, 3, 2, 4096)
	cfg := c.Config()
	j := vjob.NewVJob("j", 0,
		vjob.NewVM("j-1", "", 1, 1024),
		vjob.NewVM("j-2", "", 1, 1024),
		vjob.NewVM("j-3", "", 1, 1024))
	for i, v := range j.VMs {
		cfg.AddVM(v)
		if err := cfg.SetRunning(v.Name, fmt.Sprintf("n%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	dst := cfg.Clone()
	for i, v := range j.VMs {
		if err := dst.SetSleeping(v.Name, fmt.Sprintf("n%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	p, err := plan.Build(cfg, dst)
	if err != nil {
		t.Fatal(err)
	}
	wantDst := planDst(t, p)
	var rep Report
	Execute(c, p, func(r Report) { rep = r })
	c.Run(10_000)
	// Last suspend starts 2 s after the first; total = 2 + suspend.
	want := 2*PipelineDelay + duration.Default().Suspend(1024, duration.Local).Seconds()
	if math.Abs(rep.Duration()-want) > 1e-6 {
		t.Fatalf("duration = %v, want %v (pipelined)", rep.Duration(), want)
	}
	assertReaches(t, c, wantDst)
}

func TestExecuteReportsActionErrors(t *testing.T) {
	c := newSim(t, 2, 2, 4096)
	vm := vjob.NewVM("vm1", "a", 1, 1024)
	c.Config().AddVM(vm)
	if err := c.Config().SetRunning("vm1", "n00"); err != nil {
		t.Fatal(err)
	}
	// Hand-built plan with a wrong source: the driver must surface the
	// failure.
	p := &plan.Plan{Src: c.Snapshot(), Pools: []plan.Pool{{
		&plan.Migration{Machine: vm, Src: "n01", Dst: "n00"},
	}}}
	var rep Report
	Execute(c, p, func(r Report) { rep = r })
	c.Run(1000)
	if len(rep.Errs) != 1 {
		t.Fatalf("errs = %v", rep.Errs)
	}
}

func TestEmptyPlanCompletesImmediately(t *testing.T) {
	c := newSim(t, 1, 1, 1024)
	done := false
	Execute(c, &plan.Plan{Src: c.Snapshot()}, func(Report) { done = true })
	c.Run(1)
	if !done {
		t.Fatal("empty plan never completed")
	}
}

// TestControlLoopEndToEnd wires sim + drivers + sched + core: an
// overloaded cluster (three busy vjobs, two CPUs) is resolved by
// suspending the lowest-priority vjob; when a vjob terminates, the
// sleeping one is resumed and everything completes.
func TestControlLoopEndToEnd(t *testing.T) {
	c := newSim(t, 2, 1, 8192)
	cfg := c.Config()
	jobs := make([]*vjob.VJob, 3)
	for i := range jobs {
		name := fmt.Sprintf("j%d", i)
		v := vjob.NewVM(name+"-1", name, 1, 1024)
		jobs[i] = vjob.NewVJob(name, i, v)
		cfg.AddVM(v)
		c.SetWorkload(v.Name, []sim.Phase{{CPU: 1, Seconds: 300}})
	}
	// j0 and j1 run; j2 waits (cluster full).
	if err := cfg.SetRunning("j0-1", "n00"); err != nil {
		t.Fatal(err)
	}
	if err := cfg.SetRunning("j1-1", "n01"); err != nil {
		t.Fatal(err)
	}

	act := &Actuator{C: c}
	loop := &core.Loop{
		Decision: sched.Consolidation{},
		Interval: 30,
		Queue: func() []*vjob.VJob {
			var live []*vjob.VJob
			for _, j := range jobs {
				if !c.VJobDone(j) {
					live = append(live, j)
				}
			}
			return live
		},
		Done: func() bool {
			for _, j := range jobs {
				if !c.VJobDone(j) {
					return false
				}
			}
			return true
		},
	}
	doneAt := -1.0
	// Terminate finished vjobs between iterations (the application
	// signals Entropy, which stops the vjob).
	var reap func()
	reap = func() {
		all := true
		for _, j := range jobs {
			if !c.VJobDone(j) {
				all = false
			}
		}
		if all {
			if doneAt < 0 {
				doneAt = c.Now()
			}
			return // stop rescheduling: simulation can quiesce
		}
		for _, j := range jobs {
			if c.VJobDone(j) {
				for _, v := range j.VMs {
					if cfg.StateOf(v.Name) == vjob.Running {
						c.StartAction(&plan.Stop{Machine: v, On: cfg.HostOf(v.Name)}, nil)
					}
				}
			}
		}
		c.Schedule(c.Now()+5, reap)
	}
	c.Schedule(5, reap)
	loop.Start(act)
	c.Run(100_000)

	for _, j := range jobs {
		if !c.VJobDone(j) {
			t.Fatalf("%s never completed (remaining %v)", j.Name, c.RemainingWork(j.VMs[0].Name))
		}
	}
	// j2 cannot have run before some capacity freed: with 300 s of
	// work per vjob and 2 CPUs, total completion must exceed 300 s but
	// stay well under a serial 900 s.
	if doneAt < 300 || doneAt > 900 {
		t.Fatalf("completion at %v, want within (300, 900)", doneAt)
	}
}

// unmodeledAction is a plan.Action the duration model cannot time.
type unmodeledAction struct{ m *vjob.VM }

func (u *unmodeledAction) VM() *vjob.VM                        { return u.m }
func (u *unmodeledAction) Cost() int                           { return 0 }
func (u *unmodeledAction) FeasibleIn(*vjob.Configuration) bool { return true }
func (u *unmodeledAction) Apply(*vjob.Configuration) error     { return nil }
func (u *unmodeledAction) String() string                      { return "unmodeled(" + u.m.Name + ")" }

// TestUnknownActionSurfacesAsFailedAction: a plan carrying an action
// the duration model does not know used to panic the simulator (and
// with it entropyd). It must now complete the execution with that one
// action recorded as failed, while the rest of the plan still runs.
func TestUnknownActionSurfacesAsFailedAction(t *testing.T) {
	c := newSim(t, 2, 2, 4096)
	vm1 := vjob.NewVM("vm1", "a", 1, 1024)
	vm2 := vjob.NewVM("vm2", "b", 1, 1024)
	c.Config().AddVM(vm1)
	c.Config().AddVM(vm2)
	if err := c.Config().SetRunning("vm1", "n00"); err != nil {
		t.Fatal(err)
	}
	if err := c.Config().SetRunning("vm2", "n00"); err != nil {
		t.Fatal(err)
	}
	p := &plan.Plan{Src: c.Config(), Pools: []plan.Pool{
		{&unmodeledAction{m: vm1}, &plan.Migration{Machine: vm2, Src: "n00", Dst: "n01"}},
	}}
	var rep Report
	var failed []plan.Action
	e := Start(c, p, Callbacks{
		Done:    func(r Report) { rep = r },
		Failure: func(a plan.Action, err error) { failed = append(failed, a) },
	})
	c.Run(1000)
	if !e.Finished() {
		t.Fatal("execution never finished")
	}
	if len(rep.Errs) != 1 {
		t.Fatalf("report errs = %v, want exactly the unmodeled action's", rep.Errs)
	}
	var ue *duration.UnknownActionError
	if !errors.As(rep.Errs[0], &ue) {
		t.Fatalf("err = %v, want *duration.UnknownActionError", rep.Errs[0])
	}
	if len(failed) != 1 || failed[0].VM().Name != "vm1" {
		t.Fatalf("failure callback saw %v, want the unmodeled action", failed)
	}
	// The healthy action of the same pool still executed.
	if c.Config().HostOf("vm2") != "n01" {
		t.Fatal("migration sharing the pool did not run")
	}
	for _, st := range e.Status() {
		want := ActionDone
		if st.VM == "vm1" {
			want = ActionFailed
		}
		if st.Phase != want {
			t.Errorf("%s: phase %v, want %v", st.Action, st.Phase, want)
		}
	}
}
