package sim

import (
	"strings"
	"testing"

	"cwcs/internal/duration"
	"cwcs/internal/plan"
	"cwcs/internal/resources"
	"cwcs/internal/vjob"
)

// TestInvariantsCatchIntroducedOverload proves the watcher has teeth:
// an event that overloads a node after the baseline was taken must be
// reported.
func TestInvariantsCatchIntroducedOverload(t *testing.T) {
	cfg := vjob.NewConfiguration()
	cfg.AddNode(vjob.NewNode("n0", 1, 1024))
	c := New(cfg, duration.Default())
	w := WatchInvariants(c)

	c.Schedule(10, func() {
		for _, name := range []string{"a", "b"} {
			cfg.AddVM(vjob.NewVM(name, "j", 1, 512))
			if err := cfg.SetRunning(name, "n0"); err != nil {
				t.Fatal(err)
			}
		}
	})
	c.Run(100)
	err := w.Err()
	if err == nil {
		t.Fatal("introduced overload not reported")
	}
	if !strings.Contains(err.Error(), "n0") || !strings.Contains(err.Error(), "cpu") {
		t.Fatalf("unhelpful report: %v", err)
	}
}

// TestInvariantsTolerateBaselineOvercommit: over-commitment present
// when the simulation starts (the very situation a context switch
// repairs) is not an error; only new violations are.
func TestInvariantsTolerateBaselineOvercommit(t *testing.T) {
	cfg := vjob.NewConfiguration()
	cfg.AddNode(vjob.NewNode("n0", 1, 4096))
	cfg.AddNode(vjob.NewNode("n1", 1, 4096))
	for _, name := range []string{"a", "b"} {
		cfg.AddVM(vjob.NewVM(name, "j", 1, 512))
		if err := cfg.SetRunning(name, "n0"); err != nil {
			t.Fatal(err)
		}
	}
	c := New(cfg, duration.Default())
	w := WatchInvariants(c)
	vm := cfg.VM("b")
	c.StartAction(&plan.Migration{Machine: vm, Src: "n0", Dst: "n1"}, nil)
	c.Run(10_000)
	if err := w.Err(); err != nil {
		t.Fatalf("baseline over-commit reported as violation: %v", err)
	}
	if cfg.HostOf("b") != "n1" {
		t.Fatal("migration did not land")
	}
}

// TestInvariantsWatchEveryDimension: an overload introduced on an
// extra dimension (network) after the baseline is reported just like a
// CPU one, and stays a capacity violation — not a structural breach.
func TestInvariantsWatchEveryDimension(t *testing.T) {
	cfg := vjob.NewConfiguration()
	cap := resources.New(8, 16384)
	cap.Set(resources.NetBW, 100)
	cfg.AddNode(vjob.NewNodeRes("n0", cap))
	c := New(cfg, duration.Default())
	w := WatchInvariants(c)

	c.Schedule(10, func() {
		for _, name := range []string{"a", "b"} {
			d := resources.New(1, 512)
			d.Set(resources.NetBW, 60)
			cfg.AddVM(vjob.NewVMRes(name, "j", d))
			if err := cfg.SetRunning(name, "n0"); err != nil {
				t.Fatal(err)
			}
		}
	})
	c.Run(100)
	err := w.Err()
	if err == nil {
		t.Fatal("introduced net overload not reported")
	}
	if !strings.Contains(err.Error(), "net") {
		t.Fatalf("report does not name the dimension: %v", err)
	}
	if w.StructuralCount() != 0 {
		t.Fatalf("capacity overload mis-filed as structural: %d", w.StructuralCount())
	}
}
