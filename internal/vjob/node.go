// Package vjob defines the data model of the cluster-wide context
// switch: nodes, virtual machines, virtualized jobs (vjobs), the vjob
// life cycle, and cluster configurations with their viability rules.
//
// The terminology follows Hermenier et al., "Cluster-Wide Context
// Switch of Virtualized Jobs": a configuration maps every VM either to
// a hosting node (running), to a node holding its suspended image
// (sleeping), or to the waiting queue. A configuration is viable when
// every running VM has access to the CPU and memory it demands.
package vjob

import "fmt"

// Node is a working node of the cluster. Capacities use the paper's
// units: CPU in processing units (a computing VM demands a whole one)
// and memory in MiB.
type Node struct {
	// Name identifies the node (e.g. "node-3"). Names must be unique
	// within a configuration.
	Name string
	// CPU is the number of processing units the node offers.
	CPU int
	// Memory is the node memory capacity available to VMs, in MiB.
	Memory int
}

// NewNode returns a node with the given capacities. It panics when a
// capacity is negative, since such a node cannot exist.
func NewNode(name string, cpu, memory int) *Node {
	if cpu < 0 || memory < 0 {
		panic(fmt.Sprintf("vjob: node %s with negative capacity (cpu=%d, mem=%d)", name, cpu, memory))
	}
	return &Node{Name: name, CPU: cpu, Memory: memory}
}

// String returns a compact human-readable description of the node.
func (n *Node) String() string {
	return fmt.Sprintf("%s[cpu=%d,mem=%d]", n.Name, n.CPU, n.Memory)
}
