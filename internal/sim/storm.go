package sim

import (
	"fmt"
	"math/rand"

	"cwcs/internal/plan"
)

// FailureStorm is a time-varying action-failure schedule: the flaky
// driver fails completing actions with probability Base in calm
// periods and Storm inside the [From, Until) window of virtual time.
// The churn scenario's flat 2% rate is the degenerate storm (no
// window); the repairstorm study drives 5/10/20% windows through this
// to push the loop's repair path well past the rate it was tuned at.
type FailureStorm struct {
	// Base and Storm are per-action failure probabilities.
	Base, Storm float64
	// From and Until delimit the storm window; a zero-length window
	// (Until <= From) keeps Base in force everywhere.
	From, Until float64
}

// Rate is the failure probability in force at virtual time now.
func (s FailureStorm) Rate(now float64) float64 {
	if s.Until > s.From && now >= s.From && now < s.Until {
		return s.Storm
	}
	return s.Base
}

// InstallFailureStorm points the cluster's FailAction at the storm
// schedule, drawing one variate from rng per completing action — the
// same stream shape as a flat-rate hook, so seeded scenarios stay
// comparable when a storm window is added.
func (c *Cluster) InstallFailureStorm(rng *rand.Rand, s FailureStorm) {
	c.FailAction = func(a plan.Action) error {
		if rng.Float64() < s.Rate(c.now) {
			return fmt.Errorf("sim: injected driver failure on %s", a)
		}
		return nil
	}
}
