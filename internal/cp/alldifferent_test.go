package cp

import (
	"errors"
	"testing"
)

func TestAllDifferentBasic(t *testing.T) {
	s := NewSolver()
	x := s.NewEnumVar("x", []int{0, 1})
	y := s.NewEnumVar("y", []int{0, 1})
	z := s.NewEnumVar("z", []int{0, 1, 2})
	s.Post(&AllDifferent{Items: []*IntVar{x, y, z}})
	sol, err := s.Solve(Options{FirstFail: true})
	if err != nil {
		t.Fatal(err)
	}
	vals := map[int]bool{}
	for _, v := range []*IntVar{x, y, z} {
		vals[sol.MustValue(v)] = true
	}
	if len(vals) != 3 {
		t.Fatalf("not all different: %v", vals)
	}
}

func TestAllDifferentHallPruning(t *testing.T) {
	// x,y ∈ {0,1} form a Hall set: z must lose 0 and 1 at the root.
	s := NewSolver()
	x := s.NewEnumVar("x", []int{0, 1})
	y := s.NewEnumVar("y", []int{0, 1})
	z := s.NewEnumVar("z", []int{0, 1, 2})
	s.Post(&AllDifferent{Items: []*IntVar{x, y, z}})
	if err := s.propagate(); err != nil {
		t.Fatal(err)
	}
	if z.Contains(0) || z.Contains(1) {
		t.Fatalf("Hall set not pruned: z = %v", z.Values())
	}
	if !z.Bound() || z.Value() != 2 {
		t.Fatalf("z = %v", z.Values())
	}
}

func TestAllDifferentPigeonhole(t *testing.T) {
	s := NewSolver()
	var items []*IntVar
	for i := 0; i < 3; i++ {
		items = append(items, s.NewEnumVar("v", []int{4, 7}))
	}
	s.Post(&AllDifferent{Items: items})
	if err := s.propagate(); !errors.Is(err, ErrFailed) {
		t.Fatalf("pigeonhole not detected: %v", err)
	}
}

func TestAllDifferentBoundConflict(t *testing.T) {
	s := NewSolver()
	x := s.NewEnumVar("x", []int{5})
	y := s.NewEnumVar("y", []int{5})
	s.Post(&AllDifferent{Items: []*IntVar{x, y}})
	if err := s.propagate(); !errors.Is(err, ErrFailed) {
		t.Fatalf("bound conflict not detected: %v", err)
	}
}

func TestAllDifferentValueEliminationCascade(t *testing.T) {
	// Binding x=0 forces y=1 which forces z=2.
	s := NewSolver()
	x := s.NewEnumVar("x", []int{0})
	y := s.NewEnumVar("y", []int{0, 1})
	z := s.NewEnumVar("z", []int{1, 2})
	s.Post(&AllDifferent{Items: []*IntVar{x, y, z}})
	if err := s.propagate(); err != nil {
		t.Fatal(err)
	}
	if !y.Bound() || y.Value() != 1 || !z.Bound() || z.Value() != 2 {
		t.Fatalf("cascade incomplete: y=%v z=%v", y.Values(), z.Values())
	}
}

func TestAllDifferentLatinSquare(t *testing.T) {
	// A 4x4 Latin square: rows and columns all-different. Exercises
	// the propagator inside real search.
	const n = 4
	s := NewSolver()
	grid := make([][]*IntVar, n)
	for r := range grid {
		grid[r] = make([]*IntVar, n)
		for c := range grid[r] {
			grid[r][c] = s.NewEnumVar("cell", rangeVals(n))
		}
	}
	for i := 0; i < n; i++ {
		row := make([]*IntVar, n)
		col := make([]*IntVar, n)
		for j := 0; j < n; j++ {
			row[j] = grid[i][j]
			col[j] = grid[j][i]
		}
		s.Post(&AllDifferent{Items: row})
		s.Post(&AllDifferent{Items: col})
	}
	// Pin the first row to break symmetry.
	for j := 0; j < n; j++ {
		if err := s.Assign(grid[0][j], j); err != nil {
			t.Fatal(err)
		}
	}
	sol, err := s.Solve(Options{FirstFail: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		rowSeen := map[int]bool{}
		colSeen := map[int]bool{}
		for j := 0; j < n; j++ {
			rowSeen[sol.MustValue(grid[i][j])] = true
			colSeen[sol.MustValue(grid[j][i])] = true
		}
		if len(rowSeen) != n || len(colSeen) != n {
			t.Fatalf("row/col %d not a permutation", i)
		}
	}
}
