package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"cwcs/internal/obs"
)

// handleTrace serves the recent span ring: JSONL by default (one span
// per line, newest last), Chrome trace_event JSON with ?format=chrome
// (load it at ui.perfetto.dev). ?limit=N caps the span count. Ring
// reads are lock-free, so this endpoint deliberately skips Exec.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.Trace == nil {
		writeError(w, http.StatusNotImplemented, "tracing disabled")
		return
	}
	limit := 0
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "trace: limit must be a non-negative integer, got %q", q)
			return
		}
		limit = n
	}
	spans := s.Trace.Recent(limit)
	switch format := r.URL.Query().Get("format"); format {
	case "", "jsonl":
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		_ = obs.WriteJSONL(w, spans)
	case "chrome":
		out, err := obs.ChromeTrace(spans)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "trace: %v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(out)
	default:
		writeError(w, http.StatusBadRequest, "trace: unknown format %q (want jsonl or chrome)", format)
	}
}

// handleWatch streams span-close and loop lifecycle events as
// Server-Sent Events. Backpressure is drop-not-block: the tracer
// never waits on a subscriber, so a client that cannot keep up with
// its WatchBuffer loses the subscription (its channel closes, the
// handler disconnects it) and cwcs_watch_drops_total increments —
// the loop is never delayed by a stalled watcher.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	if s.Trace == nil {
		writeError(w, http.StatusNotImplemented, "tracing disabled")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "watch: streaming unsupported")
		return
	}
	buf := s.WatchBuffer
	if buf <= 0 {
		buf = 256
	}
	sub := s.Trace.Subscribe(buf)
	defer sub.Close()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "event: hello\ndata: {\"drops\":%d}\n\n", s.Trace.WatchDrops())
	fl.Flush()

	hb := s.WatchHeartbeat
	if hb <= 0 {
		hb = 15 * time.Second
	}
	ticker := time.NewTicker(hb)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-sub.C:
			if !ok {
				// The tracer dropped this subscriber as too slow; say
				// goodbye if the pipe still works and disconnect.
				fmt.Fprint(w, "event: dropped\ndata: {}\n\n")
				return
			}
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: span\ndata: %s\n\n", data)
			fl.Flush()
		case <-ticker.C:
			fmt.Fprint(w, ": heartbeat\n\n")
			fl.Flush()
		}
	}
}

// writeHistograms renders the tracer's histograms in the Prometheus
// text exposition: cumulative le buckets, _sum and _count, HELP/TYPE
// emitted once per metric name (the action histogram shares one name
// across its kind label values).
func writeHistograms(b *strings.Builder, hs []*obs.Histogram) {
	last := ""
	for _, h := range hs {
		snap := h.Snapshot()
		if snap.Name != last {
			fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", snap.Name, snap.Help, snap.Name)
			last = snap.Name
		}
		label := ""
		if snap.Label != "" {
			label = fmt.Sprintf("%s=%q,", snap.Label, snap.LabelValue)
		}
		cum := uint64(0)
		for i, bound := range snap.Bounds {
			cum += snap.Counts[i]
			fmt.Fprintf(b, "%s_bucket{%sle=\"%s\"} %d\n",
				snap.Name, label, strconv.FormatFloat(bound, 'g', -1, 64), cum)
		}
		cum += snap.Counts[len(snap.Bounds)]
		fmt.Fprintf(b, "%s_bucket{%sle=\"+Inf\"} %d\n", snap.Name, label, cum)
		if snap.Label != "" {
			fmt.Fprintf(b, "%s_sum{%s=%q} %g\n", snap.Name, snap.Label, snap.LabelValue, snap.Sum)
			fmt.Fprintf(b, "%s_count{%s=%q} %d\n", snap.Name, snap.Label, snap.LabelValue, snap.Count)
		} else {
			fmt.Fprintf(b, "%s_sum %g\n", snap.Name, snap.Sum)
			fmt.Fprintf(b, "%s_count %d\n", snap.Name, snap.Count)
		}
	}
}
