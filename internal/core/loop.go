package core

import (
	"context"
	"errors"
	"time"

	"cwcs/internal/obs"
	"cwcs/internal/plan"
	"cwcs/internal/vjob"
)

// DecisionModule is the pluggable scheduling policy of §3.1: from an
// observed configuration and the vjob queue it decides the state each
// vjob must reach. internal/sched provides the paper's sample modules.
type DecisionModule interface {
	Decide(cfg *vjob.Configuration, queue []*vjob.VJob) map[string]vjob.State
}

// Actuator abstracts the cluster the loop drives: a clock, an observer
// (monitoring) and an executor (drivers). internal/drivers adapts the
// simulator to this interface.
type Actuator interface {
	// Now returns the current virtual time in seconds.
	Now() float64
	// Schedule runs fn at the given virtual time.
	Schedule(at float64, fn func())
	// Observe returns a stable snapshot of the configuration.
	Observe() *vjob.Configuration
	// Execute runs the plan, then calls done with the execution
	// duration in seconds and the number of failed actions.
	Execute(p *plan.Plan, done func(duration float64, failures int))
}

// SwitchRecord is the telemetry of one cluster-wide context switch,
// the data points of Figure 11.
type SwitchRecord struct {
	// At is the virtual time the switch started.
	At float64
	// Cost is the §4.2 plan cost.
	Cost int
	// Duration is the execution time in seconds.
	Duration float64
	// Actions and Pools describe the executed plan.
	Actions, Pools int
	// Failures counts actions whose application failed.
	Failures int
	// Slices is how many dirty partition slices this switch re-solved
	// (0 for a periodic/monolithic switch).
	Slices int
}

// LoopStats is the loop's own telemetry, the measurement basis of the
// periodic-vs-event-driven churn study.
type LoopStats struct {
	// Iterations counts wake-ups that ran the decision module.
	Iterations int
	// SolverCalls counts optimizer invocations: one per monolithic
	// solve, one per dirty slice in incremental mode. Iterations whose
	// problem is already Satisfied skip the solver and count nothing.
	SolverCalls int
	// SubSolves counts independent sub-problem optimizations — the
	// unit comparable across schedules: a monolithic invocation that
	// decomposed into k partitions adds k, a slice solve adds 1.
	SubSolves int
	// SliceSolves is the subset of SolverCalls that covered only a
	// dirty slice of the cluster.
	SliceSolves int
	// FullSolves counts incremental iterations that fell back to the
	// monolithic model (undecomposable problem or a failed slice).
	FullSolves int
	// Repairs counts in-flight plan repairs spliced successfully;
	// FailedRepairs the attempts that had to fall back.
	Repairs, FailedRepairs int
	// WidenedRepairs is the subset of Repairs that could only splice
	// after widening the repair region over a broken dependency chain
	// (plan.ErrBrokenDependency); RepairExpansions counts the widening
	// steps themselves, so RepairExpansions/WidenedRepairs is the mean
	// expansion depth of the chains absorbed.
	WidenedRepairs, RepairExpansions int
	// Events counts events received; Coalesced the ones absorbed into
	// an already-armed wake-up or an in-flight execution.
	Events, Coalesced int
	// PartitionReuses counts incremental wake-ups that reused the
	// previous wake-up's partition carve instead of re-splitting the
	// whole cluster (see the partition cache in solveDirtySlices).
	PartitionReuses int
}

// Loop is the Entropy control loop (§3.1, Figure 4): iteratively
// observe the cluster, run the decision module, optimize the
// reconfiguration, and execute the cluster-wide context switch.
//
// Two schedules are supported. The periodic schedule (the paper's) re-
// solves the whole cluster Interval seconds after the previous
// iteration finished, execution included. The event-driven schedule
// (EventDriven) reacts to cluster events instead: Notify feeds VM
// arrivals/departures, load changes, node changes and action failures
// into a dirty-set; a burst of events is debounced, and the wake-up
// re-solves only the partition slices containing dirty elements —
// warm-starting each slice's search from the previous incumbent
// assignment — then merges the slice plans into one switch. An action
// failure during execution triggers a local plan repair (plan.Repair)
// spliced in at the next pool boundary instead of a full abort.
type Loop struct {
	// Decision chooses vjob states; required.
	Decision DecisionModule
	// Ctx, when non-nil, cancels the loop: in-flight optimizations
	// stop (returning their best result so far) and no further
	// iteration is scheduled once it is done.
	Ctx context.Context
	// Optimizer computes the context switch; the zero value works.
	Optimizer Optimizer
	// Interval is the pause between iterations in seconds (the
	// paper's sample module runs every 30 s; 0 defaults to that).
	// Ignored in event-driven mode.
	Interval float64
	// EventDriven switches from the periodic schedule to the
	// incremental engine. The first iteration still solves the whole
	// cluster (bootstrap); everything after is driven by Notify.
	EventDriven bool
	// Debounce is the settle delay in virtual seconds between the
	// first event of a burst and the reacting iteration; 0 defaults
	// to 2 s. Storms of events within the window coalesce into one
	// wake-up.
	Debounce float64
	// Rules are administrator placement rules enforced on every solve.
	Rules []PlacementRule
	// Drains, when non-nil, is the operator drain bridge: its Drained
	// rules are appended to Rules at every solve, so a drain command
	// immediately forbids the node to the optimizer and the next
	// wake-up evacuates it.
	Drains *DrainSet
	// RepairWiden bounds how many times one in-flight repair may widen
	// its region over a broken dependency chain before giving up and
	// falling back to the post-execution full pass. 0 means
	// DefaultRepairWiden; negative disables widening entirely (every
	// broken chain falls back — kept for A/B studies of the widening).
	RepairWiden int
	// Queue supplies the live vjob queue at each iteration; required.
	Queue func() []*vjob.VJob
	// Done, when non-nil, is polled at each iteration; returning true
	// stops the loop (e.g. every vjob terminated).
	Done func() bool
	// OnSwitch, when non-nil, receives the record of each non-empty
	// context switch.
	OnSwitch func(SwitchRecord)
	// Trace, when non-nil, records every pipeline stage as causal
	// spans (internal/obs): an event burst opens a reconfiguration
	// span that closes when the loop goes idle again, and debounce
	// waits, partition carves, slice solves, plan merges, splice
	// repairs and wake rounds land as child spans carrying the
	// burst's cause ID. A nil Trace is inert — every call site either
	// guards on it or goes through nil-safe obs.Span methods, so the
	// disabled hot path allocates nothing (BenchmarkLoopTracingOff).
	Trace *obs.Tracer
	// Solver, when non-nil, accumulates search telemetry: one
	// SolveReport per optimizer invocation (full or slice scope) with
	// the dirty cause that provoked it, the winning strategy and the
	// per-worker search counters — the data behind GET /v1/solver and
	// the cwcs_portfolio_wins_total / cwcs_warm_start_* families. A
	// nil Solver is inert like a nil Trace: every recording site
	// guards on it, so the disabled path allocates nothing
	// (BenchmarkLoopAttributionOff).
	Solver *SolverTelemetry

	// Records accumulates every non-empty context switch.
	Records []SwitchRecord
	// Stats accumulates the loop telemetry.
	Stats LoopStats

	stopped bool

	// Event-driven state.
	dirty          dirtySet
	wakeArmed      bool
	executing      bool
	exec           Execution
	repairWanted   bool
	resolvePending bool
	// lastDst is the expected destination of the last switch: the
	// warm-start assignment of the next solve.
	lastDst *vjob.Configuration

	// Observability state: the open reconfiguration/debounce/wake
	// spans, plus the virtual time of the running iteration — the sim
	// clock cannot advance inside a synchronous solve, so it is
	// sampled once per wake and reused by the stages underneath.
	causeSpan    obs.Span
	debounceSpan obs.Span
	wakeSpan     obs.Span
	nowVirt      float64
	// causeKind names the event kind that opened the current
	// reconfiguration episode — the "why" a slice is re-solved. It is
	// tracked independently of causeSpan so solver telemetry carries
	// causes even without a tracer.
	causeKind string

	// Partition cache: the node/VM membership (and rescoped rules) of
	// the last carve — or the verdict that the problem stays monolithic
	// — reusable while no structural event, executed action or rule
	// change invalidated it.
	parts     []cachedPart
	partsMono bool
	partsGen  int
}

// cachedPart is one slice of a cached partition carve: enough to
// rebuild the sub-problem against a fresh observation without
// re-walking the whole cluster.
type cachedPart struct {
	nodes, vms []string
	rules      []PlacementRule
}

// Start schedules the first iteration immediately and returns; the
// loop then lives on the actuator's clock.
func (l *Loop) Start(a Actuator) {
	l.Trace.Mark("loop-start", a.Now())
	a.Schedule(a.Now(), func() { l.iterate(a) })
}

// endWake closes the open wake span, tagging whether the round ended
// in a context switch.
func (l *Loop) endWake(a Actuator, switched bool) {
	if !l.wakeSpan.Active() {
		return
	}
	l.wakeSpan.SetSwitch(switched)
	l.wakeSpan.End(a.Now())
}

// closeCause ends the live reconfiguration span: the loop is idle —
// no dirty work, nothing executing, no wake armed — so the burst that
// opened it is remediated as far as the loop can tell. Its virtual
// duration is the event-to-remediation time.
func (l *Loop) closeCause(a Actuator) {
	l.causeKind = ""
	if !l.causeSpan.Active() {
		return
	}
	l.causeSpan.End(a.Now())
	l.Trace.SetCause(0)
}

// recordSolve folds one optimizer invocation into the solver
// telemetry: what ran (scope), why (the episode's opening event kind
// and reconfig span ID), who won and what the search cost. Guarded by
// the caller on l.Solver != nil, so the disabled path never builds a
// report.
func (l *Loop) recordSolve(scope string, res *Result, warm bool, wall float64) {
	l.Solver.RecordSolve(SolveReport{
		Virt:        l.nowVirt,
		Scope:       scope,
		Cause:       l.causeKind,
		CauseID:     l.causeSpan.ID(),
		Winner:      res.Winner,
		Cost:        res.Cost,
		Nodes:       res.Nodes,
		Backtracks:  res.Fails,
		WarmStart:   warm,
		WarmHit:     res.WarmHit,
		Workers:     res.Outcomes,
		Trajectory:  res.Trajectory,
		WallSeconds: wall,
	})
}

// Stop halts the loop after the current iteration; a pending in-flight
// repair is abandoned (the executing plan runs to completion as-is).
func (l *Loop) Stop() { l.stopped = true }

func (l *Loop) interval() float64 {
	if l.Interval <= 0 {
		return 30
	}
	return l.Interval
}

func (l *Loop) debounce() float64 {
	if l.Debounce <= 0 {
		return 2
	}
	return l.Debounce
}

func (l *Loop) ctx() context.Context {
	if l.Ctx != nil {
		return l.Ctx
	}
	return context.Background()
}

func (l *Loop) halted() bool {
	return l.stopped || l.ctx().Err() != nil || (l.Done != nil && l.Done())
}

// rules combines the static administrator rules with the dynamic drain
// rules of the bridge.
func (l *Loop) rules() []PlacementRule {
	if l.Drains == nil {
		return l.Rules
	}
	dr := l.Drains.Rules()
	if len(dr) == 0 {
		return l.Rules
	}
	return append(append([]PlacementRule(nil), l.Rules...), dr...)
}

// Busy reports whether a context switch is executing right now.
func (l *Loop) Busy() bool { return l.executing }

// Execution returns the handle of the in-flight managed execution, or
// nil when no plan is executing (or the actuator is unmanaged).
func (l *Loop) Execution() Execution {
	if !l.executing {
		return nil
	}
	return l.exec
}

// Notify feeds one cluster event into the event-driven loop. Events
// received while a plan executes only mark the dirty-set — except
// action failures, which additionally request an in-flight repair at
// the next pool boundary; the wake-up then happens right after the
// execution completes. Events received while idle arm a debounced
// wake-up; further events within the window coalesce. Notify is a
// no-op on a periodic loop.
func (l *Loop) Notify(a Actuator, ev Event) {
	if !l.EventDriven || l.stopped {
		return
	}
	l.Stats.Events++
	l.dirty.add(ev)
	// The first event of an idle-to-busy burst names the episode's
	// cause — tracked as a plain string too, so solver telemetry can
	// say why a slice was re-solved even when no tracer is attached.
	if l.causeKind == "" {
		l.causeKind = ev.Kind.String()
	}
	if l.Trace != nil {
		if !l.causeSpan.Active() {
			l.causeSpan = l.Trace.Start(obs.KindReconfig, ev.Kind.String(), a.Now())
			l.Trace.SetCause(l.causeSpan.ID())
		}
		l.causeSpan.AddEvents(1)
	}
	switch ev.Kind {
	case VMArrival, VMDeparture, NodeDown, NodeUp:
		// Membership (or drain-rule) changes redraw the binding
		// relation: the cached carve is stale.
		l.parts, l.partsMono = nil, false
	}
	if l.executing {
		if ev.Kind == ActionFailure && l.exec != nil && !l.exec.Finished() {
			l.repairWanted = true
		} else {
			l.Stats.Coalesced++
		}
		return
	}
	if l.wakeArmed {
		l.Stats.Coalesced++
		return
	}
	l.armWake(a)
}

// armWake schedules the debounced incremental iteration.
func (l *Loop) armWake(a Actuator) {
	if l.wakeArmed || l.stopped {
		return
	}
	l.wakeArmed = true
	if l.Trace != nil {
		l.debounceSpan = l.Trace.Start(obs.KindDebounce, "debounce", a.Now())
	}
	a.Schedule(a.Now()+l.debounce(), func() {
		l.wakeArmed = false
		if l.debounceSpan.Active() {
			l.debounceSpan.End(a.Now())
		}
		if l.halted() || l.executing {
			// An execution that started meanwhile re-arms on completion.
			return
		}
		l.iterateIncremental(a)
	})
}

// iterate is one full (monolithic) observe/decide/plan/execute round:
// the periodic schedule, and the bootstrap of the event-driven one.
func (l *Loop) iterate(a Actuator) {
	if l.halted() || l.executing {
		return
	}
	l.nowVirt = a.Now()
	l.wakeSpan = l.Trace.Start(obs.KindWake, "full", l.nowVirt)
	cfg := a.Observe()
	queue := l.Queue()
	target := l.Decision.Decide(cfg, queue)
	l.Stats.Iterations++
	p := Problem{Src: cfg, Target: target, Rules: l.rules()}
	if p.Satisfied() {
		l.lastDst = cfg
		l.endWake(a, false)
		l.next(a)
		return
	}
	l.Stats.SolverCalls++
	opt := l.Optimizer
	opt.WarmStart = l.lastDst
	sp := l.Trace.Start(obs.KindSolve, "full", l.nowVirt)
	var t0 time.Time
	if l.Solver != nil {
		t0 = time.Now()
	}
	res, err := opt.SolveContext(l.ctx(), p)
	if err == nil {
		sp.SetSolve(float64(res.Cost), maxInt(res.Partitions, 1), opt.WarmStart != nil)
		sp.SetSearch(res.Winner, res.Nodes, res.Fails, res.WarmHit)
		if l.Solver != nil {
			l.recordSolve("full", res, opt.WarmStart != nil, time.Since(t0).Seconds())
		}
	} else {
		sp.SetOutcome("error")
	}
	sp.End(l.nowVirt)
	if err != nil || res.Plan.NumActions() == 0 {
		l.endWake(a, false)
		if err == nil {
			l.subSolves(res)
			l.lastDst = res.Dst
		} else if l.EventDriven {
			// A failed full solve (expired budget before any
			// solution) must retry: with an empty dirty-set no event
			// would otherwise reschedule the bootstrap, and the
			// cluster would sit violated until an unrelated event.
			a.Schedule(a.Now()+l.debounce(), func() { l.iterate(a) })
			return
		}
		l.next(a)
		return
	}
	l.subSolves(res)
	l.lastDst = res.Dst
	l.execute(a, res, 0)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// subSolves accounts the independent sub-problems a result came from.
func (l *Loop) subSolves(res *Result) {
	n := res.Partitions
	if n < 1 {
		n = 1
	}
	l.Stats.SubSolves += n
}

// next schedules whatever follows a finished round: the fixed pause in
// periodic mode, or — in event-driven mode — a debounced wake-up when
// events accumulated meanwhile (and nothing otherwise).
func (l *Loop) next(a Actuator) {
	l.executing = false
	l.exec = nil
	l.repairWanted = false
	if l.EventDriven {
		if !l.dirty.empty() || l.resolvePending {
			l.armWake(a)
		} else if !l.wakeArmed {
			// Truly idle: the reconfiguration that started with the
			// first Notify of the burst is remediated.
			l.closeCause(a)
		}
		return
	}
	a.Schedule(a.Now()+l.interval(), func() { l.iterate(a) })
}

// execute runs the plan of res and records the switch. slices tags the
// record with the number of dirty slices the plan came from.
func (l *Loop) execute(a Actuator, res *Result, slices int) {
	l.endWake(a, true)
	rec := SwitchRecord{
		At:      a.Now(),
		Cost:    res.Cost,
		Actions: res.Plan.NumActions(),
		Pools:   len(res.Plan.Pools),
		Slices:  slices,
	}
	finish := func(duration float64, failures int) {
		rec.Duration = duration
		rec.Failures = failures
		l.Records = append(l.Records, rec)
		if l.OnSwitch != nil {
			l.OnSwitch(rec)
		}
		l.Trace.Mark("switch-done", a.Now())
		l.next(a)
	}
	l.executing = true
	// A monolithic plan may migrate VMs across slice boundaries,
	// invalidating the cached carve. A merged slice plan cannot: each
	// slice solve only places VMs on its own nodes, so the carve's
	// hard bindings survive the switch and the follow-up wake-ups
	// reuse it.
	if slices == 0 {
		l.parts, l.partsMono = nil, false
	}
	// A switch changes the region it touches: mark it dirty so the
	// event-driven loop runs one follow-up pass and converges the
	// decision module to a fixpoint (multi-round policies like
	// resume-then-terminate depend on it). The follow-up solve sees an
	// already-final region and yields an empty plan, ending the chain.
	if l.EventDriven {
		l.dirty.addSets(planDirty(res.Plan))
	}
	if ma, ok := a.(ManagedActuator); ok && l.EventDriven {
		l.exec = ma.ExecuteManaged(res.Plan,
			func(act plan.Action, err error) { l.Notify(a, FailureEvent(a.Now(), act)) },
			func() { l.poolBoundary(a) },
			func(duration float64, failures int) {
				// A splice may have grown or shrunk the plan: refresh
				// the record so Records agrees with what actually ran.
				if ex := l.exec; ex != nil {
					p := ex.Plan()
					rec.Cost = p.Cost()
					rec.Actions = p.NumActions()
					rec.Pools = len(p.Pools)
				}
				finish(duration, failures)
			})
		return
	}
	a.Execute(res.Plan, finish)
}

// poolBoundary runs between pools of a managed execution: the safe
// instant to splice a repair for failures observed so far.
func (l *Loop) poolBoundary(a Actuator) {
	if !l.repairWanted || l.stopped || l.exec == nil || l.halted() {
		return
	}
	l.repairWanted = false
	l.tryRepair(a)
}

// DefaultRepairWiden is the region-expansion bound of an in-flight
// repair. Each widening step pulls at least one more partition slice
// into the re-solved region and pays one more round of slice solves;
// a chain still broken after three expansions spans so much of the
// cluster that the post-execution full pass is the cheaper recovery.
const DefaultRepairWiden = 3

func (l *Loop) repairWiden() int {
	if l.RepairWiden == 0 {
		return DefaultRepairWiden
	}
	if l.RepairWiden < 0 {
		return 0
	}
	return l.RepairWiden
}

// Splice span outcomes; constants so recording them never allocates.
const (
	repairSpliced  = "spliced"
	repairFallback = "fallback"
	repairNoop     = "noop"
)

// tryRepair wraps one repair attempt in a splice span recording its
// outcome and widening depth.
func (l *Loop) tryRepair(a Actuator) {
	l.nowVirt = a.Now()
	sp := l.Trace.Start(obs.KindSplice, "repair", l.nowVirt)
	outcome, widened := l.repair(a)
	sp.SetWiden(widened)
	sp.SetOutcome(outcome)
	sp.End(a.Now())
}

// repair re-solves the dirty slices against the live configuration
// and splices the result into the executing plan. When the splice
// would strand a kept action whose feasibility depended on a dropped
// one (plan.ErrBrokenDependency), the broken chain's dependency
// closure joins the dirty region and the repair re-carves and
// re-solves the widened region, up to repairWiden() times. On any
// other obstacle — undecomposable problem, failed slice solve, a true
// infeasibility, an exhausted widening budget — the dirty region is
// put back and a full incremental pass runs once the execution
// completes.
func (l *Loop) repair(a Actuator) (outcome string, widened int) {
	dirtyNodes, dirtyVMs := l.dirty.take()
	// A mid-flight repair never discharges the dirty-set: the region
	// is only clean once a post-execution iteration sees it satisfied.
	// Re-adding the taken sets on every path preserves the fixpoint
	// follow-up pass execute() arranged (the switch's own self-dirty
	// marks travel through this take too, and widened elements travel
	// with them); the follow-up is cheap — satisfied slices skip the
	// solver entirely.
	defer l.dirty.addSets(dirtyNodes, dirtyVMs)
	fallback := func() {
		l.resolvePending = true
		l.Stats.FailedRepairs++
	}
	cur := a.Observe()
	target := l.Decision.Decide(cur, l.Queue())
	p := Problem{Src: cur, Target: target, Rules: l.rules()}
	// coverNodes/coverVMs grow with each widening: a satisfied slice
	// inside the widened region contributes coverage without a solve
	// (its optimal plan is empty), which is what lets Repair drop the
	// broken chain's kept actions there.
	var coverNodes, coverVMs map[string]bool
	for {
		sr, err := l.solveDirtySlices(p, dirtyNodes, dirtyVMs, coverNodes, coverVMs)
		if err != nil {
			if errors.Is(err, errNothingDirty) {
				return repairNoop, widened
			}
			fallback()
			return repairFallback, widened
		}
		repaired, err := plan.Repair(cur, l.exec.Remaining(), sr.nodes, sr.vms, sr.plans...)
		if err != nil {
			var broken *plan.ErrBrokenDependency
			if errors.As(err, &broken) && widened < l.repairWiden() {
				widened++
				l.Stats.RepairExpansions++
				if coverNodes == nil {
					coverNodes, coverVMs = map[string]bool{}, map[string]bool{}
				}
				for _, n := range broken.Nodes {
					dirtyNodes[n] = true
					coverNodes[n] = true
				}
				for _, v := range broken.VMs {
					dirtyVMs[v] = true
					coverVMs[v] = true
				}
				continue
			}
			fallback()
			return repairFallback, widened
		}
		if err := l.exec.Splice(repaired); err != nil {
			fallback()
			return repairFallback, widened
		}
		// The spliced remainder came from a fresh mid-execution carve
		// whose slices need not match the cached one: drop the cache.
		l.parts, l.partsMono = nil, false
		l.Stats.Repairs++
		if widened > 0 {
			l.Stats.WidenedRepairs++
		}
		if final, err := repaired.Result(); err == nil {
			l.lastDst = final
		}
		return repairSpliced, widened
	}
}

// errMonolithic reports a problem the partitioner keeps whole;
// errNothingDirty an iteration whose dirty elements all vanished.
var (
	errMonolithic   = errors.New("core: problem not decomposable")
	errNothingDirty = errors.New("core: no slice intersects the dirty-set")
)

// sliceResult collects the dirty-slice solves of one iteration.
type sliceResult struct {
	plans []*plan.Plan
	dsts  []*vjob.Configuration
	srcs  []*vjob.Configuration
	// nodes and vms are the full coverage of the solved slices — the
	// region a repair must clear in the remaining plan.
	nodes, vms map[string]bool
}

// solveDirtySlices splits the problem with the PR 2 partitioner and
// re-solves only the slices containing dirty elements, warm-starting
// each from the last incumbent assignment. coverNodes/coverVMs (nil
// outside a widened repair) name elements whose slices must enter the
// result's coverage even when satisfied: such a slice contributes no
// plan — staying put is its provably optimal reconfiguration — but
// its region lets plan.Repair drop the broken chain's kept actions.
func (l *Loop) solveDirtySlices(p Problem, dirtyNodes, dirtyVMs, coverNodes, coverVMs map[string]bool) (*sliceResult, error) {
	opt := l.Optimizer
	parts, err := l.partition(p)
	if err != nil || len(parts) < 2 {
		return nil, errMonolithic
	}
	// Each slice is already a sub-problem sized for one solve: re-
	// partitioning it would shrink slices below the decomposition the
	// partitioner chose, and the portfolio workers parallelize within
	// the slice instead.
	opt.Partitions = 1
	opt.WarmStart = l.lastDst
	out := &sliceResult{nodes: map[string]bool{}, vms: map[string]bool{}}
	covered := false
	for _, sub := range parts {
		if !touchesSets(sub.Src, dirtyNodes, dirtyVMs) {
			continue
		}
		// A satisfied slice needs no plan — its optimal plan is empty
		// — so the event storm of harmless load changes costs nothing.
		if sub.Satisfied() {
			if touchesSets(sub.Src, coverNodes, coverVMs) {
				out.cover(sub.Src)
				covered = true
			}
			continue
		}
		l.Stats.SolverCalls++
		l.Stats.SliceSolves++
		l.Stats.SubSolves++
		sp := l.Trace.Start(obs.KindSolve, "slice", l.nowVirt)
		var t0 time.Time
		if l.Solver != nil {
			t0 = time.Now()
		}
		res, err := opt.SolveContext(l.ctx(), sub)
		if err != nil {
			sp.SetOutcome("error")
			sp.End(l.nowVirt)
			return nil, err
		}
		sp.SetSolve(float64(res.Cost), 1, opt.WarmStart != nil)
		sp.SetSearch(res.Winner, res.Nodes, res.Fails, res.WarmHit)
		sp.End(l.nowVirt)
		if l.Solver != nil {
			l.recordSolve("slice", res, opt.WarmStart != nil, time.Since(t0).Seconds())
		}
		out.plans = append(out.plans, res.Plan)
		out.dsts = append(out.dsts, res.Dst)
		out.srcs = append(out.srcs, sub.Src)
		out.cover(sub.Src)
	}
	if len(out.plans) == 0 && !covered {
		return nil, errNothingDirty
	}
	return out, nil
}

// cover records a slice's full node/VM region in the result.
func (s *sliceResult) cover(sub *vjob.Configuration) {
	for _, n := range sub.Nodes() {
		s.nodes[n.Name] = true
	}
	for _, v := range sub.VMs() {
		s.vms[v.Name] = true
	}
}

// partition carves the problem into slices, reusing the previous
// wake-up's carve when it is still valid: the membership walk behind
// Partitioner.Split is O(nodes + VMs), which dominates quiet wake-ups
// on large clusters (a storm of harmless load changes re-carves the
// whole cluster just to discover every slice is satisfied). The cache
// holds only slice membership and rescoped rules; each use re-extracts
// the slices from the fresh observation, so placements and demands are
// always current. It is invalidated by structural events (arrivals,
// departures, node up/down) in Notify, by every executed switch in
// execute (actions rewrite the placement bindings the carve hangs on),
// and by drain-rule changes via the DrainSet generation; as a final
// guard, an Extract that fails (a VM no longer placed inside its
// cached slice) discards the cache and re-carves.
func (l *Loop) partition(p Problem) ([]Problem, error) {
	if parts, ok := l.cachedPartition(p); ok {
		l.Stats.PartitionReuses++
		if l.Trace != nil {
			sp := l.Trace.Start(obs.KindCarve, "carve", l.nowVirt)
			sp.SetCached(true)
			sp.End(l.nowVirt)
		}
		return parts, nil
	}
	sp := l.Trace.Start(obs.KindCarve, "carve", l.nowVirt)
	l.parts, l.partsMono = nil, false
	parts, err := (Partitioner{Parts: l.Optimizer.Partitions}).Split(p)
	if err != nil {
		sp.SetOutcome("error")
	}
	sp.End(l.nowVirt)
	// A mid-execution carve (tryRepair) is not cached: the remaining
	// pools keep rewriting placements underneath it.
	if err != nil || l.executing {
		return parts, err
	}
	l.partsGen = l.Drains.Generation()
	if len(parts) < 2 {
		l.partsMono = true
		return parts, nil
	}
	cache := make([]cachedPart, len(parts))
	for i, sub := range parts {
		slice := cachedPart{rules: sub.Rules}
		for _, n := range sub.Src.Nodes() {
			slice.nodes = append(slice.nodes, n.Name)
		}
		for _, v := range sub.Src.VMs() {
			slice.vms = append(slice.vms, v.Name)
		}
		cache[i] = slice
	}
	l.parts = cache
	return parts, nil
}

// cachedPartition rebuilds the sub-problems from the cached carve; ok
// is false when the cache is absent or stale.
func (l *Loop) cachedPartition(p Problem) ([]Problem, bool) {
	if l.executing || l.partsGen != l.Drains.Generation() {
		return nil, false
	}
	if l.partsMono {
		return nil, true
	}
	if l.parts == nil {
		return nil, false
	}
	out := make([]Problem, len(l.parts))
	for i, slice := range l.parts {
		sub, err := p.Src.Extract(slice.nodes, slice.vms)
		if err != nil {
			return nil, false // placement drifted outside the carve: stale
		}
		target := make(map[string]vjob.State)
		for _, name := range slice.vms {
			if job := p.Src.VM(name).VJob; job != "" {
				if st, ok := p.Target[job]; ok {
					target[job] = st
				}
			}
		}
		out[i] = Problem{Src: sub, Target: target, Rules: slice.rules}
	}
	return out, true
}

// touchesSets reports whether the slice holds any dirty node or VM.
func touchesSets(sub *vjob.Configuration, nodes, vms map[string]bool) bool {
	for n := range nodes {
		if sub.Node(n) != nil {
			return true
		}
	}
	for v := range vms {
		if sub.VM(v) != nil {
			return true
		}
	}
	return false
}

// iterateIncremental is one event-driven round: re-solve the dirty
// slices, merge their plans, execute. It falls back to the monolithic
// iterate when the problem does not decompose or a slice solve fails.
func (l *Loop) iterateIncremental(a Actuator) {
	if l.halted() || l.executing {
		return
	}
	l.nowVirt = a.Now()
	l.wakeSpan = l.Trace.Start(obs.KindWake, "incremental", l.nowVirt)
	pending := l.resolvePending
	l.resolvePending = false
	dirtyNodes, dirtyVMs := l.dirty.take()
	if len(dirtyNodes) == 0 && len(dirtyVMs) == 0 && !pending {
		l.endWake(a, false)
		l.closeCause(a)
		return
	}
	cfg := a.Observe()
	target := l.Decision.Decide(cfg, l.Queue())
	l.Stats.Iterations++
	p := Problem{Src: cfg, Target: target, Rules: l.rules()}
	if p.Satisfied() {
		l.lastDst = cfg
		l.endWake(a, false)
		l.closeCause(a)
		return
	}
	sr, err := l.solveDirtySlices(p, dirtyNodes, dirtyVMs, nil, nil)
	switch {
	case err != nil:
		// Monolithic fallback under the same budget. This covers an
		// undecomposable problem, a failed dirty-slice solve, and
		// errNothingDirty: the Satisfied() early-return above did not
		// fire, so when every dirty slice is individually clean the
		// unmet need sits in a slice the events never touched (e.g. a
		// queued vjob the decision module now wants running on
		// capacity freed elsewhere) — only a whole-cluster solve can
		// reach it.
		l.Stats.SolverCalls++
		l.Stats.FullSolves++
		opt := l.Optimizer
		opt.WarmStart = l.lastDst
		sp := l.Trace.Start(obs.KindSolve, "full", l.nowVirt)
		var t0 time.Time
		if l.Solver != nil {
			t0 = time.Now()
		}
		res, serr := opt.SolveContext(l.ctx(), p)
		if serr == nil {
			sp.SetSolve(float64(res.Cost), maxInt(res.Partitions, 1), opt.WarmStart != nil)
			sp.SetSearch(res.Winner, res.Nodes, res.Fails, res.WarmHit)
			if l.Solver != nil {
				l.recordSolve("full", res, opt.WarmStart != nil, time.Since(t0).Seconds())
			}
		} else {
			sp.SetOutcome("error")
		}
		sp.End(l.nowVirt)
		if serr != nil || res.Plan.NumActions() == 0 {
			l.endWake(a, false)
			if serr == nil {
				l.subSolves(res)
				l.lastDst = res.Dst
			} else {
				// The solve failed (expired budget before a first
				// solution, transient unviability): keep the region
				// dirty and retry after the debounce, like the
				// periodic schedule retries every interval.
				l.dirty.addSets(dirtyNodes, dirtyVMs)
				l.resolvePending = true
			}
			l.next(a)
			return
		}
		l.subSolves(res)
		l.lastDst = res.Dst
		l.execute(a, res, 0)
	default:
		ms := l.Trace.Start(obs.KindMerge, "merge", l.nowVirt)
		dst := cfg.Clone()
		for i, d := range sr.dsts {
			if err := dst.Rebase(sr.srcs[i], d); err != nil {
				ms.SetOutcome("error")
				ms.End(l.nowVirt)
				l.endWake(a, false)
				l.dirty.addSets(dirtyNodes, dirtyVMs)
				l.resolvePending = true
				l.next(a)
				return
			}
		}
		merged, err := plan.Merge(cfg, sr.plans...)
		if err != nil {
			ms.SetOutcome("error")
			ms.End(l.nowVirt)
			l.endWake(a, false)
			l.dirty.addSets(dirtyNodes, dirtyVMs)
			l.resolvePending = true
			l.next(a)
			return
		}
		ms.End(l.nowVirt)
		l.lastDst = dst
		if merged.NumActions() == 0 {
			l.endWake(a, false)
			l.next(a)
			return
		}
		l.execute(a, &Result{Dst: dst, Plan: merged, Cost: merged.Cost(), Partitions: len(sr.plans)}, len(sr.plans))
	}
}

// planDirty collects the nodes and VMs a plan manipulates. Nodes
// matter as much as VMs: a Stop removes its VM from the configuration,
// so after a stop-containing switch only the freed nodes can lead the
// follow-up pass back to the right slice.
func planDirty(p *plan.Plan) (nodes, vms map[string]bool) {
	nodes = make(map[string]bool)
	vms = make(map[string]bool)
	for _, a := range p.Actions() {
		vms[a.VM().Name] = true
		for _, n := range plan.TouchedNodes(a) {
			nodes[n] = true
		}
	}
	return nodes, vms
}
