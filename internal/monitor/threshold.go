package monitor

import (
	"sort"

	"cwcs/internal/core"
	"cwcs/internal/resources"
	"cwcs/internal/sim"
	"cwcs/internal/vjob"
)

// ThresholdWatcher turns periodic utilization samples into debounced
// cluster events, the monitoring half of the control plane: sustained
// per-node overload on ANY resource dimension becomes a LoadChange
// event the event-driven loop reacts to, and nodes leaving or joining
// the configuration become NodeDown / NodeUp events. It is the bridge
// between raw monitoring (Observe) and Loop.Notify — the same
// ingestion path the control plane's POST /v1/events feeds.
//
// Overload detection uses hysteresis so a node oscillating around the
// watermark does not storm the loop: a dimension must stay above its
// High for Sustain consecutive samples before one event fires, and no
// further event fires for that dimension until its utilization has
// dropped below its Low again. Watermarks default to High/Low for
// every dimension; PerKind overrides them per resource kind (a
// network-bound cluster may want net to trip at 0.8 while memory
// keeps 0.9).
type ThresholdWatcher struct {
	// Interval is the sampling period in virtual seconds; 0 defaults
	// to 10 s (the paper's monitoring refresh).
	Interval float64
	// High is the default overload watermark as a utilization fraction
	// (demand/capacity, per dimension); 0 defaults to 0.9. Strictly
	// above High counts as hot.
	High float64
	// Low is the default re-arm watermark; an overloaded dimension
	// must drop below it before a new overload event can fire. 0
	// defaults to 0.7.
	Low float64
	// PerKind overrides the watermarks for individual resource
	// dimensions; kinds absent from the map use High/Low. A zero field
	// inside a Watermarks entry falls back to the corresponding
	// default too, so {High: 0.8} only moves the trip point.
	PerKind map[resources.Kind]Watermarks
	// Sustain is how many consecutive hot samples trigger the event; 0
	// defaults to 3.
	Sustain int
	// Emit receives the events (required for Attach; Sample returns
	// them too).
	Emit func(core.Event)

	hot        map[nodeKind]int  // consecutive hot samples per node and dimension
	overloaded map[nodeKind]bool // fired and not yet cooled below Low
	known      map[string]bool   // node set of the previous sample
	primed     bool              // first sample taken (baseline set)
	stopped    bool
}

// Watermarks is one dimension's High/Low pair for PerKind overrides.
type Watermarks struct {
	High, Low float64
}

// nodeKind keys the hysteresis state: one overload state machine per
// node and resource dimension.
type nodeKind struct {
	node string
	kind resources.Kind
}

func (w *ThresholdWatcher) interval() float64 {
	if w.Interval <= 0 {
		return 10
	}
	return w.Interval
}

func (w *ThresholdWatcher) high(k resources.Kind) float64 {
	if m, ok := w.PerKind[k]; ok && m.High > 0 {
		return m.High
	}
	if w.High <= 0 {
		return 0.9
	}
	return w.High
}

func (w *ThresholdWatcher) low(k resources.Kind) float64 {
	l := w.Low
	if m, ok := w.PerKind[k]; ok && m.Low > 0 {
		l = m.Low
	} else if l <= 0 {
		l = 0.7
	}
	// The re-arm threshold must sit at or below the trip threshold, or
	// a utilization between them would fire and re-arm on every sample
	// — the very storm the hysteresis exists to prevent. A PerKind
	// High override below the (defaulted) Low is clamped rather than
	// inverted.
	if h := w.high(k); l > h {
		l = h
	}
	return l
}

func (w *ThresholdWatcher) sustain() int {
	if w.Sustain <= 0 {
		return 3
	}
	return w.Sustain
}

// utilization returns the node's demand/capacity fraction on one
// dimension, from the free-resource map of one cfg.FreeResources pass
// (per-node Used calls rescan the whole VM set, which would make
// sampling O(nodes x VMs) on the serving daemon's hottest path).
// Zero-capacity resources count as saturated only when demanded.
func utilization(free map[string]resources.Vector, n *vjob.Node, k resources.Kind) float64 {
	cap := n.Capacity.Get(k)
	used := cap - free[n.Name].Get(k)
	if cap <= 0 {
		if used > 0 {
			return 2 // over any watermark
		}
		return 0
	}
	return float64(used) / float64(cap)
}

// Sample feeds one observation of the configuration at virtual time t
// and returns the events it triggers, in deterministic (node-name)
// order. The first sample only takes the baseline: nodes present at
// attach time emit nothing.
func (w *ThresholdWatcher) Sample(t float64, cfg *vjob.Configuration) []core.Event {
	if w.hot == nil {
		w.hot = make(map[nodeKind]int)
		w.overloaded = make(map[nodeKind]bool)
		w.known = make(map[string]bool)
	}
	var events []core.Event
	current := make(map[string]bool, cfg.NumNodes())
	free := cfg.FreeResources()

	for _, n := range cfg.Nodes() {
		current[n.Name] = true
		if w.primed && !w.known[n.Name] {
			events = append(events, core.Event{Kind: core.NodeUp, At: t, Nodes: []string{n.Name}})
		}
		// Each dimension runs its own hysteresis state machine; the
		// node fires at most one LoadChange per sample however many
		// dimensions tripped together.
		fired := false
		for _, k := range resources.Kinds() {
			key := nodeKind{node: n.Name, kind: k}
			u := utilization(free, n, k)
			if u > w.high(k) {
				w.hot[key]++
			} else {
				w.hot[key] = 0
			}
			if w.overloaded[key] {
				if u < w.low(k) {
					delete(w.overloaded, key) // cooled: re-arm
				}
				continue
			}
			if w.hot[key] >= w.sustain() {
				w.overloaded[key] = true
				fired = true
			}
		}
		if fired {
			ev := core.Event{Kind: core.LoadChange, At: t, Nodes: []string{n.Name}}
			for _, v := range cfg.RunningOn(n.Name) {
				ev.VMs = append(ev.VMs, v.Name)
			}
			events = append(events, ev)
		}
	}

	// Known nodes that vanished from the configuration went offline.
	var downs []string
	for name := range w.known {
		if !current[name] {
			downs = append(downs, name)
		}
	}
	sort.Strings(downs)
	for _, name := range downs {
		events = append(events, core.Event{Kind: core.NodeDown, At: t, Nodes: []string{name}})
		for _, k := range resources.Kinds() {
			delete(w.hot, nodeKind{node: name, kind: k})
			delete(w.overloaded, nodeKind{node: name, kind: k})
		}
	}

	w.known = current
	w.primed = true
	return events
}

// Attach starts periodic sampling on the cluster, pushing every
// triggered event through Emit, until Stop is called.
func (w *ThresholdWatcher) Attach(c *sim.Cluster) {
	var tick func()
	tick = func() {
		if w.stopped {
			return
		}
		for _, ev := range w.Sample(c.Now(), c.Config()) {
			if w.Emit != nil {
				w.Emit(ev)
			}
		}
		c.Schedule(c.Now()+w.interval(), tick)
	}
	tick()
}

// Stop ends the sampling (the pending tick becomes a no-op).
func (w *ThresholdWatcher) Stop() { w.stopped = true }

// WatchViolationSeconds integrates the number of capacity violations
// over virtual time, advanced at every simulation event and phase
// change: the cumulative exposure metric of the churn and drain
// studies and of the control plane's /metrics. In-flight transfers
// oversubscribing a NIC count too (sim.TransferViolations): a node
// whose guests fit but whose service traffic is starved by migration
// streams is exposure just like an overloaded node — exactly the
// exposure the planner's transfer gating trades plan parallelism
// against. It returns the running integral's getter.
//
// Since the attribution ledger landed, this is a view over it: the
// integral is the fold of the ledger's per-vjob subtotals, so the
// aggregate and its decomposition are the same numbers by
// construction (see Ledger.Total).
func WatchViolationSeconds(c *sim.Cluster) func() float64 {
	return WatchLedger(c, nil).Total
}
