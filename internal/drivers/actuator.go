package drivers

import (
	"cwcs/internal/core"
	"cwcs/internal/obs"
	"cwcs/internal/plan"
	"cwcs/internal/sim"
	"cwcs/internal/vjob"
)

// Actuator adapts a simulated cluster to the core.Actuator interface,
// wiring the Entropy control loop to the drivers.
type Actuator struct {
	// C is the simulated cluster.
	C *sim.Cluster
	// Reports accumulates the raw execution reports.
	Reports []Report
	// Trace, when non-nil, records executed-action spans (see
	// Callbacks.Trace); share the loop's tracer so action spans carry
	// the reconfiguration cause that scheduled them.
	Trace *obs.Tracer
}

// Now returns the cluster's virtual time.
func (a *Actuator) Now() float64 { return a.C.Now() }

// Schedule forwards to the cluster's event queue.
func (a *Actuator) Schedule(at float64, fn func()) { a.C.Schedule(at, fn) }

// Observe snapshots the configuration.
func (a *Actuator) Observe() *vjob.Configuration { return a.C.Snapshot() }

// Execute runs the plan through the drivers and reports back.
func (a *Actuator) Execute(p *plan.Plan, done func(duration float64, failures int)) {
	Start(a.C, p, Callbacks{
		Trace: a.Trace,
		Done: func(r Report) {
			a.Reports = append(a.Reports, r)
			done(r.Duration(), len(r.Errs))
		},
	})
}

// ExecuteManaged runs the plan with mid-flight observability, making
// the Actuator a core.ManagedActuator: the event-driven loop uses the
// returned handle to splice plan repairs in at pool boundaries.
func (a *Actuator) ExecuteManaged(p *plan.Plan, onFailure func(plan.Action, error), onPoolDone func(), done func(duration float64, failures int)) core.Execution {
	return Start(a.C, p, Callbacks{
		Failure:  onFailure,
		PoolDone: onPoolDone,
		Trace:    a.Trace,
		Done: func(r Report) {
			a.Reports = append(a.Reports, r)
			done(r.Duration(), len(r.Errs))
		},
	})
}
