package main

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"cwcs/internal/api"
)

// TestMountPprofGating checks the -pprof wiring: with the flag on the
// profiling endpoints serve, with it off they fall through to the API
// mux and 404 — while the control-plane routes work either way.
func TestMountPprofGating(t *testing.T) {
	apiHandler := (&api.Server{}).Handler()

	enabled := httptest.NewServer(mount(apiHandler, true))
	defer enabled.Close()
	disabled := httptest.NewServer(mount(apiHandler, false))
	defer disabled.Close()

	status := func(base, path string) int {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := status(enabled.URL, "/debug/pprof/"); got != http.StatusOK {
		t.Errorf("enabled /debug/pprof/ = %d, want 200", got)
	}
	if got := status(enabled.URL, "/debug/pprof/cmdline"); got != http.StatusOK {
		t.Errorf("enabled /debug/pprof/cmdline = %d, want 200", got)
	}
	if got := status(disabled.URL, "/debug/pprof/"); got != http.StatusNotFound {
		t.Errorf("disabled /debug/pprof/ = %d, want 404", got)
	}
	// The control plane is reachable through the mount in both modes.
	for _, base := range []string{enabled.URL, disabled.URL} {
		if got := status(base, "/healthz"); got != http.StatusOK {
			t.Errorf("%s/healthz = %d, want 200", base, got)
		}
	}
}
