package plan

import (
	"fmt"

	"cwcs/internal/vjob"
)

// Graph is a reconfiguration graph (§4.1): an oriented multigraph whose
// vertices are the cluster nodes and whose edges are the actions
// required to transform the source configuration into the destination
// configuration. Each edge carries the action's resource demand and
// release, which the plan builder uses to order the actions.
type Graph struct {
	// Src is the current configuration.
	Src *vjob.Configuration
	// Dst is the configuration the decision module computed.
	Dst *vjob.Configuration
	// Actions are the edges, in deterministic (VM name) order.
	Actions []Action
}

// BuildGraph diffs two configurations and returns the reconfiguration
// graph listing every action needed. It returns an error when the
// destination asks for a transition the vjob life cycle forbids (e.g.
// Running back to Waiting) or references an unknown node.
func BuildGraph(src, dst *vjob.Configuration) (*Graph, error) {
	g := &Graph{Src: src, Dst: dst}
	for _, v := range src.VMs() {
		from := src.StateOf(v.Name)
		to := dst.StateOf(v.Name)
		if !vjob.ValidTransition(from, to) {
			return nil, fmt.Errorf("plan: VM %s: invalid transition %v -> %v", v.Name, from, to)
		}
		switch {
		case from == vjob.Running && to == vjob.Running:
			if src.HostOf(v.Name) != dst.HostOf(v.Name) {
				g.Actions = append(g.Actions, &Migration{Machine: v, Src: src.HostOf(v.Name), Dst: dst.HostOf(v.Name)})
			}
		case from == vjob.Sleeping && to == vjob.Sleeping:
			if src.ImageHostOf(v.Name) != dst.ImageHostOf(v.Name) {
				return nil, fmt.Errorf("plan: VM %s: relocating a suspended image (%s -> %s) is not a context-switch action",
					v.Name, src.ImageHostOf(v.Name), dst.ImageHostOf(v.Name))
			}
		case from == vjob.Running && to == vjob.Sleeping:
			g.Actions = append(g.Actions, &Suspend{Machine: v, On: src.HostOf(v.Name), To: dst.ImageHostOf(v.Name)})
		case from == vjob.Running && to == vjob.Terminated:
			g.Actions = append(g.Actions, &Stop{Machine: v, On: src.HostOf(v.Name)})
		case from == vjob.Sleeping && to == vjob.Running:
			g.Actions = append(g.Actions, &Resume{Machine: v, From: src.ImageHostOf(v.Name), On: dst.HostOf(v.Name)})
		case from == vjob.Waiting && to == vjob.Running:
			g.Actions = append(g.Actions, &Run{Machine: v, On: dst.HostOf(v.Name)})
		}
	}
	// VMs that appear only in the destination are booted from Waiting.
	for _, v := range dst.VMs() {
		if src.VM(v.Name) != nil {
			continue
		}
		if dst.StateOf(v.Name) == vjob.Running {
			g.Actions = append(g.Actions, &Run{Machine: v, On: dst.HostOf(v.Name)})
		}
	}
	for _, a := range g.Actions {
		if err := checkNodes(dst, src, a); err != nil {
			return nil, err
		}
	}
	return g, nil
}

func checkNodes(dst, src *vjob.Configuration, a Action) error {
	names := func(ns ...string) error {
		for _, n := range ns {
			if n == "" || (dst.Node(n) == nil && src.Node(n) == nil) {
				return fmt.Errorf("plan: action %s references unknown node %q", a, n)
			}
		}
		return nil
	}
	switch a := a.(type) {
	case *Migration:
		return names(a.Src, a.Dst)
	case *Run:
		return names(a.On)
	case *Stop:
		return names(a.On)
	case *Suspend:
		return names(a.On, a.To)
	case *Resume:
		return names(a.From, a.On)
	}
	return nil
}

// TotalCost sums the local costs of the graph's actions; this is the
// cost a plan would have if every action ran in a single parallel pool.
// It is a lower bound on any plan cost for the graph.
func (g *Graph) TotalCost() int {
	sum := 0
	for _, a := range g.Actions {
		sum += a.Cost()
	}
	return sum
}

// String lists the edges of the graph.
func (g *Graph) String() string {
	s := ""
	for _, a := range g.Actions {
		s += a.String() + "\n"
	}
	return s
}
