// Command experiments regenerates the tables and figures of the
// paper's evaluation. Each subcommand prints the rows/series of one
// table or figure:
//
//	experiments fig1              backfilling schematic (FCFS / EASY / EASY+preemption)
//	experiments table1            action cost model
//	experiments fig3              action durations vs VM memory
//	experiments fig10 [-quick]    FFD vs Entropy reconfiguration costs (200 nodes)
//	experiments fig11 [-quick]    cost & duration of the cluster run's context switches
//	experiments fig12 [-quick]    allocation diagram under static FCFS
//	experiments fig13 [-quick]    utilization & completion, Entropy vs FCFS
//	experiments partition [-quick] partitioned vs monolithic solve scaling
//	experiments churn [-quick]    periodic vs event-driven loop under churn
//	experiments repairstorm [-quick]  repair widening off/on under failure storms
//	experiments drain [-quick]    drain/evacuate a node fraction under churn
//	experiments multires [-quick] CPU-only vs multi-dimensional packing
//	experiments migration [-quick] transfer-blind vs bandwidth-aware planner
//	experiments chaos [-quick]    fault-injection cells + trace replay, recovery distributions
//	experiments all  [-quick]     everything above
//
// -quick shrinks sample counts, solver budgets and workload durations
// so the full set completes in seconds; without it the fig10 sweep
// uses the paper's 30 samples × 40 s budget and runs for hours.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cwcs/internal/experiments"
	"cwcs/internal/monitor"
	"cwcs/internal/obs"
	"cwcs/internal/sched"
	"cwcs/internal/sim"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	// The CLI is subcommand-first, so -version must be caught before
	// subcommand dispatch rejects it as an unknown command.
	if cmd == "version" || cmd == "-version" || cmd == "--version" {
		info := obs.BuildInfo()
		fmt.Printf("experiments %s %s\n", info.Version, info.GoVersion)
		return
	}
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	quick := fs.Bool("quick", false, "reduced samples/budgets for a fast run")
	seed := fs.Int64("seed", 42, "workload seed")
	// Defaults to sequential: the portfolio race's outcome depends on
	// goroutine timing, and the published figures must reproduce from a
	// seed alone. Opt in with -workers N (or 0 for GOMAXPROCS).
	workers := fs.Int("workers", 1, "parallel portfolio workers per optimization (1 = sequential/reproducible, 0 = GOMAXPROCS)")
	// -1 = per-command default: the paper figures stay on the
	// monolithic model they were published with (1); the partition
	// study's partitioned side defaults to auto (0).
	partitions := fs.Int("partitions", -1, "cluster partitions solved concurrently (0 = auto, 1 = monolithic)")
	csvDir := fs.String("csv", "", "also write <figure>.csv files into this directory")
	traceName := fs.String("trace", "web-tide", "committed sample trace the chaos replay cell feeds the loop")
	scenarios := fs.String("scenario", "", "comma-separated chaos cells to run (default: all; see experiments chaos -quick)")
	traceOut := fs.String("trace-out", "", "write the span stream of churn/chaos runs to this JSONL file (load with /v1/trace tooling or Perfetto)")
	_ = fs.Parse(os.Args[2:])
	figParts := *partitions
	if figParts < 0 {
		figParts = 1
	}
	studyParts := *partitions
	if studyParts < 0 {
		studyParts = 0
	}

	switch cmd {
	case "fig1":
		fmt.Print(experiments.Fig1())
	case "table1":
		fmt.Print(experiments.Table1(1024))
	case "fig3":
		rows := experiments.Fig3(512, 1024, 2048)
		fmt.Print(experiments.Fig3Table(rows))
		writeCSV(*csvDir, "fig3.csv", experiments.Fig3CSV(rows))
	case "fig10":
		rows := experiments.Fig10(fig10Options(*quick, *seed, *workers, figParts))
		fmt.Print(experiments.Fig10Table(rows))
		writeCSV(*csvDir, "fig10.csv", experiments.Fig10CSV(rows))
	case "fig11":
		_, ent := clusterRuns(*quick, *seed, *workers, figParts, false)
		fmt.Print(experiments.Fig11Table(ent))
		writeCSV(*csvDir, "fig11.csv", experiments.Fig11CSV(ent))
	case "fig12":
		fcfs, _ := clusterRuns(*quick, *seed, *workers, figParts, true)
		fmt.Println("Figure 12 — allocation diagram, static FCFS scheduler")
		fmt.Print(fcfs.Gantt.Render(72))
	case "fig13":
		fcfs, ent := clusterRuns(*quick, *seed, *workers, figParts, false)
		fmt.Print(experiments.Fig13Table(fcfs, ent))
		writeCSV(*csvDir, "fig13.csv", experiments.Fig13CSV(fcfs, ent))
	case "partition":
		rows := experiments.PartitionStudy(partitionOptions(*quick, *seed, *workers, studyParts))
		fmt.Print(experiments.PartitionTable(rows))
		writeCSV(*csvDir, "partition.csv", experiments.PartitionCSV(rows))
	case "churn":
		co := churnOptions(*quick, *seed, *workers, studyParts)
		co.CollectSpans = *traceOut != ""
		rows := experiments.ChurnStudy(co)
		fmt.Print(experiments.ChurnTable(rows))
		for _, r := range rows {
			printAttribution(r.Mode, r.Ledger)
		}
		writeCSV(*csvDir, "churn.csv", experiments.ChurnCSV(rows))
		var spans []obs.SpanRecord
		for _, r := range rows {
			spans = append(spans, r.Spans...)
		}
		writeTrace(*traceOut, spans)
	case "repairstorm":
		rows := experiments.RepairStormStudy(repairStormOptions(*quick, *seed, *workers, studyParts))
		fmt.Print(experiments.RepairStormTable(rows))
		writeCSV(*csvDir, "repairstorm.csv", experiments.RepairStormCSV(rows))
	case "drain":
		r := experiments.RunDrain(drainOptions(*quick, *seed, *workers, studyParts))
		fmt.Print(experiments.DrainTable(r))
		writeCSV(*csvDir, "drain.csv", experiments.DrainCSV(r))
	case "multires":
		r := experiments.RunMultiRes(multiresOptions(*quick, *seed, *workers, studyParts))
		fmt.Print(experiments.MultiResTable(r))
		writeCSV(*csvDir, "multires.csv", experiments.MultiResCSV(r))
	case "migration":
		r := experiments.RunMigration(migrationOptions(*quick, *seed, *workers, studyParts))
		fmt.Print(experiments.MigrationTable(r))
		writeCSV(*csvDir, "migration.csv", experiments.MigrationCSV(r))
	case "chaos":
		co := chaosOptions(*quick, *seed, *workers, studyParts, *traceName)
		co.CollectSpans = *traceOut != ""
		if *scenarios != "" {
			co.Scenarios = strings.Split(*scenarios, ",")
			for _, s := range co.Scenarios {
				if !knownScenario(s) {
					fmt.Fprintf(os.Stderr, "experiments: unknown chaos scenario %q (have %s)\n",
						s, strings.Join(experiments.ChaosScenarios(), ", "))
					os.Exit(2)
				}
			}
		}
		rows := experiments.ChaosStudy(co)
		fmt.Print(experiments.ChaosTable(rows))
		for _, r := range rows {
			printAttribution(r.Scenario, r.Ledger)
		}
		writeCSV(*csvDir, "chaos.csv", experiments.ChaosCSV(rows))
		var spans []obs.SpanRecord
		for _, r := range rows {
			spans = append(spans, r.Spans...)
		}
		writeTrace(*traceOut, spans)
	case "all":
		fmt.Print(experiments.Fig1())
		fmt.Println()
		fmt.Print(experiments.Table1(1024))
		fmt.Println()
		fmt.Print(experiments.Fig3Table(experiments.Fig3(512, 1024, 2048)))
		fmt.Println()
		fmt.Print(experiments.Fig10Table(experiments.Fig10(fig10Options(*quick, *seed, *workers, figParts))))
		fmt.Println()
		fcfs, ent := clusterRuns(*quick, *seed, *workers, figParts, false)
		fmt.Print(experiments.Fig11Table(ent))
		fmt.Println()
		fmt.Println("Figure 12 — allocation diagram, static FCFS scheduler")
		fmt.Print(fcfs.Gantt.Render(72))
		fmt.Println()
		fmt.Print(experiments.Fig13Table(fcfs, ent))
		fmt.Println()
		fmt.Print(experiments.PartitionTable(experiments.PartitionStudy(partitionOptions(*quick, *seed, *workers, studyParts))))
		fmt.Println()
		fmt.Print(experiments.ChurnTable(experiments.ChurnStudy(churnOptions(*quick, *seed, *workers, studyParts))))
		fmt.Println()
		fmt.Print(experiments.RepairStormTable(experiments.RepairStormStudy(repairStormOptions(*quick, *seed, *workers, studyParts))))
		fmt.Println()
		fmt.Print(experiments.DrainTable(experiments.RunDrain(drainOptions(*quick, *seed, *workers, studyParts))))
		fmt.Println()
		fmt.Print(experiments.MultiResTable(experiments.RunMultiRes(multiresOptions(*quick, *seed, *workers, studyParts))))
		fmt.Println()
		fmt.Print(experiments.MigrationTable(experiments.RunMigration(migrationOptions(*quick, *seed, *workers, studyParts))))
		fmt.Println()
		fmt.Print(experiments.ChaosTable(experiments.ChaosStudy(chaosOptions(*quick, *seed, *workers, studyParts, *traceName))))
	default:
		usage()
		os.Exit(2)
	}
}

func fig10Options(quick bool, seed int64, workers, partitions int) experiments.Fig10Options {
	o := experiments.DefaultFig10Options()
	o.Seed = seed
	o.Workers = workers
	o.Partitions = partitions
	if quick {
		o.VMCounts = []int{54, 108, 162, 216}
		o.Samples = 3
		o.Timeout = 2 * time.Second
	}
	return o
}

// partitionOptions shapes the partitioned-vs-monolithic scaling sweep.
func partitionOptions(quick bool, seed int64, workers, partitions int) experiments.PartitionOptions {
	o := experiments.DefaultPartitionOptions()
	o.Seed = seed
	o.Workers = workers
	o.Partitions = partitions
	if quick {
		o.NodeCounts = []int{50, 100, 200}
		o.Timeout = 500 * time.Millisecond
	}
	return o
}

// churnOptions shapes the periodic-vs-event-driven loop study.
func churnOptions(quick bool, seed int64, workers, partitions int) experiments.ChurnOptions {
	o := experiments.DefaultChurnOptions()
	o.Seed = seed
	o.Workers = workers
	o.Partitions = partitions
	if quick {
		o.Nodes = 64
		o.InitialVJobs = 6
		o.VMsPerVJob = 4
		o.ArrivalStop = 200
		o.WorkScale = 0.2
		o.Horizon = 2000
		o.Timeout = 100 * time.Millisecond
	}
	return o
}

// repairStormOptions shapes the repair-widening failure-storm study.
func repairStormOptions(quick bool, seed int64, workers, partitions int) experiments.RepairStormOptions {
	o := experiments.DefaultRepairStormOptions()
	o.Churn.Seed = seed
	o.Churn.Workers = workers
	o.Churn.Partitions = partitions
	if quick {
		co := churnOptions(true, seed, workers, partitions)
		co.WatchInvariants = true
		o.Churn = co
		o.Rates = []float64{0.10}
	}
	return o
}

// drainOptions shapes the node-maintenance evacuation study.
func drainOptions(quick bool, seed int64, workers, partitions int) experiments.DrainOptions {
	o := experiments.DefaultDrainOptions()
	o.Seed = seed
	o.Workers = workers
	o.Partitions = partitions
	if quick {
		o.Nodes = 64
		o.InitialVJobs = 6
		o.VMsPerVJob = 4
		o.ArrivalStop = 200
		o.DrainAt = 200
		o.WorkScale = 0.2
		o.Horizon = 2000
		o.Timeout = 100 * time.Millisecond
	}
	return o
}

// multiresOptions shapes the multi-dimensional packing study.
func multiresOptions(quick bool, seed int64, workers, partitions int) experiments.MultiResOptions {
	o := experiments.DefaultMultiResOptions()
	o.Seed = seed
	o.Workers = workers
	o.Partitions = partitions
	if quick {
		o.Nodes = 48
		o.Timeout = 500 * time.Millisecond
	}
	return o
}

// migrationOptions shapes the bandwidth-aware context-switch study.
func migrationOptions(quick bool, seed int64, workers, partitions int) experiments.MigrationOptions {
	o := experiments.DefaultMigrationOptions()
	o.Seed = seed
	o.Workers = workers
	o.Partitions = partitions
	if quick {
		o.Nodes = 48
		o.Racks = 2
		o.Timeout = 250 * time.Millisecond
	}
	return o
}

// chaosOptions shapes the fault-injection study. Quick shrinks the
// cluster and opens every chaos window right after the arrival wave,
// so each cell perturbs a workload that is still live.
func chaosOptions(quick bool, seed int64, workers, partitions int, traceName string) experiments.ChaosOptions {
	o := experiments.DefaultChaosOptions()
	o.Churn.Seed = seed
	o.Churn.Workers = workers
	o.Churn.Partitions = partitions
	o.Trace = traceName
	if quick {
		o.Churn.Nodes = 48
		o.Churn.NodeCPU = 2
		o.Churn.NodeMemory = 4096
		o.Churn.InitialVJobs = 5
		o.Churn.VMsPerVJob = 4
		o.Churn.ArrivalRate = 1.0 / 40
		o.Churn.ArrivalStop = 300
		o.Churn.WorkScale = 0.2
		o.Churn.Horizon = 2400
		o.Churn.Debounce = 5
		o.Churn.Timeout = 100 * time.Millisecond
		o.Racks, o.Bursts, o.BurstFrom, o.BurstUntil, o.Outage = 8, 2, 100, 600, 150
		o.Flappers, o.FlapFrom, o.FlapUntil, o.MeanDown, o.MeanUp = 4, 100, 600, 20, 60
		o.Loss = sim.EventLoss{Fraction: 0.5, From: 60, Until: 600}
		o.StormRate, o.StormFrom, o.StormUntil = 0.25, 60, 400
		o.ResyncInterval = 40
	}
	return o
}

func knownScenario(name string) bool {
	for _, s := range experiments.ChaosScenarios() {
		if s == name {
			return true
		}
	}
	return false
}

// clusterRuns executes the §5.2 experiment under both decision
// modules. fcfsOnly skips the Entropy run (for fig12).
func clusterRuns(quick bool, seed int64, workers, partitions int, fcfsOnly bool) (fcfs, entropy experiments.ClusterResult) {
	opts := experiments.DefaultClusterOptions()
	opts.Seed = seed
	opts.Workers = workers
	opts.Partitions = partitions
	if quick {
		opts.WorkScale = 0.5
		opts.Timeout = time.Second
	}
	fopts := opts
	fopts.PinRunning = true // a static RMS never migrates
	fcfs = experiments.RunCluster(sched.StaticFCFS{ReserveFullCPU: true}, fopts)
	if !fcfsOnly {
		entropy = experiments.RunCluster(sched.Consolidation{}, opts)
	}
	return fcfs, entropy
}

// writeTrace stores the collected span stream as JSONL when
// -trace-out was given.
func writeTrace(path string, spans []obs.SpanRecord) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if err := obs.WriteJSONL(f, spans); err == nil {
		err = f.Close()
	} else {
		_ = f.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d spans)\n", path, len(spans))
}

// writeCSV stores content under dir when -csv was given.
// printAttribution is the CLI mirror of GET /v1/violations: one line
// per study row naming who absorbed the violation exposure. Silent
// for clean runs.
func printAttribution(label string, led *monitor.Ledger) {
	if led == nil || led.Total() == 0 {
		return
	}
	fmt.Printf("%-13s top violators:", label)
	for _, s := range led.TopVJobs(3) {
		fmt.Printf(" vjob %s=%.0fs", s.VJob, s.Seconds)
	}
	for _, s := range led.TopNodes(3) {
		fmt.Printf(" node %s=%.0fs", s.Node, s.Seconds)
	}
	if rb := led.RuleBreachSeconds(); rb > 0 {
		fmt.Printf(" rule-breach=%.0fs", rb)
	}
	fmt.Println()
}

func writeCSV(dir, name, content string) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	path := dir + string(os.PathSeparator) + name
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: experiments <fig1|table1|fig3|fig10|fig11|fig12|fig13|partition|churn|repairstorm|drain|multires|migration|chaos|all|version> [-quick] [-seed N] [-workers N] [-partitions N] [-trace NAME] [-scenario a,b] [-csv DIR] [-trace-out FILE]`)
}
