// Package cp is a small finite-domain constraint-programming solver,
// the stand-in for the Choco 1.2.04 library the paper uses (§4.3). It
// provides integer variables over finite domains, a propagation engine
// with constraint watch lists, depth-first search with snapshot-based
// backtracking, pluggable variable/value ordering heuristics (first
// fail, prefer-current-value), branch-and-bound minimization of a
// single variable, and deadlines.
//
// The solver is deliberately scoped to what the paper's
// reconfiguration problem needs; it is nevertheless a generic engine:
// constraints implement the Constraint interface and can be combined
// freely (the test suite solves n-queens and Sudoku-like puzzles with
// it).
package cp

import "math/bits"

// domain is the value set of a variable. Two implementations exist: a
// bitset for small enumerated domains (VM-to-node assignments) and a
// bounds-only interval for large numeric ranges (the cost objective).
type domain interface {
	min() int
	max() int
	size() int
	contains(v int) bool
	// removeValue removes v; reports whether the domain changed.
	// Bounds-only domains support removal at the bounds exclusively
	// and panic otherwise (the engine never does interior removal on
	// them).
	removeValue(v int) bool
	// removeBelow keeps values >= v; reports change.
	removeBelow(v int) bool
	// removeAbove keeps values <= v; reports change.
	removeAbove(v int) bool
	clone() domain
	// values returns the domain in ascending order.
	values() []int
}

// bitsetDomain enumerates values in [0, n) with one bit each.
type bitsetDomain struct {
	words []uint64
	n     int // number of set bits
	lo    int // cached minimum
	hi    int // cached maximum
}

func newBitsetDomain(values []int) *bitsetDomain {
	hi := 0
	for _, v := range values {
		if v < 0 {
			panic("cp: bitset domain values must be non-negative")
		}
		if v > hi {
			hi = v
		}
	}
	d := &bitsetDomain{words: make([]uint64, hi/64+1)}
	for _, v := range values {
		if d.words[v/64]&(1<<uint(v%64)) == 0 {
			d.words[v/64] |= 1 << uint(v%64)
			d.n++
		}
	}
	d.lo = d.scanUp(0)
	d.hi = d.scanDown(hi)
	return d
}

func (d *bitsetDomain) scanUp(from int) int {
	for w := from / 64; w < len(d.words); w++ {
		word := d.words[w]
		if w == from/64 {
			word &= ^uint64(0) << uint(from%64)
		}
		if word != 0 {
			return w*64 + bits.TrailingZeros64(word)
		}
	}
	return -1
}

func (d *bitsetDomain) scanDown(from int) int {
	for w := from / 64; w >= 0; w-- {
		word := d.words[w]
		if w == from/64 {
			word &= ^uint64(0) >> uint(63-from%64)
		}
		if word != 0 {
			return w*64 + 63 - bits.LeadingZeros64(word)
		}
	}
	return -1
}

func (d *bitsetDomain) min() int  { return d.lo }
func (d *bitsetDomain) max() int  { return d.hi }
func (d *bitsetDomain) size() int { return d.n }

func (d *bitsetDomain) contains(v int) bool {
	if v < 0 || v/64 >= len(d.words) {
		return false
	}
	return d.words[v/64]&(1<<uint(v%64)) != 0
}

func (d *bitsetDomain) removeValue(v int) bool {
	if !d.contains(v) {
		return false
	}
	d.words[v/64] &^= 1 << uint(v%64)
	d.n--
	if d.n == 0 {
		d.lo, d.hi = -1, -1
		return true
	}
	if v == d.lo {
		d.lo = d.scanUp(v)
	}
	if v == d.hi {
		d.hi = d.scanDown(v)
	}
	return true
}

func (d *bitsetDomain) removeBelow(v int) bool {
	changed := false
	for d.n > 0 && d.lo < v {
		d.removeValue(d.lo)
		changed = true
	}
	return changed
}

func (d *bitsetDomain) removeAbove(v int) bool {
	changed := false
	for d.n > 0 && d.hi > v {
		d.removeValue(d.hi)
		changed = true
	}
	return changed
}

func (d *bitsetDomain) clone() domain {
	return &bitsetDomain{words: append([]uint64(nil), d.words...), n: d.n, lo: d.lo, hi: d.hi}
}

func (d *bitsetDomain) values() []int {
	out := make([]int, 0, d.n)
	for v := d.lo; v >= 0 && v <= d.hi; v = d.scanUp(v + 1) {
		out = append(out, v)
	}
	return out
}

// boundsDomain is an interval [lo, hi] without holes, for large
// numeric variables that are only ever tightened at the bounds.
type boundsDomain struct {
	lo, hi int
}

func (d *boundsDomain) min() int { return d.lo }
func (d *boundsDomain) max() int { return d.hi }
func (d *boundsDomain) size() int {
	if d.hi < d.lo {
		return 0
	}
	return d.hi - d.lo + 1
}

func (d *boundsDomain) contains(v int) bool { return v >= d.lo && v <= d.hi }

func (d *boundsDomain) removeValue(v int) bool {
	switch v {
	case d.lo:
		d.lo++
		return true
	case d.hi:
		d.hi--
		return true
	default:
		if v < d.lo || v > d.hi {
			return false
		}
		panic("cp: interior removal on a bounds-only domain")
	}
}

func (d *boundsDomain) removeBelow(v int) bool {
	if v <= d.lo {
		return false
	}
	d.lo = v
	return true
}

func (d *boundsDomain) removeAbove(v int) bool {
	if v >= d.hi {
		return false
	}
	d.hi = v
	return true
}

func (d *boundsDomain) clone() domain { c := *d; return &c }

func (d *boundsDomain) values() []int {
	if d.hi < d.lo {
		return nil
	}
	out := make([]int, 0, d.hi-d.lo+1)
	for v := d.lo; v <= d.hi; v++ {
		out = append(out, v)
	}
	return out
}
