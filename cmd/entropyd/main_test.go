package main

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"cwcs/internal/core"
	"cwcs/internal/drivers"
	"cwcs/internal/duration"
	"cwcs/internal/sim"
	"cwcs/internal/vjob"
)

// TestSwitchLineSurfacesFailures is the regression test for silently
// dropped action failures: a record with failures must say so, and a
// clean record must not cry wolf.
func TestSwitchLineSurfacesFailures(t *testing.T) {
	clean := switchLine(core.SwitchRecord{At: 30, Cost: 1024, Actions: 3, Pools: 2, Duration: 19})
	if strings.Contains(clean, "FAILURES") {
		t.Fatalf("clean switch reports failures: %q", clean)
	}
	bad := switchLine(core.SwitchRecord{At: 60, Cost: 2048, Actions: 4, Pools: 2, Duration: 25, Failures: 2})
	if !strings.Contains(bad, "FAILURES=2") {
		t.Fatalf("failures not surfaced: %q", bad)
	}
}

// TestDriveSimFinishesInFlightSwitchOnShutdown pins the graceful
// shutdown contract: a cancellation arriving while a context switch
// executes must not abandon it — driveSim keeps advancing the
// simulation until the managed execution has completed.
func TestDriveSimFinishesInFlightSwitchOnShutdown(t *testing.T) {
	cfg := vjob.NewConfiguration()
	for i := 0; i < 4; i++ {
		cfg.AddNode(vjob.NewNode(fmt.Sprintf("n%02d", i), 2, 4096))
	}
	c := sim.New(cfg, duration.Default())
	act := &drivers.Actuator{C: c}

	// Two running VMs on a drained node force an evacuation whose
	// migrations take tens of virtual seconds.
	job := vjob.NewVJob("ja", 0,
		vjob.NewVM("a1", "ja", 1, 1024), vjob.NewVM("a2", "ja", 1, 1024))
	for _, v := range job.VMs {
		cfg.AddVM(v)
		if err := cfg.SetRunning(v.Name, "n00"); err != nil {
			t.Fatal(err)
		}
		c.SetWorkload(v.Name, []sim.Phase{{CPU: 1, Seconds: 1e6}})
	}
	drains := &core.DrainSet{}
	drains.Drain("n00")
	loop := &core.Loop{
		Decision:    reaper{inner: keepStates{}, c: c, jobs: func() []*vjob.VJob { return nil }},
		Optimizer:   core.Optimizer{Workers: 1, Timeout: 2 * time.Second},
		EventDriven: true,
		Debounce:    1,
		Drains:      drains,
		Queue:       func() []*vjob.VJob { return []*vjob.VJob{job} },
	}

	ctx, cancel := context.WithCancel(context.Background())
	loop.Ctx = ctx
	// Cancel at t=3: the bootstrap solve ran at t=0 and its migrations
	// (1024 MiB each) are still executing.
	c.Schedule(3, func() {
		if !loop.Busy() {
			t.Fatal("no switch in flight at the cancellation instant")
		}
		cancel()
	})

	var mu sync.Mutex
	loop.Start(act)
	driveSim(ctx, c, loop, &mu, 10_000, false, 2)

	if loop.Busy() {
		t.Fatal("driveSim returned with the switch still executing")
	}
	if len(loop.Records) != 1 {
		t.Fatalf("%d switches recorded", len(loop.Records))
	}
	if got := cfg.RunningOn("n00"); len(got) != 0 {
		t.Fatalf("n00 still hosts %d VMs: the switch was abandoned", len(got))
	}
	if !cfg.Viable() {
		t.Fatalf("non-viable configuration after shutdown: %v", cfg.Violations())
	}
}

// keepStates is the do-nothing decision module: every VM keeps its
// state, so only rule maintenance (the drain) can demand actions.
type keepStates struct{}

func (keepStates) Decide(*vjob.Configuration, []*vjob.VJob) map[string]vjob.State {
	return map[string]vjob.State{}
}

func TestErrorSummaryListsEveryReportError(t *testing.T) {
	if s := errorSummary(nil); s != "" {
		t.Fatalf("summary of nothing: %q", s)
	}
	reports := []drivers.Report{
		{Start: 30, End: 49},
		{Start: 90, End: 120, Errs: []error{
			errors.New("migrate(vm1,n1,n2): VM not running on n1"),
			errors.New("resume(vm2,n3,n3): VM not sleeping"),
		}},
		{Start: 150, End: 160, Errs: []error{errors.New("stop(vm3,n4): VM not running on n4")}},
	}
	s := errorSummary(reports)
	if !strings.Contains(s, "action failures: 3") {
		t.Fatalf("missing total: %q", s)
	}
	for _, want := range []string{"migrate(vm1,n1,n2)", "resume(vm2,n3,n3)", "stop(vm3,n4)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary lost %q:\n%s", want, s)
		}
	}
}
