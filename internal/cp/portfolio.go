package cp

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
)

// This file implements parallel portfolio search: the model is cloned
// into N independent solvers that race diverse search strategies
// against each other, sharing the incumbent objective bound through an
// atomic so every worker prunes with the global best. The first worker
// to reach a definitive answer (optimality proof, or unsatisfiability)
// cancels the rest. The technique is standard in modern CP/SAT solvers
// and fits the paper's §5.1 setting directly: with a fixed wall-clock
// budget per cluster-wide context switch, plan quality is bounded by
// how many branch-and-bound nodes fit in the window.

// Incumbent is the portfolio-wide upper bound on acceptable objective
// values: a worker that finds a solution with objective v tightens the
// bound to v-1, and every worker prunes its objective against it.
type Incumbent struct{ bound atomic.Int64 }

// NewIncumbent returns an incumbent bound starting at bound.
func NewIncumbent(bound int) *Incumbent {
	b := &Incumbent{}
	b.bound.Store(int64(bound))
	return b
}

// Bound returns the current bound.
func (b *Incumbent) Bound() int { return int(b.bound.Load()) }

// Tighten lowers the bound to v and reports whether v improved it; a
// value at or above the current bound is a no-op.
func (b *Incumbent) Tighten(v int) bool {
	for {
		cur := b.bound.Load()
		if int64(v) >= cur {
			return false
		}
		if b.bound.CompareAndSwap(cur, int64(v)) {
			return true
		}
	}
}

// Strategy configures the search heuristics of one portfolio worker.
type Strategy struct {
	// Label names the strategy in diagnostics.
	Label string
	// FirstFail and PreferValue mirror the Options fields.
	FirstFail   bool
	PreferValue bool
	// ShuffleSeed, when non-zero, shuffles the value order with a
	// deterministic stream seeded by it (shuffled-restart worker).
	ShuffleSeed int64
}

// Apply overlays the strategy on base, leaving deadline, context,
// decision variables and bound sharing untouched. Exported so callers
// that drive their own branch-and-bound over per-worker models (e.g.
// core.Optimizer) reuse the same strategy semantics.
func (st Strategy) Apply(base Options) Options {
	base.FirstFail = st.FirstFail
	base.PreferValue = st.PreferValue
	// Always overridden — never inherited from base: a caller-supplied
	// stream shared across workers would be a data race (rand.Rand is
	// not goroutine-safe).
	base.ValueRand = nil
	if st.ShuffleSeed != 0 {
		base.ValueRand = rand.New(rand.NewSource(st.ShuffleSeed))
	}
	return base
}

// DefaultStrategies returns the canonical diverse lineup for n
// workers: the paper's first-fail + prefer-current-host pairing, its
// three ordering ablations, then shuffled-restart workers seeded
// deterministically per index.
func DefaultStrategies(n int) []Strategy {
	base := []Strategy{
		{Label: "firstfail+prefer", FirstFail: true, PreferValue: true},
		{Label: "firstfail", FirstFail: true},
		{Label: "naive+prefer", PreferValue: true},
		{Label: "naive"},
	}
	out := make([]Strategy, 0, n)
	for i := 0; i < n; i++ {
		if i < len(base) {
			out = append(out, base[i])
			continue
		}
		out = append(out, Strategy{
			Label:       fmt.Sprintf("shuffle#%d", i),
			FirstFail:   true,
			PreferValue: true,
			ShuffleSeed: int64(i),
		})
	}
	return out
}

// PortfolioOptions tunes a portfolio run.
type PortfolioOptions struct {
	// Workers is the number of racing solver clones; values <= 1 fall
	// back to the sequential search with the first strategy.
	Workers int
	// Strategies overrides the worker lineup; workers beyond its
	// length cycle through it. nil selects DefaultStrategies.
	Strategies []Strategy
	// Base carries the deadline, context and decision variables shared
	// by every worker; its ordering fields are overridden per worker.
	Base Options
}

// lineup resolves one strategy per worker.
func (po PortfolioOptions) lineup() []Strategy {
	n := po.Workers
	if n < 1 {
		n = 1
	}
	if len(po.Strategies) == 0 {
		return DefaultStrategies(n)
	}
	out := make([]Strategy, n)
	for i := range out {
		out[i] = po.Strategies[i%len(po.Strategies)]
	}
	return out
}

// workerOutcome is what one portfolio worker reports back.
type workerOutcome struct {
	worker *Solver
	sol    Solution
	found  bool
	// proven means the worker exhausted its search space (below the
	// shared bound, for minimization), i.e. reached a definitive
	// answer rather than being interrupted.
	proven bool
	err    error
}

// SolvePortfolio races Workers solver clones for a first solution. The
// first worker to find one — or to prove unsatisfiability, since every
// worker runs a complete search — settles the race and cancels the
// rest. Error semantics match Solve.
func (s *Solver) SolvePortfolio(popts PortfolioOptions) (Solution, error) {
	lineup := popts.lineup()
	if popts.Workers <= 1 {
		return s.Solve(lineup[0].Apply(popts.Base))
	}
	vars := s.decisionVars(popts.Base)
	if err := s.propagate(); err != nil {
		return Solution{}, err
	}
	outcomes, cancel, err := s.launch(lineup, popts.Base, vars, func(w *Solver, opts Options, remap func(*IntVar) *IntVar) workerOutcome {
		sol, serr := w.Solve(opts)
		if serr == nil {
			return workerOutcome{worker: w, sol: sol, found: true, proven: true}
		}
		return workerOutcome{worker: w, proven: errors.Is(serr, ErrFailed), err: serr}
	})
	if err != nil {
		return Solution{}, err
	}
	defer cancel()
	var firstStop, firstOther error
	for out := range outcomes {
		s.mergeStats(out.worker)
		switch {
		case out.found:
			cancel() // settled: a solution exists
			s.drain(outcomes)
			return s.retarget(out.sol, out.worker, vars), nil
		case out.proven:
			cancel() // settled: complete search proved unsatisfiable
			s.drain(outcomes)
			return Solution{}, out.err
		case Stopped(out.err):
			if firstStop == nil {
				firstStop = out.err
			}
		default:
			if firstOther == nil {
				firstOther = out.err
			}
		}
	}
	if firstOther != nil {
		return Solution{}, firstOther
	}
	return Solution{}, firstStop
}

// MinimizePortfolio runs branch-and-bound on obj across Workers racing
// solver clones. Workers share the incumbent bound through an atomic:
// each restart (and each 64-node poll inside the search) prunes with
// the global best, and the first worker to exhaust the space below the
// incumbent proves optimality and cancels the rest. The returned
// objective value is deterministic whenever the search completes — it
// is the true optimum regardless of worker count or interleaving; the
// witness assignment may differ between runs. Error semantics match
// Minimize.
func (s *Solver) MinimizePortfolio(obj *IntVar, popts PortfolioOptions) (Solution, error) {
	lineup := popts.lineup()
	if popts.Workers <= 1 {
		return s.Minimize(obj, lineup[0].Apply(popts.Base))
	}
	vars := s.decisionVars(popts.Base)
	if err := s.propagate(); err != nil {
		return Solution{}, err
	}
	incumbent := NewIncumbent(obj.Max())
	var best Solution
	found := false
	// Inject the warm-start solution once, on the parent model: the
	// incumbent bound it seeds is shared by every worker from their
	// very first restart.
	if sol, ok := s.inject(vars, obj, popts.Base); ok {
		best, found = sol, true
		incumbent.Tighten(sol.Objective - 1)
	}
	outcomes, cancel, err := s.launch(lineup, popts.Base, vars, func(w *Solver, opts Options, remap func(*IntVar) *IntVar) workerOutcome {
		wobj := remap(obj)
		opts.SharedBound = incumbent
		opts.SharedObj = wobj
		return w.minimizeWorker(wobj, opts, incumbent)
	})
	if err != nil {
		return Solution{}, err
	}
	defer cancel()
	proven := false
	var firstStop, firstOther error
	for out := range outcomes {
		s.mergeStats(out.worker)
		if out.found && (!found || out.sol.Objective < best.Objective) {
			best = s.retarget(out.sol, out.worker, vars)
			found = true
		}
		switch {
		case out.proven:
			proven = true
			cancel() // the space below the incumbent is exhausted
		case out.err != nil && !Stopped(out.err):
			if firstOther == nil {
				firstOther = out.err
			}
		case out.err != nil && firstStop == nil:
			firstStop = out.err
		}
	}
	switch {
	case firstOther != nil:
		return Solution{}, firstOther
	case proven && found:
		return best, nil
	case proven:
		return Solution{}, ErrFailed
	case found:
		return best, firstStop
	default:
		return Solution{}, firstStop
	}
}

// minimizeWorker is one worker's branch-and-bound loop: restart from
// the root with the freshest shared bound, publish each improving
// solution into the incumbent, and stop with proven=true once the
// space below the incumbent is exhausted — which, because the bound
// only reflects solutions that genuinely exist, proves the global best
// optimal.
func (w *Solver) minimizeWorker(obj *IntVar, opts Options, incumbent *Incumbent) workerOutcome {
	out := workerOutcome{worker: w}
	root := w.snapshot()
	for {
		bound := incumbent.Bound()
		w.restore(root)
		if err := w.RemoveAbove(obj, bound); err != nil {
			out.proven = true
			return out
		}
		err := func() error {
			if err := w.propagate(); err != nil {
				return err
			}
			return w.search(opts.Vars, opts)
		}()
		switch {
		case err == nil:
			w.solutions++
			out.sol = w.capture(opts.Vars)
			out.sol.Objective = obj.Min()
			out.found = true
			incumbent.Tighten(out.sol.Objective - 1)
		case Stopped(err):
			out.err = err
			return out
		case errors.Is(err, ErrFailed):
			out.proven = true
			return out
		default:
			out.err = err
			return out
		}
	}
}

// launch clones the solver once per strategy and runs body on each
// clone in its own goroutine. It returns a channel of outcomes (one
// per worker, closed after the last), and the cancel function of the
// context every worker observes.
func (s *Solver) launch(lineup []Strategy, base Options, vars []*IntVar,
	body func(w *Solver, opts Options, remap func(*IntVar) *IntVar) workerOutcome) (chan workerOutcome, context.CancelFunc, error) {
	ctx := base.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	outcomes := make(chan workerOutcome, len(lineup))
	var wg sync.WaitGroup
	for _, st := range lineup {
		clone, remap, err := s.Clone()
		if err != nil {
			cancel()
			return nil, nil, err
		}
		opts := st.Apply(base)
		opts.Ctx = ctx
		wvars := make([]*IntVar, len(vars))
		for i, v := range vars {
			wvars[i] = remap(v)
		}
		opts.Vars = wvars
		if len(base.Hints) > 0 {
			hints := make(map[*IntVar]int, len(base.Hints))
			for v, hint := range base.Hints {
				hints[remap(v)] = hint
			}
			opts.Hints = hints
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			outcomes <- body(clone, opts, remap)
		}()
	}
	go func() {
		wg.Wait()
		close(outcomes)
	}()
	return outcomes, cancel, nil
}

// retarget rekeys a worker solution onto the original decision
// variables (worker variables share ids with their originals).
func (s *Solver) retarget(sol Solution, w *Solver, vars []*IntVar) Solution {
	out := Solution{values: make(map[*IntVar]int, len(vars)), Objective: sol.Objective}
	for _, v := range vars {
		if val, ok := sol.values[w.vars[v.id]]; ok {
			out.values[v] = val
		}
	}
	return out
}

// mergeStats folds a finished worker's search counters into the parent
// solver, so callers reading Stats() see the whole portfolio effort.
func (s *Solver) mergeStats(w *Solver) {
	if w == nil {
		return
	}
	s.nodes += w.nodes
	s.fails += w.fails
	s.solutions += w.solutions
	s.propagates += w.propagates
}

// drain consumes the remaining outcomes after the race is settled,
// folding their stats in (the workers were canceled and exit quickly).
func (s *Solver) drain(outcomes chan workerOutcome) {
	for out := range outcomes {
		s.mergeStats(out.worker)
	}
}
