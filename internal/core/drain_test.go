package core

import (
	"testing"

	"cwcs/internal/vjob"
)

// TestDrainedRuleEvacuatesNode: installing a Drained rule over a
// hosting node makes the optimizer move every guest elsewhere while
// keeping them running.
func TestDrainedRuleEvacuatesNode(t *testing.T) {
	c := mkCluster(3, 2, 4096)
	j := vjob.NewVJob("j", 0,
		vjob.NewVM("j-1", "j", 1, 1024),
		vjob.NewVM("j-2", "j", 1, 1024))
	for _, v := range j.VMs {
		c.AddVM(v)
	}
	mustRun(t, c, "j-1", "n00")
	mustRun(t, c, "j-2", "n00")
	res, err := Optimizer{Workers: 1}.Solve(Problem{
		Src:   c,
		Rules: []PlacementRule{Drained{Nodes: []string{"n00"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(res.Dst.RunningOn("n00")); n != 0 {
		t.Fatalf("%d VMs still on the drained node", n)
	}
	for _, vm := range []string{"j-1", "j-2"} {
		if res.Dst.StateOf(vm) != vjob.Running {
			t.Fatalf("%s is %v after the evacuation", vm, res.Dst.StateOf(vm))
		}
	}
	if res.Plan.NumActions() == 0 {
		t.Fatal("evacuation with no actions")
	}
}

// TestDrainedRuleSkipsOfflineNode: a rule naming a node absent from
// the configuration (taken offline after evacuation) must not fail the
// solve — the node is not a candidate host anyway.
func TestDrainedRuleSkipsOfflineNode(t *testing.T) {
	c := mkCluster(2, 2, 4096)
	c.AddVM(vjob.NewVM("v1", "j", 1, 1024))
	mustRun(t, c, "v1", "n00")
	_, err := Optimizer{Workers: 1}.Solve(Problem{
		Src:   c,
		Rules: []PlacementRule{Drained{Nodes: []string{"ghost"}}},
	})
	if err != nil {
		t.Fatalf("offline drained node failed the solve: %v", err)
	}
}

func TestDrainedCheckDetectsViolation(t *testing.T) {
	c := mkCluster(2, 2, 4096)
	c.AddVM(vjob.NewVM("v1", "j", 1, 1024))
	mustRun(t, c, "v1", "n00")
	r := Drained{Nodes: []string{"n00"}}
	if err := r.Check(c); err == nil {
		t.Fatal("running VM on drained node not detected")
	}
	if err := (Drained{Nodes: []string{"n01"}}).Check(c); err != nil {
		t.Fatalf("empty drained node flagged: %v", err)
	}
}

// TestDrainedRescope: partition handling — the rule follows its nodes
// and disappears from partitions that hold none of them.
func TestDrainedRescope(t *testing.T) {
	r := Drained{Nodes: []string{"n00", "n02"}}
	if got := r.Rescope(nil, map[string]bool{"n01": true}); got != nil {
		t.Fatalf("rescope kept a rule with no nodes: %v", got)
	}
	kept := r.Rescope(nil, map[string]bool{"n02": true, "n03": true})
	if kept == nil {
		t.Fatal("rescope dropped a live rule")
	}
	if d := kept.(Drained); len(d.Nodes) != 1 || d.Nodes[0] != "n02" {
		t.Fatalf("rescope: %v", d.Nodes)
	}
	if got := r.BindNodes(); len(got) != 2 {
		t.Fatalf("bind nodes: %v", got)
	}
	if got := r.ScopeVMs(); got != nil {
		t.Fatalf("scope VMs: %v", got)
	}
}

func TestDrainSetBridge(t *testing.T) {
	var nilSet *DrainSet
	if nilSet.IsDrained("x") || nilSet.Nodes() != nil || nilSet.Generation() != 0 {
		t.Fatal("nil DrainSet misbehaves")
	}
	d := &DrainSet{}
	if !d.Drain("n01") || d.Drain("n01") {
		t.Fatal("drain idempotence broken")
	}
	d.Drain("n00")
	if got := d.Nodes(); len(got) != 2 || got[0] != "n00" || got[1] != "n01" {
		t.Fatalf("nodes: %v", got)
	}
	rules := d.Rules()
	if len(rules) != 2 {
		t.Fatalf("%d rules", len(rules))
	}
	for i, want := range []string{"n00", "n01"} {
		if dr := rules[i].(Drained); len(dr.Nodes) != 1 || dr.Nodes[0] != want {
			t.Fatalf("rule %d: %v", i, dr.Nodes)
		}
	}
	gen := d.Generation()
	if !d.Undrain("n00") || d.Undrain("n00") {
		t.Fatal("undrain idempotence broken")
	}
	if d.Generation() == gen {
		t.Fatal("generation not bumped")
	}
	if d.IsDrained("n00") || !d.IsDrained("n01") {
		t.Fatal("membership wrong after undrain")
	}
}

// TestLoopDrainBridgeEvacuates: the loop-level drain workflow — mark
// the node in the DrainSet, notify NodeDown, and the next wake-up
// evacuates it through the dynamic rule.
func TestLoopDrainBridgeEvacuates(t *testing.T) {
	cfg := mkCluster(4, 2, 4096)
	j := vjob.NewVJob("ja", 0,
		vjob.NewVM("a1", "ja", 1, 1024),
		vjob.NewVM("a2", "ja", 1, 1024))
	for _, v := range j.VMs {
		cfg.AddVM(v)
	}
	mustRun(t, cfg, "a1", "n00")
	mustRun(t, cfg, "a2", "n01")
	l, a := eventLoop(cfg, nil, []*vjob.VJob{j})
	l.Optimizer.Partitions = 1
	l.Drains = &DrainSet{}
	l.Start(a)
	a.run(1)

	l.Drains.Drain("n00")
	l.Notify(a, Event{Kind: NodeDown, At: a.now, Nodes: []string{"n00"}, VMs: []string{"a1"}})
	a.run(50)

	if n := len(cfg.RunningOn("n00")); n != 0 {
		t.Fatalf("%d VMs still on the drained node", n)
	}
	if cfg.StateOf("a1") != vjob.Running {
		t.Fatalf("a1 is %v", cfg.StateOf("a1"))
	}
	if !cfg.Viable() {
		t.Fatalf("non-viable after evacuation: %v", cfg.Violations())
	}

	// Undrain: new work may land on n00 again.
	l.Drains.Undrain("n00")
	l.Notify(a, Event{Kind: NodeUp, At: a.now, Nodes: []string{"n00"}})
	a.run(100)
	if err := (Drained{Nodes: []string{"n00"}}).Check(cfg); err != nil {
		// Nothing forces a VM back, but the rule must be gone from the
		// loop's view.
		t.Fatalf("unexpected: %v", err)
	}
	if got := len(l.rules()); got != 0 {
		t.Fatalf("%d rules still installed after undrain", got)
	}
}
