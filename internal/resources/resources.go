// Package resources is the multi-dimensional resource model of the
// cluster: a small, allocation-free vector algebra over a registry of
// resource kinds. The paper's model packs VMs by CPU and memory only;
// this package generalizes capacities and demands to any number of
// dimensions (network bandwidth and disk I/O ship in the registry) so
// the packing constraints, the FFD heuristic, the partitioner and the
// monitoring all reason per dimension without knowing the dimension
// list.
//
// New kinds are data, not code: appending a row to the registry table
// gives the whole system — JSON wire format, cp.Packing compilation,
// violations, metrics labels — a new dimension. Vector is a fixed-size
// array, so per-node bookkeeping maps stay allocation-free on the hot
// paths (one array copy per update, no inner maps or slices).
package resources

import "fmt"

// Kind indexes one resource dimension in the registry.
type Kind uint8

// The registered dimensions. CPU and Memory are the paper's original
// model and keep dedicated fields in the JSON wire format; kinds after
// baseKinds ride in the optional "resources" object.
const (
	// CPU is processing units (a computing VM demands a whole one).
	CPU Kind = iota
	// Memory is MiB; it also drives the §4.2 action costs.
	Memory
	// NetBW is network bandwidth in Mbit/s.
	NetBW
	// DiskIO is disk throughput in MiB/s.
	DiskIO

	numKinds
)

// baseKinds counts the dimensions of the paper's original 2-D model.
const baseKinds = 2

// info is one registry row.
type info struct {
	name, unit string
}

// registry is the kind table. Order is the wire and iteration order;
// appending a row here is all it takes to introduce a dimension.
var registry = [numKinds]info{
	CPU:    {name: "cpu", unit: "processing units"},
	Memory: {name: "memory", unit: "MiB"},
	NetBW:  {name: "net", unit: "Mbit/s"},
	DiskIO: {name: "disk", unit: "MiB/s"},
}

// kinds is the iteration slice handed out by Kinds.
var kinds = func() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}()

// MaxKinds is the number of registered dimensions as a compile-time
// constant, for fixed-size per-kind arrays outside this package.
const MaxKinds = int(numKinds)

// NumKinds returns how many dimensions are registered.
func NumKinds() int { return int(numKinds) }

// Kinds returns every registered kind in registry order. The slice is
// shared: do not mutate it.
func Kinds() []Kind { return kinds }

// ExtraKinds returns the kinds beyond the paper's CPU+memory model, in
// registry order. The slice is shared: do not mutate it.
func ExtraKinds() []Kind { return kinds[baseKinds:] }

// String returns the kind's wire name ("cpu", "memory", "net",
// "disk").
func (k Kind) String() string {
	if int(k) >= int(numKinds) {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return registry[k].name
}

// Unit returns the kind's measurement unit, for reports.
func (k Kind) Unit() string {
	if int(k) >= int(numKinds) {
		return "?"
	}
	return registry[k].unit
}

// ParseKind resolves a wire name to its Kind. Unknown names are
// rejected, which is what keeps the JSON decoder strict.
func ParseKind(name string) (Kind, error) {
	for k, inf := range registry {
		if inf.name == name {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("resources: unknown resource kind %q", name)
}

// Vector is a quantity per registered dimension: a node capacity, a VM
// demand, or a free-resource balance (which may go negative). The zero
// value is the empty vector. Vector is a value type — copy it freely;
// arithmetic never allocates.
type Vector [numKinds]int

// Capacity aliases Vector where the quantity is a node capacity, for
// signature readability.
type Capacity = Vector

// New builds a vector from the paper's two dimensions; extra
// dimensions start at zero. It is the compatibility constructor the
// CPU+memory call sites use.
func New(cpu, memory int) Vector {
	var v Vector
	v[CPU] = cpu
	v[Memory] = memory
	return v
}

// Get returns the quantity of the kind.
func (v Vector) Get(k Kind) int { return v[k] }

// Set replaces the quantity of the kind.
func (v *Vector) Set(k Kind, x int) { v[k] = x }

// Add returns v + o per dimension.
func (v Vector) Add(o Vector) Vector {
	for k := range v {
		v[k] += o[k]
	}
	return v
}

// Sub returns v - o per dimension.
func (v Vector) Sub(o Vector) Vector {
	for k := range v {
		v[k] -= o[k]
	}
	return v
}

// Fits reports whether v is dimension-wise at most free: a demand fits
// a free-resource balance.
func (v Vector) Fits(free Vector) bool {
	for k := range v {
		if v[k] > free[k] {
			return false
		}
	}
	return true
}

// IsZero reports whether every dimension is zero.
func (v Vector) IsZero() bool { return v == Vector{} }

// AnyNegative reports whether some dimension is negative (an
// over-committed free balance, or an invalid demand).
func (v Vector) AnyNegative() bool {
	for _, x := range v {
		if x < 0 {
			return true
		}
	}
	return false
}

// HasExtra reports whether any dimension beyond the paper's CPU+memory
// model is non-zero. The fast paths use it to compile extra dimensions
// away.
func (v Vector) HasExtra() bool {
	for _, k := range ExtraKinds() {
		if v[k] != 0 {
			return true
		}
	}
	return false
}

// DominantShare returns the vector's largest per-dimension share of
// total — the dominant-resource score of DRF-style packing. Dimensions
// with a non-positive total are skipped; a demand on such a dimension
// counts as saturating (share 1) so it sorts first.
func (v Vector) DominantShare(total Vector) float64 {
	share := 0.0
	for k := range v {
		if total[k] <= 0 {
			if v[k] > 0 && share < 1 {
				share = 1
			}
			continue
		}
		if s := float64(v[k]) / float64(total[k]); s > share {
			share = s
		}
	}
	return share
}

// String renders the vector compactly: the paper's historical
// "cpu=2,mem=4096" for the base dimensions — bit-compatible with the
// pre-vector Node/VM renderings — followed by any non-zero extra
// dimension by wire name, e.g. "cpu=2,mem=4096,net=300".
func (v Vector) String() string {
	out := fmt.Sprintf("cpu=%d,mem=%d", v[CPU], v[Memory])
	for _, k := range ExtraKinds() {
		if v[k] != 0 {
			out += fmt.Sprintf(",%s=%d", k, v[k])
		}
	}
	return out
}
