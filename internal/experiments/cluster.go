// Package experiments regenerates every table and figure of the
// paper's evaluation on top of the simulator: the Figure 1 backfilling
// schematic, the Table 1 cost model, the Figure 3 action-duration
// study, the Figure 10 FFD-vs-Entropy scalability comparison, and the
// Figure 11/12/13 cluster experiment (8 vjobs × 9 VMs on 11 nodes)
// under both the static FCFS baseline and Entropy's dynamic
// consolidation. cmd/experiments and the root benchmarks are thin
// wrappers over this package.
package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"cwcs/internal/core"
	"cwcs/internal/drivers"
	"cwcs/internal/duration"
	"cwcs/internal/monitor"
	"cwcs/internal/sim"
	"cwcs/internal/trace"
	"cwcs/internal/vjob"
	"cwcs/internal/workload"
)

// ClusterOptions parameterizes the §5.2 experiment.
type ClusterOptions struct {
	// Nodes, NodeCPU, NodeMemory describe the working nodes. The
	// paper uses 11 nodes with one dual-core CPU and 4 GiB of RAM of
	// which 512 MiB goes to Domain-0: 22 processing units, 3584 MiB.
	Nodes, NodeCPU, NodeMemory int
	// VJobs and VMsPerVJob shape the workload (paper: 8 × 9).
	VJobs, VMsPerVJob int
	// WorkScale multiplies workload durations; 1.0 approximates the
	// paper's run, smaller values keep tests fast.
	WorkScale float64
	// Interval is the control-loop period in seconds (paper: 30).
	Interval float64
	// Timeout bounds each optimization (virtual execution is
	// decoupled from solver wall time, so a small real budget works).
	Timeout time.Duration
	// Horizon is the simulation cut-off in seconds.
	Horizon float64
	// Seed drives workload generation.
	Seed int64
	// PinRunning forbids migrations, as a static RMS would (set it
	// for the FCFS baseline).
	PinRunning bool
	// Workers is the optimizer's portfolio width (0 = GOMAXPROCS).
	Workers int
	// Partitions is the optimizer's decomposition width (0 = auto,
	// 1 = monolithic).
	Partitions int
}

// DefaultClusterOptions returns the paper's §5.2 setup.
func DefaultClusterOptions() ClusterOptions {
	return ClusterOptions{
		Nodes: 11, NodeCPU: 2, NodeMemory: 3584,
		VJobs: 8, VMsPerVJob: 9,
		WorkScale: 1.0,
		Interval:  30,
		Timeout:   3 * time.Second,
		Horizon:   100_000,
		Seed:      42,
	}
}

// ClusterResult is everything the cluster experiment measures.
type ClusterResult struct {
	// Completion is the virtual time when the last vjob finished its
	// work (the paper's "overall duration of jobs").
	Completion float64
	// Records lists every non-empty context switch (Figure 11).
	Records []core.SwitchRecord
	// Samples is the utilization time series (Figure 13).
	Samples []monitor.Sample
	// ActionCounts tallies completed actions by kind.
	ActionCounts map[string]int
	// LocalOps/RemoteOps count local vs. remote transfers.
	LocalOps, RemoteOps int
	// Gantt is the per-vjob allocation diagram (Figure 12).
	Gantt *trace.Gantt
	// JobEnd is the completion instant of each vjob.
	JobEnd map[string]float64
}

// MeanSwitchDuration returns the average context-switch duration in
// seconds (the paper reports ~70 s).
func (r ClusterResult) MeanSwitchDuration() float64 {
	if len(r.Records) == 0 {
		return 0
	}
	sum := 0.0
	for _, rec := range r.Records {
		sum += rec.Duration
	}
	return sum / float64(len(r.Records))
}

// terminator wraps a decision module: once a vjob's application has
// finished it signals Entropy to stop the vjob (§5.2). Terminations
// are issued on their own round so freeing resources never depends on
// the feasibility of the rest of the decision.
type terminator struct {
	inner core.DecisionModule
	c     *sim.Cluster
	jobs  []*vjob.VJob
}

func (t terminator) Decide(cfg *vjob.Configuration, queue []*vjob.VJob) map[string]vjob.State {
	var live []*vjob.VJob
	for _, j := range queue {
		if !t.c.VJobDone(j) {
			live = append(live, j)
		}
	}
	target := t.inner.Decide(cfg, live)
	for _, j := range t.jobs {
		if !t.c.VJobDone(j) {
			continue
		}
		present, allRunning := false, true
		for _, v := range j.VMs {
			if cfg.VM(v.Name) == nil {
				continue
			}
			present = true
			if cfg.StateOf(v.Name) != vjob.Running {
				allRunning = false
			}
		}
		switch {
		case !present:
			// already reaped
		case allRunning:
			// Stop actions free the finished vjob's resources in the
			// same context switch that redistributes them.
			target[j.Name] = vjob.Terminated
		default:
			// A VM was suspended after finishing its work: the life
			// cycle only allows Sleeping -> Running -> Terminated, so
			// resume first and stop on a later round.
			target[j.Name] = vjob.Running
		}
	}
	return target
}

// RunCluster executes the §5.2 experiment under the given decision
// module and returns the measurements.
func RunCluster(decision core.DecisionModule, opts ClusterOptions) ClusterResult {
	rng := rand.New(rand.NewSource(opts.Seed))
	cfg := vjob.NewConfiguration()
	for i := 0; i < opts.Nodes; i++ {
		cfg.AddNode(vjob.NewNode(fmt.Sprintf("node%02d", i), opts.NodeCPU, opts.NodeMemory))
	}
	c := sim.New(cfg, duration.Default())

	jobs := make([]*vjob.VJob, opts.VJobs)
	for i := range jobs {
		bench := workload.Benchmarks[i%len(workload.Benchmarks)]
		// Classes A and B: multi-minute vjobs, as in the paper's runs
		// (the W class finishes before scheduling effects matter).
		class := workload.Classes[1+i%2]
		spec := workload.NewSpec(fmt.Sprintf("vjob%d", i+1), bench, class, opts.VMsPerVJob, i, rng)
		scalePhases(&spec, opts.WorkScale)
		// The §5.2 experiment uses 512-2048 MiB VMs.
		for _, v := range spec.Job.VMs {
			if v.MemoryDemand() < 512 {
				v.SetMemoryDemand(512)
			}
		}
		spec.Install(cfg, c)
		jobs[i] = spec.Job
	}

	res := ClusterResult{
		ActionCounts: map[string]int{},
		Gantt:        trace.NewGantt(),
		JobEnd:       map[string]float64{},
	}

	loop := &core.Loop{
		Decision:  terminator{inner: decision, c: c, jobs: jobs},
		Optimizer: core.Optimizer{Timeout: opts.Timeout, PinRunning: opts.PinRunning, Workers: opts.Workers, Partitions: opts.Partitions},
		Interval:  opts.Interval,
		Queue:     func() []*vjob.VJob { return jobs },
		Done: func() bool {
			// Stop once every vjob finished AND was stopped.
			for _, j := range jobs {
				if !c.VJobDone(j) {
					return false
				}
				for _, v := range j.VMs {
					if cfg.VM(v.Name) != nil {
						return false
					}
				}
			}
			return true
		},
	}

	rec := &monitor.Recorder{Interval: 10}
	rec.Attach(c)

	// Sampler for the Gantt rows and per-vjob completion times.
	const ganttTick = 5.0
	var sample func()
	sample = func() {
		allDone := true
		for _, j := range jobs {
			if cfg.VJobState(j) == vjob.Running {
				res.Gantt.Mark(j.Name, c.Now(), c.Now()+ganttTick)
			}
			if c.VJobDone(j) {
				if _, ok := res.JobEnd[j.Name]; !ok {
					res.JobEnd[j.Name] = c.Now()
				}
			} else {
				allDone = false
			}
		}
		if allDone {
			if res.Completion == 0 {
				res.Completion = c.Now()
			}
			rec.Stop()
			return
		}
		c.Schedule(c.Now()+ganttTick, sample)
	}
	sample()

	loop.Start(&drivers.Actuator{C: c})
	c.Run(opts.Horizon)

	res.Records = loop.Records
	res.Samples = rec.Samples
	res.ActionCounts = c.ActionCounts()
	res.LocalOps, res.RemoteOps = c.TransferCounts()
	if res.Completion == 0 {
		res.Completion = c.Now() // horizon hit
	}
	return res
}

// scalePhases multiplies every phase duration of the spec.
func scalePhases(s *workload.Spec, f float64) {
	if f == 1 || f <= 0 {
		return
	}
	for _, ph := range s.Phases {
		for i := range ph {
			ph[i].Seconds *= f
		}
	}
}
