package core

import (
	"fmt"
	"sort"

	"cwcs/internal/cp"
	"cwcs/internal/vjob"
)

// PlacementRule is an administrator-supplied low-level constraint on
// where VMs may run (the paper's §7: Entropy already supports such
// relations — e.g. hosting VMs on different nodes for high
// availability — and this engine maintains them while optimizing the
// cluster-wide context switch). Rules apply to the VMs that end up in
// the Running state; sleeping and waiting VMs hold no placement.
type PlacementRule interface {
	// Apply posts the rule on the solver. vars maps VM names (of the
	// VMs that will run) to their assignment variable; nodeIdx maps
	// node names to variable values. Unknown VM names are ignored: the
	// rule binds placement, not scheduling.
	Apply(s *cp.Solver, vars map[string]*cp.IntVar, nodeIdx map[string]int) error
	// Check validates a concrete configuration against the rule, for
	// plan validation and tests.
	Check(cfg *vjob.Configuration) error
}

// ScopedRule is a PlacementRule the partitioner (see Partitioner) can
// reason about: it exposes which VMs the rule covers and which nodes
// must travel with them, and can restrict itself to one partition.
// Rules that do not implement ScopedRule force the optimizer back to
// the monolithic model — the partitioner refuses to split a problem it
// cannot prove decomposable.
type ScopedRule interface {
	PlacementRule
	// ScopeVMs returns the VM names the rule covers. The partitioner
	// keeps them in a single partition.
	ScopeVMs() []string
	// BindNodes returns the nodes that must share a partition with the
	// covered VMs (e.g. a Fence's node group). Purely restrictive node
	// lists (a Ban's) return nil: a node absent from the partition
	// cannot host the VM anyway.
	BindNodes() []string
	// Rescope returns the rule restricted to a partition's VM and node
	// sets, or nil when the restriction makes the rule trivial.
	Rescope(vms, nodes map[string]bool) PlacementRule
}

// keepNames filters names to those present in the set, preserving
// order.
func keepNames(names []string, set map[string]bool) []string {
	var out []string
	for _, n := range names {
		if set[n] {
			out = append(out, n)
		}
	}
	return out
}

// Spread keeps the named VMs on pairwise distinct nodes (the classic
// high-availability anti-affinity rule).
type Spread struct {
	// VMs are the VM names the rule covers.
	VMs []string
}

// ScopeVMs returns the covered VMs.
func (r Spread) ScopeVMs() []string { return r.VMs }

// BindNodes returns nil: spreading references no specific node.
func (r Spread) BindNodes() []string { return nil }

// Rescope keeps the covered VMs present in the partition; fewer than
// two leaves nothing to spread.
func (r Spread) Rescope(vms, nodes map[string]bool) PlacementRule {
	kept := keepNames(r.VMs, vms)
	if len(kept) < 2 {
		return nil
	}
	return Spread{VMs: kept}
}

// Apply posts an AllDifferent over the covered running VMs.
func (r Spread) Apply(s *cp.Solver, vars map[string]*cp.IntVar, nodeIdx map[string]int) error {
	var items []*cp.IntVar
	for _, name := range r.VMs {
		if v, ok := vars[name]; ok {
			items = append(items, v)
		}
	}
	if len(items) > 1 {
		s.Post(&cp.AllDifferent{Items: items})
	}
	return nil
}

// Check verifies pairwise distinct hosts among the running VMs.
func (r Spread) Check(cfg *vjob.Configuration) error {
	seen := map[string]string{}
	for _, name := range r.VMs {
		h := cfg.HostOf(name)
		if h == "" {
			continue
		}
		if prev, ok := seen[h]; ok {
			return fmt.Errorf("core: spread violated: %s and %s share node %s", prev, name, h)
		}
		seen[h] = name
	}
	return nil
}

// Ban keeps the named VMs off the given nodes (e.g. nodes entering
// maintenance).
type Ban struct {
	VMs   []string
	Nodes []string
}

// ScopeVMs returns the covered VMs.
func (r Ban) ScopeVMs() []string { return r.VMs }

// BindNodes returns nil: a ban is purely restrictive, so banned nodes
// outside the partition need no co-location.
func (r Ban) BindNodes() []string { return nil }

// Rescope intersects both lists with the partition; an empty side makes
// the ban trivial.
func (r Ban) Rescope(vms, nodes map[string]bool) PlacementRule {
	keptVMs := keepNames(r.VMs, vms)
	keptNodes := keepNames(r.Nodes, nodes)
	if len(keptVMs) == 0 || len(keptNodes) == 0 {
		return nil
	}
	return Ban{VMs: keptVMs, Nodes: keptNodes}
}

// Apply removes the banned nodes from the VMs' domains.
func (r Ban) Apply(s *cp.Solver, vars map[string]*cp.IntVar, nodeIdx map[string]int) error {
	for _, name := range r.VMs {
		v, ok := vars[name]
		if !ok {
			continue
		}
		for _, n := range r.Nodes {
			idx, ok := nodeIdx[n]
			if !ok {
				return fmt.Errorf("core: ban references unknown node %q", n)
			}
			if err := s.RemoveValue(v, idx); err != nil {
				return fmt.Errorf("core: ban leaves no host for %s: %w", name, err)
			}
		}
	}
	return nil
}

// Check verifies no covered running VM sits on a banned node.
func (r Ban) Check(cfg *vjob.Configuration) error {
	banned := map[string]bool{}
	for _, n := range r.Nodes {
		banned[n] = true
	}
	for _, name := range r.VMs {
		if h := cfg.HostOf(name); h != "" && banned[h] {
			return fmt.Errorf("core: ban violated: %s runs on %s", name, h)
		}
	}
	return nil
}

// Drained keeps every VM off the named nodes: the node-maintenance
// rule behind the control plane's drain workflow. Unlike Ban it covers
// the whole VM population, so draining a node both evacuates its
// current guests (the solver must find them a new host) and prevents
// any later solve from placing new work there. Nodes absent from the
// configuration (taken offline after evacuation) are skipped: the rule
// stays installed across the node's whole maintenance window.
//
// The rule governs running placement only. A suspended image on the
// drained node stays put — the optimizer has no image-migration
// action; only resuming (or terminating) its vjob moves it — so such
// a node reports evacuated=false on the control plane and refuses
// SetNodeOffline until the images leave. Image evacuation is a
// ROADMAP item.
type Drained struct {
	Nodes []string
}

// ScopeVMs returns nil: the rule covers every VM by being purely
// restrictive on nodes, so no VM subset needs co-location.
func (r Drained) ScopeVMs() []string { return nil }

// BindNodes returns the drained nodes, so the rule travels with them
// into whatever partition they land in.
func (r Drained) BindNodes() []string { return r.Nodes }

// Rescope intersects the drained nodes with the partition; a partition
// holding none of them needs no rule.
func (r Drained) Rescope(vms, nodes map[string]bool) PlacementRule {
	kept := keepNames(r.Nodes, nodes)
	if len(kept) == 0 {
		return nil
	}
	return Drained{Nodes: kept}
}

// Apply removes the drained nodes from every VM's domain.
func (r Drained) Apply(s *cp.Solver, vars map[string]*cp.IntVar, nodeIdx map[string]int) error {
	for _, n := range r.Nodes {
		idx, ok := nodeIdx[n]
		if !ok {
			continue // offline: not a candidate host anyway
		}
		for name, v := range vars {
			if !v.Contains(idx) {
				continue
			}
			if err := s.RemoveValue(v, idx); err != nil {
				return fmt.Errorf("core: drain of %s leaves no host for %s: %w", n, name, err)
			}
		}
	}
	return nil
}

// Check verifies no VM runs on a drained node.
func (r Drained) Check(cfg *vjob.Configuration) error {
	for _, n := range r.Nodes {
		if vms := cfg.RunningOn(n); len(vms) > 0 {
			return fmt.Errorf("core: drained node %s still hosts %s", n, vms[0].Name)
		}
	}
	return nil
}

// DrainSet is the bridge between operator node-lifecycle commands and
// the decision module's rule list: it tracks the nodes asked to
// evacuate and materializes one Drained rule per node, so each rule
// binds only its own node in the partitioner instead of welding every
// drained node into one slice. Install it on Loop.Drains; the control
// plane (internal/api) mutates it and emits the matching NodeDown /
// NodeUp events. Like the Loop itself it is not internally
// synchronized: callers serialize through the loop's executor.
type DrainSet struct {
	nodes map[string]bool
	gen   int
}

// Drain marks the node for evacuation. It reports whether the set
// changed (false when the node was already draining).
func (d *DrainSet) Drain(node string) bool {
	if d.nodes == nil {
		d.nodes = make(map[string]bool)
	}
	if d.nodes[node] {
		return false
	}
	d.nodes[node] = true
	d.gen++
	return true
}

// Undrain lifts the evacuation order. It reports whether the set
// changed.
func (d *DrainSet) Undrain(node string) bool {
	if !d.nodes[node] {
		return false
	}
	delete(d.nodes, node)
	d.gen++
	return true
}

// IsDrained reports whether the node is currently draining.
func (d *DrainSet) IsDrained(node string) bool { return d != nil && d.nodes[node] }

// Nodes returns the draining nodes in name order.
func (d *DrainSet) Nodes() []string {
	if d == nil || len(d.nodes) == 0 {
		return nil
	}
	out := make([]string, 0, len(d.nodes))
	for n := range d.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Rules materializes the drain orders as placement rules, one Drained
// rule per node.
func (d *DrainSet) Rules() []PlacementRule {
	nodes := d.Nodes()
	if len(nodes) == 0 {
		return nil
	}
	out := make([]PlacementRule, len(nodes))
	for i, n := range nodes {
		out[i] = Drained{Nodes: []string{n}}
	}
	return out
}

// Generation counts the mutations since creation; the loop's partition
// cache uses it to invalidate on rule changes.
func (d *DrainSet) Generation() int {
	if d == nil {
		return 0
	}
	return d.gen
}

// Fence restricts the named VMs to the given node group (e.g. nodes
// holding a dataset or a licence).
type Fence struct {
	VMs   []string
	Nodes []string
}

// ScopeVMs returns the covered VMs.
func (r Fence) ScopeVMs() []string { return r.VMs }

// BindNodes returns the fence's node group: the covered VMs are only
// placeable there, so the group must ride in their partition.
func (r Fence) BindNodes() []string { return r.Nodes }

// Rescope keeps the covered VMs and intersects the node group with the
// partition. A fence whose whole group fell outside the partition is
// kept with an empty group (rather than silently dropped): applying it
// fails the partition, which sends the optimizer back to the monolithic
// model instead of violating the rule.
func (r Fence) Rescope(vms, nodes map[string]bool) PlacementRule {
	keptVMs := keepNames(r.VMs, vms)
	if len(keptVMs) == 0 {
		return nil
	}
	return Fence{VMs: keptVMs, Nodes: keepNames(r.Nodes, nodes)}
}

// Apply prunes every node outside the fence from the VMs' domains.
func (r Fence) Apply(s *cp.Solver, vars map[string]*cp.IntVar, nodeIdx map[string]int) error {
	inside := map[int]bool{}
	for _, n := range r.Nodes {
		idx, ok := nodeIdx[n]
		if !ok {
			return fmt.Errorf("core: fence references unknown node %q", n)
		}
		inside[idx] = true
	}
	for _, name := range r.VMs {
		v, ok := vars[name]
		if !ok {
			continue
		}
		for _, val := range v.Values() {
			if !inside[val] {
				if err := s.RemoveValue(v, val); err != nil {
					return fmt.Errorf("core: fence leaves no host for %s: %w", name, err)
				}
			}
		}
	}
	return nil
}

// Check verifies every covered running VM sits inside the fence.
func (r Fence) Check(cfg *vjob.Configuration) error {
	inside := map[string]bool{}
	for _, n := range r.Nodes {
		inside[n] = true
	}
	for _, name := range r.VMs {
		if h := cfg.HostOf(name); h != "" && !inside[h] {
			return fmt.Errorf("core: fence violated: %s runs on %s", name, h)
		}
	}
	return nil
}

// Gather co-locates the named VMs on one node (latency-bound
// communication).
type Gather struct {
	VMs []string
}

// ScopeVMs returns the covered VMs.
func (r Gather) ScopeVMs() []string { return r.VMs }

// BindNodes returns nil: gathering references no specific node.
func (r Gather) BindNodes() []string { return nil }

// Rescope keeps the covered VMs present in the partition; fewer than
// two leaves nothing to gather (the partitioner co-locates the whole
// scope, so absent VMs do not exist in the configuration at all).
func (r Gather) Rescope(vms, nodes map[string]bool) PlacementRule {
	kept := keepNames(r.VMs, vms)
	if len(kept) < 2 {
		return nil
	}
	return Gather{VMs: kept}
}

// Apply chains equality between consecutive covered VMs through a
// dedicated propagator.
func (r Gather) Apply(s *cp.Solver, vars map[string]*cp.IntVar, nodeIdx map[string]int) error {
	var items []*cp.IntVar
	for _, name := range r.VMs {
		if v, ok := vars[name]; ok {
			items = append(items, v)
		}
	}
	if len(items) < 2 {
		return nil
	}
	s.Post(&cp.FuncConstraint{On: items, Run: func(s *cp.Solver) error {
		// Intersect the domains: all variables must share a value.
		for _, val := range items[0].Values() {
			keep := true
			for _, v := range items[1:] {
				if !v.Contains(val) {
					keep = false
					break
				}
			}
			if !keep {
				if err := s.RemoveValue(items[0], val); err != nil {
					return err
				}
			}
		}
		// Mirror item 0's (now intersected) domain onto the others.
		for _, v := range items[1:] {
			for _, val := range v.Values() {
				if !items[0].Contains(val) {
					if err := s.RemoveValue(v, val); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}})
	return nil
}

// Check verifies the covered running VMs share a node.
func (r Gather) Check(cfg *vjob.Configuration) error {
	host := ""
	first := ""
	for _, name := range r.VMs {
		h := cfg.HostOf(name)
		if h == "" {
			continue
		}
		if host == "" {
			host, first = h, name
			continue
		}
		if h != host {
			return fmt.Errorf("core: gather violated: %s on %s but %s on %s", first, host, name, h)
		}
	}
	return nil
}
