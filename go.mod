module cwcs

go 1.24
