// Cyclebreak: the inter-dependent migration cycle of Figure 8. Two
// memory-heavy VMs must swap nodes, but neither target has room while
// the other VM is still there. The plan builder detects the cycle and
// inserts a bypass migration through a pivot node, producing a
// three-pool plan whose every step is feasible.
package main

import (
	"fmt"
	"log"

	"cwcs/internal/plan"
	"cwcs/internal/vjob"
)

func main() {
	cfg := vjob.NewConfiguration()
	for _, n := range []string{"N1", "N2", "N3"} {
		cfg.AddNode(vjob.NewNode(n, 2, 3072))
	}
	vm1 := vjob.NewVM("vm1", "a", 1, 2048)
	vm2 := vjob.NewVM("vm2", "b", 1, 2048)
	cfg.AddVM(vm1)
	cfg.AddVM(vm2)
	must(cfg.SetRunning("vm1", "N1"))
	must(cfg.SetRunning("vm2", "N2"))

	// Destination: vm1 and vm2 swapped. Each node has 3 GiB; hosting
	// both 2 GiB VMs at once is impossible, so neither migration can
	// start: an inter-dependent cycle (Figure 8a).
	dst := cfg.Clone()
	must(dst.SetRunning("vm1", "N2"))
	must(dst.SetRunning("vm2", "N1"))

	fmt.Println("source:")
	fmt.Print(cfg)
	fmt.Println("\ndestination (a swap):")
	fmt.Print(dst)

	p, err := plan.Build(cfg, dst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplan (%d bypass migration inserted through the pivot):\n", p.Bypass)
	fmt.Print(p)

	if err := p.Validate(); err != nil {
		log.Fatalf("plan does not validate: %v", err)
	}
	res, err := p.Result()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter execution:")
	fmt.Print(res)
	if !res.Equal(dst) {
		log.Fatal("destination not reached")
	}
	fmt.Println("\nswap realized; every intermediate configuration stayed viable.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
