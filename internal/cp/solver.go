package cp

import (
	"errors"
	"fmt"
)

// ErrFailed signals an inconsistency: a domain wipe-out or a
// constraint that cannot be satisfied. The search catches it and
// backtracks.
var ErrFailed = errors.New("cp: inconsistent")

// ErrDeadline is returned when the search deadline expires before the
// search space is exhausted. Minimize still reports the best solution
// found so far alongside it.
var ErrDeadline = errors.New("cp: deadline exceeded")

// ErrCanceled is returned when the search context (Options.Ctx) is
// canceled before the search space is exhausted. Like ErrDeadline,
// Minimize still reports the best solution found so far alongside it.
var ErrCanceled = errors.New("cp: canceled")

// Stopped reports whether err is a search interruption — deadline or
// context cancellation — rather than a definitive answer (solution
// found or space exhausted).
func Stopped(err error) bool {
	return errors.Is(err, ErrDeadline) || errors.Is(err, ErrCanceled)
}

// Constraint is a propagator: Propagate prunes the domains of the
// variables it watches and returns ErrFailed (possibly wrapped) when
// it detects an inconsistency.
type Constraint interface {
	// Vars returns the variables whose domain changes wake this
	// constraint.
	Vars() []*IntVar
	// Propagate prunes domains through the solver. It must be
	// idempotent at fixpoint.
	Propagate(s *Solver) error
}

// Solver owns variables and constraints and runs propagation.
type Solver struct {
	vars        []*IntVar
	constraints []Constraint
	queue       []Constraint
	queued      map[Constraint]bool

	// stats
	nodes      int64
	fails      int64
	solutions  int64
	propagates int64
}

// NewSolver returns an empty solver.
func NewSolver() *Solver {
	return &Solver{queued: make(map[Constraint]bool)}
}

// NewEnumVar creates a variable whose domain is exactly the given
// non-negative values (deduplicated).
func (s *Solver) NewEnumVar(name string, values []int) *IntVar {
	if len(values) == 0 {
		panic("cp: empty initial domain for " + name)
	}
	v := &IntVar{solver: s, id: len(s.vars), name: name, dom: newBitsetDomain(values), pref: -1}
	s.vars = append(s.vars, v)
	return v
}

// NewIntVar creates a bounds-only variable over [min, max]. Use it for
// large numeric ranges such as objective functions; it does not
// support interior value removal.
func (s *Solver) NewIntVar(name string, min, max int) *IntVar {
	if max < min {
		panic(fmt.Sprintf("cp: empty range [%d,%d] for %s", min, max, name))
	}
	v := &IntVar{solver: s, id: len(s.vars), name: name, dom: &boundsDomain{lo: min, hi: max}, pref: -1}
	s.vars = append(s.vars, v)
	return v
}

// Post registers a constraint and schedules its first propagation.
func (s *Solver) Post(c Constraint) {
	s.constraints = append(s.constraints, c)
	for _, v := range c.Vars() {
		v.watchers = append(v.watchers, c)
	}
	s.enqueue(c)
}

func (s *Solver) enqueue(c Constraint) {
	if !s.queued[c] {
		s.queued[c] = true
		s.queue = append(s.queue, c)
	}
}

func (s *Solver) wake(v *IntVar) {
	for _, c := range v.watchers {
		s.enqueue(c)
	}
}

// RemoveValue removes val from v's domain, waking watchers. It returns
// ErrFailed when the domain empties.
func (s *Solver) RemoveValue(v *IntVar, val int) error {
	if v.dom.removeValue(val) {
		if v.dom.size() == 0 {
			return fmt.Errorf("%w: %s emptied", ErrFailed, v.name)
		}
		s.wake(v)
	}
	return nil
}

// RemoveBelow prunes values below min from v's domain.
func (s *Solver) RemoveBelow(v *IntVar, min int) error {
	if v.dom.removeBelow(min) {
		if v.dom.size() == 0 {
			return fmt.Errorf("%w: %s emptied", ErrFailed, v.name)
		}
		s.wake(v)
	}
	return nil
}

// RemoveAbove prunes values above max from v's domain.
func (s *Solver) RemoveAbove(v *IntVar, max int) error {
	if v.dom.removeAbove(max) {
		if v.dom.size() == 0 {
			return fmt.Errorf("%w: %s emptied", ErrFailed, v.name)
		}
		s.wake(v)
	}
	return nil
}

// Assign binds v to val.
func (s *Solver) Assign(v *IntVar, val int) error {
	if !v.dom.contains(val) {
		return fmt.Errorf("%w: %s cannot take %d", ErrFailed, v.name, val)
	}
	if err := s.RemoveBelow(v, val); err != nil {
		return err
	}
	return s.RemoveAbove(v, val)
}

// propagate runs the propagation queue to fixpoint.
func (s *Solver) propagate() error {
	for len(s.queue) > 0 {
		c := s.queue[0]
		s.queue = s.queue[1:]
		s.queued[c] = false
		s.propagates++
		if err := c.Propagate(s); err != nil {
			// Drain the queue: a failed state must not leak stale
			// entries into the next search node.
			for _, q := range s.queue {
				s.queued[q] = false
			}
			s.queue = s.queue[:0]
			return err
		}
	}
	return nil
}

// snapshot copies the domains (and preferred values) of every
// variable.
func (s *Solver) snapshot() []domain {
	snap := make([]domain, len(s.vars))
	for i, v := range s.vars {
		snap[i] = v.dom.clone()
	}
	return snap
}

// restore reinstalls a snapshot taken by snapshot().
func (s *Solver) restore(snap []domain) {
	for i, v := range s.vars {
		v.dom = snap[i].clone()
	}
}

// Stats reports search counters: explored nodes, failures, solutions
// and propagator runs.
func (s *Solver) Stats() (nodes, fails, solutions, propagations int64) {
	return s.nodes, s.fails, s.solutions, s.propagates
}

// CloneableConstraint is a Constraint that can be copied into a cloned
// solver. remap translates a variable of the original solver into its
// counterpart in the clone; implementations must rebuild themselves
// over the remapped variables (immutable payload such as weight or
// capacity slices may be shared — propagation never mutates it).
type CloneableConstraint interface {
	Constraint
	CloneFor(remap func(*IntVar) *IntVar) Constraint
}

// Clone copies the solver — variables, current domains, preferred
// values and constraints — into an independent instance, so portfolio
// workers can search the same model concurrently without sharing any
// mutable state. It returns the clone and the variable remap function.
// Every posted constraint must implement CloneableConstraint (a
// FuncConstraint additionally needs its Rebind hook); otherwise Clone
// reports an error.
func (s *Solver) Clone() (*Solver, func(*IntVar) *IntVar, error) {
	c := NewSolver()
	c.vars = make([]*IntVar, len(s.vars))
	for i, v := range s.vars {
		c.vars[i] = &IntVar{solver: c, id: v.id, name: v.name, dom: v.dom.clone(), pref: v.pref}
	}
	remap := func(v *IntVar) *IntVar {
		if v == nil {
			return nil
		}
		if v.solver != s {
			panic("cp: remap of a variable from another solver")
		}
		return c.vars[v.id]
	}
	for _, con := range s.constraints {
		cc, ok := con.(CloneableConstraint)
		if !ok {
			return nil, nil, fmt.Errorf("cp: constraint %T is not cloneable", con)
		}
		nc := cc.CloneFor(remap)
		if nc == nil {
			return nil, nil, fmt.Errorf("cp: constraint %T cannot be cloned (missing rebind)", con)
		}
		c.Post(nc)
	}
	return c, remap, nil
}

// State is an opaque snapshot of every variable domain, used by
// callers that drive their own branch-and-bound loop (e.g. the
// reconfiguration optimizer bounds on the true plan cost, which only
// it can evaluate).
type State struct{ snap []domain }

// SaveState captures the current domains.
func (s *Solver) SaveState() State { return State{snap: s.snapshot()} }

// RestoreState reinstalls a snapshot taken by SaveState. The snapshot
// remains reusable.
func (s *Solver) RestoreState(st State) { s.restore(st.snap) }
