// Package cwcs's root benchmarks regenerate every table and figure of
// the paper's evaluation (see DESIGN.md §3 for the experiment index)
// plus the ablations of the design choices DESIGN.md §4 calls out.
// Benchmarks run reduced workloads by default so `go test -bench=.`
// finishes in minutes; cmd/experiments reproduces the full-scale
// sweeps.
package cwcs

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"cwcs/internal/core"
	"cwcs/internal/duration"
	"cwcs/internal/experiments"
	"cwcs/internal/plan"
	"cwcs/internal/sched"
	"cwcs/internal/sim"
	"cwcs/internal/vjob"
	"cwcs/internal/workload"
)

// BenchmarkFig1Backfilling regenerates the Figure 1 schematic: the
// three batch policies over the 4-job workload.
func BenchmarkFig1Backfilling(b *testing.B) {
	jobs := []sched.BatchJob{
		{ID: "1", Procs: 2, Runtime: 2, Estimate: 2},
		{ID: "2", Procs: 4, Runtime: 3, Estimate: 3},
		{ID: "3", Procs: 1, Runtime: 2, Estimate: 2},
		{ID: "4", Procs: 1, Runtime: 4, Estimate: 4},
	}
	var fcfs, easy, pre sched.Schedule
	for i := 0; i < b.N; i++ {
		fcfs = sched.FCFS(jobs, 4)
		easy = sched.EASY(jobs, 4)
		pre = sched.EASYPreempt(jobs, 4)
	}
	b.ReportMetric(float64(fcfs.Makespan), "fcfs-makespan")
	b.ReportMetric(float64(easy.Makespan), "easy-makespan")
	b.ReportMetric(float64(pre.Makespan), "preempt-makespan")
}

// BenchmarkTable1CostModel evaluates the §4.2 plan-cost aggregation
// over a synthetic 200-action plan.
func BenchmarkTable1CostModel(b *testing.B) {
	var pools []plan.Pool
	for p := 0; p < 20; p++ {
		var pool plan.Pool
		for a := 0; a < 10; a++ {
			vm := vjob.NewVM(fmt.Sprintf("vm%d-%d", p, a), "j", 1, 256*(1+a%8))
			pool = append(pool, &plan.Migration{Machine: vm, Src: "n1", Dst: "n2"})
		}
		pools = append(pools, pool)
	}
	pl := &plan.Plan{Pools: pools}
	cost := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cost = pl.Cost()
	}
	b.ReportMetric(float64(cost), "plan-cost")
}

// BenchmarkFig3Durations measures the per-action duration study of
// §2.3 (run/stop/migrate/suspend/resume across memory sizes) through
// the simulator.
func BenchmarkFig3Durations(b *testing.B) {
	var rows []experiments.Fig3Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig3(512, 1024, 2048)
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.Migrate, "migrate-2GiB-s")
	b.ReportMetric(last.ResumeSCP, "remote-resume-2GiB-s")
}

// BenchmarkFig10EntropyVsFFD compares the reconfiguration-plan costs
// of the FFD heuristic and the CP optimizer on generated 200-node
// configurations, one sub-benchmark per VM count (the Figure 10
// x-axis, thinned).
func BenchmarkFig10EntropyVsFFD(b *testing.B) {
	for _, vms := range []int{54, 162, 270} {
		b.Run(fmt.Sprintf("vms=%d", vms), func(b *testing.B) {
			var row experiments.Fig10Row
			for i := 0; i < b.N; i++ {
				rows := experiments.Fig10(experiments.Fig10Options{
					VMCounts: []int{vms},
					Samples:  1,
					Timeout:  2 * time.Second,
					Nodes:    200, NodeCPU: 2, NodeMemory: 4096,
					Seed:       int64(i + 1),
					Partitions: 1, // the published figure is monolithic
				})
				row = rows[0]
			}
			b.ReportMetric(row.FFDMean, "ffd-cost")
			b.ReportMetric(row.EntropyMean, "entropy-cost")
			b.ReportMetric(row.ReductionPct, "reduction-%")
		})
	}
}

// fig11Problem builds one reconfiguration of the §5.2 cluster: the 11
// nodes host a partially-placed 8×9 workload and the consolidation
// module decides the target states.
func fig11Problem(seed int64) core.Problem {
	rng := rand.New(rand.NewSource(seed))
	cfg := vjob.NewConfiguration()
	for i := 0; i < 11; i++ {
		cfg.AddNode(vjob.NewNode(fmt.Sprintf("node%02d", i), 2, 3584))
	}
	var jobs []*vjob.VJob
	for i := 0; i < 8; i++ {
		spec := workload.NewSpec(fmt.Sprintf("vjob%d", i+1),
			workload.Benchmarks[i%4], workload.A, 9, i, rng)
		running := i < 4
		for _, v := range spec.Job.VMs {
			// The placed vjobs are all computing: with four 9-CPU
			// gangs on 22 processing units the cluster starts
			// overloaded (the paper's 29-vs-22 situation), so the
			// context switch has real work to do.
			if running || rng.Float64() < 0.5 {
				v.SetCPUDemand(1)
			} else {
				v.SetCPUDemand(0)
			}
			cfg.AddVM(v)
		}
		jobs = append(jobs, spec.Job)
		if running { // placed by memory only, CPU over-committed
			for _, v := range spec.Job.VMs {
				for _, n := range cfg.Nodes() {
					if cfg.FreeMemory(n.Name) >= v.MemoryDemand() {
						_ = cfg.SetRunning(v.Name, n.Name)
						break
					}
				}
			}
		}
	}
	return core.Problem{Src: cfg, Target: sched.Consolidation{}.Decide(cfg, jobs)}
}

// BenchmarkFig11ContextSwitch times one full context-switch
// computation (decision already made): CP optimization plus plan
// construction for the 11-node cluster.
func BenchmarkFig11ContextSwitch(b *testing.B) {
	var res *core.Result
	for i := 0; i < b.N; i++ {
		p := fig11Problem(int64(i + 1))
		r, err := core.Optimizer{Timeout: 2 * time.Second, Workers: 1}.Solve(p)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(float64(res.Cost), "plan-cost")
	b.ReportMetric(float64(res.Plan.NumActions()), "actions")
}

// benchClusterOpts is the reduced §5.2 configuration used by the
// fig12/fig13 benches.
func benchClusterOpts() experiments.ClusterOptions {
	o := experiments.DefaultClusterOptions()
	o.WorkScale = 0.5
	o.Timeout = time.Second
	o.Workers = 1 // sequential: keep figures comparable across hosts
	return o
}

// BenchmarkFig12FCFS runs the full static-FCFS cluster experiment and
// reports its completion time (the Figure 12 allocation diagram's
// horizon).
func BenchmarkFig12FCFS(b *testing.B) {
	var res experiments.ClusterResult
	for i := 0; i < b.N; i++ {
		o := benchClusterOpts()
		o.PinRunning = true
		res = experiments.RunCluster(sched.StaticFCFS{ReserveFullCPU: true}, o)
	}
	b.ReportMetric(res.Completion, "completion-s")
}

// BenchmarkFig13Consolidation runs the full Entropy cluster experiment
// and reports the headline comparison metrics: completion time, mean
// switch duration, and the local-resume ratio.
func BenchmarkFig13Consolidation(b *testing.B) {
	var res experiments.ClusterResult
	for i := 0; i < b.N; i++ {
		res = experiments.RunCluster(sched.Consolidation{}, benchClusterOpts())
	}
	b.ReportMetric(res.Completion, "completion-s")
	b.ReportMetric(res.MeanSwitchDuration(), "mean-switch-s")
	b.ReportMetric(float64(len(res.Records)), "switches")
}

// --- Portfolio scaling (DESIGN.md §2) ---

// BenchmarkPortfolioWorkers races the parallel portfolio against the
// sequential search on the §5.1-style context-switch instance the
// ablations use: one sub-benchmark per worker count. On multi-core
// hardware the wider portfolios finish the optimality proof in less
// wall-clock time (or find an equally cheap plan within the same
// budget); on a single core they fall back to time-slicing the same
// search effort.
func BenchmarkPortfolioWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchOptimizer(b, core.Optimizer{Timeout: 2 * time.Second, Workers: workers})
		})
	}
}

// BenchmarkPortfolioWorkersSpread scales the worker count over several
// §5.1-style instances, so the scaling numbers are not tied to one
// seed.
func BenchmarkPortfolioWorkersSpread(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var res *core.Result
			solved := 0
			for i := 0; i < b.N; i++ {
				r, err := core.Optimizer{Timeout: 2 * time.Second, Workers: workers}.Solve(fig11Problem(int64(i%5 + 1)))
				if err != nil {
					continue
				}
				solved++
				res = r
			}
			b.ReportMetric(float64(solved)/float64(b.N), "solved-ratio")
			if res != nil {
				b.ReportMetric(float64(res.Cost), "plan-cost")
				b.ReportMetric(float64(res.Nodes), "search-nodes")
			}
		})
	}
}

// --- Partitioned decomposition (DESIGN.md §5) ---

// BenchmarkPartitionedSolve compares the monolithic model with the
// partitioned decomposition on synthetic clusters of 100/500/2000
// nodes, at an equal per-solve budget (BENCH_partition.json records a
// run). The partitioned side usually returns long before the budget —
// every slice proves optimality — while the monolithic search burns the
// whole budget on the larger instances without a proof.
func BenchmarkPartitionedSolve(b *testing.B) {
	for _, nodes := range []int{100, 500, 2000} {
		rng := rand.New(rand.NewSource(1))
		g := workload.GenerateConfiguration(rng, workload.GenerateOptions{
			Nodes: nodes, NodeCPU: 2, NodeMemory: 4096, VMs: nodes * 3 / 2,
		})
		problem := core.Problem{Src: g.Cfg, Target: sched.Consolidation{}.Decide(g.Cfg, g.Jobs)}
		for _, mode := range []struct {
			name  string
			parts int
		}{{"monolithic", 1}, {"partitioned", 0}} {
			b.Run(fmt.Sprintf("nodes=%d/%s", nodes, mode.name), func(b *testing.B) {
				var res *core.Result
				for i := 0; i < b.N; i++ {
					r, err := core.Optimizer{Timeout: 2 * time.Second, Workers: 1, Partitions: mode.parts}.Solve(problem)
					if err != nil {
						b.Fatal(err)
					}
					res = r
				}
				b.ReportMetric(float64(res.Cost), "plan-cost")
				b.ReportMetric(float64(res.Partitions), "partitions")
				b.ReportMetric(boolMetric(res.Optimal), "optimal")
			})
		}
	}
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// --- Ablations (DESIGN.md §4) ---
//
// All ablations pin Workers to 1: with the default GOMAXPROCS-wide
// portfolio, sibling workers would re-enable the very heuristics an
// ablation disables and the comparison would measure the portfolio,
// not the knob. BenchmarkPortfolioWorkers is the parallel measurement.

// BenchmarkAblationNoBound disables the plan-cost lower-bound
// propagator: the solver enumerates viable configurations without
// guidance.
func BenchmarkAblationNoBound(b *testing.B) {
	benchOptimizer(b, core.Optimizer{DisableCostBound: true, Timeout: 2 * time.Second, Workers: 1})
}

// BenchmarkAblationNaiveOrdering disables first-fail and
// prefer-current-host.
func BenchmarkAblationNaiveOrdering(b *testing.B) {
	benchOptimizer(b, core.Optimizer{NaiveOrdering: true, Timeout: 2 * time.Second, Workers: 1})
}

// BenchmarkAblationKnapsack enables the DP subset-sum pruning.
func BenchmarkAblationKnapsack(b *testing.B) {
	benchOptimizer(b, core.Optimizer{UseKnapsack: true, Timeout: 2 * time.Second, Workers: 1})
}

// BenchmarkAblationBaseline is the paper's configuration, for
// comparing the ablations against.
func BenchmarkAblationBaseline(b *testing.B) {
	benchOptimizer(b, core.Optimizer{Timeout: 2 * time.Second, Workers: 1})
}

func benchOptimizer(b *testing.B, o core.Optimizer) {
	var res *core.Result
	solved := 0
	for i := 0; i < b.N; i++ {
		r, err := o.Solve(fig11Problem(7))
		if err != nil {
			// Failing to solve within the budget IS the ablation's
			// finding (e.g. naive ordering may time out); record it
			// rather than aborting the comparison.
			continue
		}
		solved++
		res = r
	}
	b.ReportMetric(float64(solved)/float64(b.N), "solved-ratio")
	if res != nil {
		b.ReportMetric(float64(res.Cost), "plan-cost")
		b.ReportMetric(float64(res.Nodes), "search-nodes")
	}
}

// BenchmarkAblationVJobGrouping measures the §4.1 consistency pass: a
// plan with grouped vjob resumes versus the raw pool construction.
func BenchmarkAblationVJobGrouping(b *testing.B) {
	for name, builder := range map[string]plan.Builder{
		"grouped":   {},
		"ungrouped": {DisableVJobGrouping: true},
	} {
		b.Run(name, func(b *testing.B) {
			p := fig11Problem(11)
			g, err := plan.BuildGraph(p.Src, mustSolve(b, p).Dst)
			if err != nil {
				b.Fatal(err)
			}
			var pl *plan.Plan
			for i := 0; i < b.N; i++ {
				pl, err = builder.Plan(g)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(pl.Cost()), "plan-cost")
			b.ReportMetric(float64(len(pl.Pools)), "pools")
		})
	}
}

func mustSolve(b *testing.B, p core.Problem) *core.Result {
	b.Helper()
	r, err := core.Optimizer{Timeout: 2 * time.Second, Workers: 1}.Solve(p)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkAblationSuspendToRAM compares the §7 future-work
// suspend-to-RAM variant with the disk-based default: the same
// suspend+resume round-trip in the simulator.
func BenchmarkAblationSuspendToRAM(b *testing.B) {
	for _, ram := range []bool{false, true} {
		name := "disk"
		if ram {
			name = "ram"
		}
		b.Run(name, func(b *testing.B) {
			var elapsed float64
			for i := 0; i < b.N; i++ {
				cfg := vjob.NewConfiguration()
				cfg.AddNode(vjob.NewNode("n1", 2, 4096))
				vm := vjob.NewVM("vm", "j", 1, 2048)
				cfg.AddVM(vm)
				if err := cfg.SetRunning("vm", "n1"); err != nil {
					b.Fatal(err)
				}
				c := sim.New(cfg, duration.Default())
				c.SuspendToRAM = ram
				c.StartAction(&plan.Suspend{Machine: vm, On: "n1", To: "n1"}, func(error) {
					c.StartAction(&plan.Resume{Machine: vm, From: "n1", On: "n1"}, nil)
				})
				c.Run(10_000)
				elapsed = c.Now()
			}
			b.ReportMetric(elapsed, "roundtrip-s")
		})
	}
}
