package obs

// RemediationTimes reconciles reconfiguration spans with the
// monitor's violation episodes. For each closed episode [t0, t1)
// (starts[i], starts[i]+durations[i] on the virtual clock) it finds
// the reconfiguration span active at the episode's close — that span
// is the loop activity that remediated it — and reports
//
//	t1 - max(t0, span.VirtStart)
//
// the event-to-remediation time from the loop's point of view,
// clamped so it can never exceed the episode's own recovery time. An
// episode no span covers (the violation self-healed, or tracing
// started late) falls back to the full recovery duration. The second
// result counts episodes a span actually covered.
//
// Only spans of kind "reconfig" are consulted; pass the full stream
// and the rest is ignored.
func RemediationTimes(spans []SpanRecord, starts, durations []float64) ([]float64, int) {
	n := len(starts)
	if len(durations) < n {
		n = len(durations)
	}
	times := make([]float64, 0, n)
	matched := 0
	for i := 0; i < n; i++ {
		t0, dur := starts[i], durations[i]
		t1 := t0 + dur
		rem := dur
		for j := range spans {
			s := &spans[j]
			if s.Kind != "reconfig" || s.VirtStart > t1 || s.VirtEnd < t1 {
				continue
			}
			matched++
			rem = t1 - s.VirtStart
			if rem > dur {
				rem = dur
			}
			if rem < 0 {
				rem = 0
			}
			break
		}
		times = append(times, rem)
	}
	return times, matched
}
