package main

import (
	"encoding/json"
	"testing"

	"cwcs/internal/core"
	"cwcs/internal/vjob"
)

func parseSpec(t *testing.T, raw string) clusterSpec {
	t.Helper()
	var spec clusterSpec
	if err := json.Unmarshal([]byte(raw), &spec); err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestExampleSpecSolves(t *testing.T) {
	spec := parseSpec(t, exampleSpec)
	cfg, targets, err := build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumNodes() != 3 || cfg.NumVMs() != 3 {
		t.Fatalf("parsed %d nodes, %d vms", cfg.NumNodes(), cfg.NumVMs())
	}
	if targets["j2"] != vjob.Sleeping || targets["j3"] != vjob.Running {
		t.Fatalf("targets = %v", targets)
	}
	res, err := core.Optimizer{}.Solve(core.Problem{Src: cfg, Target: targets})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Dst.Viable() {
		t.Fatal("example spec yields non-viable result")
	}
}

func TestBuildErrors(t *testing.T) {
	cases := map[string]string{
		"unknown vm state":     `{"nodes":[{"name":"n1","cpu":1,"memory":10}],"vms":[{"name":"v","cpu":1,"memory":1,"state":"flying"}]}`,
		"unknown node":         `{"vms":[{"name":"v","cpu":1,"memory":1,"state":"running","node":"ghost"}]}`,
		"unknown sleep node":   `{"vms":[{"name":"v","cpu":1,"memory":1,"state":"sleeping","node":"ghost"}]}`,
		"unknown target state": `{"nodes":[{"name":"n1","cpu":1,"memory":10}],"targets":{"j":"flying"}}`,
	}
	for name, raw := range cases {
		spec := parseSpec(t, raw)
		if _, _, err := build(spec); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestTargetStates(t *testing.T) {
	spec := parseSpec(t, `{"targets":{"a":"running","b":"sleeping","c":"terminated","d":"waiting"}}`)
	_, targets, err := build(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]vjob.State{
		"a": vjob.Running, "b": vjob.Sleeping, "c": vjob.Terminated, "d": vjob.Waiting,
	}
	for job, st := range want {
		if targets[job] != st {
			t.Errorf("target %s = %v, want %v", job, targets[job], st)
		}
	}
}

func TestRuleCompilation(t *testing.T) {
	cases := []struct {
		raw  string
		want string
	}{
		{`{"type":"spread","vms":["a","b"]}`, "core.Spread"},
		{`{"type":"ban","vms":["a"],"nodes":["n1"]}`, "core.Ban"},
		{`{"type":"fence","vms":["a"],"nodes":["n1"]}`, "core.Fence"},
		{`{"type":"gather","vms":["a","b"]}`, "core.Gather"},
	}
	for _, tc := range cases {
		var rs ruleSpec
		if err := json.Unmarshal([]byte(tc.raw), &rs); err != nil {
			t.Fatal(err)
		}
		rule, err := rs.compile()
		if err != nil {
			t.Fatalf("%s: %v", tc.raw, err)
		}
		if rule == nil {
			t.Fatalf("%s: nil rule", tc.raw)
		}
	}
	if _, err := (ruleSpec{Type: "affinity"}).compile(); err == nil {
		t.Fatal("unknown rule type accepted")
	}
}

func TestIndent(t *testing.T) {
	if got := indent("a\nb\n"); got != "  a\n  b\n" {
		t.Fatalf("indent = %q", got)
	}
	if got := indent("tail"); got != "  tail\n" {
		t.Fatalf("indent without newline = %q", got)
	}
}
