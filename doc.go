// Package cwcs reproduces "Cluster-Wide Context Switch of Virtualized
// Jobs" (Hermenier, Lèbre, Menaud — HPDC 2010 / INRIA RR-6929): the
// Entropy consolidation manager extended with coordinated
// run/stop/migrate/suspend/resume permutations of the cluster's VMs,
// planned for viability and cost-optimized with constraint
// programming.
//
// The root package holds the benchmark harness regenerating the
// paper's tables and figures; the implementation lives under
// internal/ (see DESIGN.md for the map) and the runnable entry points
// under cmd/ and examples/.
package cwcs
