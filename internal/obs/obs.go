// Package obs is the observability layer of the reconfiguration
// pipeline: causal spans over event→solve→splice→action, latency
// histograms behind /metrics, and a live span stream behind /v1/watch.
//
// The design constraint is that tracing is optional and, when off,
// free. Every producer holds a *Tracer that may be nil; Span is a
// small value type whose methods no-op when the tracer is nil, so the
// hot path never branches into allocation-bearing code
// (BenchmarkLoopTracingOff pins 0 allocs/op). When tracing is on,
// closed spans land in a fixed-size ring of atomic pointers —
// writers never take a lock and readers (HTTP handlers on other
// goroutines) never block the loop.
//
// Spans carry two clocks. Wall-clock durations answer "how much CPU
// did deciding cost" (solver time, splice time); virtual-time
// durations answer "how long was the cluster exposed" (action
// lifetimes, event-to-remediation). The two are deliberately not
// comparable and land in separate histograms.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies a span by the pipeline stage it covers.
type Kind uint8

const (
	// KindReconfig is the root span of one reconfiguration: it opens
	// when an event bursts into an idle loop and closes when the loop
	// goes idle again (no dirty work, nothing executing, no wake
	// armed). Its virtual duration is the event-to-remediation time.
	KindReconfig Kind = iota
	// KindDebounce covers the wait between arming a wake and the wake
	// firing.
	KindDebounce
	// KindWake covers one loop iteration: take the dirty set, solve,
	// merge, hand off to execution. Switch reports whether it ended in
	// a context switch.
	KindWake
	// KindCarve covers a partition carve; Cached reports a cache hit.
	KindCarve
	// KindSolve covers one optimizer invocation (a dirty slice or a
	// monolithic solve).
	KindSolve
	// KindMerge covers rebasing and merging per-slice plans.
	KindMerge
	// KindSplice covers a repair attempt against an executing plan;
	// Widen counts region widenings.
	KindSplice
	// KindAction covers one executed action's lifetime in the driver,
	// on the virtual clock.
	KindAction
	// KindMark is an instant lifecycle event (loop start, switch
	// completion), not a duration.
	KindMark
)

var kindNames = [...]string{
	"reconfig", "debounce", "wake", "carve", "solve",
	"merge", "splice", "action", "mark",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// SpanRecord is a closed span as it lands in the ring and the JSONL
// export. It is a flat struct — no maps, no nesting — so encoding is
// cheap and records are comparable in tests.
type SpanRecord struct {
	// Seq is the tracer-global publish order (1-based, dense).
	Seq uint64 `json:"seq"`
	// ID is the span's own identity; Cause is the reconfiguration
	// span this work belongs to (== ID for KindReconfig, 0 when no
	// reconfiguration was live).
	ID    uint64 `json:"id"`
	Cause uint64 `json:"cause,omitempty"`
	// Kind is the stage name (Kind.String()); Name refines it: the
	// triggering event kind for reconfig spans, the action kind for
	// action spans, "incremental"/"full" for wakes.
	Kind string `json:"kind"`
	Name string `json:"name,omitempty"`
	// WallStart is time.Time.UnixNano at open; WallSeconds the
	// wall-clock duration.
	WallStart   int64   `json:"wall_start_ns"`
	WallSeconds float64 `json:"wall_s"`
	// VirtStart/VirtEnd bound the span on the simulation clock.
	VirtStart float64 `json:"virt_start"`
	VirtEnd   float64 `json:"virt_end"`
	// Stage-specific attributes; zero values are omitted.
	Events    int     `json:"events,omitempty"`     // reconfig: coalesced events
	SubSolves int     `json:"sub_solves,omitempty"` // solve: partition count
	Cost      float64 `json:"cost,omitempty"`       // solve: incumbent cost
	Widen     int     `json:"widen,omitempty"`      // splice: widening depth
	Warm      bool    `json:"warm,omitempty"`       // solve: warm start armed
	Cached    bool    `json:"cached,omitempty"`     // carve: cache hit
	Switch    bool    `json:"switch,omitempty"`     // wake: ended in a switch
	Outcome   string  `json:"outcome,omitempty"`    // splice/solve: terminal state

	// Search telemetry (solve spans only); scalars so SpanRecord stays
	// comparable — the per-worker breakdown lives in core.Result and
	// core.SolverTelemetry, not on the span.
	Winner      string `json:"winner,omitempty"`       // solve: winning strategy
	SearchNodes int64  `json:"search_nodes,omitempty"` // solve: nodes explored
	Backtracks  int64  `json:"backtracks,omitempty"`   // solve: search failures
	WarmHit     bool   `json:"warm_hit,omitempty"`     // solve: warm seed viable

	kind Kind
}

// VirtDur is the span's virtual-time duration.
func (r *SpanRecord) VirtDur() float64 { return r.VirtEnd - r.VirtStart }

// Span is a live handle on an open span. The zero Span (and any Span
// started from a nil Tracer) is inert: every method is nil-safe and
// returns immediately, which is what makes disabled tracing free.
type Span struct {
	t   *Tracer
	rec SpanRecord
}

// Active reports whether the span is open on a live tracer.
func (s *Span) Active() bool { return s.t != nil }

// ID returns the span's identity, 0 when inert.
func (s *Span) ID() uint64 {
	if s.t == nil {
		return 0
	}
	return s.rec.ID
}

// AddEvents credits n coalesced events to the span.
func (s *Span) AddEvents(n int) {
	if s.t == nil {
		return
	}
	s.rec.Events += n
}

// SetSolve records a solve's incumbent cost, sub-solve count and
// warm-start state.
func (s *Span) SetSolve(cost float64, subSolves int, warm bool) {
	if s.t == nil {
		return
	}
	s.rec.Cost, s.rec.SubSolves, s.rec.Warm = cost, subSolves, warm
}

// SetSearch records a solve's search telemetry: the winning strategy,
// the explored node and backtrack counts, and whether the warm seed
// was still viable.
func (s *Span) SetSearch(winner string, nodes, backtracks int64, warmHit bool) {
	if s.t == nil {
		return
	}
	s.rec.Winner, s.rec.SearchNodes, s.rec.Backtracks, s.rec.WarmHit = winner, nodes, backtracks, warmHit
}

// SetCached marks a carve span as served from the partition cache.
func (s *Span) SetCached(cached bool) {
	if s.t == nil {
		return
	}
	s.rec.Cached = cached
}

// SetWiden records a splice attempt's widening depth.
func (s *Span) SetWiden(n int) {
	if s.t == nil {
		return
	}
	s.rec.Widen = n
}

// SetSwitch records whether a wake ended in a context switch.
func (s *Span) SetSwitch(switched bool) {
	if s.t == nil {
		return
	}
	s.rec.Switch = switched
}

// SetOutcome records a terminal state ("spliced", "fallback", ...).
// The string should be a constant: it is retained verbatim.
func (s *Span) SetOutcome(outcome string) {
	if s.t == nil {
		return
	}
	s.rec.Outcome = outcome
}

// End closes the span at virtual time virt and publishes it. The
// handle is inert afterwards; End is idempotent.
func (s *Span) End(virt float64) {
	t := s.t
	if t == nil {
		return
	}
	s.t = nil
	s.rec.WallSeconds = time.Duration(nanotime() - s.rec.WallStart).Seconds()
	s.rec.VirtEnd = virt
	rec := s.rec // copy: the caller may reuse the Span slot
	t.push(&rec)
}

func nanotime() int64 { return time.Now().UnixNano() }

// Tracer owns the span ring, the latency histograms and the watch
// subscriptions. Producers (the loop, the driver) run on one
// goroutine; readers may be many and never block producers.
type Tracer struct {
	ids   atomic.Uint64
	seq   atomic.Uint64
	cause atomic.Uint64
	drops atomic.Uint64

	slots []atomic.Pointer[SpanRecord]

	solve       *Histogram
	wake        *Histogram
	remediation *Histogram
	splice      *Histogram
	actions     map[string]*Histogram
	actionOther *Histogram

	mu      sync.Mutex
	subs    []*Subscription
	onClose []func(SpanRecord)
}

// DefaultRing is the span ring size when NewTracer is given n <= 0:
// at the churn study's event rate (~10 spans per reconfiguration) it
// holds several minutes of history in ~1 MiB.
const DefaultRing = 4096

// ActionKinds are the pre-registered label values of
// cwcs_action_duration_vseconds; any other action name lands in
// "other" so the label set stays bounded.
var ActionKinds = []string{"migration", "resume", "run", "stop", "suspend"}

// NewTracer returns a tracer with an n-slot span ring (DefaultRing
// when n <= 0).
func NewTracer(n int) *Tracer {
	if n <= 0 {
		n = DefaultRing
	}
	t := &Tracer{
		slots: make([]atomic.Pointer[SpanRecord], n),
		solve: newHistogram("cwcs_solve_duration_seconds",
			"Wall-clock duration of one optimizer invocation.", "", "", wallBounds),
		wake: newHistogram("cwcs_wake_to_switch_seconds",
			"Wall-clock time from a loop wake to handing a plan to execution.", "", "", wallBounds),
		remediation: newHistogram("cwcs_event_to_remediation_vseconds",
			"Virtual time from the first event of a reconfiguration to the loop going idle again.", "", "", virtBounds),
		splice: newHistogram("cwcs_splice_duration_seconds",
			"Wall-clock duration of one splice/repair attempt against an executing plan.", "", "", wallBounds),
		actions: make(map[string]*Histogram, len(ActionKinds)+1),
	}
	for _, k := range ActionKinds {
		t.actions[k] = newHistogram("cwcs_action_duration_vseconds",
			"Virtual-time lifetime of one executed action, by kind.", "kind", k, virtBounds)
	}
	t.actionOther = newHistogram("cwcs_action_duration_vseconds",
		"Virtual-time lifetime of one executed action, by kind.", "kind", "other", virtBounds)
	return t
}

// Start opens a span. Safe on a nil tracer: the returned handle is
// inert. Reconfiguration spans become their own cause; other kinds
// inherit the tracer's active cause.
func (t *Tracer) Start(kind Kind, name string, virt float64) Span {
	if t == nil {
		return Span{}
	}
	s := Span{t: t, rec: SpanRecord{
		ID:        t.ids.Add(1),
		Kind:      kind.String(),
		Name:      name,
		WallStart: nanotime(),
		VirtStart: virt,
		kind:      kind,
	}}
	if kind == KindReconfig {
		s.rec.Cause = s.rec.ID
	} else {
		s.rec.Cause = t.cause.Load()
	}
	return s
}

// Mark publishes an instant lifecycle event (zero-duration span).
func (t *Tracer) Mark(name string, virt float64) {
	if t == nil {
		return
	}
	s := t.Start(KindMark, name, virt)
	s.End(virt)
}

// SetCause sets the reconfiguration span ID that subsequently started
// child spans inherit; 0 clears it.
func (t *Tracer) SetCause(id uint64) {
	if t == nil {
		return
	}
	t.cause.Store(id)
}

// Cause returns the active reconfiguration span ID, 0 when idle.
func (t *Tracer) Cause() uint64 {
	if t == nil {
		return 0
	}
	return t.cause.Load()
}

// push assigns publish order, lands the record in the ring, feeds the
// matching histogram and fans out to subscribers. Called only from
// Span.End/Mark with a record nothing else references.
func (t *Tracer) push(rec *SpanRecord) {
	rec.Seq = t.seq.Add(1)
	t.slots[(rec.Seq-1)%uint64(len(t.slots))].Store(rec)
	switch rec.kind {
	case KindSolve:
		t.solve.Observe(rec.WallSeconds)
	case KindWake:
		if rec.Switch {
			t.wake.Observe(rec.WallSeconds)
		}
	case KindReconfig:
		t.remediation.Observe(rec.VirtDur())
	case KindSplice:
		t.splice.Observe(rec.WallSeconds)
	case KindAction:
		h := t.actions[rec.Name]
		if h == nil {
			h = t.actionOther
		}
		h.Observe(rec.VirtDur())
	}
	t.publish(rec)
}

// Recent returns up to max closed spans (all retained when max <= 0),
// oldest first. Lock-free with respect to producers: a scrape never
// delays the loop.
func (t *Tracer) Recent(max int) []SpanRecord {
	if t == nil {
		return nil
	}
	out := make([]SpanRecord, 0, len(t.slots))
	for i := range t.slots {
		if p := t.slots[i].Load(); p != nil {
			out = append(out, *p)
		}
	}
	// Ring order: sort by Seq. The ring is written in Seq order so a
	// single rotation restores it, but records race with wrap-around;
	// an insertion sort over an almost-sorted slice is simpler and
	// still cheap at ring size.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].Seq > out[j].Seq; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}

// Histograms returns every latency histogram in exposition order
// (same-name histograms adjacent so HELP/TYPE headers group).
func (t *Tracer) Histograms() []*Histogram {
	if t == nil {
		return nil
	}
	hs := []*Histogram{t.solve, t.wake, t.remediation, t.splice}
	for _, k := range ActionKinds {
		hs = append(hs, t.actions[k])
	}
	return append(hs, t.actionOther)
}

// WatchDrops reports how many watch events were dropped because a
// subscriber could not keep up (each drop also closes that
// subscription).
func (t *Tracer) WatchDrops() uint64 {
	if t == nil {
		return 0
	}
	return t.drops.Load()
}

// OnClose registers a synchronous observer invoked with every closed
// span, on the producer's goroutine. Observers must be fast and must
// not call back into the tracer's subscription API.
func (t *Tracer) OnClose(fn func(SpanRecord)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.onClose = append(t.onClose, fn)
	t.mu.Unlock()
}
