package sched

import (
	"sort"

	"cwcs/internal/vjob"
)

// WeightedConsolidation generalizes the sample module with vjob
// weights (§3.2 suggests "common approaches such as vjob weights or
// priority queues"): instead of walking the queue in plain FCFS order,
// vjobs are ranked by descending weight — ties broken FCFS — and the
// highest-value set that fits is selected. Weights model job
// importance (paying customers, deadlines); the FCFS module is the
// special case where every weight is equal.
//
// An optional Starvation guard promotes any vjob that has been ready
// (waiting or sleeping) for more than StarvationRounds consecutive
// decisions to the front, bounding how long a heavy queue can starve a
// light job.
type WeightedConsolidation struct {
	// Weight returns the weight of a vjob; nil means uniform weights
	// (pure FCFS behaviour).
	Weight func(*vjob.VJob) float64
	// StarvationRounds, when positive, is the number of consecutive
	// rounds a ready vjob may be passed over before it is promoted to
	// the head of the ranking. Zero disables the guard.
	StarvationRounds int

	// passedOver counts consecutive rounds each vjob was left ready.
	passedOver map[string]int
}

// Decide ranks the queue by weight and selects greedily, like the FCFS
// module but in weight order.
func (w *WeightedConsolidation) Decide(cfg *vjob.Configuration, queue []*vjob.VJob) map[string]vjob.State {
	if w.passedOver == nil {
		w.passedOver = make(map[string]int)
	}
	ranked := w.rank(queue)
	target := make(map[string]vjob.State, len(ranked))
	temp := emptyClusterLike(cfg)
	for _, j := range ranked {
		cur := cfg.VJobState(j)
		if cur == vjob.Terminated {
			delete(w.passedOver, j.Name)
			continue
		}
		if tryPlace(temp, j) {
			target[j.Name] = vjob.Running
			delete(w.passedOver, j.Name)
			continue
		}
		if cur == vjob.Running || cur == vjob.Sleeping {
			target[j.Name] = vjob.Sleeping
		} else {
			target[j.Name] = vjob.Waiting
		}
		w.passedOver[j.Name]++
	}
	return target
}

// rank orders the queue by (starvation promotion, weight desc, FCFS).
func (w *WeightedConsolidation) rank(queue []*vjob.VJob) []*vjob.VJob {
	out := SortQueue(queue) // FCFS base order for stable ties
	weight := func(j *vjob.VJob) float64 {
		if w.Weight == nil {
			return 0
		}
		return w.Weight(j)
	}
	starving := func(j *vjob.VJob) bool {
		return w.StarvationRounds > 0 && w.passedOver[j.Name] >= w.StarvationRounds
	}
	sort.SliceStable(out, func(i, k int) bool {
		si, sk := starving(out[i]), starving(out[k])
		if si != sk {
			return si
		}
		return weight(out[i]) > weight(out[k])
	})
	return out
}
