package sim

import (
	"testing"

	"cwcs/internal/duration"
	"cwcs/internal/vjob"
)

func lifecycleCluster(t *testing.T) (*Cluster, *vjob.Configuration) {
	t.Helper()
	cfg := vjob.NewConfiguration()
	cfg.AddNode(vjob.NewNode("n0", 2, 4096))
	cfg.AddNode(vjob.NewNode("n1", 2, 4096))
	cfg.AddVM(vjob.NewVM("v1", "j", 1, 1024))
	if err := cfg.SetRunning("v1", "n0"); err != nil {
		t.Fatal(err)
	}
	return New(cfg, duration.Default()), cfg
}

func TestSetNodeOfflineRefusesLoadedNode(t *testing.T) {
	c, cfg := lifecycleCluster(t)
	if err := c.SetNodeOffline("n0"); err == nil {
		t.Fatal("offlined a node still hosting a running VM")
	}
	if err := cfg.SetSleeping("v1", "n0"); err != nil {
		t.Fatal(err)
	}
	if err := c.SetNodeOffline("n0"); err == nil {
		t.Fatal("offlined a node still holding a suspended image")
	}
	if err := c.SetNodeOffline("ghost"); err == nil {
		t.Fatal("offlined an unknown node")
	}
}

func TestNodeOfflineOnlineRoundTrip(t *testing.T) {
	c, cfg := lifecycleCluster(t)
	if err := c.SetNodeOffline("n1"); err != nil {
		t.Fatal(err)
	}
	if cfg.Node("n1") != nil {
		t.Fatal("offline node still in the configuration")
	}
	if got := c.OfflineNodes(); len(got) != 1 || got[0] != "n1" {
		t.Fatalf("offline set: %v", got)
	}
	// Idempotent: a second offline is a no-op.
	if err := c.SetNodeOffline("n1"); err != nil {
		t.Fatalf("re-offline: %v", err)
	}
	if err := c.SetNodeOnline("n1"); err != nil {
		t.Fatal(err)
	}
	n := cfg.Node("n1")
	if n == nil || n.CPU() != 2 || n.Memory() != 4096 {
		t.Fatalf("restored node: %+v", n)
	}
	if len(c.OfflineNodes()) != 0 {
		t.Fatal("offline set not cleared")
	}
	if err := c.SetNodeOnline("n1"); err == nil {
		t.Fatal("onlined a node that was not offline")
	}
}

// TestOfflineKeepsInvariantsClean: the node lifecycle itself must not
// trip the watcher — and the structural count stays zero through a
// full offline/online cycle.
func TestOfflineKeepsInvariantsClean(t *testing.T) {
	c, _ := lifecycleCluster(t)
	w := WatchInvariants(c)
	c.Run(1)
	if err := c.SetNodeOffline("n1"); err != nil {
		t.Fatal(err)
	}
	c.Run(2)
	if err := c.SetNodeOnline("n1"); err != nil {
		t.Fatal(err)
	}
	c.Run(3)
	if err := w.Err(); err != nil {
		t.Fatalf("lifecycle tripped the watcher: %v", err)
	}
	if w.StructuralCount() != 0 {
		t.Fatalf("structural breaches: %d", w.StructuralCount())
	}
}

// TestNodeRemovalUnderWatcher: moving a VM off a node and removing the
// node mid-simulation — the legal shape of every offline — never
// counts as a structural breach.
func TestNodeRemovalUnderWatcher(t *testing.T) {
	c, cfg := lifecycleCluster(t)
	w := WatchInvariants(c)
	c.Run(1)
	c.Schedule(2, func() {
		if err := cfg.SetRunning("v1", "n1"); err != nil {
			t.Fatal(err)
		}
		if err := c.SetNodeOffline("n0"); err != nil {
			t.Fatal(err)
		}
	})
	c.Run(3)
	if err := w.Err(); err != nil {
		t.Fatalf("legal removal flagged: %v", err)
	}
	if w.StructuralCount() != 0 {
		t.Fatalf("structural breaches: %d", w.StructuralCount())
	}
}
