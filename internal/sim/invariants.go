package sim

import (
	"errors"
	"fmt"

	"cwcs/internal/resources"
	"cwcs/internal/vjob"
)

// Invariants audits the cluster configuration after every simulation
// event and phase advance: per-node processing-unit and memory usage
// must stay within capacity and never go negative. Over-commitment that
// already exists when the watcher takes its baseline is tolerated — a
// context switch legitimately starts from a non-viable configuration —
// but any violation appearing afterwards is recorded, exactly the
// contract plan.Validate enforces statically.
//
// The baseline is captured lazily at the first audit, so tests can
// install the watcher before building the initial placement.
type Invariants struct {
	c        *Cluster
	baseline map[vjob.Violation]bool
	errs     []error
	// structural counts the subset of errs that no workload dynamics
	// can explain: negative resource usage and placements referring to
	// absent nodes. Capacity violations can legitimately appear under
	// churn (a phase shift raising demand past capacity is exactly
	// what the loop exists to fix); a structural breach always means a
	// bug in the reconfiguration machinery.
	structural int
}

// WatchInvariants attaches a watcher to the cluster and returns it.
func WatchInvariants(c *Cluster) *Invariants {
	w := &Invariants{c: c}
	c.OnAdvance(w.audit)
	return w
}

func (w *Invariants) audit() {
	cfg := w.c.Config()
	// One O(nodes + VMs) pass: the audit runs after every event, so the
	// per-node UsedCPU/UsedMemory rescans would be quadratic. Usage
	// above capacity is Violations' business; usage below zero means
	// free above capacity.
	// Node lifecycle (drain/offline) must never strand a placement:
	// every VM's location — hosting node or image node — has to refer
	// to a node still present in the configuration. SetNodeOffline
	// refuses non-evacuated nodes, so a dangling placement means the
	// evacuation machinery mis-stepped.
	for _, v := range cfg.VMs() {
		if loc := cfg.LocationOf(v.Name); loc != "" && cfg.Node(loc) == nil {
			w.errs = append(w.errs, fmt.Errorf("sim: t=%.1f: %s placed on absent node %s", w.c.Now(), v.Name, loc))
			w.structural++
		}
	}
	free := cfg.FreeResources()
	for _, n := range cfg.Nodes() {
		for _, k := range resources.Kinds() {
			if got, cap := free[n.Name].Get(k), n.Capacity.Get(k); got > cap {
				w.errs = append(w.errs, fmt.Errorf("sim: t=%.1f: node %s has negative %s usage %d", w.c.Now(), n.Name, k, cap-got))
				w.structural++
			}
		}
	}
	if w.baseline == nil {
		w.baseline = make(map[vjob.Violation]bool)
		for _, v := range cfg.Violations() {
			w.baseline[v] = true
		}
		for _, v := range w.c.TransferViolations() {
			w.baseline[v] = true
		}
		return
	}
	for _, v := range cfg.Violations() {
		if !w.baseline[v] {
			w.errs = append(w.errs, fmt.Errorf("sim: t=%.1f: %w", w.c.Now(), v))
			w.baseline[v] = true // report each new violation once
		}
	}
	// In-flight transfers squeezing a NIC past its capacity are a
	// violation too (DESIGN.md §9): the running VMs fit, but their
	// service traffic is being starved by migration streams. Counted
	// like capacity violations — the planner's transfer gating exists
	// exactly to avoid these, so a gated plan keeps this at zero.
	for _, v := range w.c.TransferViolations() {
		if !w.baseline[v] {
			w.errs = append(w.errs, fmt.Errorf("sim: t=%.1f: transfer-oversubscribed NIC: %w", w.c.Now(), v))
			w.baseline[v] = true
		}
	}
}

// Err returns every recorded violation joined, or nil.
func (w *Invariants) Err() error { return errors.Join(w.errs...) }

// Count returns how many breaches were recorded, for studies that
// tabulate rather than fail.
func (w *Invariants) Count() int { return len(w.errs) }

// StructuralCount returns the breaches workload dynamics cannot
// explain (negative usage, dangling placements): studies under churn
// assert this stays zero while capacity exposure is reported as
// violation-seconds.
func (w *Invariants) StructuralCount() int { return w.structural }
