package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"cwcs/internal/resources"
)

// FromCSV converts a flat per-VM table — the shape a cluster-trace
// extract or a capacity spreadsheet usually has — into trace records.
// The input is CSV with a header row naming, in any order, the
// columns vm, vjob, arrive, depart, and one column per resource kind
// carried (cpu, memory, net, disk — unknown headers are an error, the
// kind columns are the demand). depart may be empty or 0 for a
// service VM that never leaves. The result is canonically sorted
// (SortRecords) and valid by construction: feed it to Encode to write
// a trace file, the way the committed sample traces were produced.
func FromCSV(r io.Reader) ([]Record, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: csv header: %v", err)
	}
	col := map[string]int{}
	var kinds []string
	for i, h := range header {
		if _, dup := col[h]; dup {
			return nil, fmt.Errorf("trace: csv: duplicate column %q", h)
		}
		col[h] = i
		switch h {
		case "vm", "vjob", "arrive", "depart":
		default:
			if _, err := resources.ParseKind(h); err != nil {
				return nil, fmt.Errorf("trace: csv: unknown column %q (not a resource kind)", h)
			}
			kinds = append(kinds, h)
		}
	}
	for _, need := range []string{"vm", "vjob", "arrive"} {
		if _, ok := col[need]; !ok {
			return nil, fmt.Errorf("trace: csv: missing column %q", need)
		}
	}
	if len(kinds) == 0 {
		return nil, fmt.Errorf("trace: csv: no demand columns")
	}

	var recs []Record
	line := 1
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: %v", line, err)
		}
		vm, job := row[col["vm"]], row[col["vjob"]]
		if vm == "" || job == "" {
			return nil, fmt.Errorf("trace: csv line %d: missing vm or vjob", line)
		}
		arrive, err := strconv.ParseFloat(row[col["arrive"]], 64)
		if err != nil || arrive < 0 {
			return nil, fmt.Errorf("trace: csv line %d: bad arrive %q", line, row[col["arrive"]])
		}
		demand := map[string]int{}
		for _, k := range kinds {
			x, err := strconv.Atoi(row[col[k]])
			if err != nil || x < 0 {
				return nil, fmt.Errorf("trace: csv line %d: bad %s demand %q", line, k, row[col[k]])
			}
			if x > 0 {
				demand[k] = x
			}
		}
		if len(demand) == 0 {
			return nil, fmt.Errorf("trace: csv line %d: vm %s demands nothing", line, vm)
		}
		recs = append(recs, Record{V: FormatVersion, At: arrive, Event: EventArrive, VM: vm, VJob: job, Demand: demand})
		if i, ok := col["depart"]; ok && row[i] != "" && row[i] != "0" {
			depart, err := strconv.ParseFloat(row[i], 64)
			if err != nil || depart <= arrive {
				return nil, fmt.Errorf("trace: csv line %d: bad depart %q", line, row[i])
			}
			recs = append(recs, Record{V: FormatVersion, At: depart, Event: EventDepart, VM: vm})
		}
	}
	SortRecords(recs)
	return recs, nil
}
