// Package vjob defines the data model of the cluster-wide context
// switch: nodes, virtual machines, virtualized jobs (vjobs), the vjob
// life cycle, and cluster configurations with their viability rules.
//
// The terminology follows Hermenier et al., "Cluster-Wide Context
// Switch of Virtualized Jobs": a configuration maps every VM either to
// a hosting node (running), to a node holding its suspended image
// (sleeping), or to the waiting queue. A configuration is viable when
// every running VM has access to the resources it demands, on every
// registered dimension (internal/resources).
package vjob

import (
	"fmt"

	"cwcs/internal/resources"
)

// Node is a working node of the cluster. Capacity is per resource
// dimension, in the paper's units for the first two: CPU in processing
// units (a computing VM demands a whole one) and memory in MiB; extra
// dimensions (network bandwidth, disk I/O) use the registry's units.
type Node struct {
	// Name identifies the node (e.g. "node-3"). Names must be unique
	// within a configuration.
	Name string
	// Capacity is the per-dimension resource capacity available to
	// VMs.
	Capacity resources.Capacity
}

// NewNode returns a node with the given CPU and memory capacities (the
// paper's 2-D model). It panics when a capacity is negative, since
// such a node cannot exist.
func NewNode(name string, cpu, memory int) *Node {
	return NewNodeRes(name, resources.New(cpu, memory))
}

// NewNodeRes returns a node with a full capacity vector. It panics on
// negative capacities.
func NewNodeRes(name string, cap resources.Capacity) *Node {
	if cap.AnyNegative() {
		panic(fmt.Sprintf("vjob: node %s with negative capacity (%s)", name, cap))
	}
	return &Node{Name: name, Capacity: cap}
}

// CPU returns the number of processing units the node offers.
func (n *Node) CPU() int { return n.Capacity.Get(resources.CPU) }

// Memory returns the node memory capacity in MiB.
func (n *Node) Memory() int { return n.Capacity.Get(resources.Memory) }

// String returns a compact human-readable description of the node.
func (n *Node) String() string {
	return fmt.Sprintf("%s[%s]", n.Name, n.Capacity)
}
