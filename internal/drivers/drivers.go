// Package drivers executes reconfiguration plans against the simulated
// cluster, playing the role of the paper's SSH / Xen-API action
// drivers. Pools run sequentially; inside a pool every action starts in
// parallel, except the suspends and resumes, which are sorted by the
// hostname of their VMs and pipelined one second apart (§4.1): the VMs
// of a vjob pause in a fixed order within a short period while the
// bulk of the image writing still overlaps.
package drivers

import (
	"fmt"
	"sort"

	"cwcs/internal/obs"
	"cwcs/internal/plan"
	"cwcs/internal/sim"
)

// PipelineDelay is the delay between two pipelined suspend/resume
// starts, in seconds (the paper uses one second).
const PipelineDelay = 1.0

// Report summarizes an executed cluster-wide context switch.
type Report struct {
	// Start and End are the virtual times bounding the execution.
	Start, End float64
	// Cost is the §4.2 cost of the executed plan (recomputed after a
	// splice: executed prefix plus spliced suffix).
	Cost int
	// Actions counts executed actions; Pools the sequential steps.
	Actions, Pools int
	// Splices counts mid-flight plan repairs grafted in (see
	// Execution.Splice).
	Splices int
	// Errs collects per-action failures (empty on success).
	Errs []error
}

// Duration returns the wall-clock (virtual) length of the switch.
func (r Report) Duration() float64 { return r.End - r.Start }

// Callbacks observe a managed execution; every field is optional.
type Callbacks struct {
	// Failure fires at the virtual instant an action's application
	// fails, with the action and its error. The pool is still in
	// flight: record the failure and repair at the next PoolDone.
	Failure func(a plan.Action, err error)
	// PoolDone fires after every pool completes and before the next
	// starts. No action of this plan is in flight at that instant, so
	// it is the safe point to Splice a repaired remainder in.
	PoolDone func()
	// Done fires once, when the last pool has completed.
	Done func(Report)
	// Trace, when non-nil, records each action's lifetime as a span
	// on the virtual clock (kind "action", name = action kind).
	Trace *obs.Tracer
}

// actionKind names an action for the span stream and the
// cwcs_action_duration_vseconds{kind} label; the strings are the
// obs.ActionKinds vocabulary.
func actionKind(a plan.Action) string {
	switch a.(type) {
	case *plan.Migration:
		return "migration"
	case *plan.Run:
		return "run"
	case *plan.Stop:
		return "stop"
	case *plan.Suspend:
		return "suspend"
	case *plan.Resume:
		return "resume"
	default:
		return "other"
	}
}

// ActionPhase is the lifecycle position of one scheduled action.
type ActionPhase int

const (
	// ActionPending: the action's pool has not started.
	ActionPending ActionPhase = iota
	// ActionRunning: the action is in flight.
	ActionRunning
	// ActionDone: the action applied successfully.
	ActionDone
	// ActionFailed: the action's application failed.
	ActionFailed
)

// String names the phase for logs and the control-plane API.
func (p ActionPhase) String() string {
	switch p {
	case ActionPending:
		return "pending"
	case ActionRunning:
		return "running"
	case ActionDone:
		return "done"
	case ActionFailed:
		return "failed"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// ActionStatus is the execution status of one action of the plan, the
// per-action progress the control plane's GET /v1/plan serves.
type ActionStatus struct {
	// Pool is the index of the action's pool in the current plan.
	Pool int
	// Action renders the action; VM names the manipulated VM.
	Action, VM string
	// Phase is the lifecycle position.
	Phase ActionPhase
	// Err holds the failure message when Phase is ActionFailed.
	Err string
	// Started and Ended are virtual times, meaningful from
	// ActionRunning (Started) and ActionDone/ActionFailed (Ended) on.
	Started, Ended float64
}

// actionRecord is the mutable progress entry behind one ActionStatus.
type actionRecord struct {
	phase          ActionPhase
	err            string
	started, ended float64
}

// Execution is a handle on an in-flight plan execution: the loop keeps
// it to observe progress and graft repaired plans in mid-flight.
type Execution struct {
	c        *sim.Cluster
	plan     *plan.Plan
	next     int // index of the next pool to start
	rep      Report
	cb       Callbacks
	finished bool
	// progress tracks per-action state, keyed by the action value
	// itself: splices keep the pointers of the actions they retain, so
	// records survive a mid-flight plan rewrite while records of
	// spliced-out actions simply stop being listed.
	progress map[plan.Action]*actionRecord
}

// Status reports the per-action progress of the plan as currently
// scheduled, in pool order. Actions of pools that have not started are
// ActionPending.
func (e *Execution) Status() []ActionStatus {
	out := make([]ActionStatus, 0, e.plan.NumActions())
	for pi, pool := range e.plan.Pools {
		for _, a := range pool {
			st := ActionStatus{Pool: pi, Action: fmt.Sprint(a), VM: a.VM().Name}
			if rec := e.progress[a]; rec != nil {
				st.Phase = rec.phase
				st.Err = rec.err
				st.Started, st.Ended = rec.started, rec.ended
			}
			out = append(out, st)
		}
	}
	return out
}

// Execute launches the plan on the cluster and calls done with a
// report when the last action of the last pool has completed. It
// returns immediately; the work happens as the simulation advances.
func Execute(c *sim.Cluster, p *plan.Plan, done func(Report)) {
	Start(c, p, Callbacks{Done: done})
}

// Start launches the plan with mid-flight observability and returns
// the execution handle. Like Execute it returns immediately.
func Start(c *sim.Cluster, p *plan.Plan, cb Callbacks) *Execution {
	e := &Execution{c: c, plan: p, cb: cb,
		progress: make(map[plan.Action]*actionRecord),
		rep:      Report{Start: c.Now(), Cost: p.Cost(), Actions: p.NumActions(), Pools: len(p.Pools)}}
	e.runNext()
	return e
}

// Finished reports whether the last pool has completed.
func (e *Execution) Finished() bool { return e.finished }

// Plan returns the plan as currently scheduled: the executed prefix
// plus the (possibly spliced) remainder.
func (e *Execution) Plan() *plan.Plan { return e.plan }

// Remaining returns the pools that have not started, as a plan rooted
// at the live configuration — the still-open suffix a repair filters
// and splices (plan.Repair).
func (e *Execution) Remaining() *plan.Plan {
	return &plan.Plan{Src: e.c.Snapshot(), Pools: append([]plan.Pool(nil), e.plan.Pools[e.next:]...)}
}

// Splice replaces the pools that have not started with those of np,
// typically a plan.Repair output. It refuses once the plan completed;
// call it from the PoolDone callback, when no action is in flight.
func (e *Execution) Splice(np *plan.Plan) error {
	if e.finished {
		return fmt.Errorf("drivers: splice after the plan completed")
	}
	pools := append(e.plan.Pools[:e.next:e.next], np.Pools...)
	e.plan = &plan.Plan{Src: e.plan.Src, Pools: pools, Bypass: e.plan.Bypass + np.Bypass}
	e.rep.Actions = e.plan.NumActions()
	e.rep.Cost = e.plan.Cost()
	e.rep.Pools = len(pools)
	e.rep.Splices++
	return nil
}

func (e *Execution) runNext() {
	if e.next >= len(e.plan.Pools) {
		e.finished = true
		e.rep.End = e.c.Now()
		if e.cb.Done != nil {
			e.cb.Done(e.rep)
		}
		return
	}
	pool := e.plan.Pools[e.next]
	e.next++
	if len(pool) == 0 {
		e.poolDone()
		return
	}
	pending := len(pool)
	now := e.c.Now()
	for _, sa := range scheduleTimes(pool, now) {
		a, at := sa.action, sa.at
		e.c.Schedule(at, func() {
			rec := &actionRecord{phase: ActionRunning, started: e.c.Now()}
			e.progress[a] = rec
			sp := e.cb.Trace.Start(obs.KindAction, actionKind(a), e.c.Now())
			e.c.StartAction(a, func(err error) {
				rec.ended = e.c.Now()
				rec.phase = ActionDone
				if err != nil {
					rec.phase = ActionFailed
					rec.err = err.Error()
					e.rep.Errs = append(e.rep.Errs, err)
					sp.SetOutcome("failed")
					if e.cb.Failure != nil {
						e.cb.Failure(a, err)
					}
				}
				sp.End(e.c.Now())
				pending--
				if pending == 0 {
					e.poolDone()
				}
			})
		})
	}
}

// poolDone runs the boundary callback — which may Splice — then moves
// on to whatever pool is next afterwards.
func (e *Execution) poolDone() {
	if e.cb.PoolDone != nil {
		e.cb.PoolDone()
	}
	e.runNext()
}

type scheduledAction struct {
	action plan.Action
	at     float64
}

// scheduleTimes assigns a start time to every action of a pool:
// migrations, runs and stops start immediately; suspends and resumes
// are each pipelined PipelineDelay apart, ordered by the hostname of
// the manipulated VM then the VM name.
func scheduleTimes(pool plan.Pool, now float64) []scheduledAction {
	var immediate, pipelined []plan.Action
	for _, a := range pool {
		switch a.(type) {
		case *plan.Suspend, *plan.Resume:
			pipelined = append(pipelined, a)
		default:
			immediate = append(immediate, a)
		}
	}
	sort.SliceStable(pipelined, func(i, j int) bool {
		hi, hj := hostOf(pipelined[i]), hostOf(pipelined[j])
		if hi != hj {
			return hi < hj
		}
		return pipelined[i].VM().Name < pipelined[j].VM().Name
	})
	out := make([]scheduledAction, 0, len(pool))
	for _, a := range immediate {
		out = append(out, scheduledAction{a, now})
	}
	for k, a := range pipelined {
		out = append(out, scheduledAction{a, now + float64(k)*PipelineDelay})
	}
	return out
}

func hostOf(a plan.Action) string {
	switch a := a.(type) {
	case *plan.Suspend:
		return a.On
	case *plan.Resume:
		return a.On
	default:
		return ""
	}
}

// String renders the report for logs.
func (r Report) String() string {
	return fmt.Sprintf("switch[cost=%d actions=%d pools=%d %.0fs..%.0fs errs=%d]",
		r.Cost, r.Actions, r.Pools, r.Start, r.End, len(r.Errs))
}
