package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"cwcs/internal/core"
	"cwcs/internal/drivers"
	"cwcs/internal/duration"
	"cwcs/internal/monitor"
	"cwcs/internal/obs"
	"cwcs/internal/sched"
	"cwcs/internal/sim"
	"cwcs/internal/vjob"
	"cwcs/internal/workload"
)

// ChurnOptions parameterizes the periodic-vs-event-driven loop study:
// a cluster under continuous churn — Poisson vjob arrivals, natural
// departures as workloads finish, load spikes as phases shift, and
// injected action failures — handled by the same optimizer under two
// control-loop schedules. No paper analogue: the paper's loop is
// periodic (§3.1); the event-driven engine is this repo's extension.
type ChurnOptions struct {
	// Nodes, NodeCPU, NodeMemory describe the cluster.
	Nodes, NodeCPU, NodeMemory int
	// InitialVJobs and VMsPerVJob shape the resident population.
	InitialVJobs, VMsPerVJob int
	// ArrivalRate is the Poisson vjob arrival rate per virtual second;
	// arrivals stop at ArrivalStop so the run can drain.
	ArrivalRate float64
	ArrivalStop float64
	// WorkScale multiplies workload durations.
	WorkScale float64
	// Horizon is the simulation cut-off.
	Horizon float64
	// Interval is the periodic loop's pause; Debounce the event-driven
	// loop's settle delay.
	Interval, Debounce float64
	// Timeout bounds every optimizer invocation — the equal budget of
	// the comparison.
	Timeout time.Duration
	// Workers and Partitions configure the optimizer identically on
	// both sides.
	Workers, Partitions int
	// FailureRate is the probability an action fails on completion
	// (exercising the repair path).
	FailureRate float64
	// StormRate, StormFrom and StormUntil overlay a failure storm on
	// FailureRate: inside [StormFrom, StormUntil) actions fail at
	// StormRate instead (see sim.FailureStorm). A zero-length window
	// keeps the flat rate.
	StormRate             float64
	StormFrom, StormUntil float64
	// RepairWiden is handed to core.Loop.RepairWiden: 0 keeps the
	// default region-widening bound, negative disables widening (the
	// refuse-and-fall-back behavior, for A/B studies).
	RepairWiden int
	// WatchInvariants attaches sim.WatchInvariants and reports its
	// structural-breach count; off by default because the audit runs
	// after every simulation event.
	WatchInvariants bool
	// CollectSpans retains every closed span of the run in
	// ChurnResult.Spans (the -trace-out export). The reconfiguration
	// spans feeding the remediation columns are always collected;
	// this widens retention to the full pipeline.
	CollectSpans bool
	// Seed drives workload generation, arrivals and failures; the two
	// modes replay the identical scenario.
	Seed int64
}

// DefaultChurnOptions is the BENCH_eventloop.json scenario: 500 nodes
// under sustained churn.
func DefaultChurnOptions() ChurnOptions {
	return ChurnOptions{
		Nodes: 500, NodeCPU: 2, NodeMemory: 4096,
		InitialVJobs: 40, VMsPerVJob: 9,
		ArrivalRate: 1.0 / 30, ArrivalStop: 900,
		WorkScale: 1.0,
		Horizon:   6000,
		Interval:  30, Debounce: 5,
		Timeout:     500 * time.Millisecond,
		FailureRate: 0.02,
		Seed:        42,
	}
}

// ChurnResult is one mode's measurements over the scenario.
type ChurnResult struct {
	Mode string
	// Stats is the loop telemetry: solver invocations, slice solves,
	// repairs, coalesced events.
	Stats core.LoopStats
	// Switches counts executed context switches; Failures the failed
	// actions across them.
	Switches, Failures int
	// ViolationSeconds integrates len(Violations()) over virtual time:
	// the cumulative exposure to capacity violations.
	ViolationSeconds float64
	// FinalViolations is the violation count at the horizon (0 = the
	// loop reached a violation-free configuration).
	FinalViolations int
	// Breaches is the structural invariant-breach count (only audited
	// when ChurnOptions.WatchInvariants is set; always expected 0).
	Breaches int
	// Arrived and Completed count vjobs over the run.
	Arrived, Completed int
	// End is the virtual time the simulation went quiescent.
	End float64
	// Wall is the real time the run took (dominated by solver budget).
	Wall time.Duration
	// Episodes counts closed violation episodes
	// (monitor.WatchRecovery); Recoveries and Remediations are the
	// aligned per-episode recovery and event-to-remediation times.
	// Remediation clamps the causal reconfiguration span to the
	// episode, so remediation <= recovery per episode by
	// construction; MatchedEpisodes counts episodes a span actually
	// covered (the rest fall back to the full recovery time).
	Episodes        int
	MatchedEpisodes int
	Recoveries      []float64
	Remediations    []float64
	// RemediationP50/P95/Max summarize Remediations (nearest rank).
	RemediationP50, RemediationP95, RemediationMax float64
	// Spans is the retained span stream when CollectSpans is set.
	Spans []obs.SpanRecord
	// Ledger is the per-entity attribution behind ViolationSeconds
	// (ViolationSeconds == Ledger.Total() by construction). TopVJob /
	// TopNode name the worst-suffering vjob and node with their
	// violation-second integrals (empty when the run stayed clean);
	// RuleBreachSeconds integrates structural placement-rule breaches.
	Ledger            *monitor.Ledger
	TopVJob           string
	TopVJobSeconds    float64
	TopNode           string
	TopNodeSeconds    float64
	RuleBreachSeconds float64
}

// RunChurn replays the churn scenario under one loop schedule.
func RunChurn(eventDriven bool, opts ChurnOptions) ChurnResult {
	genRng := rand.New(rand.NewSource(opts.Seed))
	arrRng := rand.New(rand.NewSource(opts.Seed + 1))
	failRng := rand.New(rand.NewSource(opts.Seed + 2))

	cfg := vjob.NewConfiguration()
	for i := 0; i < opts.Nodes; i++ {
		cfg.AddNode(vjob.NewNode(fmt.Sprintf("node%03d", i), opts.NodeCPU, opts.NodeMemory))
	}
	c := sim.New(cfg, duration.Default())

	var jobs []*vjob.VJob
	submit := func(i int) workload.Spec {
		bench := workload.Benchmarks[i%len(workload.Benchmarks)]
		class := workload.Classes[1+i%2]
		spec := workload.NewSpec(fmt.Sprintf("vjob%03d", i), bench, class, opts.VMsPerVJob, i, genRng)
		scalePhases(&spec, opts.WorkScale)
		spec.Install(cfg, c)
		jobs = append(jobs, spec.Job)
		return spec
	}
	for i := 0; i < opts.InitialVJobs; i++ {
		submit(i)
	}

	res := ChurnResult{Mode: "periodic", Arrived: opts.InitialVJobs}
	if eventDriven {
		res.Mode = "event-driven"
	}

	// The span stream is the study's latency instrument: the closed
	// reconfiguration spans yield the event-to-remediation columns, and
	// CollectSpans widens retention to the whole pipeline (-trace-out).
	// The tracer adds no randomness, so seeded runs stay byte-identical.
	tracer := obs.NewTracer(0)
	var reconfigs []obs.SpanRecord
	tracer.OnClose(func(r obs.SpanRecord) {
		if r.Kind == obs.KindReconfig.String() {
			reconfigs = append(reconfigs, r)
		}
		if opts.CollectSpans {
			res.Spans = append(res.Spans, r)
		}
	})

	loop := &core.Loop{
		// The terminator reads the live (growing) jobs slice through
		// the closure, not a snapshot.
		Decision:    queueTerminator{c: c, inner: sched.Consolidation{}, queue: func() []*vjob.VJob { return jobs }},
		Trace:       tracer,
		Optimizer:   core.Optimizer{Timeout: opts.Timeout, Workers: opts.Workers, Partitions: opts.Partitions},
		Interval:    opts.Interval,
		EventDriven: eventDriven,
		Debounce:    opts.Debounce,
		RepairWiden: opts.RepairWiden,
		Queue:       func() []*vjob.VJob { return jobs },
		Done: func() bool {
			if c.Now() <= opts.ArrivalStop {
				return false
			}
			for _, j := range jobs {
				if !c.VJobDone(j) {
					return false
				}
				for _, v := range j.VMs {
					if cfg.VM(v.Name) != nil {
						return false
					}
				}
			}
			return true
		},
	}

	act := &drivers.Actuator{C: c, Trace: tracer}

	// Injected action failures (the flaky-driver model), optionally
	// spiked by a storm window. The storm draws the same one-variate-
	// per-action stream as the flat rate, so seeded runs stay
	// comparable across rates.
	if opts.FailureRate > 0 || opts.StormRate > 0 {
		c.InstallFailureStorm(failRng, sim.FailureStorm{
			Base: opts.FailureRate, Storm: opts.StormRate,
			From: opts.StormFrom, Until: opts.StormUntil,
		})
	}

	var inv *sim.Invariants
	if opts.WatchInvariants {
		inv = sim.WatchInvariants(c)
	}

	// Event feed: load changes from the simulator, arrivals from the
	// churn generator. The periodic loop ignores Notify entirely.
	if eventDriven {
		c.OnLoadChange(func(vm string) {
			loop.Notify(act, core.Event{Kind: core.LoadChange, At: c.Now(), VMs: []string{vm}})
		})
	}

	// Poisson arrivals until ArrivalStop.
	idx := opts.InitialVJobs
	var scheduleArrival func()
	scheduleArrival = func() {
		dt := arrRng.ExpFloat64() / opts.ArrivalRate
		at := c.Now() + dt
		if at > opts.ArrivalStop {
			return
		}
		c.Schedule(at, func() {
			spec := submit(idx)
			idx++
			res.Arrived++
			if eventDriven {
				names := make([]string, len(spec.Job.VMs))
				for i, v := range spec.Job.VMs {
					names[i] = v.Name
				}
				loop.Notify(act, core.Event{Kind: core.VMArrival, At: c.Now(), VMs: names})
			}
			scheduleArrival()
		})
	}
	if opts.ArrivalRate > 0 {
		scheduleArrival()
	}

	led := monitor.WatchLedger(c, nil)
	recovery := monitor.WatchRecovery(c)

	start := time.Now()
	loop.Start(act)
	c.Run(opts.Horizon)
	res.Wall = time.Since(start)
	res.ViolationSeconds = led.Total()
	res.Ledger = led
	if top := led.TopVJobs(1); len(top) > 0 {
		res.TopVJob, res.TopVJobSeconds = top[0].VJob, top[0].Seconds
	}
	if top := led.TopNodes(1); len(top) > 0 {
		res.TopNode, res.TopNodeSeconds = top[0].Node, top[0].Seconds
	}
	res.RuleBreachSeconds = led.RuleBreachSeconds()
	recovery.CloseAt(c.Now())
	res.Episodes = recovery.Episodes()
	res.Recoveries = recovery.Durations
	res.Remediations, res.MatchedEpisodes = obs.RemediationTimes(reconfigs, recovery.Starts, recovery.Durations)
	res.RemediationP50 = monitor.Quantile(res.Remediations, 0.50)
	res.RemediationP95 = monitor.Quantile(res.Remediations, 0.95)
	res.RemediationMax = monitor.Quantile(res.Remediations, 1)

	res.Stats = loop.Stats
	res.Switches = len(loop.Records)
	for _, r := range loop.Records {
		res.Failures += r.Failures
	}
	res.FinalViolations = len(cfg.Violations())
	if inv != nil {
		res.Breaches = inv.StructuralCount()
	}
	res.End = c.Now()
	for _, j := range jobs {
		if c.VJobDone(j) {
			res.Completed++
		}
	}
	return res
}

// queueTerminator is the terminator over a live (growing) queue.
type queueTerminator struct {
	inner core.DecisionModule
	c     *sim.Cluster
	queue func() []*vjob.VJob
}

func (t queueTerminator) Decide(cfg *vjob.Configuration, queue []*vjob.VJob) map[string]vjob.State {
	return terminator{inner: t.inner, c: t.c, jobs: t.queue()}.Decide(cfg, queue)
}

// ChurnStudy runs the scenario under both schedules.
func ChurnStudy(opts ChurnOptions) []ChurnResult {
	return []ChurnResult{RunChurn(false, opts), RunChurn(true, opts)}
}

// ChurnTable renders the comparison.
func ChurnTable(rows []ChurnResult) string {
	var b strings.Builder
	b.WriteString("Periodic vs event-driven reconfiguration loop (equal per-solve budget)\n")
	fmt.Fprintf(&b, "%-12s %9s %8s %8s %8s %8s %8s %10s %8s %9s %8s %8s %8s %-12s\n",
		"mode", "subsolves", "slices", "full", "repairs", "switches", "events", "viol-sec", "final", "done/arr",
		"episodes", "rem-p50", "rem-p95", "top-vjob")
	for _, r := range rows {
		top := "-"
		if r.TopVJob != "" {
			top = fmt.Sprintf("%s:%.0f", r.TopVJob, r.TopVJobSeconds)
		}
		fmt.Fprintf(&b, "%-12s %9d %8d %8d %8d %8d %8d %10.0f %8d %5d/%-3d %8d %8.1f %8.1f %-12s\n",
			r.Mode, r.Stats.SubSolves, r.Stats.SliceSolves, r.Stats.FullSolves,
			r.Stats.Repairs, r.Switches, r.Stats.Events,
			r.ViolationSeconds, r.FinalViolations, r.Completed, r.Arrived,
			r.Episodes, r.RemediationP50, r.RemediationP95, top)
	}
	if len(rows) == 2 && rows[1].Stats.SubSolves > 0 {
		fmt.Fprintf(&b, "solver invocations: %.1fx fewer; violation-seconds: %sx lower (event-driven vs periodic)\n",
			ratio(float64(rows[0].Stats.SubSolves), float64(rows[1].Stats.SubSolves)),
			ratioStr(rows[0].ViolationSeconds, rows[1].ViolationSeconds))
	}
	return b.String()
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return math.Inf(1)
	}
	return a / b
}

func ratioStr(a, b float64) string {
	r := ratio(a, b)
	if math.IsInf(r, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.1f", r)
}

// ChurnCSV renders the rows for external plotting.
func ChurnCSV(rows []ChurnResult) string {
	var b strings.Builder
	b.WriteString("mode,sub_solves,solver_calls,slice_solves,full_solves,repairs,failed_repairs,switches,events,coalesced,violation_seconds,final_violations,arrived,completed,end,episodes,matched_episodes,remediation_p50,remediation_p95,remediation_max,top_vjob,top_vjob_viol_sec,top_node,top_node_viol_sec,rule_breach_sec\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.1f,%d,%d,%d,%.0f,%d,%d,%.1f,%.1f,%.1f,%s,%.1f,%s,%.1f,%.1f\n",
			r.Mode, r.Stats.SubSolves, r.Stats.SolverCalls, r.Stats.SliceSolves, r.Stats.FullSolves,
			r.Stats.Repairs, r.Stats.FailedRepairs, r.Switches, r.Stats.Events,
			r.Stats.Coalesced, r.ViolationSeconds, r.FinalViolations,
			r.Arrived, r.Completed, r.End,
			r.Episodes, r.MatchedEpisodes, r.RemediationP50, r.RemediationP95, r.RemediationMax,
			r.TopVJob, r.TopVJobSeconds, r.TopNode, r.TopNodeSeconds, r.RuleBreachSeconds)
	}
	return b.String()
}
