// Package sched provides the decision modules of the paper: the sample
// FCFS dynamic-consolidation module that solves the Running Job
// Selection Problem (§3.2, Figure 6), a static FCFS allocator used as
// the §5.2 baseline, and a small batch-scheduling model (FCFS, EASY
// backfilling, EASY + preemption) that regenerates the Figure 1
// schematic.
package sched

import (
	"sort"

	"cwcs/internal/packing"
	"cwcs/internal/vjob"
)

// SortQueue orders vjobs by priority (ascending: earlier submissions
// first), breaking ties by submission time then name — the FCFS queue
// of §3.2.
func SortQueue(queue []*vjob.VJob) []*vjob.VJob {
	out := append([]*vjob.VJob(nil), queue...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Priority != out[j].Priority {
			return out[i].Priority < out[j].Priority
		}
		if out[i].Submitted != out[j].Submitted {
			return out[i].Submitted < out[j].Submitted
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Consolidation is the sample decision module of §3.2: every round it
// walks the whole FCFS queue and selects the maximum prefix-priority
// set of vjobs that can run simultaneously, using First-Fit-Decrease
// to test each candidate against a hypothetical configuration. Running
// vjobs that no longer fit are sent to Sleeping; ready vjobs that now
// fit are selected for Running. The placement is hypothetical — the
// optimizer recomputes the real one — only the states matter here.
type Consolidation struct{}

// Decide returns the target state for every vjob in the queue.
func (Consolidation) Decide(cfg *vjob.Configuration, queue []*vjob.VJob) map[string]vjob.State {
	target := make(map[string]vjob.State, len(queue))
	temp := emptyClusterLike(cfg)
	for _, j := range SortQueue(queue) {
		cur := cfg.VJobState(j)
		if cur == vjob.Terminated {
			continue
		}
		if tryPlace(temp, j) {
			target[j.Name] = vjob.Running
			continue
		}
		// Cannot run this round: running and sleeping vjobs sleep,
		// waiting vjobs keep waiting.
		if cur == vjob.Running || cur == vjob.Sleeping {
			target[j.Name] = vjob.Sleeping
		} else {
			target[j.Name] = vjob.Waiting
		}
	}
	return target
}

// StaticFCFS is the baseline of §5.2: vjobs are started in FCFS order
// when (and only when) all their VMs fit, and once running they are
// never preempted. Backfill additionally lets later vjobs start ahead
// of a blocked head-of-queue (the EASY behaviour); without it the scan
// stops at the first vjob that does not fit.
//
// With ReserveFullCPU (the realistic RMS behaviour) every VM counts as
// one full processing unit whether or not it is computing right now —
// users book resources for the whole walltime. This static reservation
// is exactly the under-use the paper's dynamic consolidation recovers.
type StaticFCFS struct {
	// Backfill enables starting later vjobs past a blocked one.
	Backfill bool
	// ReserveFullCPU makes placement use the booked one-CPU-per-VM
	// reservation instead of the instantaneous demand.
	ReserveFullCPU bool
}

// Decide returns the target states: running vjobs stay running,
// waiting vjobs start when they fit.
func (s StaticFCFS) Decide(cfg *vjob.Configuration, queue []*vjob.VJob) map[string]vjob.State {
	target := make(map[string]vjob.State, len(queue))
	temp := emptyClusterLike(cfg)
	// Reserve resources of the already-running vjobs first: they are
	// immovable under static allocation.
	for _, j := range SortQueue(queue) {
		if cfg.VJobState(j) == vjob.Running {
			target[j.Name] = vjob.Running
			for _, v := range j.VMs {
				if h := cfg.HostOf(v.Name); h != "" {
					// Mirror the real placement so fragmentation is
					// honoured, as a static RMS would.
					sv := s.shadow(v)
					temp.AddVM(sv)
					_ = temp.SetRunning(sv.Name, h)
				}
			}
		}
	}
	for _, j := range SortQueue(queue) {
		cur := cfg.VJobState(j)
		if cur != vjob.Waiting {
			continue
		}
		if tryPlace(temp, s.shadowJob(j)) {
			target[j.Name] = vjob.Running
			continue
		}
		target[j.Name] = vjob.Waiting
		if !s.Backfill {
			break // strict FCFS: nobody jumps the queue
		}
	}
	return target
}

// shadow returns the VM as the RMS accounts for it: the booked
// reservation when ReserveFullCPU is set, the live demand otherwise.
func (s StaticFCFS) shadow(v *vjob.VM) *vjob.VM {
	if !s.ReserveFullCPU {
		return v
	}
	return vjob.NewVM(v.Name, v.VJob, 1, v.MemoryDemand())
}

func (s StaticFCFS) shadowJob(j *vjob.VJob) *vjob.VJob {
	if !s.ReserveFullCPU {
		return j
	}
	out := &vjob.VJob{Name: j.Name, Priority: j.Priority, Submitted: j.Submitted}
	for _, v := range j.VMs {
		out.VMs = append(out.VMs, s.shadow(v))
	}
	return out
}

// emptyClusterLike returns a configuration with cfg's nodes and no
// VMs.
func emptyClusterLike(cfg *vjob.Configuration) *vjob.Configuration {
	out := vjob.NewConfiguration()
	for _, n := range cfg.Nodes() {
		out.AddNode(n)
	}
	return out
}

// tryPlace adds the vjob's VMs to temp with FFD; on success the
// placement is kept and true is returned.
func tryPlace(temp *vjob.Configuration, j *vjob.VJob) bool {
	for _, v := range j.VMs {
		temp.AddVM(v)
	}
	if err := packing.FirstFitDecrease(temp, j.VMs); err != nil {
		for _, v := range j.VMs {
			temp.RemoveVM(v.Name)
		}
		return false
	}
	return true
}
