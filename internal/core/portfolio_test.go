package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"cwcs/internal/cp"
	"cwcs/internal/vjob"
)

// portfolioProblem builds a consolidation instance with real slack, so
// the portfolio has an actual search to race.
func portfolioProblem(seed int64) Problem {
	rng := rand.New(rand.NewSource(seed))
	nNodes := 4 + rng.Intn(4)
	c := mkCluster(nNodes, 2, 4096)
	target := map[string]vjob.State{}
	for j := 0; j < 2+rng.Intn(3); j++ {
		name := fmt.Sprintf("j%d", j)
		vms := make([]*vjob.VM, 1+rng.Intn(3))
		for k := range vms {
			vms[k] = vjob.NewVM(fmt.Sprintf("%s-%d", name, k), name, rng.Intn(2), 256*(1+rng.Intn(8)))
			c.AddVM(vms[k])
		}
		vjob.NewVJob(name, j, vms...)
		for _, v := range vms {
			if rng.Intn(3) > 0 {
				for _, n := range c.Nodes() {
					if c.Fits(v, n.Name) {
						_ = c.SetRunning(v.Name, n.Name)
						break
					}
				}
			}
		}
		target[name] = vjob.Running
	}
	return Problem{Src: c, Target: target}
}

// TestPortfolioOptimizerSolves: the parallel portfolio produces a
// viable, validated, proven-optimal plan no worse than the FFD
// baseline — the same contract the sequential search honours. (Exact
// cost agreement with the sequential search is proven at the cp layer,
// where the branch-and-bound is exact; the core loop's aggressive
// action-sum tightening makes the chosen witness order-dependent.)
func TestPortfolioOptimizerSolves(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		p := portfolioProblem(seed)
		ffd, ferr := FFDPlan(p)
		res, err := Optimizer{Workers: 4, Timeout: 5 * time.Second}.Solve(p)
		if err != nil {
			if errors.Is(err, ErrNoViableConfiguration) && ferr != nil {
				continue // genuinely infeasible either way
			}
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Dst.Viable() {
			t.Fatalf("seed %d: destination not viable: %v", seed, res.Dst.Violations())
		}
		if verr := res.Plan.Validate(); verr != nil {
			t.Fatalf("seed %d: plan invalid: %v", seed, verr)
		}
		if !res.Optimal {
			t.Fatalf("seed %d: no timeout pressure, yet optimality not proven", seed)
		}
		if ferr == nil && res.Cost > ffd.Cost {
			t.Fatalf("seed %d: portfolio cost %d worse than FFD %d", seed, res.Cost, ffd.Cost)
		}
	}
}

// TestPortfolioWorkerWidths: every width solves the same instance and
// reports a cost within the sequential search's proof bound.
func TestPortfolioWorkerWidths(t *testing.T) {
	p := portfolioProblem(3)
	seq, err := Optimizer{Workers: 1, Timeout: 5 * time.Second}.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 8} {
		res, err := Optimizer{Workers: w, Timeout: 5 * time.Second}.Solve(p)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !res.Optimal || !seq.Optimal {
			t.Fatalf("workers=%d: optimality not proven (seq=%v par=%v)", w, seq.Optimal, res.Optimal)
		}
		if res.Cost != seq.Cost {
			// Both proved optimality w.r.t. the action-sum bound; on
			// this instance the optimum is unique, so they must agree.
			t.Fatalf("workers=%d: cost %d != sequential %d", w, res.Cost, seq.Cost)
		}
	}
}

// TestSolveContextCanceled: a canceled context falls back to the FFD
// seed (like an expired timeout) instead of erroring.
func TestSolveContextCanceled(t *testing.T) {
	c := mkCluster(2, 1, 4096)
	c.AddVM(vjob.NewVM("v", "j", 1, 512))
	if err := c.SetSleeping("v", "n01"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := Problem{Src: c, Target: map[string]vjob.State{"j": vjob.Running}}
	for _, w := range []int{1, 4} {
		res, err := Optimizer{Workers: w}.SolveContext(ctx, p)
		if err != nil {
			t.Fatalf("workers=%d: err = %v", w, err)
		}
		if res.Optimal {
			t.Fatalf("workers=%d: canceled search must not claim optimality", w)
		}
		if res.Dst.StateOf("v") != vjob.Running || !res.Dst.Viable() {
			t.Fatalf("workers=%d: fallback result unusable", w)
		}
	}
}

// TestSolveContextCanceledNoSeed: with no heuristic fallback either,
// cancellation surfaces as ErrNoViableConfiguration.
func TestSolveContextCanceledNoSeed(t *testing.T) {
	c := mkCluster(1, 1, 4096)
	c.AddVM(vjob.NewVM("a", "j", 1, 512))
	c.AddVM(vjob.NewVM("b", "j", 1, 512))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := Problem{Src: c, Target: map[string]vjob.State{"j": vjob.Running}}
	for _, w := range []int{1, 4} {
		o := Optimizer{Workers: w}
		if _, err := o.SolveContext(ctx, p); !errors.Is(err, ErrNoViableConfiguration) {
			t.Fatalf("workers=%d: err = %v, want ErrNoViableConfiguration", w, err)
		}
	}
}

// TestProductionModelCloneable: the full §4.3 model — packings, rules
// and the closure-based cost-bound propagator (via its Rebind hook) —
// must survive cp.Solver.Clone, so cp-level portfolio search works on
// real optimizer models too.
func TestProductionModelCloneable(t *testing.T) {
	p := portfolioProblem(1)
	p.Rules = []PlacementRule{Spread{VMs: []string{"j0-0", "j1-0"}}}
	o := Optimizer{}
	c, err := o.compile(p)
	if err != nil {
		t.Fatal(err)
	}
	m, err := o.buildModel(p, c, o.baseStrategy())
	if err != nil {
		t.Fatal(err)
	}
	clone, remap, err := m.s.Clone()
	if err != nil {
		t.Fatalf("production model not cloneable: %v", err)
	}
	cvars := make([]*cp.IntVar, len(m.vars))
	for i, v := range m.vars {
		cvars[i] = remap(v)
	}
	if _, err := clone.Solve(cp.Options{Vars: cvars, FirstFail: true}); err != nil {
		t.Fatalf("clone does not solve: %v", err)
	}
}

// TestPortfolioRespectsRules: placement rules hold under every worker
// width.
func TestPortfolioRespectsRules(t *testing.T) {
	c := mkCluster(4, 2, 4096)
	for i := 0; i < 3; i++ {
		v := vjob.NewVM(fmt.Sprintf("ha-%d", i), "ha", 1, 1024)
		c.AddVM(v)
		mustRun(t, c, v.Name, "n00")
	}
	p := Problem{
		Src:    c,
		Target: map[string]vjob.State{"ha": vjob.Running},
		Rules:  []PlacementRule{Spread{VMs: []string{"ha-0", "ha-1", "ha-2"}}},
	}
	for _, w := range []int{1, 4} {
		res, err := Optimizer{Workers: w, Timeout: 5 * time.Second}.Solve(p)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		hosts := map[string]bool{}
		for i := 0; i < 3; i++ {
			hosts[res.Dst.HostOf(fmt.Sprintf("ha-%d", i))] = true
		}
		if len(hosts) != 3 {
			t.Fatalf("workers=%d: spread violated: %v", w, hosts)
		}
	}
}
