package monitor

import (
	"sort"
	"sync"

	"cwcs/internal/core"
	"cwcs/internal/resources"
	"cwcs/internal/sim"
	"cwcs/internal/vjob"
)

// TransferVJob is the pseudo-vjob charged with transfer-born NIC
// violations (sim.TransferViolations): migration streams starving a
// node's service traffic are exposure no single guest caused, so they
// get their own ledger row instead of polluting a real vjob's.
const TransferVJob = "(transfers)"

// Attribution keys one ledger atom: the vjob charged, the violated
// node and the over-committed resource dimension.
type Attribution struct {
	VJob string
	Node string
	Kind string
}

// Entry is one aggregated attribution row, as served by GET
// /v1/violations and the labeled /metrics counters. Fields not part of
// the aggregation level are empty (a per-vjob total has no Node).
type Entry struct {
	VJob    string  `json:"vjob,omitempty"`
	Node    string  `json:"node,omitempty"`
	Kind    string  `json:"kind,omitempty"`
	Seconds float64 `json:"seconds"`
}

// RuleEntry is one rule kind's structural-breach integral.
type RuleEntry struct {
	Rule    string  `json:"rule"`
	Seconds float64 `json:"seconds"`
}

// Summary is one ranked row of a top-K query: the entity's total
// violation-seconds plus its per-dimension breakdown.
type Summary struct {
	VJob    string             `json:"vjob,omitempty"`
	Node    string             `json:"node,omitempty"`
	Seconds float64            `json:"seconds"`
	Kinds   map[string]float64 `json:"kinds,omitempty"`
}

// Ledger attributes violation-seconds to entities. Where
// WatchViolationSeconds historically integrated one anonymous count,
// the ledger integrates atoms keyed (vjob, node, kind): every violated
// (node, dimension) interval charges its full duration to exactly one
// vjob — the dominant consumer, the running VM with the largest demand
// on the violated dimension (smallest name on ties), resolved to its
// owning vjob — so per-vjob, per-node and per-dimension sums all
// reconcile with the aggregate by construction. Transfer violations
// charge TransferVJob. When a rule source is attached, breached
// placement rules (Spread/Fence/Gather/Drained/Ban) additionally
// integrate per-rule-kind breach-seconds on the same clock.
//
// Sampling reproduces the legacy integral's semantics exactly: the
// violation set observed at one advance is integrated over the
// interval up to the next advance. A nil *Ledger is inert — every
// method is nil-safe and free — mirroring the obs tracer discipline.
//
// The ledger locks around its state, so HTTP handlers may read it
// while the simulation advances; reads never block the sim for longer
// than a map copy.
type Ledger struct {
	mu      sync.Mutex
	atoms   map[Attribution]float64
	rules   map[string]float64
	rulesFn func() []core.PlacementRule

	lastT        float64
	pending      []Attribution
	pendingRules []string
}

// WatchLedger attaches a new attribution ledger to the cluster: every
// simulation advance integrates the previously observed violation set
// and re-samples. rules, when non-nil, supplies the placement rules
// whose structural breaches are integrated per rule kind (the loop's
// administrator rules plus the live drain rules).
func WatchLedger(c *sim.Cluster, rules func() []core.PlacementRule) *Ledger {
	l := &Ledger{
		atoms:   make(map[Attribution]float64),
		rules:   make(map[string]float64),
		rulesFn: rules,
	}
	c.OnAdvance(func() { l.advance(c) })
	return l
}

// advance charges the pending violation set over the elapsed interval,
// then re-samples the current one. The guard and ordering mirror the
// historical WatchViolationSeconds closure: time must strictly move,
// and the set sampled *before* an interval is the one integrated over
// it.
func (l *Ledger) advance(c *sim.Cluster) {
	now := c.Now()
	l.mu.Lock()
	if now > l.lastT {
		dt := now - l.lastT
		for _, k := range l.pending {
			l.atoms[k] += dt
		}
		for _, r := range l.pendingRules {
			l.rules[r] += dt
		}
		l.lastT = now
	}
	l.mu.Unlock()
	l.sample(c)
}

// sample records the current violation set (with its dominant-consumer
// attribution) and the breached rule kinds as the charges of the next
// interval. The viable fast path allocates nothing beyond what
// Violations() itself does.
func (l *Ledger) sample(c *sim.Cluster) {
	cfg := c.Config()
	viols := cfg.Violations()
	tviols := c.TransferViolations()
	var pending []Attribution
	if n := len(viols) + len(tviols); n > 0 {
		pending = make([]Attribution, 0, n)
		dom := dominantConsumers(cfg, viols)
		for _, v := range viols {
			pending = append(pending, Attribution{
				VJob: dom[nodeDim{v.Node, v.Resource}],
				Node: v.Node,
				Kind: v.Resource,
			})
		}
		for _, v := range tviols {
			pending = append(pending, Attribution{VJob: TransferVJob, Node: v.Node, Kind: v.Resource})
		}
	}
	var breached []string
	if l.rulesFn != nil {
		for _, r := range l.rulesFn() {
			if r.Check(cfg) != nil {
				breached = append(breached, RuleKind(r))
			}
		}
	}
	l.mu.Lock()
	l.pending, l.pendingRules = pending, breached
	l.mu.Unlock()
}

// nodeDim keys a violation by node and dimension.
type nodeDim struct{ node, kind string }

// dominantConsumers resolves, for every violated (node, dimension),
// the vjob of the running VM with the largest demand on that
// dimension (smallest VM name on ties; the VM's own name when it has
// no vjob). One O(VMs) pass, only taken while violations exist.
func dominantConsumers(cfg *vjob.Configuration, viols []vjob.Violation) map[nodeDim]string {
	if len(viols) == 0 {
		return nil
	}
	kinds := make(map[string][]resources.Kind, len(viols))
	for _, v := range viols {
		if k, ok := kindByName(v.Resource); ok {
			kinds[v.Node] = append(kinds[v.Node], k)
		}
	}
	type top struct {
		demand int
		vm     string
		owner  string
	}
	best := make(map[nodeDim]top, len(viols))
	for _, vm := range cfg.VMs() {
		if cfg.StateOf(vm.Name) != vjob.Running {
			continue
		}
		host := cfg.HostOf(vm.Name)
		ks, hot := kinds[host]
		if !hot {
			continue
		}
		for _, k := range ks {
			d := vm.Demand.Get(k)
			if d == 0 {
				continue
			}
			key := nodeDim{host, k.String()}
			cur, ok := best[key]
			if !ok || d > cur.demand || (d == cur.demand && vm.Name < cur.vm) {
				owner := vm.VJob
				if owner == "" {
					owner = vm.Name
				}
				best[key] = top{demand: d, vm: vm.Name, owner: owner}
			}
		}
	}
	out := make(map[nodeDim]string, len(best))
	for key, t := range best {
		out[key] = t.owner
	}
	return out
}

// kindByName resolves a violation's wire name back to its registered
// resource kind.
func kindByName(name string) (resources.Kind, bool) {
	for _, k := range resources.Kinds() {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

// RuleKind names a placement rule's kind for attribution ("spread",
// "fence", "gather", "drained", "ban"; "other" for host-defined
// rules).
func RuleKind(r core.PlacementRule) string {
	switch r.(type) {
	case core.Spread, *core.Spread:
		return "spread"
	case core.Fence, *core.Fence:
		return "fence"
	case core.Gather, *core.Gather:
		return "gather"
	case core.Drained, *core.Drained:
		return "drained"
	case core.Ban, *core.Ban:
		return "ban"
	default:
		return "other"
	}
}

// snapshot copies the atoms in canonical (vjob, node, kind) order.
func (l *Ledger) snapshot() []Entry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := make([]Entry, 0, len(l.atoms))
	for k, sec := range l.atoms {
		out = append(out, Entry{VJob: k.VJob, Node: k.Node, Kind: k.Kind, Seconds: sec})
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.VJob != b.VJob {
			return a.VJob < b.VJob
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Kind < b.Kind
	})
	return out
}

// Atoms returns the finest-grain ledger rows — one per charged (vjob,
// node, kind) — in canonical (vjob, node, kind) order. Every
// aggregation below folds these same values, so regrouped sums differ
// from the aggregate only by the float fold order each accessor
// documents.
func (l *Ledger) Atoms() []Entry { return l.snapshot() }

// VJobTotals returns one row per charged vjob, name-sorted. Each
// total folds the vjob's atoms in canonical (node, kind) order, and
// Total folds these rows in this exact order — so
// sum(VJobTotals().Seconds) == Total() bitwise, the conservation
// property the attribution test pins.
func (l *Ledger) VJobTotals() []Entry {
	return foldBy(l.snapshot(), func(e Entry) Entry { return Entry{VJob: e.VJob} })
}

// VJobKinds returns one row per (vjob, dimension), vjob-major — the
// cwcs_violation_seconds_total{vjob,kind} samples.
func (l *Ledger) VJobKinds() []Entry {
	return foldBy(l.snapshot(), func(e Entry) Entry { return Entry{VJob: e.VJob, Kind: e.Kind} })
}

// NodeKinds returns one row per (node, dimension), node-major — the
// cwcs_violation_seconds_total{node,kind} samples. Each row folds its
// atoms in canonical vjob order.
func (l *Ledger) NodeKinds() []Entry {
	out := foldBy(l.snapshot(), func(e Entry) Entry { return Entry{Node: e.Node, Kind: e.Kind} })
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// NodeTotals returns one row per charged node, name-sorted, each
// folding the node's atoms in canonical order.
func (l *Ledger) NodeTotals() []Entry {
	out := foldBy(l.snapshot(), func(e Entry) Entry { return Entry{Node: e.Node} })
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// foldBy sums canonical-order atoms into one row per projection key,
// preserving first-seen (canonical) row order.
func foldBy(atoms []Entry, key func(Entry) Entry) []Entry {
	if len(atoms) == 0 {
		return nil // keeps the nil-ledger accessors allocation-free
	}
	var out []Entry
	idx := make(map[Entry]int)
	for _, a := range atoms {
		k := key(a)
		i, ok := idx[k]
		if !ok {
			i = len(out)
			idx[k] = i
			out = append(out, k)
		}
		out[i].Seconds += a.Seconds
	}
	return out
}

// Total returns the aggregate violation-seconds integral: the fold of
// VJobTotals in its (name-sorted) order. This is the value
// WatchViolationSeconds now reports — the per-entity decomposition
// and the aggregate are the same numbers grouped the same way.
func (l *Ledger) Total() float64 {
	total := 0.0
	for _, e := range l.VJobTotals() {
		total += e.Seconds
	}
	return total
}

// TransferSeconds returns the share charged to in-flight transfers.
func (l *Ledger) TransferSeconds() float64 {
	total := 0.0
	for _, e := range l.VJobTotals() {
		if e.VJob == TransferVJob {
			total += e.Seconds
		}
	}
	return total
}

// RuleSeconds returns the per-rule-kind structural-breach integrals,
// rule-name sorted. Empty without an attached rule source or when no
// rule ever broke.
func (l *Ledger) RuleSeconds() []RuleEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := make([]RuleEntry, 0, len(l.rules))
	for r, sec := range l.rules {
		out = append(out, RuleEntry{Rule: r, Seconds: sec})
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Rule < out[j].Rule })
	return out
}

// RuleBreachSeconds sums RuleSeconds across rule kinds.
func (l *Ledger) RuleBreachSeconds() float64 {
	total := 0.0
	for _, e := range l.RuleSeconds() {
		total += e.Seconds
	}
	return total
}

// TopVJobs ranks the charged vjobs by violation-seconds (descending,
// name ascending on ties) with per-dimension breakdowns, truncated to
// k rows (all when k <= 0).
func (l *Ledger) TopVJobs(k int) []Summary {
	return topBy(l.VJobKinds(), k, func(e Entry) string { return e.VJob }, func(name string) Summary { return Summary{VJob: name} })
}

// TopNodes ranks the violated nodes the same way.
func (l *Ledger) TopNodes(k int) []Summary {
	return topBy(l.NodeKinds(), k, func(e Entry) string { return e.Node }, func(name string) Summary { return Summary{Node: name} })
}

// topBy groups per-dimension rows by entity, ranks and truncates.
func topBy(rows []Entry, k int, key func(Entry) string, mk func(string) Summary) []Summary {
	if len(rows) == 0 {
		return nil // keeps the nil-ledger accessors allocation-free
	}
	var out []Summary
	idx := make(map[string]int)
	for _, r := range rows {
		name := key(r)
		i, ok := idx[name]
		if !ok {
			i = len(out)
			idx[name] = i
			s := mk(name)
			s.Kinds = make(map[string]float64)
			out = append(out, s)
		}
		out[i].Seconds += r.Seconds
		out[i].Kinds[r.Kind] += r.Seconds
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seconds != out[j].Seconds {
			return out[i].Seconds > out[j].Seconds
		}
		return out[i].VJob+out[i].Node < out[j].VJob+out[j].Node
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
