package packing

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"cwcs/internal/resources"
	"cwcs/internal/vjob"
)

func testCluster(nodes, cpu, mem int) *vjob.Configuration {
	c := vjob.NewConfiguration()
	for i := 0; i < nodes; i++ {
		c.AddNode(vjob.NewNode(fmt.Sprintf("n%02d", i), cpu, mem))
	}
	return c
}

func addVMs(c *vjob.Configuration, specs ...[2]int) []*vjob.VM {
	var vms []*vjob.VM
	for i, s := range specs {
		v := vjob.NewVM(fmt.Sprintf("vm%02d", i), "j", s[0], s[1])
		c.AddVM(v)
		vms = append(vms, v)
	}
	return vms
}

func TestSortDecreasing(t *testing.T) {
	c := testCluster(1, 8, 8192)
	vms := addVMs(c, [2]int{1, 512}, [2]int{0, 2048}, [2]int{1, 2048}, [2]int{1, 1024})
	SortDecreasing(vms)
	wantOrder := []string{"vm02", "vm01", "vm03", "vm00"}
	for i, w := range wantOrder {
		if vms[i].Name != w {
			t.Fatalf("order[%d] = %s, want %s", i, vms[i].Name, w)
		}
	}
}

func TestFFDPlacesAll(t *testing.T) {
	c := testCluster(3, 2, 4096)
	vms := addVMs(c,
		[2]int{1, 2048}, [2]int{1, 2048}, [2]int{1, 2048},
		[2]int{1, 1024}, [2]int{1, 1024}, [2]int{1, 1024})
	if err := FirstFitDecrease(c, vms); err != nil {
		t.Fatal(err)
	}
	if !c.Viable() {
		t.Fatalf("FFD produced non-viable config: %v", c.Violations())
	}
	for _, v := range vms {
		if c.StateOf(v.Name) != vjob.Running {
			t.Fatalf("%s not running", v.Name)
		}
	}
}

func TestFFDOrderMatters(t *testing.T) {
	// Two nodes with 3 GiB; VMs 2+1 GiB per node fit only when the
	// 2 GiB VMs are placed first (decreasing order).
	c := testCluster(2, 2, 3072)
	vms := addVMs(c, [2]int{1, 1024}, [2]int{1, 2048}, [2]int{1, 1024}, [2]int{1, 2048})
	if err := FirstFitDecrease(c, vms); err != nil {
		t.Fatal(err)
	}
	if !c.Viable() {
		t.Fatal("non-viable")
	}
}

func TestFFDNoFit(t *testing.T) {
	c := testCluster(1, 1, 1024)
	vms := addVMs(c, [2]int{1, 512}, [2]int{1, 512})
	err := FirstFitDecrease(c, vms)
	var nf ErrNoFit
	if !errors.As(err, &nf) {
		t.Fatalf("err = %v, want ErrNoFit", err)
	}
	if nf.Error() == "" {
		t.Fatal("empty error text")
	}
	// On failure the configuration must be untouched.
	for _, v := range vms {
		if c.StateOf(v.Name) != vjob.Waiting {
			t.Fatalf("%s mutated on failed placement", v.Name)
		}
	}
}

func TestFFDRespectsExistingLoad(t *testing.T) {
	c := testCluster(2, 1, 4096)
	busy := vjob.NewVM("busy", "x", 1, 1024)
	c.AddVM(busy)
	if err := c.SetRunning("busy", "n00"); err != nil {
		t.Fatal(err)
	}
	vms := addVMs(c, [2]int{1, 512})
	if err := FirstFitDecrease(c, vms); err != nil {
		t.Fatal(err)
	}
	if c.HostOf("vm00") != "n01" {
		t.Fatalf("vm placed on %s, want n01 (n00 CPU is taken)", c.HostOf("vm00"))
	}
}

func TestBFDPacksTighter(t *testing.T) {
	// n00 has a 1 GiB hole, n01 a 2 GiB hole. BFD must put a 1 GiB VM
	// in the 1 GiB hole; FFD puts it on the first fitting node.
	c := testCluster(2, 4, 4096)
	a := vjob.NewVM("a", "x", 1, 3072)
	b := vjob.NewVM("b", "x", 1, 2048)
	c.AddVM(a)
	c.AddVM(b)
	if err := c.SetRunning("a", "n00"); err != nil {
		t.Fatal(err)
	}
	if err := c.SetRunning("b", "n01"); err != nil {
		t.Fatal(err)
	}
	vms := addVMs(c, [2]int{1, 1024})
	if err := BestFitDecrease(c, vms); err != nil {
		t.Fatal(err)
	}
	if c.HostOf("vm00") != "n00" {
		t.Fatalf("BFD placed on %s, want n00", c.HostOf("vm00"))
	}
}

func TestBFDNoFit(t *testing.T) {
	c := testCluster(1, 0, 0)
	vms := addVMs(c, [2]int{1, 1})
	var nf ErrNoFit
	if err := BestFitDecrease(c, vms); !errors.As(err, &nf) {
		t.Fatalf("err = %v, want ErrNoFit", err)
	}
}

func TestMaxReachableLoad(t *testing.T) {
	cases := []struct {
		cap     int
		weights []int
		want    int
	}{
		{10, []int{3, 5, 7}, 10},      // 3+7
		{10, []int{6, 6, 6}, 6},       // only one fits
		{4, []int{5, 9}, 0},           // nothing fits
		{0, []int{1, 2}, 0},           // no capacity
		{-3, []int{1}, 0},             // negative capacity
		{100, nil, 0},                 // no items
		{8, []int{2, 2, 2, 2}, 8},     // exact fill
		{7, []int{4, 4}, 4},           // cannot take both
		{1000, []int{999, 2}, 999},    // big single item wins
		{64, []int{64}, 64},           // word-boundary weight
		{65, []int{64, 1}, 65},        // crosses word boundary
		{128, []int{127, 2, 1}, 128},  // multi-word
		{10, []int{0, -2, 3}, 3},      // non-positive weights ignored
		{200, []int{70, 70, 70}, 140}, // two of three
	}
	for _, tc := range cases {
		if got := MaxReachableLoad(tc.cap, tc.weights); got != tc.want {
			t.Errorf("MaxReachableLoad(%d,%v) = %d, want %d", tc.cap, tc.weights, got, tc.want)
		}
	}
}

func TestReachable(t *testing.T) {
	if !Reachable(0, []int{5}) {
		t.Fatal("0 must always be reachable")
	}
	if Reachable(-1, []int{5}) {
		t.Fatal("negative target reachable")
	}
	if !Reachable(12, []int{3, 4, 5}) {
		t.Fatal("12 = 3+4+5 not found")
	}
	if Reachable(11, []int{3, 4, 5}) {
		t.Fatal("11 wrongly reachable from {3,4,5}")
	}
}

// Property: MaxReachableLoad matches a brute-force subset enumeration
// for small inputs.
func TestMaxReachableLoadMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10)
		weights := make([]int, n)
		for i := range weights {
			weights[i] = rng.Intn(40)
		}
		cap := rng.Intn(120)
		best := 0
		for mask := 0; mask < 1<<n; mask++ {
			sum := 0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					sum += weights[i]
				}
			}
			if sum <= cap && sum > best {
				best = sum
			}
		}
		return MaxReachableLoad(cap, weights) == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: FFD output is always viable and deterministic.
func TestFFDViableAndDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c1 := testCluster(1+rng.Intn(6), 2, 4096)
		var specs [][2]int
		for i := 0; i < rng.Intn(10); i++ {
			specs = append(specs, [2]int{rng.Intn(2), 256 * (1 + rng.Intn(8))})
		}
		c2 := c1.Clone()
		vms1 := addVMs(c1, specs...)
		vms2 := addVMs(c2, specs...)
		err1 := FirstFitDecrease(c1, vms1)
		err2 := FirstFitDecrease(c2, vms2)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return c1.Viable() && c1.Equal(c2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRepackCreditsFreedHost: re-placing an already-running VM frees
// its old host for later VMs of the same pass (regression for the
// incremental free-resource rewrite, which initially dropped the
// credit the clone-based implementation gave).
func TestRepackCreditsFreedHost(t *testing.T) {
	c := testCluster(2, 2, 2048)
	vms := addVMs(c, [2]int{1, 2048}, [2]int{1, 2048})
	if err := c.SetRunning("vm00", "n00"); err != nil {
		t.Fatal(err)
	}
	// vm00 (running on n00) is re-placed onto n01 — n00 cannot host it
	// while it still occupies the node — and vm01 must then fit on the
	// freed n00.
	if err := FirstFitDecrease(c, vms); err != nil {
		t.Fatalf("freed host not credited: %v", err)
	}
	if !c.Viable() {
		t.Fatalf("non-viable packing:\n%s", c)
	}
	if err := c.SetWaiting("vm00"); err != nil {
		t.Fatal(err)
	}
	if err := c.SetWaiting("vm01"); err != nil {
		t.Fatal(err)
	}
	if err := c.SetRunning("vm00", "n00"); err != nil {
		t.Fatal(err)
	}
	if err := BestFitDecrease(c, vms); err != nil {
		t.Fatalf("best-fit freed host not credited: %v", err)
	}
	if !c.Viable() {
		t.Fatalf("non-viable best-fit packing:\n%s", c)
	}
}

// TestSortByDominantShare: a net-hungry VM outranks a bigger-in-memory
// compute VM once shares are weighted by cluster capacity.
func TestSortByDominantShare(t *testing.T) {
	total := resources.New(100, 100000)
	total.Set(resources.NetBW, 1000)
	netVM := vjob.NewVMRes("net", "", func() resources.Vector {
		d := resources.New(1, 1024)
		d.Set(resources.NetBW, 500) // 50% of cluster net
		return d
	}())
	memVM := vjob.NewVM("mem", "", 1, 4096) // ~4% of cluster memory
	got := SortByDominantShare(total, []*vjob.VM{memVM, netVM})
	if got[0].Name != "net" {
		t.Fatalf("order = [%s %s]", got[0].Name, got[1].Name)
	}
	// Ties fall back to the §3.2 (memory, CPU, name) ordering.
	a := vjob.NewVM("a", "", 1, 2048)
	b := vjob.NewVM("b", "", 1, 1024)
	tied := SortByDominantShare(resources.New(100, 100000), []*vjob.VM{b, a})
	if tied[0].Name != "a" {
		t.Fatalf("tie order = [%s %s]", tied[0].Name, tied[1].Name)
	}
}

// TestFFDMultiDimension: first-fit must respect every dimension — two
// net-heavy VMs that fit one node on CPU/memory spread across nodes —
// and pure 2-D inputs keep the historical (memory, CPU) ordering.
func TestFFDMultiDimension(t *testing.T) {
	cfg := vjob.NewConfiguration()
	cap := resources.New(4, 8192)
	cap.Set(resources.NetBW, 100)
	cfg.AddNode(vjob.NewNodeRes("n1", cap))
	cfg.AddNode(vjob.NewNodeRes("n2", cap))
	d := resources.New(1, 512)
	d.Set(resources.NetBW, 60)
	v1 := vjob.NewVMRes("v1", "", d)
	v2 := vjob.NewVMRes("v2", "", d)
	cfg.AddVM(v1)
	cfg.AddVM(v2)
	if err := FirstFitDecrease(cfg, []*vjob.VM{v1, v2}); err != nil {
		t.Fatal(err)
	}
	if cfg.HostOf("v1") == cfg.HostOf("v2") {
		t.Fatalf("net-heavy VMs packed together on %s", cfg.HostOf("v1"))
	}
	if !cfg.Viable() {
		t.Fatalf("FFD produced violations: %v", cfg.Violations())
	}
	// Over-subscribing the dimension reports the culprit.
	v3 := vjob.NewVMRes("v3", "", d)
	cfg.AddVM(v3)
	v4 := vjob.NewVMRes("v4", "", d)
	cfg.AddVM(v4)
	err := FirstFitDecrease(cfg, []*vjob.VM{v3, v4})
	var nf ErrNoFit
	if !errors.As(err, &nf) {
		t.Fatalf("err = %v, want ErrNoFit", err)
	}
}

// TestBFDMultiDimension: best-fit honours the extra dimensions too.
func TestBFDMultiDimension(t *testing.T) {
	cfg := vjob.NewConfiguration()
	cap := resources.New(4, 8192)
	cap.Set(resources.DiskIO, 100)
	cfg.AddNode(vjob.NewNodeRes("n1", cap))
	cfg.AddNode(vjob.NewNodeRes("n2", cap))
	d := resources.New(1, 512)
	d.Set(resources.DiskIO, 70)
	v1 := vjob.NewVMRes("v1", "", d)
	v2 := vjob.NewVMRes("v2", "", d)
	cfg.AddVM(v1)
	cfg.AddVM(v2)
	if err := BestFitDecrease(cfg, []*vjob.VM{v1, v2}); err != nil {
		t.Fatal(err)
	}
	if !cfg.Viable() {
		t.Fatalf("BFD produced violations: %v", cfg.Violations())
	}
}
