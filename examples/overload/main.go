// Overload: the paper's headline scenario in miniature. A cluster
// hosts more computing vjobs than it has processing units; the sample
// dynamic-consolidation decision module suspends the lowest-priority
// vjob to restore viability, and resumes it — locally, for the cheap
// Dm cost — once a higher-priority vjob terminates. The whole life
// cycle runs on the simulator with realistic action durations.
package main

import (
	"fmt"
	"log"

	"cwcs/internal/core"
	"cwcs/internal/drivers"
	"cwcs/internal/duration"
	"cwcs/internal/plan"
	"cwcs/internal/sched"
	"cwcs/internal/sim"
	"cwcs/internal/vjob"
)

func main() {
	// Two uniprocessor nodes: at most two computing VMs are viable.
	cfg := vjob.NewConfiguration()
	cfg.AddNode(vjob.NewNode("n1", 1, 4096))
	cfg.AddNode(vjob.NewNode("n2", 1, 4096))
	c := sim.New(cfg, duration.Default())

	// Three single-VM vjobs: 30 s of input staging (no CPU) then 5
	// minutes of compute. During staging everything fits, so the
	// consolidation packs all three; once they all compute the cluster
	// is overloaded and the lowest-priority vjob gets suspended — the
	// paper's "overloaded cluster" situation.
	jobs := make([]*vjob.VJob, 3)
	for i := range jobs {
		name := fmt.Sprintf("job%d", i+1)
		v := vjob.NewVM(name+"-0", name, 1, 1024)
		jobs[i] = vjob.NewVJob(name, i+1, v)
		cfg.AddVM(v)
		c.SetWorkload(v.Name, []sim.Phase{
			{CPU: 0, Seconds: 30},
			{CPU: 1, Seconds: 300},
		})
	}

	loop := &core.Loop{
		Decision: sched.Consolidation{},
		Interval: 30,
		Queue:    func() []*vjob.VJob { return jobs },
		Done: func() bool {
			for _, j := range jobs {
				if !c.VJobDone(j) {
					return false
				}
			}
			return true
		},
		OnSwitch: func(r core.SwitchRecord) {
			fmt.Printf("[t=%4.0fs] context switch: cost=%d, %d actions in %d pools, took %.0fs\n",
				r.At, r.Cost, r.Actions, r.Pools, r.Duration)
		},
	}

	// Stop vjobs once their application signals completion.
	stopped := map[string]bool{}
	doneAt := -1.0
	var reap func()
	reap = func() {
		all := true
		for _, j := range jobs {
			if !c.VJobDone(j) {
				all = false
				continue
			}
			for _, v := range j.VMs {
				if !stopped[v.Name] && cfg.StateOf(v.Name) == vjob.Running {
					stopped[v.Name] = true
					fmt.Printf("[t=%4.0fs] %s finished; stopping %s\n", c.Now(), j.Name, v.Name)
					c.StartAction(&plan.Stop{Machine: v, On: cfg.HostOf(v.Name)}, nil)
				}
			}
		}
		if all {
			doneAt = c.Now()
			return
		}
		c.Schedule(c.Now()+10, reap)
	}
	c.Schedule(10, reap)

	fmt.Println("three 1-CPU vjobs compete for two processing units;")
	fmt.Println("watch job3 wait, run, and job resumes stay local:")
	loop.Start(&drivers.Actuator{C: c})
	c.Run(5_000)

	for _, j := range jobs {
		if !c.VJobDone(j) {
			log.Fatalf("%s never completed", j.Name)
		}
	}
	local, remote := c.TransferCounts()
	fmt.Printf("\nall vjobs done at t=%.0fs; actions %v; %d local / %d remote transfers\n",
		doneAt, c.ActionCounts(), local, remote)
}
