package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cwcs/internal/core"
	"cwcs/internal/monitor"
)

// -update regenerates the golden files instead of comparing, for when
// a CSV schema change is intentional:
//
//	go test ./internal/experiments -run Golden -update
var update = flag.Bool("update", false, "rewrite the CSV golden files")

// checkGolden compares got with testdata/<name> (or rewrites it under
// -update). The golden files pin the exact bytes of the figure-data
// exports: external plotting pipelines parse them, so drift must be a
// deliberate, reviewed change.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("%s drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestGoldenFig3CSV(t *testing.T) {
	// Fig3 is fully deterministic: it measures the calibrated duration
	// model through the simulator.
	checkGolden(t, "fig3.csv.golden", Fig3CSV(Fig3(512, 1024, 2048)))
}

func TestGoldenFig10CSV(t *testing.T) {
	rows := []Fig10Row{
		{VMs: 54, Samples: 30, FFDMean: 10240, EntropyMean: 1024, ReductionPct: 90},
		{VMs: 108, Samples: 30, FFDMean: 20480, EntropyMean: 4096, ReductionPct: 80},
		{VMs: 162, Samples: 29, FFDMean: 30720, EntropyMean: 10240, ReductionPct: 66.7},
	}
	checkGolden(t, "fig10.csv.golden", Fig10CSV(rows))
}

func TestGoldenFig11CSV(t *testing.T) {
	res := ClusterResult{Records: []core.SwitchRecord{
		{At: 30, Cost: 1024, Duration: 19.5, Actions: 3, Pools: 2},
		{At: 120, Cost: 6144, Duration: 74.2, Actions: 11, Pools: 3, Failures: 1},
	}}
	checkGolden(t, "fig11.csv.golden", Fig11CSV(res))
}

func TestGoldenFig13CSV(t *testing.T) {
	fcfs := ClusterResult{Samples: []monitor.Sample{
		{T: 10, UsedCPU: 2, CapCPU: 22, UsedMem: 4096, CapMem: 39424, Running: 9, Waiting: 63},
		{T: 20, UsedCPU: 11, CapCPU: 22, UsedMem: 18432, CapMem: 39424, Running: 27, Waiting: 45},
	}}
	entropy := ClusterResult{Samples: []monitor.Sample{
		{T: 10, UsedCPU: 20, CapCPU: 22, UsedMem: 30720, CapMem: 39424, Running: 45, Sleeping: 9, Waiting: 18},
	}}
	got := Fig13CSV(fcfs, entropy)
	// The blocks must be ordered fcfs-then-entropy on every run (a map
	// iteration here used to shuffle them).
	if got != Fig13CSV(fcfs, entropy) {
		t.Fatal("Fig13CSV not deterministic")
	}
	checkGolden(t, "fig13.csv.golden", got)
}
