package plan

import (
	"fmt"
	"sort"
	"strings"

	"cwcs/internal/vjob"
)

// Pool is a set of actions that are feasible in parallel: every action
// of a pool can start as soon as the previous pool has completed.
type Pool []Action

// Cost of a pool is the cost of its most expensive action (§4.2).
func (p Pool) Cost() int {
	max := 0
	for _, a := range p {
		if c := a.Cost(); c > max {
			max = c
		}
	}
	return max
}

// sortDeterministic orders the actions of the pool by kind then VM
// name, which both stabilizes output and matches the paper's
// "sorted using the hostname of the VMs" pipelining rule (our VM names
// embed their vjob, giving the same grouping effect).
func (p Pool) sortDeterministic() {
	sort.SliceStable(p, func(i, j int) bool {
		ki, kj := actionKind(p[i]), actionKind(p[j])
		if ki != kj {
			return ki < kj
		}
		return p[i].VM().Name < p[j].VM().Name
	})
}

func actionKind(a Action) int {
	switch a.(type) {
	case *Suspend:
		return 0
	case *Stop:
		return 1
	case *Migration:
		return 2
	case *Resume:
		return 3
	case *Run:
		return 4
	default:
		return 5
	}
}

// Plan is a reconfiguration plan: a sequence of pools executed one
// after the other, the actions inside a pool running in parallel. A
// valid plan guarantees that each action is feasible at the time it
// starts and that the final configuration equals the destination of
// the reconfiguration graph it was built from.
type Plan struct {
	// Src is the configuration the plan starts from.
	Src *vjob.Configuration
	// Pools are the sequential steps of the plan.
	Pools []Pool
	// Bypass counts the extra migrations inserted to break
	// inter-dependent migration cycles.
	Bypass int
}

// NumActions returns the total number of actions across pools.
func (p *Plan) NumActions() int {
	n := 0
	for _, pool := range p.Pools {
		n += len(pool)
	}
	return n
}

// Actions returns all actions in execution order (pool by pool).
func (p *Plan) Actions() []Action {
	out := make([]Action, 0, p.NumActions())
	for _, pool := range p.Pools {
		out = append(out, pool...)
	}
	return out
}

// Cost evaluates the plan with the model of §4.2: the cost of the plan
// is the sum of the total costs of its actions; the total cost of an
// action is the sum of the costs of the preceding pools plus the local
// cost of the action; the cost of a pool is the cost of its most
// expensive action. The model conservatively assumes that delaying an
// action degrades the context switch.
func (p *Plan) Cost() int {
	total := 0
	elapsed := 0
	for _, pool := range p.Pools {
		for _, a := range pool {
			total += elapsed + a.Cost()
		}
		elapsed += pool.Cost()
	}
	return total
}

// Result replays the plan on a clone of Src and returns the final
// configuration.
func (p *Plan) Result() (*vjob.Configuration, error) {
	cur := p.Src.Clone()
	for i, pool := range p.Pools {
		for _, a := range pool {
			if err := a.Apply(cur); err != nil {
				return nil, fmt.Errorf("plan: pool %d: %w", i, err)
			}
		}
	}
	return cur, nil
}

// Validate replays the plan checking, pool by pool, that every action
// is feasible when its pool starts, that the pool's concurrent
// transfers do not oversubscribe any endpoint's NIC (DESIGN.md §9;
// nodes without a modeled `net` capacity are exempt), and that every
// intermediate configuration stays viable. It returns the first
// problem found.
//
// A context switch may legitimately start from a non-viable
// configuration (that is often why it happens), so the constraint
// bears on what the plan itself creates: only violations the plan
// introduces are errors. A pre-existing overload that persists — or
// shrinks — through the early pools is the cure in progress, not a new
// disease: a plan evacuating an overloaded node keeps a smaller
// violation alive on it until the last migration leaves.
func (p *Plan) Validate() error {
	cur := p.Src.Clone()
	srcViolations := srcOverloads(cur)
	for i, pool := range p.Pools {
		book := newTransferBook(cur)
		for _, a := range pool {
			if !a.FeasibleIn(cur) {
				return fmt.Errorf("plan: pool %d: action %s not feasible at pool start", i, a)
			}
			if !book.fits(a) {
				return fmt.Errorf("plan: pool %d: action %s oversubscribes a NIC", i, a)
			}
			book.admit(a)
		}
		for _, a := range pool {
			if err := a.Apply(cur); err != nil {
				return fmt.Errorf("plan: pool %d: %w", i, err)
			}
		}
		for _, v := range cur.Violations() {
			if introduced(srcViolations, v) {
				return fmt.Errorf("plan: pool %d introduces violation: %v", i, v)
			}
		}
	}
	return nil
}

// srcOverloads maps each violated (node, resource) pair of the
// configuration to its demand, so a replay can tell a pre-existing
// overload the plan is still working off from one the plan created.
func srcOverloads(c *vjob.Configuration) map[string]int {
	m := make(map[string]int)
	for _, v := range c.Violations() {
		m[v.Node+"\x00"+v.Resource] = v.Demand
	}
	return m
}

// introduced reports whether the violation is the plan's own doing:
// the (node, resource) pair was not overloaded in the source
// configuration, or the plan pushed its demand above the source level.
func introduced(src map[string]int, v vjob.Violation) bool {
	d, ok := src[v.Node+"\x00"+v.Resource]
	return !ok || v.Demand > d
}

// String renders the plan pool by pool, with per-pool and total costs.
func (p *Plan) String() string {
	var b strings.Builder
	elapsed := 0
	for i, pool := range p.Pools {
		fmt.Fprintf(&b, "pool %d (cost %d):\n", i, pool.Cost())
		for _, a := range pool {
			fmt.Fprintf(&b, "  %s (local %d, total %d)\n", a, a.Cost(), elapsed+a.Cost())
		}
		elapsed += pool.Cost()
	}
	fmt.Fprintf(&b, "plan cost: %d\n", p.Cost())
	return b.String()
}
