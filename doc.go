// Package cwcs reproduces "Cluster-Wide Context Switch of Virtualized
// Jobs" (Hermenier, Lèbre, Menaud — HPDC 2010 / INRIA RR-6929): the
// Entropy consolidation manager extended with coordinated
// run/stop/migrate/suspend/resume permutations of the cluster's VMs,
// planned for viability and cost-optimized with constraint
// programming.
//
// The root package holds the benchmark harness regenerating the
// paper's tables and figures; the implementation lives under
// internal/ (see DESIGN.md for the map) and the runnable entry points
// under cmd/ and examples/.
//
// Beyond the paper, the daemon grows a control plane: `entropyd
// -listen :8080` mounts the HTTP operator surface of internal/api
// (DESIGN.md §7) — live configuration, executing plan with per-action
// status, Prometheus metrics, event injection, runtime vjob
// submission, and the node-maintenance workflow: POST
// /v1/nodes/{id}/drain installs a Drained placement rule and emits a
// NodeDown event, the event-driven loop evacuates the node's guests,
// and /undrain restores it. On SIGTERM the daemon finishes the
// in-flight context switch before exiting.
//
// The packing model is multi-dimensional (DESIGN.md §8): nodes and VMs
// carry resource vectors over a registry of kinds — CPU, memory,
// network bandwidth, disk I/O — with one viability constraint compiled
// per dimension a workload actually demands, a dominant-resource FFD
// baseline, per-dimension monitoring thresholds, and per-node
// per-dimension gauges on /metrics. Dimensions nothing demands compile
// away, so the paper's CPU+memory instances solve unchanged
// (`experiments multires` quantifies what the 2-D model over-commits
// on heterogeneous clusters).
//
// Context switches are bandwidth-aware (DESIGN.md §9): an executing
// migration (or remote suspend/resume) is charged at its calibrated
// wire rate on the `net` dimension of both endpoints, the plan builder
// refuses pools that oversubscribe a NIC, and the simulator meters
// in-flight transfers — re-timing them as concurrency changes — so
// durations follow actually-available bandwidth instead of memory size
// alone. Clusters without a modeled `net` capacity keep the paper's
// calibrated timings bit-for-bit (`experiments migration` measures the
// violation-seconds a transfer-blind planner buys on a
// NIC-heterogeneous cluster).
//
// The loop's failure envelope is measured, not assumed (DESIGN.md
// §10): a chaos harness replays the churn scenario under correlated
// rack failures, flapping nodes, windowed monitoring-event loss
// (survived via an anti-entropy resync sweep) and action-failure
// storms, plus a trace-replay cell driving the same loop from
// committed, versioned JSONL workload traces (internal/trace).
// `experiments chaos` reports recovery-time distributions
// (p50/p95/max) and structural-breach counts per cell;
// examples/chaos/README.md is the operator cookbook.
//
// Every reconfiguration is causally traced (DESIGN.md §11): an event
// entering the loop opens a reconfig span whose ID threads as the
// cause through debounce, carve, solve, merge, splice and every
// executed action, on both the wall and the virtual clock. Spans land
// in a lock-free ring served as JSONL or a Perfetto-loadable Chrome
// trace on /v1/trace, stream live over SSE on /v1/watch (slow clients
// are dropped, never block the loop), and aggregate into hand-rolled
// Prometheus latency histograms on /metrics. A disabled tracer costs
// zero allocations — pinned by test and by a gated benchmark.
// examples/observability/README.md is the cookbook.
package cwcs
