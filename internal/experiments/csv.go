package experiments

import (
	"fmt"
	"strings"
)

// Fig10CSV renders the scalability rows as CSV for external plotting.
func Fig10CSV(rows []Fig10Row) string {
	var b strings.Builder
	b.WriteString("vms,samples,ffd_mean,entropy_mean,reduction_pct\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%d,%d,%.0f,%.0f,%.1f\n", r.VMs, r.Samples, r.FFDMean, r.EntropyMean, r.ReductionPct)
	}
	return b.String()
}

// Fig3CSV renders the duration study as CSV.
func Fig3CSV(rows []Fig3Row) string {
	var b strings.Builder
	b.WriteString("mem_mib,run_s,stop_s,migrate_s,suspend_local_s,suspend_scp_s,suspend_rsync_s,resume_local_s,resume_scp_s,resume_rsync_s,decel_local,decel_remote\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%d,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f,%.2f,%.2f\n",
			r.MemMiB, r.Run, r.Stop, r.Migrate,
			r.SuspendLocal, r.SuspendSCP, r.SuspendRsync,
			r.ResumeLocal, r.ResumeSCP, r.ResumeRsync,
			r.DecelBusyLocal, r.DecelBusyRemote)
	}
	return b.String()
}

// Fig11CSV renders the context-switch records as CSV.
func Fig11CSV(res ClusterResult) string {
	var b strings.Builder
	b.WriteString("t_s,cost,duration_s,actions,pools,failures\n")
	for _, r := range res.Records {
		fmt.Fprintf(&b, "%.0f,%d,%.1f,%d,%d,%d\n", r.At, r.Cost, r.Duration, r.Actions, r.Pools, r.Failures)
	}
	return b.String()
}

// Fig13CSV renders both utilization time series as CSV, one row per
// sample with a scheduler tag. The fcfs block always precedes the
// entropy block so the output is byte-stable run to run (a map
// iteration here used to shuffle the two).
func Fig13CSV(fcfs, entropy ClusterResult) string {
	var b strings.Builder
	b.WriteString("scheduler,t_s,cpu_used,cpu_cap,cpu_pct,mem_used_mib,mem_cap_mib,running,sleeping,waiting\n")
	for _, block := range []struct {
		tag string
		res ClusterResult
	}{{"fcfs", fcfs}, {"entropy", entropy}} {
		for _, s := range block.res.Samples {
			fmt.Fprintf(&b, "%s,%.0f,%d,%d,%.1f,%d,%d,%d,%d,%d\n",
				block.tag, s.T, s.UsedCPU, s.CapCPU, s.CPUPercent(), s.UsedMem, s.CapMem,
				s.Running, s.Sleeping, s.Waiting)
		}
	}
	return b.String()
}
