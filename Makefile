GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test race vet fmt-check bench-smoke fuzz-smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# A short benchmark pass over every suite: catches bit-rot in the
# harness without paying for full measurement runs.
bench-smoke:
	$(GO) test -run=^$$ -bench=. -benchtime=1x ./...

# A short run of every fuzz harness (go test -fuzz accepts one target
# per invocation). Override FUZZTIME for longer campaigns.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzConfigurationJSON -fuzztime=$(FUZZTIME) ./internal/vjob
	$(GO) test -run=^$$ -fuzz=FuzzDomainOps$$ -fuzztime=$(FUZZTIME) ./internal/cp
	$(GO) test -run=^$$ -fuzz=FuzzBoundsDomainOps -fuzztime=$(FUZZTIME) ./internal/cp

# The one-command gate every PR must pass.
ci: build vet fmt-check test race bench-smoke fuzz-smoke
