package trace

import (
	"bytes"
	"strings"
	"testing"
)

const sampleCSV = `vm,vjob,arrive,depart,cpu,memory
batch-00,batch,10,400,1,1024
batch-01,batch,10,400,1,1024
web-00,web,0,,1,512
web-01,web,5,0,1,512
`

func TestFromCSV(t *testing.T) {
	recs, err := FromCSV(strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	// 4 arrivals + 2 departures (the web VMs never leave).
	arrives, departs := 0, 0
	for _, r := range recs {
		switch r.Event {
		case EventArrive:
			arrives++
		case EventDepart:
			departs++
		}
	}
	if arrives != 4 || departs != 2 {
		t.Fatalf("arrives/departs = %d/%d, want 4/2", arrives, departs)
	}
	if recs[0].VM != "web-00" || recs[0].At != 0 {
		t.Fatalf("first record = %+v, want web-00 at 0", recs[0])
	}
	if recs[0].Demand["memory"] != 512 || recs[0].Demand["cpu"] != 1 {
		t.Fatalf("demand = %v", recs[0].Demand)
	}
	// The converter's output is a valid trace by construction.
	var buf bytes.Buffer
	if err := Encode(&buf, recs); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(&buf); err != nil {
		t.Fatalf("converted trace does not decode: %v", err)
	}
}

func TestFromCSVRejects(t *testing.T) {
	tests := []struct {
		name, input, wantErr string
	}{
		{"no header", "", "header"},
		{"missing vm column", "vjob,arrive,cpu\nj,0,1\n", `missing column "vm"`},
		{"missing arrive column", "vm,vjob,cpu\na,j,1\n", `missing column "arrive"`},
		{"unknown demand column", "vm,vjob,arrive,gpu\na,j,0,1\n", `unknown column "gpu"`},
		{"duplicate column", "vm,vm,vjob,arrive,cpu\na,a,j,0,1\n", "duplicate column"},
		{"no demand columns", "vm,vjob,arrive,depart\na,j,0,1\n", "no demand columns"},
		{"empty vm", "vm,vjob,arrive,cpu\n,j,0,1\n", "missing vm or vjob"},
		{"bad arrive", "vm,vjob,arrive,cpu\na,j,x,1\n", "bad arrive"},
		{"negative arrive", "vm,vjob,arrive,cpu\na,j,-1,1\n", "bad arrive"},
		{"bad demand", "vm,vjob,arrive,cpu\na,j,0,x\n", "bad cpu demand"},
		{"zero demand", "vm,vjob,arrive,cpu\na,j,0,0\n", "demands nothing"},
		{"depart before arrive", "vm,vjob,arrive,depart,cpu\na,j,10,5,1\n", "bad depart"},
		{"bad depart", "vm,vjob,arrive,depart,cpu\na,j,0,x,1\n", "bad depart"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := FromCSV(strings.NewReader(tc.input))
			if err == nil {
				t.Fatalf("converted %q without error", tc.input)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
