package experiments

import (
	"strings"
	"testing"
	"time"
)

// quickMigrationOptions shrinks the BENCH_migration.json scenario so
// the study completes in about a second while keeping the phenomenon:
// the transfer-blind planner oversubscribes NICs, the aware one never
// does. Two racks instead of eight — a 48-node rack octant cannot host
// an 18-VM vjob, and the fenced cells must stay feasible.
func quickMigrationOptions() MigrationOptions {
	o := DefaultMigrationOptions()
	o.Nodes = 48
	o.Racks = 2
	o.Timeout = 250 * time.Millisecond
	o.Workers = 1
	return o
}

// TestMigrationStudy pins the study's headline on both variants: the
// blind planner's execution oversubscribes NICs for a measurable
// integral, the aware planner buys zero transfer violation-seconds
// with extra pools, and neither corrupts the configuration.
func TestMigrationStudy(t *testing.T) {
	r := RunMigration(quickMigrationOptions())
	if len(r.Variants) != 2 || r.Variants[0].Name != "open" || r.Variants[1].Name != "fenced" {
		t.Fatalf("variants = %+v", r.Variants)
	}
	if r.PoorNodes == 0 || r.PoorNodes == r.Nodes {
		t.Fatalf("NIC mix degenerate: %d poor of %d", r.PoorNodes, r.Nodes)
	}
	for _, v := range r.Variants {
		if v.Blind.Err != "" || v.Aware.Err != "" {
			t.Fatalf("%s solve failed: blind=%q aware=%q", v.Name, v.Blind.Err, v.Aware.Err)
		}
		if v.Blind.Transfers == 0 {
			t.Fatalf("%s: no transfers planned; the study is vacuous", v.Name)
		}
		if v.Blind.TransferViolationSeconds <= 0 {
			t.Fatalf("%s: blind planner caused no NIC oversubscription (%.1f)", v.Name, v.Blind.TransferViolationSeconds)
		}
		if v.Aware.TransferViolationSeconds != 0 {
			t.Fatalf("%s: aware planner oversubscribed a NIC for %.1f s", v.Name, v.Aware.TransferViolationSeconds)
		}
		if v.Aware.ViolationSeconds >= v.Blind.ViolationSeconds {
			t.Fatalf("%s: no violation-seconds drop: blind %.1f, aware %.1f",
				v.Name, v.Blind.ViolationSeconds, v.Aware.ViolationSeconds)
		}
		// The price of the drop: the aware plan serializes
		// NIC-conflicting transfers into more pools.
		if v.Aware.Pools <= v.Blind.Pools {
			t.Fatalf("%s: aware plan did not serialize: %d pools vs blind %d", v.Name, v.Aware.Pools, v.Blind.Pools)
		}
		for _, s := range []MigrationSide{v.Blind, v.Aware} {
			if s.StructuralBreaches != 0 {
				t.Fatalf("%s/%s: %d structural breaches", v.Name, s.Model, s.StructuralBreaches)
			}
			if s.FailedActions != 0 {
				t.Fatalf("%s/%s: %d failed actions", v.Name, s.Model, s.FailedActions)
			}
		}
	}
	// The fence keeps vjobs rack-local: strictly fewer cross-rack
	// transfers, hence a cheaper 10x-weighted wire bill.
	open, fenced := r.Variants[0], r.Variants[1]
	if fenced.Aware.CrossRack >= open.Aware.CrossRack {
		t.Fatalf("fence did not reduce cross-rack transfers: %d vs %d", fenced.Aware.CrossRack, open.Aware.CrossRack)
	}
	if fenced.Aware.WireCost10x >= open.Aware.WireCost10x {
		t.Fatalf("fence did not reduce the 10x wire cost: %d vs %d", fenced.Aware.WireCost10x, open.Aware.WireCost10x)
	}
}

// TestMigrationRenderings smokes the table/CSV shapes the CLI exports.
func TestMigrationRenderings(t *testing.T) {
	o := quickMigrationOptions()
	o.FencedVariant = false
	r := RunMigration(o)
	table := MigrationTable(r)
	for _, want := range []string{"blind", "aware", "viol_sec", "cross_rack"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
	csv := MigrationCSV(r)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV should be header + 2 rows without the fenced variant:\n%s", csv)
	}
	for _, line := range lines[1:] {
		if nf, nh := len(strings.Split(line, ",")), len(strings.Split(lines[0], ",")); nf != nh {
			t.Fatalf("csv row has %d fields, header %d: %s", nf, nh, line)
		}
	}
}

// TestGoldenMigrationCSV pins the exact export bytes on a synthetic
// result (real runs carry wall-clock solve times), including the
// failed-cell row shape.
func TestGoldenMigrationCSV(t *testing.T) {
	r := MigrationResult{
		Nodes: 48, PoorNodes: 12, VMs: 72, Racks: 2,
		Variants: []MigrationVariant{
			{
				Name: "open",
				Blind: MigrationSide{Model: "blind", SolveMS: 251.0, Cost: 5376, Pools: 1, Actions: 20,
					Transfers: 15, CrossRack: 15, WireCost10x: 53760, MakespanS: 128.2,
					ViolationSeconds: 344.9, TransferViolationSeconds: 344.9},
				Aware: MigrationSide{Model: "aware", SolveMS: 249.5, Cost: 14080, Pools: 3, Actions: 20,
					Transfers: 15, CrossRack: 15, WireCost10x: 53760, MakespanS: 138.0},
			},
			{
				Name:  "fenced",
				Blind: MigrationSide{Model: "blind", SolveMS: 250.2, Err: "timeout before first solution"},
				Aware: MigrationSide{Model: "aware", SolveMS: 248.8, Cost: 15104, Pools: 3, Actions: 20,
					Transfers: 15, CrossRack: 0, WireCost10x: 5376, MakespanS: 158.3},
			},
		},
	}
	checkGolden(t, "migration.csv.golden", MigrationCSV(r))
}

// BenchmarkMigrationStudy is the regress-gated cost of the
// bandwidth-aware pipeline end to end: gated builder, TransferSize
// cost fold, and the metered simulator re-timing every in-flight
// transfer as concurrency changes.
func BenchmarkMigrationStudy(b *testing.B) {
	opts := quickMigrationOptions()
	opts.FencedVariant = false
	opts.Timeout = 50 * time.Millisecond
	for i := 0; i < b.N; i++ {
		r := RunMigration(opts)
		v := r.Variants[0]
		if v.Blind.Err != "" || v.Aware.Err != "" {
			b.Fatalf("solve failed: blind=%q aware=%q", v.Blind.Err, v.Aware.Err)
		}
		if v.Aware.TransferViolationSeconds != 0 {
			b.Fatalf("aware planner oversubscribed a NIC for %.1f s", v.Aware.TransferViolationSeconds)
		}
	}
}
