package resources

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
)

// MarshalJSON encodes the vector as an object keyed by wire names, in
// registry order, omitting zero dimensions — so a vector that only
// uses the paper's 2-D model round-trips through the same bytes
// whether or not extra kinds are registered.
func (v Vector) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	b.WriteByte('{')
	first := true
	for _, k := range Kinds() {
		if v[k] == 0 {
			continue
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteByte('"')
		b.WriteString(k.String())
		b.WriteString(`":`)
		b.WriteString(strconv.Itoa(v[k]))
	}
	b.WriteByte('}')
	return b.Bytes(), nil
}

// UnmarshalJSON decodes an object of wire-name keys. Unknown kinds and
// negative quantities are rejected — the same trust boundary every
// other decoder of the wire format enforces — and absent dimensions
// stay zero.
func (v *Vector) UnmarshalJSON(data []byte) error {
	var m map[string]int
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("resources: vector: %w", err)
	}
	var out Vector
	for name, x := range m {
		k, err := ParseKind(name)
		if err != nil {
			return err
		}
		if x < 0 {
			return fmt.Errorf("resources: vector has negative %s", name)
		}
		out[k] = x
	}
	*v = out
	return nil
}

// FromWire assembles a vector from the wire format's dedicated
// cpu/memory fields plus the extras object, enforcing the interchange
// format's trust boundary in one place: negative quantities, unknown
// kinds and base kinds duplicated inside the extras map are rejected.
// Both the vjob configuration decoder and cmd/planviz build on it.
func FromWire(cpu, memory int, extras map[string]int) (Vector, error) {
	if cpu < 0 || memory < 0 {
		return Vector{}, fmt.Errorf("resources: negative cpu or memory")
	}
	v := New(cpu, memory)
	// Deterministic error selection (fuzzing, tests): walk keys sorted.
	names := make([]string, 0, len(extras))
	for name := range extras {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		k, err := ParseKind(name)
		if err != nil {
			return Vector{}, err
		}
		if k == CPU || k == Memory {
			return Vector{}, fmt.Errorf("resources: %s duplicated inside resources", name)
		}
		if extras[name] < 0 {
			return Vector{}, fmt.Errorf("resources: negative %s", name)
		}
		v.Set(k, extras[name])
	}
	return v, nil
}
