package duration

import (
	"time"

	"cwcs/internal/plan"
)

// This file is the time side of the bandwidth-aware context switch
// model (DESIGN.md §9). The §2.3 calibration times each transfer at
// one fixed wire rate — the per-MiB slope IS that rate, inverted. Here
// the slope is split into an explicit volume and rate so the simulator
// can re-time an in-flight transfer whenever the bandwidth actually
// available changes (NIC contention, concurrent transfers). At the
// nominal rate the decomposition reproduces the calibrated durations
// exactly, so clusters without a modeled `net` capacity never notice.

// TransferSpec decomposes a transfer-bearing action's duration into a
// bandwidth-independent part and a wire transfer.
type TransferSpec struct {
	// Fixed is the setup/teardown time spent regardless of bandwidth
	// (protocol handshakes, device quiesce, image open).
	Fixed time.Duration
	// VolumeMiB is the data volume crossing the wire, 1 MiB ≡ 8 Mbit.
	VolumeMiB int
	// NominalMbps is the calibrated wire rate: the fastest the transfer
	// can go even on an idle fat link (the hypervisor's copy loop, not
	// the NIC, is the bottleneck there).
	NominalMbps float64
	// Tr is the transfer mode, for deceleration lookups.
	Tr Transfer
}

// Bits returns the wire volume in Mbit.
func (s TransferSpec) Bits() float64 { return float64(s.VolumeMiB) * 8 }

// RateAt returns the wire rate the transfer sustains when the network
// offers bwMbps: the offered bandwidth, capped at the nominal rate. A
// non-positive bw means "bandwidth not modeled" and yields the nominal
// rate — the compile-away path, not a stalled link.
func (s TransferSpec) RateAt(bwMbps float64) float64 {
	if bwMbps > 0 && bwMbps < s.NominalMbps {
		return bwMbps
	}
	return s.NominalMbps
}

// DurationAt returns the transfer's total duration when the network
// sustains bwMbps for its whole lifetime. Zero-volume transfers (a
// zero-memory VM) take exactly the fixed part.
func (s TransferSpec) DurationAt(bwMbps float64) time.Duration {
	rate := s.RateAt(bwMbps)
	if rate <= 0 || s.VolumeMiB <= 0 {
		return s.Fixed
	}
	return s.Fixed + secs(s.Bits()/rate)
}

// nominalMbps inverts a per-MiB wire slope (seconds per MiB) into the
// rate it implies. A non-positive slope (instant transfer in the
// calibration) has no meaningful rate; 0 makes DurationAt collapse to
// the fixed part.
func nominalMbps(secPerMiB float64) float64 {
	if secPerMiB <= 0 {
		return 0
	}
	return 8 / secPerMiB
}

// MigrateSpec decomposes a live migration of volMiB: fixed
// MigrateBaseSec plus the pre-copy stream at the rate MigratePerMiB
// implies (800 Mbit/s under Default()).
func (m Model) MigrateSpec(volMiB int) TransferSpec {
	return TransferSpec{
		Fixed:       secs(m.MigrateBaseSec),
		VolumeMiB:   volMiB,
		NominalMbps: nominalMbps(m.MigratePerMiB),
		Tr:          Local,
	}
}

// SuspendSpec decomposes a remote suspend pushing volMiB through tr:
// the whole calibrated duration scales by the remote factor, so both
// the fixed part and the wire slope carry it (80 Mbit/s for SCP under
// Default()).
func (m Model) SuspendSpec(volMiB int, tr Transfer) TransferSpec {
	f := m.factor(tr)
	return TransferSpec{
		Fixed:       secs(m.SuspendBaseSec * f),
		VolumeMiB:   volMiB,
		NominalMbps: nominalMbps(m.SuspendPerMiB * f),
		Tr:          tr,
	}
}

// ResumeSpec decomposes a remote resume pulling volMiB through tr
// (100 Mbit/s for SCP under Default()).
func (m Model) ResumeSpec(volMiB int, tr Transfer) TransferSpec {
	f := m.factor(tr)
	return TransferSpec{
		Fixed:       secs(m.ResumeBaseSec * f),
		VolumeMiB:   volMiB,
		NominalMbps: nominalMbps(m.ResumePerMiB * f),
		Tr:          tr,
	}
}

// MigrateAt returns the duration of a live migration of a VM with the
// given memory allocation when the wire sustains bwMbps.
// MigrateAt(mem, 0) == Migrate(mem).
func (m Model) MigrateAt(memMiB int, bwMbps float64) time.Duration {
	return m.MigrateSpec(memMiB).DurationAt(bwMbps)
}

// SuspendAt returns the duration of suspending a VM through tr when
// the wire sustains bwMbps. SuspendAt(mem, tr, 0) == Suspend(mem, tr).
func (m Model) SuspendAt(memMiB int, tr Transfer, bwMbps float64) time.Duration {
	return m.SuspendSpec(memMiB, tr).DurationAt(bwMbps)
}

// ResumeAt returns the duration of resuming a VM through tr when the
// wire sustains bwMbps. ResumeAt(mem, tr, 0) == Resume(mem, tr).
func (m Model) ResumeAt(memMiB int, tr Transfer, bwMbps float64) time.Duration {
	return m.ResumeSpec(memMiB, tr).DurationAt(bwMbps)
}

// ActionTransfer returns the wire decomposition of an action that
// moves data between nodes, or ok=false when nothing crosses the
// network (run, stop, local suspend, local resume — their durations
// are bandwidth-independent and come from ActionDuration). The volume
// is plan.TransferSize: Dm widened by the transfer-relevant extra
// dimensions, exactly Dm on 2-D instances.
func (m Model) ActionTransfer(a plan.Action) (TransferSpec, bool) {
	switch a := a.(type) {
	case *plan.Migration:
		return m.MigrateSpec(plan.TransferSize(a.Machine)), true
	case *plan.Suspend:
		if a.To == a.On {
			return TransferSpec{}, false
		}
		return m.SuspendSpec(plan.TransferSize(a.Machine), SCP), true
	case *plan.Resume:
		if a.Local() {
			return TransferSpec{}, false
		}
		return m.ResumeSpec(plan.TransferSize(a.Machine), SCP), true
	default:
		return TransferSpec{}, false
	}
}
