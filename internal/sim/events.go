// Package sim is the discrete-event cluster simulator standing in for
// the paper's Xen 3.2 testbed. It advances a virtual clock over a
// cluster configuration, executes context-switch actions with the
// calibrated durations of internal/duration, slows down busy VMs
// co-hosted with in-flight operations (the §2.3 deceleration), shares
// processing units among over-committed VMs, and tracks the progress
// of per-VM workload phases so vjob completion times can be measured.
package sim

import "container/heap"

// event is a scheduled callback.
type event struct {
	at  float64
	seq int64 // tie-breaker preserving scheduling order
	fn  func()
}

// eventQueue is a min-heap on (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

var _ heap.Interface = (*eventQueue)(nil)
