package core

import (
	"fmt"
	"sort"

	"cwcs/internal/resources"
	"cwcs/internal/vjob"
)

// Partitioner splits a reconfiguration Problem into node-disjoint
// sub-problems that can be optimized concurrently and whose plans merge
// (plan.Merge) into one feasibility-preserving plan. The split follows
// the structure of the paper's own model: a VM's placement choices only
// interact through shared nodes, so once the node set is partitioned —
// keeping every binding inside one slice — the §4.3 models of the
// slices are fully independent.
//
// Two kinds of bindings are honored:
//
//   - hard: a VM and its current host (running) or image host
//     (sleeping), and the scope of a placement rule (a Spread/Gather
//     must see all its VMs; a Fence drags its node group along). Hard
//     bindings are never cut.
//   - soft: the VMs of one vjob. Keeping a gang together preserves the
//     §4.1 grouping of its suspends/resumes into common pools, but the
//     state consistency of the gang is already guaranteed by the shared
//     Target map, so the link may be cut when it would chain too much
//     of the cluster into one slice.
//
// Connected components of the full binding relation form the preferred
// atoms. A component larger than the slice-size cap is decomposed along
// its soft links into hard atoms (current placements scatter a vjob
// across many nodes, transitively welding half the cluster together —
// the very coupling the cap exists to break). Atoms are then packed
// into the requested number of partitions along the viable/non-viable
// seam: overloaded atoms (demand above capacity) spread across
// partitions first, then atoms with headroom fill the neediest
// partitions, so every partition mixes load to shed with room to
// absorb it.
type Partitioner struct {
	// Parts is the requested partition count: 0 picks one partition per
	// MaxNodes nodes, 1 disables partitioning, larger values are capped
	// by the number of atoms.
	Parts int
	// MaxNodes is the auto-mode partition size target; 0 defaults to 16
	// — the size up to which one slice typically proves optimality in
	// milliseconds, so a whole sweep of slices completes well inside a
	// budget that the monolithic model exhausts without a proof.
	MaxNodes int
}

// defaultMaxPartitionNodes is the auto-mode slice size.
const defaultMaxPartitionNodes = 16

// atom is one indivisible slice of the cluster: a connected component
// of the binding relation.
type atom struct {
	nodes []string
	vms   []string
	cap   resources.Vector
	dem   resources.Vector
}

// pressure is how far the atom's running demand exceeds its capacity,
// the max over resource dimensions normalized by cluster totals so
// every dimension compares; positive means the atom cannot absorb its
// own load on some dimension. Dimensions the cluster offers nothing of
// are skipped.
func (a *atom) pressure(tot resources.Vector) float64 {
	p := mathInfNeg
	for _, k := range resources.Kinds() {
		if tot.Get(k) <= 0 {
			continue
		}
		if d := float64(a.dem.Get(k)-a.cap.Get(k)) / float64(tot.Get(k)); d > p {
			p = d
		}
	}
	return p
}

// mathInfNeg starts max-accumulations below any real pressure value.
const mathInfNeg = -1e18

// Split decomposes the problem. It returns nil (no error) when the
// problem should stay monolithic: fewer than two partitions asked or
// achievable, or a rule whose scope the partitioner cannot introspect.
func (pt Partitioner) Split(p Problem) ([]Problem, error) {
	nodes := p.Src.Nodes()
	maxNodes := pt.MaxNodes
	if maxNodes <= 0 {
		maxNodes = defaultMaxPartitionNodes
	}
	want := pt.Parts
	sliceCap := maxNodes
	if want == 0 {
		want = (len(nodes) + maxNodes - 1) / maxNodes
	} else if want > 1 {
		sliceCap = (len(nodes) + want - 1) / want
	}
	if want <= 1 || len(nodes) < 2 {
		return nil, nil
	}

	// Hard bindings: every VM to its current location, every rule to
	// its covered VMs and bound nodes.
	hard := newUnionFind()
	nodeKey := func(n string) string { return "n\x00" + n }
	vmKey := func(v *vjob.VM) string { return "v\x00" + v.Name }
	for _, n := range nodes {
		hard.add(nodeKey(n.Name))
	}
	for _, v := range p.Src.VMs() {
		hard.add(vmKey(v))
		if loc := p.Src.LocationOf(v.Name); loc != "" {
			hard.union(vmKey(v), nodeKey(loc))
		}
	}
	ruleKeys := make([]string, len(p.Rules))
	for i, r := range p.Rules {
		sr, ok := r.(ScopedRule)
		if !ok {
			return nil, nil // opaque rule: cannot prove decomposability
		}
		ruleKeys[i] = fmt.Sprintf("r\x00%d", i)
		hard.add(ruleKeys[i])
		for _, name := range sr.ScopeVMs() {
			if v := p.Src.VM(name); v != nil {
				hard.union(ruleKeys[i], vmKey(v))
			}
		}
		for _, n := range sr.BindNodes() {
			if p.Src.Node(n) != nil {
				hard.union(ruleKeys[i], nodeKey(n))
			}
		}
	}

	// Soft bindings on top: the gang links of each vjob.
	soft := hard.clone()
	gang := make(map[string]string) // vjob -> key of first member
	for _, v := range p.Src.VMs() {
		if v.VJob == "" {
			continue
		}
		if first, ok := gang[v.VJob]; ok {
			soft.union(first, vmKey(v))
		} else {
			gang[v.VJob] = vmKey(v)
		}
	}
	softNodes := make(map[string]int) // soft root -> node count
	for _, n := range nodes {
		softNodes[soft.find(nodeKey(n.Name))]++
	}
	// rootOf keeps a whole soft component together when it fits the
	// slice cap and falls back to the hard component otherwise,
	// cutting only gang links.
	rootOf := func(key string) string {
		if sr := soft.find(key); softNodes[sr] <= sliceCap {
			return sr
		}
		return "h\x00" + hard.find(key)
	}

	// Collect atoms (components holding nodes) and floating cohorts
	// (components of waiting VMs bound to no node yet). Floating VMs of
	// one vjob always cohere: with no placement there is no reason to
	// cut their gang.
	atoms := make(map[string]*atom)
	var order []string
	get := func(root string) *atom {
		a := atoms[root]
		if a == nil {
			a = &atom{}
			atoms[root] = a
			order = append(order, root)
		}
		return a
	}
	var tot resources.Vector
	for _, n := range nodes {
		a := get(rootOf(nodeKey(n.Name)))
		a.nodes = append(a.nodes, n.Name)
		a.cap = a.cap.Add(n.Capacity)
		tot = tot.Add(n.Capacity)
	}
	if tot.Get(resources.CPU) == 0 || tot.Get(resources.Memory) == 0 {
		return nil, nil
	}
	covered := make(map[string]bool)
	for _, r := range p.Rules {
		for _, name := range r.(ScopedRule).ScopeVMs() {
			covered[name] = true
		}
	}
	floatRoot := make(map[string]string) // vjob -> floating atom root
	for _, v := range p.Src.VMs() {
		root := rootOf(vmKey(v))
		if ex := atoms[root]; (ex == nil || len(ex.nodes) == 0) && v.VJob != "" && !covered[v.Name] {
			// A waiting VM whose gang was cut would land in a singleton
			// cohort; regroup uncovered floaters of one vjob (covered
			// ones must stay with their rule's atom).
			if fr, ok := floatRoot[v.VJob]; ok {
				root = fr
			} else {
				floatRoot[v.VJob] = root
			}
		}
		a := get(root)
		a.vms = append(a.vms, v.Name)
		if wantOf(p, v) == vjob.Running {
			a.dem = a.dem.Add(v.Demand)
		}
	}

	var nodeAtoms, floating []string
	for _, root := range order {
		if len(atoms[root].nodes) > 0 {
			nodeAtoms = append(nodeAtoms, root)
		} else {
			floating = append(floating, root)
		}
	}
	if want > len(nodeAtoms) {
		want = len(nodeAtoms)
	}
	if want <= 1 {
		return nil, nil
	}

	// Pack atoms into bins along the viable/non-viable seam.
	sort.SliceStable(nodeAtoms, func(i, j int) bool {
		a, b := atoms[nodeAtoms[i]], atoms[nodeAtoms[j]]
		pa, pb := a.pressure(tot), b.pressure(tot)
		if pa != pb {
			return pa > pb
		}
		return a.nodes[0] < b.nodes[0]
	})
	sort.SliceStable(floating, func(i, j int) bool {
		a, b := atoms[floating[i]], atoms[floating[j]]
		if am, bm := a.dem.Get(resources.Memory), b.dem.Get(resources.Memory); am != bm {
			return am > bm
		}
		return a.vms[0] < b.vms[0]
	})

	bins := make([]*atom, want)
	for i := range bins {
		bins[i] = &atom{}
	}
	binOf := make(map[string]int)
	for _, root := range nodeAtoms {
		// Overloaded atoms spread to the roomiest bins; headroom atoms
		// backfill the neediest (most overloaded, then still-empty)
		// ones.
		assignAtom(atoms, bins, binOf, root, atoms[root].pressure(tot) > 0, tot)
	}
	// Drop bins the greedy pass left without nodes (possible when a few
	// giant atoms absorbed everything).
	kept := bins[:0]
	remap := make([]int, len(bins))
	for i, b := range bins {
		if len(b.nodes) > 0 {
			remap[i] = len(kept)
			kept = append(kept, b)
		} else {
			remap[i] = -1
		}
	}
	bins = kept
	for root, i := range binOf {
		binOf[root] = remap[i]
	}
	if len(bins) <= 1 {
		return nil, nil
	}
	// Floating cohorts (all-waiting vjobs) go where the room is.
	for _, root := range floating {
		assignAtom(atoms, bins, binOf, root, true, tot)
	}

	// Materialize the sub-problems.
	out := make([]Problem, len(bins))
	for bi, b := range bins {
		sub, err := p.Src.Extract(b.nodes, b.vms)
		if err != nil {
			return nil, err
		}
		target := make(map[string]vjob.State)
		vmSet := make(map[string]bool, len(b.vms))
		for _, name := range b.vms {
			vmSet[name] = true
			if job := p.Src.VM(name).VJob; job != "" {
				if st, ok := p.Target[job]; ok {
					target[job] = st
				}
			}
		}
		nodeSet := make(map[string]bool, len(b.nodes))
		for _, n := range b.nodes {
			nodeSet[n] = true
		}
		var rules []PlacementRule
		for i, r := range p.Rules {
			at, ok := binOf[rootOf(ruleKeys[i])]
			if !ok || at != bi {
				continue
			}
			if rr := r.(ScopedRule).Rescope(vmSet, nodeSet); rr != nil {
				rules = append(rules, rr)
			}
		}
		out[bi] = Problem{Src: sub, Target: target, Rules: rules}
	}
	return out, nil
}

// assignAtom adds the atom to the bin with the widest (wide) or
// tightest slack, breaking ties towards fewer nodes then lower index.
// Slack is the minimum over resource dimensions of the bin's
// normalized headroom — a bin tight on any one dimension is a tight
// bin.
func assignAtom(atoms map[string]*atom, bins []*atom, binOf map[string]int, root string, wide bool, tot resources.Vector) {
	a := atoms[root]
	slack := func(b *atom) float64 {
		s := 1e18
		for _, k := range resources.Kinds() {
			if tot.Get(k) <= 0 {
				continue
			}
			if m := float64(b.cap.Get(k)-b.dem.Get(k)) / float64(tot.Get(k)); m < s {
				s = m
			}
		}
		return s
	}
	best := 0
	for i := 1; i < len(bins); i++ {
		si, sb := slack(bins[i]), slack(bins[best])
		better := si < sb
		if wide {
			better = si > sb
		}
		if better || (si == sb && len(bins[i].nodes) < len(bins[best].nodes)) {
			best = i
		}
	}
	b := bins[best]
	b.nodes = append(b.nodes, a.nodes...)
	b.vms = append(b.vms, a.vms...)
	b.cap = b.cap.Add(a.cap)
	b.dem = b.dem.Add(a.dem)
	binOf[root] = best
}

// wantOf resolves the state the decision module asks of the VM, with
// the same coercion Problem.compile applies (a waiting VM of a vjob
// sent to Sleeping has nothing to suspend).
func wantOf(p Problem, v *vjob.VM) vjob.State {
	cur := p.Src.StateOf(v.Name)
	want, ok := p.Target[v.VJob]
	if !ok {
		return cur
	}
	if want == vjob.Sleeping && cur == vjob.Waiting {
		return cur
	}
	return want
}

// unionFind is a string-keyed disjoint-set forest with path
// compression.
type unionFind struct {
	parent map[string]string
}

func newUnionFind() *unionFind {
	return &unionFind{parent: make(map[string]string)}
}

func (u *unionFind) add(k string) {
	if _, ok := u.parent[k]; !ok {
		u.parent[k] = k
	}
}

func (u *unionFind) find(k string) string {
	u.add(k)
	root := k
	for u.parent[root] != root {
		root = u.parent[root]
	}
	for u.parent[k] != root {
		u.parent[k], k = root, u.parent[k]
	}
	return root
}

func (u *unionFind) union(a, b string) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}

func (u *unionFind) clone() *unionFind {
	out := newUnionFind()
	for k, v := range u.parent {
		out.parent[k] = v
	}
	return out
}
