package plan

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"cwcs/internal/vjob"
)

// TestGraphDiff covers every transition the graph generates.
func TestGraphDiff(t *testing.T) {
	src := cluster(t, 3, 2, 4096)
	mk := func(name string, mem int) *vjob.VM {
		v := vjob.NewVM(name, "j", 1, mem)
		src.AddVM(v)
		return v
	}
	mk("stay", 512)   // running, unchanged
	mk("move", 512)   // running -> migrated
	mk("sleep", 512)  // running -> suspended
	mk("dead", 512)   // running -> terminated
	mk("wake", 512)   // sleeping -> running
	mk("fresh", 512)  // waiting -> running
	mk("idle", 512)   // waiting, unchanged
	mk("frozen", 512) // sleeping, unchanged

	for vm, node := range map[string]string{"stay": "N1", "move": "N1", "sleep": "N2", "dead": "N2"} {
		if err := src.SetRunning(vm, node); err != nil {
			t.Fatal(err)
		}
	}
	for vm, node := range map[string]string{"wake": "N3", "frozen": "N3"} {
		if err := src.SetSleeping(vm, node); err != nil {
			t.Fatal(err)
		}
	}

	dst := src.Clone()
	dst.RemoveVM("dead")
	for vm, node := range map[string]string{"move": "N2", "wake": "N3", "fresh": "N3"} {
		if err := dst.SetRunning(vm, node); err != nil {
			t.Fatal(err)
		}
	}
	if err := dst.SetSleeping("sleep", "N2"); err != nil {
		t.Fatal(err)
	}

	g, err := BuildGraph(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, a := range g.Actions {
		got[a.String()] = true
	}
	want := []string{
		"migrate(move,N1,N2)",
		"suspend(sleep,N2,N2)",
		"stop(dead,N2)",
		"resume(wake,N3,N3)",
		"run(fresh,N3)",
	}
	if len(g.Actions) != len(want) {
		t.Fatalf("graph has %d actions (%v), want %d", len(g.Actions), got, len(want))
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing action %s in %v", w, got)
		}
	}
	// Local resume costs Dm; check graph lower bound: 512*3 (migrate +
	// suspend + local resume).
	if g.TotalCost() != 512*3 {
		t.Fatalf("TotalCost = %d, want %d", g.TotalCost(), 512*3)
	}
	if !strings.Contains(g.String(), "run(fresh,N3)") {
		t.Fatal("graph String misses actions")
	}
}

func TestGraphRejectsInvalidTransition(t *testing.T) {
	src := cluster(t, 1, 2, 4096)
	v := vjob.NewVM("vm", "j", 1, 512)
	src.AddVM(v)
	if err := src.SetRunning("vm", "N1"); err != nil {
		t.Fatal(err)
	}
	dst := src.Clone()
	if err := dst.SetWaiting("vm"); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildGraph(src, dst); err == nil {
		t.Fatal("running -> waiting accepted")
	}
}

func TestGraphRejectsUnknownNode(t *testing.T) {
	src := cluster(t, 1, 2, 4096)
	v := vjob.NewVM("vm", "j", 1, 512)
	src.AddVM(v)
	dst := src.Clone()
	dst.AddNode(vjob.NewNode("ghost", 2, 4096))
	if err := dst.SetRunning("vm", "ghost"); err != nil {
		t.Fatal(err)
	}
	// Rebuild a source that does not know "ghost" either.
	if _, err := BuildGraph(src, dst); err != nil {
		t.Fatalf("node known to dst must be accepted: %v", err)
	}
}

// TestSequentialConstraint reproduces Figure 7: migrate(VM1,N1,N2) can
// only begin once suspend(VM2) liberated N2's memory, so the plan has
// two sequential pools.
func TestSequentialConstraint(t *testing.T) {
	src := cluster(t, 2, 2, 3072)
	vm1 := vjob.NewVM("vm1", "a", 1, 2048)
	vm2 := vjob.NewVM("vm2", "b", 1, 2048)
	src.AddVM(vm1)
	src.AddVM(vm2)
	if err := src.SetRunning("vm1", "N1"); err != nil {
		t.Fatal(err)
	}
	if err := src.SetRunning("vm2", "N2"); err != nil {
		t.Fatal(err)
	}
	dst := src.Clone()
	if err := dst.SetSleeping("vm2", "N2"); err != nil {
		t.Fatal(err)
	}
	if err := dst.SetRunning("vm1", "N2"); err != nil {
		t.Fatal(err)
	}

	p, err := Build(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Pools) != 2 {
		t.Fatalf("plan:\n%s\nwant 2 pools", p)
	}
	if _, ok := p.Pools[0][0].(*Suspend); !ok {
		t.Fatalf("pool 0 should hold the suspend, got %s", p.Pools[0][0])
	}
	if _, ok := p.Pools[1][0].(*Migration); !ok {
		t.Fatalf("pool 1 should hold the migration, got %s", p.Pools[1][0])
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := p.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(dst) {
		t.Fatalf("plan result differs from destination:\n%s\nvs\n%s", res, dst)
	}
}

// TestCycleBreaking reproduces Figure 8: VM1 and VM2 must swap nodes
// but neither migration is feasible; a bypass migration through pivot
// N3 breaks the cycle.
func TestCycleBreaking(t *testing.T) {
	src := cluster(t, 3, 2, 3072)
	vm1 := vjob.NewVM("vm1", "a", 1, 2048)
	vm2 := vjob.NewVM("vm2", "b", 1, 2048)
	src.AddVM(vm1)
	src.AddVM(vm2)
	if err := src.SetRunning("vm1", "N1"); err != nil {
		t.Fatal(err)
	}
	if err := src.SetRunning("vm2", "N2"); err != nil {
		t.Fatal(err)
	}
	dst := src.Clone()
	if err := dst.SetRunning("vm1", "N2"); err != nil {
		t.Fatal(err)
	}
	if err := dst.SetRunning("vm2", "N1"); err != nil {
		t.Fatal(err)
	}

	p, err := Build(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if p.Bypass != 1 {
		t.Fatalf("bypass count = %d, want 1\n%s", p.Bypass, p)
	}
	if p.NumActions() != 3 {
		t.Fatalf("action count = %d, want 3 (two migrations + bypass)\n%s", p.NumActions(), p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := p.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(dst) {
		t.Fatalf("swap not realized:\n%s", res)
	}
}

// TestUnbreakableCycle: a swap with no pivot capacity anywhere must
// return ErrNoProgress rather than an invalid plan.
func TestUnbreakableCycle(t *testing.T) {
	src := cluster(t, 2, 1, 2048)
	vm1 := vjob.NewVM("vm1", "a", 1, 2048)
	vm2 := vjob.NewVM("vm2", "b", 1, 2048)
	src.AddVM(vm1)
	src.AddVM(vm2)
	if err := src.SetRunning("vm1", "N1"); err != nil {
		t.Fatal(err)
	}
	if err := src.SetRunning("vm2", "N2"); err != nil {
		t.Fatal(err)
	}
	dst := src.Clone()
	if err := dst.SetRunning("vm1", "N2"); err != nil {
		t.Fatal(err)
	}
	if err := dst.SetRunning("vm2", "N1"); err != nil {
		t.Fatal(err)
	}
	_, err := Build(src, dst)
	if !errors.Is(err, ErrNoProgress) {
		t.Fatalf("err = %v, want ErrNoProgress", err)
	}
}

// TestFigure9TwoPools rebuilds the reconfiguration graph of Figure 9:
// pool 1 = {suspend(VM3), migrate(VM1)}, pool 2 = {resume(VM5),
// run(VM6)}.
func TestFigure9TwoPools(t *testing.T) {
	src := cluster(t, 3, 2, 3072)
	vm1 := vjob.NewVM("vm1", "a", 1, 1024)
	vm3 := vjob.NewVM("vm3", "b", 1, 2048)
	vm5 := vjob.NewVM("vm5", "c", 1, 2048)
	vm6 := vjob.NewVM("vm6", "d", 1, 1024)
	for _, v := range []*vjob.VM{vm1, vm3, vm5, vm6} {
		src.AddVM(v)
	}
	// N1 hosts vm1; N2 hosts vm3 (to be suspended); vm5 sleeps on N2;
	// vm6 waits. Destination: vm1 on N2, vm3 asleep, vm5 resumed on
	// N2... that would not fit; use N3 for the resume and N1 for the
	// run so the second pool depends on the first only through vm1's
	// migration and vm3's suspend.
	if err := src.SetRunning("vm1", "N1"); err != nil {
		t.Fatal(err)
	}
	if err := src.SetRunning("vm3", "N2"); err != nil {
		t.Fatal(err)
	}
	if err := src.SetSleeping("vm5", "N3"); err != nil {
		t.Fatal(err)
	}

	dst := src.Clone()
	if err := dst.SetSleeping("vm3", "N2"); err != nil {
		t.Fatal(err)
	}
	if err := dst.SetRunning("vm1", "N2"); err != nil {
		t.Fatal(err)
	}
	if err := dst.SetRunning("vm5", "N1"); err != nil { // remote resume N3 -> N1
		t.Fatal(err)
	}
	if err := dst.SetRunning("vm6", "N1"); err != nil {
		t.Fatal(err)
	}

	p, err := Build(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("%v\n%s", err, p)
	}
	res, err := p.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(dst) {
		t.Fatal("figure 9 destination not reached")
	}
	// vm1's migration needs vm3's suspend? No: N2 has 3072, vm3 uses
	// 2048, vm1 needs 1024 -> fits immediately. But vm5's resume on N1
	// needs vm1 gone (N1: 3072, vm1 1024, vm5 2048 fits!). And vm6 on
	// N1 (1024) needs vm1's migration. So two pools appear.
	if len(p.Pools) != 2 {
		t.Fatalf("pools = %d, want 2\n%s", len(p.Pools), p)
	}
}

// TestCostModel checks the §4.2 aggregation on a hand-built plan.
func TestCostModel(t *testing.T) {
	vmA := vjob.NewVM("a", "j", 1, 1000)
	vmB := vjob.NewVM("b", "j", 1, 600)
	vmC := vjob.NewVM("c", "j", 1, 400)
	p := &Plan{Pools: []Pool{
		{&Suspend{Machine: vmA, On: "N1", To: "N1"}, &Migration{Machine: vmB, Src: "N2", Dst: "N3"}},
		{&Resume{Machine: vmC, From: "N1", On: "N2"}}, // remote: 800
	}}
	// Pool 0 cost = max(1000, 600) = 1000.
	if got := p.Pools[0].Cost(); got != 1000 {
		t.Fatalf("pool 0 cost = %d", got)
	}
	// Plan cost = (0+1000) + (0+600) + (1000+800) = 3400.
	if got := p.Cost(); got != 3400 {
		t.Fatalf("plan cost = %d, want 3400", got)
	}
	if p.NumActions() != 3 {
		t.Fatalf("NumActions = %d", p.NumActions())
	}
	if len(p.Actions()) != 3 {
		t.Fatal("Actions() length")
	}
	if !strings.Contains(p.String(), "plan cost: 3400") {
		t.Fatalf("String() = %q", p.String())
	}
}

// TestVJobResumeGrouping: the resumes of one vjob spread over several
// pools must be regrouped into the last pool that held one.
func TestVJobResumeGrouping(t *testing.T) {
	src := cluster(t, 3, 1, 2048)
	// j1 has two sleeping VMs. One can resume immediately (N3 empty);
	// the other must wait for blocker's suspend on N2.
	r1 := vjob.NewVM("j1-r1", "", 1, 1024)
	r2 := vjob.NewVM("j1-r2", "", 1, 1024)
	blocker := vjob.NewVM("blocker", "", 1, 1024)
	_ = vjob.NewVJob("j1", 0, r1, r2)
	src.AddVM(r1)
	src.AddVM(r2)
	src.AddVM(blocker)
	if err := src.SetSleeping("j1-r1", "N3"); err != nil {
		t.Fatal(err)
	}
	if err := src.SetSleeping("j1-r2", "N2"); err != nil {
		t.Fatal(err)
	}
	if err := src.SetRunning("blocker", "N2"); err != nil {
		t.Fatal(err)
	}

	dst := src.Clone()
	if err := dst.SetSleeping("blocker", "N2"); err != nil {
		t.Fatal(err)
	}
	if err := dst.SetRunning("j1-r1", "N3"); err != nil {
		t.Fatal(err)
	}
	if err := dst.SetRunning("j1-r2", "N2"); err != nil {
		t.Fatal(err)
	}

	// Without grouping: pool0 = {suspend(blocker), resume(j1-r1)},
	// pool1 = {resume(j1-r2)}.
	ungrouped, err := Builder{DisableVJobGrouping: true}.Plan(mustGraph(t, src, dst))
	if err != nil {
		t.Fatal(err)
	}
	if poolOfVM(ungrouped, "j1-r1") == poolOfVM(ungrouped, "j1-r2") {
		t.Fatalf("test premise broken: resumes already together\n%s", ungrouped)
	}

	grouped, err := Builder{}.Plan(mustGraph(t, src, dst))
	if err != nil {
		t.Fatal(err)
	}
	if poolOfVM(grouped, "j1-r1") != poolOfVM(grouped, "j1-r2") {
		t.Fatalf("vjob resumes not grouped:\n%s", grouped)
	}
	if err := grouped.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := grouped.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(dst) {
		t.Fatal("grouped plan misses destination")
	}
}

func mustGraph(t *testing.T, src, dst *vjob.Configuration) *Graph {
	t.Helper()
	g, err := BuildGraph(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func poolOfVM(p *Plan, vm string) int {
	for i, pool := range p.Pools {
		for _, a := range pool {
			if a.VM().Name == vm {
				return i
			}
		}
	}
	return -1
}

// Property: the vjob-grouping pass never changes the destination and
// always leaves a valid plan, whatever the configuration pair.
func TestGroupingPreservesDestination(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nNodes := 2 + rng.Intn(4)
		c := vjob.NewConfiguration()
		for i := 0; i < nNodes; i++ {
			c.AddNode(vjob.NewNode(fmt.Sprintf("n%02d", i), 2, 4096))
		}
		// Several vjobs, some with multiple sleeping VMs, so the
		// grouping pass has resumes to move.
		for j := 0; j < 2+rng.Intn(3); j++ {
			job := fmt.Sprintf("j%d", j)
			for k := 0; k < 1+rng.Intn(3); k++ {
				v := vjob.NewVM(fmt.Sprintf("%s-%d", job, k), job, rng.Intn(2), 256*(1+rng.Intn(6)))
				c.AddVM(v)
				if rng.Intn(2) == 0 {
					_ = c.SetSleeping(v.Name, fmt.Sprintf("n%02d", rng.Intn(nNodes)))
				}
			}
		}
		dst := c.Clone()
		for _, v := range dst.VMs() {
			if dst.StateOf(v.Name) != vjob.Sleeping {
				continue
			}
			// Try to resume everywhere viable.
			for _, n := range dst.Nodes() {
				if dst.Fits(v, n.Name) {
					_ = dst.SetRunning(v.Name, n.Name)
					break
				}
			}
		}
		if !dst.Viable() {
			return true
		}
		g, err := BuildGraph(c, dst)
		if err != nil {
			return true
		}
		grouped, err1 := Builder{}.Plan(g)
		ungrouped, err2 := Builder{DisableVJobGrouping: true}.Plan(g)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		rg, err := grouped.Result()
		if err != nil || !rg.Equal(dst) {
			return false
		}
		ru, err := ungrouped.Result()
		if err != nil || !ru.Equal(dst) {
			return false
		}
		return grouped.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestValidateCatchesOverload: a hand-built plan whose single pool
// overloads a node must fail validation.
func TestValidateCatchesOverload(t *testing.T) {
	src := cluster(t, 2, 1, 4096)
	a := vjob.NewVM("a", "", 1, 512)
	b := vjob.NewVM("b", "", 1, 512)
	src.AddVM(a)
	src.AddVM(b)
	p := &Plan{Src: src, Pools: []Pool{{
		&Run{Machine: a, On: "N1"},
		&Run{Machine: b, On: "N1"}, // jointly overload N1's single CPU
	}}}
	if err := p.Validate(); err == nil {
		t.Fatal("joint overload not caught")
	}
}

// TestValidateAllowsShrinkingPreexistingOverload: a plan evacuating an
// overloaded node keeps a smaller violation alive on it during the
// early pools; that is the cure in progress, not a plan-introduced
// violation, and must validate.
func TestValidateAllowsShrinkingPreexistingOverload(t *testing.T) {
	src := cluster(t, 2, 2, 8192)
	vms := make([]*vjob.VM, 4)
	for i := range vms {
		v := vjob.NewVM(fmt.Sprintf("v%d", i), "", 1, 512)
		src.AddVM(v)
		vms[i] = v
		if err := src.SetRunning(v.Name, "N1"); err != nil {
			t.Fatal(err)
		}
	}
	// N1 demand 4 > capacity 2 before the plan runs. Pool 0 drains one
	// VM (demand 3, still over), pool 1 a second (demand 2, cured).
	p := &Plan{Src: src, Pools: []Pool{
		{&Migration{Machine: vms[0], Src: "N1", Dst: "N2"}},
		{&Migration{Machine: vms[1], Src: "N1", Dst: "N2"}},
	}}
	if err := p.Validate(); err != nil {
		t.Fatalf("shrinking pre-existing overload refused: %v", err)
	}
}

// Property: for random source/destination configuration pairs that are
// individually viable, the builder either reports ErrNoProgress or
// produces a plan that validates and reaches the destination exactly.
func TestBuilderReachesDestination(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nNodes := 2 + rng.Intn(5)
		c := vjob.NewConfiguration()
		for i := 0; i < nNodes; i++ {
			c.AddNode(vjob.NewNode(fmt.Sprintf("n%02d", i), 2, 4096))
		}
		nVMs := 1 + rng.Intn(10)
		for i := 0; i < nVMs; i++ {
			v := vjob.NewVM(fmt.Sprintf("vm%02d", i), fmt.Sprintf("j%d", i%3), rng.Intn(2), 256*(1+rng.Intn(8)))
			c.AddVM(v)
		}
		src := randomViable(rng, c)
		dst := randomViable(rng, src.Clone())
		// Fix invalid life-cycle transitions (waiting VMs cannot have
		// been sleeping before; sleeping cannot return to waiting...).
		for _, v := range src.VMs() {
			relocated := src.StateOf(v.Name) == vjob.Sleeping && dst.StateOf(v.Name) == vjob.Sleeping &&
				src.ImageHostOf(v.Name) != dst.ImageHostOf(v.Name)
			if relocated || !vjob.ValidTransition(src.StateOf(v.Name), dst.StateOf(v.Name)) {
				// Re-align: keep the source state/placement.
				switch src.StateOf(v.Name) {
				case vjob.Running:
					if err := dst.SetRunning(v.Name, src.HostOf(v.Name)); err != nil {
						return false
					}
				case vjob.Sleeping:
					if err := dst.SetSleeping(v.Name, src.ImageHostOf(v.Name)); err != nil {
						return false
					}
				default:
					if err := dst.SetWaiting(v.Name); err != nil {
						return false
					}
				}
			}
		}
		if !dst.Viable() {
			return true // re-alignment may have overloaded; skip
		}
		p, err := Build(src, dst)
		if errors.Is(err, ErrNoProgress) {
			return true
		}
		if err != nil {
			t.Logf("seed %d: build error %v", seed, err)
			return false
		}
		if err := p.Validate(); err != nil {
			t.Logf("seed %d: validate: %v\n%s", seed, err, p)
			return false
		}
		res, err := p.Result()
		if err != nil {
			return false
		}
		if !res.Equal(dst) {
			t.Logf("seed %d: wrong destination", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// randomViable assigns each VM of c a random state/placement that
// keeps the configuration viable (first node that fits among a random
// scan order; falls back to sleeping or waiting).
func randomViable(rng *rand.Rand, c *vjob.Configuration) *vjob.Configuration {
	nodes := c.Nodes()
	for _, v := range c.VMs() {
		choice := rng.Intn(3)
		placed := false
		if choice == 0 { // try to run somewhere
			off := rng.Intn(len(nodes))
			for k := range nodes {
				n := nodes[(off+k)%len(nodes)]
				if c.Fits(v, n.Name) {
					if err := c.SetRunning(v.Name, n.Name); err == nil {
						placed = true
					}
					break
				}
			}
		}
		if !placed && choice <= 1 {
			n := nodes[rng.Intn(len(nodes))]
			if err := c.SetSleeping(v.Name, n.Name); err == nil {
				placed = true
			}
		}
		if !placed {
			_ = c.SetWaiting(v.Name)
		}
	}
	return c
}
