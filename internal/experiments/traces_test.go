package experiments

import (
	"bytes"
	"fmt"
	"os"
	"testing"

	"cwcs/internal/trace"
)

// webTideRecords is the generator behind traces/web-tide.jsonl: a
// service tide. Twelve web VMs arrive staggered and double their CPU
// demand during a load wave (t=600..1500ish), six cache VMs run flat
// for the whole trace, and a ten-VM batch job passes through. The
// trace is committed as a golden file (run with -update after
// changing this) so the replay cell's input is reviewable bytes, not
// code.
func webTideRecords() []trace.Record {
	var recs []trace.Record
	for i := 0; i < 12; i++ {
		vm := fmt.Sprintf("web-%02d", i)
		recs = append(recs,
			trace.Record{At: float64(5 * i), Event: trace.EventArrive, VM: vm, VJob: "web", Demand: map[string]int{"cpu": 1, "memory": 768}},
			trace.Record{At: 600 + float64(5*i), Event: trace.EventLoad, VM: vm, Demand: map[string]int{"cpu": 2, "memory": 768}},
			trace.Record{At: 1500 + float64(5*i), Event: trace.EventLoad, VM: vm, Demand: map[string]int{"cpu": 1, "memory": 768}},
		)
	}
	for i := 0; i < 6; i++ {
		vm := fmt.Sprintf("cache-%02d", i)
		recs = append(recs, trace.Record{At: 120 + float64(10*i), Event: trace.EventArrive, VM: vm, VJob: "cache", Demand: map[string]int{"cpu": 1, "memory": 2048}})
	}
	for i := 0; i < 10; i++ {
		vm := fmt.Sprintf("batch-%02d", i)
		recs = append(recs,
			trace.Record{At: 300 + float64(2*i), Event: trace.EventArrive, VM: vm, VJob: "batch", Demand: map[string]int{"cpu": 1, "memory": 1024}},
			trace.Record{At: 2100 + float64(2*i), Event: trace.EventDepart, VM: vm},
		)
	}
	trace.SortRecords(recs)
	return recs
}

// checkTraceFile compares got with the committed trace file at path
// (or rewrites it under -update), reading from disk so a regeneration
// is visible without recompiling the embedded copy.
func checkTraceFile(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing sample trace (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from its generator (run with -update if intentional)", path)
	}
}

// TestWebTideTrace pins traces/web-tide.jsonl to its generator.
func TestWebTideTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := trace.Encode(&buf, webTideRecords()); err != nil {
		t.Fatal(err)
	}
	checkTraceFile(t, "traces/web-tide.jsonl", buf.Bytes())
}

// TestBatchRampTrace proves traces/batch-ramp.jsonl is exactly the
// FromCSV conversion of the committed traces/batch-ramp.csv — the
// converter's worked example.
func TestBatchRampTrace(t *testing.T) {
	data, err := os.ReadFile("traces/batch-ramp.csv")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := trace.FromCSV(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Encode(&buf, recs); err != nil {
		t.Fatal(err)
	}
	checkTraceFile(t, "traces/batch-ramp.jsonl", buf.Bytes())
}

// TestSampleTraces checks the embedded registry: both committed
// traces list, decode, and are non-trivial; unknown names fail.
func TestSampleTraces(t *testing.T) {
	names := SampleTraces()
	if len(names) != 2 || names[0] != "batch-ramp" || names[1] != "web-tide" {
		t.Fatalf("sample traces = %v", names)
	}
	for _, name := range names {
		recs, err := SampleTrace(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(recs) < 10 {
			t.Fatalf("%s: only %d records", name, len(recs))
		}
	}
	if _, err := SampleTrace("no-such-trace"); err == nil {
		t.Fatal("unknown trace name accepted")
	}
}
