package cp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitsetDomainBasics(t *testing.T) {
	d := newBitsetDomain([]int{0, 2, 5, 5, 63, 64, 130})
	if d.size() != 6 {
		t.Fatalf("size = %d, want 6 (dedup)", d.size())
	}
	if d.min() != 0 || d.max() != 130 {
		t.Fatalf("bounds = [%d,%d]", d.min(), d.max())
	}
	for _, v := range []int{0, 2, 5, 63, 64, 130} {
		if !d.contains(v) {
			t.Fatalf("missing %d", v)
		}
	}
	for _, v := range []int{-1, 1, 62, 65, 131, 1000} {
		if d.contains(v) {
			t.Fatalf("spurious %d", v)
		}
	}
	got := d.values()
	want := []int{0, 2, 5, 63, 64, 130}
	if len(got) != len(want) {
		t.Fatalf("values = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("values = %v, want %v", got, want)
		}
	}
}

func TestBitsetDomainRemoval(t *testing.T) {
	d := newBitsetDomain([]int{1, 3, 64, 127})
	if !d.removeValue(64) {
		t.Fatal("removeValue(64) reported no change")
	}
	if d.removeValue(64) {
		t.Fatal("second removeValue(64) reported change")
	}
	if d.removeValue(2) {
		t.Fatal("removing absent value reported change")
	}
	if d.min() != 1 || d.max() != 127 || d.size() != 3 {
		t.Fatalf("after removal: [%d,%d] size %d", d.min(), d.max(), d.size())
	}
	d.removeValue(1)
	if d.min() != 3 {
		t.Fatalf("min not rescanned: %d", d.min())
	}
	d.removeValue(127)
	if d.max() != 3 {
		t.Fatalf("max not rescanned: %d", d.max())
	}
	d.removeValue(3)
	if d.size() != 0 || d.min() != -1 || d.max() != -1 {
		t.Fatal("empty domain bounds wrong")
	}
}

func TestBitsetDomainBoundsRemoval(t *testing.T) {
	d := newBitsetDomain([]int{2, 4, 6, 8, 10})
	if !d.removeBelow(5) {
		t.Fatal("removeBelow reported no change")
	}
	if d.min() != 6 {
		t.Fatalf("min = %d", d.min())
	}
	if d.removeBelow(5) {
		t.Fatal("idempotent removeBelow reported change")
	}
	if !d.removeAbove(9) {
		t.Fatal("removeAbove reported no change")
	}
	if d.max() != 8 || d.size() != 2 {
		t.Fatalf("domain = %v", d.values())
	}
}

func TestBitsetDomainCloneIndependent(t *testing.T) {
	d := newBitsetDomain([]int{1, 2, 3})
	c := d.clone()
	d.removeValue(2)
	if !c.contains(2) {
		t.Fatal("clone shares storage")
	}
}

func TestBitsetDomainNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative value accepted")
		}
	}()
	newBitsetDomain([]int{-1})
}

func TestBoundsDomain(t *testing.T) {
	d := &boundsDomain{lo: 10, hi: 20}
	if d.size() != 11 || !d.contains(15) || d.contains(9) || d.contains(21) {
		t.Fatal("basic bounds domain broken")
	}
	if !d.removeValue(10) || d.min() != 11 {
		t.Fatal("removeValue at lower bound")
	}
	if !d.removeValue(20) || d.max() != 19 {
		t.Fatal("removeValue at upper bound")
	}
	if d.removeValue(5) {
		t.Fatal("removing out-of-range value reported change")
	}
	if !d.removeBelow(15) || d.min() != 15 {
		t.Fatal("removeBelow")
	}
	if !d.removeAbove(17) || d.max() != 17 {
		t.Fatal("removeAbove")
	}
	vals := d.values()
	if len(vals) != 3 || vals[0] != 15 || vals[2] != 17 {
		t.Fatalf("values = %v", vals)
	}
	c := d.clone()
	d.removeBelow(17)
	if c.min() != 15 {
		t.Fatal("clone shares state")
	}
	d.removeAbove(16) // empties
	if d.size() != 0 {
		t.Fatalf("size = %d, want 0", d.size())
	}
	if (&boundsDomain{lo: 3, hi: 2}).values() != nil {
		t.Fatal("empty values not nil")
	}
}

func TestBoundsDomainInteriorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("interior removal accepted")
		}
	}()
	(&boundsDomain{lo: 0, hi: 10}).removeValue(5)
}

// Property: bitset domain behaves like a sorted set under random
// removal sequences.
func TestBitsetDomainMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(150)
		var init []int
		ref := map[int]bool{}
		for i := 0; i < n; i++ {
			v := rng.Intn(200)
			init = append(init, v)
			ref[v] = true
		}
		d := newBitsetDomain(init)
		for i := 0; i < 100 && len(ref) > 0; i++ {
			v := rng.Intn(200)
			changed := d.removeValue(v)
			if changed != ref[v] {
				return false
			}
			delete(ref, v)
			if d.size() != len(ref) {
				return false
			}
			if len(ref) > 0 {
				min, max := 1<<30, -1
				for k := range ref {
					if k < min {
						min = k
					}
					if k > max {
						max = k
					}
				}
				if d.min() != min || d.max() != max {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
