package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"cwcs/internal/cp"
	"cwcs/internal/sched"
	"cwcs/internal/vjob"
)

// splitOrFatal splits the problem and asserts the decomposition is a
// disjoint exact cover of the cluster.
func splitOrFatal(t *testing.T, pt Partitioner, p Problem) []Problem {
	t.Helper()
	parts, err := pt.Split(p)
	if err != nil {
		t.Fatal(err)
	}
	seenNodes := map[string]bool{}
	seenVMs := map[string]bool{}
	for _, sub := range parts {
		for _, n := range sub.Src.Nodes() {
			if seenNodes[n.Name] {
				t.Fatalf("node %s in two partitions", n.Name)
			}
			seenNodes[n.Name] = true
		}
		for _, v := range sub.Src.VMs() {
			if seenVMs[v.Name] {
				t.Fatalf("VM %s in two partitions", v.Name)
			}
			seenVMs[v.Name] = true
		}
	}
	if len(parts) > 0 {
		if len(seenNodes) != p.Src.NumNodes() || len(seenVMs) != p.Src.NumVMs() {
			t.Fatalf("cover: %d/%d nodes, %d/%d VMs",
				len(seenNodes), p.Src.NumNodes(), len(seenVMs), p.Src.NumVMs())
		}
	}
	return parts
}

// partitionProblem builds a 6-node cluster with three independent
// 2-node islands, each hosting one 2-VM vjob.
func partitionProblem(t *testing.T) Problem {
	t.Helper()
	c := mkCluster(6, 2, 4096)
	target := map[string]vjob.State{}
	for i := 0; i < 3; i++ {
		j := vjob.NewVJob(fmt.Sprintf("j%d", i), i,
			vjob.NewVM(fmt.Sprintf("j%d-1", i), "", 1, 1024),
			vjob.NewVM(fmt.Sprintf("j%d-2", i), "", 1, 1024))
		for k, v := range j.VMs {
			c.AddVM(v)
			mustRun(t, c, v.Name, fmt.Sprintf("n%02d", 2*i+k))
		}
		target[j.Name] = vjob.Running
	}
	return Problem{Src: c, Target: target}
}

func TestSplitRespectsRequestedCount(t *testing.T) {
	p := partitionProblem(t)
	for _, want := range []int{2, 3} {
		parts := splitOrFatal(t, Partitioner{Parts: want}, p)
		if len(parts) != want {
			t.Fatalf("Parts=%d gave %d partitions", want, len(parts))
		}
	}
	// More partitions than nodes: gang links are soft, so the split
	// bottoms out at the hard atoms (here: one per node) and never
	// exceeds the node count.
	parts := splitOrFatal(t, Partitioner{Parts: 64}, p)
	if len(parts) == 0 || len(parts) > p.Src.NumNodes() {
		t.Fatalf("Parts=64 gave %d partitions for %d nodes", len(parts), p.Src.NumNodes())
	}
	// Parts=1 and small auto mode stay monolithic.
	if parts := splitOrFatal(t, Partitioner{Parts: 1}, p); parts != nil {
		t.Fatalf("Parts=1 split anyway: %d", len(parts))
	}
	if parts := splitOrFatal(t, Partitioner{}, p); parts != nil {
		t.Fatalf("auto split a 6-node cluster: %d", len(parts))
	}
}

func TestSplitKeepsVJobsTogether(t *testing.T) {
	p := partitionProblem(t)
	for _, sub := range splitOrFatal(t, Partitioner{Parts: 3}, p) {
		byJob := map[string]int{}
		for _, v := range sub.Src.VMs() {
			byJob[v.VJob]++
		}
		for job, n := range byJob {
			if n != 2 {
				t.Fatalf("vjob %s split across partitions (%d of 2 VMs)", job, n)
			}
		}
	}
}

func TestSplitKeepsRuleScopesTogether(t *testing.T) {
	p := partitionProblem(t)
	// A spread across two different vjobs is a HARD binding: its
	// covered VMs (and their hosts) must share a partition even when
	// the slice cap cuts their gangs.
	p.Rules = []PlacementRule{Spread{VMs: []string{"j0-1", "j1-1"}}}
	for _, parts := range []int{2, 3, 6} {
		for _, sub := range splitOrFatal(t, Partitioner{Parts: parts}, p) {
			if (sub.Src.VM("j0-1") != nil) != (sub.Src.VM("j1-1") != nil) {
				t.Fatalf("Parts=%d: spread scope split across partitions", parts)
			}
			if sub.Src.VM("j0-1") != nil && len(sub.Rules) == 0 {
				t.Fatalf("Parts=%d: spread dropped from its partition", parts)
			}
		}
	}
}

// TestSplitCutsOversizedGangs: a single vjob scattered across the
// whole cluster would weld every node into one component; the slice cap
// cuts its gang links so the split still happens, while each VM stays
// with its current host.
func TestSplitCutsOversizedGangs(t *testing.T) {
	c := mkCluster(8, 2, 4096)
	vms := make([]*vjob.VM, 8)
	for i := range vms {
		vms[i] = vjob.NewVM(fmt.Sprintf("g-%d", i), "", 1, 1024)
	}
	j := vjob.NewVJob("g", 0, vms...)
	for i, v := range j.VMs {
		c.AddVM(v)
		mustRun(t, c, v.Name, fmt.Sprintf("n%02d", i))
	}
	p := Problem{Src: c, Target: map[string]vjob.State{"g": vjob.Running}}
	parts := splitOrFatal(t, Partitioner{Parts: 4}, p)
	if len(parts) < 2 {
		t.Fatalf("oversized gang not cut: %d partitions", len(parts))
	}
	for _, sub := range parts {
		for _, v := range sub.Src.VMs() {
			if sub.Src.HostOf(v.Name) == "" {
				t.Fatalf("%s separated from its host", v.Name)
			}
		}
	}
}

func TestSplitBindsFenceNodes(t *testing.T) {
	p := partitionProblem(t)
	// Fence j0 onto the far island's nodes: those nodes must ride with
	// j0's VMs.
	p.Rules = []PlacementRule{Fence{VMs: []string{"j0-1", "j0-2"}, Nodes: []string{"n04", "n05"}}}
	parts := splitOrFatal(t, Partitioner{Parts: 3}, p)
	for _, sub := range parts {
		if sub.Src.VM("j0-1") == nil {
			continue
		}
		if sub.Src.Node("n04") == nil || sub.Src.Node("n05") == nil {
			t.Fatal("fence nodes not bound to the covered VMs' partition")
		}
		if len(sub.Rules) == 0 {
			t.Fatal("fence dropped from its partition")
		}
	}
}

// unscopedRule implements only PlacementRule: the partitioner cannot
// see its scope.
type unscopedRule struct{}

func (unscopedRule) Apply(*cp.Solver, map[string]*cp.IntVar, map[string]int) error { return nil }
func (unscopedRule) Check(*vjob.Configuration) error                               { return nil }

func TestSplitRefusesOpaqueRules(t *testing.T) {
	p := partitionProblem(t)
	p.Rules = []PlacementRule{unscopedRule{}}
	if parts := splitOrFatal(t, Partitioner{Parts: 3}, p); parts != nil {
		t.Fatal("split a problem with an opaque rule")
	}
}

func TestSplitSeamsMixOverloadWithHeadroom(t *testing.T) {
	// Two overloaded single-node atoms and two empty nodes: each
	// partition must pair one overloaded node with one empty node, or
	// the overload cannot be shed.
	c := mkCluster(4, 1, 4096)
	target := map[string]vjob.State{}
	for i := 0; i < 2; i++ {
		j := vjob.NewVJob(fmt.Sprintf("j%d", i), i,
			vjob.NewVM(fmt.Sprintf("j%d-1", i), "", 1, 1024),
			vjob.NewVM(fmt.Sprintf("j%d-2", i), "", 1, 1024))
		for _, v := range j.VMs {
			c.AddVM(v)
			mustRun(t, c, v.Name, fmt.Sprintf("n%02d", i)) // both on one node
		}
		target[j.Name] = vjob.Running
	}
	p := Problem{Src: c, Target: target}
	parts := splitOrFatal(t, Partitioner{Parts: 2}, p)
	if len(parts) != 2 {
		t.Fatalf("got %d partitions", len(parts))
	}
	for i, sub := range parts {
		capCPU, dem := 0, 0
		for _, n := range sub.Src.Nodes() {
			capCPU += n.CPU()
		}
		for _, v := range sub.Src.VMs() {
			dem += v.CPUDemand()
		}
		if dem > capCPU {
			t.Fatalf("partition %d not packable: demand %d > capacity %d", i, dem, capCPU)
		}
	}
}

// randomProblem builds a small random instance: n nodes, a few vjobs in
// mixed states, and a consolidation-style target.
func randomProblem(t *testing.T, rng *rand.Rand) Problem {
	t.Helper()
	nodes := 2 + rng.Intn(7) // 2..8
	c := mkCluster(nodes, 2, 4096)
	var jobs []*vjob.VJob
	for i := 0; i < 1+rng.Intn(4); i++ {
		nvms := 1 + rng.Intn(3)
		vms := make([]*vjob.VM, nvms)
		for k := range vms {
			vms[k] = vjob.NewVM(fmt.Sprintf("j%d-%d", i, k), "", rng.Intn(2), 512+512*rng.Intn(3))
		}
		j := vjob.NewVJob(fmt.Sprintf("j%d", i), i, vms...)
		for _, v := range j.VMs {
			c.AddVM(v)
		}
		switch rng.Intn(3) {
		case 0: // running, memory-first-fit (CPU may over-commit)
			for _, v := range j.VMs {
				for _, n := range c.Nodes() {
					if c.FreeMemory(n.Name) >= v.MemoryDemand() {
						mustRun(t, c, v.Name, n.Name)
						break
					}
				}
			}
		case 1: // sleeping on a random node
			for _, v := range j.VMs {
				node := fmt.Sprintf("n%02d", rng.Intn(nodes))
				if err := c.SetSleeping(v.Name, node); err != nil {
					t.Fatal(err)
				}
			}
		}
		jobs = append(jobs, j)
	}
	return Problem{Src: c, Target: sched.Consolidation{}.Decide(c, jobs)}
}

// TestPartitionOracle is the partition-count-independence oracle: on
// small random instances the partitioned solve must stay viable and
// rule-clean for every partition count, and can never beat the
// monolithic optimum.
func TestPartitionOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for inst := 0; inst < 15; inst++ {
		p := randomProblem(t, rng)
		mono, err := Optimizer{Workers: 1, Partitions: 1}.Solve(p)
		if err != nil {
			continue // infeasible instance: nothing to compare
		}
		for _, parts := range []int{1, 2, 4} {
			res, err := Optimizer{Workers: 1, Partitions: parts}.Solve(p)
			if err != nil {
				t.Fatalf("inst %d parts %d: %v\n%s", inst, parts, err, p.Src)
			}
			if !res.Dst.Viable() {
				t.Fatalf("inst %d parts %d: non-viable destination:\n%s", inst, parts, res.Dst)
			}
			if err := res.Plan.Validate(); err != nil {
				t.Fatalf("inst %d parts %d: invalid plan: %v", inst, parts, err)
			}
			got, err := res.Plan.Result()
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(res.Dst) {
				t.Fatalf("inst %d parts %d: plan result differs from Dst", inst, parts)
			}
			if res.Cost < mono.Cost {
				t.Fatalf("inst %d parts %d: cost %d beats monolithic optimum %d",
					inst, parts, res.Cost, mono.Cost)
			}
			if parts == 1 && res.Cost != mono.Cost {
				t.Fatalf("inst %d: Partitions=1 cost %d != monolithic %d", inst, res.Cost, mono.Cost)
			}
		}
	}
}

// TestPartitionOracleConcurrent repeats a slice of the oracle with a
// portfolio inside each partition, exercising the concurrent path under
// the race detector.
func TestPartitionOracleConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for inst := 0; inst < 5; inst++ {
		p := randomProblem(t, rng)
		if _, err := (Optimizer{Workers: 1, Partitions: 1}).Solve(p); err != nil {
			continue
		}
		res, err := Optimizer{Workers: 4, Partitions: 2}.Solve(p)
		if err != nil {
			t.Fatalf("inst %d: %v", inst, err)
		}
		if !res.Dst.Viable() || res.Plan.Validate() != nil {
			t.Fatalf("inst %d: concurrent partitioned solve broke viability", inst)
		}
	}
}

// TestPartitionedSolveFailsOnInfeasibleSlice hand-builds a
// decomposition with an unsolvable slice: solvePartitioned must report
// the failure (SolveContext then falls back to the monolithic model,
// which the oracle above exercises end to end).
func TestPartitionedSolveFailsOnInfeasibleSlice(t *testing.T) {
	// A VM sleeping on a storage-only node: isolated, its slice has no
	// CPU to resume on, while the full cluster does.
	c := vjob.NewConfiguration()
	c.AddNode(vjob.NewNode("big0", 2, 8192))
	c.AddNode(vjob.NewNode("store", 0, 0))
	v := vjob.NewVM("sleeper", "js", 1, 1024)
	c.AddVM(v)
	if err := c.SetSleeping("sleeper", "store"); err != nil {
		t.Fatal(err)
	}
	p := Problem{Src: c, Target: map[string]vjob.State{"js": vjob.Running}}

	subA, err := c.Extract([]string{"store"}, []string{"sleeper"})
	if err != nil {
		t.Fatal(err)
	}
	subB, err := c.Extract([]string{"big0"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	parts := []Problem{
		{Src: subA, Target: p.Target},
		{Src: subB, Target: map[string]vjob.State{}},
	}
	o := Optimizer{Workers: 1}
	if _, err := o.solvePartitioned(context.Background(), p, parts); err == nil {
		t.Fatal("infeasible slice not reported")
	}
	// The public entry point still solves the problem (monolithic, or a
	// repaired decomposition that pairs the storage node with CPU).
	res, err := (Optimizer{Workers: 1, Partitions: 2}).Solve(p)
	if err != nil {
		t.Fatalf("solve failed despite feasible cluster: %v", err)
	}
	if res.Dst.StateOf("sleeper") != vjob.Running {
		t.Fatalf("sleeper not resumed:\n%s", res.Dst)
	}
}
