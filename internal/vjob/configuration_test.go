package vjob

import (
	"cwcs/internal/resources"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestConfig() *Configuration {
	c := NewConfiguration()
	for i := 0; i < 3; i++ {
		c.AddNode(NewNode(fmt.Sprintf("n%d", i+1), 1, 3072))
	}
	return c
}

func TestAddAndLookup(t *testing.T) {
	c := newTestConfig()
	v := NewVM("vm1", "j1", 1, 1024)
	c.AddVM(v)
	if got := c.VM("vm1"); got != v {
		t.Fatalf("VM lookup = %v, want %v", got, v)
	}
	if got := c.Node("n2"); got == nil || got.Name != "n2" {
		t.Fatalf("Node lookup = %v", got)
	}
	if s := c.StateOf("vm1"); s != Waiting {
		t.Fatalf("fresh VM state = %v, want waiting", s)
	}
	if c.NumNodes() != 3 || c.NumVMs() != 1 {
		t.Fatalf("counts = %d nodes, %d vms", c.NumNodes(), c.NumVMs())
	}
}

func TestStateTransitions(t *testing.T) {
	c := newTestConfig()
	c.AddVM(NewVM("vm1", "j1", 1, 1024))
	if err := c.SetRunning("vm1", "n1"); err != nil {
		t.Fatal(err)
	}
	if c.StateOf("vm1") != Running || c.HostOf("vm1") != "n1" {
		t.Fatalf("after SetRunning: state=%v host=%q", c.StateOf("vm1"), c.HostOf("vm1"))
	}
	if err := c.SetSleeping("vm1", "n2"); err != nil {
		t.Fatal(err)
	}
	if c.StateOf("vm1") != Sleeping || c.ImageHostOf("vm1") != "n2" {
		t.Fatalf("after SetSleeping: state=%v image=%q", c.StateOf("vm1"), c.ImageHostOf("vm1"))
	}
	if c.HostOf("vm1") != "" {
		t.Fatalf("sleeping VM reports host %q", c.HostOf("vm1"))
	}
	if err := c.SetWaiting("vm1"); err != nil {
		t.Fatal(err)
	}
	if c.LocationOf("vm1") != "" {
		t.Fatalf("waiting VM keeps location %q", c.LocationOf("vm1"))
	}
}

func TestSetErrors(t *testing.T) {
	c := newTestConfig()
	c.AddVM(NewVM("vm1", "j1", 1, 1024))
	if err := c.SetRunning("ghost", "n1"); err == nil {
		t.Fatal("SetRunning accepted unknown VM")
	}
	if err := c.SetRunning("vm1", "ghost"); err == nil {
		t.Fatal("SetRunning accepted unknown node")
	}
	if err := c.SetWaiting("ghost"); err == nil {
		t.Fatal("SetWaiting accepted unknown VM")
	}
}

func TestRemoveVM(t *testing.T) {
	c := newTestConfig()
	c.AddVM(NewVM("vm1", "j1", 1, 1024))
	c.AddVM(NewVM("vm2", "j1", 1, 1024))
	if err := c.SetRunning("vm1", "n1"); err != nil {
		t.Fatal(err)
	}
	c.RemoveVM("vm1")
	if c.VM("vm1") != nil {
		t.Fatal("vm1 still present after RemoveVM")
	}
	if c.StateOf("vm1") != Terminated {
		t.Fatalf("removed VM state = %v, want terminated", c.StateOf("vm1"))
	}
	if got := len(c.VMs()); got != 1 {
		t.Fatalf("VMs() length = %d, want 1", got)
	}
	c.RemoveVM("vm1") // idempotent
}

func TestResourceAccounting(t *testing.T) {
	c := newTestConfig()
	c.AddVM(NewVM("vm1", "j1", 1, 1024))
	c.AddVM(NewVM("vm2", "j1", 0, 512))
	mustRun(t, c, "vm1", "n1")
	mustRun(t, c, "vm2", "n1")
	if got := c.UsedCPU("n1"); got != 1 {
		t.Fatalf("UsedCPU = %d, want 1", got)
	}
	if got := c.UsedMemory("n1"); got != 1536 {
		t.Fatalf("UsedMemory = %d, want 1536", got)
	}
	if got := c.FreeCPU("n1"); got != 0 {
		t.Fatalf("FreeCPU = %d, want 0", got)
	}
	if got := c.FreeMemory("n1"); got != 1536 {
		t.Fatalf("FreeMemory = %d, want 1536", got)
	}
	if c.Fits(NewVM("x", "", 1, 100), "n1") {
		t.Fatal("Fits accepted a CPU-hungry VM on a full node")
	}
	if !c.Fits(NewVM("x", "", 0, 1536), "n1") {
		t.Fatal("Fits rejected a VM that exactly fits")
	}
	if c.FreeCPU("ghost") != 0 || c.FreeMemory("ghost") != 0 {
		t.Fatal("free resources of unknown node should be 0")
	}
}

func TestViability(t *testing.T) {
	// Reproduces Figure 5: 3 uniprocessor nodes; VM2 and VM3 demand a
	// whole CPU. Hosting both on one node is non-viable.
	c := newTestConfig()
	c.AddVM(NewVM("vm1", "", 0, 1024))
	c.AddVM(NewVM("vm2", "", 1, 1024))
	c.AddVM(NewVM("vm3", "", 1, 1024))
	mustRun(t, c, "vm2", "n1")
	mustRun(t, c, "vm3", "n1")
	mustRun(t, c, "vm1", "n2")
	if c.Viable() {
		t.Fatal("two busy VMs on one uniprocessor node reported viable")
	}
	vio := c.Violations()
	if len(vio) != 1 || vio[0].Node != "n1" || vio[0].Resource != "cpu" {
		t.Fatalf("violations = %+v", vio)
	}
	if vio[0].Error() == "" {
		t.Fatal("violation error string empty")
	}
	// Figure 5(b): spreading the busy VMs is viable.
	mustRun(t, c, "vm3", "n3")
	if !c.Viable() {
		t.Fatalf("spread configuration not viable: %+v", c.Violations())
	}
}

func TestMemoryViolation(t *testing.T) {
	c := NewConfiguration()
	c.AddNode(NewNode("n1", 4, 1024))
	c.AddVM(NewVM("vm1", "", 1, 800))
	c.AddVM(NewVM("vm2", "", 1, 800))
	mustRun(t, c, "vm1", "n1")
	mustRun(t, c, "vm2", "n1")
	vio := c.Violations()
	if len(vio) != 1 || vio[0].Resource != "memory" {
		t.Fatalf("violations = %+v", vio)
	}
}

func TestSleepingConsumesNothing(t *testing.T) {
	c := NewConfiguration()
	c.AddNode(NewNode("n1", 1, 1024))
	c.AddVM(NewVM("vm1", "", 1, 1024))
	c.AddVM(NewVM("vm2", "", 1, 1024))
	mustRun(t, c, "vm1", "n1")
	if err := c.SetSleeping("vm2", "n1"); err != nil {
		t.Fatal(err)
	}
	if !c.Viable() {
		t.Fatal("sleeping VM should not consume resources")
	}
	if got := len(c.SleepingOn("n1")); got != 1 {
		t.Fatalf("SleepingOn = %d, want 1", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := newTestConfig()
	c.AddVM(NewVM("vm1", "j1", 1, 1024))
	mustRun(t, c, "vm1", "n1")
	d := c.Clone()
	if !c.Equal(d) {
		t.Fatal("clone not equal to original")
	}
	mustRun(t, d, "vm1", "n2")
	if c.HostOf("vm1") != "n1" {
		t.Fatal("mutating clone affected original")
	}
	if c.Equal(d) {
		t.Fatal("Equal missed a placement difference")
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	a := newTestConfig()
	b := newTestConfig()
	if !a.Equal(b) {
		t.Fatal("empty configs differ")
	}
	a.AddVM(NewVM("vm1", "", 1, 512))
	if a.Equal(b) {
		t.Fatal("Equal missed a VM count difference")
	}
	b.AddVM(NewVM("vm2", "", 1, 512))
	if a.Equal(b) {
		t.Fatal("Equal missed a VM name difference")
	}
	b2 := newTestConfig()
	b2.AddVM(NewVM("vm1", "", 1, 512))
	mustRun(t, a, "vm1", "n1")
	if err := b2.SetSleeping("vm1", "n1"); err != nil {
		t.Fatal(err)
	}
	if a.Equal(b2) {
		t.Fatal("Equal missed a state difference")
	}
}

func TestDeterministicOrder(t *testing.T) {
	c := NewConfiguration()
	for _, n := range []string{"n3", "n1", "n2"} {
		c.AddNode(NewNode(n, 2, 4096))
	}
	for _, v := range []string{"vmB", "vmA", "vmC"} {
		c.AddVM(NewVM(v, "", 0, 256))
	}
	nodes := c.Nodes()
	for i, want := range []string{"n1", "n2", "n3"} {
		if nodes[i].Name != want {
			t.Fatalf("node order %v", nodes)
		}
	}
	vms := c.VMs()
	for i, want := range []string{"vmA", "vmB", "vmC"} {
		if vms[i].Name != want {
			t.Fatalf("vm order %v", vms)
		}
	}
}

func TestVJobStateDerivation(t *testing.T) {
	c := newTestConfig()
	j := NewVJob("j1", 0, NewVM("a", "", 1, 512), NewVM("b", "", 1, 512))
	for _, v := range j.VMs {
		c.AddVM(v)
	}
	if s := c.VJobState(j); s != Waiting {
		t.Fatalf("fresh vjob state = %v", s)
	}
	mustRun(t, c, "a", "n1")
	if s := c.VJobState(j); s != Running {
		t.Fatalf("partially running vjob state = %v, want running", s)
	}
	mustRun(t, c, "b", "n2")
	if s := c.VJobState(j); s != Running {
		t.Fatalf("running vjob state = %v", s)
	}
	if err := c.SetSleeping("a", "n1"); err != nil {
		t.Fatal(err)
	}
	if err := c.SetSleeping("b", "n2"); err != nil {
		t.Fatal(err)
	}
	if s := c.VJobState(j); s != Sleeping {
		t.Fatalf("sleeping vjob state = %v", s)
	}
	c.RemoveVM("a")
	c.RemoveVM("b")
	if s := c.VJobState(j); s != Terminated {
		t.Fatalf("terminated vjob state = %v", s)
	}
	if s := c.VJobState(NewVJob("empty", 0)); s != Terminated {
		t.Fatalf("empty vjob state = %v", s)
	}
}

func TestLifeCycleTransitions(t *testing.T) {
	cases := []struct {
		from, to State
		ok       bool
	}{
		{Waiting, Running, true},
		{Waiting, Sleeping, false},
		{Waiting, Terminated, false},
		{Running, Sleeping, true},
		{Running, Running, true}, // migration
		{Running, Terminated, true},
		{Running, Waiting, false},
		{Sleeping, Running, true},
		{Sleeping, Terminated, false},
		{Sleeping, Waiting, false},
		{Terminated, Running, false},
		{Terminated, Terminated, true},
	}
	for _, tc := range cases {
		if got := ValidTransition(tc.from, tc.to); got != tc.ok {
			t.Errorf("ValidTransition(%v,%v) = %v, want %v", tc.from, tc.to, got, tc.ok)
		}
	}
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[State]string{
		Waiting: "waiting", Running: "running", Sleeping: "sleeping",
		Terminated: "terminated", State(42): "invalid",
	} {
		if s.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
	if !Waiting.Ready() || !Sleeping.Ready() || Running.Ready() || Terminated.Ready() {
		t.Fatal("Ready() pseudo-state wrong")
	}
}

func TestVJobAggregates(t *testing.T) {
	j := NewVJob("j", 3, NewVM("a", "", 1, 512), NewVM("b", "", 0, 2048))
	if j.TotalCPU() != 1 {
		t.Fatalf("TotalCPU = %d", j.TotalCPU())
	}
	if j.TotalMemory() != 2560 {
		t.Fatalf("TotalMemory = %d", j.TotalMemory())
	}
	for _, v := range j.VMs {
		if v.VJob != "j" {
			t.Fatalf("VM %s not stamped with vjob name", v.Name)
		}
	}
}

func TestStringRendering(t *testing.T) {
	c := newTestConfig()
	c.AddVM(NewVM("vm1", "", 1, 512))
	c.AddVM(NewVM("vm2", "", 1, 512))
	c.AddVM(NewVM("vm3", "", 1, 512))
	mustRun(t, c, "vm1", "n1")
	if err := c.SetSleeping("vm2", "n1"); err != nil {
		t.Fatal(err)
	}
	s := c.String()
	for _, want := range []string{"n1: vm1 (vm2)", "waiting: vm3"} {
		if !contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	if NewNode("n", 1, 2).String() != "n[cpu=1,mem=2]" {
		t.Fatal("node String format changed")
	}
	if NewVM("v", "", 1, 2).String() != "v[cpu=1,mem=2]" {
		t.Fatal("vm String format changed")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewNode accepted negative capacity")
		}
	}()
	NewNode("bad", -1, 0)
}

func TestNegativeDemandPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewVM accepted negative demand")
		}
	}()
	NewVM("bad", "", 0, -5)
}

// Property: placements never make accounting negative, clones stay
// equal until mutated, and viability matches a brute-force check.
func TestViabilityMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewConfiguration()
		nNodes := 1 + rng.Intn(5)
		for i := 0; i < nNodes; i++ {
			c.AddNode(NewNode(fmt.Sprintf("n%d", i), 1+rng.Intn(4), 512*(1+rng.Intn(8))))
		}
		nVMs := rng.Intn(12)
		for i := 0; i < nVMs; i++ {
			v := NewVM(fmt.Sprintf("v%d", i), "", rng.Intn(3), 256*(1+rng.Intn(8)))
			c.AddVM(v)
			node := fmt.Sprintf("n%d", rng.Intn(nNodes))
			switch rng.Intn(3) {
			case 0:
				if err := c.SetRunning(v.Name, node); err != nil {
					return false
				}
			case 1:
				if err := c.SetSleeping(v.Name, node); err != nil {
					return false
				}
			}
		}
		// Brute-force viability.
		viable := true
		for _, n := range c.Nodes() {
			cpu, mem := 0, 0
			for _, v := range c.VMs() {
				if c.StateOf(v.Name) == Running && c.HostOf(v.Name) == n.Name {
					cpu += v.CPUDemand()
					mem += v.MemoryDemand()
				}
			}
			if cpu > n.CPU() || mem > n.Memory() {
				viable = false
			}
		}
		return viable == c.Viable() && c.Equal(c.Clone())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRemoveNodeRefusesPlacements: a node leaves the configuration
// only once nothing — running VM or suspended image — is placed on it.
func TestRemoveNodeRefusesPlacements(t *testing.T) {
	c := NewConfiguration()
	c.AddNode(NewNode("m0", 2, 4096))
	c.AddNode(NewNode("m1", 2, 4096))
	c.AddVM(NewVM("v1", "j", 1, 1024))
	if err := c.RemoveNode("ghost"); err == nil {
		t.Fatal("removed an unknown node")
	}
	if err := c.SetRunning("v1", "m0"); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveNode("m0"); err == nil {
		t.Fatal("removed a node hosting a running VM")
	}
	if err := c.SetSleeping("v1", "m0"); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveNode("m0"); err == nil {
		t.Fatal("removed a node holding an image")
	}
	if err := c.SetWaiting("v1"); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveNode("m0"); err != nil {
		t.Fatalf("empty node not removable: %v", err)
	}
	if c.Node("m0") != nil || c.NumNodes() != 1 {
		t.Fatal("node still present after removal")
	}
	if got := c.Nodes(); len(got) != 1 || got[0].Name != "m1" {
		t.Fatalf("node order after removal: %v", got)
	}
}

// TestViolationsMultiDimension: Violations reports every over-committed
// dimension by wire name, in node then registry order.
func TestViolationsMultiDimension(t *testing.T) {
	c := NewConfiguration()
	cap := resources.New(2, 4096)
	cap.Set(resources.NetBW, 100)
	c.AddNode(NewNodeRes("n1", cap))
	d := resources.New(3, 512)
	d.Set(resources.NetBW, 150)
	c.AddVM(NewVMRes("v1", "j", d))
	mustRun(t, c, "v1", "n1")
	vs := c.Violations()
	if len(vs) != 2 {
		t.Fatalf("violations = %v", vs)
	}
	if vs[0].Resource != "cpu" || vs[0].Demand != 3 || vs[0].Capacity != 2 {
		t.Fatalf("cpu violation = %+v", vs[0])
	}
	if vs[1].Resource != "net" || vs[1].Demand != 150 || vs[1].Capacity != 100 {
		t.Fatalf("net violation = %+v", vs[1])
	}
}

// TestFreeResourcesMultiDimension: the single-pass free map carries
// every dimension at once and matches the per-node accessors.
func TestFreeResourcesMultiDimension(t *testing.T) {
	c := NewConfiguration()
	cap := resources.New(4, 8192)
	cap.Set(resources.DiskIO, 600)
	c.AddNode(NewNodeRes("n1", cap))
	d := resources.New(1, 1024)
	d.Set(resources.DiskIO, 150)
	c.AddVM(NewVMRes("v1", "j", d))
	mustRun(t, c, "v1", "n1")
	free := c.FreeResources()
	if got := free["n1"]; got.Get(resources.DiskIO) != 450 || got.Get(resources.CPU) != 3 {
		t.Fatalf("free = %s", got)
	}
	if free["n1"] != c.Free("n1") {
		t.Fatalf("FreeResources disagrees with Free: %s vs %s", free["n1"], c.Free("n1"))
	}
	if c.FreeCPU("n1") != 3 || c.FreeMemory("n1") != 7168 {
		t.Fatal("compat accessors drifted")
	}
}
