package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"

	"cwcs/internal/duration"
	"cwcs/internal/plan"
	"cwcs/internal/vjob"
)

// Phase is one step of a VM's embedded workload: it demands CPU
// processing units and represents Seconds of work at full speed. A
// phase with CPU = 0 models a communication/idle stage that simply
// elapses (at full speed) without consuming a processing unit.
type Phase struct {
	CPU     int
	Seconds float64
}

// workload tracks a VM's progress through its phases.
type workload struct {
	phases    []Phase
	idx       int
	remaining float64 // seconds of work left in the current phase
	done      bool
	frozen    bool // a suspend/stop is in flight: no progress
}

// operation is an in-flight context-switch action.
type operation struct {
	action plan.Action
	nodes  map[string]bool // nodes whose VMs are decelerated
	tr     duration.Transfer
	done   func(error)
	// xfer is non-nil for metered transfers (see transfer.go): the
	// operation then has no scheduled end time — the Run loop re-times
	// it at the bandwidth actually available.
	xfer *transfer
}

// Cluster is the simulated cluster.
type Cluster struct {
	cfg   *vjob.Configuration
	model duration.Model
	now   float64
	seq   int64
	queue eventQueue

	workloads map[string]*workload
	ops       map[*operation]bool
	// xfers lists the in-flight metered transfers in start order (a
	// deterministic completion order when several drain together).
	xfers []*operation

	// offline holds the nodes taken out of the configuration by
	// SetNodeOffline, keyed by name, so SetNodeOnline can restore them
	// with their original capacities.
	offline map[string]*vjob.Node

	// checks run after every executed event and phase advance (see
	// OnAdvance); the invariant checker hooks in here.
	checks []func()

	// onLoad are the load-change subscribers (see OnLoadChange); the
	// event-driven control loop hooks in here.
	onLoad []func(vm string)

	// SuspendToRAM switches suspend/resume to the §7 future-work
	// fast path (no disk image) in the duration model.
	SuspendToRAM bool

	// FailAction, when non-nil, is consulted at the instant each
	// action would complete: a non-nil error makes the action fail —
	// the configuration is left untouched and the error is delivered
	// to the action's done callback — modelling a flaky driver or
	// hypervisor (the paper's SSH/Xen-API calls can fail too). Churn
	// scenarios use it to exercise the loop's plan-repair path.
	FailAction func(a plan.Action) error

	// telemetry
	actionsRun map[string]int
	localOps   int
	remoteOps  int
}

// New wraps a configuration into a simulator. The configuration is
// owned by the simulator afterwards: use Config to observe it.
func New(cfg *vjob.Configuration, m duration.Model) *Cluster {
	return &Cluster{
		cfg:        cfg,
		model:      m,
		workloads:  make(map[string]*workload),
		ops:        make(map[*operation]bool),
		offline:    make(map[string]*vjob.Node),
		actionsRun: make(map[string]int),
	}
}

// SetNodeOffline takes an evacuated node out of the cluster: it leaves
// the configuration (no solve can place anything there) until
// SetNodeOnline restores it. The node must hold no VM — drain it first
// (core.DrainSet) and let the control loop evacuate; taking a loaded
// node down would strand its guests' placements.
func (c *Cluster) SetNodeOffline(name string) error {
	if c.offline[name] != nil {
		return nil // already offline
	}
	n := c.cfg.Node(name)
	if n == nil {
		return fmt.Errorf("sim: unknown node %q", name)
	}
	if err := c.cfg.RemoveNode(name); err != nil {
		return err
	}
	c.offline[name] = n
	c.runChecks()
	return nil
}

// SetNodeOnline returns an offline node to the cluster with its
// original capacities.
func (c *Cluster) SetNodeOnline(name string) error {
	n := c.offline[name]
	if n == nil {
		return fmt.Errorf("sim: node %q is not offline", name)
	}
	delete(c.offline, name)
	c.cfg.AddNode(n)
	c.runChecks()
	return nil
}

// OfflineNodes returns the names of the nodes currently offline, in no
// particular order.
func (c *Cluster) OfflineNodes() []string {
	out := make([]string, 0, len(c.offline))
	for n := range c.offline {
		out = append(out, n)
	}
	return out
}

// Now returns the virtual time in seconds.
func (c *Cluster) Now() float64 { return c.now }

// Config returns the live cluster configuration. Callers that need a
// stable view must Clone it.
func (c *Cluster) Config() *vjob.Configuration { return c.cfg }

// Snapshot returns an independent copy of the configuration, the
// monitoring view of the cluster.
func (c *Cluster) Snapshot() *vjob.Configuration { return c.cfg.Clone() }

// OnAdvance registers fn to run after every executed event and after
// every workload phase advance. Checkers use it to audit the
// configuration at each state change of the simulation.
func (c *Cluster) OnAdvance(fn func()) { c.checks = append(c.checks, fn) }

// OnLoadChange registers fn to run whenever a workload phase advance
// changes a VM's CPU demand or completes its workload — the
// monitoring signal the event-driven control loop reacts to.
func (c *Cluster) OnLoadChange(fn func(vm string)) { c.onLoad = append(c.onLoad, fn) }

func (c *Cluster) notifyLoad(vm string) {
	for _, fn := range c.onLoad {
		fn(vm)
	}
}

func (c *Cluster) runChecks() {
	for _, fn := range c.checks {
		fn()
	}
}

// Schedule registers fn to run at the given virtual time (clamped to
// now if in the past).
func (c *Cluster) Schedule(at float64, fn func()) {
	if at < c.now {
		at = c.now
	}
	c.seq++
	heap.Push(&c.queue, &event{at: at, seq: c.seq, fn: fn})
}

// SetWorkload installs the phases a VM will execute once running. The
// VM's CPU demand is updated as phases begin, which is how monitoring
// observes changing requirements.
func (c *Cluster) SetWorkload(vm string, phases []Phase) {
	w := &workload{phases: phases}
	if len(phases) > 0 {
		w.remaining = phases[0].Seconds
	} else {
		w.done = true
	}
	c.workloads[vm] = w
	c.applyPhaseDemand(vm, w)
}

func (c *Cluster) applyPhaseDemand(vm string, w *workload) {
	v := c.cfg.VM(vm)
	if v == nil {
		return
	}
	if w.done || w.idx >= len(w.phases) {
		v.SetCPUDemand(0)
		return
	}
	v.SetCPUDemand(w.phases[w.idx].CPU)
}

// WorkloadDone reports whether the VM finished all its phases (VMs
// without a workload are never done: they are service VMs).
func (c *Cluster) WorkloadDone(vm string) bool {
	w, ok := c.workloads[vm]
	return ok && w.done
}

// VJobDone reports whether every VM of the vjob completed its
// workload.
func (c *Cluster) VJobDone(j *vjob.VJob) bool {
	for _, v := range j.VMs {
		if !c.WorkloadDone(v.Name) {
			return false
		}
	}
	return len(j.VMs) > 0
}

// StartAction launches a context-switch action; done(err) fires at the
// virtual instant the action completes, after the configuration has
// been updated. The manipulated VM freezes during suspends and stops,
// keeps computing (decelerated) during live migration, and starts
// computing only at completion for run/resume.
//
// An action the duration model cannot time (an unmodeled type) never
// starts: done fires with the model's error at the current instant, so
// the plan's driver records a failed action where the daemon used to
// panic.
func (c *Cluster) StartAction(a plan.Action, done func(error)) {
	d, tr, err := c.actionTiming(a)
	if err != nil {
		c.Schedule(c.now, func() {
			if done != nil {
				done(err)
			}
		})
		return
	}
	op := &operation{action: a, nodes: map[string]bool{}, tr: tr, done: done}
	switch a := a.(type) {
	case *plan.Migration:
		op.nodes[a.Src] = true
		op.nodes[a.Dst] = true
	case *plan.Run:
		op.nodes[a.On] = true
	case *plan.Stop:
		op.nodes[a.On] = true
		c.freeze(a.Machine.Name)
	case *plan.Suspend:
		op.nodes[a.On] = true
		op.nodes[a.To] = true
		c.freeze(a.Machine.Name)
	case *plan.Resume:
		op.nodes[a.From] = true
		op.nodes[a.On] = true
	}
	if tr == duration.Local {
		c.localOps++
	} else {
		c.remoteOps++
	}
	c.ops[op] = true
	if x := c.newTransfer(a); x != nil {
		// Metered transfer: no fixed end time — the Run loop advances
		// its progress at the bandwidth actually available and
		// completes it when the work drains.
		op.xfer = x
		c.xfers = append(c.xfers, op)
		return
	}
	c.Schedule(c.now+d.Seconds(), func() { c.finishAction(op) })
}

// finishAction completes an in-flight operation: the action is applied
// (or failed by FailAction), the manipulated VM's workload thaws, and
// the done callback fires.
func (c *Cluster) finishAction(op *operation) {
	delete(c.ops, op)
	if op.xfer != nil {
		c.removeTransfer(op)
	}
	a := op.action
	var err error
	if c.FailAction != nil {
		err = c.FailAction(a)
	}
	if err == nil {
		err = a.Apply(c.cfg)
	}
	if err == nil {
		c.actionsRun[kindOf(a)]++
	}
	// The operation is over either way: a failed suspend/stop
	// leaves the VM running, so its workload must thaw.
	if w, ok := c.workloads[a.VM().Name]; ok {
		w.frozen = false
	}
	if op.done != nil {
		op.done(err)
	}
}

// actionTiming resolves the duration and transfer mode, honouring the
// suspend-to-RAM mode.
func (c *Cluster) actionTiming(a plan.Action) (d time.Duration, tr duration.Transfer, err error) {
	if c.SuspendToRAM {
		switch a.(type) {
		case *plan.Suspend, *plan.Resume:
			return c.model.SuspendToRAM(), duration.Local, nil
		}
	}
	return c.model.ActionDuration(a)
}

func (c *Cluster) freeze(vm string) {
	if w, ok := c.workloads[vm]; ok {
		w.frozen = true
	}
}

func kindOf(a plan.Action) string {
	switch a.(type) {
	case *plan.Migration:
		return "migrate"
	case *plan.Run:
		return "run"
	case *plan.Stop:
		return "stop"
	case *plan.Suspend:
		return "suspend"
	case *plan.Resume:
		return "resume"
	default:
		return "unknown"
	}
}

// ActionCounts returns how many actions of each kind completed.
func (c *Cluster) ActionCounts() map[string]int {
	out := make(map[string]int, len(c.actionsRun))
	for k, v := range c.actionsRun {
		out[k] = v
	}
	return out
}

// TransferCounts returns how many operations ran locally vs. remotely
// (the paper reports 21 of 28 resumes were local).
func (c *Cluster) TransferCounts() (local, remote int) { return c.localOps, c.remoteOps }

// rates computes, for every running busy unfrozen VM with work left,
// its progress rate in work-seconds per second: the node's CPU share
// divided by the deceleration imposed by in-flight operations.
func (c *Cluster) rates() map[string]float64 {
	decel := map[string]float64{}
	for op := range c.ops {
		f := c.model.Deceleration(op.tr)
		for n := range op.nodes {
			if f > decel[n] {
				decel[n] = f
			}
		}
	}
	out := make(map[string]float64)
	for _, n := range c.cfg.Nodes() {
		demand := 0
		var active []*vjob.VM
		for _, v := range c.cfg.RunningOn(n.Name) {
			w, ok := c.workloads[v.Name]
			if !ok || w.done || w.frozen {
				continue
			}
			active = append(active, v)
			demand += v.CPUDemand()
		}
		share := 1.0
		if cpu := n.CPU(); demand > cpu && demand > 0 {
			share = float64(cpu) / float64(demand)
		}
		f := decel[n.Name]
		if f == 0 {
			f = 1
		}
		for _, v := range active {
			r := share / f
			if v.CPUDemand() == 0 {
				// Communication phases elapse in real time, modulo
				// operation deceleration.
				r = 1 / f
			}
			out[v.Name] = r
		}
	}
	return out
}

// Run processes events and workload progress until the virtual clock
// reaches `until` or nothing remains to happen.
func (c *Cluster) Run(until float64) {
	// Audit the configuration as the simulation (re)starts: this seeds
	// the invariant checker's baseline with the hand-built initial
	// placement rather than with the outcome of the first event.
	c.runChecks()
	const eps = 1e-9
	for c.now < until-eps {
		rates := c.rates()
		xrates := c.transferRates()
		tEvent := math.Inf(1)
		if len(c.queue) > 0 {
			tEvent = c.queue[0].at
		}
		tPhase := math.Inf(1)
		for vm, r := range rates {
			w := c.workloads[vm]
			if r > 0 {
				if t := c.now + w.remaining/r; t < tPhase {
					tPhase = t
				}
			}
		}
		// Metered transfers complete when their remaining work drains
		// at the currently available bandwidth; any event in between
		// (a concurrent transfer starting or ending, a VM moving) makes
		// the loop come back here and re-time them.
		tXfer := math.Inf(1)
		for _, op := range c.xfers {
			if t := c.now + op.xfer.remainingSeconds(xrates[op]); t < tXfer {
				tXfer = t
			}
		}
		if math.IsInf(math.Min(math.Min(tEvent, tPhase), tXfer), 1) {
			return // quiescent: no event, no workload, no transfer
		}
		t := math.Min(math.Min(math.Min(tEvent, tPhase), tXfer), until)
		// Advance progress to t.
		dt := t - c.now
		if dt > 0 {
			for vm, r := range rates {
				c.workloads[vm].remaining -= dt * r
			}
			for _, op := range c.xfers {
				op.xfer.advance(dt, xrates[op])
			}
			c.now = t
		}
		// Phase completions due now.
		for vm, r := range rates {
			if r <= 0 {
				continue
			}
			w := c.workloads[vm]
			if w.remaining <= eps {
				c.advancePhase(vm, w)
				c.runChecks()
			}
		}
		// Transfer completions due now, in start order. finishAction
		// removes the operation from c.xfers (and its done callback may
		// start new transfers), so rescan from the front each time.
		for {
			var fire *operation
			for _, op := range c.xfers {
				if op.xfer.finished() {
					fire = op
					break
				}
			}
			if fire == nil {
				break
			}
			c.finishAction(fire)
			c.runChecks()
		}
		// Events due now.
		for len(c.queue) > 0 && c.queue[0].at <= c.now+eps {
			e := heap.Pop(&c.queue).(*event)
			e.fn()
			c.runChecks()
		}
		if dt == 0 && tEvent > c.now+eps && tPhase > c.now+eps && tXfer > c.now+eps {
			// Nothing progressed and nothing fired: avoid spinning.
			return
		}
	}
}

// advancePhase moves a VM to its next workload phase, notifying the
// load-change subscribers when the observable demand shifted or the
// workload completed.
func (c *Cluster) advancePhase(vm string, w *workload) {
	before := -1
	if v := c.cfg.VM(vm); v != nil {
		before = v.CPUDemand()
	}
	w.idx++
	if w.idx >= len(w.phases) {
		w.done = true
		w.remaining = 0
	} else {
		w.remaining = w.phases[w.idx].Seconds
	}
	c.applyPhaseDemand(vm, w)
	after := before
	if v := c.cfg.VM(vm); v != nil {
		after = v.CPUDemand()
	}
	if after != before || w.done {
		c.notifyLoad(vm)
	}
}

// RemainingWork returns the seconds of work (at full speed) the VM
// still has across all phases, for tests and progress reports.
func (c *Cluster) RemainingWork(vm string) float64 {
	w, ok := c.workloads[vm]
	if !ok || w.done {
		return 0
	}
	total := w.remaining
	for i := w.idx + 1; i < len(w.phases); i++ {
		total += w.phases[i].Seconds
	}
	return total
}

// String summarizes the simulator state.
func (c *Cluster) String() string {
	return fmt.Sprintf("sim[t=%.1fs, %d events, %d ops in flight]", c.now, len(c.queue), len(c.ops))
}
