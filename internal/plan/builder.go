package plan

import (
	"errors"
	"fmt"

	"cwcs/internal/resources"
	"cwcs/internal/vjob"
)

// ErrNoProgress is returned when no action is feasible, no
// inter-dependent migration cycle can be broken with a pivot node, and
// actions remain: the destination configuration is not reachable.
var ErrNoProgress = errors.New("plan: no feasible action and no breakable migration cycle")

// Builder turns a reconfiguration graph into a reconfiguration plan.
// The zero value is ready to use and applies the paper's defaults.
type Builder struct {
	// DisableVJobGrouping skips the consistency pass that regroups the
	// suspends and resumes of a vjob into a single pool (§4.1). Only
	// useful for ablation studies; production callers keep it false.
	DisableVJobGrouping bool
	// DisableTransferGating skips the per-pool NIC admission of
	// DESIGN.md §9, letting concurrent transfers oversubscribe an
	// endpoint's `net` capacity the way the memory-only model did.
	// Only useful for blind-vs-aware studies; production callers keep
	// it false. On configurations without `net` capacities the flag is
	// moot: nothing is metered either way.
	DisableTransferGating bool
}

// Build is a convenience wrapper: it diffs the two configurations and
// plans the resulting graph with the default builder.
func Build(src, dst *vjob.Configuration) (*Plan, error) {
	g, err := BuildGraph(src, dst)
	if err != nil {
		return nil, err
	}
	return Builder{}.Plan(g)
}

// Plan builds the reconfiguration plan for the graph: it iteratively
// extracts pools of actions feasible in parallel, breaking
// inter-dependent migration cycles with bypass migrations through
// pivot nodes when no action is directly feasible (§4.1).
func (b Builder) Plan(g *Graph) (*Plan, error) {
	p := &Plan{Src: g.Src}
	cur := g.Src.Clone()
	remaining := append([]Action(nil), g.Actions...)

	for len(remaining) > 0 {
		pool, rest := extractPool(cur, remaining, !b.DisableTransferGating)
		if len(pool) == 0 {
			bypass, rewritten, err := breakCycle(cur, remaining)
			if err != nil {
				return nil, err
			}
			p.Bypass++
			pool = Pool{bypass}
			remaining = rewritten
		} else {
			remaining = rest
		}
		pool.sortDeterministic()
		for _, a := range pool {
			if err := a.Apply(cur); err != nil {
				return nil, fmt.Errorf("plan: applying %s: %w", a, err)
			}
		}
		p.Pools = append(p.Pools, pool)
	}

	if !b.DisableVJobGrouping {
		groupVJobResumes(p)
	}
	return p, nil
}

// extractPool selects a maximal set of actions feasible in parallel
// against the configuration at pool start. Resource-demanding actions
// reserve their demands so two actions cannot share the same free
// space; resources released by actions of the pool are NOT credited,
// because a parallel action cannot rely on a concurrent completion.
//
// With gateTransfers set, each action's transfer demand (DESIGN.md §9)
// is additionally booked against the NIC capacities of its endpoints,
// and an action whose transfer would oversubscribe a NIC is deferred
// to a later pool. A transfer alone always fits (its demand is clamped
// to each NIC), so gating can only serialize pools, never empty them:
// the §4.1 progress guarantee is untouched.
func extractPool(cur *vjob.Configuration, remaining []Action, gateTransfers bool) (Pool, []Action) {
	free := cur.FreeResources()
	book := newTransferBook(cur)
	var pool Pool
	var rest []Action
	for _, a := range remaining {
		if gateTransfers && !book.fits(a) {
			rest = append(rest, a)
			continue
		}
		node, demand := demandOf(a)
		if node == "" { // pure release: always resource-feasible
			pool = append(pool, a)
			book.admit(a)
			continue
		}
		if demand.Fits(free[node]) {
			pool = append(pool, a)
			free[node] = free[node].Sub(demand)
			book.admit(a)
		} else {
			rest = append(rest, a)
		}
	}
	return pool, rest
}

// demandOf returns the node an action consumes resources on, with the
// per-dimension amounts, or "" for pure-release actions (suspend,
// stop).
func demandOf(a Action) (node string, demand resources.Vector) {
	switch a := a.(type) {
	case *Migration:
		return a.Dst, a.Machine.Demand
	case *Run:
		return a.On, a.Machine.Demand
	case *Resume:
		return a.On, a.Machine.Demand
	default:
		return "", resources.Vector{}
	}
}

// breakCycle handles the inter-dependent constraint of §4.1: a set of
// non-feasible migrations forming a cycle (Figure 8). It locates a
// cycle in the directed graph src->dst of the pending migrations,
// chooses a pivot node outside the cycle with room for one of the
// cycle's VMs, and splits that VM's migration into a bypass migration
// to the pivot followed by a migration from the pivot to the original
// destination. The bypass is feasible immediately.
func breakCycle(cur *vjob.Configuration, remaining []Action) (Action, []Action, error) {
	// Adjacency: for each node, the pending migrations leaving it.
	out := make(map[string][]*Migration)
	for _, a := range remaining {
		if m, ok := a.(*Migration); ok {
			out[m.Src] = append(out[m.Src], m)
		}
	}
	cycle := findMigrationCycle(out)
	if cycle == nil {
		return nil, nil, ErrNoProgress
	}
	inCycle := make(map[string]bool)
	for _, m := range cycle {
		inCycle[m.Src] = true
		inCycle[m.Dst] = true
	}
	for _, m := range cycle {
		for _, n := range cur.Nodes() {
			if inCycle[n.Name] || n.Name == m.Src {
				continue
			}
			if cur.Fits(m.Machine, n.Name) {
				bypass := &Migration{Machine: m.Machine, Src: m.Src, Dst: n.Name}
				rewritten := make([]Action, 0, len(remaining))
				for _, a := range remaining {
					if a == Action(m) {
						rewritten = append(rewritten, &Migration{Machine: m.Machine, Src: n.Name, Dst: m.Dst})
					} else {
						rewritten = append(rewritten, a)
					}
				}
				return bypass, rewritten, nil
			}
		}
	}
	return nil, nil, ErrNoProgress
}

// findMigrationCycle walks the src->dst edges of the pending
// migrations and returns the first cycle found, as the list of
// migrations composing it, or nil.
func findMigrationCycle(out map[string][]*Migration) []*Migration {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var stack []*Migration
	var cycle []*Migration

	var dfs func(node string) bool
	dfs = func(node string) bool {
		color[node] = gray
		for _, m := range out[node] {
			switch color[m.Dst] {
			case white:
				stack = append(stack, m)
				if dfs(m.Dst) {
					return true
				}
				stack = stack[:len(stack)-1]
			case gray:
				// Found a back edge: extract the cycle from the stack.
				cycle = append(cycle, m)
				for i := len(stack) - 1; i >= 0; i-- {
					cycle = append(cycle, stack[i])
					if stack[i].Src == m.Dst {
						break
					}
				}
				return true
			}
		}
		color[node] = black
		return false
	}
	// Deterministic start order.
	starts := make([]string, 0, len(out))
	for n := range out {
		starts = append(starts, n)
	}
	sortStrings(starts)
	for _, n := range starts {
		if color[n] == white {
			stack = stack[:0]
			if dfs(n) {
				return cycle
			}
		}
	}
	return nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// groupVJobResumes implements the consistency pass of §4.1: the VMs of
// a vjob must be suspended or resumed in parallel, within a short
// period. Suspends are naturally grouped in the first pool (they are
// always feasible); the resumes of a vjob are moved into the pool that
// initially contains the LAST resume of that vjob, so they start
// together. The move is kept only when the plan still validates, since
// delaying a resume may no longer be viable if later pools re-used the
// space.
func groupVJobResumes(p *Plan) {
	lastPool := make(map[string]int)
	count := make(map[string]int)
	for i, pool := range p.Pools {
		for _, a := range pool {
			if r, ok := a.(*Resume); ok && r.Machine.VJob != "" {
				lastPool[r.Machine.VJob] = i
				count[r.Machine.VJob]++
			}
		}
	}
	for job, target := range lastPool {
		if count[job] < 2 {
			continue
		}
		moved := tryMoveResumes(p, job, target)
		if moved != nil && moved.Validate() == nil {
			p.Pools = moved.Pools
		}
	}
	// Drop pools emptied by the moves.
	pools := p.Pools[:0]
	for _, pool := range p.Pools {
		if len(pool) > 0 {
			pools = append(pools, pool)
		}
	}
	p.Pools = pools
}

// tryMoveResumes returns a copy of the plan with every resume of the
// vjob moved into the target pool, or nil when nothing moved.
func tryMoveResumes(p *Plan, job string, target int) *Plan {
	out := &Plan{Src: p.Src, Bypass: p.Bypass}
	out.Pools = make([]Pool, len(p.Pools))
	changed := false
	var grouped Pool
	for i, pool := range p.Pools {
		for _, a := range pool {
			if r, ok := a.(*Resume); ok && r.Machine.VJob == job && i != target {
				grouped = append(grouped, a)
				changed = true
				continue
			}
			out.Pools[i] = append(out.Pools[i], a)
		}
	}
	if !changed {
		return nil
	}
	out.Pools[target] = append(out.Pools[target], grouped...)
	out.Pools[target].sortDeterministic()
	return out
}
