package experiments

import (
	"strings"
	"testing"
	"time"

	"cwcs/internal/sim"
)

// quickChaosOptions shrinks the chaos study so every cell runs in
// seconds: a small cluster, short workloads, chaos windows opening
// right after the arrival wave.
func quickChaosOptions() ChaosOptions {
	return ChaosOptions{
		Churn: ChurnOptions{
			Nodes: 48, NodeCPU: 2, NodeMemory: 4096,
			InitialVJobs: 5, VMsPerVJob: 4,
			ArrivalRate: 1.0 / 40, ArrivalStop: 300,
			WorkScale: 0.2,
			// Past the web-tide trace's last departure (t=2118), so the
			// replay cell sees the batch job complete.
			Horizon:  2400,
			Debounce: 5,
			Timeout:  100 * time.Millisecond,
			// Sequential search keeps the cells deterministic for the
			// golden-adjacent assertions and the regress-gated
			// BenchmarkChaosStudy.
			Workers:     1,
			FailureRate: 0.02,
			Seed:        7,
		},
		// The quick workloads are short: every chaos window opens while
		// they are still live, or the cells degenerate to the baseline.
		Racks: 8, Bursts: 2, BurstFrom: 100, BurstUntil: 600, Outage: 150,
		Flappers: 4, FlapFrom: 100, FlapUntil: 600, MeanDown: 20, MeanUp: 60,
		Loss:           sim.EventLoss{Fraction: 0.5, From: 60, Until: 600},
		StormRate:      0.25,
		StormFrom:      60,
		StormUntil:     400,
		ResyncInterval: 40,
		Trace:          "web-tide",
	}
}

// TestChaosStudyQuick is the -race chaos cell of the suite: every
// scenario class plus trace replay on the quick cluster, asserting
// zero structural breaches and no unrecovered violation at the
// horizon in every cell.
func TestChaosStudyQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every chaos cell")
	}
	rows := ChaosStudy(quickChaosOptions())
	if len(rows) != len(ChaosScenarios()) {
		t.Fatalf("rows = %d, want %d", len(rows), len(ChaosScenarios()))
	}
	for i, r := range rows {
		if r.Scenario != ChaosScenarios()[i] {
			t.Fatalf("cell %d = %s, want %s", i, r.Scenario, ChaosScenarios()[i])
		}
		if r.Breaches != 0 {
			t.Errorf("%s: %d structural breaches", r.Scenario, r.Breaches)
		}
		if r.FinalViolations != 0 {
			t.Errorf("%s: ended with %d capacity violations", r.Scenario, r.FinalViolations)
		}
		if r.Unrecovered != 0 {
			t.Errorf("%s: violation episode still open at the horizon", r.Scenario)
		}
		if r.Episodes > 0 && (r.RecoveryP50 <= 0 || r.RecoveryMax < r.RecoveryP95 || r.RecoveryP95 < r.RecoveryP50) {
			t.Errorf("%s: inconsistent quantiles p50=%v p95=%v max=%v", r.Scenario, r.RecoveryP50, r.RecoveryP95, r.RecoveryMax)
		}
		t.Logf("%s: %+v", r.Scenario, r)
	}
	// The chaos must actually bite: the loss cell must drop events and
	// the storm cell must fail more actions than the baseline repairs.
	byName := map[string]ChaosResult{}
	for _, r := range rows {
		byName[r.Scenario] = r
	}
	if byName[ScenarioLoss].Dropped == 0 {
		t.Error("event-loss cell dropped nothing")
	}
	if base, storm := byName[ScenarioBaseline], byName[ScenarioStorm]; storm.Stats.Repairs+storm.Stats.FailedRepairs <= base.Stats.Repairs+base.Stats.FailedRepairs {
		t.Errorf("action-storm did not stress the repair path: %d vs baseline %d",
			storm.Stats.Repairs+storm.Stats.FailedRepairs, base.Stats.Repairs+base.Stats.FailedRepairs)
	}
	if byName[ScenarioReplay].Arrived == 0 || byName[ScenarioReplay].Completed == 0 {
		// The replay cell must place the trace's jobs and see its batch
		// job depart and terminate within the horizon.
		t.Errorf("trace replay placed/completed nothing: %+v", byName[ScenarioReplay])
	}
}

// TestChaosSeedStability pins the rng-stream contract: running a
// chaos cell must not perturb the seeded churn scenario itself, so a
// cell's workload (arrivals) matches the baseline's exactly.
func TestChaosSeedStability(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two chaos cells")
	}
	opts := quickChaosOptions()
	base := RunChaos(ScenarioBaseline, opts)
	storm := RunChaos(ScenarioStorm, opts)
	if base.Arrived != storm.Arrived {
		t.Fatalf("chaos cell shifted the arrival stream: %d vs %d vjobs", storm.Arrived, base.Arrived)
	}
}

func TestChaosRendering(t *testing.T) {
	rows := []ChaosResult{
		{Scenario: ScenarioBaseline, Episodes: 3, RecoveryP50: 12, RecoveryP95: 40, RecoveryMax: 41, ViolationSeconds: 321, Arrived: 10, Completed: 10},
		{Scenario: ScenarioLoss, Episodes: 5, RecoveryP50: 60, RecoveryP95: 180, RecoveryMax: 200, Unrecovered: 1, Dropped: 17, ViolationSeconds: 900, Arrived: 10, Completed: 9},
	}
	table := ChaosTable(rows)
	for _, want := range []string{"baseline", "event-loss", "rec-p95", "breaches"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

// TestGoldenChaosCSV pins the chaos CSV schema from synthetic rows,
// like the other study exports.
func TestGoldenChaosCSV(t *testing.T) {
	rows := []ChaosResult{
		{Scenario: ScenarioBaseline, Episodes: 3, RecoveryP50: 12, RecoveryP95: 40.5, RecoveryMax: 41, ViolationSeconds: 321.5, Switches: 14, Arrived: 10, Completed: 10, End: 1500},
		{Scenario: ScenarioBursts, Episodes: 6, RecoveryP50: 25, RecoveryP95: 90, RecoveryMax: 120, ViolationSeconds: 1024, FinalViolations: 0, Switches: 22, Arrived: 10, Completed: 9, End: 1500,
			TopVJob: "vjob004", TopVJobSeconds: 512.5, TopNode: "node007", TopNodeSeconds: 600, RuleBreachSeconds: 90.5},
		{Scenario: ScenarioLoss, Episodes: 5, RecoveryP50: 60, RecoveryP95: 180, RecoveryMax: 200, Unrecovered: 1, Dropped: 17, ViolationSeconds: 900, Switches: 18, Arrived: 10, Completed: 9, End: 1500,
			TopVJob: "vjob001", TopVJobSeconds: 450, TopNode: "node002", TopNodeSeconds: 500},
		{Scenario: ScenarioReplay, Episodes: 1, RecoveryP50: 8, RecoveryP95: 8, RecoveryMax: 8, ViolationSeconds: 64, Switches: 9, Arrived: 3, Completed: 1, End: 1500},
	}
	checkGolden(t, "chaos.csv.golden", ChaosCSV(rows))
}

func TestRackNamesAndSpread(t *testing.T) {
	racks := rackNames(10, 3)
	if len(racks) != 3 {
		t.Fatalf("racks = %v", racks)
	}
	total := 0
	for _, r := range racks {
		total += len(r)
	}
	if total != 10 {
		t.Fatalf("racks cover %d nodes, want 10", total)
	}
	if racks[0][0] != "node000" {
		t.Fatalf("first rack = %v", racks[0])
	}
	// Degenerate shapes clamp instead of exploding.
	if got := rackNames(2, 5); len(got) != 2 {
		t.Fatalf("more racks than nodes: %v", got)
	}
	if got := rackNames(4, 0); len(got) != 1 || len(got[0]) != 4 {
		t.Fatalf("zero racks: %v", got)
	}
	if got := spreadNodes(10, 4); len(got) != 4 || got[0] != "node000" {
		t.Fatalf("spread = %v", got)
	}
	if got := spreadNodes(3, 9); len(got) != 3 {
		t.Fatalf("spread beyond cluster = %v", got)
	}
	if got := spreadNodes(3, 0); got != nil {
		t.Fatalf("spread of none = %v", got)
	}
}

// BenchmarkChaosStudy is the regress-gated cost of the chaos harness:
// the two most adversarial quick cells (rack bursts and windowed
// event loss) back to back.
func BenchmarkChaosStudy(b *testing.B) {
	opts := quickChaosOptions()
	opts.Scenarios = []string{ScenarioBursts, ScenarioLoss}
	var rows []ChaosResult
	for i := 0; i < b.N; i++ {
		rows = ChaosStudy(opts)
	}
	breaches, episodes := 0, 0
	for _, r := range rows {
		breaches += r.Breaches
		episodes += r.Episodes
	}
	b.ReportMetric(float64(episodes), "episodes")
	if breaches != 0 {
		b.Fatalf("chaos cells breached structural invariants: %d", breaches)
	}
}
