package main

import (
	"errors"
	"strings"
	"testing"

	"cwcs/internal/core"
	"cwcs/internal/drivers"
)

// TestSwitchLineSurfacesFailures is the regression test for silently
// dropped action failures: a record with failures must say so, and a
// clean record must not cry wolf.
func TestSwitchLineSurfacesFailures(t *testing.T) {
	clean := switchLine(core.SwitchRecord{At: 30, Cost: 1024, Actions: 3, Pools: 2, Duration: 19})
	if strings.Contains(clean, "FAILURES") {
		t.Fatalf("clean switch reports failures: %q", clean)
	}
	bad := switchLine(core.SwitchRecord{At: 60, Cost: 2048, Actions: 4, Pools: 2, Duration: 25, Failures: 2})
	if !strings.Contains(bad, "FAILURES=2") {
		t.Fatalf("failures not surfaced: %q", bad)
	}
}

func TestErrorSummaryListsEveryReportError(t *testing.T) {
	if s := errorSummary(nil); s != "" {
		t.Fatalf("summary of nothing: %q", s)
	}
	reports := []drivers.Report{
		{Start: 30, End: 49},
		{Start: 90, End: 120, Errs: []error{
			errors.New("migrate(vm1,n1,n2): VM not running on n1"),
			errors.New("resume(vm2,n3,n3): VM not sleeping"),
		}},
		{Start: 150, End: 160, Errs: []error{errors.New("stop(vm3,n4): VM not running on n4")}},
	}
	s := errorSummary(reports)
	if !strings.Contains(s, "action failures: 3") {
		t.Fatalf("missing total: %q", s)
	}
	for _, want := range []string{"migrate(vm1,n1,n2)", "resume(vm2,n3,n3)", "stop(vm3,n4)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary lost %q:\n%s", want, s)
		}
	}
}
