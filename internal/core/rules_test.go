package core

import (
	"errors"
	"fmt"
	"testing"

	"cwcs/internal/vjob"
)

// rulesCluster: 3 nodes, one 2-VM vjob waiting.
func rulesCluster(t *testing.T) (*vjob.Configuration, *vjob.VJob) {
	t.Helper()
	c := mkCluster(3, 2, 4096)
	j := vjob.NewVJob("j", 0,
		vjob.NewVM("j-1", "", 1, 1024),
		vjob.NewVM("j-2", "", 1, 1024))
	for _, v := range j.VMs {
		c.AddVM(v)
	}
	return c, j
}

func TestSpreadSeparatesReplicas(t *testing.T) {
	c, j := rulesCluster(t)
	// Without the rule, both VMs fit on one node (2 CPUs).
	plain, err := Optimizer{}.Solve(Problem{Src: c, Target: map[string]vjob.State{"j": vjob.Running}})
	if err != nil {
		t.Fatal(err)
	}
	_ = plain
	res, err := Optimizer{}.Solve(Problem{
		Src:    c,
		Target: map[string]vjob.State{"j": vjob.Running},
		Rules:  []PlacementRule{Spread{VMs: []string{"j-1", "j-2"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dst.HostOf("j-1") == res.Dst.HostOf("j-2") {
		t.Fatalf("spread violated: both on %s", res.Dst.HostOf("j-1"))
	}
	if err := (Spread{VMs: []string{"j-1", "j-2"}}).Check(res.Dst); err != nil {
		t.Fatal(err)
	}
	_ = j
}

func TestSpreadCheckDetectsViolation(t *testing.T) {
	c, _ := rulesCluster(t)
	mustRun(t, c, "j-1", "n00")
	mustRun(t, c, "j-2", "n00")
	if err := (Spread{VMs: []string{"j-1", "j-2"}}).Check(c); err == nil {
		t.Fatal("violation not detected")
	}
}

func TestBanKeepsVMOffNode(t *testing.T) {
	c, _ := rulesCluster(t)
	ban := Ban{VMs: []string{"j-1", "j-2"}, Nodes: []string{"n00", "n01"}}
	res, err := Optimizer{}.Solve(Problem{
		Src:    c,
		Target: map[string]vjob.State{"j": vjob.Running},
		Rules:  []PlacementRule{ban},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, vm := range []string{"j-1", "j-2"} {
		if h := res.Dst.HostOf(vm); h != "n02" {
			t.Fatalf("%s on %s, want n02", vm, h)
		}
	}
	if err := ban.Check(res.Dst); err != nil {
		t.Fatal(err)
	}
	// Banning every node is unsatisfiable.
	_, err = Optimizer{}.Solve(Problem{
		Src:    c,
		Target: map[string]vjob.State{"j": vjob.Running},
		Rules:  []PlacementRule{Ban{VMs: []string{"j-1"}, Nodes: []string{"n00", "n01", "n02"}}},
	})
	if !errors.Is(err, ErrNoViableConfiguration) {
		t.Fatalf("err = %v", err)
	}
}

func TestBanUnknownNode(t *testing.T) {
	c, _ := rulesCluster(t)
	_, err := Optimizer{}.Solve(Problem{
		Src:    c,
		Target: map[string]vjob.State{"j": vjob.Running},
		Rules:  []PlacementRule{Ban{VMs: []string{"j-1"}, Nodes: []string{"ghost"}}},
	})
	if err == nil {
		t.Fatal("unknown node accepted")
	}
}

func TestFenceRestrictsToGroup(t *testing.T) {
	c, _ := rulesCluster(t)
	fence := Fence{VMs: []string{"j-1", "j-2"}, Nodes: []string{"n01"}}
	res, err := Optimizer{}.Solve(Problem{
		Src:    c,
		Target: map[string]vjob.State{"j": vjob.Running},
		Rules:  []PlacementRule{fence},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, vm := range []string{"j-1", "j-2"} {
		if h := res.Dst.HostOf(vm); h != "n01" {
			t.Fatalf("%s on %s, want n01", vm, h)
		}
	}
	if err := fence.Check(res.Dst); err != nil {
		t.Fatal(err)
	}
}

func TestFenceConflictsWithSpread(t *testing.T) {
	c, _ := rulesCluster(t)
	// One node cannot both hold and separate two VMs.
	_, err := Optimizer{}.Solve(Problem{
		Src:    c,
		Target: map[string]vjob.State{"j": vjob.Running},
		Rules: []PlacementRule{
			Fence{VMs: []string{"j-1", "j-2"}, Nodes: []string{"n01"}},
			Spread{VMs: []string{"j-1", "j-2"}},
		},
	})
	if !errors.Is(err, ErrNoViableConfiguration) {
		t.Fatalf("err = %v", err)
	}
}

func TestGatherColocates(t *testing.T) {
	c, _ := rulesCluster(t)
	gather := Gather{VMs: []string{"j-1", "j-2"}}
	res, err := Optimizer{}.Solve(Problem{
		Src:    c,
		Target: map[string]vjob.State{"j": vjob.Running},
		Rules:  []PlacementRule{gather},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dst.HostOf("j-1") != res.Dst.HostOf("j-2") {
		t.Fatal("gather violated")
	}
	if err := gather.Check(res.Dst); err != nil {
		t.Fatal(err)
	}
}

// TestGatherIntersectsDomains: one gathered VM is too big for most
// nodes, so the whole group must land where the big one fits — the
// propagator intersects the domains.
func TestGatherIntersectsDomains(t *testing.T) {
	c := vjob.NewConfiguration()
	c.AddNode(vjob.NewNode("small1", 2, 1024))
	c.AddNode(vjob.NewNode("small2", 2, 1024))
	c.AddNode(vjob.NewNode("big", 2, 8192))
	c.AddVM(vjob.NewVM("g-large", "g", 1, 4096))
	c.AddVM(vjob.NewVM("g-tiny", "g", 1, 256))
	gather := Gather{VMs: []string{"g-large", "g-tiny"}}
	res, err := Optimizer{}.Solve(Problem{
		Src:    c,
		Target: map[string]vjob.State{"g": vjob.Running},
		Rules:  []PlacementRule{gather},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dst.HostOf("g-large") != "big" || res.Dst.HostOf("g-tiny") != "big" {
		t.Fatalf("gather landed on %s/%s, want big/big",
			res.Dst.HostOf("g-large"), res.Dst.HostOf("g-tiny"))
	}
	// And when the shared node cannot host both, the rule must fail
	// the reconfiguration rather than split the group.
	c2 := vjob.NewConfiguration()
	c2.AddNode(vjob.NewNode("n1", 1, 8192))
	c2.AddNode(vjob.NewNode("n2", 1, 8192))
	c2.AddVM(vjob.NewVM("g-1", "g", 1, 512))
	c2.AddVM(vjob.NewVM("g-2", "g", 1, 512))
	_, err = Optimizer{}.Solve(Problem{
		Src:    c2,
		Target: map[string]vjob.State{"g": vjob.Running},
		Rules:  []PlacementRule{Gather{VMs: []string{"g-1", "g-2"}}},
	})
	if !errors.Is(err, ErrNoViableConfiguration) {
		t.Fatalf("err = %v", err)
	}
}

func TestGatherCheckDetectsViolation(t *testing.T) {
	c, _ := rulesCluster(t)
	mustRun(t, c, "j-1", "n00")
	mustRun(t, c, "j-2", "n01")
	if err := (Gather{VMs: []string{"j-1", "j-2"}}).Check(c); err == nil {
		t.Fatal("violation not detected")
	}
}

// TestRulesSurviveOptimization is the §7 scenario: the rules hold in
// the optimized configuration even when the optimizer must pay more
// (j-1 runs on n00 and would stay for free, but the ban forces a
// migration).
func TestRulesSurviveOptimization(t *testing.T) {
	c, _ := rulesCluster(t)
	mustRun(t, c, "j-1", "n00")
	mustRun(t, c, "j-2", "n01")
	ban := Ban{VMs: []string{"j-1"}, Nodes: []string{"n00"}}
	res, err := Optimizer{}.Solve(Problem{
		Src:    c,
		Target: map[string]vjob.State{"j": vjob.Running},
		Rules:  []PlacementRule{ban},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dst.HostOf("j-1") == "n00" {
		t.Fatal("ban ignored")
	}
	if res.Cost < 1024 {
		t.Fatalf("cost = %d, want at least one migration", res.Cost)
	}
	if err := res.Plan.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSpreadAcrossManyVMs stresses the AllDifferent propagation.
func TestSpreadAcrossManyVMs(t *testing.T) {
	c := mkCluster(6, 2, 8192)
	var names []string
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("r-%d", i)
		c.AddVM(vjob.NewVM(name, "r", 1, 1024))
		names = append(names, name)
	}
	res, err := Optimizer{}.Solve(Problem{
		Src:    c,
		Target: map[string]vjob.State{"r": vjob.Running},
		Rules:  []PlacementRule{Spread{VMs: names}},
	})
	if err != nil {
		t.Fatal(err)
	}
	hosts := map[string]bool{}
	for _, n := range names {
		hosts[res.Dst.HostOf(n)] = true
	}
	if len(hosts) != 6 {
		t.Fatalf("only %d distinct hosts", len(hosts))
	}
	// Seven replicas on six nodes cannot spread.
	c.AddVM(vjob.NewVM("r-6", "r", 1, 1024))
	_, err = Optimizer{}.Solve(Problem{
		Src:    c,
		Target: map[string]vjob.State{"r": vjob.Running},
		Rules:  []PlacementRule{Spread{VMs: append(names, "r-6")}},
	})
	if !errors.Is(err, ErrNoViableConfiguration) {
		t.Fatalf("err = %v", err)
	}
}
