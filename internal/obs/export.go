package obs

import (
	"encoding/json"
	"io"
	"runtime/debug"
)

// WriteJSONL encodes spans one JSON object per line — the /v1/trace
// default and the experiments -trace-out format.
func WriteJSONL(w io.Writer, spans []SpanRecord) error {
	enc := json.NewEncoder(w)
	for i := range spans {
		if err := enc.Encode(&spans[i]); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one trace_event record in the Chrome/Perfetto JSON
// format (the "X" complete-event phase carries ts+dur in µs).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTracks maps span kinds to Perfetto track (tid) numbers so the
// pipeline stages stack visually: reconfigurations on top, then the
// loop stages, then actuation.
var chromeTracks = map[string]int{
	"reconfig": 1, "debounce": 2, "wake": 3, "carve": 4,
	"solve": 5, "merge": 6, "splice": 7, "action": 8, "mark": 3,
}

// ChromeTrace renders spans as a trace_event JSON document on the
// virtual clock (1 virtual second = 1 trace second; wall time rides
// along in args). Load the result at ui.perfetto.dev or
// chrome://tracing.
func ChromeTrace(spans []SpanRecord) ([]byte, error) {
	events := make([]chromeEvent, 0, len(spans)+len(chromeTracks))
	seen := map[int]string{}
	for i := range spans {
		r := &spans[i]
		tid := chromeTracks[r.Kind]
		if tid == 0 {
			tid = 9
		}
		seen[tid] = r.Kind
		name := r.Kind
		if r.Name != "" {
			name = r.Kind + ":" + r.Name
		}
		args := map[string]any{
			"id": r.ID, "cause": r.Cause, "wall_ms": r.WallSeconds * 1e3,
		}
		if r.Events > 0 {
			args["events"] = r.Events
		}
		if r.SubSolves > 0 {
			args["sub_solves"] = r.SubSolves
		}
		if r.Cost != 0 {
			args["cost"] = r.Cost
		}
		if r.Widen > 0 {
			args["widen"] = r.Widen
		}
		if r.Outcome != "" {
			args["outcome"] = r.Outcome
		}
		ev := chromeEvent{
			Name: name, Cat: r.Kind, Pid: 1, Tid: tid,
			Ts: r.VirtStart * 1e6, Args: args,
		}
		if r.Kind == KindMark.String() {
			ev.Ph, ev.S = "i", "t"
		} else {
			ev.Ph = "X"
			dur := r.VirtDur() * 1e6
			if dur <= 0 {
				// Perfetto hides zero-width slices; give wall-only
				// stages (solves within one sim step) a sliver.
				dur = 1
			}
			ev.Dur = &dur
		}
		events = append(events, ev)
	}
	for tid, kind := range seen {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]any{"name": kind},
		})
	}
	return json.Marshal(map[string]any{"traceEvents": events, "displayTimeUnit": "ms"})
}

// Info is the build identity exported as cwcs_build_info and printed
// by -version.
type Info struct {
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
}

// BuildInfo reads the binary's module version and toolchain from
// runtime/debug; "(devel)" is what unreleased builds report.
func BuildInfo() Info {
	info := Info{Version: "unknown", GoVersion: "unknown"}
	if bi, ok := debug.ReadBuildInfo(); ok {
		info.GoVersion = bi.GoVersion
		if bi.Main.Version != "" {
			info.Version = bi.Main.Version
		}
	}
	return info
}
