package cp

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func rangeVals(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// queens posts the n-queens problem and returns the column variables.
func queens(s *Solver, n int) []*IntVar {
	vars := make([]*IntVar, n)
	for i := range vars {
		vars[i] = s.NewEnumVar(fmt.Sprintf("q%d", i), rangeVals(n))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s.Post(&NotEqualOffset{X: vars[i], Y: vars[j]})
			s.Post(&NotEqualOffset{X: vars[i], Y: vars[j], Offset: j - i})
			s.Post(&NotEqualOffset{X: vars[i], Y: vars[j], Offset: i - j})
		}
	}
	return vars
}

func TestNQueensSolvable(t *testing.T) {
	for _, n := range []int{4, 6, 8, 10} {
		s := NewSolver()
		vars := queens(s, n)
		sol, err := s.Solve(Options{FirstFail: true})
		if err != nil {
			t.Fatalf("%d-queens: %v", n, err)
		}
		// Verify the solution.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				a, b := sol.MustValue(vars[i]), sol.MustValue(vars[j])
				if a == b || a == b+(j-i) || a == b-(j-i) {
					t.Fatalf("%d-queens: conflict between %d and %d", n, i, j)
				}
			}
		}
	}
}

func TestNQueensUnsolvable(t *testing.T) {
	s := NewSolver()
	queens(s, 3)
	if _, err := s.Solve(Options{}); !errors.Is(err, ErrFailed) {
		t.Fatalf("3-queens err = %v, want ErrFailed", err)
	}
	nodes, fails, _, props := s.Stats()
	if nodes == 0 || fails == 0 || props == 0 {
		t.Fatal("stats not counted")
	}
}

func TestSolveDeadline(t *testing.T) {
	s := NewSolver()
	queens(s, 24)
	_, err := s.Solve(Options{Deadline: time.Now().Add(-time.Second)})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
}

func TestAssignAndPropagate(t *testing.T) {
	s := NewSolver()
	x := s.NewEnumVar("x", []int{0, 1, 2})
	y := s.NewEnumVar("y", []int{0, 1, 2})
	s.Post(&NotEqualOffset{X: x, Y: y})
	if err := s.Assign(x, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.propagate(); err != nil {
		t.Fatal(err)
	}
	if y.Contains(1) {
		t.Fatal("disequality not propagated")
	}
	if err := s.Assign(x, 2); !errors.Is(err, ErrFailed) {
		t.Fatalf("reassigning bound var: %v", err)
	}
}

func TestDomainWipeoutFails(t *testing.T) {
	s := NewSolver()
	x := s.NewEnumVar("x", []int{4})
	if err := s.RemoveValue(x, 4); !errors.Is(err, ErrFailed) {
		t.Fatalf("err = %v, want ErrFailed", err)
	}
}

func TestPreferredValueOrder(t *testing.T) {
	s := NewSolver()
	x := s.NewEnumVar("x", []int{0, 1, 2, 3})
	x.SetPreferred(2)
	sol, err := s.Solve(Options{PreferValue: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.MustValue(x); got != 2 {
		t.Fatalf("x = %d, want preferred 2", got)
	}
	// Without PreferValue the first (ascending) value wins.
	s2 := NewSolver()
	y := s2.NewEnumVar("y", []int{0, 1, 2, 3})
	y.SetPreferred(2)
	sol2, err := s2.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := sol2.MustValue(y); got != 0 {
		t.Fatalf("y = %d, want 0", got)
	}
}

func TestFirstFailPicksSmallestDomain(t *testing.T) {
	s := NewSolver()
	big := s.NewEnumVar("big", rangeVals(10))
	small := s.NewEnumVar("small", rangeVals(2))
	v := s.pick([]*IntVar{big, small}, Options{FirstFail: true})
	if v != small {
		t.Fatalf("first-fail picked %s", v.Name())
	}
	v = s.pick([]*IntVar{big, small}, Options{})
	if v != big {
		t.Fatalf("static order picked %s", v.Name())
	}
}

func TestMinimizeFindsOptimum(t *testing.T) {
	// Minimize x+y subject to x != y, x,y in 0..3. Optimum 0+1 = 1.
	s := NewSolver()
	x := s.NewEnumVar("x", rangeVals(4))
	y := s.NewEnumVar("y", rangeVals(4))
	obj := s.NewIntVar("obj", 0, 100)
	s.Post(&NotEqualOffset{X: x, Y: y})
	s.Post(&FuncConstraint{
		On: []*IntVar{x, y, obj},
		Run: func(s *Solver) error {
			return s.RemoveBelow(obj, x.Min()+y.Min())
		},
	})
	sol, err := s.Minimize(obj, Options{Vars: []*IntVar{x, y}, FirstFail: true})
	if err != nil {
		t.Fatal(err)
	}
	got := sol.MustValue(x) + sol.MustValue(y)
	if got != 1 {
		t.Fatalf("optimum = %d, want 1", got)
	}
	if sol.Objective > 1 {
		t.Fatalf("objective = %d", sol.Objective)
	}
}

func TestMinimizeUnsatisfiable(t *testing.T) {
	s := NewSolver()
	x := s.NewEnumVar("x", []int{1})
	y := s.NewEnumVar("y", []int{1})
	obj := s.NewIntVar("obj", 0, 10)
	s.Post(&NotEqualOffset{X: x, Y: y})
	if _, err := s.Minimize(obj, Options{Vars: []*IntVar{x, y}}); !errors.Is(err, ErrFailed) {
		t.Fatalf("err = %v, want ErrFailed", err)
	}
}

func TestMinimizeDeadlineKeepsBest(t *testing.T) {
	// A problem with many solutions and a deadline generous enough to
	// find one but likely too short to prove optimality is hard to
	// build deterministically; instead check the already-expired case.
	s := NewSolver()
	x := s.NewEnumVar("x", rangeVals(8))
	obj := s.NewIntVar("obj", 0, 10)
	s.Post(&FuncConstraint{On: []*IntVar{x, obj}, Run: func(s *Solver) error {
		return s.RemoveBelow(obj, x.Min())
	}})
	_, err := s.Minimize(obj, Options{Vars: []*IntVar{x}, Deadline: time.Now().Add(-time.Second)})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
}

func TestSolutionAccessors(t *testing.T) {
	s := NewSolver()
	x := s.NewEnumVar("x", []int{7})
	other := s.NewEnumVar("other", []int{1, 2})
	sol, err := s.Solve(Options{Vars: []*IntVar{x}})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := sol.Value(x); !ok || v != 7 {
		t.Fatalf("Value = %d,%v", v, ok)
	}
	if _, ok := sol.Value(other); ok {
		t.Fatal("non-decision var present in solution")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustValue on absent var did not panic")
		}
	}()
	sol.MustValue(other)
}

func TestVarStringForms(t *testing.T) {
	s := NewSolver()
	x := s.NewEnumVar("x", []int{3})
	if x.String() != "x=3" {
		t.Fatalf("bound var string = %q", x.String())
	}
	y := s.NewEnumVar("y", rangeVals(4))
	if y.String() == "" {
		t.Fatal("small var string empty")
	}
	z := s.NewEnumVar("z", rangeVals(100))
	if z.String() == "" {
		t.Fatal("large var string empty")
	}
}

func TestValuePanicsOnUnbound(t *testing.T) {
	s := NewSolver()
	x := s.NewEnumVar("x", []int{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("Value on unbound var did not panic")
		}
	}()
	_ = x.Value()
}

func TestNewVarPanics(t *testing.T) {
	s := NewSolver()
	func() {
		defer func() { recover() }()
		s.NewEnumVar("bad", nil)
		t.Error("empty enum domain accepted")
	}()
	func() {
		defer func() { recover() }()
		s.NewIntVar("bad", 5, 4)
		t.Error("empty range accepted")
	}()
}
