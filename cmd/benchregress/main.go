// Command benchregress guards against performance regressions: it
// parses a `go test -bench` output, merges the ns/op baselines
// committed in BENCH_*.json files (their top-level "regress" object,
// a flat map of benchmark name to ns/op), and fails when any measured
// benchmark is more than -factor times slower than its baseline.
//
//	go test -run '^$' -bench ... -benchtime=100x ./... > bench.out
//	benchregress -factor 3 -bench bench.out BENCH_ci.json BENCH_eventloop.json
//
// Benchmarks without a baseline are reported but do not fail the run
// (new benchmarks land before their baseline is recorded); baselines
// without a measurement fail, so a silently deleted benchmark cannot
// keep its guarantee on paper.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchLine matches e.g. "BenchmarkFoo/sub=1-8   100   123456 ns/op ...".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

func main() {
	factor := flag.Float64("factor", 3, "fail when ns/op exceeds baseline*factor")
	benchOut := flag.String("bench", "", "path to the go test -bench output (default stdin)")
	flag.Parse()

	results, err := parseBench(openOr(*benchOut, os.Stdin))
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark results found"))
	}
	baselines := map[string]float64{}
	for _, path := range flag.Args() {
		if err := mergeBaselines(baselines, path); err != nil {
			fatal(err)
		}
	}

	fail := false
	for _, name := range sortedKeys(results) {
		got := results[name]
		base, ok := baselines[name]
		if !ok {
			fmt.Printf("NEW   %-50s %12.0f ns/op (no baseline)\n", name, got)
			continue
		}
		switch {
		case got > base*(*factor):
			fmt.Printf("SLOW  %-50s %12.0f ns/op vs baseline %.0f (>%.1fx)\n", name, got, base, *factor)
			fail = true
		default:
			fmt.Printf("ok    %-50s %12.0f ns/op vs baseline %.0f (%.2fx)\n", name, got, base, got/base)
		}
	}
	for _, name := range sortedKeys(baselines) {
		if _, ok := results[name]; !ok {
			fmt.Printf("GONE  %-50s baseline %.0f ns/op has no measurement\n", name, baselines[name])
			fail = true
		}
	}
	if fail {
		os.Exit(1)
	}
}

func parseBench(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		if m := benchLine.FindStringSubmatch(sc.Text()); m != nil {
			ns, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				return nil, fmt.Errorf("benchregress: %q: %w", sc.Text(), err)
			}
			out[m[1]] = ns
		}
	}
	return out, sc.Err()
}

// mergeBaselines folds the "regress" table of one BENCH_*.json in.
// Files without the table are allowed: most BENCH files are narrative
// measurement records, only the gated subset carries baselines.
func mergeBaselines(into map[string]float64, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		Regress map[string]float64 `json:"regress"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("benchregress: %s: %w", path, err)
	}
	for k, v := range doc.Regress {
		into[k] = v
	}
	return nil
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func openOr(path string, def *os.File) io.Reader {
	if path == "" {
		return def
	}
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	return f
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchregress:", err)
	os.Exit(2)
}
