package vjob

import "fmt"

// Violation describes one node whose running VMs over-commit a
// resource, making the configuration non-viable.
type Violation struct {
	// Node is the overloaded node's name.
	Node string
	// Resource is "cpu" or "memory".
	Resource string
	// Demand is the aggregated demand of the running VMs.
	Demand int
	// Capacity is the node capacity for the resource.
	Capacity int
}

// Error renders the violation; Violation satisfies the error interface
// so callers can wrap a non-viable configuration into an error chain.
func (v Violation) Error() string {
	return fmt.Sprintf("node %s overloaded on %s: demand %d > capacity %d",
		v.Node, v.Resource, v.Demand, v.Capacity)
}

// Violations returns every capacity violation of the configuration, in
// node order. An empty slice means the configuration is viable: every
// running VM has access to sufficient memory and processing units
// (Section 3.2 of the paper). Waiting and sleeping VMs consume nothing.
//
// The scan is a single O(nodes + VMs) pass: plan validation calls this
// after every pool, so a per-node VM rescan would dominate large
// cluster runs.
func (c *Configuration) Violations() []Violation {
	cpu := make(map[string]int)
	mem := make(map[string]int)
	for vm, st := range c.state {
		if st != Running {
			continue
		}
		v := c.vms[vm]
		node := c.placement[vm]
		cpu[node] += v.CPUDemand
		mem[node] += v.MemoryDemand
	}
	var out []Violation
	for _, name := range c.nodeOrder {
		n := c.nodes[name]
		if cpu[name] > n.CPU {
			out = append(out, Violation{Node: name, Resource: "cpu", Demand: cpu[name], Capacity: n.CPU})
		}
		if mem[name] > n.Memory {
			out = append(out, Violation{Node: name, Resource: "memory", Demand: mem[name], Capacity: n.Memory})
		}
	}
	return out
}

// Viable reports whether every running VM has access to sufficient
// memory and CPU resources.
func (c *Configuration) Viable() bool { return len(c.Violations()) == 0 }

// VJobState derives the state of a vjob from the states of its VMs. A
// vjob is Running (resp. Sleeping, Waiting) when all its VMs are; it is
// Terminated when none of its VMs remain. During a context switch the
// VMs of a vjob may transiently disagree; in that case the function
// returns the state of the majority-progress rule used by the paper's
// monitoring: Running if any VM runs, else Sleeping if any sleeps, else
// Waiting.
func (c *Configuration) VJobState(j *VJob) State {
	if len(j.VMs) == 0 {
		return Terminated
	}
	counts := map[State]int{}
	present := 0
	for _, v := range j.VMs {
		if c.VM(v.Name) == nil {
			continue
		}
		present++
		counts[c.StateOf(v.Name)]++
	}
	switch {
	case present == 0:
		return Terminated
	case counts[Running] == present:
		return Running
	case counts[Sleeping] == present:
		return Sleeping
	case counts[Waiting] == present:
		return Waiting
	case counts[Running] > 0:
		return Running
	case counts[Sleeping] > 0:
		return Sleeping
	default:
		return Waiting
	}
}
