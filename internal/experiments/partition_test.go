package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestPartitionStudySmall runs the study on tiny clusters so the test
// stays fast; both sides must produce plans and the effective partition
// count must exceed one on the partitioned side.
func TestPartitionStudySmall(t *testing.T) {
	rows := PartitionStudy(PartitionOptions{
		NodeCounts: []int{24},
		VMFactor:   1.0,
		NodeCPU:    2, NodeMemory: 4096,
		Timeout:    2 * time.Second,
		Seed:       1,
		Workers:    1,
		Partitions: 4,
	})
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.MonoCost <= 0 || r.PartCost <= 0 {
		t.Fatalf("a side produced no plan: %+v", r)
	}
	if r.Partitions < 2 {
		t.Fatalf("partitioned side ran monolithically: %+v", r)
	}
	table := PartitionTable(rows)
	if !strings.Contains(table, "speedup") || !strings.Contains(table, "24") {
		t.Fatalf("table = %q", table)
	}
}

func TestGoldenPartitionCSV(t *testing.T) {
	rows := []PartitionRow{
		{Nodes: 100, VMs: 150, Partitions: 2, MonoMS: 2000.4, MonoCost: 51200, MonoOptimal: false,
			PartMS: 450.2, PartCost: 52224, PartOptimal: true, Speedup: 4.44},
		{Nodes: 500, VMs: 750, Partitions: 8, MonoMS: 2100, MonoCost: 204800,
			PartMS: 600, PartCost: 215040, PartOptimal: true, Speedup: 3.5},
	}
	checkGolden(t, "partition.csv.golden", PartitionCSV(rows))
}
