package plan

import (
	"fmt"
	"sort"
	"strings"

	"cwcs/internal/vjob"
)

// Pool is a set of actions that are feasible in parallel: every action
// of a pool can start as soon as the previous pool has completed.
type Pool []Action

// Cost of a pool is the cost of its most expensive action (§4.2).
func (p Pool) Cost() int {
	max := 0
	for _, a := range p {
		if c := a.Cost(); c > max {
			max = c
		}
	}
	return max
}

// sortDeterministic orders the actions of the pool by kind then VM
// name, which both stabilizes output and matches the paper's
// "sorted using the hostname of the VMs" pipelining rule (our VM names
// embed their vjob, giving the same grouping effect).
func (p Pool) sortDeterministic() {
	sort.SliceStable(p, func(i, j int) bool {
		ki, kj := actionKind(p[i]), actionKind(p[j])
		if ki != kj {
			return ki < kj
		}
		return p[i].VM().Name < p[j].VM().Name
	})
}

func actionKind(a Action) int {
	switch a.(type) {
	case *Suspend:
		return 0
	case *Stop:
		return 1
	case *Migration:
		return 2
	case *Resume:
		return 3
	case *Run:
		return 4
	default:
		return 5
	}
}

// Plan is a reconfiguration plan: a sequence of pools executed one
// after the other, the actions inside a pool running in parallel. A
// valid plan guarantees that each action is feasible at the time it
// starts and that the final configuration equals the destination of
// the reconfiguration graph it was built from.
type Plan struct {
	// Src is the configuration the plan starts from.
	Src *vjob.Configuration
	// Pools are the sequential steps of the plan.
	Pools []Pool
	// Bypass counts the extra migrations inserted to break
	// inter-dependent migration cycles.
	Bypass int
}

// NumActions returns the total number of actions across pools.
func (p *Plan) NumActions() int {
	n := 0
	for _, pool := range p.Pools {
		n += len(pool)
	}
	return n
}

// Actions returns all actions in execution order (pool by pool).
func (p *Plan) Actions() []Action {
	out := make([]Action, 0, p.NumActions())
	for _, pool := range p.Pools {
		out = append(out, pool...)
	}
	return out
}

// Cost evaluates the plan with the model of §4.2: the cost of the plan
// is the sum of the total costs of its actions; the total cost of an
// action is the sum of the costs of the preceding pools plus the local
// cost of the action; the cost of a pool is the cost of its most
// expensive action. The model conservatively assumes that delaying an
// action degrades the context switch.
func (p *Plan) Cost() int {
	total := 0
	elapsed := 0
	for _, pool := range p.Pools {
		for _, a := range pool {
			total += elapsed + a.Cost()
		}
		elapsed += pool.Cost()
	}
	return total
}

// Result replays the plan on a clone of Src and returns the final
// configuration.
func (p *Plan) Result() (*vjob.Configuration, error) {
	cur := p.Src.Clone()
	for i, pool := range p.Pools {
		for _, a := range pool {
			if err := a.Apply(cur); err != nil {
				return nil, fmt.Errorf("plan: pool %d: %w", i, err)
			}
		}
	}
	return cur, nil
}

// Validate replays the plan checking, pool by pool, that every action
// is feasible when its pool starts and that every intermediate
// configuration stays viable. It returns the first problem found.
func (p *Plan) Validate() error {
	cur := p.Src.Clone()
	if !cur.Viable() {
		// A context switch may legitimately start from a non-viable
		// configuration (that is often why it happens); the constraint
		// bears on what the plan itself creates, so start counting
		// overloads from the source configuration's own.
		_ = cur
	}
	srcViolations := violationSet(cur)
	for i, pool := range p.Pools {
		for _, a := range pool {
			if !a.FeasibleIn(cur) {
				return fmt.Errorf("plan: pool %d: action %s not feasible at pool start", i, a)
			}
		}
		for _, a := range pool {
			if err := a.Apply(cur); err != nil {
				return fmt.Errorf("plan: pool %d: %w", i, err)
			}
		}
		for _, v := range cur.Violations() {
			if !srcViolations[v] {
				return fmt.Errorf("plan: pool %d introduces violation: %v", i, v)
			}
		}
	}
	return nil
}

func violationSet(c *vjob.Configuration) map[vjob.Violation]bool {
	m := make(map[vjob.Violation]bool)
	for _, v := range c.Violations() {
		m[v] = true
	}
	return m
}

// String renders the plan pool by pool, with per-pool and total costs.
func (p *Plan) String() string {
	var b strings.Builder
	elapsed := 0
	for i, pool := range p.Pools {
		fmt.Fprintf(&b, "pool %d (cost %d):\n", i, pool.Cost())
		for _, a := range pool {
			fmt.Fprintf(&b, "  %s (local %d, total %d)\n", a, a.Cost(), elapsed+a.Cost())
		}
		elapsed += pool.Cost()
	}
	fmt.Fprintf(&b, "plan cost: %d\n", p.Cost())
	return b.String()
}
