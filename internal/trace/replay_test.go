package trace

import (
	"strings"
	"testing"

	"cwcs/internal/core"
	"cwcs/internal/duration"
	"cwcs/internal/resources"
	"cwcs/internal/sim"
	"cwcs/internal/vjob"
)

const replayTrace = `{"v":1,"at":0,"event":"arrive","vm":"web-00","vjob":"web","demand":{"cpu":1,"memory":512}}
{"v":1,"at":10,"event":"arrive","vm":"web-01","vjob":"web","demand":{"cpu":1,"memory":512}}
{"v":1,"at":20,"event":"arrive","vm":"solo-00","vjob":"solo","demand":{"cpu":1,"memory":256}}
{"v":1,"at":50,"event":"load","vm":"web-00","demand":{"cpu":2,"memory":512}}
{"v":1,"at":80,"event":"depart","vm":"solo-00"}
`

func replayFixture(t *testing.T) (*sim.Cluster, []Record) {
	t.Helper()
	cfg := vjob.NewConfiguration()
	cfg.AddNode(vjob.NewNode("n0", 4, 4096))
	cfg.AddNode(vjob.NewNode("n1", 4, 4096))
	recs, err := Decode(strings.NewReader(replayTrace))
	if err != nil {
		t.Fatal(err)
	}
	return sim.New(cfg, duration.Default()), recs
}

func TestStartReplay(t *testing.T) {
	c, recs := replayFixture(t)
	cfg := c.Config()
	var events []core.Event
	r := StartReplay(c, recs, func(e core.Event) { events = append(events, e) })
	c.Run(100)

	if r.Arrived != 3 || r.LoadChanges != 1 || r.Departed != 1 {
		t.Fatalf("counts = %d/%d/%d, want 3/1/1", r.Arrived, r.LoadChanges, r.Departed)
	}
	jobs := r.Jobs()
	if len(jobs) != 2 || jobs[0].Name != "web" || jobs[1].Name != "solo" {
		t.Fatalf("jobs = %v", jobs)
	}
	if len(jobs[0].VMs) != 2 {
		t.Fatalf("web has %d VMs, want 2", len(jobs[0].VMs))
	}
	if jobs[0].Priority >= jobs[1].Priority {
		t.Fatal("first-arrival order not reflected in priorities")
	}
	// The load record rewrote the live demand vector.
	if v := cfg.VM("web-00"); v == nil || v.Demand.Get(resources.CPU) != 2 {
		t.Fatalf("web-00 demand not applied: %v", cfg.VM("web-00"))
	}
	// The departed VM's (empty) workload reads done, so the decision
	// module's terminator will retire the vjob; the service VMs stay.
	if !c.VJobDone(jobs[1]) {
		t.Fatal("solo not done after its depart record")
	}
	if c.VJobDone(jobs[0]) {
		t.Fatal("web done despite no depart records")
	}
	// One event per record, in trace order, stamped with the clock.
	kinds := []core.EventKind{core.VMArrival, core.VMArrival, core.VMArrival, core.LoadChange, core.VMDeparture}
	if len(events) != len(kinds) {
		t.Fatalf("got %d events, want %d", len(events), len(kinds))
	}
	for i, e := range events {
		if e.Kind != kinds[i] {
			t.Fatalf("event %d = %v, want %v", i, e.Kind, kinds[i])
		}
		if i > 0 && e.At < events[i-1].At {
			t.Fatal("events out of order")
		}
	}
	if events[4].At != 80 {
		t.Fatalf("departure at %v, want 80", events[4].At)
	}
}

// TestStartReplayNilNotify covers the periodic-loop mode: no event
// feed, mutations only.
func TestStartReplayNilNotify(t *testing.T) {
	c, recs := replayFixture(t)
	r := StartReplay(c, recs, nil)
	c.Run(100)
	if r.Arrived != 3 || r.Departed != 1 {
		t.Fatalf("counts = %d/%d, want 3/1", r.Arrived, r.Departed)
	}
	if c.Config().VM("web-01") == nil {
		t.Fatal("arrival not applied without notify")
	}
}

// TestStartReplayDeterministic pins the no-randomness guarantee: two
// replays of the same trace produce identical event streams.
func TestStartReplayDeterministic(t *testing.T) {
	run := func() []core.Event {
		c, recs := replayFixture(t)
		var events []core.Event
		StartReplay(c, recs, func(e core.Event) { events = append(events, e) })
		c.Run(100)
		return events
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].At != b[i].At || len(a[i].VMs) != len(b[i].VMs) || a[i].VMs[0] != b[i].VMs[0] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
