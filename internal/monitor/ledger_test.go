package monitor

import (
	"fmt"
	"testing"

	"cwcs/internal/core"
	"cwcs/internal/cp"
	"cwcs/internal/duration"
	"cwcs/internal/plan"
	"cwcs/internal/resources"
	"cwcs/internal/sim"
	"cwcs/internal/vjob"
)

// TestLedgerNilIsInertAndFree pins the obs-style nil discipline: every
// accessor of a nil *Ledger returns its zero value without allocating.
func TestLedgerNilIsInertAndFree(t *testing.T) {
	var l *Ledger
	if l.Total() != 0 || l.TransferSeconds() != 0 || l.RuleBreachSeconds() != 0 {
		t.Fatal("nil ledger reports non-zero integrals")
	}
	if l.Atoms() != nil || l.VJobTotals() != nil || l.VJobKinds() != nil ||
		l.NodeKinds() != nil || l.NodeTotals() != nil {
		t.Fatal("nil ledger returns non-nil rows")
	}
	if l.TopVJobs(5) != nil || l.TopNodes(5) != nil || l.RuleSeconds() != nil {
		t.Fatal("nil ledger returns non-nil rankings")
	}
	allocs := testing.AllocsPerRun(100, func() {
		_ = l.Total()
		_ = l.TransferSeconds()
		_ = l.RuleBreachSeconds()
		_ = l.Atoms()
		_ = l.VJobTotals()
		_ = l.TopVJobs(3)
		_ = l.TopNodes(3)
		_ = l.RuleSeconds()
	})
	if allocs != 0 {
		t.Fatalf("nil ledger allocates %.1f per run, want 0", allocs)
	}
}

// TestLedgerDominantConsumerAttribution: a violated (node, dimension)
// interval charges the vjob of the running VM with the largest demand
// on that dimension, and every aggregation reconciles with the total.
func TestLedgerDominantConsumerAttribution(t *testing.T) {
	cfg := vjob.NewConfiguration()
	cfg.AddNode(vjob.NewNode("n0", 2, 4096))
	c := sim.New(cfg, duration.Default())
	led := WatchLedger(c, nil)
	c.Schedule(0, func() {
		// big (3 cpu of 2) dominates small (1 cpu): the whole cpu
		// violation charges jbig, nothing charges jsmall.
		cfg.AddVM(vjob.NewVM("big", "jbig", 3, 1024))
		cfg.AddVM(vjob.NewVM("small", "jsmall", 1, 1024))
		for _, name := range []string{"big", "small"} {
			if err := cfg.SetRunning(name, "n0"); err != nil {
				t.Fatal(err)
			}
		}
	})
	c.Schedule(10, func() {})
	c.Run(20)

	atoms := led.Atoms()
	if len(atoms) != 1 {
		t.Fatalf("atoms = %+v, want exactly one", atoms)
	}
	a := atoms[0]
	if a.VJob != "jbig" || a.Node != "n0" || a.Kind != "cpu" {
		t.Fatalf("atom = %+v, want jbig/n0/cpu", a)
	}
	if a.Seconds < 10 {
		t.Fatalf("charged %.1fs, want >= 10", a.Seconds)
	}
	if got := led.Total(); got != a.Seconds {
		t.Fatalf("Total %.6f != atom %.6f", got, a.Seconds)
	}
	top := led.TopVJobs(0)
	if len(top) != 1 || top[0].VJob != "jbig" || top[0].Seconds != a.Seconds {
		t.Fatalf("TopVJobs = %+v", top)
	}
	if top[0].Kinds["cpu"] != a.Seconds {
		t.Fatalf("kind breakdown = %v", top[0].Kinds)
	}
	nodes := led.TopNodes(1)
	if len(nodes) != 1 || nodes[0].Node != "n0" || nodes[0].Seconds != a.Seconds {
		t.Fatalf("TopNodes = %+v", nodes)
	}
	if led.TransferSeconds() != 0 || led.RuleBreachSeconds() != 0 {
		t.Fatal("capacity-only run charged transfer or rule rows")
	}
}

// TestLedgerConservesAcrossViews: the per-vjob fold reproduces Total
// bitwise (the documented construction), and the node-grouped view
// carries the same mass.
func TestLedgerConservesAcrossViews(t *testing.T) {
	cfg := vjob.NewConfiguration()
	cfg.AddNode(vjob.NewNode("n0", 1, 512))
	cfg.AddNode(vjob.NewNode("n1", 1, 512))
	c := sim.New(cfg, duration.Default())
	led := WatchLedger(c, nil)
	c.Schedule(0, func() {
		// Distinct dominant vjobs per node and a memory violation on n1
		// so atoms span vjobs, nodes and dimensions.
		cfg.AddVM(vjob.NewVM("a", "ja", 2, 128))
		cfg.AddVM(vjob.NewVM("b", "jb", 2, 600))
		if err := cfg.SetRunning("a", "n0"); err != nil {
			t.Fatal(err)
		}
		if err := cfg.SetRunning("b", "n1"); err != nil {
			t.Fatal(err)
		}
	})
	c.Schedule(7, func() {})
	c.Run(20)

	total := led.Total()
	if total <= 0 {
		t.Fatal("no exposure charged")
	}
	sum := 0.0
	for _, e := range led.VJobTotals() {
		sum += e.Seconds
	}
	if sum != total {
		t.Fatalf("sum(VJobTotals) = %v != Total = %v (must be bitwise equal)", sum, total)
	}
	byNode := 0.0
	for _, e := range led.NodeTotals() {
		byNode += e.Seconds
	}
	if diff := byNode - total; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("node view mass %v drifted from total %v", byNode, total)
	}
	// Atoms on both nodes and at least two dimensions were charged.
	seenNodes := map[string]bool{}
	seenKinds := map[string]bool{}
	for _, a := range led.Atoms() {
		seenNodes[a.Node] = true
		seenKinds[a.Kind] = true
	}
	if !seenNodes["n0"] || !seenNodes["n1"] || len(seenKinds) < 2 {
		t.Fatalf("atoms lack spread: nodes=%v kinds=%v", seenNodes, seenKinds)
	}
}

// TestDominantConsumerTieBreak: equal demands resolve to the smaller
// VM name; a VM without a vjob is attributed under its own name.
func TestDominantConsumerTieBreak(t *testing.T) {
	cfg := vjob.NewConfiguration()
	cfg.AddNode(vjob.NewNode("n0", 1, 4096))
	cfg.AddVM(vjob.NewVM("b", "jb", 2, 256))
	cfg.AddVM(vjob.NewVM("a", "ja", 2, 256))
	for _, name := range []string{"a", "b"} {
		if err := cfg.SetRunning(name, "n0"); err != nil {
			t.Fatal(err)
		}
	}
	dom := dominantConsumers(cfg, cfg.Violations())
	if dom[nodeDim{"n0", "cpu"}] != "ja" {
		t.Fatalf("tie-break = %v, want ja (smaller VM name)", dom)
	}

	cfg2 := vjob.NewConfiguration()
	cfg2.AddNode(vjob.NewNode("n0", 1, 4096))
	cfg2.AddVM(vjob.NewVM("solo", "", 2, 256))
	if err := cfg2.SetRunning("solo", "n0"); err != nil {
		t.Fatal(err)
	}
	dom = dominantConsumers(cfg2, cfg2.Violations())
	if dom[nodeDim{"n0", "cpu"}] != "solo" {
		t.Fatalf("vjob-less VM attribution = %v, want its own name", dom)
	}

	if dominantConsumers(cfg, nil) != nil {
		t.Fatal("no violations must resolve to no consumers")
	}
}

// TestLedgerTransferAttribution: NIC oversubscription born from
// migration streams lands on the (transfers) pseudo-vjob, keyed to the
// oversubscribed node's net dimension.
func TestLedgerTransferAttribution(t *testing.T) {
	cfg := vjob.NewConfiguration()
	for i := 0; i < 3; i++ {
		cap := resources.New(8, 16384)
		cap.Set(resources.NetBW, 1000)
		cfg.AddNode(vjob.NewNodeRes(fmt.Sprintf("n%02d", i), cap))
	}
	c := sim.New(cfg, duration.Default())
	v1 := vjob.NewVM("v1", "j", 1, 1024)
	v2 := vjob.NewVM("v2", "j", 1, 1024)
	cfg.AddVM(v1)
	cfg.AddVM(v2)
	if err := cfg.SetRunning("v1", "n00"); err != nil {
		t.Fatal(err)
	}
	if err := cfg.SetRunning("v2", "n01"); err != nil {
		t.Fatal(err)
	}
	led := WatchLedger(c, nil)
	c.Schedule(1, func() {
		// Two 800 Mbit/s streams into one 1 Gb NIC: n02 oversubscribes
		// for the whole overlap.
		c.StartAction(&plan.Migration{Machine: v1, Src: "n00", Dst: "n02"}, nil)
		c.StartAction(&plan.Migration{Machine: v2, Src: "n01", Dst: "n02"}, nil)
	})
	c.Run(1000)

	if led.TransferSeconds() <= 0 {
		t.Fatal("transfer oversubscription charged nothing")
	}
	for _, e := range led.Atoms() {
		if e.VJob != TransferVJob {
			t.Fatalf("unexpected non-transfer atom %+v", e)
		}
		if e.Node != "n02" || e.Kind != "net" {
			t.Fatalf("transfer atom = %+v, want n02/net", e)
		}
	}
	if led.TransferSeconds() != led.Total() {
		t.Fatalf("transfer %.3f != total %.3f on a transfer-only run",
			led.TransferSeconds(), led.Total())
	}
	top := led.TopVJobs(1)
	if len(top) != 1 || top[0].VJob != TransferVJob {
		t.Fatalf("TopVJobs = %+v, want the pseudo-vjob ranked", top)
	}
}

// TestLedgerRuleBreachIntegration: breached placement rules integrate
// per rule kind on the same clock, without polluting the capacity
// atoms.
func TestLedgerRuleBreachIntegration(t *testing.T) {
	cfg := vjob.NewConfiguration()
	cfg.AddNode(vjob.NewNode("n0", 4, 4096))
	c := sim.New(cfg, duration.Default())
	rules := []core.PlacementRule{core.Drained{Nodes: []string{"n0"}}}
	led := WatchLedger(c, func() []core.PlacementRule { return rules })
	c.Schedule(0, func() {
		cfg.AddVM(vjob.NewVM("v1", "j", 1, 256))
		if err := cfg.SetRunning("v1", "n0"); err != nil {
			t.Fatal(err)
		}
	})
	c.Schedule(10, func() {})
	c.Run(20)

	rs := led.RuleSeconds()
	if len(rs) != 1 || rs[0].Rule != "drained" {
		t.Fatalf("RuleSeconds = %+v, want one drained row", rs)
	}
	if rs[0].Seconds < 10 {
		t.Fatalf("breach charged %.1fs, want >= 10", rs[0].Seconds)
	}
	if led.RuleBreachSeconds() != rs[0].Seconds {
		t.Fatal("RuleBreachSeconds disagrees with its only row")
	}
	if led.Total() != 0 {
		t.Fatalf("rule breach leaked into capacity atoms: %.1f", led.Total())
	}
}

// TestWatchViolationSecondsIsLedgerView: the legacy watcher and a
// ledger attached to an identical twin run integrate the same number.
func TestWatchViolationSecondsIsLedgerView(t *testing.T) {
	run := func(attach func(c *sim.Cluster) func() float64) float64 {
		cfg := vjob.NewConfiguration()
		cfg.AddNode(vjob.NewNode("n0", 1, 1024))
		c := sim.New(cfg, duration.Default())
		get := attach(c)
		c.Schedule(0, func() {
			for _, name := range []string{"a", "b"} {
				cfg.AddVM(vjob.NewVM(name, "j", 1, 256))
				if err := cfg.SetRunning(name, "n0"); err != nil {
					t.Fatal(err)
				}
			}
		})
		c.Schedule(10, func() {})
		c.Run(20)
		return get()
	}
	legacy := run(WatchViolationSeconds)
	ledger := run(func(c *sim.Cluster) func() float64 { return WatchLedger(c, nil).Total })
	if legacy != ledger || legacy < 10 {
		t.Fatalf("legacy %.6f vs ledger %.6f, want equal and >= 10", legacy, ledger)
	}
}

// otherRule is a host-defined placement rule the kind switch cannot
// name.
type otherRule struct{}

func (otherRule) Apply(*cp.Solver, map[string]*cp.IntVar, map[string]int) error { return nil }
func (otherRule) Check(*vjob.Configuration) error                               { return nil }
func (otherRule) ScopeVMs() []string                                            { return nil }

// TestRuleKind names every built-in rule shape, by value and pointer.
func TestRuleKind(t *testing.T) {
	cases := []struct {
		r    core.PlacementRule
		want string
	}{
		{core.Spread{}, "spread"},
		{&core.Spread{}, "spread"},
		{core.Fence{}, "fence"},
		{&core.Fence{}, "fence"},
		{core.Gather{}, "gather"},
		{&core.Gather{}, "gather"},
		{core.Drained{}, "drained"},
		{&core.Drained{}, "drained"},
		{core.Ban{}, "ban"},
		{&core.Ban{}, "ban"},
		{otherRule{}, "other"},
	}
	for _, c := range cases {
		if got := RuleKind(c.r); got != c.want {
			t.Errorf("RuleKind(%T) = %q, want %q", c.r, got, c.want)
		}
	}
}

// TestLedgerTopKTruncation: ranking is by seconds descending with
// name-ascending ties, truncated at k, and k <= 0 returns everything.
func TestLedgerTopKTruncation(t *testing.T) {
	l := &Ledger{atoms: map[Attribution]float64{
		{VJob: "jc", Node: "n2", Kind: "cpu"}: 5,
		{VJob: "ja", Node: "n0", Kind: "cpu"}: 30,
		{VJob: "jb", Node: "n1", Kind: "cpu"}: 5,
		{VJob: "jd", Node: "n3", Kind: "cpu"}: 20,
	}, rules: map[string]float64{}}
	top := l.TopVJobs(2)
	if len(top) != 2 || top[0].VJob != "ja" || top[1].VJob != "jd" {
		t.Fatalf("TopVJobs(2) = %+v", top)
	}
	all := l.TopVJobs(0)
	if len(all) != 4 {
		t.Fatalf("TopVJobs(0) = %d rows, want all 4", len(all))
	}
	// jb and jc tie at 5: name ascending.
	if all[2].VJob != "jb" || all[3].VJob != "jc" {
		t.Fatalf("tie order = %+v", all[2:])
	}
}
