package obs

// StreamEvent is one /v1/watch payload: a closed span (lifecycle
// marks are spans of kind "mark").
type StreamEvent struct {
	Type string     `json:"type"`
	Span SpanRecord `json:"span"`
}

// Subscription is one watch client's queue. Events are delivered on C
// strictly in publish order; if the client falls behind its buffer the
// tracer drops the event, counts it in WatchDrops and closes C — the
// backpressure policy is drop-and-disconnect, never block the loop.
type Subscription struct {
	C    <-chan StreamEvent
	t    *Tracer
	ch   chan StreamEvent
	dead bool
}

// Subscribe registers a watch subscription with the given buffer
// (64 when buf <= 0). Returns nil on a nil tracer.
func (t *Tracer) Subscribe(buf int) *Subscription {
	if t == nil {
		return nil
	}
	if buf <= 0 {
		buf = 64
	}
	sub := &Subscription{t: t, ch: make(chan StreamEvent, buf)}
	sub.C = sub.ch
	t.mu.Lock()
	t.subs = append(t.subs, sub)
	t.mu.Unlock()
	return sub
}

// Close detaches the subscription and closes its channel. Safe to
// call twice, and after the tracer already dropped the subscriber.
func (sub *Subscription) Close() {
	if sub == nil {
		return
	}
	sub.t.mu.Lock()
	defer sub.t.mu.Unlock()
	if sub.dead {
		return
	}
	sub.t.detach(sub)
}

// detach removes sub and closes its channel. Callers hold t.mu — all
// sends also happen under t.mu, so close never races a send.
func (t *Tracer) detach(sub *Subscription) {
	sub.dead = true
	for i, s := range t.subs {
		if s == sub {
			t.subs = append(t.subs[:i], t.subs[i+1:]...)
			break
		}
	}
	close(sub.ch)
}

// publish fans a closed span out to subscribers and OnClose
// observers. A full subscriber is dropped and disconnected rather
// than waited on.
func (t *Tracer) publish(rec *SpanRecord) {
	t.mu.Lock()
	if len(t.subs) > 0 {
		ev := StreamEvent{Type: "span", Span: *rec}
		for i := 0; i < len(t.subs); {
			sub := t.subs[i]
			select {
			case sub.ch <- ev:
				i++
			default:
				t.drops.Add(1)
				t.detach(sub)
			}
		}
	}
	for _, fn := range t.onClose {
		fn(*rec)
	}
	t.mu.Unlock()
}
