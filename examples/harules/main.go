// Harules: administrator placement rules (the paper's §7 — already
// supported by Entropy) maintained through an optimized cluster-wide
// context switch. A replicated service asks for anti-affinity
// (Spread), a node goes to maintenance (Ban), a licensed tool is
// fenced to its licence nodes (Fence), and two chatty VMs are
// co-located (Gather). The optimizer honours all of it while still
// minimizing the plan cost.
package main

import (
	"fmt"
	"log"

	"cwcs/internal/core"
	"cwcs/internal/vjob"
)

func main() {
	cfg := vjob.NewConfiguration()
	for i := 1; i <= 4; i++ {
		cfg.AddNode(vjob.NewNode(fmt.Sprintf("n%d", i), 2, 6144))
	}

	// A replicated web tier (3 VMs), a licensed solver, two chatty
	// workers.
	web := vjob.NewVJob("web", 1,
		vjob.NewVM("web-0", "", 1, 1024),
		vjob.NewVM("web-1", "", 1, 1024),
		vjob.NewVM("web-2", "", 1, 1024))
	solver := vjob.NewVJob("solver", 2, vjob.NewVM("solver-0", "", 1, 2048))
	chat := vjob.NewVJob("chat", 3,
		vjob.NewVM("chat-0", "", 1, 512),
		vjob.NewVM("chat-1", "", 1, 512))
	for _, j := range []*vjob.VJob{web, solver, chat} {
		for _, v := range j.VMs {
			cfg.AddVM(v)
		}
	}
	// Everything currently crowds n1/n2 — including all three web
	// replicas on the same node, a single point of failure.
	must(cfg.SetRunning("web-0", "n1"))
	must(cfg.SetRunning("web-1", "n1"))
	must(cfg.SetRunning("web-2", "n2"))
	must(cfg.SetRunning("solver-0", "n2"))

	rules := []core.PlacementRule{
		core.Spread{VMs: []string{"web-0", "web-1", "web-2"}},
		// n4 is scheduled for maintenance: move the critical services
		// off it first (the short-lived chat workers may stay until
		// the next switch).
		core.Ban{VMs: []string{"web-0", "web-1", "web-2", "solver-0"}, Nodes: []string{"n4"}},
		core.Fence{VMs: []string{"solver-0"}, Nodes: []string{"n2", "n3"}}, // licence nodes
		core.Gather{VMs: []string{"chat-0", "chat-1"}},
	}

	fmt.Println("current configuration (web replicas share n1!):")
	fmt.Print(cfg)

	res, err := core.Optimizer{}.Solve(core.Problem{
		Src: cfg,
		Target: map[string]vjob.State{
			"web": vjob.Running, "solver": vjob.Running, "chat": vjob.Running,
		},
		Rules: rules,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ncontext switch enforcing the rules:")
	fmt.Print(res.Plan)
	fmt.Println("\ndestination configuration:")
	fmt.Print(res.Dst)

	for i, r := range rules {
		if err := r.Check(res.Dst); err != nil {
			log.Fatalf("rule %d violated: %v", i, err)
		}
	}
	fmt.Println("\nall placement rules hold in the destination configuration.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
