package vjob

import "testing"

// mustRun places a VM in the Running state or fails the test.
func mustRun(t *testing.T, c *Configuration, vm, node string) {
	t.Helper()
	if err := c.SetRunning(vm, node); err != nil {
		t.Fatal(err)
	}
}
