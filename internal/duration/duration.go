// Package duration models how long each VM context-switch action takes
// and how much it slows down co-hosted busy VMs. It is the analytic
// substitute for the measurements of §2.3 / Figure 3 of the paper,
// which were taken on 2.1 GHz Core 2 Duo nodes with Xen 3.2 and NFS
// storage. The model preserves the shapes that matter to the planner:
//
//   - booting a VM is constant (~6 s) and a clean shutdown is constant
//     (~25 s, dominated by service timeouts);
//   - migration, suspend and resume durations grow linearly with the
//     memory allocated to the manipulated VM (a migration reaches ~26 s
//     at 2 GiB);
//   - a remote suspend/resume (image pushed with scp or rsync) takes
//     about twice as long as a local one (a remote resume reaches ~3
//     minutes at 2 GiB);
//   - while an operation runs, busy VMs on the involved nodes are
//     decelerated by a factor of ~1.3 (local) to ~1.5 (remote).
package duration

import (
	"fmt"
	"time"

	"cwcs/internal/plan"
)

// Transfer says how a suspended image reaches (or leaves) the node
// that runs the VM.
type Transfer int

const (
	// Local: the image stays on the node's own storage.
	Local Transfer = iota
	// SCP: the image is copied with scp.
	SCP
	// Rsync: the image is copied with rsync.
	Rsync
)

// String names the transfer mode as in Figure 3 ("local", "local+scp",
// "local+rsync").
func (t Transfer) String() string {
	switch t {
	case Local:
		return "local"
	case SCP:
		return "local+scp"
	case Rsync:
		return "local+rsync"
	default:
		return "invalid"
	}
}

// Model holds the calibration constants. All durations are seconds;
// memory is MiB.
type Model struct {
	// BootSec is the constant duration of run (start) actions.
	BootSec float64
	// ShutdownSec is the constant duration of stop (clean shutdown).
	ShutdownSec float64
	// MigrateBaseSec + MigratePerMiB*mem is a live migration.
	MigrateBaseSec float64
	MigratePerMiB  float64
	// SuspendBaseSec + SuspendPerMiB*mem is a local suspend.
	SuspendBaseSec float64
	SuspendPerMiB  float64
	// ResumeBaseSec + ResumePerMiB*mem is a local resume.
	ResumeBaseSec float64
	ResumePerMiB  float64
	// RemoteFactorSCP/Rsync multiply the local suspend/resume duration
	// when the image crosses the network.
	RemoteFactorSCP   float64
	RemoteFactorRsync float64
	// DecelLocal/DecelRemote are the slowdown factors applied to busy
	// VMs co-hosted with a local (resp. remote) operation.
	DecelLocal  float64
	DecelRemote float64
	// RAMSuspendSec is the constant duration of the future-work
	// suspend-to-RAM variant (§7): no disk image is written.
	RAMSuspendSec float64
}

// Default returns the calibration matching §2.3: boot 6 s, shutdown
// 25 s, migrate 5+mem/100 s (25.5 s at 2 GiB), local suspend
// 5+mem/20 s (107 s at 2 GiB), local resume 5+mem/25 s (87 s at 2
// GiB), remote ≈ 2x, deceleration 1.3 local / 1.5 remote.
func Default() Model {
	return Model{
		BootSec:           6,
		ShutdownSec:       25,
		MigrateBaseSec:    5,
		MigratePerMiB:     0.01,
		SuspendBaseSec:    5,
		SuspendPerMiB:     0.05,
		ResumeBaseSec:     5,
		ResumePerMiB:      0.04,
		RemoteFactorSCP:   2.0,
		RemoteFactorRsync: 1.9,
		DecelLocal:        1.3,
		DecelRemote:       1.5,
		RAMSuspendSec:     1.5,
	}
}

func secs(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

// Boot returns the duration of a run action.
func (m Model) Boot() time.Duration { return secs(m.BootSec) }

// Shutdown returns the duration of a clean stop action.
func (m Model) Shutdown() time.Duration { return secs(m.ShutdownSec) }

// Migrate returns the duration of a live migration of a VM with the
// given memory allocation (MiB).
func (m Model) Migrate(memMiB int) time.Duration {
	return secs(m.MigrateBaseSec + m.MigratePerMiB*float64(memMiB))
}

// Suspend returns the duration of suspending a VM, writing the image
// through the given transfer.
func (m Model) Suspend(memMiB int, tr Transfer) time.Duration {
	local := m.SuspendBaseSec + m.SuspendPerMiB*float64(memMiB)
	return secs(local * m.factor(tr))
}

// Resume returns the duration of resuming a VM whose image arrives
// through the given transfer.
func (m Model) Resume(memMiB int, tr Transfer) time.Duration {
	local := m.ResumeBaseSec + m.ResumePerMiB*float64(memMiB)
	return secs(local * m.factor(tr))
}

// SuspendToRAM returns the duration of the §7 suspend-to-RAM variant.
func (m Model) SuspendToRAM() time.Duration { return secs(m.RAMSuspendSec) }

func (m Model) factor(tr Transfer) float64 {
	switch tr {
	case SCP:
		return m.RemoteFactorSCP
	case Rsync:
		return m.RemoteFactorRsync
	default:
		return 1
	}
}

// Deceleration returns the slowdown factor suffered by busy VMs
// co-hosted with an operation using the given transfer.
func (m Model) Deceleration(tr Transfer) float64 {
	if tr == Local {
		return m.DecelLocal
	}
	return m.DecelRemote
}

// UnknownActionError reports an action the duration model cannot
// time. It used to be a panic; a plan carrying an unmodeled action now
// surfaces a failed action through the driver instead of crashing the
// daemon.
type UnknownActionError struct {
	// Action is the unmodeled action (possibly nil).
	Action plan.Action
}

func (e *UnknownActionError) Error() string {
	return fmt.Sprintf("duration: unknown action type %T", e.Action)
}

// ActionDuration maps a plan action to its nominal duration and the
// transfer mode involved (remote suspends/resumes use SCP, the paper's
// default push). An unknown action type returns an UnknownActionError;
// the durations here assume the calibrated wire rate is available —
// ActionTransfer exposes the bandwidth-dependent decomposition.
func (m Model) ActionDuration(a plan.Action) (time.Duration, Transfer, error) {
	switch a := a.(type) {
	case *plan.Run:
		return m.Boot(), Local, nil
	case *plan.Stop:
		return m.Shutdown(), Local, nil
	case *plan.Migration:
		return m.Migrate(a.Machine.MemoryDemand()), Local, nil
	case *plan.Suspend:
		tr := Local
		if a.To != a.On {
			tr = SCP
		}
		return m.Suspend(a.Machine.MemoryDemand(), tr), tr, nil
	case *plan.Resume:
		tr := Local
		if !a.Local() {
			tr = SCP
		}
		return m.Resume(a.Machine.MemoryDemand(), tr), tr, nil
	default:
		return 0, Local, &UnknownActionError{Action: a}
	}
}
