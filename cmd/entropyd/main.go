// Command entropyd runs the full Entropy control loop against a
// simulated cluster: it generates a cluster and a vjob workload,
// starts the observe/decide/plan/execute loop with the dynamic
// consolidation decision module, and streams every cluster-wide
// context switch plus periodic utilization lines until the workload
// completes.
//
// With -listen the daemon also mounts the HTTP control plane
// (internal/api) and keeps serving until SIGTERM: operators can then
// inspect the configuration and the executing plan, scrape /metrics,
// inject monitoring events, drain or undrain nodes, and submit or
// withdraw vjobs at runtime. -listen implies -event-driven — the
// drain/evacuate workflow and runtime submissions are driven by
// events, not by the fixed period.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"cwcs/internal/api"
	"cwcs/internal/core"
	"cwcs/internal/drivers"
	"cwcs/internal/duration"
	"cwcs/internal/monitor"
	"cwcs/internal/obs"
	"cwcs/internal/sched"
	"cwcs/internal/sim"
	"cwcs/internal/vjob"
	"cwcs/internal/workload"

	"math/rand"
)

func main() {
	nodes := flag.Int("nodes", 11, "working nodes")
	cpu := flag.Int("cpu", 2, "processing units per node")
	memory := flag.Int("memory", 3584, "MiB per node")
	njobs := flag.Int("vjobs", 8, "number of vjobs")
	nvms := flag.Int("vms", 9, "VMs per vjob")
	interval := flag.Float64("interval", 30, "loop interval (virtual seconds)")
	eventDriven := flag.Bool("event-driven", false, "react to cluster events instead of the fixed period: re-solve only the dirty slices, repair plans on action failure")
	debounce := flag.Float64("debounce", 5, "event settle delay before an incremental iteration (virtual seconds)")
	timeout := flag.Duration("timeout", 2*time.Second, "optimizer budget per iteration")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel portfolio workers per optimization (1 = sequential)")
	partitions := flag.Int("partitions", 0, "cluster partitions solved concurrently (0 = auto, 1 = monolithic)")
	seed := flag.Int64("seed", 42, "workload seed")
	horizon := flag.Float64("horizon", 100_000, "simulation cut-off (virtual seconds; ignored while -listen serves)")
	listen := flag.String("listen", "", "mount the HTTP control plane on this address (e.g. :8080) and serve until SIGTERM; implies -event-driven")
	pprofOn := flag.Bool("pprof", false, "also mount net/http/pprof under /debug/pprof/ on the control plane (requires -listen)")
	version := flag.Bool("version", false, "print build metadata and exit")
	flag.Parse()

	if *version {
		info := obs.BuildInfo()
		fmt.Printf("entropyd %s %s\n", info.Version, info.GoVersion)
		return
	}

	serving := *listen != ""
	if serving {
		*eventDriven = true
	}

	// SIGINT/SIGTERM cancel the in-flight optimization and stop the
	// loop at the next iteration; the sim driver then finishes the
	// in-flight context switch before exiting instead of abandoning it
	// mid-migration.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	rng := rand.New(rand.NewSource(*seed))
	cfg := vjob.NewConfiguration()
	for i := 0; i < *nodes; i++ {
		cfg.AddNode(vjob.NewNode(fmt.Sprintf("node%02d", i), *cpu, *memory))
	}
	c := sim.New(cfg, duration.Default())

	jobs := make([]*vjob.VJob, 0, *njobs)
	for i := 0; i < *njobs; i++ {
		spec := workload.NewSpec(fmt.Sprintf("vjob%d", i+1),
			workload.Benchmarks[i%len(workload.Benchmarks)],
			workload.Classes[1+i%2], *nvms, i, rng)
		spec.Install(cfg, c)
		jobs = append(jobs, spec.Job)
		fmt.Printf("submitted %s: %s class %s, %d VMs, %.0f s of work\n",
			spec.Job.Name, spec.Bench, spec.Size, len(spec.Job.VMs), spec.TotalWork())
	}

	// Tracing and solver telemetry follow the control plane: their
	// records only matter when something can read them, and nil
	// tracer/telemetry keep the headless loop's hot path
	// allocation-free.
	var tracer *obs.Tracer
	var solver *core.SolverTelemetry
	if serving {
		tracer = obs.NewTracer(0)
		solver = core.NewSolverTelemetry(0)
	}

	drains := &core.DrainSet{}
	loop := &core.Loop{
		Trace:       tracer,
		Solver:      solver,
		Decision:    reaper{inner: sched.Consolidation{}, c: c, jobs: func() []*vjob.VJob { return jobs }},
		Ctx:         ctx,
		Optimizer:   core.Optimizer{Timeout: *timeout, Workers: *workers, Partitions: *partitions},
		Interval:    *interval,
		EventDriven: *eventDriven,
		Debounce:    *debounce,
		Drains:      drains,
		Queue:       func() []*vjob.VJob { return jobs },
		Done: func() bool {
			// Stop once every vjob finished AND its VMs were stopped.
			for _, j := range jobs {
				if !c.VJobDone(j) {
					return false
				}
				for _, v := range j.VMs {
					if cfg.VM(v.Name) != nil {
						return false
					}
				}
			}
			return true
		},
		OnSwitch: func(r core.SwitchRecord) {
			fmt.Println(switchLine(r))
		},
	}

	// Violation-seconds ledger: the exposure integral /metrics serves,
	// attributed per vjob, node and dimension — plus per breached
	// placement rule (the live drain orders) — behind GET
	// /v1/violations.
	ledger := monitor.WatchLedger(c, func() []core.PlacementRule {
		return append(append([]core.PlacementRule(nil), loop.Rules...), drains.Rules()...)
	})
	violSec := ledger.Total

	var tick func()
	tick = func() {
		s := monitor.Observe(c.Now(), cfg)
		fmt.Printf("[t=%7.0f] cpu %d/%d (%.0f%%), mem %.1f GiB, VMs run/sleep/wait %d/%d/%d\n",
			s.T, s.UsedCPU, s.CapCPU, s.CPUPercent(), s.MemGiB(), s.Running, s.Sleeping, s.Waiting)
		done := true
		for _, j := range jobs {
			if !c.VJobDone(j) {
				done = false
				break
			}
		}
		if !done {
			c.Schedule(c.Now()+60, tick)
		}
	}
	tick()

	act := &drivers.Actuator{C: c, Trace: tracer}
	if *eventDriven {
		// Monitoring feeds the loop: every observable load change
		// (phase shift, workload completion) becomes an event.
		c.OnLoadChange(func(vm string) {
			loop.Notify(act, core.Event{Kind: core.LoadChange, At: c.Now(), VMs: []string{vm}})
		})
	}

	// simMu serializes the sim driver with the control-plane handlers;
	// without -listen nothing else contends for it.
	var simMu sync.Mutex
	if serving {
		// Threshold monitoring: sustained per-node overload and node
		// up/down become events on the same ingestion path as POST
		// /v1/events.
		watcher := &monitor.ThresholdWatcher{Emit: func(ev core.Event) { loop.Notify(act, ev) }}
		watcher.Attach(c)

		apiSrv := controlPlane(&simMu, c, cfg, loop, act, drains, &jobs, violSec, tracer, ledger, solver)
		httpSrv := &http.Server{Addr: *listen, Handler: mount(apiSrv.Handler(), *pprofOn)}
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "control plane: %v\n", err)
			}
		}()
		defer func() { _ = httpSrv.Shutdown(context.Background()) }()
		fmt.Printf("control plane listening on %s\n", *listen)
	}

	// The listener may already be serving: starting the loop schedules
	// on the sim event heap, so it needs the same serialization the
	// handlers use.
	simMu.Lock()
	loop.Start(act)
	simMu.Unlock()
	driveSim(ctx, c, loop, &simMu, *horizon, serving, 30)

	fmt.Printf("\nworkload complete at t=%.0f s (%.1f min); %d context switches, mean duration %.0f s\n",
		c.Now(), c.Now()/60, len(loop.Records), meanDuration(loop.Records))
	if *eventDriven {
		s := loop.Stats
		fmt.Printf("event loop: %d events (%d coalesced), %d slice solves, %d full solves, %d repairs, %d partition reuses\n",
			s.Events, s.Coalesced, s.SliceSolves, s.FullSolves, s.Repairs, s.PartitionReuses)
	}
	local, remote := c.TransferCounts()
	fmt.Printf("actions: %v; transfers: %d local, %d remote\n", c.ActionCounts(), local, remote)
	if s := errorSummary(act.Reports); s != "" {
		fmt.Print(s)
	}
}

// controlPlane wires the daemon's state into the embeddable API
// server. jobs is a pointer to the live slice: submissions grow it.
func controlPlane(mu *sync.Mutex, c *sim.Cluster, cfg *vjob.Configuration, loop *core.Loop, act *drivers.Actuator, drains *core.DrainSet, jobs *[]*vjob.VJob, violSec func() float64, tracer *obs.Tracer, ledger *monitor.Ledger, solver *core.SolverTelemetry) *api.Server {
	return &api.Server{
		Trace:  tracer,
		Ledger: ledger,
		Solver: solver,
		Exec: func(fn func()) {
			mu.Lock()
			defer mu.Unlock()
			fn()
		},
		Now:      c.Now,
		Config:   c.Config,
		Stats:    func() core.LoopStats { return loop.Stats },
		Switches: func() int { return len(loop.Records) },
		Execution: func() *drivers.Execution {
			ex, _ := loop.Execution().(*drivers.Execution)
			return ex
		},
		Notify: func(ev core.Event) { loop.Notify(act, ev) },
		Drains: drains,
		OnUndrain: func(node string) error {
			if cfg.Node(node) == nil {
				// The node was taken offline after evacuation: bring it
				// back before lifting the drain order.
				return c.SetNodeOnline(node)
			}
			return nil
		},
		Submit: func(spec api.VJobSpec) error {
			for _, j := range *jobs {
				if j.Name == spec.Name {
					return fmt.Errorf("vjob %s already exists", spec.Name)
				}
			}
			var vms []*vjob.VM
			var names []string
			for _, v := range spec.VMs {
				if cfg.VM(v.Name) != nil {
					return fmt.Errorf("VM %s already exists", v.Name)
				}
				vms = append(vms, vjob.NewVM(v.Name, spec.Name, v.CPU, v.Memory))
				names = append(names, v.Name)
			}
			job := vjob.NewVJob(spec.Name, len(*jobs), vms...)
			job.Submitted = c.Now()
			for i, v := range vms {
				cfg.AddVM(v)
				var phases []sim.Phase
				for _, p := range spec.VMs[i].Phases {
					phases = append(phases, sim.Phase{CPU: p.CPU, Seconds: p.Seconds})
				}
				if len(phases) > 0 {
					c.SetWorkload(v.Name, phases)
				}
			}
			*jobs = append(*jobs, job)
			loop.Notify(act, core.Event{Kind: core.VMArrival, At: c.Now(), VMs: names})
			return nil
		},
		Withdraw: func(name string) error {
			for i, j := range *jobs {
				if j.Name != name {
					continue
				}
				var names []string
				for _, v := range j.VMs {
					if cfg.VM(v.Name) != nil && cfg.StateOf(v.Name) != vjob.Waiting {
						return fmt.Errorf("vjob %s is already placed; let it finish", name)
					}
					names = append(names, v.Name)
				}
				for _, vn := range names {
					cfg.RemoveVM(vn)
				}
				*jobs = append((*jobs)[:i], (*jobs)[i+1:]...)
				loop.Notify(act, core.Event{Kind: core.VMDeparture, At: c.Now(), VMs: names})
				return nil
			}
			return fmt.Errorf("unknown vjob %s", name)
		},
		ViolationSeconds: violSec,
		QueueDepth:       func() int { return len(*jobs) },
	}
}

// mount layers the optional pprof endpoints over the control-plane
// handler. When -pprof is off the pprof routes are simply never
// registered, so /debug/pprof/ falls through to the API mux and gets
// its ordinary 404 — nothing to strip, nothing to authenticate.
func mount(apiHandler http.Handler, pprofOn bool) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", apiHandler)
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// driveSim advances the simulator in chunks under mu, releasing the
// mutex between chunks so control-plane handlers interleave. Without
// serving it returns when the horizon is reached or the simulation
// goes quiescent (workload drained); while serving it runs until ctx
// is canceled, idling on real time when the virtual cluster has
// nothing to do. After cancellation it keeps advancing until the
// in-flight context switch (if any) has finished — a SIGTERM never
// abandons a half-executed plan mid-migration.
func driveSim(ctx context.Context, c *sim.Cluster, loop *core.Loop, mu *sync.Mutex, horizon float64, serving bool, chunk float64) {
	announced := false
	for {
		mu.Lock()
		if ctx.Err() != nil {
			if !loop.Busy() {
				mu.Unlock()
				return
			}
			if !announced {
				announced = true
				fmt.Println("shutdown: waiting for the in-flight context switch to finish")
			}
			before := c.Now()
			c.Run(before + chunk)
			stuck := c.Now() == before && loop.Busy()
			mu.Unlock()
			if stuck {
				fmt.Fprintln(os.Stderr, "shutdown: execution cannot progress; abandoning")
				return
			}
			continue
		}
		before := c.Now()
		target := before + chunk
		if !serving && target > horizon {
			target = horizon
		}
		if before >= target {
			mu.Unlock()
			return
		}
		c.Run(target)
		reached := c.Now()
		mu.Unlock()
		if reached == before && !serving { // quiescent: workload drained
			return
		}
		if serving {
			// Pace the daemon: recurring monitoring ticks keep the sim
			// non-quiescent forever, and an unpaced loop would burn a
			// core racing virtual time. One chunk per millisecond still
			// advances ~30k virtual seconds per real second.
			select {
			case <-ctx.Done():
			case <-time.After(time.Millisecond):
			}
		}
	}
}

// switchLine renders one context-switch record, surfacing action
// failures instead of silently dropping them.
func switchLine(r core.SwitchRecord) string {
	line := fmt.Sprintf("[t=%7.0f] context switch: cost=%d actions=%d pools=%d duration=%.0fs",
		r.At, r.Cost, r.Actions, r.Pools, r.Duration)
	if r.Failures > 0 {
		line += fmt.Sprintf(" FAILURES=%d", r.Failures)
	}
	return line
}

// errorSummary aggregates the per-action failures of every executed
// switch; it returns "" when everything succeeded.
func errorSummary(reports []drivers.Report) string {
	var b strings.Builder
	total := 0
	for _, rep := range reports {
		for _, err := range rep.Errs {
			total++
			fmt.Fprintf(&b, "  [t=%7.0f..%.0f] %v\n", rep.Start, rep.End, err)
		}
	}
	if total == 0 {
		return ""
	}
	return fmt.Sprintf("action failures: %d\n%s", total, b.String())
}

func meanDuration(recs []core.SwitchRecord) float64 {
	if len(recs) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range recs {
		sum += r.Duration
	}
	return sum / float64(len(recs))
}

// reaper terminates vjobs whose application finished, mirroring the
// paper's "the application signals Entropy to stop its vjob". It reads
// the live job list through the closure so runtime submissions are
// seen.
type reaper struct {
	inner core.DecisionModule
	c     *sim.Cluster
	jobs  func() []*vjob.VJob
}

func (r reaper) Decide(cfg *vjob.Configuration, queue []*vjob.VJob) map[string]vjob.State {
	var live []*vjob.VJob
	for _, j := range queue {
		if !r.c.VJobDone(j) {
			live = append(live, j)
		}
	}
	target := r.inner.Decide(cfg, live)
	for _, j := range r.jobs() {
		if !r.c.VJobDone(j) {
			continue
		}
		present, allRunning := false, true
		for _, v := range j.VMs {
			if cfg.VM(v.Name) == nil {
				continue
			}
			present = true
			if cfg.StateOf(v.Name) != vjob.Running {
				allRunning = false
			}
		}
		if present && allRunning {
			target[j.Name] = vjob.Terminated
		} else if present {
			target[j.Name] = vjob.Running
		}
	}
	return target
}
