package sim

import (
	"math/rand"
	"reflect"
	"testing"
)

func rackFixture() [][]string {
	return [][]string{
		{"node000", "node001"},
		{"node002", "node003"},
		{"node004", "node005"},
	}
}

func TestPlanBursts(t *testing.T) {
	tests := []struct {
		name   string
		racks  [][]string
		opts   BurstOptions
		bursts int
		// consumed reports whether the plan may draw from rng.
		consumed bool
	}{
		{"zero count is a no-op", rackFixture(), BurstOptions{From: 100, Until: 200, Outage: 50}, 0, false},
		{"no racks is a no-op", nil, BurstOptions{Count: 3, From: 100, Until: 200}, 0, false},
		{"draws count bursts", rackFixture(), BurstOptions{Count: 4, From: 100, Until: 200, Outage: 50}, 4, true},
		{"zero-width window pins to From", rackFixture(), BurstOptions{Count: 2, From: 300, Until: 300}, 2, true},
		{"inverted window pins to From", rackFixture(), BurstOptions{Count: 2, From: 300, Until: 100}, 2, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(1))
			got := PlanBursts(rng, tc.racks, tc.opts)
			if len(got) != tc.bursts {
				t.Fatalf("bursts = %d, want %d", len(got), tc.bursts)
			}
			// A no-op plan must leave the stream untouched: the next
			// draw matches a fresh rng's first draw.
			if !tc.consumed {
				if got, want := rng.Float64(), rand.New(rand.NewSource(1)).Float64(); got != want {
					t.Fatalf("no-op plan consumed rng: next draw %v, want %v", got, want)
				}
			}
			for i, b := range got {
				if i > 0 && b.At < got[i-1].At {
					t.Fatalf("bursts not time-sorted: %v", got)
				}
				lo, hi := tc.opts.From, tc.opts.Until
				if hi <= lo {
					hi = lo
				}
				if b.At < lo || (hi > lo && b.At >= hi) || (hi == lo && b.At != lo) {
					t.Fatalf("burst at %v outside [%v, %v)", b.At, lo, hi)
				}
				if tc.opts.Outage > 0 && b.RecoverAt != b.At+tc.opts.Outage {
					t.Fatalf("recover at %v, want %v", b.RecoverAt, b.At+tc.opts.Outage)
				}
				if tc.opts.Outage == 0 && b.RecoverAt != 0 {
					t.Fatalf("outage 0 must never recover, got %v", b.RecoverAt)
				}
				if len(b.Nodes) == 0 {
					t.Fatal("burst with no nodes")
				}
			}
		})
	}
}

// TestPlanBurstsDeterministic pins seeded reproducibility and checks
// the copied node slices are independent of the rack fixture.
func TestPlanBurstsDeterministic(t *testing.T) {
	opts := BurstOptions{Count: 3, From: 10, Until: 500, Outage: 60}
	a := PlanBursts(rand.New(rand.NewSource(9)), rackFixture(), opts)
	b := PlanBursts(rand.New(rand.NewSource(9)), rackFixture(), opts)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different plans:\n%v\n%v", a, b)
	}
	racks := rackFixture()
	c := PlanBursts(rand.New(rand.NewSource(9)), racks, opts)
	racks[0][0] = "mutated"
	for _, burst := range c {
		for _, n := range burst.Nodes {
			if n == "mutated" {
				t.Fatal("burst aliases the caller's rack slice")
			}
		}
	}
}

func TestPlanFlaps(t *testing.T) {
	tests := []struct {
		name string
		opts FlapOptions
		noop bool
	}{
		{"no nodes is a no-op", FlapOptions{From: 0, Until: 100, MeanDown: 5, MeanUp: 10}, true},
		{"empty window is a no-op", FlapOptions{Nodes: []string{"a"}, From: 100, Until: 100, MeanDown: 5, MeanUp: 10}, true},
		{"two flappers", FlapOptions{Nodes: []string{"a", "b"}, From: 50, Until: 500, MeanDown: 10, MeanUp: 30}, false},
		{"fast flapper", FlapOptions{Nodes: []string{"a"}, From: 0, Until: 1000, MeanDown: 1, MeanUp: 1}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(3))
			got := PlanFlaps(rng, tc.opts)
			if tc.noop {
				if len(got) != 0 {
					t.Fatalf("plan = %v, want none", got)
				}
				if next, want := rng.Float64(), rand.New(rand.NewSource(3)).Float64(); next != want {
					t.Fatal("no-op plan consumed rng")
				}
				return
			}
			if len(got) == 0 {
				t.Fatal("no transitions planned")
			}
			state := map[string]bool{} // currently down?
			seen := map[string]bool{}
			for i, tr := range got {
				if i > 0 && tr.At < got[i-1].At {
					t.Fatalf("transitions not time-sorted: %v", got)
				}
				if tr.At < tc.opts.From || tr.At > tc.opts.Until {
					t.Fatalf("transition at %v outside [%v, %v]", tr.At, tc.opts.From, tc.opts.Until)
				}
				if !seen[tr.Node] && !tr.Down {
					t.Fatalf("node %s recovered before failing", tr.Node)
				}
				if seen[tr.Node] && state[tr.Node] == tr.Down {
					t.Fatalf("node %s: consecutive down=%v transitions", tr.Node, tr.Down)
				}
				seen[tr.Node] = true
				state[tr.Node] = tr.Down
			}
			// Every flapped node must end healthy: the window closes
			// with a recovery edge.
			for n, down := range state {
				if down {
					t.Fatalf("node %s left down at the end of the plan", n)
				}
			}
		})
	}
}

func TestPlanFlapsAlternates(t *testing.T) {
	got := PlanFlaps(rand.New(rand.NewSource(5)), FlapOptions{
		Nodes: []string{"x"}, From: 0, Until: 2000, MeanDown: 5, MeanUp: 20,
	})
	if len(got) < 2 {
		t.Fatalf("want several transitions, got %v", got)
	}
	for i, tr := range got {
		wantDown := i%2 == 0
		if tr.Down != wantDown {
			t.Fatalf("transition %d direction = %v, want %v (%v)", i, tr.Down, wantDown, got)
		}
	}
}

func TestEventLossRate(t *testing.T) {
	tests := []struct {
		name string
		loss EventLoss
		now  float64
		want float64
	}{
		{"before window", EventLoss{Fraction: 0.4, From: 100, Until: 200}, 99.9, 0},
		{"window start inclusive", EventLoss{Fraction: 0.4, From: 100, Until: 200}, 100, 0.4},
		{"inside window", EventLoss{Fraction: 0.4, From: 100, Until: 200}, 150, 0.4},
		{"window end exclusive", EventLoss{Fraction: 0.4, From: 100, Until: 200}, 200, 0},
		{"after window", EventLoss{Fraction: 0.4, From: 100, Until: 200}, 1e9, 0},
		{"zero-length window is permanent", EventLoss{Fraction: 0.4}, 12345, 0.4},
		{"inverted window is permanent", EventLoss{Fraction: 0.4, From: 200, Until: 100}, 50, 0.4},
		{"zero fraction drops nothing", EventLoss{From: 100, Until: 200}, 150, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.loss.Rate(tc.now); got != tc.want {
				t.Fatalf("Rate(%v) = %v, want %v", tc.now, got, tc.want)
			}
		})
	}
}

// TestEventLossDropperStreamCompatible pins the FailureStorm-style
// stream contract: one draw per offered event whatever the rate, so a
// zero-fraction dropper is a behavioral no-op with the identical rng
// consumption of a lossy one, and adding a window never shifts the
// stream.
func TestEventLossDropperStreamCompatible(t *testing.T) {
	times := []float64{0, 50, 100, 150, 199, 200, 500}
	zero := EventLoss{Fraction: 0, From: 100, Until: 200}.Dropper(rand.New(rand.NewSource(11)))
	lossy := EventLoss{Fraction: 1, From: 100, Until: 200}.Dropper(rand.New(rand.NewSource(11)))
	drops := 0
	for _, now := range times {
		if zero(now) {
			t.Fatalf("zero-fraction dropper dropped at t=%v", now)
		}
		if lossy(now) {
			drops++
		}
	}
	if drops != 3 { // 100, 150, 199
		t.Fatalf("full-fraction dropper dropped %d of the 3 in-window events", drops)
	}
	// Both consumed one variate per event: their rngs now agree.
	a, b := rand.New(rand.NewSource(11)), rand.New(rand.NewSource(11))
	for range times {
		a.Float64()
		b.Float64()
	}
	if a.Float64() != b.Float64() {
		t.Fatal("reference streams diverged (test bug)")
	}
}

// TestEventLossDropperFraction checks the drop frequency tracks the
// configured fraction inside the window.
func TestEventLossDropperFraction(t *testing.T) {
	drop := EventLoss{Fraction: 0.5, From: 0, Until: 1e9}.Dropper(rand.New(rand.NewSource(2)))
	n, dropped := 10000, 0
	for i := 0; i < n; i++ {
		if drop(100) {
			dropped++
		}
	}
	if f := float64(dropped) / float64(n); f < 0.45 || f > 0.55 {
		t.Fatalf("observed drop fraction %v, want ~0.5", f)
	}
}
