package trace

import (
	"cwcs/internal/core"
	"cwcs/internal/sim"
	"cwcs/internal/vjob"
)

// Replay binds a decoded trace to a simulated cluster: every record
// becomes a scheduled mutation of the live configuration plus,
// optionally, a core.Event offered to the control loop — the same
// notify path the synthetic generators use, so a recorded trace and a
// generated workload exercise identical loop machinery.
type Replay struct {
	// Arrived, Departed and LoadChanges count the records applied so
	// far.
	Arrived, Departed, LoadChanges int

	jobs  []*vjob.VJob
	byJob map[string]*vjob.VJob
}

// Jobs returns the vjobs materialized so far, in first-arrival order
// — the live queue a core.Loop's Queue hook should read through a
// closure.
func (r *Replay) Jobs() []*vjob.VJob { return r.jobs }

// StartReplay schedules every record on the cluster's virtual clock
// and returns the replay handle. Arrivals materialize VMs (grouped
// into vjobs by the trace's vjob names, Waiting until the loop places
// them), load records rewrite the VM's demand vector, and departures
// mark the VM's workload done so the decision module's terminator
// retires it through an ordinary Stop action — departure frees
// resources via the loop, exactly like a finished synthetic workload.
//
// notify receives one event per applied record (VMArrival, LoadChange
// or VMDeparture, stamped with the cluster's clock); nil means a
// periodic loop that polls instead. Replay draws no randomness at
// all: given one decoded trace the schedule of mutations is fully
// determined, so any run-to-run variation comes from the loop under
// test, never from the driver.
//
// The records must be Decode-valid and sorted (Decode and FromCSV
// both guarantee it); StartReplay trusts them.
func StartReplay(c *sim.Cluster, recs []Record, notify func(core.Event)) *Replay {
	r := &Replay{byJob: map[string]*vjob.VJob{}}
	cfg := c.Config()
	for i := range recs {
		rec := recs[i]
		c.Schedule(rec.At, func() {
			switch rec.Event {
			case EventArrive:
				demand, err := rec.Vector()
				if err != nil {
					return // unreachable on Decode-valid records
				}
				vm := vjob.NewVMRes(rec.VM, rec.VJob, demand)
				j := r.byJob[rec.VJob]
				if j == nil {
					j = vjob.NewVJob(rec.VJob, len(r.jobs))
					j.Submitted = c.Now()
					r.byJob[rec.VJob] = j
					r.jobs = append(r.jobs, j)
				}
				j.VMs = append(j.VMs, vm)
				cfg.AddVM(vm)
				r.Arrived++
				if notify != nil {
					notify(core.Event{Kind: core.VMArrival, At: c.Now(), VMs: []string{rec.VM}})
				}
			case EventLoad:
				v := cfg.VM(rec.VM)
				if v == nil {
					return // already reaped by a racing departure
				}
				demand, err := rec.Vector()
				if err != nil {
					return
				}
				v.Demand = demand
				r.LoadChanges++
				if notify != nil {
					notify(core.Event{Kind: core.LoadChange, At: c.Now(), VMs: []string{rec.VM}})
				}
			case EventDepart:
				// An empty workload is immediately done: VJobDone turns
				// true once every VM of the job departed and the
				// terminator issues the Stop actions that free the
				// resources.
				c.SetWorkload(rec.VM, nil)
				r.Departed++
				if notify != nil {
					notify(core.Event{Kind: core.VMDeparture, At: c.Now(), VMs: []string{rec.VM}})
				}
			}
		})
	}
	return r
}
