package drivers

import (
	"errors"
	"testing"

	"cwcs/internal/duration"
	"cwcs/internal/obs"
	"cwcs/internal/plan"
	"cwcs/internal/sim"
	"cwcs/internal/vjob"
)

// TestActionSpansOnVirtualClock executes the two-pool managed plan
// with a tracer attached and checks every action's lifetime lands as
// an action span with the right kind name and virtual-clock bounds.
func TestActionSpansOnVirtualClock(t *testing.T) {
	c, p := managedPlan(t)
	tr := obs.NewTracer(64)
	done := false
	Start(c, p, Callbacks{Trace: tr, Done: func(Report) { done = true }})
	c.Run(100_000)
	if !done {
		t.Fatal("execution never completed")
	}

	byKind := map[string][]obs.SpanRecord{}
	for _, s := range tr.Recent(0) {
		if s.Kind != "action" {
			t.Fatalf("unexpected span kind %q from the driver", s.Kind)
		}
		byKind[s.Name] = append(byKind[s.Name], s)
	}
	if len(byKind["suspend"]) != 1 || len(byKind["migration"]) != 1 {
		t.Fatalf("action spans by kind = %v, want one suspend and one migration", byKind)
	}
	for kind, ss := range byKind {
		for _, s := range ss {
			if s.VirtDur() <= 0 {
				t.Errorf("%s span has non-positive virtual duration %g", kind, s.VirtDur())
			}
			if s.Outcome != "" {
				t.Errorf("successful %s span carries outcome %q", kind, s.Outcome)
			}
		}
	}
	// The suspend frees the memory the migration needs: its span must
	// close before the migration's opens (pool ordering on the virtual
	// clock).
	if sus, mig := byKind["suspend"][0], byKind["migration"][0]; sus.VirtEnd > mig.VirtStart {
		t.Errorf("suspend [%g,%g] overlaps migration [%g,%g]",
			sus.VirtStart, sus.VirtEnd, mig.VirtStart, mig.VirtEnd)
	}

	// The per-kind histograms saw the same two samples.
	for _, h := range tr.Histograms() {
		s := h.Snapshot()
		if s.Name != "cwcs_action_duration_vseconds" {
			continue
		}
		switch s.LabelValue {
		case "suspend", "migration":
			if s.Count != 1 {
				t.Errorf("action histogram kind=%s count = %d, want 1", s.LabelValue, s.Count)
			}
		default:
			if s.Count != 0 {
				t.Errorf("action histogram kind=%s count = %d, want 0", s.LabelValue, s.Count)
			}
		}
	}
}

// TestActionSpanRecordsFailure checks a failed action closes its span
// with outcome "failed" instead of vanishing from the trace.
func TestActionSpanRecordsFailure(t *testing.T) {
	// Built without the invariant watcher: executing the stale
	// remainder after the failed suspend legitimately overloads n01.
	cfg := vjob.NewConfiguration()
	cfg.AddNode(vjob.NewNode("n00", 2, 3072))
	cfg.AddNode(vjob.NewNode("n01", 2, 3072))
	c := sim.New(cfg, duration.Default())
	cfg.AddVM(vjob.NewVM("vm1", "a", 1, 2048))
	cfg.AddVM(vjob.NewVM("vm2", "b", 1, 2048))
	if err := cfg.SetRunning("vm1", "n00"); err != nil {
		t.Fatal(err)
	}
	if err := cfg.SetRunning("vm2", "n01"); err != nil {
		t.Fatal(err)
	}
	dst := cfg.Clone()
	if err := dst.SetSleeping("vm2", "n01"); err != nil {
		t.Fatal(err)
	}
	if err := dst.SetRunning("vm1", "n01"); err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(cfg, dst)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("driver lost the ssh session")
	c.FailAction = func(a plan.Action) error {
		if _, ok := a.(*plan.Suspend); ok {
			return boom
		}
		return nil
	}
	tr := obs.NewTracer(64)
	Start(c, p, Callbacks{Trace: tr, Done: func(Report) {}})
	c.Run(100_000)

	var failed []obs.SpanRecord
	for _, s := range tr.Recent(0) {
		if s.Kind == "action" && s.Outcome == "failed" {
			failed = append(failed, s)
		}
	}
	if len(failed) == 0 {
		t.Fatal("no action span recorded the injected failure")
	}
	if failed[0].Name != "suspend" {
		t.Errorf("failed span kind = %q, want suspend", failed[0].Name)
	}
}

// TestActionKindNames pins the mapping from plan actions to histogram
// label values against obs.ActionKinds, so a renamed action cannot
// silently land every sample in "other".
func TestActionKindNames(t *testing.T) {
	known := map[string]bool{}
	for _, k := range obs.ActionKinds {
		known[k] = true
	}
	for _, a := range []plan.Action{
		&plan.Migration{}, &plan.Run{}, &plan.Stop{}, &plan.Suspend{}, &plan.Resume{},
	} {
		if k := actionKind(a); !known[k] {
			t.Errorf("actionKind(%T) = %q, not a pre-registered obs.ActionKind", a, k)
		}
	}
}
