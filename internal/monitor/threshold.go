package monitor

import (
	"sort"

	"cwcs/internal/core"
	"cwcs/internal/sim"
	"cwcs/internal/vjob"
)

// ThresholdWatcher turns periodic utilization samples into debounced
// cluster events, the monitoring half of the control plane: sustained
// per-node overload becomes a LoadChange event the event-driven loop
// reacts to, and nodes leaving or joining the configuration become
// NodeDown / NodeUp events. It is the bridge between raw monitoring
// (Observe) and Loop.Notify — the same ingestion path the control
// plane's POST /v1/events feeds.
//
// Overload detection uses hysteresis so a node oscillating around the
// watermark does not storm the loop: a node must stay above High for
// Sustain consecutive samples before one event fires, and no further
// event fires until its utilization has dropped below Low again.
type ThresholdWatcher struct {
	// Interval is the sampling period in virtual seconds; 0 defaults
	// to 10 s (the paper's monitoring refresh).
	Interval float64
	// High is the overload watermark as a utilization fraction
	// (demand/capacity on CPU or memory, whichever is higher); 0
	// defaults to 0.9. Strictly above High counts as hot.
	High float64
	// Low is the re-arm watermark; an overloaded node must drop below
	// it before a new overload event can fire. 0 defaults to 0.7.
	Low float64
	// Sustain is how many consecutive hot samples trigger the event; 0
	// defaults to 3.
	Sustain int
	// Emit receives the events (required for Attach; Sample returns
	// them too).
	Emit func(core.Event)

	hot        map[string]int  // consecutive hot samples per node
	overloaded map[string]bool // fired and not yet cooled below Low
	known      map[string]bool // node set of the previous sample
	primed     bool            // first sample taken (baseline set)
	stopped    bool
}

func (w *ThresholdWatcher) interval() float64 {
	if w.Interval <= 0 {
		return 10
	}
	return w.Interval
}

func (w *ThresholdWatcher) high() float64 {
	if w.High <= 0 {
		return 0.9
	}
	return w.High
}

func (w *ThresholdWatcher) low() float64 {
	if w.Low <= 0 {
		return 0.7
	}
	return w.Low
}

func (w *ThresholdWatcher) sustain() int {
	if w.Sustain <= 0 {
		return 3
	}
	return w.Sustain
}

// utilization returns the node's demand/capacity fraction, the higher
// of CPU and memory, from the free-resource maps of one
// cfg.FreeResources pass (per-node UsedCPU/UsedMemory calls rescan the
// whole VM set, which would make sampling O(nodes x VMs) on the
// serving daemon's hottest path). Zero-capacity resources count as
// saturated only when demanded.
func utilization(freeCPU, freeMem map[string]int, n *vjob.Node) float64 {
	frac := func(used, cap int) float64 {
		if cap <= 0 {
			if used > 0 {
				return 2 // over any watermark
			}
			return 0
		}
		return float64(used) / float64(cap)
	}
	u := frac(n.CPU-freeCPU[n.Name], n.CPU)
	if m := frac(n.Memory-freeMem[n.Name], n.Memory); m > u {
		u = m
	}
	return u
}

// Sample feeds one observation of the configuration at virtual time t
// and returns the events it triggers, in deterministic (node-name)
// order. The first sample only takes the baseline: nodes present at
// attach time emit nothing.
func (w *ThresholdWatcher) Sample(t float64, cfg *vjob.Configuration) []core.Event {
	if w.hot == nil {
		w.hot = make(map[string]int)
		w.overloaded = make(map[string]bool)
		w.known = make(map[string]bool)
	}
	var events []core.Event
	current := make(map[string]bool, cfg.NumNodes())
	freeCPU, freeMem := cfg.FreeResources()

	for _, n := range cfg.Nodes() {
		current[n.Name] = true
		if w.primed && !w.known[n.Name] {
			events = append(events, core.Event{Kind: core.NodeUp, At: t, Nodes: []string{n.Name}})
		}
		u := utilization(freeCPU, freeMem, n)
		if u > w.high() {
			w.hot[n.Name]++
		} else {
			w.hot[n.Name] = 0
		}
		if w.overloaded[n.Name] {
			if u < w.low() {
				delete(w.overloaded, n.Name) // cooled: re-arm
			}
			continue
		}
		if w.hot[n.Name] >= w.sustain() {
			w.overloaded[n.Name] = true
			ev := core.Event{Kind: core.LoadChange, At: t, Nodes: []string{n.Name}}
			for _, v := range cfg.RunningOn(n.Name) {
				ev.VMs = append(ev.VMs, v.Name)
			}
			events = append(events, ev)
		}
	}

	// Known nodes that vanished from the configuration went offline.
	var downs []string
	for name := range w.known {
		if !current[name] {
			downs = append(downs, name)
		}
	}
	sort.Strings(downs)
	for _, name := range downs {
		events = append(events, core.Event{Kind: core.NodeDown, At: t, Nodes: []string{name}})
		delete(w.hot, name)
		delete(w.overloaded, name)
	}

	w.known = current
	w.primed = true
	return events
}

// Attach starts periodic sampling on the cluster, pushing every
// triggered event through Emit, until Stop is called.
func (w *ThresholdWatcher) Attach(c *sim.Cluster) {
	var tick func()
	tick = func() {
		if w.stopped {
			return
		}
		for _, ev := range w.Sample(c.Now(), c.Config()) {
			if w.Emit != nil {
				w.Emit(ev)
			}
		}
		c.Schedule(c.Now()+w.interval(), tick)
	}
	tick()
}

// Stop ends the sampling (the pending tick becomes a no-op).
func (w *ThresholdWatcher) Stop() { w.stopped = true }

// WatchViolationSeconds integrates the number of capacity violations
// over virtual time, advanced at every simulation event and phase
// change: the cumulative exposure metric of the churn and drain
// studies and of the control plane's /metrics. It returns the running
// integral's getter.
func WatchViolationSeconds(c *sim.Cluster) func() float64 {
	total, lastT := 0.0, 0.0
	lastViol := 0
	c.OnAdvance(func() {
		now := c.Now()
		if now > lastT {
			total += float64(lastViol) * (now - lastT)
			lastT = now
		}
		lastViol = len(c.Config().Violations())
	})
	return func() float64 { return total }
}
