package workload

import (
	"fmt"
	"math/rand"

	"cwcs/internal/resources"
	"cwcs/internal/vjob"
)

// Generated is a random cluster configuration for the §5.1 scalability
// study: 200 working nodes (2 CPUs, 4 GiB each) hosting vjobs built
// from the NGB trace set, each vjob in a random initial state with a
// memory-viable assignment.
type Generated struct {
	// Cfg is the initial configuration.
	Cfg *vjob.Configuration
	// Jobs are the vjobs, in queue (priority) order.
	Jobs []*vjob.VJob
	// Specs carries the workload phases per vjob (index-aligned with
	// Jobs).
	Specs []Spec
}

// GenerateOptions parameterizes GenerateConfiguration.
type GenerateOptions struct {
	// Nodes is the number of working nodes (paper: 200).
	Nodes int
	// NodeCPU and NodeMemory are per-node capacities (paper: 2 CPUs,
	// 4096 MiB).
	NodeCPU, NodeMemory int
	// NodeNet and NodeDisk are the extra-dimension capacities (Mbit/s
	// and MiB/s); zero leaves the cluster in the paper's 2-D model.
	NodeNet, NodeDisk int
	// VMs is the target number of VMs; vjobs of 9 or 18 VMs are added
	// until the target is reached.
	VMs int
	// NetFraction and DiskFraction are the probabilities a generated
	// vjob is net-bound or disk-bound (see Profile); both zero keeps
	// every vjob compute-bound and the rng stream identical to the
	// pre-multi-resource generator.
	NetFraction, DiskFraction float64
	// NICPoorFraction is the probability a node gets NICPoorNet as its
	// `net` capacity instead of NodeNet — the NIC-heterogeneous mixes
	// of the migration study (an aging rack with 100 Mbit uplinks in a
	// GigE cluster). Zero keeps every node at NodeNet and the rng
	// stream untouched, so published seeds reproduce byte-identically.
	NICPoorFraction float64
	// NICPoorNet is the NIC capacity (Mbit/s) of the poor nodes.
	NICPoorNet int
}

// DefaultGenerateOptions returns the paper's §5.1 parameters.
func DefaultGenerateOptions(vms int) GenerateOptions {
	return GenerateOptions{Nodes: 200, NodeCPU: 2, NodeMemory: 4096, VMs: vms}
}

// GenerateConfiguration builds one random sample. Running vjobs are
// placed with a memory-only first-fit (the paper guarantees the
// initial assignment satisfies the memory requirement; CPUs may be
// over-committed, which is what the context switch will fix), sleeping
// vjobs get their images on random nodes, and the rest wait.
func GenerateConfiguration(rng *rand.Rand, opts GenerateOptions) Generated {
	cfg := vjob.NewConfiguration()
	cap := resources.New(opts.NodeCPU, opts.NodeMemory)
	cap.Set(resources.NetBW, opts.NodeNet)
	cap.Set(resources.DiskIO, opts.NodeDisk)
	poor := cap
	poor.Set(resources.NetBW, opts.NICPoorNet)
	for i := 0; i < opts.Nodes; i++ {
		c := cap
		// The poor-NIC draw only runs when a heterogeneous mix is
		// requested: pure runs keep the historical rng stream.
		if opts.NICPoorFraction > 0 && rng.Float64() < opts.NICPoorFraction {
			c = poor
		}
		cfg.AddNode(vjob.NewNodeRes(fmt.Sprintf("node%03d", i), c))
	}
	g := Generated{Cfg: cfg}
	placed := 0
	for i := 0; placed < opts.VMs; i++ {
		n := 9
		if rng.Intn(2) == 1 {
			n = 18
		}
		if placed+n > opts.VMs {
			n = opts.VMs - placed
			if n == 0 {
				break
			}
		}
		bench := Benchmarks[rng.Intn(len(Benchmarks))]
		class := Classes[rng.Intn(len(Classes))]
		spec := NewSpec(fmt.Sprintf("job%03d", i), bench, class, n, i, rng)
		// Profile draw only when the generator is asked for a
		// heterogeneous mix: pure 2-D runs keep the historical rng
		// stream, so published seeds reproduce byte-identically.
		if opts.NetFraction > 0 || opts.DiskFraction > 0 {
			switch draw := rng.Float64(); {
			case draw < opts.NetFraction:
				NetBound.Apply(spec.Job)
			case draw < opts.NetFraction+opts.DiskFraction:
				DiskBound.Apply(spec.Job)
			}
		}
		// Roughly 60% of the VMs are computing right now (demanding an
		// entire processing unit); the others are staging or in
		// communication phases and release their CPU.
		for _, v := range spec.Job.VMs {
			if rng.Float64() < 0.6 {
				v.SetCPUDemand(1)
			} else {
				v.SetCPUDemand(0)
			}
		}
		for _, v := range spec.Job.VMs {
			cfg.AddVM(v)
		}
		switch rng.Intn(3) {
		case 0: // running, memory-first-fit
			if !placeByMemory(rng, cfg, spec.Job) {
				// Cluster memory exhausted: leave the vjob waiting.
				break
			}
		case 1: // sleeping with images on random nodes
			nodes := cfg.Nodes()
			for _, v := range spec.Job.VMs {
				_ = cfg.SetSleeping(v.Name, nodes[rng.Intn(len(nodes))].Name)
			}
		}
		g.Jobs = append(g.Jobs, spec.Job)
		g.Specs = append(g.Specs, spec)
		placed += n
	}
	return g
}

// placeByMemory assigns every VM of the vjob to a node with free
// memory (CPU ignored), scanning nodes from a random offset so load
// spreads. Returns false when memory runs out (nothing is rolled
// back: the caller treats the vjob as waiting, and SetWaiting resets
// the placed VMs).
func placeByMemory(rng *rand.Rand, cfg *vjob.Configuration, j *vjob.VJob) bool {
	nodes := cfg.Nodes()
	off := rng.Intn(len(nodes))
	for _, v := range j.VMs {
		placed := false
		for k := 0; k < len(nodes); k++ {
			n := nodes[(off+k)%len(nodes)]
			if cfg.FreeMemory(n.Name) >= v.MemoryDemand() {
				if err := cfg.SetRunning(v.Name, n.Name); err == nil {
					placed = true
					break
				}
			}
		}
		if !placed {
			for _, u := range j.VMs {
				_ = cfg.SetWaiting(u.Name)
			}
			return false
		}
	}
	return true
}
