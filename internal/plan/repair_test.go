package plan

import (
	"errors"
	"testing"

	"cwcs/internal/vjob"
)

// repairCluster builds four 1-CPU nodes and two running VMs: a on n1,
// b on n3. Node memory fits exactly one VM.
func repairCluster(t *testing.T) (*vjob.Configuration, *vjob.VM, *vjob.VM) {
	t.Helper()
	cfg := vjob.NewConfiguration()
	for _, n := range []string{"n1", "n2", "n3", "n4"} {
		cfg.AddNode(vjob.NewNode(n, 1, 1024))
	}
	a := vjob.NewVM("a", "j1", 1, 1024)
	b := vjob.NewVM("b", "j2", 1, 1024)
	cfg.AddVM(a)
	cfg.AddVM(b)
	if err := cfg.SetRunning("a", "n1"); err != nil {
		t.Fatal(err)
	}
	if err := cfg.SetRunning("b", "n3"); err != nil {
		t.Fatal(err)
	}
	return cfg, a, b
}

func set(keys ...string) map[string]bool {
	m := make(map[string]bool, len(keys))
	for _, k := range keys {
		m[k] = true
	}
	return m
}

func TestRepairSplicesFreshSlice(t *testing.T) {
	cfg, a, b := repairCluster(t)
	// The remainder still wants a:n1->n2 and b:n3->n4; b's slice
	// (n3, n4) went dirty, so its migration is dropped and replaced by
	// the freshly solved slice plan.
	remaining := &Plan{Src: cfg, Pools: []Pool{
		{&Migration{Machine: a, Src: "n1", Dst: "n2"}},
		{&Migration{Machine: b, Src: "n3", Dst: "n4"}},
	}}
	fresh := &Plan{Pools: []Pool{
		{&Migration{Machine: b, Src: "n3", Dst: "n4"}},
	}}
	got, err := Repair(cfg, remaining, set("n3", "n4"), set("b"), fresh)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumActions() != 2 {
		t.Fatalf("repaired plan has %d actions:\n%s", got.NumActions(), got)
	}
	final, err := got.Result()
	if err != nil {
		t.Fatal(err)
	}
	if final.HostOf("a") != "n2" || final.HostOf("b") != "n4" {
		t.Fatalf("final placement a=%s b=%s", final.HostOf("a"), final.HostOf("b"))
	}
}

func TestRepairKeepsCleanRegionUntouched(t *testing.T) {
	cfg, a, _ := repairCluster(t)
	remaining := &Plan{Src: cfg, Pools: []Pool{
		{&Migration{Machine: a, Src: "n1", Dst: "n2"}},
	}}
	// No fresh plans: a pure filter of the remainder.
	got, err := Repair(cfg, remaining, set("n3", "n4"), set("b"))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumActions() != 1 {
		t.Fatalf("repaired plan has %d actions", got.NumActions())
	}
}

func TestRepairRefusesBrokenFeasibilityEdge(t *testing.T) {
	// c occupies n2; the remainder suspends c (freeing n2) and then
	// migrates a into n2. Marking only c dirty drops the suspend while
	// keeping the migration, which is no longer feasible — Repair must
	// refuse rather than emit a plan that overloads n2.
	cfg, a, _ := repairCluster(t)
	c := vjob.NewVM("c", "j3", 0, 1024)
	cfg.AddVM(c)
	if err := cfg.SetRunning("c", "n2"); err != nil {
		t.Fatal(err)
	}
	remaining := &Plan{Src: cfg, Pools: []Pool{
		{&Suspend{Machine: c, On: "n2", To: "n2"}},
		{&Migration{Machine: a, Src: "n1", Dst: "n2"}},
	}}
	_, err := Repair(cfg, remaining, nil, set("c"))
	if err == nil {
		t.Fatal("repair accepted a splice that breaks a feasibility edge")
	}
}

// TestRepairRefusesCrossSliceDependency is the regression pin for the
// cross-slice repair gap (ROADMAP): when a kept action outside the
// re-solved region depends on a dropped action — here the dropped
// migration was the one freeing the kept migration's destination —
// Repair must refuse (sending the loop to a full re-solve), never
// emit the corrupt splice.
func TestRepairRefusesCrossSliceDependency(t *testing.T) {
	cfg, _, _ := repairCluster(t)
	// y fills n4; z sits on n2. The monolithic remainder first moves y
	// into the region that later went dirty (freeing n4), then moves z
	// into the freed n4.
	y := vjob.NewVM("y", "j3", 0, 1024)
	z := vjob.NewVM("z", "j4", 0, 1024)
	cfg.AddVM(y)
	cfg.AddVM(z)
	if err := cfg.SetRunning("y", "n4"); err != nil {
		t.Fatal(err)
	}
	if err := cfg.SetRunning("z", "n2"); err != nil {
		t.Fatal(err)
	}
	remaining := &Plan{Src: cfg, Pools: []Pool{
		{&Migration{Machine: y, Src: "n4", Dst: "n1"}},
		{&Migration{Machine: z, Src: "n2", Dst: "n4"}},
	}}
	// The dirty region is {n1, a}: y's migration touches n1 and is
	// dropped; z's migration (n2 -> n4) touches neither and is kept —
	// but its destination is only free if y actually left.
	_, err := Repair(cfg, remaining, set("n1"), set("a"))
	if err == nil {
		t.Fatal("repair accepted a splice whose kept remainder depends on a dropped action")
	}
}

func TestRepairRefusesOverlappingFresh(t *testing.T) {
	cfg, a, b := repairCluster(t)
	remaining := &Plan{Src: cfg, Pools: []Pool{
		{&Migration{Machine: a, Src: "n1", Dst: "n2"}},
	}}
	// The fresh plan claims n2, which the kept remainder also touches.
	fresh := &Plan{Pools: []Pool{
		{&Migration{Machine: b, Src: "n3", Dst: "n2"}},
	}}
	_, err := Repair(cfg, remaining, set("n3"), set("b"), fresh)
	if !errors.Is(err, ErrOverlappingPlans) {
		t.Fatalf("err = %v, want ErrOverlappingPlans", err)
	}
}

func TestRepairNilRemainder(t *testing.T) {
	cfg, _, b := repairCluster(t)
	fresh := &Plan{Pools: []Pool{
		{&Migration{Machine: b, Src: "n3", Dst: "n4"}},
	}}
	got, err := Repair(cfg, nil, set("n3", "n4"), set("b"), fresh)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumActions() != 1 {
		t.Fatalf("repaired plan has %d actions", got.NumActions())
	}
}

func TestTouchedNodesExported(t *testing.T) {
	m := &Migration{Machine: vjob.NewVM("v", "", 1, 1), Src: "n1", Dst: "n2"}
	got := TouchedNodes(m)
	if len(got) != 2 || got[0] != "n1" || got[1] != "n2" {
		t.Fatalf("TouchedNodes = %v", got)
	}
}
