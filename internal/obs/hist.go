package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// wallBounds covers solver/splice CPU time: sub-millisecond carves up
// to multi-second monolithic solves.
var wallBounds = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// virtBounds covers virtual time: single migrations (seconds) up to
// long remediations (hundreds of virtual seconds).
var virtBounds = []float64{
	0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000,
}

// Histogram is a fixed-bucket latency histogram in the Prometheus
// model (le upper bounds, +Inf implicit). Observe is lock-free so the
// loop never contends with scrapes; Snapshot is what /metrics renders.
type Histogram struct {
	name, help        string
	label, labelValue string // optional single label, e.g. kind="migration"
	bounds            []float64
	buckets           []atomic.Uint64 // len(bounds)+1; last is +Inf
	count             atomic.Uint64
	sumBits           atomic.Uint64
}

func newHistogram(name, help, label, labelValue string, bounds []float64) *Histogram {
	return &Histogram{
		name: name, help: help,
		label: label, labelValue: labelValue,
		bounds:  bounds,
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// SearchFloat64s returns the first bound >= v, which is exactly
	// the le bucket; past the last bound it returns len(bounds), the
	// +Inf slot.
	h.buckets[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// HistogramSnapshot is a consistent-enough read of a histogram for
// exposition (buckets may trail count by in-flight observations; each
// line is individually monotone).
type HistogramSnapshot struct {
	Name, Help        string
	Label, LabelValue string
	Bounds            []float64
	Counts            []uint64 // per-bucket, not cumulative; last is +Inf
	Sum               float64
	Count             uint64
}

// Snapshot returns the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Name: h.name, Help: h.help,
		Label: h.label, LabelValue: h.labelValue,
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.buckets)),
		Sum:    math.Float64frombits(h.sumBits.Load()),
		Count:  h.count.Load(),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}
