package vjob

// State is the position of a vjob (or of a single VM) in the life cycle
// of Figure 2 of the paper.
type State int8

const (
	// Waiting: submitted, never run; holds no cluster resource.
	Waiting State = iota
	// Running: hosted on a node with its demands satisfied.
	Running
	// Sleeping: suspended; its memory image lies on a node's storage
	// but it consumes neither CPU nor memory.
	Sleeping
	// Terminated: stopped by its owner; removed from the system.
	Terminated
)

// String returns the state name used throughout logs and reports.
func (s State) String() string {
	switch s {
	case Waiting:
		return "waiting"
	case Running:
		return "running"
	case Sleeping:
		return "sleeping"
	case Terminated:
		return "terminated"
	default:
		return "invalid"
	}
}

// Ready reports whether the state belongs to the paper's pseudo-state
// Ready, which combines the runnable vjobs (Sleeping or Waiting).
func (s State) Ready() bool { return s == Waiting || s == Sleeping }

// ValidTransition reports whether the life cycle of Figure 2 permits
// switching from s to t. Migrations keep the Running state, so Running
// to Running is allowed.
func ValidTransition(s, t State) bool {
	switch s {
	case Waiting:
		return t == Running || t == Waiting
	case Running:
		return t == Running || t == Sleeping || t == Terminated
	case Sleeping:
		return t == Running || t == Sleeping
	case Terminated:
		return t == Terminated
	default:
		return false
	}
}

// VJob is a virtualized job: a job encapsulated into one or several
// VMs, scheduled as a gang. All VMs of a vjob share the same state in
// every configuration computed by a decision module.
type VJob struct {
	// Name identifies the vjob.
	Name string
	// VMs are the machines the job spans. Order is the submission
	// order and is preserved by all operations.
	VMs []*VM
	// Priority orders vjobs in the FCFS queue; a lower value means the
	// vjob was submitted earlier (and thus wins ties).
	Priority int
	// Submitted is the submission instant in seconds of virtual time.
	Submitted float64
}

// NewVJob builds a vjob owning the given VMs and stamps each VM with
// the vjob name.
func NewVJob(name string, priority int, vms ...*VM) *VJob {
	j := &VJob{Name: name, Priority: priority, VMs: vms}
	for _, v := range vms {
		v.VJob = name
	}
	return j
}

// TotalMemory returns the sum of the memory demands of the vjob's VMs,
// in MiB.
func (j *VJob) TotalMemory() int {
	sum := 0
	for _, v := range j.VMs {
		sum += v.MemoryDemand()
	}
	return sum
}

// TotalCPU returns the sum of the CPU demands of the vjob's VMs, in
// processing units.
func (j *VJob) TotalCPU() int {
	sum := 0
	for _, v := range j.VMs {
		sum += v.CPUDemand()
	}
	return sum
}
