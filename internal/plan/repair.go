package plan

import (
	"fmt"

	"cwcs/internal/vjob"
)

// TouchedNodes lists every node the action reads or writes resources
// on, for callers building dirty regions (e.g. the event-driven loop
// in internal/core).
func TouchedNodes(a Action) []string { return touchedNodes(a) }

// Repair splices fresh slice plans into the remainder of an executing
// plan instead of aborting it. cur is the observed configuration at a
// pool boundary (every started action has completed, successfully or
// not), remaining holds the pools that have not started, dirtyNodes
// and dirtyVMs delimit the region invalidated by failures or events —
// typically the full node/VM coverage of the re-solved slices, not
// just the failed elements — and fresh are the plans re-solved over
// exactly that region.
//
// Repair keeps every remaining action outside the dirty region (their
// feasibility argument is untouched: the fresh plans never enter their
// nodes), drops the ones inside, and merges the fresh plans in. The
// result is re-validated pool by pool against cur, so a splice can
// never violate the feasibility-edge ordering of §4.1: when dropping a
// dirty action breaks a later kept action (for instance a migration
// that waited on a dropped suspend to free its destination), Repair
// refuses and the caller falls back to a full re-solve.
func Repair(cur *vjob.Configuration, remaining *Plan, dirtyNodes, dirtyVMs map[string]bool, fresh ...*Plan) (*Plan, error) {
	kept := &Plan{Src: cur}
	if remaining != nil {
		for _, pool := range remaining.Pools {
			var np Pool
			for _, a := range pool {
				if touchesDirty(a, dirtyNodes, dirtyVMs) {
					continue
				}
				np = append(np, a)
			}
			if len(np) > 0 {
				kept.Pools = append(kept.Pools, np)
			}
		}
	}
	merged, err := Merge(cur, append([]*Plan{kept}, fresh...)...)
	if err != nil {
		return nil, err
	}
	if err := merged.Validate(); err != nil {
		return nil, fmt.Errorf("plan: repair would break feasibility: %w", err)
	}
	return merged, nil
}

// touchesDirty reports whether the action manipulates a dirty VM or
// reads/writes resources on a dirty node.
func touchesDirty(a Action, nodes, vms map[string]bool) bool {
	if vms[a.VM().Name] {
		return true
	}
	for _, n := range touchedNodes(a) {
		if nodes[n] {
			return true
		}
	}
	return false
}
