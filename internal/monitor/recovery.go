package monitor

import (
	"math"
	"sort"

	"cwcs/internal/sim"
)

// RecoveryLog records violation episodes: a span of virtual time that
// opens when the cluster transitions from violation-free to violating
// (capacity or transfer violations, the WatchViolationSeconds signal)
// and closes when it returns to zero. The episode lengths are the
// recovery times chaos studies report as distributions — how long the
// loop needs to repair each injected disruption, not just how much
// total exposure accumulated.
type RecoveryLog struct {
	// Durations are the closed episodes' lengths, in order of closure.
	Durations []float64
	// Starts are the closed episodes' opening times, aligned with
	// Durations — the input the observability layer matches against
	// reconfiguration spans (obs.RemediationTimes).
	Starts []float64
	// Open reports whether an episode is still running (and since
	// when) — an unrecovered violation at the horizon.
	Open      bool
	OpenSince float64
}

// CloseAt force-closes a still-open episode at the horizon so its
// (censored) length enters the distribution; studies call it once
// after the run. A no-op when no episode is open.
func (l *RecoveryLog) CloseAt(now float64) {
	if !l.Open {
		return
	}
	l.Starts = append(l.Starts, l.OpenSince)
	l.Durations = append(l.Durations, now-l.OpenSince)
	l.Open = false
}

// Episodes returns the number of closed episodes.
func (l *RecoveryLog) Episodes() int { return len(l.Durations) }

// Quantile returns the q-quantile (0..1) of the episode lengths; see
// the package-level Quantile for the method.
func (l *RecoveryLog) Quantile(q float64) float64 {
	return Quantile(l.Durations, q)
}

// Quantile returns the q-quantile (0..1) of values using the
// nearest-rank method, so the reported p95 is a sample that actually
// happened. It returns 0 on an empty slice; q outside [0,1] is
// clamped. The input is not modified.
func Quantile(values []float64, q float64) float64 {
	n := len(values)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// Max returns the longest episode, 0 when none closed.
func (l *RecoveryLog) Max() float64 {
	out := 0.0
	for _, d := range l.Durations {
		if d > out {
			out = d
		}
	}
	return out
}

// WatchRecovery attaches an episode detector to the cluster: at every
// simulation advance it samples the violation count and logs the 0 →
// >0 and >0 → 0 transitions as episode boundaries. It shares the
// advance cadence (and thus the timing resolution) of
// WatchViolationSeconds, so the two metrics describe the same signal
// — one as an integral, one as a distribution of repair times.
func WatchRecovery(c *sim.Cluster) *RecoveryLog {
	l := &RecoveryLog{}
	c.OnAdvance(func() {
		viol := len(c.Config().Violations()) + len(c.TransferViolations())
		switch {
		case viol > 0 && !l.Open:
			l.Open = true
			l.OpenSince = c.Now()
		case viol == 0 && l.Open:
			l.CloseAt(c.Now())
		}
	})
	return l
}
