package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"cwcs/internal/cp"
	"cwcs/internal/plan"
	"cwcs/internal/vjob"
)

// ErrNoViableConfiguration is returned when no viable destination
// configuration satisfies the requested vjob states at all.
var ErrNoViableConfiguration = errors.New("core: no viable configuration for the requested states")

// Optimizer computes, for a Problem, a viable destination
// configuration with a reconfiguration plan as cheap as possible. It
// implements §4.3: assignment variables per running VM over the node
// set, multi-knapsack viability constraints, a dynamically maintained
// lower bound on the future plan cost, first-fail variable ordering
// (hardest VMs first) and prefer-current-host value ordering, inside a
// branch-and-bound loop driven by the true §4.2 plan cost.
//
// The zero value uses the paper's heuristics with no time limit; set
// Timeout to bound the search (the paper uses 40 s for the §5.1
// study).
type Optimizer struct {
	// Timeout bounds the whole optimization; zero means none.
	Timeout time.Duration
	// UseKnapsack enables the DP subset-sum bound inside the packing
	// constraints (slower per node, stronger pruning).
	UseKnapsack bool
	// DisableCostBound drops the plan-cost lower-bound propagator, so
	// the search degenerates to first-viable-solution enumeration
	// (ablation).
	DisableCostBound bool
	// NaiveOrdering disables first-fail and prefer-current-host
	// (ablation).
	NaiveOrdering bool
	// PinRunning forbids migrating VMs that are already running: each
	// keeps its current host. This models a static RMS (the §5.2 FCFS
	// baseline never moves a placed job) and is also a useful
	// ablation of the migration action.
	PinRunning bool
	// Builder plans the graphs of candidate configurations.
	Builder plan.Builder
}

// Solve runs the optimization. It returns ErrNoViableConfiguration
// when even one solution cannot be found (within the timeout).
func (o Optimizer) Solve(p Problem) (*Result, error) {
	goals, err := p.compile()
	if err != nil {
		return nil, err
	}
	model := newCostModel(p.Src, goals)
	nodes := p.Src.Nodes()
	nodeIdx := make(map[string]int, len(nodes))
	for i, n := range nodes {
		nodeIdx[n.Name] = i
	}

	// Runners: every VM whose destination state is Running gets an
	// assignment variable; everything else contributes fixed costs.
	var runners []vmGoal
	fixed := 0
	for _, g := range goals {
		if g.want == vjob.Running {
			runners = append(runners, g)
		} else {
			fixed += g.fixedCost()
		}
	}
	// Hardest VMs first (§4.3 first-fail flavor): decreasing memory
	// then CPU demand.
	sort.SliceStable(runners, func(i, j int) bool {
		a, b := runners[i].vm, runners[j].vm
		if a.MemoryDemand != b.MemoryDemand {
			return a.MemoryDemand > b.MemoryDemand
		}
		if a.CPUDemand != b.CPUDemand {
			return a.CPUDemand > b.CPUDemand
		}
		return a.Name < b.Name
	})

	s := cp.NewSolver()
	vars := make([]*cp.IntVar, len(runners))
	maxObj := fixed
	for i, g := range runners {
		var allowed []int
		for j, n := range nodes {
			if n.CPU >= g.vm.CPUDemand && n.Memory >= g.vm.MemoryDemand {
				allowed = append(allowed, j)
			}
		}
		if o.PinRunning && g.cur == vjob.Running {
			if idx, ok := nodeIdx[g.curLoc]; ok {
				allowed = []int{idx}
			}
		}
		if len(allowed) == 0 {
			return nil, fmt.Errorf("%w: %s fits on no node", ErrNoViableConfiguration, g.vm.Name)
		}
		vars[i] = s.NewEnumVar(g.vm.Name, allowed)
		if idx, ok := nodeIdx[g.curLoc]; ok {
			vars[i].SetPreferred(idx)
		}
		worst := 0
		for _, j := range allowed {
			if c := model.contribution(g, nodes[j].Name); c > worst {
				worst = c
			}
		}
		maxObj += worst
	}

	cpuW := make([]int, len(runners))
	memW := make([]int, len(runners))
	cpuC := make([]int, len(nodes))
	memC := make([]int, len(nodes))
	for i, g := range runners {
		cpuW[i] = g.vm.CPUDemand
		memW[i] = g.vm.MemoryDemand
	}
	for j, n := range nodes {
		cpuC[j] = n.CPU
		memC[j] = n.Memory
	}
	if len(runners) > 0 {
		s.Post(&cp.Packing{Name: "cpu", Items: vars, Weights: cpuW, Capacity: cpuC, UseKnapsack: o.UseKnapsack})
		s.Post(&cp.Packing{Name: "memory", Items: vars, Weights: memW, Capacity: memC, UseKnapsack: o.UseKnapsack})
	}

	varByName := make(map[string]*cp.IntVar, len(runners))
	for i, g := range runners {
		varByName[g.vm.Name] = vars[i]
	}
	for _, rule := range p.Rules {
		if err := rule.Apply(s, varByName, nodeIdx); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrNoViableConfiguration, err)
		}
	}

	obj := s.NewIntVar("cost", 0, maxObj)
	if !o.DisableCostBound {
		s.Post(o.costBound(model, runners, vars, nodes, obj, fixed))
	}

	opts := cp.Options{
		Vars:        vars,
		FirstFail:   !o.NaiveOrdering,
		PreferValue: !o.NaiveOrdering,
	}
	if o.Timeout != 0 {
		opts.Deadline = time.Now().Add(o.Timeout)
	}

	// Warm start: the FFD heuristic's plan seeds the incumbent, so the
	// optimizer never returns anything worse than the baseline and the
	// branch-and-bound starts with a meaningful ceiling.
	var best *Result
	bound := maxObj
	if seed, err := FFDPlan(p); err == nil && rulesHold(p.Rules, seed.Dst) && o.seedRespectsPins(p, seed) {
		best = seed
		if best.Cost-1 < bound {
			bound = best.Cost - 1
		}
	}
	root := s.SaveState()
	for {
		s.RestoreState(root)
		if err := s.RemoveAbove(obj, bound); err != nil {
			break // cost floor reached: optimality proven
		}
		sol, err := s.Solve(opts)
		if errors.Is(err, cp.ErrDeadline) {
			if best == nil {
				return nil, fmt.Errorf("%w: timeout before first solution", ErrNoViableConfiguration)
			}
			best.finishStats(s)
			return best, nil
		}
		if errors.Is(err, cp.ErrFailed) {
			break // search space exhausted: optimality proven
		}
		if err != nil {
			return nil, err
		}
		lb := fixed
		for i, g := range runners {
			lb += model.contribution(g, nodes[sol.MustValue(vars[i])].Name)
		}
		dst, derr := o.decode(p, goals, runners, vars, nodes, sol)
		if derr == nil {
			if g, gerr := plan.BuildGraph(p.Src, dst); gerr == nil {
				if pl, perr := o.Builder.Plan(g); perr == nil {
					if best == nil || pl.Cost() < best.Cost {
						best = &Result{Dst: dst, Plan: pl, Cost: pl.Cost(), LowerBound: lb, Solutions: 0}
					}
					best.Solutions++
				}
			}
		}
		// Tighten: any better configuration must have a strictly lower
		// action-cost sum than this one, and its sum (an admissible
		// lower bound of its plan cost) must undercut the incumbent.
		bound = lb - 1
		if best != nil && best.Cost-1 < bound {
			bound = best.Cost - 1
		}
	}
	if best == nil {
		return nil, ErrNoViableConfiguration
	}
	best.Optimal = true
	best.finishStats(s)
	return best, nil
}

// seedRespectsPins rejects a heuristic seed that migrates a running VM
// when PinRunning is in force: the FFD heuristic re-places everything
// from scratch and knows nothing about pinning.
func (o Optimizer) seedRespectsPins(p Problem, seed *Result) bool {
	if !o.PinRunning {
		return true
	}
	for _, v := range p.Src.VMs() {
		if p.Src.StateOf(v.Name) == vjob.Running && seed.Dst.StateOf(v.Name) == vjob.Running &&
			seed.Dst.HostOf(v.Name) != p.Src.HostOf(v.Name) {
			return false
		}
	}
	return true
}

func (r *Result) finishStats(s *cp.Solver) {
	nodes, fails, _, _ := s.Stats()
	r.Nodes, r.Fails = nodes, fails
}

// costBound is the dynamic cost estimation of §4.3: it keeps the
// objective's lower bound equal to the fixed costs plus, per VM,
// either the exact contribution of its assignment or the cheapest
// contribution still in its domain; and it prunes node choices that
// would push the bound past the incumbent.
func (o Optimizer) costBound(model *costModel, runners []vmGoal, vars []*cp.IntVar, nodes []*vjob.Node, obj *cp.IntVar, fixed int) cp.Constraint {
	watched := append([]*cp.IntVar{obj}, vars...)
	return &cp.FuncConstraint{
		On: watched,
		Run: func(s *cp.Solver) error {
			lb := fixed
			mins := make([]int, len(vars))
			for i, v := range vars {
				if v.Bound() {
					mins[i] = model.contribution(runners[i], nodes[v.Value()].Name)
				} else {
					min := -1
					for _, val := range v.Values() {
						c := model.contribution(runners[i], nodes[val].Name)
						if min < 0 || c < min {
							min = c
						}
					}
					mins[i] = min
				}
				lb += mins[i]
			}
			if err := s.RemoveBelow(obj, lb); err != nil {
				return err
			}
			slack := obj.Max() - lb
			for i, v := range vars {
				if v.Bound() {
					continue
				}
				for _, val := range v.Values() {
					if model.contribution(runners[i], nodes[val].Name)-mins[i] > slack {
						if err := s.RemoveValue(v, val); err != nil {
							return err
						}
					}
				}
			}
			return nil
		},
	}
}

// decode turns a solver solution into the destination configuration.
func (o Optimizer) decode(p Problem, goals []vmGoal, runners []vmGoal, vars []*cp.IntVar, nodes []*vjob.Node, sol cp.Solution) (*vjob.Configuration, error) {
	dst := p.Src.Clone()
	for _, g := range goals {
		switch g.want {
		case vjob.Sleeping:
			if g.cur == vjob.Running {
				if err := dst.SetSleeping(g.vm.Name, g.curLoc); err != nil {
					return nil, err
				}
			}
		case vjob.Terminated:
			dst.RemoveVM(g.vm.Name)
		case vjob.Waiting:
			// stays waiting
		}
	}
	for i, g := range runners {
		if err := dst.SetRunning(g.vm.Name, nodes[sol.MustValue(vars[i])].Name); err != nil {
			return nil, err
		}
	}
	if !dst.Viable() {
		return nil, fmt.Errorf("core: solver produced non-viable configuration: %v", dst.Violations())
	}
	for _, rule := range p.Rules {
		if err := rule.Check(dst); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// rulesHold reports whether every placement rule accepts the
// configuration.
func rulesHold(rules []PlacementRule, cfg *vjob.Configuration) bool {
	for _, r := range rules {
		if r.Check(cfg) != nil {
			return false
		}
	}
	return true
}
