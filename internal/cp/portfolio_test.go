package cp

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// buildBinPacking builds a §4.3-flavoured instance: items with weights
// packed onto bins under capacity, minimizing a weighted placement
// cost. Hard enough to keep several workers busy, small enough for the
// suite to prove optimality quickly.
func buildBinPacking(seed int64, items, bins int) (*Solver, []*IntVar, *IntVar) {
	rng := rand.New(rand.NewSource(seed))
	s := NewSolver()
	vars := make([]*IntVar, items)
	weights := make([]int, items)
	coefs := make([]int, items)
	all := make([]int, bins)
	for b := range all {
		all[b] = b
	}
	for i := range vars {
		vars[i] = s.NewEnumVar(fmt.Sprintf("item%d", i), all)
		vars[i].SetPreferred(rng.Intn(bins))
		weights[i] = 1 + rng.Intn(4)
		coefs[i] = rng.Intn(3)
	}
	capacity := make([]int, bins)
	for b := range capacity {
		capacity[b] = 4 + rng.Intn(4)
	}
	s.Post(&Packing{Name: "cap", Items: vars, Weights: weights, Capacity: capacity, UseKnapsack: true})
	maxObj := 0
	for i := range vars {
		maxObj += coefs[i] * (bins - 1)
	}
	obj := s.NewIntVar("obj", 0, maxObj)
	s.Post(weightedSum(vars, coefs, obj))
	return s, vars, obj
}

// TestPortfolioDeterministicOptimum: the optimal objective value is
// independent of the worker count and of scheduling interleavings.
func TestPortfolioDeterministicOptimum(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		want, unsat, first := -1, false, true
		for _, workers := range []int{1, 2, 4, 8} {
			s, vars, obj := buildBinPacking(seed, 8, 4)
			best, err := s.MinimizePortfolio(obj, PortfolioOptions{Workers: workers, Base: Options{Vars: vars}})
			switch {
			case errors.Is(err, ErrFailed):
				if !first && !unsat {
					t.Fatalf("seed %d workers %d: unsat, but another width found optimum %d", seed, workers, want)
				}
				unsat = true
			case err != nil:
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			case unsat:
				t.Fatalf("seed %d workers %d: found %d, but another width proved unsat", seed, workers, best.Objective)
			case first:
				want = best.Objective
			case best.Objective != want:
				t.Fatalf("seed %d workers %d: optimum %d, other widths found %d", seed, workers, best.Objective, want)
			}
			first = false
		}
	}
}

// TestPortfolioStatsAggregate: the parent solver's counters reflect
// the whole portfolio's effort.
func TestPortfolioStatsAggregate(t *testing.T) {
	s, vars, obj := buildBinPacking(3, 8, 4)
	if _, err := s.MinimizePortfolio(obj, PortfolioOptions{Workers: 4, Base: Options{Vars: vars}}); err != nil {
		t.Fatal(err)
	}
	nodes, _, solutions, props := func() (int64, int64, int64, int64) {
		n, f, so, pr := s.Stats()
		return n, f, so, pr
	}()
	if nodes == 0 || props == 0 || solutions == 0 {
		t.Fatalf("portfolio stats not merged: nodes=%d solutions=%d propagations=%d", nodes, solutions, props)
	}
}

// TestPortfolioCancel: a pre-canceled context stops the portfolio
// immediately with ErrCanceled.
func TestPortfolioCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, vars, obj := buildBinPacking(1, 8, 4)
	_, err := s.MinimizePortfolio(obj, PortfolioOptions{Workers: 4, Base: Options{Vars: vars, Ctx: ctx}})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	s2, vars2, _ := buildBinPacking(1, 8, 4)
	if _, err := s2.SolvePortfolio(PortfolioOptions{Workers: 4, Base: Options{Vars: vars2, Ctx: ctx}}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("SolvePortfolio err = %v, want ErrCanceled", err)
	}
}

// TestSequentialCancel: cancellation reaches the plain sequential
// search too (the context is polled alongside the deadline).
func TestSequentialCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, vars, _ := buildBinPacking(1, 8, 4)
	if _, err := s.Solve(Options{Vars: vars, Ctx: ctx}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestPortfolioDeadline: an expired deadline surfaces as ErrDeadline,
// matching the sequential contract.
func TestPortfolioDeadline(t *testing.T) {
	s, vars, obj := buildBinPacking(2, 8, 4)
	_, err := s.MinimizePortfolio(obj, PortfolioOptions{
		Workers: 2,
		Base:    Options{Vars: vars, Deadline: time.Now().Add(-time.Second)},
	})
	if !Stopped(err) {
		t.Fatalf("err = %v, want an interruption", err)
	}
}

// TestCloneIndependence: solving a clone leaves the original domains
// untouched, and the clone solves to the same optimum.
func TestCloneIndependence(t *testing.T) {
	s, vars, obj := buildBinPacking(5, 8, 4)
	clone, remap, err := s.Clone()
	if err != nil {
		t.Fatal(err)
	}
	cvars := make([]*IntVar, len(vars))
	for i, v := range vars {
		cvars[i] = remap(v)
	}
	before := make([]int, len(vars))
	for i, v := range vars {
		before[i] = v.Size()
	}
	if _, err := clone.Minimize(remap(obj), Options{Vars: cvars, FirstFail: true}); err != nil {
		t.Fatal(err)
	}
	for i, v := range vars {
		if v.Size() != before[i] {
			t.Fatalf("original var %d domain changed by clone's search", i)
		}
	}
}

// TestCloneRejectsUncloneable: a FuncConstraint without Rebind blocks
// cloning with a descriptive error.
func TestCloneRejectsUncloneable(t *testing.T) {
	s := NewSolver()
	v := s.NewEnumVar("v", []int{0, 1})
	s.Post(&FuncConstraint{On: []*IntVar{v}, Run: func(*Solver) error { return nil }})
	if _, _, err := s.Clone(); err == nil {
		t.Fatal("Clone accepted a FuncConstraint without Rebind")
	}
}

// TestIncumbent covers the atomic bound.
func TestIncumbent(t *testing.T) {
	b := NewIncumbent(10)
	if b.Bound() != 10 {
		t.Fatalf("bound = %d", b.Bound())
	}
	if !b.Tighten(7) || b.Bound() != 7 {
		t.Fatal("Tighten(7) should improve")
	}
	if b.Tighten(9) || b.Bound() != 7 {
		t.Fatal("Tighten(9) must not loosen")
	}
	if b.Tighten(7) {
		t.Fatal("equal value is not an improvement")
	}
}

// TestPortfolioBaseValueRandNotShared: a caller-supplied shuffle
// stream must not leak into the workers — rand.Rand is not
// goroutine-safe, so sharing it across workers would be a data race
// (this test guards the override under -race).
func TestPortfolioBaseValueRandNotShared(t *testing.T) {
	s, vars, obj := buildBinPacking(4, 8, 4)
	_, err := s.MinimizePortfolio(obj, PortfolioOptions{
		Workers: 4,
		Base:    Options{Vars: vars, ValueRand: rand.New(rand.NewSource(1))},
	})
	if err != nil && !errors.Is(err, ErrFailed) {
		t.Fatal(err)
	}
}

// TestDefaultStrategies: the lineup is diverse and deterministic.
func TestDefaultStrategies(t *testing.T) {
	sts := DefaultStrategies(6)
	if len(sts) != 6 {
		t.Fatalf("len = %d", len(sts))
	}
	if !sts[0].FirstFail || !sts[0].PreferValue {
		t.Fatal("strategy 0 must be the paper's pairing")
	}
	if sts[4].ShuffleSeed == 0 || sts[5].ShuffleSeed == 0 || sts[4].ShuffleSeed == sts[5].ShuffleSeed {
		t.Fatal("extra workers must get distinct deterministic shuffle seeds")
	}
	again := DefaultStrategies(6)
	for i := range sts {
		if sts[i] != again[i] {
			t.Fatal("lineup must be deterministic")
		}
	}
}

// TestSolvePortfolioUnsat: a complete worker proof of unsatisfiability
// settles the race with ErrFailed.
func TestSolvePortfolioUnsat(t *testing.T) {
	s := NewSolver()
	items := []*IntVar{
		s.NewEnumVar("a", []int{0, 1}),
		s.NewEnumVar("b", []int{0, 1}),
		s.NewEnumVar("c", []int{0, 1}),
	}
	s.Post(&AllDifferent{Items: items}) // 3 vars, 2 values: pigeonhole
	if _, err := s.SolvePortfolio(PortfolioOptions{Workers: 4, Base: Options{Vars: items}}); !errors.Is(err, ErrFailed) {
		t.Fatalf("err = %v, want ErrFailed", err)
	}
}

// BenchmarkMinimizePortfolioWorkers measures the cp-level scaling of
// the portfolio on a packing instance.
func BenchmarkMinimizePortfolioWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var objective int
			for i := 0; i < b.N; i++ {
				s, vars, obj := buildBinPacking(9, 10, 5)
				best, err := s.MinimizePortfolio(obj, PortfolioOptions{Workers: workers, Base: Options{Vars: vars}})
				if err != nil {
					b.Fatal(err)
				}
				objective = best.Objective
			}
			b.ReportMetric(float64(objective), "optimum")
		})
	}
}
