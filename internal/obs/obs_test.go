package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindReconfig: "reconfig", KindDebounce: "debounce", KindWake: "wake",
		KindCarve: "carve", KindSolve: "solve", KindMerge: "merge",
		KindSplice: "splice", KindAction: "action", KindMark: "mark",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
	if got := Kind(42).String(); got != "unknown" {
		t.Errorf("out-of-range kind = %q, want unknown", got)
	}
}

func TestSpanLifecycleAndCause(t *testing.T) {
	tr := NewTracer(16)

	root := tr.Start(KindReconfig, "vm-arrival", 10)
	if !root.Active() {
		t.Fatal("root span not active")
	}
	tr.SetCause(root.ID())
	if tr.Cause() != root.ID() {
		t.Fatalf("Cause() = %d, want %d", tr.Cause(), root.ID())
	}
	root.AddEvents(3)

	child := tr.Start(KindSolve, "slice", 10)
	child.SetSolve(7, 2, true)
	child.End(12)
	root.End(40)
	tr.SetCause(0)

	spans := tr.Recent(0)
	if len(spans) != 2 {
		t.Fatalf("Recent returned %d spans, want 2", len(spans))
	}
	solve, reconfig := spans[0], spans[1]
	if solve.Kind != "solve" || reconfig.Kind != "reconfig" {
		t.Fatalf("unexpected order: %s then %s", solve.Kind, reconfig.Kind)
	}
	if reconfig.Cause != reconfig.ID {
		t.Errorf("reconfig span is not its own cause: id=%d cause=%d", reconfig.ID, reconfig.Cause)
	}
	if solve.Cause != reconfig.ID {
		t.Errorf("solve span cause = %d, want %d", solve.Cause, reconfig.ID)
	}
	if solve.Cost != 7 || solve.SubSolves != 2 || !solve.Warm {
		t.Errorf("solve attributes not recorded: %+v", solve)
	}
	if reconfig.Events != 3 {
		t.Errorf("reconfig events = %d, want 3", reconfig.Events)
	}
	if reconfig.VirtDur() != 30 {
		t.Errorf("reconfig virtual duration = %g, want 30", reconfig.VirtDur())
	}
	if solve.WallSeconds < 0 {
		t.Errorf("negative wall duration %g", solve.WallSeconds)
	}

	// A span started with no live cause carries cause 0.
	orphan := tr.Start(KindSolve, "full", 50)
	orphan.End(50)
	got := tr.Recent(1)[0]
	if got.Cause != 0 {
		t.Errorf("orphan cause = %d, want 0", got.Cause)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTracer(8)
	sp := tr.Start(KindSolve, "x", 1)
	sp.End(2)
	sp.End(3) // must not publish twice
	if n := len(tr.Recent(0)); n != 1 {
		t.Fatalf("double End published %d spans, want 1", n)
	}
	if sp.Active() {
		t.Error("span still active after End")
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Mark("m", float64(i))
	}
	spans := tr.Recent(0)
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	for i, s := range spans {
		if want := uint64(7 + i); s.Seq != want {
			t.Errorf("span %d Seq = %d, want %d (oldest-first, newest retained)", i, s.Seq, want)
		}
	}
	if limited := tr.Recent(2); len(limited) != 2 || limited[1].Seq != 10 {
		t.Errorf("Recent(2) = %+v, want the 2 newest", limited)
	}
}

func TestNilTracerIsInertAndFree(t *testing.T) {
	var tr *Tracer
	if tr.Cause() != 0 || tr.WatchDrops() != 0 {
		t.Error("nil tracer reports non-zero state")
	}
	if tr.Recent(0) != nil || tr.Histograms() != nil || tr.Subscribe(1) != nil {
		t.Error("nil tracer returned non-nil collections")
	}
	tr.SetCause(7)
	tr.Mark("x", 1)
	tr.OnClose(func(SpanRecord) {})
	var sub *Subscription
	sub.Close()

	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.Start(KindSolve, "slice", 1)
		sp.AddEvents(1)
		sp.SetSolve(3, 1, true)
		sp.SetCached(true)
		sp.SetWiden(1)
		sp.SetSwitch(true)
		sp.SetOutcome("x")
		sp.End(2)
		tr.Mark("m", 2)
	})
	if allocs != 0 {
		t.Errorf("disabled tracing allocates %g times per span, want 0", allocs)
	}
}

func TestHistogramBucketsSumCount(t *testing.T) {
	h := newHistogram("x_seconds", "help", "", "", []float64{1, 10})
	for _, v := range []float64{0.5, 1, 5, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 4 {
		t.Errorf("count = %d, want 4", s.Count)
	}
	if s.Sum != 106.5 {
		t.Errorf("sum = %g, want 106.5", s.Sum)
	}
	// le=1 catches 0.5 and the boundary value 1; le=10 catches 5;
	// +Inf catches 100.
	if s.Counts[0] != 2 || s.Counts[1] != 1 || s.Counts[2] != 1 {
		t.Errorf("bucket counts = %v, want [2 1 1]", s.Counts)
	}
}

func TestPushRoutesHistograms(t *testing.T) {
	tr := NewTracer(64)

	solve := tr.Start(KindSolve, "full", 0)
	solve.End(0)

	switched := tr.Start(KindWake, "incremental", 0)
	switched.SetSwitch(true)
	switched.End(0)
	idle := tr.Start(KindWake, "incremental", 0)
	idle.End(0) // no switch: not a wake-to-switch sample

	rec := tr.Start(KindReconfig, "load-change", 10)
	rec.End(40)

	spl := tr.Start(KindSplice, "repair", 0)
	spl.End(0)

	mig := tr.Start(KindAction, "migration", 0)
	mig.End(30)
	odd := tr.Start(KindAction, "defragment", 0)
	odd.End(2)

	counts := map[string]uint64{}
	sums := map[string]float64{}
	for _, h := range tr.Histograms() {
		s := h.Snapshot()
		key := s.Name
		if s.Label != "" {
			key += "{" + s.LabelValue + "}"
		}
		counts[key] = s.Count
		sums[key] = s.Sum
	}
	if counts["cwcs_solve_duration_seconds"] != 1 {
		t.Errorf("solve samples = %d, want 1", counts["cwcs_solve_duration_seconds"])
	}
	if counts["cwcs_wake_to_switch_seconds"] != 1 {
		t.Errorf("wake-to-switch samples = %d, want 1 (idle wakes must not count)", counts["cwcs_wake_to_switch_seconds"])
	}
	if counts["cwcs_event_to_remediation_vseconds"] != 1 || sums["cwcs_event_to_remediation_vseconds"] != 30 {
		t.Errorf("remediation samples = %d sum %g, want 1 sum 30",
			counts["cwcs_event_to_remediation_vseconds"], sums["cwcs_event_to_remediation_vseconds"])
	}
	if counts["cwcs_splice_duration_seconds"] != 1 {
		t.Errorf("splice samples = %d, want 1", counts["cwcs_splice_duration_seconds"])
	}
	if counts["cwcs_action_duration_vseconds{migration}"] != 1 || sums["cwcs_action_duration_vseconds{migration}"] != 30 {
		t.Errorf("migration samples = %d sum %g, want 1 sum 30",
			counts["cwcs_action_duration_vseconds{migration}"], sums["cwcs_action_duration_vseconds{migration}"])
	}
	if counts["cwcs_action_duration_vseconds{other}"] != 1 {
		t.Errorf("unknown action kind must land in 'other', got %d samples", counts["cwcs_action_duration_vseconds{other}"])
	}
}

func TestSubscribeDeliversInOrder(t *testing.T) {
	tr := NewTracer(8)
	sub := tr.Subscribe(4)
	tr.Mark("a", 1)
	tr.Mark("b", 2)
	ev1, ev2 := <-sub.C, <-sub.C
	if ev1.Span.Name != "a" || ev2.Span.Name != "b" {
		t.Fatalf("got %q then %q, want a then b", ev1.Span.Name, ev2.Span.Name)
	}
	if ev1.Type != "span" {
		t.Errorf("event type = %q, want span", ev1.Type)
	}
	sub.Close()
	sub.Close() // idempotent
	if _, ok := <-sub.C; ok {
		t.Error("channel still open after Close")
	}
	if tr.WatchDrops() != 0 {
		t.Errorf("drops = %d, want 0", tr.WatchDrops())
	}
}

func TestSlowSubscriberDroppedNotBlocked(t *testing.T) {
	tr := NewTracer(8)
	sub := tr.Subscribe(1)
	tr.Mark("fits", 1) // fills the 1-slot buffer
	tr.Mark("over", 2) // overflows: drop + disconnect, must not block
	if tr.WatchDrops() != 1 {
		t.Fatalf("drops = %d, want 1", tr.WatchDrops())
	}
	ev, ok := <-sub.C
	if !ok || ev.Span.Name != "fits" {
		t.Fatalf("buffered event lost: %+v ok=%v", ev, ok)
	}
	if _, ok := <-sub.C; ok {
		t.Fatal("channel not closed after drop")
	}
	sub.Close() // closing an already-dropped subscription is safe

	// A healthy subscriber keeps receiving after the slow one is gone.
	healthy := tr.Subscribe(4)
	defer healthy.Close()
	tr.Mark("after", 3)
	if ev := <-healthy.C; ev.Span.Name != "after" {
		t.Fatalf("healthy subscriber got %q, want after", ev.Span.Name)
	}
}

func TestOnCloseObserver(t *testing.T) {
	tr := NewTracer(8)
	var got []SpanRecord
	tr.OnClose(func(r SpanRecord) { got = append(got, r) })
	sp := tr.Start(KindReconfig, "ev", 1)
	sp.End(5)
	tr.Mark("m", 5)
	if len(got) != 2 || got[0].Kind != "reconfig" || got[1].Kind != "mark" {
		t.Fatalf("observer saw %+v, want reconfig then mark", got)
	}
}

func TestWriteJSONLRoundTrip(t *testing.T) {
	tr := NewTracer(8)
	sp := tr.Start(KindSolve, "slice", 3)
	sp.SetSolve(42, 2, true)
	sp.SetOutcome("ok")
	sp.End(4)
	tr.Mark("switch-done", 4)
	spans := tr.Recent(0)

	var b strings.Builder
	if err := WriteJSONL(&b, spans); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	var back []SpanRecord
	for sc.Scan() {
		var r SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		back = append(back, r)
	}
	if len(back) != len(spans) {
		t.Fatalf("round-trip produced %d spans, want %d", len(back), len(spans))
	}
	for i := range back {
		back[i].kind = spans[i].kind // the enum is not serialized
		if back[i] != spans[i] {
			t.Errorf("span %d round-trip mismatch:\n got %+v\nwant %+v", i, back[i], spans[i])
		}
	}
}

func TestChromeTrace(t *testing.T) {
	tr := NewTracer(8)
	root := tr.Start(KindReconfig, "vm-arrival", 10)
	tr.SetCause(root.ID())
	sol := tr.Start(KindSolve, "full", 10)
	sol.SetSolve(5, 1, false)
	sol.End(10) // zero virtual width: must still render
	root.End(40)
	tr.SetCause(0)
	tr.Mark("switch-done", 40)

	out, err := ChromeTrace(tr.Recent(0))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  *float64       `json:"dur"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("ChromeTrace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	byName := map[string]int{}
	meta := 0
	for i, ev := range doc.TraceEvents {
		byName[ev.Name] = i
		if ev.Ph == "M" {
			meta++
		}
	}
	if meta == 0 {
		t.Error("no thread_name metadata events")
	}
	re := doc.TraceEvents[byName["reconfig:vm-arrival"]]
	if re.Ph != "X" || re.Dur == nil || *re.Dur != 30e6 || re.Ts != 10e6 {
		t.Errorf("reconfig event malformed: %+v", re)
	}
	so := doc.TraceEvents[byName["solve:full"]]
	if so.Dur == nil || *so.Dur != 1 {
		t.Errorf("zero-width solve must get a 1µs sliver, got %+v", so)
	}
	mk := doc.TraceEvents[byName["mark:switch-done"]]
	if mk.Ph != "i" {
		t.Errorf("mark phase = %q, want i (instant)", mk.Ph)
	}
}

func TestRemediationTimes(t *testing.T) {
	spans := []SpanRecord{
		{Kind: "solve", VirtStart: 0, VirtEnd: 1000}, // ignored: wrong kind
		{Kind: "reconfig", VirtStart: 105, VirtEnd: 130},
		{Kind: "reconfig", VirtStart: 240, VirtEnd: 400},
	}
	starts := []float64{100, 250, 500}
	durations := []float64{20, 50, 30}
	times, matched := RemediationTimes(spans, starts, durations)
	if len(times) != 3 {
		t.Fatalf("got %d times, want 3", len(times))
	}
	if matched != 2 {
		t.Errorf("matched = %d, want 2", matched)
	}
	// Episode 1 closes at 120 inside span [105,130]: rem = 120-105 = 15.
	if times[0] != 15 {
		t.Errorf("episode 0 remediation = %g, want 15", times[0])
	}
	// Episode 2 closes at 300 inside span [240,400]; 300-240 = 60 would
	// exceed the 50 s recovery, so it clamps.
	if times[1] != 50 {
		t.Errorf("episode 1 remediation = %g, want 50 (clamped to recovery)", times[1])
	}
	// Episode 3 has no covering span: full recovery duration.
	if times[2] != 30 {
		t.Errorf("episode 2 remediation = %g, want 30 (fallback)", times[2])
	}
	for i := range times {
		if times[i] > durations[i] {
			t.Errorf("episode %d: remediation %g exceeds recovery %g", i, times[i], durations[i])
		}
	}
}

func TestBuildInfo(t *testing.T) {
	info := BuildInfo()
	if info.Version == "" || info.GoVersion == "" {
		t.Fatalf("BuildInfo has empty fields: %+v", info)
	}
	if !strings.HasPrefix(info.GoVersion, "go") {
		t.Errorf("GoVersion = %q, want go-prefixed toolchain", info.GoVersion)
	}
}
