// Command planviz loads a cluster description from JSON, computes the
// reconfiguration the requested vjob states imply, and pretty-prints
// the optimized plan: the pools, the actions with their local and
// accumulated costs, and the resulting configuration.
//
// Input format (see examples/cluster.json emitted by -example):
//
//	{
//	  "nodes": [{"name": "n1", "cpu": 2, "memory": 4096}, ...],
//	  "vms": [{"name": "vm1", "vjob": "j1", "cpu": 1, "memory": 1024,
//	           "state": "running", "node": "n1"}, ...],
//	  "targets": {"j1": "sleeping", "j2": "running"}
//	}
//
// Nodes and VMs may additionally carry extra resource dimensions in a
// "resources" object ({"net": 1000, "disk": 600}, wire names from
// internal/resources); the optimizer then packs those dimensions too.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"cwcs/internal/core"
	"cwcs/internal/resources"
	"cwcs/internal/vjob"
)

type clusterSpec struct {
	Nodes []struct {
		Name   string `json:"name"`
		CPU    int    `json:"cpu"`
		Memory int    `json:"memory"`
		// Resources carries extra dimensions (net, disk) by wire name.
		Resources map[string]int `json:"resources"`
	} `json:"nodes"`
	VMs []struct {
		Name      string         `json:"name"`
		VJob      string         `json:"vjob"`
		CPU       int            `json:"cpu"`
		Memory    int            `json:"memory"`
		Resources map[string]int `json:"resources"`
		State     string         `json:"state"`
		Node      string         `json:"node"`
	} `json:"vms"`
	Targets map[string]string `json:"targets"`
	// Rules are optional placement constraints: {"type": "spread" |
	// "ban" | "fence" | "gather", "vms": [...], "nodes": [...]}.
	Rules []ruleSpec `json:"rules"`
}

type ruleSpec struct {
	Type  string   `json:"type"`
	VMs   []string `json:"vms"`
	Nodes []string `json:"nodes"`
}

func (r ruleSpec) compile() (core.PlacementRule, error) {
	switch r.Type {
	case "spread":
		return core.Spread{VMs: r.VMs}, nil
	case "ban":
		return core.Ban{VMs: r.VMs, Nodes: r.Nodes}, nil
	case "fence":
		return core.Fence{VMs: r.VMs, Nodes: r.Nodes}, nil
	case "gather":
		return core.Gather{VMs: r.VMs}, nil
	default:
		return nil, fmt.Errorf("unknown rule type %q", r.Type)
	}
}

const exampleSpec = `{
  "nodes": [
    {"name": "n1", "cpu": 1, "memory": 3072},
    {"name": "n2", "cpu": 1, "memory": 3072},
    {"name": "n3", "cpu": 1, "memory": 3072}
  ],
  "vms": [
    {"name": "vm1", "vjob": "j1", "cpu": 1, "memory": 2048, "state": "running", "node": "n1"},
    {"name": "vm2", "vjob": "j2", "cpu": 1, "memory": 2048, "state": "running", "node": "n2"},
    {"name": "vm3", "vjob": "j3", "cpu": 1, "memory": 1024, "state": "waiting"}
  ],
  "targets": {"j2": "sleeping", "j3": "running"}
}
`

func main() {
	timeout := flag.Duration("timeout", 5*time.Second, "optimizer time budget")
	example := flag.Bool("example", false, "print an example cluster JSON and exit")
	flag.Parse()
	if *example {
		fmt.Print(exampleSpec)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: planviz [-timeout 5s] cluster.json   (or planviz -example)")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	var spec clusterSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", flag.Arg(0), err))
	}
	cfg, targets, err := build(spec)
	if err != nil {
		fatal(err)
	}
	var rules []core.PlacementRule
	for _, r := range spec.Rules {
		rule, err := r.compile()
		if err != nil {
			fatal(err)
		}
		rules = append(rules, rule)
	}

	fmt.Println("current configuration:")
	fmt.Print(indent(cfg.String()))
	res, err := core.Optimizer{Timeout: *timeout}.Solve(core.Problem{Src: cfg, Target: targets, Rules: rules})
	if err != nil {
		fatal(err)
	}
	fmt.Println("\nreconfiguration plan:")
	fmt.Print(indent(res.Plan.String()))
	fmt.Printf("\ncost=%d lower-bound=%d optimal=%v bypass-migrations=%d\n",
		res.Cost, res.LowerBound, res.Optimal, res.Plan.Bypass)
	fmt.Println("\ndestination configuration:")
	fmt.Print(indent(res.Dst.String()))
}

func build(spec clusterSpec) (*vjob.Configuration, map[string]vjob.State, error) {
	cfg := vjob.NewConfiguration()
	for _, n := range spec.Nodes {
		cap, err := vector(fmt.Sprintf("node %s", n.Name), n.CPU, n.Memory, n.Resources)
		if err != nil {
			return nil, nil, err
		}
		cfg.AddNode(vjob.NewNodeRes(n.Name, cap))
	}
	for _, v := range spec.VMs {
		demand, err := vector(fmt.Sprintf("vm %s", v.Name), v.CPU, v.Memory, v.Resources)
		if err != nil {
			return nil, nil, err
		}
		cfg.AddVM(vjob.NewVMRes(v.Name, v.VJob, demand))
		switch v.State {
		case "running":
			if err := cfg.SetRunning(v.Name, v.Node); err != nil {
				return nil, nil, err
			}
		case "sleeping":
			if err := cfg.SetSleeping(v.Name, v.Node); err != nil {
				return nil, nil, err
			}
		case "waiting", "":
		default:
			return nil, nil, fmt.Errorf("vm %s: unknown state %q", v.Name, v.State)
		}
	}
	targets := map[string]vjob.State{}
	for job, st := range spec.Targets {
		switch st {
		case "running":
			targets[job] = vjob.Running
		case "sleeping":
			targets[job] = vjob.Sleeping
		case "terminated":
			targets[job] = vjob.Terminated
		case "waiting":
			targets[job] = vjob.Waiting
		default:
			return nil, nil, fmt.Errorf("target %s: unknown state %q", job, st)
		}
	}
	return cfg, targets, nil
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "  " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			lines = append(lines, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		lines = append(lines, cur)
	}
	return lines
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "planviz:", err)
	os.Exit(1)
}

// vector assembles a resource vector from the dedicated cpu/memory
// fields plus the extras map through resources.FromWire, the single
// home of the wire format's strictness (unknown kinds, duplicated base
// kinds and negative quantities are rejected).
func vector(what string, cpu, memory int, extras map[string]int) (resources.Vector, error) {
	v, err := resources.FromWire(cpu, memory, extras)
	if err != nil {
		return resources.Vector{}, fmt.Errorf("%s: %w", what, err)
	}
	return v, nil
}
