package workload

import (
	"math/rand"
	"testing"

	"cwcs/internal/duration"
	"cwcs/internal/sim"
	"cwcs/internal/vjob"
)

func TestNewSpecShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := NewSpec("j1", ED, A, 9, 0, rng)
	if len(s.Job.VMs) != 9 || len(s.Phases) != 9 {
		t.Fatalf("VMs = %d, phases = %d", len(s.Job.VMs), len(s.Phases))
	}
	for _, v := range s.Job.VMs {
		if v.VJob != "j1" {
			t.Fatal("VM not stamped")
		}
		okMem := false
		for _, m := range MemorySizes {
			if v.MemoryDemand() == m {
				okMem = true
			}
		}
		if !okMem {
			t.Fatalf("memory %d not in paper sizes", v.MemoryDemand())
		}
	}
	if s.TotalWork() <= 0 {
		t.Fatal("no work generated")
	}
}

func TestSpecDeterministicWithSeed(t *testing.T) {
	a := NewSpec("j", VP, B, 9, 0, rand.New(rand.NewSource(7)))
	b := NewSpec("j", VP, B, 9, 0, rand.New(rand.NewSource(7)))
	if a.TotalWork() != b.TotalWork() {
		t.Fatal("same seed, different workload")
	}
	for i := range a.Job.VMs {
		if a.Job.VMs[i].MemoryDemand() != b.Job.VMs[i].MemoryDemand() {
			t.Fatal("same seed, different memory")
		}
	}
}

func TestBenchmarkShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Every workload opens with the zero-CPU staging phase.
	// ED: staging then a single compute phase per VM.
	ed := NewSpec("ed", ED, W, 4, 0, rng)
	for _, ph := range ed.Phases {
		if len(ph) != 2 || ph[0].CPU != 0 || ph[1].CPU != 1 {
			t.Fatalf("ED phases = %+v", ph)
		}
	}
	// HC: middle VMs stage, idle, compute, idle.
	hc := NewSpec("hc", HC, W, 4, 0, rng)
	mid := hc.Phases["hc-vm01"]
	if len(mid) != 4 || mid[0].CPU != 0 || mid[1].CPU != 0 || mid[2].CPU != 1 || mid[3].CPU != 0 {
		t.Fatalf("HC middle phases = %+v", mid)
	}
	first := hc.Phases["hc-vm00"]
	if first[0].CPU != 0 || first[1].CPU != 1 {
		t.Fatalf("HC first VM should compute right after staging: %+v", first)
	}
	// VP: staging then alternating compute/exchange.
	vp := NewSpec("vp", VP, W, 4, 0, rng)
	for _, ph := range vp.Phases {
		if len(ph) != 7 {
			t.Fatalf("VP phases = %+v", ph)
		}
		for i, p := range ph[1:] {
			wantCPU := 1 - i%2
			if p.CPU != wantCPU {
				t.Fatalf("VP phase %d CPU = %d", i+1, p.CPU)
			}
		}
	}
	// MB: staging then 1-5 task phases, the first computing.
	mb := NewSpec("mb", MB, W, 4, 0, rng)
	for _, ph := range mb.Phases {
		if len(ph) < 2 || len(ph) > 6 || ph[0].CPU != 0 || ph[1].CPU != 1 {
			t.Fatalf("MB phases = %+v", ph)
		}
	}
}

func TestClassOrdering(t *testing.T) {
	if !(W.baseSeconds() < A.baseSeconds() && A.baseSeconds() < B.baseSeconds()) {
		t.Fatal("class sizes not increasing")
	}
	if W.String() != "W" || A.String() != "A" || B.String() != "B" {
		t.Fatal("class names")
	}
	for _, b := range Benchmarks {
		if b.String() == "??" {
			t.Fatal("benchmark name")
		}
	}
	if Benchmark(99).String() != "??" {
		t.Fatal("unknown benchmark name")
	}
}

func TestSuite81(t *testing.T) {
	specs := Suite81(rand.New(rand.NewSource(3)))
	if len(specs) != 81 {
		t.Fatalf("suite size = %d", len(specs))
	}
	seen9, seen18 := false, false
	for _, s := range specs {
		switch len(s.Job.VMs) {
		case 9:
			seen9 = true
		case 18:
			seen18 = true
		default:
			t.Fatalf("vjob with %d VMs", len(s.Job.VMs))
		}
	}
	if !seen9 || !seen18 {
		t.Fatal("missing 9- or 18-VM vjobs")
	}
}

func TestInstall(t *testing.T) {
	cfg := vjob.NewConfiguration()
	cfg.AddNode(vjob.NewNode("n0", 2, 8192))
	c := sim.New(cfg, duration.Default())
	s := NewSpec("j", ED, W, 2, 0, rand.New(rand.NewSource(4)))
	s.Install(cfg, c)
	for _, v := range s.Job.VMs {
		if cfg.VM(v.Name) == nil {
			t.Fatalf("%s not installed", v.Name)
		}
		if cfg.StateOf(v.Name) != vjob.Waiting {
			t.Fatal("installed VM not waiting")
		}
	}
	// Run one VM to completion to prove phases registered.
	if err := cfg.SetRunning(s.Job.VMs[0].Name, "n0"); err != nil {
		t.Fatal(err)
	}
	c.Run(10_000)
	if !c.WorkloadDone(s.Job.VMs[0].Name) {
		t.Fatal("workload did not run")
	}
}

func TestGenerateConfiguration(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := GenerateConfiguration(rng, DefaultGenerateOptions(108))
	if g.Cfg.NumNodes() != 200 {
		t.Fatalf("nodes = %d", g.Cfg.NumNodes())
	}
	if g.Cfg.NumVMs() != 108 {
		t.Fatalf("VMs = %d, want 108", g.Cfg.NumVMs())
	}
	// Memory viability is guaranteed; CPU may be over-committed.
	for _, v := range g.Cfg.Violations() {
		if v.Resource == "memory" {
			t.Fatalf("memory violation: %v", v)
		}
	}
	if len(g.Jobs) == 0 || len(g.Jobs) != len(g.Specs) {
		t.Fatalf("jobs/specs = %d/%d", len(g.Jobs), len(g.Specs))
	}
	// All three states should appear across a sample this size.
	states := map[vjob.State]bool{}
	for _, j := range g.Jobs {
		states[g.Cfg.VJobState(j)] = true
	}
	if len(states) < 2 {
		t.Fatalf("state mix too uniform: %v", states)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := GenerateConfiguration(rand.New(rand.NewSource(9)), DefaultGenerateOptions(54))
	b := GenerateConfiguration(rand.New(rand.NewSource(9)), DefaultGenerateOptions(54))
	if !a.Cfg.Equal(b.Cfg) {
		t.Fatal("same seed produced different configurations")
	}
}

func TestGenerateSmallCluster(t *testing.T) {
	// A tiny cluster cannot host everything: generation must still
	// terminate with some vjobs waiting.
	g := GenerateConfiguration(rand.New(rand.NewSource(11)), GenerateOptions{
		Nodes: 2, NodeCPU: 2, NodeMemory: 2048, VMs: 54,
	})
	if g.Cfg.NumVMs() != 54 {
		t.Fatalf("VMs = %d", g.Cfg.NumVMs())
	}
	for _, v := range g.Cfg.Violations() {
		if v.Resource == "memory" {
			t.Fatalf("memory violation: %v", v)
		}
	}
}
