package core

import (
	"testing"

	"cwcs/internal/vjob"
)

// warmProblem builds a consolidation instance with a known-good
// previous assignment: four nodes, three running VMs spread out, and
// a previous solve that had already packed them onto two nodes.
func warmProblem(t *testing.T) (Problem, *vjob.Configuration) {
	t.Helper()
	cfg := mkCluster(4, 2, 4096)
	for i, host := range []string{"n00", "n01", "n02"} {
		v := vjob.NewVM([]string{"v1", "v2", "v3"}[i], "j", 1, 1024)
		cfg.AddVM(v)
		mustRun(t, cfg, v.Name, host)
	}
	warm := cfg.Clone()
	if err := warm.SetRunning("v3", "n00"); err != nil {
		t.Fatal(err)
	}
	return Problem{Src: cfg, Target: map[string]vjob.State{}}, warm
}

func TestWarmSeedReusesPreviousAssignment(t *testing.T) {
	p, warm := warmProblem(t)
	o := Optimizer{Workers: 1, WarmStart: warm}
	c, err := o.compile(p)
	if err != nil {
		t.Fatal(err)
	}
	seed := o.warmSeed(p, c)
	if seed == nil {
		t.Fatal("viable warm assignment rejected")
	}
	if seed.Dst.HostOf("v3") != "n00" {
		t.Fatalf("warm seed placed v3 on %s", seed.Dst.HostOf("v3"))
	}
	// Only v3 moves: one migration of 1024 MiB.
	if seed.Cost != 1024 {
		t.Fatalf("warm seed cost = %d, want 1024", seed.Cost)
	}
}

func TestWarmSeedRejectsVanishedHost(t *testing.T) {
	p, _ := warmProblem(t)
	// A warm configuration whose host is not part of this cluster.
	warm := mkCluster(5, 2, 4096)
	v := vjob.NewVM("v1", "j", 1, 1024)
	warm.AddVM(v)
	mustRun(t, warm, "v1", "n04")
	o := Optimizer{WarmStart: warm}
	c, err := o.compile(p)
	if err != nil {
		t.Fatal(err)
	}
	if seed := o.warmSeed(p, c); seed != nil {
		t.Fatalf("warm seed accepted a vanished host: %+v", seed)
	}
}

func TestSolveWithWarmStartNoWorseAndConsistent(t *testing.T) {
	p, warm := warmProblem(t)
	cold, err := Optimizer{Workers: 1}.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	warmRes, err := Optimizer{Workers: 1, WarmStart: warm}.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !warmRes.Dst.Viable() {
		t.Fatal("warm-started solve produced non-viable destination")
	}
	// Both prove optimality on this tiny instance: identical costs.
	if cold.Optimal && warmRes.Optimal && warmRes.Cost != cold.Cost {
		t.Fatalf("warm cost %d != cold cost %d", warmRes.Cost, cold.Cost)
	}
}

func TestWarmStartHintsFlowIntoModel(t *testing.T) {
	p, warm := warmProblem(t)
	o := Optimizer{Workers: 1, WarmStart: warm}
	c, err := o.compile(p)
	if err != nil {
		t.Fatal(err)
	}
	m, err := o.buildModel(p, c, o.baseStrategy())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.opts.Hints) != len(c.runners) {
		t.Fatalf("hints cover %d of %d runners", len(m.opts.Hints), len(c.runners))
	}
}
