package cp

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Options tunes the search.
type Options struct {
	// Deadline stops the search when reached; zero means no deadline.
	Deadline time.Time
	// Ctx cancels the search cooperatively: the search polls it
	// alongside the deadline and returns ErrCanceled once it is done.
	// nil means no cancellation. Portfolio workers use it so the first
	// worker to prove optimality stops the rest.
	Ctx context.Context
	// Vars are the decision variables, all of which must be bound in a
	// solution. Defaults to every enumerated variable of the solver.
	Vars []*IntVar
	// FirstFail, when true (the paper's choice, §4.3), selects the
	// unbound variable with the smallest domain; ties are broken by
	// the order of Vars, so callers implement "hardest VMs first" by
	// ordering Vars by decreasing demand. When false, variables are
	// taken in Vars order.
	FirstFail bool
	// PreferValue, when true, tries each variable's Preferred() value
	// first (the paper assigns running VMs to their current node in
	// priority); remaining values are tried in ascending order.
	PreferValue bool
	// ValueRand, when non-nil, shuffles the value order at every node
	// (the preferred value keeps priority under PreferValue). Portfolio
	// workers use deterministically seeded streams for shuffled-restart
	// diversification; the stream advances across restarts, so each
	// restart explores a differently ordered tree.
	ValueRand *rand.Rand
	// SharedBound and SharedObj connect the search to a portfolio-wide
	// incumbent: at the same cadence as the deadline poll, the upper
	// bound of SharedObj is tightened to the shared bound, so every
	// worker prunes with the global best even mid-search. Both must be
	// set together.
	SharedBound *Incumbent
	SharedObj   *IntVar
	// Hints is the warm-start assignment, typically the incumbent of a
	// previous solve of a nearby problem. A hinted value is tried first
	// at branching — ahead of the Preferred value — so the search dives
	// towards the old solution before diversifying. Minimize
	// additionally injects the hinted solution outright: when every
	// decision variable carries a hint and the hinted assignment is
	// consistent, it becomes the initial incumbent and seeds the
	// branch-and-bound bound without any search.
	Hints map[*IntVar]int
}

// interrupted reports why the search must stop right now: ErrCanceled
// when the context is done, ErrDeadline past the deadline, nil
// otherwise.
func (o Options) interrupted() error {
	if o.Ctx != nil {
		select {
		case <-o.Ctx.Done():
			return fmt.Errorf("%w: %v", ErrCanceled, context.Cause(o.Ctx))
		default:
		}
	}
	if !o.Deadline.IsZero() && time.Now().After(o.Deadline) {
		return ErrDeadline
	}
	return nil
}

// Solution is an immutable assignment of the decision variables.
type Solution struct {
	values map[*IntVar]int
	// Objective is the objective value at the time the solution was
	// found (only set by Minimize).
	Objective int
}

// Value returns the solved value of v; ok is false when v was not a
// decision variable.
func (s Solution) Value(v *IntVar) (val int, ok bool) {
	val, ok = s.values[v]
	return
}

// MustValue returns the solved value of v and panics when v was not a
// decision variable (a programming error).
func (s Solution) MustValue(v *IntVar) int {
	val, ok := s.values[v]
	if !ok {
		panic("cp: variable not part of the solution: " + v.name)
	}
	return val
}

func (s *Solver) decisionVars(opts Options) []*IntVar {
	if len(opts.Vars) > 0 {
		return opts.Vars
	}
	var out []*IntVar
	for _, v := range s.vars {
		if _, ok := v.dom.(*bitsetDomain); ok {
			out = append(out, v)
		}
	}
	return out
}

// Solve searches for one solution. It returns ErrFailed when the
// problem is unsatisfiable and ErrDeadline on timeout.
func (s *Solver) Solve(opts Options) (Solution, error) {
	vars := s.decisionVars(opts)
	if err := opts.interrupted(); err != nil {
		return Solution{}, err
	}
	if err := s.propagate(); err != nil {
		return Solution{}, err
	}
	if err := s.search(vars, opts); err != nil {
		return Solution{}, err
	}
	s.solutions++
	return s.capture(vars), nil
}

// Minimize runs branch-and-bound on obj: it repeatedly searches for a
// solution, then constrains obj below the incumbent and restarts,
// until the space is exhausted (proving optimality) or the deadline
// expires or the context is canceled. It returns the best solution
// found; the error is nil when optimality was proven, ErrDeadline or
// ErrCanceled when the interruption cut the proof short, and ErrFailed
// when no solution exists at all.
func (s *Solver) Minimize(obj *IntVar, opts Options) (Solution, error) {
	vars := s.decisionVars(opts)
	best := Solution{}
	found := false
	root := s.snapshot()
	bound := obj.Max()
	// Solution injection: a consistent warm-start assignment becomes
	// the incumbent before the first search, so the branch-and-bound
	// starts from the old solution's bound instead of from scratch.
	if sol, ok := s.inject(vars, obj, opts); ok {
		best, found = sol, true
		bound = sol.Objective - 1
	}
	for {
		s.restore(root)
		if err := s.RemoveAbove(obj, bound); err != nil {
			if found {
				return best, nil
			}
			return Solution{}, ErrFailed
		}
		err := func() error {
			if err := s.propagate(); err != nil {
				return err
			}
			return s.search(vars, opts)
		}()
		switch {
		case err == nil:
			s.solutions++
			best = s.capture(vars)
			best.Objective = obj.Min()
			found = true
			bound = best.Objective - 1
		case Stopped(err):
			if found {
				return best, err
			}
			return Solution{}, err
		case errors.Is(err, ErrFailed):
			if found {
				return best, nil // optimality proven
			}
			return Solution{}, ErrFailed
		default:
			return Solution{}, err
		}
	}
}

// inject assigns every decision variable its hint and propagates. It
// returns the captured solution when the assignment is consistent and
// complete, restoring the solver state either way. Injection requires
// a hint for every decision variable: a partial warm start still
// steers the value ordering but cannot be trusted as an incumbent.
func (s *Solver) inject(vars []*IntVar, obj *IntVar, opts Options) (Solution, bool) {
	if len(opts.Hints) == 0 || len(vars) == 0 {
		return Solution{}, false
	}
	for _, v := range vars {
		if _, ok := opts.Hints[v]; !ok {
			return Solution{}, false
		}
	}
	snap := s.snapshot()
	defer s.restore(snap)
	ok := func() bool {
		if err := s.propagate(); err != nil {
			return false
		}
		for _, v := range vars {
			if err := s.Assign(v, opts.Hints[v]); err != nil {
				return false
			}
			if err := s.propagate(); err != nil {
				return false
			}
		}
		return true
	}()
	if !ok {
		return Solution{}, false
	}
	s.solutions++
	sol := s.capture(vars)
	sol.Objective = obj.Min()
	return sol, true
}

func (s *Solver) capture(vars []*IntVar) Solution {
	sol := Solution{values: make(map[*IntVar]int, len(vars))}
	for _, v := range vars {
		sol.values[v] = v.Value()
	}
	return sol
}

// search runs depth-first search until all vars are bound (nil) or the
// subtree fails (ErrFailed) or the deadline passes (ErrDeadline) or the
// context is canceled (ErrCanceled). Domains are assumed propagated to
// fixpoint on entry.
func (s *Solver) search(vars []*IntVar, opts Options) error {
	if s.nodes&63 == 0 {
		if err := opts.interrupted(); err != nil {
			return err
		}
		// Adopt the portfolio-wide incumbent: tightening the objective
		// here prunes the rest of this subtree with bounds discovered
		// by other workers. Backtracking undoes the cut, but the next
		// poll reinstates it — the shared bound only ever decreases.
		if opts.SharedBound != nil && opts.SharedObj != nil {
			if b := opts.SharedBound.Bound(); opts.SharedObj.Max() > b {
				if err := s.RemoveAbove(opts.SharedObj, b); err != nil {
					return err
				}
				if err := s.propagate(); err != nil {
					return err
				}
			}
		}
	}
	s.nodes++
	v := s.pick(vars, opts)
	if v == nil {
		return nil // all bound: solution
	}
	for _, val := range s.valueOrder(v, opts) {
		if !v.Contains(val) {
			continue // pruned by a sibling's failure propagation
		}
		snap := s.snapshot()
		err := func() error {
			if err := s.Assign(v, val); err != nil {
				return err
			}
			if err := s.propagate(); err != nil {
				return err
			}
			return s.search(vars, opts)
		}()
		if err == nil {
			return nil
		}
		if Stopped(err) {
			return err
		}
		s.fails++
		s.restore(snap)
		// The value failed: remove it at this level and re-propagate,
		// so siblings benefit from the refutation.
		if err := s.RemoveValue(v, val); err != nil {
			return err
		}
		if err := s.propagate(); err != nil {
			return err
		}
	}
	return ErrFailed
}

func (s *Solver) pick(vars []*IntVar, opts Options) *IntVar {
	var best *IntVar
	for _, v := range vars {
		if v.Bound() {
			continue
		}
		if !opts.FirstFail {
			return v
		}
		if best == nil || v.Size() < best.Size() {
			best = v
		}
	}
	return best
}

func (s *Solver) valueOrder(v *IntVar, opts Options) []int {
	vals := v.Values()
	if opts.ValueRand != nil {
		opts.ValueRand.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	}
	// Priority values: the warm-start hint first, then the preferred
	// value. Both survive shuffling — diversified restarts still dive
	// towards the old solution before exploring. Kept allocation-free
	// on the no-priority path: this runs at every search node.
	hint, hasHint := 0, false
	if h, ok := opts.Hints[v]; ok && v.Contains(h) {
		hint, hasHint = h, true
	}
	pref := -1
	if opts.PreferValue && v.pref >= 0 && v.Contains(v.pref) && (!hasHint || v.pref != hint) {
		pref = v.pref
	}
	if !hasHint && pref < 0 {
		return vals
	}
	out := make([]int, 0, len(vals))
	if hasHint {
		out = append(out, hint)
	}
	if pref >= 0 {
		out = append(out, pref)
	}
	for _, val := range vals {
		if (hasHint && val == hint) || (pref >= 0 && val == pref) {
			continue
		}
		out = append(out, val)
	}
	return out
}
