package sim

import (
	"math/rand"
	"testing"

	"cwcs/internal/plan"
)

func TestFailureStormRate(t *testing.T) {
	s := FailureStorm{Base: 0.02, Storm: 0.20, From: 100, Until: 200}
	for _, tc := range []struct {
		now  float64
		want float64
	}{
		{0, 0.02}, {99.9, 0.02}, {100, 0.20}, {199.9, 0.20}, {200, 0.02}, {500, 0.02},
	} {
		if got := s.Rate(tc.now); got != tc.want {
			t.Errorf("Rate(%.1f) = %.2f, want %.2f", tc.now, got, tc.want)
		}
	}
	// A zero-length window degenerates to the flat base rate.
	flat := FailureStorm{Base: 0.05}
	if got := flat.Rate(42); got != 0.05 {
		t.Errorf("flat Rate = %.2f, want 0.05", got)
	}
}

func TestInstallFailureStormFailsInsideWindowOnly(t *testing.T) {
	c, cfg, v := eventCluster(t)
	// Certain failure inside the window, none outside. The window is
	// placed to catch the first migration's completion instant but not
	// the second's.
	c.InstallFailureStorm(rand.New(rand.NewSource(1)), FailureStorm{Base: 0, Storm: 1, From: 1, Until: 1000})

	var errs []error
	c.StartAction(&plan.Migration{Machine: v, Src: "n1", Dst: "n2"}, func(err error) {
		if err != nil {
			errs = append(errs, err)
		}
	})
	c.Run(999)
	if len(errs) != 1 {
		t.Fatalf("in-window migration did not fail: errs = %v", errs)
	}
	if cfg.HostOf("v1") != "n1" {
		t.Fatalf("failed migration moved the VM to %s", cfg.HostOf("v1"))
	}

	// Past the window the storm hook must stop failing actions.
	errs = nil
	c.Schedule(1000, func() {
		c.StartAction(&plan.Migration{Machine: v, Src: "n1", Dst: "n2"}, func(err error) {
			if err != nil {
				errs = append(errs, err)
			}
		})
	})
	c.Run(5000)
	if len(errs) != 0 {
		t.Fatalf("post-window migration failed: %v", errs)
	}
	if cfg.HostOf("v1") != "n2" {
		t.Fatalf("post-window migration did not land: host = %s", cfg.HostOf("v1"))
	}
}
