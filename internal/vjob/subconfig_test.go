package vjob

import "testing"

// twoPartCluster builds a 4-node cluster whose left half (n1, n2) hosts
// vm1 (running) and vm2 (sleeping) and whose right half (n3, n4) hosts
// vm3; vm4 waits.
func twoPartCluster(t *testing.T) *Configuration {
	t.Helper()
	c := NewConfiguration()
	for _, n := range []string{"n1", "n2", "n3", "n4"} {
		c.AddNode(NewNode(n, 2, 4096))
	}
	for _, v := range []string{"vm1", "vm2", "vm3", "vm4"} {
		c.AddVM(NewVM(v, "j-"+v, 1, 1024))
	}
	mustRun(t, c, "vm1", "n1")
	if err := c.SetSleeping("vm2", "n2"); err != nil {
		t.Fatal(err)
	}
	mustRun(t, c, "vm3", "n3")
	return c
}

func TestExtractKeepsStatesAndPlacements(t *testing.T) {
	c := twoPartCluster(t)
	sub, err := c.Extract([]string{"n1", "n2"}, []string{"vm1", "vm2", "vm4"})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumNodes() != 2 || sub.NumVMs() != 3 {
		t.Fatalf("sub has %d nodes, %d VMs", sub.NumNodes(), sub.NumVMs())
	}
	if sub.HostOf("vm1") != "n1" || sub.StateOf("vm1") != Running {
		t.Fatalf("vm1: state %v on %q", sub.StateOf("vm1"), sub.HostOf("vm1"))
	}
	if sub.ImageHostOf("vm2") != "n2" || sub.StateOf("vm2") != Sleeping {
		t.Fatalf("vm2: state %v image %q", sub.StateOf("vm2"), sub.ImageHostOf("vm2"))
	}
	if sub.StateOf("vm4") != Waiting {
		t.Fatalf("vm4: state %v", sub.StateOf("vm4"))
	}
	// The parent is untouched and shares the VM objects.
	if c.VM("vm1") != sub.VM("vm1") {
		t.Fatal("VM objects not shared")
	}
	if c.NumVMs() != 4 {
		t.Fatal("parent mutated")
	}
}

func TestExtractRejectsCrossPartitionPlacement(t *testing.T) {
	c := twoPartCluster(t)
	if _, err := c.Extract([]string{"n1"}, []string{"vm3"}); err == nil {
		t.Fatal("extract accepted a VM hosted outside the node set")
	}
	if _, err := c.Extract([]string{"n1"}, []string{"vm2"}); err == nil {
		t.Fatal("extract accepted a VM imaged outside the node set")
	}
	if _, err := c.Extract([]string{"nope"}, nil); err == nil {
		t.Fatal("extract accepted an unknown node")
	}
	if _, err := c.Extract([]string{"n1"}, []string{"ghost"}); err == nil {
		t.Fatal("extract accepted an unknown VM")
	}
}

func TestRebaseFoldsSubOutcomeBack(t *testing.T) {
	c := twoPartCluster(t)
	src, err := c.Extract([]string{"n1", "n2"}, []string{"vm1", "vm2", "vm4"})
	if err != nil {
		t.Fatal(err)
	}
	// The partition's solve: vm1 migrates to n2, vm2 resumes on n2,
	// vm4 boots on n1.
	dst := src.Clone()
	mustRun(t, dst, "vm1", "n2")
	mustRun(t, dst, "vm2", "n2")
	mustRun(t, dst, "vm4", "n1")

	merged := c.Clone()
	if err := merged.Rebase(src, dst); err != nil {
		t.Fatal(err)
	}
	if merged.HostOf("vm1") != "n2" || merged.HostOf("vm2") != "n2" || merged.HostOf("vm4") != "n1" {
		t.Fatalf("rebase missed a placement:\n%s", merged)
	}
	// The other partition's VM is untouched.
	if merged.HostOf("vm3") != "n3" {
		t.Fatal("rebase touched a foreign VM")
	}
}

func TestRebaseRemovesTerminatedVMs(t *testing.T) {
	c := twoPartCluster(t)
	src, err := c.Extract([]string{"n1"}, []string{"vm1"})
	if err != nil {
		t.Fatal(err)
	}
	dst := src.Clone()
	dst.RemoveVM("vm1")
	merged := c.Clone()
	if err := merged.Rebase(src, dst); err != nil {
		t.Fatal(err)
	}
	if merged.VM("vm1") != nil {
		t.Fatal("terminated VM survived the rebase")
	}
	if merged.NumVMs() != 3 {
		t.Fatalf("unexpected VM count %d", merged.NumVMs())
	}
}

func TestRebaseDisjointPartitionsCommute(t *testing.T) {
	c := twoPartCluster(t)
	left, err := c.Extract([]string{"n1", "n2"}, []string{"vm1", "vm2"})
	if err != nil {
		t.Fatal(err)
	}
	right, err := c.Extract([]string{"n3", "n4"}, []string{"vm3", "vm4"})
	if err != nil {
		t.Fatal(err)
	}
	ldst := left.Clone()
	mustRun(t, ldst, "vm2", "n2")
	rdst := right.Clone()
	mustRun(t, rdst, "vm3", "n4")
	mustRun(t, rdst, "vm4", "n3")

	a := c.Clone()
	if err := a.Rebase(left, ldst); err != nil {
		t.Fatal(err)
	}
	if err := a.Rebase(right, rdst); err != nil {
		t.Fatal(err)
	}
	b := c.Clone()
	if err := b.Rebase(right, rdst); err != nil {
		t.Fatal(err)
	}
	if err := b.Rebase(left, ldst); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatalf("rebase order changed the outcome:\n%s\nvs\n%s", a, b)
	}
}
