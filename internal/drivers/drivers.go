// Package drivers executes reconfiguration plans against the simulated
// cluster, playing the role of the paper's SSH / Xen-API action
// drivers. Pools run sequentially; inside a pool every action starts in
// parallel, except the suspends and resumes, which are sorted by the
// hostname of their VMs and pipelined one second apart (§4.1): the VMs
// of a vjob pause in a fixed order within a short period while the
// bulk of the image writing still overlaps.
package drivers

import (
	"fmt"
	"sort"

	"cwcs/internal/plan"
	"cwcs/internal/sim"
)

// PipelineDelay is the delay between two pipelined suspend/resume
// starts, in seconds (the paper uses one second).
const PipelineDelay = 1.0

// Report summarizes an executed cluster-wide context switch.
type Report struct {
	// Start and End are the virtual times bounding the execution.
	Start, End float64
	// Cost is the §4.2 cost of the executed plan.
	Cost int
	// Actions counts executed actions; Pools the sequential steps.
	Actions, Pools int
	// Errs collects per-action failures (empty on success).
	Errs []error
}

// Duration returns the wall-clock (virtual) length of the switch.
func (r Report) Duration() float64 { return r.End - r.Start }

// Execute launches the plan on the cluster and calls done with a
// report when the last action of the last pool has completed. It
// returns immediately; the work happens as the simulation advances.
func Execute(c *sim.Cluster, p *plan.Plan, done func(Report)) {
	rep := Report{Start: c.Now(), Cost: p.Cost(), Actions: p.NumActions(), Pools: len(p.Pools)}
	runPool(c, p, 0, rep, done)
}

func runPool(c *sim.Cluster, p *plan.Plan, i int, rep Report, done func(Report)) {
	if i >= len(p.Pools) {
		rep.End = c.Now()
		if done != nil {
			done(rep)
		}
		return
	}
	pool := p.Pools[i]
	if len(pool) == 0 {
		runPool(c, p, i+1, rep, done)
		return
	}
	pending := len(pool)
	finish := func(err error) {
		if err != nil {
			rep.Errs = append(rep.Errs, err)
		}
		pending--
		if pending == 0 {
			runPool(c, p, i+1, rep, done)
		}
	}
	now := c.Now()
	for _, sa := range scheduleTimes(pool, now) {
		a, at := sa.action, sa.at
		c.Schedule(at, func() { c.StartAction(a, finish) })
	}
}

type scheduledAction struct {
	action plan.Action
	at     float64
}

// scheduleTimes assigns a start time to every action of a pool:
// migrations, runs and stops start immediately; suspends and resumes
// are each pipelined PipelineDelay apart, ordered by the hostname of
// the manipulated VM then the VM name.
func scheduleTimes(pool plan.Pool, now float64) []scheduledAction {
	var immediate, pipelined []plan.Action
	for _, a := range pool {
		switch a.(type) {
		case *plan.Suspend, *plan.Resume:
			pipelined = append(pipelined, a)
		default:
			immediate = append(immediate, a)
		}
	}
	sort.SliceStable(pipelined, func(i, j int) bool {
		hi, hj := hostOf(pipelined[i]), hostOf(pipelined[j])
		if hi != hj {
			return hi < hj
		}
		return pipelined[i].VM().Name < pipelined[j].VM().Name
	})
	out := make([]scheduledAction, 0, len(pool))
	for _, a := range immediate {
		out = append(out, scheduledAction{a, now})
	}
	for k, a := range pipelined {
		out = append(out, scheduledAction{a, now + float64(k)*PipelineDelay})
	}
	return out
}

func hostOf(a plan.Action) string {
	switch a := a.(type) {
	case *plan.Suspend:
		return a.On
	case *plan.Resume:
		return a.On
	default:
		return ""
	}
}

// String renders the report for logs.
func (r Report) String() string {
	return fmt.Sprintf("switch[cost=%d actions=%d pools=%d %.0fs..%.0fs errs=%d]",
		r.Cost, r.Actions, r.Pools, r.Start, r.End, len(r.Errs))
}
