// Package workload generates the synthetic vjobs used by the
// evaluation. The paper replays NAS Grid Benchmarks (ED, HC, VP, MB in
// classes W, A and B) inside vjobs of 9 or 18 VMs; the suite is not
// redistributable here, so this package produces deterministic
// synthetic equivalents preserving what the scheduler observes: gangs
// of VMs alternating full-CPU computation phases and zero-CPU
// communication phases, with per-class durations and the paper's
// memory sizes (256/512/1024/2048 MiB). It also generates the random
// 200-node configurations of the §5.1 scalability study (Figure 10).
package workload

import (
	"fmt"
	"math/rand"

	"cwcs/internal/sim"
	"cwcs/internal/vjob"
)

// Benchmark identifies the NAS Grid data-flow graph shape.
type Benchmark int

const (
	// ED (Embarrassingly Distributed): independent tasks, one long
	// compute phase per VM.
	ED Benchmark = iota
	// HC (Helical Chain): tasks execute one after the other; VM i
	// idles, computes its link, then idles again.
	HC
	// VP (Visualization Pipeline): repeated compute/communicate
	// cycles across the gang.
	VP
	// MB (Mixed Bag): heterogeneous mix of short and long tasks.
	MB
)

// Benchmarks lists all shapes, for sweeps.
var Benchmarks = []Benchmark{ED, HC, VP, MB}

// String names the benchmark as in the NGB suite.
func (b Benchmark) String() string {
	switch b {
	case ED:
		return "ED"
	case HC:
		return "HC"
	case VP:
		return "VP"
	case MB:
		return "MB"
	default:
		return "??"
	}
}

// Class is the NGB problem size.
type Class int

const (
	// W is the workstation class (shortest).
	W Class = iota
	// A is the small class.
	A
	// B is the medium class.
	B
)

// Classes lists the paper's three sizes.
var Classes = []Class{W, A, B}

// String names the class.
func (c Class) String() string { return [...]string{"W", "A", "B"}[c] }

// baseSeconds is the per-class unit of compute work.
func (c Class) baseSeconds() float64 {
	switch c {
	case W:
		return 60
	case A:
		return 180
	default:
		return 420
	}
}

// MemorySizes are the VM memory demands used throughout the paper.
var MemorySizes = []int{256, 512, 1024, 2048}

// Spec bundles a generated vjob with the workload phases of each VM.
type Spec struct {
	// Job is the vjob (VMs stamped with the vjob name).
	Job *vjob.VJob
	// Bench and Size describe the generated application.
	Bench Benchmark
	Size  Class
	// Phases maps VM names to their workload.
	Phases map[string][]sim.Phase
}

// TotalWork returns the total compute seconds across the vjob's VMs.
// Iteration follows the VM order so the floating-point sum is
// deterministic.
func (s Spec) TotalWork() float64 {
	sum := 0.0
	for _, v := range s.Job.VMs {
		for _, p := range s.Phases[v.Name] {
			if p.CPU > 0 {
				sum += p.Seconds
			}
		}
	}
	return sum
}

// Install registers the spec's VMs in the configuration (Waiting) and
// its phases in the simulator.
func (s Spec) Install(cfg *vjob.Configuration, c *sim.Cluster) {
	for _, v := range s.Job.VMs {
		cfg.AddVM(v)
	}
	for name, ph := range s.Phases {
		c.SetWorkload(name, ph)
	}
}

// NewSpec generates a vjob of nVMs machines running the given
// benchmark/class. Randomness (memory sizes, jitter) comes from rng,
// so a fixed seed reproduces the workload exactly.
func NewSpec(name string, bench Benchmark, class Class, nVMs, priority int, rng *rand.Rand) Spec {
	vms := make([]*vjob.VM, nVMs)
	phases := make(map[string][]sim.Phase, nVMs)
	base := class.baseSeconds()
	for i := range vms {
		mem := MemorySizes[rng.Intn(len(MemorySizes))]
		vmName := fmt.Sprintf("%s-vm%02d", name, i)
		vms[i] = vjob.NewVM(vmName, name, 1, mem)
		phases[vmName] = genPhases(bench, base, i, nVMs, rng)
	}
	job := vjob.NewVJob(name, priority, vms...)
	return Spec{Job: job, Bench: bench, Size: class, Phases: phases}
}

// StagingSeconds is the length of the zero-CPU staging phase that
// opens every workload: NGB tasks stage input data and set their MPI
// world up before computing. It is during such low-demand windows
// that a dynamic scheduler packs extra vjobs — and later pays with a
// suspend when every task computes at once (the paper's overloaded
// instant at 2 min 10 s).
const StagingSeconds = 25

// genPhases builds the phase list of one VM according to the
// benchmark's data-flow shape. Every list opens with the staging
// phase.
func genPhases(bench Benchmark, base float64, idx, n int, rng *rand.Rand) []sim.Phase {
	jitter := func(s float64) float64 { return s * (0.9 + 0.2*rng.Float64()) }
	staging := sim.Phase{CPU: 0, Seconds: jitter(StagingSeconds)}
	return append([]sim.Phase{staging}, bodyPhases(bench, base, idx, n, rng, jitter)...)
}

func bodyPhases(bench Benchmark, base float64, idx, n int, rng *rand.Rand, jitter func(float64) float64) []sim.Phase {
	switch bench {
	case ED:
		// One long independent computation.
		return []sim.Phase{{CPU: 1, Seconds: jitter(base)}}
	case HC:
		// The chain: wait for predecessors, compute, wait for the
		// chain to finish.
		link := base / float64(n)
		var ph []sim.Phase
		if idx > 0 {
			ph = append(ph, sim.Phase{CPU: 0, Seconds: link * float64(idx)})
		}
		ph = append(ph, sim.Phase{CPU: 1, Seconds: jitter(link)})
		if idx < n-1 {
			ph = append(ph, sim.Phase{CPU: 0, Seconds: link * float64(n-1-idx)})
		}
		return ph
	case VP:
		// Pipeline: alternate compute and exchange, three stages.
		stage := base / 3
		var ph []sim.Phase
		for s := 0; s < 3; s++ {
			ph = append(ph,
				sim.Phase{CPU: 1, Seconds: jitter(stage)},
				sim.Phase{CPU: 0, Seconds: stage / 10})
		}
		return ph
	default: // MB
		// Mixed bag: 1-3 tasks of random length.
		k := 1 + rng.Intn(3)
		var ph []sim.Phase
		for s := 0; s < k; s++ {
			ph = append(ph, sim.Phase{CPU: 1, Seconds: jitter(base / float64(k))})
			if s < k-1 {
				ph = append(ph, sim.Phase{CPU: 0, Seconds: base / 20})
			}
		}
		return ph
	}
}

// Suite81 generates the 81 vjob specs of the §5.1 trace set: every
// benchmark × class combination, repeated with different seed-derived
// variations until 81 specs exist, alternating 9- and 18-VM gangs.
func Suite81(rng *rand.Rand) []Spec {
	specs := make([]Spec, 0, 81)
	i := 0
	for len(specs) < 81 {
		bench := Benchmarks[i%len(Benchmarks)]
		class := Classes[(i/len(Benchmarks))%len(Classes)]
		n := 9
		if i%2 == 1 {
			n = 18
		}
		specs = append(specs, NewSpec(fmt.Sprintf("ngb%02d", i), bench, class, n, i, rng))
		i++
	}
	return specs
}
