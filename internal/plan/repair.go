package plan

import (
	"fmt"
	"sort"
	"strings"

	"cwcs/internal/vjob"
)

// TouchedNodes lists every node the action reads or writes resources
// on, for callers building dirty regions (e.g. the event-driven loop
// in internal/core).
func TouchedNodes(a Action) []string { return touchedNodes(a) }

// ErrBrokenDependency is returned by Repair when a kept remainder
// action depends on a dropped (or re-solved) action: dropping the
// dirty region removed a feasibility edge of §4.1 — typically a
// migration or suspend that was freeing the kept action's destination.
// Nodes and VMs carry the dependency closure of the broken chain: the
// elements that must join the dirty region so a widened re-solve can
// absorb the chain, instead of degrading to a monolithic re-solve.
//
// The closure is computed on the plan's own dependency structure:
// every kept action that is no longer feasible (or whose pool now
// introduces a violation) seeds the set, then any kept action sharing
// a node or VM with the set joins transitively — a later action of the
// same chain would lose its own feasibility argument once the seed
// leaves the remainder, so the whole chain is pulled at once and the
// widening converges in one step for simple chains.
type ErrBrokenDependency struct {
	// Nodes and VMs are the closure, in sorted order.
	Nodes, VMs []string
	// Cause is the validation failure that exposed the break.
	Cause error
}

// Error names the broken chain.
func (e *ErrBrokenDependency) Error() string {
	return fmt.Sprintf("plan: kept remainder depends on a dropped action (chain: nodes %s, vms %s): %v",
		strings.Join(e.Nodes, ","), strings.Join(e.VMs, ","), e.Cause)
}

// Unwrap exposes the underlying validation failure.
func (e *ErrBrokenDependency) Unwrap() error { return e.Cause }

// Repair splices fresh slice plans into the remainder of an executing
// plan instead of aborting it. cur is the observed configuration at a
// pool boundary (every started action has completed, successfully or
// not), remaining holds the pools that have not started, dirtyNodes
// and dirtyVMs delimit the region invalidated by failures or events —
// typically the full node/VM coverage of the re-solved slices, not
// just the failed elements — and fresh are the plans re-solved over
// exactly that region.
//
// Repair keeps every remaining action outside the dirty region (their
// feasibility argument is untouched: the fresh plans never enter their
// nodes), drops the ones inside, and merges the fresh plans in. The
// result is re-validated pool by pool against cur, so a splice can
// never violate the feasibility-edge ordering of §4.1. When dropping a
// dirty action breaks a later kept action (for instance a migration
// that waited on a dropped suspend to free its destination), Repair
// refuses with ErrBrokenDependency carrying the dependency closure of
// the broken chain; the caller widens the dirty region by the closure
// and retries with plans re-solved over the wider region. Breaks the
// closure cannot explain — a fresh plan infeasible on its own — refuse
// with a plain error: those are true infeasibilities no widening
// repairs, and the caller falls back to a full re-solve.
func Repair(cur *vjob.Configuration, remaining *Plan, dirtyNodes, dirtyVMs map[string]bool, fresh ...*Plan) (*Plan, error) {
	kept := &Plan{Src: cur}
	if remaining != nil {
		for _, pool := range remaining.Pools {
			var np Pool
			for _, a := range pool {
				if touchesDirty(a, dirtyNodes, dirtyVMs) {
					continue
				}
				np = append(np, a)
			}
			if len(np) > 0 {
				kept.Pools = append(kept.Pools, np)
			}
		}
	}
	merged, err := Merge(cur, append([]*Plan{kept}, fresh...)...)
	if err != nil {
		return nil, err
	}
	if err := merged.Validate(); err != nil {
		freshActions := make(map[Action]bool)
		for _, f := range fresh {
			for _, a := range f.Actions() {
				freshActions[a] = true
			}
		}
		nodes, vms, freshBroken := brokenClosure(merged, freshActions)
		if freshBroken || len(nodes)+len(vms) == 0 {
			return nil, fmt.Errorf("plan: repair would break feasibility: %w", err)
		}
		return nil, &ErrBrokenDependency{Nodes: nodes, VMs: vms, Cause: err}
	}
	return merged, nil
}

// touchesDirty reports whether the action manipulates a dirty VM or
// reads/writes resources on a dirty node.
func touchesDirty(a Action, nodes, vms map[string]bool) bool {
	if vms[a.VM().Name] {
		return true
	}
	for _, n := range touchedNodes(a) {
		if nodes[n] {
			return true
		}
	}
	return false
}

// brokenClosure replays the merged splice and collects the dependency
// closure of every kept action the splice broke. An action is broken
// when it is infeasible at its pool start, fails to apply, or sits in
// a pool that introduces a capacity violation on a node it touches —
// the §4.1 feasibility-edge signatures of a dropped predecessor. The
// seed then expands over the kept actions: any action sharing a node
// or VM with the set joins, until a fixpoint. freshBroken reports that
// a fresh plan's own action broke, which no widening can explain.
func brokenClosure(merged *Plan, fresh map[Action]bool) (nodes, vms []string, freshBroken bool) {
	cur := merged.Src.Clone()
	srcViol := srcOverloads(cur)
	brokenN := make(map[string]bool)
	brokenV := make(map[string]bool)
	mark := func(a Action) {
		if fresh[a] {
			freshBroken = true
			return
		}
		brokenV[a.VM().Name] = true
		for _, n := range touchedNodes(a) {
			brokenN[n] = true
		}
	}
	for _, pool := range merged.Pools {
		for _, a := range pool {
			if !a.FeasibleIn(cur) {
				mark(a)
			}
		}
		for _, a := range pool {
			if err := a.Apply(cur); err != nil {
				mark(a)
			}
		}
		for _, v := range cur.Violations() {
			if !introduced(srcViol, v) {
				continue
			}
			for _, a := range pool {
				for _, n := range touchedNodes(a) {
					if n == v.Node {
						mark(a)
						break
					}
				}
			}
		}
	}
	if freshBroken || len(brokenV)+len(brokenN) == 0 {
		return nil, nil, freshBroken
	}
	// Expand over the kept actions until the chain is closed: a kept
	// action overlapping the broken region loses its own feasibility
	// argument once the region is re-solved, so it must travel along.
	for changed := true; changed; {
		changed = false
		for _, a := range merged.Actions() {
			if fresh[a] || brokenV[a.VM().Name] {
				continue
			}
			touches := false
			for _, n := range touchedNodes(a) {
				if brokenN[n] {
					touches = true
					break
				}
			}
			if !touches {
				continue
			}
			brokenV[a.VM().Name] = true
			for _, n := range touchedNodes(a) {
				if !brokenN[n] {
					brokenN[n] = true
				}
			}
			changed = true
		}
	}
	return sortedKeys(brokenN), sortedKeys(brokenV), false
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
