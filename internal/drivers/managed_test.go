package drivers

import (
	"errors"
	"testing"

	"cwcs/internal/duration"
	"cwcs/internal/plan"
	"cwcs/internal/sim"
	"cwcs/internal/vjob"
)

// managedPlan builds two nodes with vm1 running on n00 and vm2 on n01,
// and a two-pool plan: suspend vm2 (freeing n01), then migrate vm1
// into the freed space.
func managedPlan(t *testing.T) (*sim.Cluster, *plan.Plan) {
	t.Helper()
	c := newSim(t, 2, 2, 3072)
	vm1 := vjob.NewVM("vm1", "a", 1, 2048)
	vm2 := vjob.NewVM("vm2", "b", 1, 2048)
	cfg := c.Config()
	cfg.AddVM(vm1)
	cfg.AddVM(vm2)
	if err := cfg.SetRunning("vm1", "n00"); err != nil {
		t.Fatal(err)
	}
	if err := cfg.SetRunning("vm2", "n01"); err != nil {
		t.Fatal(err)
	}
	dst := cfg.Clone()
	if err := dst.SetSleeping("vm2", "n01"); err != nil {
		t.Fatal(err)
	}
	if err := dst.SetRunning("vm1", "n01"); err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(cfg, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Pools) < 2 {
		t.Fatalf("scenario needs >= 2 pools, got:\n%s", p)
	}
	return c, p
}

func TestStartCallbacksFire(t *testing.T) {
	c, p := managedPlan(t)
	want := planDst(t, p)
	var boundaries, failures int
	var rep Report
	done := false
	e := Start(c, p, Callbacks{
		Failure:  func(plan.Action, error) { failures++ },
		PoolDone: func() { boundaries++ },
		Done:     func(r Report) { rep, done = r, true },
	})
	c.Run(100_000)
	if !done || !e.Finished() {
		t.Fatal("execution never completed")
	}
	if failures != 0 {
		t.Fatalf("failures = %d", failures)
	}
	// PoolDone fires after every pool, the last included.
	if boundaries != len(p.Pools) {
		t.Fatalf("pool boundaries = %d, want %d", boundaries, len(p.Pools))
	}
	if rep.Splices != 0 || rep.Actions != p.NumActions() {
		t.Fatalf("report = %+v", rep)
	}
	assertReaches(t, c, want)
}

func TestFailureCallbackAndReportErrs(t *testing.T) {
	// Build the sim without the invariant watcher: executing the stale
	// remainder after a failed suspend legitimately overloads n01 —
	// the very situation plan repair exists to prevent.
	cfg := vjob.NewConfiguration()
	cfg.AddNode(vjob.NewNode("n00", 2, 3072))
	cfg.AddNode(vjob.NewNode("n01", 2, 3072))
	c := sim.New(cfg, duration.Default())
	vm1 := vjob.NewVM("vm1", "a", 1, 2048)
	vm2 := vjob.NewVM("vm2", "b", 1, 2048)
	cfg.AddVM(vm1)
	cfg.AddVM(vm2)
	if err := cfg.SetRunning("vm1", "n00"); err != nil {
		t.Fatal(err)
	}
	if err := cfg.SetRunning("vm2", "n01"); err != nil {
		t.Fatal(err)
	}
	dst := cfg.Clone()
	if err := dst.SetSleeping("vm2", "n01"); err != nil {
		t.Fatal(err)
	}
	if err := dst.SetRunning("vm1", "n01"); err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(cfg, dst)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("driver lost the ssh session")
	c.FailAction = func(a plan.Action) error {
		if _, ok := a.(*plan.Suspend); ok {
			return boom
		}
		return nil
	}
	var failedAction plan.Action
	var rep Report
	Start(c, p, Callbacks{
		Failure: func(a plan.Action, err error) {
			failedAction = a
			if !errors.Is(err, boom) {
				t.Errorf("failure err = %v", err)
			}
		},
		Done: func(r Report) { rep = r },
	})
	c.Run(100_000)
	if failedAction == nil {
		t.Fatal("failure callback never fired")
	}
	if len(rep.Errs) != 1 {
		t.Fatalf("report errs = %v", rep.Errs)
	}
}

func TestSpliceReplacesRemainder(t *testing.T) {
	c, p := managedPlan(t)
	// At the first pool boundary, replace the remainder (the vm1
	// migration) with a plan that leaves vm1 alone: the suspend must
	// stand, the migration must never run.
	var e *Execution
	var rep Report
	spliced := false
	e = Start(c, p, Callbacks{
		PoolDone: func() {
			if spliced || e == nil || e.Finished() {
				return
			}
			spliced = true
			if got := e.Remaining().NumActions(); got == 0 {
				t.Fatalf("remaining plan empty at first boundary")
			}
			if err := e.Splice(&plan.Plan{}); err != nil {
				t.Fatal(err)
			}
		},
		Done: func(r Report) { rep = r },
	})
	c.Run(100_000)
	if !spliced {
		t.Fatal("boundary callback never ran")
	}
	if rep.Splices != 1 {
		t.Fatalf("report splices = %d", rep.Splices)
	}
	cfg := c.Config()
	if cfg.HostOf("vm1") != "n00" {
		t.Fatalf("spliced-out migration ran: vm1 on %s", cfg.HostOf("vm1"))
	}
	if cfg.StateOf("vm2") != vjob.Sleeping {
		t.Fatalf("suspend lost: vm2 is %v", cfg.StateOf("vm2"))
	}
	if rep.Actions != 1 {
		t.Fatalf("report actions = %d, want the executed suspend only", rep.Actions)
	}
}

func TestSpliceAfterCompletionRefused(t *testing.T) {
	c, p := managedPlan(t)
	e := Start(c, p, Callbacks{})
	c.Run(100_000)
	if !e.Finished() {
		t.Fatal("execution never completed")
	}
	if err := e.Splice(&plan.Plan{}); err == nil {
		t.Fatal("splice accepted after completion")
	}
}

func TestSpliceExtendsPlanAtFinalBoundary(t *testing.T) {
	// A splice at the LAST pool boundary may append new pools: the
	// execution picks them up instead of completing.
	c := newSim(t, 2, 2, 4096)
	vm := vjob.NewVM("vm1", "a", 1, 1024)
	cfg := c.Config()
	cfg.AddVM(vm)
	if err := cfg.SetRunning("vm1", "n00"); err != nil {
		t.Fatal(err)
	}
	first := &plan.Plan{Src: cfg, Pools: []plan.Pool{
		{&plan.Migration{Machine: vm, Src: "n00", Dst: "n01"}},
	}}
	extended := false
	var e *Execution
	var rep Report
	e = Start(c, first, Callbacks{
		PoolDone: func() {
			if extended {
				return
			}
			extended = true
			err := e.Splice(&plan.Plan{Pools: []plan.Pool{
				{&plan.Migration{Machine: vm, Src: "n01", Dst: "n00"}},
			}})
			if err != nil {
				t.Fatal(err)
			}
		},
		Done: func(r Report) { rep = r },
	})
	c.Run(100_000)
	if c.Config().HostOf("vm1") != "n00" {
		t.Fatalf("extension did not run: vm1 on %s", c.Config().HostOf("vm1"))
	}
	if rep.Actions != 2 || rep.Splices != 1 {
		t.Fatalf("report = %+v", rep)
	}
}
