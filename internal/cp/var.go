package cp

import "fmt"

// IntVar is a finite-domain integer variable owned by a Solver. All
// mutation goes through Solver methods so changes are propagated and
// undone on backtrack.
type IntVar struct {
	solver *Solver
	id     int
	name   string
	dom    domain
	// watchers are the constraints to wake when the domain changes.
	watchers []Constraint
	// pref is the value tried first during search (e.g. the node the
	// VM currently runs on); -1 when unset.
	pref int
}

// Name returns the variable name given at creation.
func (v *IntVar) Name() string { return v.name }

// Min returns the domain minimum.
func (v *IntVar) Min() int { return v.dom.min() }

// Max returns the domain maximum.
func (v *IntVar) Max() int { return v.dom.max() }

// Size returns the domain cardinality.
func (v *IntVar) Size() int { return v.dom.size() }

// Bound reports whether the domain is a singleton.
func (v *IntVar) Bound() bool { return v.dom.size() == 1 }

// Value returns the assigned value; it panics when the variable is not
// bound, which would be a solver bug.
func (v *IntVar) Value() int {
	if !v.Bound() {
		panic(fmt.Sprintf("cp: Value() on unbound variable %s", v.name))
	}
	return v.dom.min()
}

// Contains reports whether val is still in the domain.
func (v *IntVar) Contains(val int) bool { return v.dom.contains(val) }

// Values returns the remaining domain values in ascending order.
func (v *IntVar) Values() []int { return v.dom.values() }

// SetPreferred sets the value the search tries first for this
// variable. Use -1 to clear.
func (v *IntVar) SetPreferred(val int) { v.pref = val }

// Preferred returns the preferred value, or -1.
func (v *IntVar) Preferred() int { return v.pref }

// String renders the variable with its domain, for debugging.
func (v *IntVar) String() string {
	if v.Bound() {
		return fmt.Sprintf("%s=%d", v.name, v.Value())
	}
	if v.Size() <= 8 {
		return fmt.Sprintf("%s∈%v", v.name, v.Values())
	}
	return fmt.Sprintf("%s∈[%d..%d](%d)", v.name, v.Min(), v.Max(), v.Size())
}
