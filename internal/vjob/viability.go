package vjob

import (
	"fmt"

	"cwcs/internal/resources"
)

// Violation describes one node whose running VMs over-commit a
// resource, making the configuration non-viable.
type Violation struct {
	// Node is the overloaded node's name.
	Node string
	// Resource is the wire name of the over-committed dimension
	// ("cpu", "memory", "net", "disk").
	Resource string
	// Demand is the aggregated demand of the running VMs.
	Demand int
	// Capacity is the node capacity for the resource.
	Capacity int
}

// Error renders the violation; Violation satisfies the error interface
// so callers can wrap a non-viable configuration into an error chain.
func (v Violation) Error() string {
	return fmt.Sprintf("node %s overloaded on %s: demand %d > capacity %d",
		v.Node, v.Resource, v.Demand, v.Capacity)
}

// Violations returns every capacity violation of the configuration —
// any registered resource dimension on any node — in node then
// dimension order. An empty slice means the configuration is viable:
// every running VM has access to the resources it demands (Section
// 3.2 of the paper, generalized to the multi-dimensional model).
// Waiting and sleeping VMs consume nothing.
//
// The scan is a single O(nodes + VMs) pass: plan validation calls this
// after every pool, so a per-node VM rescan would dominate large
// cluster runs.
func (c *Configuration) Violations() []Violation {
	used := make(map[string]resources.Vector)
	for vm, st := range c.state {
		if st != Running {
			continue
		}
		node := c.placement[vm]
		used[node] = used[node].Add(c.vms[vm].Demand)
	}
	var out []Violation
	for _, name := range c.nodeOrder {
		n := c.nodes[name]
		u := used[name]
		for _, k := range resources.Kinds() {
			if u.Get(k) > n.Capacity.Get(k) {
				out = append(out, Violation{Node: name, Resource: k.String(), Demand: u.Get(k), Capacity: n.Capacity.Get(k)})
			}
		}
	}
	return out
}

// Viable reports whether every running VM has access to sufficient
// resources on every dimension.
func (c *Configuration) Viable() bool { return len(c.Violations()) == 0 }

// VJobState derives the state of a vjob from the states of its VMs. A
// vjob is Running (resp. Sleeping, Waiting) when all its VMs are; it is
// Terminated when none of its VMs remain. During a context switch the
// VMs of a vjob may transiently disagree; in that case the function
// returns the state of the majority-progress rule used by the paper's
// monitoring: Running if any VM runs, else Sleeping if any sleeps, else
// Waiting.
func (c *Configuration) VJobState(j *VJob) State {
	if len(j.VMs) == 0 {
		return Terminated
	}
	counts := map[State]int{}
	present := 0
	for _, v := range j.VMs {
		if c.VM(v.Name) == nil {
			continue
		}
		present++
		counts[c.StateOf(v.Name)]++
	}
	switch {
	case present == 0:
		return Terminated
	case counts[Running] == present:
		return Running
	case counts[Sleeping] == present:
		return Sleeping
	case counts[Waiting] == present:
		return Waiting
	case counts[Running] > 0:
		return Running
	case counts[Sleeping] > 0:
		return Sleeping
	default:
		return Waiting
	}
}
