GO ?= go

.PHONY: all build test race vet fmt-check bench-smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# A short benchmark pass over every suite: catches bit-rot in the
# harness without paying for full measurement runs.
bench-smoke:
	$(GO) test -run=^$$ -bench=. -benchtime=1x ./...

# The one-command gate every PR must pass.
ci: build vet fmt-check test race bench-smoke
