GO ?= go
FUZZTIME ?= 10s
BENCH_REGRESS_OUT ?= bench-regress.out

.PHONY: all build test race vet fmt-check bench-smoke fuzz-smoke cover lint bench-regress ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# A short benchmark pass over every suite: catches bit-rot in the
# harness without paying for full measurement runs.
bench-smoke:
	$(GO) test -run=^$$ -bench=. -benchtime=1x ./...

# A short run of every fuzz harness (go test -fuzz accepts one target
# per invocation). Override FUZZTIME for longer campaigns.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzConfigurationJSON -fuzztime=$(FUZZTIME) ./internal/vjob
	$(GO) test -run=^$$ -fuzz=FuzzDomainOps$$ -fuzztime=$(FUZZTIME) ./internal/cp
	$(GO) test -run=^$$ -fuzz=FuzzBoundsDomainOps -fuzztime=$(FUZZTIME) ./internal/cp
	$(GO) test -run=^$$ -fuzz=FuzzTraceDecode -fuzztime=$(FUZZTIME) ./internal/trace

# Atomic-mode coverage with per-package floors: the floors file pins a
# minimum for every load-bearing package, so a PR cannot silently strip
# tests. Regenerate floors deliberately when coverage genuinely moves.
cover:
	@$(GO) test -covermode=atomic -coverprofile=coverage.out ./... > cover.txt 2>&1 || { cat cover.txt; exit 1; }
	@cat cover.txt
	@$(GO) tool cover -func=coverage.out | tail -1
	./scripts/check_coverage.sh cover.txt scripts/coverage_floors.txt

# staticcheck when available; CI installs it and sets LINT_REQUIRED=1
# so the gate cannot be skipped there, while local builders without the
# binary are not blocked.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	elif [ -n "$$LINT_REQUIRED" ]; then \
		echo "staticcheck is required (LINT_REQUIRED set) but not installed"; exit 1; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Guard the loop/portfolio/partition hot paths against >3x ns/op
# regressions vs the committed BENCH_*.json baselines. 100 iterations
# smooth the noise; every gated benchmark is either budget-bound or
# millisecond-scale, so the run stays short.
bench-regress:
	$(GO) test -run '^$$' -bench 'BenchmarkMinimizePortfolioWorkers' -benchtime=100x ./internal/cp > $(BENCH_REGRESS_OUT)
	$(GO) test -run '^$$' -bench 'BenchmarkLoopEventIteration|BenchmarkLoopPeriodicIteration|BenchmarkLoopTracingOff|BenchmarkLoopAttributionOff|BenchmarkPartitionSplit' -benchtime=100x ./internal/core >> $(BENCH_REGRESS_OUT)
	$(GO) test -run '^$$' -bench 'BenchmarkChurnLoop|BenchmarkDrainEvacuation|BenchmarkMultiResourceSolve|BenchmarkRepairStorm|BenchmarkMigrationStudy|BenchmarkChaosStudy' -benchtime=100x ./internal/experiments >> $(BENCH_REGRESS_OUT)
	$(GO) run ./cmd/benchregress -factor 3 -bench $(BENCH_REGRESS_OUT) BENCH_ci.json BENCH_eventloop.json BENCH_drain.json BENCH_multires.json BENCH_repair.json BENCH_migration.json BENCH_chaos.json BENCH_obs.json BENCH_attrib.json

# Remove the CI gate's by-products (all three are gitignored; this
# keeps a dirty checkout tidy).
clean:
	rm -f cover.txt coverage.out $(BENCH_REGRESS_OUT)

# The one-command gate every PR must pass. `cover` runs the full test
# suite (with coverage) itself, so a separate plain `test` pass would
# only repeat it; `race` is the second, differently-instrumented run.
ci: build vet fmt-check lint race bench-smoke fuzz-smoke cover bench-regress
