package vjob

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"cwcs/internal/resources"
)

func TestJSONRoundTrip(t *testing.T) {
	c := NewConfiguration()
	c.AddNode(NewNode("n1", 2, 4096))
	c.AddNode(NewNode("n2", 2, 4096))
	c.AddVM(NewVM("a", "j1", 1, 1024))
	c.AddVM(NewVM("b", "j1", 0, 512))
	c.AddVM(NewVM("w", "j2", 1, 256))
	mustRun(t, c, "a", "n1")
	if err := c.SetSleeping("b", "n2"); err != nil {
		t.Fatal(err)
	}

	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var back Configuration
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !c.Equal(&back) {
		t.Fatalf("round trip lost state:\n%s\nvs\n%s", c, &back)
	}
	if back.VM("a").VJob != "j1" || back.VM("a").MemoryDemand() != 1024 {
		t.Fatal("VM attributes lost")
	}
	if back.StateOf("w") != Waiting {
		t.Fatal("waiting state lost")
	}
	if back.ImageHostOf("b") != "n2" {
		t.Fatal("image host lost")
	}
}

func TestJSONDeterministic(t *testing.T) {
	c := NewConfiguration()
	for _, n := range []string{"n3", "n1", "n2"} {
		c.AddNode(NewNode(n, 1, 1024))
	}
	a, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("marshalling not deterministic")
	}
	if !strings.Contains(string(a), `"n1"`) {
		t.Fatalf("json = %s", a)
	}
}

func TestJSONErrors(t *testing.T) {
	cases := []string{
		`{`, // syntax
		`{"nodes":[{"name":"n","cpu":-1,"memory":0}]}`,
		`{"vms":[{"name":"v","cpu":0,"memory":-1}]}`,
		`{"nodes":[{"name":"n","cpu":1,"memory":10}],"vms":[{"name":"v","cpu":1,"memory":1,"state":"flying"}]}`,
		`{"vms":[{"name":"v","cpu":1,"memory":1,"state":"running","node":"ghost"}]}`,
	}
	for _, tc := range cases {
		var c Configuration
		if err := json.Unmarshal([]byte(tc), &c); err == nil {
			t.Errorf("accepted %s", tc)
		}
	}
}

func TestJSONOverwritesReceiver(t *testing.T) {
	var c Configuration
	if err := json.Unmarshal([]byte(`{"nodes":[{"name":"x","cpu":1,"memory":2}]}`), &c); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(`{"nodes":[{"name":"y","cpu":1,"memory":2}]}`), &c); err != nil {
		t.Fatal(err)
	}
	if c.Node("x") != nil || c.Node("y") == nil {
		t.Fatal("receiver not reset on unmarshal")
	}
}

func TestJSONResourceVectors(t *testing.T) {
	in := `{"nodes":[{"name":"n1","cpu":2,"memory":4096,"resources":{"disk":600,"net":1000}}],` +
		`"vms":[{"name":"v1","cpu":1,"memory":512,"resources":{"net":250},"state":"running","node":"n1"}]}`
	var c Configuration
	if err := json.Unmarshal([]byte(in), &c); err != nil {
		t.Fatal(err)
	}
	if got := c.Node("n1").Capacity.Get(resources.NetBW); got != 1000 {
		t.Fatalf("node net capacity = %d", got)
	}
	if got := c.VM("v1").Demand.Get(resources.NetBW); got != 250 {
		t.Fatalf("vm net demand = %d", got)
	}
	if got := c.VM("v1").Demand.Get(resources.DiskIO); got != 0 {
		t.Fatalf("vm disk demand = %d", got)
	}
	data, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	var back Configuration
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !c.Equal(&back) || back.Node("n1").Capacity != c.Node("n1").Capacity ||
		back.VM("v1").Demand != c.VM("v1").Demand {
		t.Fatalf("round trip changed vectors:\n%s", data)
	}
}

func TestJSONZeroExtrasNormalize(t *testing.T) {
	// Explicit zero extras decode onto the 2-D fast path and re-encode
	// without a resources object at all.
	in := `{"nodes":[{"name":"n1","cpu":2,"memory":4096,"resources":{"net":0}}],"vms":[]}`
	var c Configuration
	if err := json.Unmarshal([]byte(in), &c); err != nil {
		t.Fatal(err)
	}
	if c.Node("n1").Capacity != resources.New(2, 4096) {
		t.Fatalf("capacity = %s", c.Node("n1").Capacity)
	}
	data, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("resources")) {
		t.Fatalf("zero extras survived the round trip: %s", data)
	}
}

func TestJSONResourceErrors(t *testing.T) {
	cases := []string{
		`{"nodes":[{"name":"n","cpu":1,"memory":1,"resources":{"tape":5}}]}`,   // unknown kind
		`{"nodes":[{"name":"n","cpu":1,"memory":1,"resources":{"cpu":5}}]}`,    // base kind duplicated
		`{"nodes":[{"name":"n","cpu":1,"memory":1,"resources":{"memory":5}}]}`, // base kind duplicated
		`{"nodes":[{"name":"n","cpu":1,"memory":1,"resources":{"net":-1}}]}`,   // negative extra
		`{"vms":[{"name":"v","cpu":1,"memory":1,"resources":{"disk":-2}}]}`,    // negative extra on a VM
	}
	for _, tc := range cases {
		var c Configuration
		if err := json.Unmarshal([]byte(tc), &c); err == nil {
			t.Errorf("accepted %s", tc)
		}
	}
}
