package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: cwcs/internal/core
BenchmarkLoopEventIteration    	     100	    658956 ns/op
BenchmarkLoopPeriodicIteration-8 	     100	    830462 ns/op
BenchmarkMinimizePortfolioWorkers/workers=4-8 	 100	 9513698 ns/op	15.00 optimum
PASS
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkLoopEventIteration":                 658956,
		"BenchmarkLoopPeriodicIteration":              830462,
		"BenchmarkMinimizePortfolioWorkers/workers=4": 9513698,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %v", got)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %v, want %v", k, got[k], v)
		}
	}
}

func TestMergeBaselines(t *testing.T) {
	dir := t.TempDir()
	with := filepath.Join(dir, "with.json")
	without := filepath.Join(dir, "without.json")
	if err := os.WriteFile(with, []byte(`{"note":"x","regress":{"BenchmarkA":100,"BenchmarkB":200}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(without, []byte(`{"note":"narrative only"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	base := map[string]float64{}
	if err := mergeBaselines(base, with); err != nil {
		t.Fatal(err)
	}
	if err := mergeBaselines(base, without); err != nil {
		t.Fatal(err)
	}
	if base["BenchmarkA"] != 100 || base["BenchmarkB"] != 200 || len(base) != 2 {
		t.Fatalf("baselines = %v", base)
	}
}
