// Quickstart: build a 3-node cluster, submit two virtualized jobs, ask
// the engine for a viable configuration, and print the optimized
// cluster-wide context switch that realizes it.
package main

import (
	"fmt"
	"log"

	"cwcs/internal/core"
	"cwcs/internal/vjob"
)

func main() {
	// A cluster of three uniprocessor nodes with 3 GiB for guests.
	cfg := vjob.NewConfiguration()
	for _, name := range []string{"n1", "n2", "n3"} {
		cfg.AddNode(vjob.NewNode(name, 1, 3072))
	}

	// vjob "render" is running on n1/n2; vjob "analyze" just arrived.
	render := vjob.NewVJob("render", 1,
		vjob.NewVM("render-0", "", 1, 2048),
		vjob.NewVM("render-1", "", 1, 1024))
	analyze := vjob.NewVJob("analyze", 2,
		vjob.NewVM("analyze-0", "", 1, 2048))
	for _, j := range []*vjob.VJob{render, analyze} {
		for _, v := range j.VMs {
			cfg.AddVM(v)
		}
	}
	must(cfg.SetRunning("render-0", "n1"))
	must(cfg.SetRunning("render-1", "n2"))

	fmt.Println("current configuration:")
	fmt.Print(cfg)

	// Ask the engine to run both vjobs. The optimizer finds a viable
	// destination configuration with the cheapest reconfiguration plan
	// (Table 1 costs, §4.2 aggregation).
	res, err := core.Optimizer{}.Solve(core.Problem{
		Src: cfg,
		Target: map[string]vjob.State{
			"render":  vjob.Running,
			"analyze": vjob.Running,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ncluster-wide context switch:")
	fmt.Print(res.Plan)
	fmt.Printf("\nproven optimal: %v (explored %d nodes)\n", res.Optimal, res.Nodes)
	fmt.Println("\ndestination configuration:")
	fmt.Print(res.Dst)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
