package cp

import (
	"sort"
	"testing"
)

// refDomain is the obviously-correct model the fuzzed domains are
// checked against: a plain value set.
type refDomain map[int]bool

func (r refDomain) values() []int {
	out := make([]int, 0, len(r))
	for v := range r {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func (r refDomain) removeValue(v int) {
	delete(r, v)
}

func (r refDomain) removeBelow(v int) {
	for x := range r {
		if x < v {
			delete(r, x)
		}
	}
}

func (r refDomain) removeAbove(v int) {
	for x := range r {
		if x > v {
			delete(r, x)
		}
	}
}

// checkAgainst compares every observable of the domain with the
// reference: size, min, max, contains, and ascending iteration.
func checkAgainst(t *testing.T, d domain, r refDomain, when string) {
	t.Helper()
	vals := r.values()
	if d.size() != len(vals) {
		t.Fatalf("%s: size %d, want %d", when, d.size(), len(vals))
	}
	if len(vals) == 0 {
		return // emptied: the engine fails the variable and backtracks
	}
	if d.min() != vals[0] || d.max() != vals[len(vals)-1] {
		t.Fatalf("%s: bounds [%d,%d], want [%d,%d]", when, d.min(), d.max(), vals[0], vals[len(vals)-1])
	}
	got := d.values()
	if len(got) != len(vals) {
		t.Fatalf("%s: values %v, want %v", when, got, vals)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("%s: values %v, want %v", when, got, vals)
		}
	}
	for v := -1; v <= vals[len(vals)-1]+1; v++ {
		if d.contains(v) != r[v] {
			t.Fatalf("%s: contains(%d) = %v, want %v", when, v, d.contains(v), r[v])
		}
	}
}

// FuzzDomainOps drives the bitset domain (the VM-assignment domain of
// the solver) through arbitrary remove/clone/iterate sequences and
// checks every observable against the reference set model. The byte
// stream encodes the initial domain then one operation per byte pair.
func FuzzDomainOps(f *testing.F) {
	f.Add([]byte{3, 0, 5, 9, 0x00, 0x05, 0x21, 0x03, 0x42, 0x07})
	f.Add([]byte{1, 0})
	f.Add([]byte{8, 1, 2, 3, 4, 5, 6, 7, 8, 0x61, 0x04, 0x82, 0x06, 0x00, 0x01})
	f.Add([]byte{4, 127, 64, 32, 16, 0x83, 0x00, 0x03, 0x40})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		k := int(data[0])%16 + 1
		if len(data) < 1+k {
			return
		}
		init := make([]int, 0, k)
		ref := refDomain{}
		for _, b := range data[1 : 1+k] {
			v := int(b) % 128
			init = append(init, v)
			ref[v] = true
		}
		d := newBitsetDomain(init)
		checkAgainst(t, d, ref, "after init")

		ops := data[1+k:]
		for i := 0; i+1 < len(ops) && len(ref) > 0; i += 2 {
			op, arg := ops[i]%4, int(ops[i+1])%130-1 // probe outside [0,128) too
			switch op {
			case 0:
				changed := d.removeValue(arg)
				if changed != ref[arg] {
					t.Fatalf("removeValue(%d) reported %v, reference had %v", arg, changed, ref[arg])
				}
				ref.removeValue(arg)
			case 1:
				d.removeBelow(arg)
				ref.removeBelow(arg)
			case 2:
				d.removeAbove(arg)
				ref.removeAbove(arg)
			case 3:
				// Clone independence: mutating the clone must not leak
				// into the original (backtracking depends on it).
				cl := d.clone()
				cl.removeValue(cl.min())
				checkAgainst(t, d, ref, "after clone mutation")
				continue
			}
			checkAgainst(t, d, ref, "after op")
		}
	})
}

// FuzzBoundsDomainOps drives the bounds-only domain (objective
// variables) through bound tightenings, mirroring the restrictions the
// engine honors: interior removal is forbidden by contract, so only
// bound removals and removeBelow/removeAbove are exercised.
func FuzzBoundsDomainOps(f *testing.F) {
	f.Add([]byte{0x00, 0x10, 0x21, 0x30, 0x12, 0x01})
	f.Add([]byte{0x05, 0x7f})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := &boundsDomain{lo: 0, hi: 127}
		ref := refDomain{}
		for v := 0; v <= 127; v++ {
			ref[v] = true
		}
		for i := 0; i+1 < len(data) && len(ref) > 0; i += 2 {
			op, arg := data[i]%3, int(data[i+1])%130-1
			switch op {
			case 0:
				d.removeBelow(arg)
				ref.removeBelow(arg)
			case 1:
				d.removeAbove(arg)
				ref.removeAbove(arg)
			case 2:
				// Bound removal only (interior removal panics by
				// design).
				v := d.min()
				if arg%2 == 0 {
					v = d.max()
				}
				d.removeValue(v)
				ref.removeValue(v)
			}
			checkAgainst(t, d, ref, "after op")
		}
	})
}
