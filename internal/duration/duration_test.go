package duration

import (
	"errors"
	"testing"
	"time"

	"cwcs/internal/plan"
	"cwcs/internal/vjob"
)

func TestConstantsMatchPaper(t *testing.T) {
	m := Default()
	// Booting a VM takes around 6 seconds; a clean shutdown ~25 s.
	if m.Boot() != 6*time.Second {
		t.Fatalf("boot = %v", m.Boot())
	}
	if m.Shutdown() != 25*time.Second {
		t.Fatalf("shutdown = %v", m.Shutdown())
	}
	// Migrating a 2 GiB VM takes up to ~26 seconds.
	if d := m.Migrate(2048); d < 20*time.Second || d > 30*time.Second {
		t.Fatalf("migrate(2048) = %v, want ~26s", d)
	}
	// Resuming a 2 GiB VM remotely takes up to ~3 minutes.
	if d := m.Resume(2048, SCP); d < 2*time.Minute || d > 4*time.Minute {
		t.Fatalf("remote resume(2048) = %v, want ~3min", d)
	}
}

func TestLinearInMemory(t *testing.T) {
	m := Default()
	sizes := []int{512, 1024, 2048}
	for _, f := range []func(int) time.Duration{
		m.Migrate,
		func(mem int) time.Duration { return m.Suspend(mem, Local) },
		func(mem int) time.Duration { return m.Resume(mem, Local) },
	} {
		d1, d2, d3 := f(sizes[0]), f(sizes[1]), f(sizes[2])
		if !(d1 < d2 && d2 < d3) {
			t.Fatalf("not increasing in memory: %v %v %v", d1, d2, d3)
		}
		// Linearity: d3-d2 == 2*(d2-d1) within rounding.
		gap21 := d2 - d1
		gap32 := d3 - d2
		if diff := gap32 - 2*gap21; diff < -time.Millisecond || diff > time.Millisecond {
			t.Fatalf("not linear: gaps %v %v", gap21, gap32)
		}
	}
}

func TestRemoteRoughlyTwiceLocal(t *testing.T) {
	m := Default()
	for _, mem := range []int{512, 1024, 2048} {
		local := m.Suspend(mem, Local)
		scp := m.Suspend(mem, SCP)
		rsync := m.Suspend(mem, Rsync)
		if ratio := float64(scp) / float64(local); ratio < 1.8 || ratio > 2.2 {
			t.Fatalf("scp/local suspend ratio = %.2f", ratio)
		}
		if rsync >= scp {
			t.Fatalf("rsync (%v) should be slightly cheaper than scp (%v)", rsync, scp)
		}
		if rsync <= local {
			t.Fatal("rsync should cost more than local")
		}
	}
}

func TestDeceleration(t *testing.T) {
	m := Default()
	if m.Deceleration(Local) != 1.3 {
		t.Fatalf("local decel = %v", m.Deceleration(Local))
	}
	if m.Deceleration(SCP) != 1.5 || m.Deceleration(Rsync) != 1.5 {
		t.Fatal("remote decel != 1.5")
	}
}

func TestSuspendToRAMFasterThanDisk(t *testing.T) {
	m := Default()
	if m.SuspendToRAM() >= m.Suspend(256, Local) {
		t.Fatal("suspend-to-RAM not faster than smallest disk suspend")
	}
}

func TestActionDuration(t *testing.T) {
	m := Default()
	vm := vjob.NewVM("v", "j", 1, 1024)
	cases := []struct {
		a    plan.Action
		want time.Duration
		tr   Transfer
	}{
		{&plan.Run{Machine: vm, On: "n1"}, m.Boot(), Local},
		{&plan.Stop{Machine: vm, On: "n1"}, m.Shutdown(), Local},
		{&plan.Migration{Machine: vm, Src: "n1", Dst: "n2"}, m.Migrate(1024), Local},
		{&plan.Suspend{Machine: vm, On: "n1", To: "n1"}, m.Suspend(1024, Local), Local},
		{&plan.Suspend{Machine: vm, On: "n1", To: "n2"}, m.Suspend(1024, SCP), SCP},
		{&plan.Resume{Machine: vm, From: "n1", On: "n1"}, m.Resume(1024, Local), Local},
		{&plan.Resume{Machine: vm, From: "n1", On: "n2"}, m.Resume(1024, SCP), SCP},
	}
	for _, tc := range cases {
		d, tr, err := m.ActionDuration(tc.a)
		if err != nil {
			t.Errorf("%s: unexpected error %v", tc.a, err)
			continue
		}
		if d != tc.want || tr != tc.tr {
			t.Errorf("%s: (%v,%v), want (%v,%v)", tc.a, d, tr, tc.want, tc.tr)
		}
	}
}

func TestTransferStrings(t *testing.T) {
	for tr, want := range map[Transfer]string{
		Local: "local", SCP: "local+scp", Rsync: "local+rsync", Transfer(9): "invalid",
	} {
		if tr.String() != want {
			t.Errorf("%d.String() = %q, want %q", tr, tr.String(), want)
		}
	}
}

// TestActionDurationUnknownActionError: an unmodeled action used to
// panic the caller (and with it the daemon); it now reports a typed
// error the driver can surface as a failed action.
func TestActionDurationUnknownActionError(t *testing.T) {
	_, _, err := Default().ActionDuration(nil)
	var ue *UnknownActionError
	if !errors.As(err, &ue) {
		t.Fatalf("ActionDuration(nil) err = %v, want *UnknownActionError", err)
	}
	if ue.Error() == "" {
		t.Fatal("empty error message")
	}
	type fake struct{ plan.Action }
	if _, _, err := Default().ActionDuration(fake{}); !errors.As(err, &ue) {
		t.Fatalf("ActionDuration(fake) err = %v, want *UnknownActionError", err)
	}
}
