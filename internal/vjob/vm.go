package vjob

import "fmt"

// VM is a virtual machine. Demands are what the VM currently asks for:
// CPUDemand in processing units (1 while the embedded task computes, 0
// otherwise) and MemoryDemand in MiB. MemoryDemand also drives the cost
// of the actions that manipulate the VM (Table 1 of the paper).
type VM struct {
	// Name identifies the VM (e.g. "vjob2-vm4"). Names must be unique
	// within a configuration.
	Name string
	// VJob is the name of the virtualized job this VM belongs to, or
	// empty for a standalone VM.
	VJob string
	// CPUDemand is the current processing-unit demand.
	CPUDemand int
	// MemoryDemand is the current memory demand in MiB.
	MemoryDemand int
}

// NewVM returns a VM owned by the named vjob. It panics on negative
// demands.
func NewVM(name, job string, cpu, memory int) *VM {
	if cpu < 0 || memory < 0 {
		panic(fmt.Sprintf("vjob: VM %s with negative demand (cpu=%d, mem=%d)", name, cpu, memory))
	}
	return &VM{Name: name, VJob: job, CPUDemand: cpu, MemoryDemand: memory}
}

// String returns a compact human-readable description of the VM.
func (v *VM) String() string {
	return fmt.Sprintf("%s[cpu=%d,mem=%d]", v.Name, v.CPUDemand, v.MemoryDemand)
}
