package core

import (
	"errors"
	"testing"

	"cwcs/internal/plan"
	"cwcs/internal/vjob"
)

// fakeManaged extends fakeActuator with managed executions: pools run
// one per poolSecs of virtual time, actions on failVMs fail without
// applying, and the loop's failure/pool-boundary callbacks fire like
// the real drivers.
type fakeManaged struct {
	fakeActuator
	poolSecs float64
	failVMs  map[string]bool
	splices  int
}

type fakeExec struct {
	a          *fakeManaged
	plan       *plan.Plan
	next       int
	finished   bool
	failures   int
	start      float64
	onFailure  func(plan.Action, error)
	onPoolDone func()
	done       func(float64, int)
}

func (a *fakeManaged) ExecuteManaged(p *plan.Plan, onFailure func(plan.Action, error), onPoolDone func(), done func(duration float64, failures int)) Execution {
	a.executed = append(a.executed, p)
	e := &fakeExec{a: a, plan: p, start: a.now, onFailure: onFailure, onPoolDone: onPoolDone, done: done}
	e.runNext()
	return e
}

func (e *fakeExec) runNext() {
	if e.next >= len(e.plan.Pools) {
		e.finished = true
		e.a.Schedule(e.a.now, func() { e.done(e.a.now-e.start, e.failures) })
		return
	}
	pool := e.plan.Pools[e.next]
	e.next++
	e.a.Schedule(e.a.now+e.a.poolSecs, func() {
		for _, act := range pool {
			if e.a.failVMs[act.VM().Name] {
				e.failures++
				if e.onFailure != nil {
					e.onFailure(act, errors.New("injected failure"))
				}
				continue
			}
			if err := act.Apply(e.a.cfg); err != nil {
				e.failures++
				if e.onFailure != nil {
					e.onFailure(act, err)
				}
			}
		}
		if e.onPoolDone != nil {
			e.onPoolDone()
		}
		e.runNext()
	})
}

func (e *fakeExec) Remaining() *plan.Plan {
	return &plan.Plan{Src: e.a.cfg.Clone(), Pools: append([]plan.Pool(nil), e.plan.Pools[e.next:]...)}
}

func (e *fakeExec) Splice(np *plan.Plan) error {
	if e.finished {
		return errors.New("fake: splice after completion")
	}
	e.a.splices++
	e.plan = &plan.Plan{Src: e.plan.Src, Pools: append(e.plan.Pools[:e.next:e.next], np.Pools...)}
	return nil
}

func (e *fakeExec) Finished() bool { return e.finished }

func (e *fakeExec) Plan() *plan.Plan { return e.plan }

// decisionFunc adapts a function into a DecisionModule.
type decisionFunc func(cfg *vjob.Configuration, queue []*vjob.VJob) map[string]vjob.State

func (d decisionFunc) Decide(cfg *vjob.Configuration, queue []*vjob.VJob) map[string]vjob.State {
	return d(cfg, queue)
}

// keepAll asks nothing of the decision module: VMs keep their states,
// and the optimizer's only job is restoring viability.
var keepAll = decisionFunc(func(*vjob.Configuration, []*vjob.VJob) map[string]vjob.State {
	return map[string]vjob.State{}
})

// fencedChurnCluster builds the two-slice scenario of the event tests:
// four 1-CPU nodes, a1 running on n00 and b1 on n02, with fences
// binding {a1,a2} to {n00,n01} and {b1,b2} to {n02,n03} so the
// partitioner always carves the same two slices.
func fencedChurnCluster(t *testing.T) (*vjob.Configuration, []PlacementRule, []*vjob.VJob) {
	t.Helper()
	cfg := mkCluster(4, 1, 4096)
	ja := vjob.NewVJob("ja", 0, vjob.NewVM("a1", "ja", 1, 1024))
	jb := vjob.NewVJob("jb", 0, vjob.NewVM("b1", "jb", 1, 1024))
	cfg.AddVM(ja.VMs[0])
	cfg.AddVM(jb.VMs[0])
	mustRun(t, cfg, "a1", "n00")
	mustRun(t, cfg, "b1", "n02")
	rules := []PlacementRule{
		Fence{VMs: []string{"a1", "a2"}, Nodes: []string{"n00", "n01"}},
		Fence{VMs: []string{"b1", "b2"}, Nodes: []string{"n02", "n03"}},
	}
	return cfg, rules, []*vjob.VJob{ja, jb}
}

// arrive adds a running VM mid-simulation, the churn generator's move.
func arrive(t *testing.T, cfg *vjob.Configuration, name, job, node string) {
	t.Helper()
	cfg.AddVM(vjob.NewVM(name, job, 1, 1024))
	mustRun(t, cfg, name, node)
}

func eventLoop(cfg *vjob.Configuration, rules []PlacementRule, jobs []*vjob.VJob) (*Loop, *fakeManaged) {
	a := &fakeManaged{fakeActuator: fakeActuator{cfg: cfg}, poolSecs: 1}
	l := &Loop{
		Decision:    keepAll,
		EventDriven: true,
		Debounce:    2,
		Optimizer:   Optimizer{Partitions: 2, Workers: 1},
		Rules:       rules,
		Queue:       func() []*vjob.VJob { return jobs },
	}
	return l, a
}

func TestEventLoopSolvesOnlyDirtySlice(t *testing.T) {
	cfg, rules, jobs := fencedChurnCluster(t)
	l, a := eventLoop(cfg, rules, jobs)
	l.Start(a)
	a.run(4) // bootstrap: viable cluster, empty plan, loop idles

	// An arrival overloads n00; only slice {n00,n01} must be re-solved.
	a.Schedule(5, func() {
		arrive(t, cfg, "a2", "ja", "n00")
		l.Notify(a, Event{Kind: VMArrival, At: a.Now(), Nodes: []string{"n00"}, VMs: []string{"a2"}})
	})
	a.run(40)

	if !cfg.Viable() {
		t.Fatalf("cluster still non-viable: %v", cfg.Violations())
	}
	if cfg.HostOf("b1") != "n02" {
		t.Fatalf("clean slice was touched: b1 on %s", cfg.HostOf("b1"))
	}
	if len(l.Records) != 1 {
		t.Fatalf("switches = %d, want 1", len(l.Records))
	}
	if l.Records[0].Slices != 1 {
		t.Fatalf("switch solved %d slices, want 1", l.Records[0].Slices)
	}
	if l.Stats.FullSolves != 0 {
		t.Fatalf("incremental iteration fell back to a full solve: %+v", l.Stats)
	}
	if l.Stats.SliceSolves == 0 {
		t.Fatalf("no slice solve recorded: %+v", l.Stats)
	}

	// A later arrival on the other slice repairs it independently.
	a.Schedule(a.now+5, func() {
		arrive(t, cfg, "b2", "jb", "n02")
		l.Notify(a, Event{Kind: VMArrival, At: a.Now(), Nodes: []string{"n02"}, VMs: []string{"b2"}})
	})
	a.run(a.now + 40)
	if !cfg.Viable() {
		t.Fatalf("cluster still non-viable after second arrival: %v", cfg.Violations())
	}
	if len(l.Records) != 2 || l.Stats.FullSolves != 0 {
		t.Fatalf("records = %d, stats = %+v", len(l.Records), l.Stats)
	}
}

func TestEventLoopStormDebounces(t *testing.T) {
	cfg, rules, jobs := fencedChurnCluster(t)
	l, a := eventLoop(cfg, rules, jobs)
	l.Debounce = 5
	l.Start(a)
	a.run(2)

	// A storm of five events within the debounce window: one arrival
	// plus four load-change notifications for the same slice.
	a.Schedule(5, func() {
		arrive(t, cfg, "a2", "ja", "n00")
		l.Notify(a, Event{Kind: VMArrival, At: a.Now(), Nodes: []string{"n00"}, VMs: []string{"a2"}})
	})
	for i := 0; i < 4; i++ {
		at := 5.5 + float64(i)/10
		a.Schedule(at, func() {
			l.Notify(a, Event{Kind: LoadChange, At: a.Now(), VMs: []string{"a1"}})
		})
	}
	a.run(60)

	if !cfg.Viable() {
		t.Fatalf("cluster still non-viable: %v", cfg.Violations())
	}
	if len(l.Records) != 1 {
		t.Fatalf("five events produced %d switches, want 1", len(l.Records))
	}
	if l.Stats.Events != 5 {
		t.Fatalf("events = %d, want 5", l.Stats.Events)
	}
	if l.Stats.Coalesced < 4 {
		t.Fatalf("coalesced = %d, want the 4 follow-up events absorbed", l.Stats.Coalesced)
	}
}

func TestEventLoopDirtySetCoalescesAcrossOverlappingSlices(t *testing.T) {
	cfg, rules, jobs := fencedChurnCluster(t)
	l, a := eventLoop(cfg, rules, jobs)
	l.Start(a)
	a.run(2)

	// Three events naming overlapping elements of the same slice — the
	// new VM, its node, and its neighbour — must collapse into one
	// slice solve, not three.
	a.Schedule(5, func() {
		arrive(t, cfg, "a2", "ja", "n00")
		l.Notify(a, Event{Kind: VMArrival, At: a.Now(), VMs: []string{"a2"}})
		l.Notify(a, Event{Kind: LoadChange, At: a.Now(), VMs: []string{"a1"}})
		l.Notify(a, Event{Kind: NodeDown, At: a.Now(), Nodes: []string{"n01"}})
	})
	a.run(30)

	if !cfg.Viable() {
		t.Fatalf("cluster still non-viable: %v", cfg.Violations())
	}
	if len(l.Records) != 1 {
		t.Fatalf("switches = %d, want 1", len(l.Records))
	}
	// One slice solve for the switch, plus at most one for the
	// post-switch convergence pass.
	if l.Stats.SliceSolves > 2 {
		t.Fatalf("slice solves = %d, want coalesced <= 2", l.Stats.SliceSolves)
	}
}

func TestEventLoopFailureEventAfterPlanCompleted(t *testing.T) {
	cfg, rules, jobs := fencedChurnCluster(t)
	l, a := eventLoop(cfg, rules, jobs)
	l.Start(a)
	a.run(2)

	// No execution in flight: a stale action-failure event must not
	// attempt a repair — it schedules a debounced re-solve like any
	// other event.
	act := &plan.Migration{Machine: jobs[0].VMs[0], Src: "n00", Dst: "n01"}
	a.Schedule(5, func() {
		l.Notify(a, FailureEvent(a.Now(), act))
	})
	a.run(30)

	if l.Stats.Repairs != 0 || l.Stats.FailedRepairs != 0 {
		t.Fatalf("stale failure event triggered a repair: %+v", l.Stats)
	}
	if l.Stats.Events != 1 || l.Stats.Iterations < 2 {
		t.Fatalf("stale failure event not processed as a plain event: %+v", l.Stats)
	}
	if !cfg.Viable() {
		t.Fatalf("cluster non-viable: %v", cfg.Violations())
	}
}

func TestEventLoopStopDuringInFlightRepair(t *testing.T) {
	cfg, rules, jobs := fencedChurnCluster(t)
	l, a := eventLoop(cfg, rules, jobs)
	stub := &fakeExec{a: a, plan: &plan.Plan{Src: cfg}}
	l.exec = stub
	l.executing = true
	l.repairWanted = true
	l.dirty.add(Event{Kind: ActionFailure, VMs: []string{jobs[0].VMs[0].Name}, Nodes: []string{"n00"}})

	calls := l.Stats.SolverCalls
	l.Stop()
	l.poolBoundary(a)

	if l.Stats.SolverCalls != calls {
		t.Fatalf("repair solved after Stop: %+v", l.Stats)
	}
	if a.splices != 0 {
		t.Fatal("repair spliced after Stop")
	}
	// And the armed machinery must not wake a stopped loop either.
	l.Notify(a, Event{Kind: LoadChange, VMs: []string{"a1"}})
	a.run(100)
	if l.Stats.Iterations != 0 {
		t.Fatalf("stopped loop iterated: %+v", l.Stats)
	}
}

// crossSliceRepairCluster is the cross-slice dependency scenario: a
// monolithic-origin plan mid-execution whose pool 0 moves y from slice
// B into slice A's n00 (freeing n03) and whose pool 1 moves z into the
// freed n03. A failure in slice A requests a repair at the boundary;
// the re-solved slice A covers n00/n01, so y's migration is dropped —
// and z's kept migration then depends on an action that no longer
// exists.
func crossSliceRepairCluster(t *testing.T) (*Loop, *fakeManaged, *vjob.Configuration) {
	t.Helper()
	cfg := mkCluster(4, 1, 2048)
	ja := vjob.NewVJob("ja", 0,
		vjob.NewVM("a1", "ja", 1, 1024), vjob.NewVM("a2", "ja", 1, 1024))
	jb := vjob.NewVJob("jb", 0,
		vjob.NewVM("y", "jb", 0, 2048), vjob.NewVM("z", "jb", 0, 2048))
	for _, v := range append(ja.VMs, jb.VMs...) {
		cfg.AddVM(v)
	}
	// Slice A (n00, n01): both a-VMs on n00 — a CPU violation the
	// dirty-slice solve will fix. Slice B (n02, n03): y fills n03, z
	// fills n02.
	mustRun(t, cfg, "a1", "n00")
	mustRun(t, cfg, "a2", "n00")
	mustRun(t, cfg, "y", "n03")
	mustRun(t, cfg, "z", "n02")
	rules := []PlacementRule{
		Fence{VMs: []string{"a1", "a2"}, Nodes: []string{"n00", "n01"}},
		Fence{VMs: []string{"y", "z"}, Nodes: []string{"n02", "n03"}},
	}
	l, a := eventLoop(cfg, rules, []*vjob.VJob{ja, jb})
	stub := &fakeExec{a: a, plan: &plan.Plan{Src: cfg, Pools: []plan.Pool{
		{&plan.Migration{Machine: jb.VMs[0], Src: "n03", Dst: "n00"}},
		{&plan.Migration{Machine: jb.VMs[1], Src: "n02", Dst: "n03"}},
	}}}
	l.exec = stub
	l.executing = true
	l.repairWanted = true
	l.dirty.add(Event{Kind: ActionFailure, VMs: []string{"a2"}, Nodes: []string{"n00"}})
	return l, a, cfg
}

// TestEventLoopRepairWidensOverCrossSliceDependency is the positive
// pin of the cross-slice repair fix: the broken dependency chain
// (z's kept migration stranded by dropping y's) is absorbed by
// widening the repair region instead of falling back to a monolithic
// re-solve.
func TestEventLoopRepairWidensOverCrossSliceDependency(t *testing.T) {
	l, a, cfg := crossSliceRepairCluster(t)

	l.poolBoundary(a)
	if l.Stats.Repairs != 1 || l.Stats.FailedRepairs != 0 {
		t.Fatalf("widened repair did not splice: %+v", l.Stats)
	}
	if l.Stats.WidenedRepairs != 1 || l.Stats.RepairExpansions == 0 {
		t.Fatalf("widening not recorded: %+v", l.Stats)
	}
	if l.Stats.FullSolves != 0 {
		t.Fatalf("widened repair fell back to a monolithic solve: %+v", l.Stats)
	}
	if a.splices != 1 {
		t.Fatalf("splices = %d, want 1", a.splices)
	}
	// The spliced remainder must drop the whole broken chain: neither
	// y's nor z's stale migration survives in the execution.
	for _, act := range l.exec.Plan().Actions() {
		if name := act.VM().Name; name == "y" || name == "z" {
			t.Fatalf("stale chain action survived the splice: %s", act)
		}
	}

	// The execution completes; the widened region stayed dirty, so the
	// follow-up pass converges the cluster.
	l.next(a)
	a.run(100)
	if !cfg.Viable() {
		t.Fatalf("loop never converged after the widened splice: %v", cfg.Violations())
	}
	if n := len(cfg.RunningOn("n00")); n > 1 {
		t.Fatalf("slice A still overloaded: %d VMs on n00", n)
	}
	if l.Stats.Iterations == 0 {
		t.Fatal("no follow-up pass ran")
	}
}

// TestEventLoopRepairRefusalFallsBackToFullResolve pins the
// pre-widening behavior behind RepairWiden < 0: the refusal counts a
// FailedRepair, leaves the executing plan alone, and the loop
// converges through the post-execution re-solve instead of corrupting
// the plan.
func TestEventLoopRepairRefusalFallsBackToFullResolve(t *testing.T) {
	l, a, cfg := crossSliceRepairCluster(t)
	l.RepairWiden = -1

	l.poolBoundary(a)
	if l.Stats.FailedRepairs != 1 || l.Stats.Repairs != 0 {
		t.Fatalf("refusal not counted as failed repair: %+v", l.Stats)
	}
	if l.Stats.WidenedRepairs != 0 || l.Stats.RepairExpansions != 0 {
		t.Fatalf("widening ran despite RepairWiden < 0: %+v", l.Stats)
	}
	if a.splices != 0 {
		t.Fatal("refused repair still spliced the plan")
	}

	// The execution completes as planned; the pending re-solve then
	// fixes the region in a fresh pass.
	l.next(a)
	a.run(100)
	if !cfg.Viable() {
		t.Fatalf("loop never converged after the refusal: %v", cfg.Violations())
	}
	if n := len(cfg.RunningOn("n00")); n > 1 {
		t.Fatalf("slice A still overloaded: %d VMs on n00", n)
	}
	if l.Stats.Iterations == 0 {
		t.Fatal("no follow-up pass ran")
	}
}

// TestEventLoopFallbackResolvePendingForcesFullPass pins the fallback
// contract on its own: resolvePending alone — even with an empty
// dirty-set at wake-up — must arm the post-execution wake and drive a
// full incremental pass. Before the fix, iterateIncremental cleared
// the flag and returned early when the dirty elements had vanished,
// leaving the refused region violated until an unrelated event.
func TestEventLoopFallbackResolvePendingForcesFullPass(t *testing.T) {
	l, a, cfg := crossSliceRepairCluster(t)
	l.RepairWiden = -1

	l.poolBoundary(a)
	if !l.resolvePending {
		t.Fatalf("fallback did not set resolvePending: %+v", l.Stats)
	}
	// Simulate the dirty elements being consumed elsewhere: the pending
	// flag must carry the re-solve on its own.
	l.dirty.take()
	l.next(a)
	if !l.wakeArmed {
		t.Fatal("resolvePending alone did not arm the post-execution wake")
	}
	a.run(100)
	if l.Stats.Iterations == 0 {
		t.Fatalf("pending re-solve never ran an incremental pass: %+v", l.Stats)
	}
	if l.Stats.FullSolves == 0 {
		t.Fatalf("pending re-solve with an empty dirty-set must go monolithic: %+v", l.Stats)
	}
	if !cfg.Viable() {
		t.Fatalf("pending re-solve never converged the cluster: %v", cfg.Violations())
	}
}

func TestEventLoopRepairsInFlightPlan(t *testing.T) {
	// Two arrivals dirty both slices, so the switch carries one
	// migration per slice in one pool. a2's migration fails: the loop
	// must record the failure, splice a repair at the pool boundary
	// (or fall back to a full re-solve), and converge to viability —
	// never abort with the cluster overloaded.
	cfg, rules, jobs := fencedChurnCluster(t)
	l, a := eventLoop(cfg, rules, jobs)
	a.failVMs = map[string]bool{}
	l.Start(a)
	a.run(2)

	a.Schedule(5, func() {
		arrive(t, cfg, "a2", "ja", "n00")
		arrive(t, cfg, "b2", "jb", "n02")
		a.failVMs["a2"] = true // the first attempt on a2 will fail
		l.Notify(a, Event{Kind: VMArrival, At: a.Now(), VMs: []string{"a2", "b2"}, Nodes: []string{"n00", "n02"}})
	})
	// The switch executes its single pool at t=8 (wake at 7 + 1 s per
	// pool); clear the fault right after, so the spliced retry passes.
	a.Schedule(8.5, func() { a.failVMs = map[string]bool{} })
	a.run(120)

	if !cfg.Viable() {
		t.Fatalf("cluster still non-viable: %v", cfg.Violations())
	}
	if l.Stats.Repairs == 0 {
		t.Fatalf("failure did not trigger an in-flight repair: %+v", l.Stats)
	}
	if a.splices == 0 {
		t.Fatal("repair did not splice the executing plan")
	}
	if l.Stats.FullSolves != 0 {
		t.Fatalf("repair fell back to a full solve: %+v", l.Stats)
	}
	// A repair must not discharge the dirty-set: the fixpoint
	// follow-up pass still runs once the execution completes
	// (bootstrap + event wake + >=1 post-repair pass).
	if l.Stats.Iterations < 3 {
		t.Fatalf("no follow-up pass after the repair: %+v", l.Stats)
	}
	for _, j := range jobs {
		for _, v := range j.VMs {
			if cfg.VM(v.Name) != nil && cfg.StateOf(v.Name) != vjob.Running {
				t.Fatalf("%s ended %v", v.Name, cfg.StateOf(v.Name))
			}
		}
	}
}
