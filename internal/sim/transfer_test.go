package sim

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"cwcs/internal/duration"
	"cwcs/internal/plan"
	"cwcs/internal/resources"
	"cwcs/internal/vjob"
)

// newNetSim builds a simulator whose nodes have a `net` capacity, with
// no invariant cleanup hook — transfer tests provoke NIC
// oversubscription on purpose and assert on it explicitly.
func newNetSim(t *testing.T, nodes, cpu, mem, net int) *Cluster {
	t.Helper()
	cfg := vjob.NewConfiguration()
	for i := 0; i < nodes; i++ {
		cap := resources.New(cpu, mem)
		cap.Set(resources.NetBW, net)
		cfg.AddNode(vjob.NewNodeRes(fmt.Sprintf("n%02d", i), cap))
	}
	return New(cfg, duration.Default())
}

// TestConcurrentMigrationsShareNIC is the fixed-end-time regression:
// two concurrent migrations into one 1 Gb node used to both complete
// in single-migration time (Schedule(now+d) froze the duration at
// start). Metered, each stream gets half the destination NIC and both
// take measurably longer than a lone migration.
func TestConcurrentMigrationsShareNIC(t *testing.T) {
	c := newNetSim(t, 3, 8, 16384, 1000)
	v1 := addRunning(t, c, "v1", "n00", 1, 1024)
	v2 := addRunning(t, c, "v2", "n01", 1, 1024)
	var done1, done2 float64 = -1, -1
	c.StartAction(&plan.Migration{Machine: v1, Src: "n00", Dst: "n02"}, func(err error) {
		if err != nil {
			t.Errorf("v1 migration failed: %v", err)
		}
		done1 = c.Now()
	})
	c.StartAction(&plan.Migration{Machine: v2, Src: "n01", Dst: "n02"}, func(err error) {
		if err != nil {
			t.Errorf("v2 migration failed: %v", err)
		}
		done2 = c.Now()
	})
	c.Run(1000)
	single := duration.Default().Migrate(1024).Seconds() // 15.24 s at 800 Mbit/s
	if done1 < 0 || done2 < 0 {
		t.Fatalf("migrations never completed (done1=%v done2=%v)", done1, done2)
	}
	if done1 <= single || done2 <= single {
		t.Fatalf("concurrent migrations completed in single-migration time: %v/%v vs %v",
			done1, done2, single)
	}
	// Both streams share n02's 1 Gb inbound link: 500 Mbit/s each, so
	// the 8192 Mbit image takes 5 + 8192/500 s.
	want := 5 + 1024*8/500.0
	for _, d := range []float64{done1, done2} {
		if math.Abs(d-want) > 1e-6 {
			t.Fatalf("completion at %v, want %v", d, want)
		}
	}
	if c.Config().HostOf("v1") != "n02" || c.Config().HostOf("v2") != "n02" {
		t.Fatal("VMs not moved")
	}
}

// TestSingleMigrationNominalOnFatNIC: with ample bandwidth the metered
// path reproduces the calibrated duration — the NIC only matters when
// it constrains.
func TestSingleMigrationNominalOnFatNIC(t *testing.T) {
	c := newNetSim(t, 2, 8, 16384, 10000)
	v := addRunning(t, c, "v1", "n00", 1, 1024)
	var doneAt float64 = -1
	c.StartAction(&plan.Migration{Machine: v, Src: "n00", Dst: "n01"}, func(error) { doneAt = c.Now() })
	c.Run(1000)
	want := duration.Default().Migrate(1024).Seconds()
	if math.Abs(doneAt-want) > 1e-6 {
		t.Fatalf("migration on 10 Gb NIC completed at %v, want nominal %v", doneAt, want)
	}
}

// TestNICPoorNodeSlowsMigration: a lone migration into a 100 Mbit/s
// node is admissible (clamping) but slow — the wire part stretches by
// the rate ratio.
func TestNICPoorNodeSlowsMigration(t *testing.T) {
	c := newNetSim(t, 2, 8, 16384, 100)
	v := addRunning(t, c, "v1", "n00", 1, 1024)
	var doneAt float64 = -1
	c.StartAction(&plan.Migration{Machine: v, Src: "n00", Dst: "n01"}, func(error) { doneAt = c.Now() })
	c.Run(1000)
	want := 5 + 1024*8/100.0
	if math.Abs(doneAt-want) > 1e-6 {
		t.Fatalf("migration into 100 Mbit/s node completed at %v, want %v", doneAt, want)
	}
}

// TestTransferRetimedWhenConcurrencyChanges: a second migration
// starting mid-flight slows the first (remaining time recomputed at
// the shared rate), and the second speeds back up once the first
// drains — the end time is a consequence of metered progress, not a
// value frozen at start.
func TestTransferRetimedWhenConcurrencyChanges(t *testing.T) {
	c := newNetSim(t, 3, 8, 16384, 1000)
	v1 := addRunning(t, c, "v1", "n00", 1, 1024)
	v2 := addRunning(t, c, "v2", "n01", 1, 1024)
	var done1, done2 float64 = -1, -1
	c.StartAction(&plan.Migration{Machine: v1, Src: "n00", Dst: "n02"}, func(error) { done1 = c.Now() })
	c.Schedule(10, func() {
		c.StartAction(&plan.Migration{Machine: v2, Src: "n01", Dst: "n02"}, func(error) { done2 = c.Now() })
	})
	c.Run(1000)
	// v1: 5 s fixed, then 800 Mbit/s alone until t=10 (4000 Mbit
	// done), then 500 Mbit/s shared: 4192/500 s more -> 18.384 s.
	want1 := 10 + (1024*8-4000)/500.0
	if math.Abs(done1-want1) > 1e-6 {
		t.Fatalf("v1 completed at %v, want %v", done1, want1)
	}
	// v2: fixed until t=15, shared 500 Mbit/s until v1 drains at
	// want1, then the full link (capped at the 800 nominal).
	shared := (want1 - 15) * 500
	want2 := want1 + (1024*8-shared)/800.0
	if math.Abs(done2-want2) > 1e-6 {
		t.Fatalf("v2 completed at %v, want %v", done2, want2)
	}
}

// TestWatchInvariantsCountsTransferOversubscription: executing the
// blind two-migrations-into-one-NIC schedule under the watcher records
// a transfer violation (capacity class, not structural).
func TestWatchInvariantsCountsTransferOversubscription(t *testing.T) {
	c := newNetSim(t, 3, 8, 16384, 1000)
	v1 := addRunning(t, c, "v1", "n00", 1, 1024)
	v2 := addRunning(t, c, "v2", "n01", 1, 1024)
	w := WatchInvariants(c)
	c.Run(1) // capture the baseline before the transfers start
	c.StartAction(&plan.Migration{Machine: v1, Src: "n00", Dst: "n02"}, nil)
	c.StartAction(&plan.Migration{Machine: v2, Src: "n01", Dst: "n02"}, nil)
	c.Run(1000)
	if w.StructuralCount() != 0 {
		t.Fatalf("structural breaches: %v", w.Err())
	}
	if w.Count() == 0 {
		t.Fatal("transfer-oversubscribed NIC not counted as a violation")
	}
	if err := w.Err(); err == nil || !strings.Contains(err.Error(), "transfer-oversubscribed NIC") {
		t.Fatalf("err = %v, want transfer-oversubscription", err)
	}
	// The metered demand itself: two 800 Mbit/s streams clamped into
	// one 1 Gb NIC.
	if d := c.TransferDemands(); len(d) != 0 {
		t.Fatalf("transfers still metered after completion: %v", d)
	}
}

// TestTransferDemandsAndViolations: metering arithmetic — demands are
// clamped nominal rates on both endpoints, and only nodes whose
// residual cannot absorb them are violated.
func TestTransferDemandsAndViolations(t *testing.T) {
	c := newNetSim(t, 3, 8, 16384, 1000)
	v1 := addRunning(t, c, "v1", "n00", 1, 1024)
	v2 := addRunning(t, c, "v2", "n01", 1, 1024)
	c.StartAction(&plan.Migration{Machine: v1, Src: "n00", Dst: "n02"}, nil)
	c.StartAction(&plan.Migration{Machine: v2, Src: "n01", Dst: "n02"}, nil)
	d := c.TransferDemands()
	if d["n00"] != 800 || d["n01"] != 800 || d["n02"] != 1600 {
		t.Fatalf("demands = %v, want 800/800/1600", d)
	}
	viol := c.TransferViolations()
	if len(viol) != 1 || viol[0].Node != "n02" || viol[0].Resource != "net" {
		t.Fatalf("violations = %v, want one on n02/net", viol)
	}
	if viol[0].Demand != 1600 || viol[0].Capacity != 1000 {
		t.Fatalf("violation = %+v, want demand 1600 capacity 1000", viol[0])
	}
}

// fakeAction is a plan.Action the duration model does not know.
type fakeAction struct{ m *vjob.VM }

func (f *fakeAction) VM() *vjob.VM                        { return f.m }
func (f *fakeAction) Cost() int                           { return 0 }
func (f *fakeAction) FeasibleIn(*vjob.Configuration) bool { return true }
func (f *fakeAction) Apply(*vjob.Configuration) error     { return nil }
func (f *fakeAction) String() string                      { return "fake(" + f.m.Name + ")" }

// TestUnknownActionFailsInsteadOfPanicking: an unmodeled action used
// to panic the simulator (duration.go's ActionDuration); it now fails
// through the normal done callback with a typed error and leaves the
// configuration untouched.
func TestUnknownActionFailsInsteadOfPanicking(t *testing.T) {
	c := newSim(t, 2, 2, 4096)
	v := addRunning(t, c, "v1", "n00", 1, 1024)
	var got error
	fired := false
	c.StartAction(&fakeAction{m: v}, func(err error) {
		fired = true
		got = err
	})
	c.Run(10)
	if !fired {
		t.Fatal("done callback never fired")
	}
	var ue *duration.UnknownActionError
	if !errors.As(got, &ue) {
		t.Fatalf("err = %v, want *duration.UnknownActionError", got)
	}
	if c.Config().HostOf("v1") != "n00" {
		t.Fatal("configuration mutated by unmodeled action")
	}
	if n := c.ActionCounts()["unknown"]; n != 0 {
		t.Fatalf("unmodeled action counted as run: %d", n)
	}
}

// TestZeroNetClusterKeepsLegacyTiming: without `net` capacities no
// transfer is metered — the Schedule(now+d) path runs and timings are
// byte-identical to the calibrated model (the compile-away guarantee
// the legacy goldens rely on).
func TestZeroNetClusterKeepsLegacyTiming(t *testing.T) {
	c := newSim(t, 3, 8, 16384)
	v1 := addRunning(t, c, "v1", "n00", 1, 1024)
	v2 := addRunning(t, c, "v2", "n01", 1, 1024)
	var done1, done2 float64 = -1, -1
	c.StartAction(&plan.Migration{Machine: v1, Src: "n00", Dst: "n02"}, func(error) { done1 = c.Now() })
	c.StartAction(&plan.Migration{Machine: v2, Src: "n01", Dst: "n02"}, func(error) { done2 = c.Now() })
	c.Run(1000)
	want := duration.Default().Migrate(1024).Seconds()
	if done1 != want || done2 != want {
		t.Fatalf("2-D timings deviate: %v/%v, want exactly %v", done1, done2, want)
	}
	if len(c.TransferDemands()) != 0 {
		t.Fatal("2-D cluster metered a transfer")
	}
}
