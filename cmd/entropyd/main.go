// Command entropyd runs the full Entropy control loop against a
// simulated cluster: it generates a cluster and a vjob workload,
// starts the observe/decide/plan/execute loop with the dynamic
// consolidation decision module, and streams every cluster-wide
// context switch plus periodic utilization lines until the workload
// completes.
package main

import (
	"context"
	"flag"
	"fmt"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"cwcs/internal/core"
	"cwcs/internal/drivers"
	"cwcs/internal/duration"
	"cwcs/internal/monitor"
	"cwcs/internal/sched"
	"cwcs/internal/sim"
	"cwcs/internal/vjob"
	"cwcs/internal/workload"

	"math/rand"
)

func main() {
	nodes := flag.Int("nodes", 11, "working nodes")
	cpu := flag.Int("cpu", 2, "processing units per node")
	memory := flag.Int("memory", 3584, "MiB per node")
	njobs := flag.Int("vjobs", 8, "number of vjobs")
	nvms := flag.Int("vms", 9, "VMs per vjob")
	interval := flag.Float64("interval", 30, "loop interval (virtual seconds)")
	eventDriven := flag.Bool("event-driven", false, "react to cluster events instead of the fixed period: re-solve only the dirty slices, repair plans on action failure")
	debounce := flag.Float64("debounce", 5, "event settle delay before an incremental iteration (virtual seconds)")
	timeout := flag.Duration("timeout", 2*time.Second, "optimizer budget per iteration")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel portfolio workers per optimization (1 = sequential)")
	partitions := flag.Int("partitions", 0, "cluster partitions solved concurrently (0 = auto, 1 = monolithic)")
	seed := flag.Int64("seed", 42, "workload seed")
	horizon := flag.Float64("horizon", 100_000, "simulation cut-off (virtual seconds)")
	flag.Parse()

	// SIGINT/SIGTERM cancel the in-flight optimization and stop the
	// loop at the next iteration instead of killing the run mid-plan.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	rng := rand.New(rand.NewSource(*seed))
	cfg := vjob.NewConfiguration()
	for i := 0; i < *nodes; i++ {
		cfg.AddNode(vjob.NewNode(fmt.Sprintf("node%02d", i), *cpu, *memory))
	}
	c := sim.New(cfg, duration.Default())

	jobs := make([]*vjob.VJob, *njobs)
	for i := range jobs {
		spec := workload.NewSpec(fmt.Sprintf("vjob%d", i+1),
			workload.Benchmarks[i%len(workload.Benchmarks)],
			workload.Classes[1+i%2], *nvms, i, rng)
		spec.Install(cfg, c)
		jobs[i] = spec.Job
		fmt.Printf("submitted %s: %s class %s, %d VMs, %.0f s of work\n",
			spec.Job.Name, spec.Bench, spec.Size, len(spec.Job.VMs), spec.TotalWork())
	}

	loop := &core.Loop{
		Decision:    reaper{inner: sched.Consolidation{}, c: c, jobs: jobs},
		Ctx:         ctx,
		Optimizer:   core.Optimizer{Timeout: *timeout, Workers: *workers, Partitions: *partitions},
		Interval:    *interval,
		EventDriven: *eventDriven,
		Debounce:    *debounce,
		Queue:       func() []*vjob.VJob { return jobs },
		Done: func() bool {
			// Stop once every vjob finished AND its VMs were stopped.
			for _, j := range jobs {
				if !c.VJobDone(j) {
					return false
				}
				for _, v := range j.VMs {
					if cfg.VM(v.Name) != nil {
						return false
					}
				}
			}
			return true
		},
		OnSwitch: func(r core.SwitchRecord) {
			fmt.Println(switchLine(r))
		},
	}

	var tick func()
	tick = func() {
		s := monitor.Observe(c.Now(), cfg)
		fmt.Printf("[t=%7.0f] cpu %d/%d (%.0f%%), mem %.1f GiB, VMs run/sleep/wait %d/%d/%d\n",
			s.T, s.UsedCPU, s.CapCPU, s.CPUPercent(), s.MemGiB(), s.Running, s.Sleeping, s.Waiting)
		done := true
		for _, j := range jobs {
			if !c.VJobDone(j) {
				done = false
				break
			}
		}
		if !done {
			c.Schedule(c.Now()+60, tick)
		}
	}
	tick()

	act := &drivers.Actuator{C: c}
	if *eventDriven {
		// Monitoring feeds the loop: every observable load change
		// (phase shift, workload completion) becomes an event.
		c.OnLoadChange(func(vm string) {
			loop.Notify(act, core.Event{Kind: core.LoadChange, At: c.Now(), VMs: []string{vm}})
		})
	}
	loop.Start(act)
	c.Run(*horizon)

	fmt.Printf("\nworkload complete at t=%.0f s (%.1f min); %d context switches, mean duration %.0f s\n",
		c.Now(), c.Now()/60, len(loop.Records), meanDuration(loop.Records))
	if *eventDriven {
		s := loop.Stats
		fmt.Printf("event loop: %d events (%d coalesced), %d slice solves, %d full solves, %d repairs\n",
			s.Events, s.Coalesced, s.SliceSolves, s.FullSolves, s.Repairs)
	}
	local, remote := c.TransferCounts()
	fmt.Printf("actions: %v; transfers: %d local, %d remote\n", c.ActionCounts(), local, remote)
	if s := errorSummary(act.Reports); s != "" {
		fmt.Print(s)
	}
}

// switchLine renders one context-switch record, surfacing action
// failures instead of silently dropping them.
func switchLine(r core.SwitchRecord) string {
	line := fmt.Sprintf("[t=%7.0f] context switch: cost=%d actions=%d pools=%d duration=%.0fs",
		r.At, r.Cost, r.Actions, r.Pools, r.Duration)
	if r.Failures > 0 {
		line += fmt.Sprintf(" FAILURES=%d", r.Failures)
	}
	return line
}

// errorSummary aggregates the per-action failures of every executed
// switch; it returns "" when everything succeeded.
func errorSummary(reports []drivers.Report) string {
	var b strings.Builder
	total := 0
	for _, rep := range reports {
		for _, err := range rep.Errs {
			total++
			fmt.Fprintf(&b, "  [t=%7.0f..%.0f] %v\n", rep.Start, rep.End, err)
		}
	}
	if total == 0 {
		return ""
	}
	return fmt.Sprintf("action failures: %d\n%s", total, b.String())
}

func meanDuration(recs []core.SwitchRecord) float64 {
	if len(recs) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range recs {
		sum += r.Duration
	}
	return sum / float64(len(recs))
}

// reaper terminates vjobs whose application finished, mirroring the
// paper's "the application signals Entropy to stop its vjob".
type reaper struct {
	inner core.DecisionModule
	c     *sim.Cluster
	jobs  []*vjob.VJob
}

func (r reaper) Decide(cfg *vjob.Configuration, queue []*vjob.VJob) map[string]vjob.State {
	var live []*vjob.VJob
	for _, j := range queue {
		if !r.c.VJobDone(j) {
			live = append(live, j)
		}
	}
	target := r.inner.Decide(cfg, live)
	for _, j := range r.jobs {
		if !r.c.VJobDone(j) {
			continue
		}
		present, allRunning := false, true
		for _, v := range j.VMs {
			if cfg.VM(v.Name) == nil {
				continue
			}
			present = true
			if cfg.StateOf(v.Name) != vjob.Running {
				allRunning = false
			}
		}
		if present && allRunning {
			target[j.Name] = vjob.Terminated
		} else if present {
			target[j.Name] = vjob.Running
		}
	}
	return target
}
