package workload

import (
	"math/rand"
	"testing"

	"cwcs/internal/resources"
)

func TestProfileNamesAndDemands(t *testing.T) {
	if len(Profiles) != 3 {
		t.Fatalf("Profiles = %v", Profiles)
	}
	if ComputeBound.String() != "compute-bound" || NetBound.String() != "net-bound" || DiskBound.String() != "disk-bound" {
		t.Fatal("profile names drifted")
	}
	if !ComputeBound.ExtraDemand().IsZero() {
		t.Fatalf("compute-bound extras = %s", ComputeBound.ExtraDemand())
	}
	net := NetBound.ExtraDemand()
	if net.Get(resources.NetBW) != NetBoundBandwidth || net.Get(resources.DiskIO) != NetBoundDisk {
		t.Fatalf("net-bound extras = %s", net)
	}
	if net.Get(resources.CPU) != 0 || net.Get(resources.Memory) != 0 {
		t.Fatalf("profile touched base dimensions: %s", net)
	}
	disk := DiskBound.ExtraDemand()
	if disk.Get(resources.DiskIO) != DiskBoundThroughput || disk.Get(resources.NetBW) != DiskBoundBandwidth {
		t.Fatalf("disk-bound extras = %s", disk)
	}
}

func TestNewSpecProfile(t *testing.T) {
	rngA := rand.New(rand.NewSource(7))
	rngB := rand.New(rand.NewSource(7))
	plain := NewSpec("j", ED, A, 4, 0, rngA)
	netty := NewSpecProfile("j", ED, A, NetBound, 4, 0, rngB)
	for i, v := range netty.Job.VMs {
		if v.Demand.Get(resources.NetBW) != NetBoundBandwidth {
			t.Fatalf("VM %d net demand = %d", i, v.Demand.Get(resources.NetBW))
		}
		// Same rng consumption: base dimensions match the plain spec.
		if v.MemoryDemand() != plain.Job.VMs[i].MemoryDemand() || v.CPUDemand() != plain.Job.VMs[i].CPUDemand() {
			t.Fatalf("profile perturbed the base workload at VM %d", i)
		}
	}
	// ComputeBound.Apply is a no-op.
	before := plain.Job.VMs[0].Demand
	ComputeBound.Apply(plain.Job)
	if plain.Job.VMs[0].Demand != before {
		t.Fatal("compute-bound Apply mutated demands")
	}
}

func TestGenerateHeterogeneous(t *testing.T) {
	opts := DefaultGenerateOptions(180)
	opts.NodeNet = DefaultNodeNet
	opts.NodeDisk = DefaultNodeDisk
	opts.NetFraction = 0.4
	opts.DiskFraction = 0.3
	g := GenerateConfiguration(rand.New(rand.NewSource(3)), opts)
	n := g.Cfg.Nodes()[0]
	if n.Capacity.Get(resources.NetBW) != DefaultNodeNet || n.Capacity.Get(resources.DiskIO) != DefaultNodeDisk {
		t.Fatalf("node capacity = %s", n.Capacity)
	}
	netVMs, diskVMs := 0, 0
	for _, v := range g.Cfg.VMs() {
		if v.Demand.Get(resources.NetBW) >= NetBoundBandwidth {
			netVMs++
		}
		if v.Demand.Get(resources.DiskIO) >= DiskBoundThroughput {
			diskVMs++
		}
	}
	if netVMs == 0 || diskVMs == 0 {
		t.Fatalf("no bound vjobs generated: net=%d disk=%d", netVMs, diskVMs)
	}

	// Zero fractions keep the generator on the paper's 2-D model: no
	// extra demands, no extra node capacity (and no profile rng draws,
	// so published seeds keep reproducing — the workload_test goldens
	// pin the stream itself).
	legacy := GenerateConfiguration(rand.New(rand.NewSource(3)), DefaultGenerateOptions(180))
	for _, v := range legacy.Cfg.VMs() {
		if v.Demand.HasExtra() {
			t.Fatalf("2-D generation grew extras: %s", v.Demand)
		}
	}
	if legacy.Cfg.Nodes()[0].Capacity.HasExtra() {
		t.Fatal("2-D generation grew node extras")
	}
}

func TestGenerateNICPoorMix(t *testing.T) {
	opts := DefaultGenerateOptions(90)
	opts.NodeNet = DefaultNodeNet
	opts.NICPoorFraction = 0.25
	opts.NICPoorNet = 100
	g := GenerateConfiguration(rand.New(rand.NewSource(7)), opts)
	poor, rich := 0, 0
	for _, n := range g.Cfg.Nodes() {
		switch n.Capacity.Get(resources.NetBW) {
		case 100:
			poor++
		case DefaultNodeNet:
			rich++
		default:
			t.Fatalf("node %s has unexpected NIC %d", n.Name, n.Capacity.Get(resources.NetBW))
		}
	}
	if rich+poor != opts.Nodes {
		t.Fatalf("rich+poor = %d, want %d", rich+poor, opts.Nodes)
	}
	// ~25% of 200 nodes; a wide tolerance keeps the test seed-robust.
	if poor < 20 || poor > 80 {
		t.Fatalf("poor nodes = %d, want roughly 50", poor)
	}

	// A zero fraction must not consume rng: the stream (and thus the
	// whole configuration) stays byte-identical to a generator that
	// predates the option.
	a := GenerateConfiguration(rand.New(rand.NewSource(7)), DefaultGenerateOptions(90))
	zeroed := DefaultGenerateOptions(90)
	zeroed.NICPoorNet = 100 // ignored without a fraction
	b := GenerateConfiguration(rand.New(rand.NewSource(7)), zeroed)
	if !a.Cfg.Equal(b.Cfg) {
		t.Fatal("NICPoorFraction=0 perturbed the rng stream")
	}
}
