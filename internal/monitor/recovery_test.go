package monitor

import (
	"testing"

	"cwcs/internal/duration"
	"cwcs/internal/sim"
	"cwcs/internal/vjob"
)

func TestRecoveryLogQuantile(t *testing.T) {
	tests := []struct {
		name      string
		durations []float64
		q, want   float64
	}{
		{"empty", nil, 0.5, 0},
		{"single", []float64{7}, 0.5, 7},
		{"single max", []float64{7}, 1, 7},
		{"median of five", []float64{5, 1, 3, 2, 4}, 0.5, 3},
		{"p95 of twenty", seq(20), 0.95, 19},
		{"max of twenty", seq(20), 1, 20},
		{"clamp low", seq(20), -1, 1},
		{"clamp high", seq(20), 2, 20},
		{"p0 is min", seq(20), 0, 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			l := RecoveryLog{Durations: tc.durations}
			if got := l.Quantile(tc.q); got != tc.want {
				t.Fatalf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
			}
		})
	}
}

func seq(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(n - i) // descending: Quantile must sort
	}
	return out
}

func TestRecoveryLogCloseAt(t *testing.T) {
	l := RecoveryLog{}
	l.CloseAt(10) // no open episode: no-op
	if len(l.Durations) != 0 {
		t.Fatalf("durations = %v after closing nothing", l.Durations)
	}
	l.Open, l.OpenSince = true, 40
	l.CloseAt(100)
	if l.Open || len(l.Durations) != 1 || l.Durations[0] != 60 {
		t.Fatalf("log = %+v, want one 60s episode", l)
	}
	if l.Max() != 60 || l.Episodes() != 1 {
		t.Fatalf("Max/Episodes = %v/%d", l.Max(), l.Episodes())
	}
}

// TestWatchRecovery drives a cluster into violation twice and checks
// the watcher logs two episodes with the right lengths.
func TestWatchRecovery(t *testing.T) {
	cfg := vjob.NewConfiguration()
	cfg.AddNode(vjob.NewNode("n0", 2, 4096))
	vm := vjob.NewVM("vm0", "j", 1, 1024)
	cfg.AddVM(vm)
	if err := cfg.SetRunning("vm0", "n0"); err != nil {
		t.Fatal(err)
	}
	c := sim.New(cfg, duration.Default())
	log := WatchRecovery(c)

	overload := func(cpu int) func() {
		return func() { vm.SetCPUDemand(cpu) }
	}
	// Violating in [10, 25) and [40, 100): the second episode is still
	// open at the horizon.
	c.Schedule(10, overload(3))
	c.Schedule(25, overload(1))
	c.Schedule(40, overload(5))
	c.Schedule(100, func() {}) // pin the clock to the horizon
	c.Run(100)

	if log.Episodes() != 1 {
		t.Fatalf("closed episodes = %d (%v), want 1", log.Episodes(), log.Durations)
	}
	if d := log.Durations[0]; d != 15 {
		t.Fatalf("first episode = %v, want 15", d)
	}
	if !log.Open || log.OpenSince != 40 {
		t.Fatalf("open episode = %v since %v, want open since 40", log.Open, log.OpenSince)
	}
	log.CloseAt(c.Now())
	if log.Episodes() != 2 || log.Durations[1] != 60 {
		t.Fatalf("after CloseAt: %v, want second episode of 60", log.Durations)
	}
	if log.Max() != 60 || log.Quantile(0.5) != 15 {
		t.Fatalf("Max/median = %v/%v", log.Max(), log.Quantile(0.5))
	}
	// Starts stay aligned with Durations — the contract
	// obs.RemediationTimes matches reconfiguration spans against.
	if len(log.Starts) != len(log.Durations) {
		t.Fatalf("starts %v not aligned with durations %v", log.Starts, log.Durations)
	}
	if log.Starts[0] != 10 || log.Starts[1] != 40 {
		t.Fatalf("episode starts = %v, want [10 40]", log.Starts)
	}
}

// TestPackageQuantile pins the package-level function the experiments
// remediation columns use directly on unsorted input.
func TestPackageQuantile(t *testing.T) {
	in := []float64{9, 1, 5}
	if got := Quantile(in, 0.5); got != 5 {
		t.Fatalf("Quantile = %v, want 5", got)
	}
	if in[0] != 9 || in[1] != 1 || in[2] != 5 {
		t.Fatalf("input modified: %v", in)
	}
	if got := Quantile(nil, 0.95); got != 0 {
		t.Fatalf("Quantile(nil) = %v, want 0", got)
	}
}
