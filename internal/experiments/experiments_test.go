package experiments

import (
	"strings"
	"testing"
	"time"

	"cwcs/internal/sched"
)

func TestFig1Rendering(t *testing.T) {
	out := Fig1()
	for _, want := range []string{"FCFS", "EASY backfilling", "preemption", "makespan"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig1 missing %q", want)
		}
	}
}

func TestTable1Rendering(t *testing.T) {
	out := Table1(1024)
	for _, want := range []string{"migrate(vmj)", "1024", "2048", "resume(vmj) remote"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table1 missing %q:\n%s", want, out)
		}
	}
}

func TestFig3ShapesMatchPaper(t *testing.T) {
	rows := Fig3(512, 1024, 2048)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		// Run/stop constant and memory-independent.
		if r.Run != rows[0].Run || r.Stop != rows[0].Stop {
			t.Fatal("run/stop depend on memory")
		}
		// Migrate/suspend/resume increase with memory.
		if i > 0 {
			prev := rows[i-1]
			if r.Migrate <= prev.Migrate || r.SuspendLocal <= prev.SuspendLocal || r.ResumeLocal <= prev.ResumeLocal {
				t.Fatalf("durations not increasing at %d MiB", r.MemMiB)
			}
		}
		// Remote roughly twice local.
		if ratio := r.SuspendSCP / r.SuspendLocal; ratio < 1.7 || ratio > 2.3 {
			t.Fatalf("scp/local suspend ratio = %.2f", ratio)
		}
		if ratio := r.ResumeSCP / r.ResumeLocal; ratio < 1.7 || ratio > 2.3 {
			t.Fatalf("scp/local resume ratio = %.2f", ratio)
		}
		// rsync slightly cheaper than scp, dearer than local.
		if !(r.SuspendLocal < r.SuspendRsync && r.SuspendRsync < r.SuspendSCP) {
			t.Fatal("rsync ordering broken")
		}
		// Deceleration ~1.3 local, ~1.5 remote.
		if r.DecelBusyLocal < 1.25 || r.DecelBusyLocal > 1.35 {
			t.Fatalf("local decel = %.2f", r.DecelBusyLocal)
		}
		if r.DecelBusyRemote < 1.45 || r.DecelBusyRemote > 1.55 {
			t.Fatalf("remote decel = %.2f", r.DecelBusyRemote)
		}
	}
	if !strings.Contains(Fig3Table(rows), "migrate") {
		t.Fatal("fig3 table")
	}
}

// quickFig10Options keeps the scalability study small enough for unit
// tests.
func quickFig10Options() Fig10Options {
	o := DefaultFig10Options()
	o.VMCounts = []int{54, 108}
	o.Samples = 2
	// 1.5 s leaves the 108-VM samples enough budget to beat the FFD
	// seed even under race instrumentation on a busy 1-core host —
	// 500 ms was observed to flake there (reduction 0%).
	o.Timeout = 1500 * time.Millisecond
	// Sequential search: a portfolio race under a sub-second budget
	// makes the numeric assertions timing- and core-count-dependent.
	o.Workers = 1
	return o
}

func TestFig10EntropyCheaperThanFFD(t *testing.T) {
	rows := Fig10(quickFig10Options())
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Samples == 0 {
			t.Fatalf("no successful samples at %d VMs", r.VMs)
		}
		if r.EntropyMean > r.FFDMean {
			t.Fatalf("%d VMs: entropy %f > ffd %f", r.VMs, r.EntropyMean, r.FFDMean)
		}
		// The headline claim is a large reduction (paper: ~95% with a
		// 40 s budget and 30 samples). The quick configuration uses a
		// 500 ms budget and 2 samples, so accept a modest floor here;
		// the full-scale bench reproduces the big gap.
		if r.ReductionPct < 15 {
			t.Fatalf("%d VMs: reduction only %.1f%%", r.VMs, r.ReductionPct)
		}
	}
	if !strings.Contains(Fig10Table(rows), "Entropy") {
		t.Fatal("fig10 table")
	}
}

// quickClusterOptions shrinks the §5.2 run for tests.
func quickClusterOptions() ClusterOptions {
	o := DefaultClusterOptions()
	o.WorkScale = 0.5
	o.Timeout = time.Second
	o.Horizon = 50_000
	// Sequential search, for run-to-run reproducibility of the
	// asserted completion/switch numbers.
	o.Workers = 1
	return o
}

func TestClusterEntropyBeatsFCFS(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment is seconds-long")
	}
	opts := quickClusterOptions()
	fopts := opts
	fopts.PinRunning = true // a static RMS never migrates
	fcfs := RunCluster(sched.StaticFCFS{ReserveFullCPU: true}, fopts)
	entropy := RunCluster(sched.Consolidation{}, opts)

	if fcfs.Completion >= opts.Horizon || entropy.Completion >= opts.Horizon {
		t.Fatalf("horizon hit: fcfs=%.0f entropy=%.0f", fcfs.Completion, entropy.Completion)
	}
	// The headline §5.2 claim: dynamic consolidation with cluster-wide
	// context switches finishes the workload substantially sooner
	// (paper: 250 min -> 150 min, -40%).
	if entropy.Completion >= fcfs.Completion {
		t.Fatalf("entropy %.0f s not faster than fcfs %.0f s", entropy.Completion, fcfs.Completion)
	}
	reduction := 1 - entropy.Completion/fcfs.Completion
	if reduction < 0.10 {
		t.Fatalf("reduction only %.0f%%", reduction*100)
	}
	// Entropy performed context switches; FCFS performed only
	// run/stop-style switches (no suspends).
	if len(entropy.Records) == 0 {
		t.Fatal("no context switches recorded")
	}
	if fcfs.ActionCounts["suspend"] != 0 {
		t.Fatal("static FCFS must never suspend")
	}
	if fcfs.ActionCounts["migrate"] != 0 {
		t.Fatal("pinned static FCFS must never migrate")
	}
	// Resumes should be mostly local (paper: 21 of 28).
	if entropy.ActionCounts["resume"] > 0 && entropy.RemoteOps > entropy.LocalOps {
		t.Fatalf("mostly-remote transfers: %d local vs %d remote", entropy.LocalOps, entropy.RemoteOps)
	}
	// Rendering smoke checks.
	if !strings.Contains(Fig11Table(entropy), "context switches") {
		t.Fatal("fig11 table")
	}
	if entropy.Gantt.Render(60) == "(empty)\n" {
		t.Fatal("empty gantt")
	}
	if !strings.Contains(Fig13Table(fcfs, entropy), "reduction") {
		t.Fatal("fig13 table")
	}
}
