package plan

import (
	"errors"
	"testing"

	"cwcs/internal/vjob"
)

// repairCluster builds four 1-CPU nodes and two running VMs: a on n1,
// b on n3. Node memory fits exactly one VM.
func repairCluster(t *testing.T) (*vjob.Configuration, *vjob.VM, *vjob.VM) {
	t.Helper()
	cfg := vjob.NewConfiguration()
	for _, n := range []string{"n1", "n2", "n3", "n4"} {
		cfg.AddNode(vjob.NewNode(n, 1, 1024))
	}
	a := vjob.NewVM("a", "j1", 1, 1024)
	b := vjob.NewVM("b", "j2", 1, 1024)
	cfg.AddVM(a)
	cfg.AddVM(b)
	if err := cfg.SetRunning("a", "n1"); err != nil {
		t.Fatal(err)
	}
	if err := cfg.SetRunning("b", "n3"); err != nil {
		t.Fatal(err)
	}
	return cfg, a, b
}

func set(keys ...string) map[string]bool {
	m := make(map[string]bool, len(keys))
	for _, k := range keys {
		m[k] = true
	}
	return m
}

func TestRepairSplicesFreshSlice(t *testing.T) {
	cfg, a, b := repairCluster(t)
	// The remainder still wants a:n1->n2 and b:n3->n4; b's slice
	// (n3, n4) went dirty, so its migration is dropped and replaced by
	// the freshly solved slice plan.
	remaining := &Plan{Src: cfg, Pools: []Pool{
		{&Migration{Machine: a, Src: "n1", Dst: "n2"}},
		{&Migration{Machine: b, Src: "n3", Dst: "n4"}},
	}}
	fresh := &Plan{Pools: []Pool{
		{&Migration{Machine: b, Src: "n3", Dst: "n4"}},
	}}
	got, err := Repair(cfg, remaining, set("n3", "n4"), set("b"), fresh)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumActions() != 2 {
		t.Fatalf("repaired plan has %d actions:\n%s", got.NumActions(), got)
	}
	final, err := got.Result()
	if err != nil {
		t.Fatal(err)
	}
	if final.HostOf("a") != "n2" || final.HostOf("b") != "n4" {
		t.Fatalf("final placement a=%s b=%s", final.HostOf("a"), final.HostOf("b"))
	}
}

func TestRepairKeepsCleanRegionUntouched(t *testing.T) {
	cfg, a, _ := repairCluster(t)
	remaining := &Plan{Src: cfg, Pools: []Pool{
		{&Migration{Machine: a, Src: "n1", Dst: "n2"}},
	}}
	// No fresh plans: a pure filter of the remainder.
	got, err := Repair(cfg, remaining, set("n3", "n4"), set("b"))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumActions() != 1 {
		t.Fatalf("repaired plan has %d actions", got.NumActions())
	}
}

func TestRepairRefusesBrokenFeasibilityEdge(t *testing.T) {
	// c occupies n2; the remainder suspends c (freeing n2) and then
	// migrates a into n2. Marking only c dirty drops the suspend while
	// keeping the migration, which is no longer feasible — Repair must
	// refuse rather than emit a plan that overloads n2, reporting the
	// broken chain so the caller can widen its region over it.
	cfg, a, _ := repairCluster(t)
	c := vjob.NewVM("c", "j3", 0, 1024)
	cfg.AddVM(c)
	if err := cfg.SetRunning("c", "n2"); err != nil {
		t.Fatal(err)
	}
	remaining := &Plan{Src: cfg, Pools: []Pool{
		{&Suspend{Machine: c, On: "n2", To: "n2"}},
		{&Migration{Machine: a, Src: "n1", Dst: "n2"}},
	}}
	_, err := Repair(cfg, remaining, nil, set("c"))
	if err == nil {
		t.Fatal("repair accepted a splice that breaks a feasibility edge")
	}
	var broken *ErrBrokenDependency
	if !errors.As(err, &broken) {
		t.Fatalf("err = %v, want ErrBrokenDependency", err)
	}
	if want := []string{"n1", "n2"}; !equalStrings(broken.Nodes, want) {
		t.Fatalf("closure nodes = %v, want %v", broken.Nodes, want)
	}
	if want := []string{"a"}; !equalStrings(broken.VMs, want) {
		t.Fatalf("closure VMs = %v, want %v", broken.VMs, want)
	}
}

func equalStrings(got, want []string) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// TestRepairRefusesCrossSliceDependency pins the cross-slice repair
// contract: when a kept action outside the re-solved region depends on
// a dropped action — here the dropped migration was the one freeing
// the kept migration's destination — Repair must never emit the
// corrupt splice. It refuses with ErrBrokenDependency carrying the
// chain's closure, which is what lets core.Loop widen the repair
// region and splice without a monolithic re-solve.
func TestRepairRefusesCrossSliceDependency(t *testing.T) {
	cfg, _, _ := repairCluster(t)
	// y fills n4; z sits on n2. The monolithic remainder first moves y
	// into the region that later went dirty (freeing n4), then moves z
	// into the freed n4.
	y := vjob.NewVM("y", "j3", 0, 1024)
	z := vjob.NewVM("z", "j4", 0, 1024)
	cfg.AddVM(y)
	cfg.AddVM(z)
	if err := cfg.SetRunning("y", "n4"); err != nil {
		t.Fatal(err)
	}
	if err := cfg.SetRunning("z", "n2"); err != nil {
		t.Fatal(err)
	}
	remaining := &Plan{Src: cfg, Pools: []Pool{
		{&Migration{Machine: y, Src: "n4", Dst: "n1"}},
		{&Migration{Machine: z, Src: "n2", Dst: "n4"}},
	}}
	// The dirty region is {n1, a}: y's migration touches n1 and is
	// dropped; z's migration (n2 -> n4) touches neither and is kept —
	// but its destination is only free if y actually left.
	_, err := Repair(cfg, remaining, set("n1"), set("a"))
	if err == nil {
		t.Fatal("repair accepted a splice whose kept remainder depends on a dropped action")
	}
	var broken *ErrBrokenDependency
	if !errors.As(err, &broken) {
		t.Fatalf("err = %v, want ErrBrokenDependency", err)
	}
	// The closure must name z's chain — the elements a widened region
	// has to absorb — and nothing from the healthy slice.
	if want := []string{"n2", "n4"}; !equalStrings(broken.Nodes, want) {
		t.Fatalf("closure nodes = %v, want %v", broken.Nodes, want)
	}
	if want := []string{"z"}; !equalStrings(broken.VMs, want) {
		t.Fatalf("closure VMs = %v, want %v", broken.VMs, want)
	}
}

// TestRepairChainClosureSpansMultipleActions checks the transitive
// closure: dropping the head of a three-hop chain (y frees n1 for z,
// z frees n2 for w... here y frees n4 for z, whose own source n2 then
// receives w) must pull every chained action into the closure, not
// just the first broken one.
func TestRepairChainClosureSpansMultipleActions(t *testing.T) {
	cfg, _, _ := repairCluster(t)
	y := vjob.NewVM("y", "j3", 0, 1024)
	z := vjob.NewVM("z", "j4", 0, 1024)
	w := vjob.NewVM("w", "j5", 0, 1024)
	cfg.AddVM(y)
	cfg.AddVM(z)
	cfg.AddVM(w)
	for vm, node := range map[string]string{"y": "n4", "z": "n2", "w": "n3"} {
		if err := cfg.SetRunning(vm, node); err != nil {
			t.Fatal(err)
		}
	}
	remaining := &Plan{Src: cfg, Pools: []Pool{
		{&Migration{Machine: y, Src: "n4", Dst: "n1"}},
		{&Migration{Machine: z, Src: "n2", Dst: "n4"}},
		{&Migration{Machine: w, Src: "n3", Dst: "n2"}},
	}}
	// Dropping y's migration (dirty n1) strands z directly and w
	// transitively: w's destination n2 is only free once z left it.
	_, err := Repair(cfg, remaining, set("n1"), nil)
	var broken *ErrBrokenDependency
	if !errors.As(err, &broken) {
		t.Fatalf("err = %v, want ErrBrokenDependency", err)
	}
	if want := []string{"n2", "n3", "n4"}; !equalStrings(broken.Nodes, want) {
		t.Fatalf("closure nodes = %v, want %v", broken.Nodes, want)
	}
	if want := []string{"w", "z"}; !equalStrings(broken.VMs, want) {
		t.Fatalf("closure VMs = %v, want %v", broken.VMs, want)
	}
}

// TestRepairRefusesInfeasibleFreshPlan pins the true-infeasibility
// path: a fresh plan broken on its own (its action does not fit the
// observed configuration) is not a dependency problem — no widening
// can absorb it — so Repair must refuse with a plain error, sending
// the caller to the full re-solve.
func TestRepairRefusesInfeasibleFreshPlan(t *testing.T) {
	cfg, _, b := repairCluster(t)
	d := vjob.NewVM("d", "j5", 0, 1024)
	cfg.AddVM(d)
	if err := cfg.SetRunning("d", "n4"); err != nil {
		t.Fatal(err)
	}
	// The fresh plan moves b onto n4, which d already fills.
	fresh := &Plan{Pools: []Pool{
		{&Migration{Machine: b, Src: "n3", Dst: "n4"}},
	}}
	_, err := Repair(cfg, nil, set("n3"), set("b"), fresh)
	if err == nil {
		t.Fatal("repair accepted an infeasible fresh plan")
	}
	var broken *ErrBrokenDependency
	if errors.As(err, &broken) {
		t.Fatalf("fresh-plan infeasibility misreported as a broken dependency: %v", err)
	}
}

func TestRepairRefusesOverlappingFresh(t *testing.T) {
	cfg, a, b := repairCluster(t)
	remaining := &Plan{Src: cfg, Pools: []Pool{
		{&Migration{Machine: a, Src: "n1", Dst: "n2"}},
	}}
	// The fresh plan claims n2, which the kept remainder also touches.
	fresh := &Plan{Pools: []Pool{
		{&Migration{Machine: b, Src: "n3", Dst: "n2"}},
	}}
	_, err := Repair(cfg, remaining, set("n3"), set("b"), fresh)
	if !errors.Is(err, ErrOverlappingPlans) {
		t.Fatalf("err = %v, want ErrOverlappingPlans", err)
	}
}

func TestRepairNilRemainder(t *testing.T) {
	cfg, _, b := repairCluster(t)
	fresh := &Plan{Pools: []Pool{
		{&Migration{Machine: b, Src: "n3", Dst: "n4"}},
	}}
	got, err := Repair(cfg, nil, set("n3", "n4"), set("b"), fresh)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumActions() != 1 {
		t.Fatalf("repaired plan has %d actions", got.NumActions())
	}
}

// TestRepairSplicesEvacuationOfOverloadedNode pins the dominant storm
// failure mode: a fresh slice plan drains an overloaded node over two
// pools, so a shrinking violation stays alive on it during pool 0.
// The splice must succeed — the overload pre-exists in cur and the
// fresh plan is the cure, not the cause.
func TestRepairSplicesEvacuationOfOverloadedNode(t *testing.T) {
	cfg := vjob.NewConfiguration()
	for _, n := range []string{"n1", "n2"} {
		cfg.AddNode(vjob.NewNode(n, 2, 8192))
	}
	vms := make([]*vjob.VM, 4)
	for i, name := range []string{"v0", "v1", "v2", "v3"} {
		v := vjob.NewVM(name, "j1", 1, 512)
		cfg.AddVM(v)
		vms[i] = v
		if err := cfg.SetRunning(name, "n1"); err != nil {
			t.Fatal(err)
		}
	}
	// n1 demand 4 > capacity 2: the overload is why the repair exists.
	fresh := &Plan{Src: cfg, Pools: []Pool{
		{&Migration{Machine: vms[0], Src: "n1", Dst: "n2"}},
		{&Migration{Machine: vms[1], Src: "n1", Dst: "n2"}},
	}}
	got, err := Repair(cfg, nil, set("n1", "n2"), set("v0", "v1"), fresh)
	if err != nil {
		t.Fatalf("evacuation of overloaded node refused: %v", err)
	}
	if got.NumActions() != 2 {
		t.Fatalf("repaired plan has %d actions, want 2", got.NumActions())
	}
}

func TestTouchedNodesExported(t *testing.T) {
	m := &Migration{Machine: vjob.NewVM("v", "", 1, 1), Src: "n1", Dst: "n2"}
	got := TouchedNodes(m)
	if len(got) != 2 || got[0] != "n1" || got[1] != "n2" {
		t.Fatalf("TouchedNodes = %v", got)
	}
}
