package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cwcs/internal/plan"
	"cwcs/internal/vjob"
)

// -update rewrites the golden files, for deliberate format changes:
//
//	go test ./cmd/planviz -run Golden -update
var update = flag.Bool("update", false, "rewrite the golden files")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("%s drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestGoldenRepairedPlan pins the rendering of a spliced (repaired)
// plan: a failed migration's slice is re-solved and the fresh slice
// plan is merged with the untouched remainder. The exact pool layout
// and per-action cost lines must stay stable — planviz output is what
// operators diff when auditing a repair.
func TestGoldenRepairedPlan(t *testing.T) {
	cfg := vjob.NewConfiguration()
	for _, n := range []string{"n1", "n2", "n3", "n4"} {
		cfg.AddNode(vjob.NewNode(n, 1, 4096))
	}
	a := vjob.NewVM("vm-a", "ja", 1, 2048)
	b := vjob.NewVM("vm-b", "jb", 1, 1024)
	c := vjob.NewVM("vm-c", "jc", 1, 512)
	for _, v := range []*vjob.VM{a, b, c} {
		cfg.AddVM(v)
	}
	for vm, n := range map[string]string{"vm-a": "n1", "vm-b": "n3", "vm-c": "n3"} {
		if err := cfg.SetRunning(vm, n); err != nil {
			t.Fatal(err)
		}
	}

	// The executing plan still owed: migrate vm-a off n1 (clean
	// region) and pack vm-b onto n4 (dirty region: its first attempt
	// failed). The repair re-solves the {n3,n4} slice and splices the
	// fresh migration against the kept remainder.
	remaining := &plan.Plan{Src: cfg, Pools: []plan.Pool{
		{&plan.Migration{Machine: a, Src: "n1", Dst: "n2"}},
		{&plan.Migration{Machine: b, Src: "n3", Dst: "n4"}},
	}}
	fresh := &plan.Plan{Pools: []plan.Pool{
		{&plan.Migration{Machine: b, Src: "n3", Dst: "n4"}},
	}}
	dirtyNodes := map[string]bool{"n3": true, "n4": true}
	dirtyVMs := map[string]bool{"vm-b": true, "vm-c": true}
	repaired, err := plan.Repair(cfg, remaining, dirtyNodes, dirtyVMs, fresh)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "repaired_plan.golden", indent(repaired.String()))
}
