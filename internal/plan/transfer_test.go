package plan

import (
	"strings"
	"testing"

	"cwcs/internal/resources"
	"cwcs/internal/vjob"
)

// netCluster builds nodes with a CPU/mem/net capacity.
func netCluster(t *testing.T, nodes int, cpu, mem, net int) *vjob.Configuration {
	t.Helper()
	c := vjob.NewConfiguration()
	for i := 0; i < nodes; i++ {
		cap := resources.New(cpu, mem)
		cap.Set(resources.NetBW, net)
		c.AddNode(vjob.NewNodeRes(nodeName(i), cap))
	}
	return c
}

// TestTransferSize2DPin pins that on the paper's 2-D instances every
// action cost is byte-identical to the memory-only Table 1 model: with
// no net/disk demands, TransferSize is exactly MemoryDemand.
func TestTransferSize2DPin(t *testing.T) {
	v := vjob.NewVM("v1", "j", 1, 768)
	if got := TransferSize(v); got != v.MemoryDemand() {
		t.Fatalf("2-D TransferSize = %d, want MemoryDemand %d", got, v.MemoryDemand())
	}
	cases := []struct {
		a    Action
		want int
	}{
		{&Migration{Machine: v, Src: "N1", Dst: "N2"}, 768},
		{&Suspend{Machine: v, On: "N1", To: "N1"}, 768},
		{&Suspend{Machine: v, On: "N1", To: "N2"}, 768},
		{&Resume{Machine: v, From: "N1", On: "N1"}, 768},
		{&Resume{Machine: v, From: "N1", On: "N2"}, 2 * 768},
		{&Run{Machine: v, On: "N1"}, 0},
		{&Stop{Machine: v, On: "N1"}, 0},
	}
	for _, c := range cases {
		if got := c.a.Cost(); got != c.want {
			t.Errorf("%s: cost = %d, want %d", c.a, got, c.want)
		}
	}
}

// TestTransferSizeFoldsExtras: net and disk demands widen the moved
// volume, so a resume dragging a disk-heavy image is costlier than a
// RAM-only one with the same memory size.
func TestTransferSizeFoldsExtras(t *testing.T) {
	d := resources.New(1, 512)
	d.Set(resources.NetBW, 100)
	d.Set(resources.DiskIO, 50)
	heavy := vjob.NewVMRes("heavy", "j", d)
	if got := TransferSize(heavy); got != 512+100+50 {
		t.Fatalf("TransferSize = %d, want %d", got, 512+100+50)
	}
	light := vjob.NewVM("light", "j", 1, 512)
	rHeavy := &Resume{Machine: heavy, From: "N1", On: "N2"}
	rLight := &Resume{Machine: light, From: "N1", On: "N2"}
	if rHeavy.Cost() <= rLight.Cost() {
		t.Fatalf("remote resume of disk/net-heavy image costs %d, not above RAM-only %d",
			rHeavy.Cost(), rLight.Cost())
	}
}

// TestTransferDemandOf checks which actions carry a wire transfer and
// at which nominal rate.
func TestTransferDemandOf(t *testing.T) {
	v := vjob.NewVM("v1", "j", 1, 512)
	cases := []struct {
		a        Action
		ok       bool
		src, dst string
		rate     int
	}{
		{&Migration{Machine: v, Src: "N1", Dst: "N2"}, true, "N1", "N2", MigrateRateMbps},
		{&Suspend{Machine: v, On: "N1", To: "N2"}, true, "N1", "N2", SuspendPushRateMbps},
		{&Suspend{Machine: v, On: "N1", To: "N1"}, false, "", "", 0},
		{&Resume{Machine: v, From: "N1", On: "N2"}, true, "N1", "N2", ResumePushRateMbps},
		{&Resume{Machine: v, From: "N1", On: "N1"}, false, "", "", 0},
		{&Run{Machine: v, On: "N1"}, false, "", "", 0},
		{&Stop{Machine: v, On: "N1"}, false, "", "", 0},
	}
	for _, c := range cases {
		tr, ok := TransferDemandOf(c.a)
		if ok != c.ok {
			t.Errorf("%s: transfer ok = %v, want %v", c.a, ok, c.ok)
			continue
		}
		if ok && (tr.Src != c.src || tr.Dst != c.dst || tr.Rate != c.rate) {
			t.Errorf("%s: transfer = %+v, want {%s %s %d}", c.a, tr, c.src, c.dst, c.rate)
		}
	}
}

// TestClampedRate: the demand a transfer meters on a node is its
// nominal rate clamped to the NIC; unmodeled NICs meter nothing.
func TestClampedRate(t *testing.T) {
	tr := TransferDemand{Rate: MigrateRateMbps}
	for _, c := range []struct{ nic, want int }{
		{0, 0}, {-1, 0}, {100, 100}, {800, 800}, {10000, 800},
	} {
		if got := tr.ClampedRate(c.nic); got != c.want {
			t.Errorf("ClampedRate(%d) = %d, want %d", c.nic, got, c.want)
		}
	}
}

// TestBuilderSerializesNICTransfers: two migrations converging on one
// NIC-constrained node must land in different pools — the transfers
// cannot share the 1 Gb link — while the same instance without net
// capacities keeps them parallel.
func TestBuilderSerializesNICTransfers(t *testing.T) {
	build := func(net int, gate bool) *Plan {
		t.Helper()
		var src *vjob.Configuration
		if net > 0 {
			src = netCluster(t, 3, 8, 16384, net)
		} else {
			src = cluster(t, 3, 8, 16384)
		}
		for i, host := range []string{"N1", "N2"} {
			v := vjob.NewVM("v"+string(rune('1'+i)), "j", 1, 512)
			src.AddVM(v)
			if err := src.SetRunning(v.Name, host); err != nil {
				t.Fatal(err)
			}
		}
		dst := src.Clone()
		for _, vm := range []string{"v1", "v2"} {
			if err := dst.SetRunning(vm, "N3"); err != nil {
				t.Fatal(err)
			}
		}
		g, err := BuildGraph(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := Builder{DisableTransferGating: !gate}.Plan(g)
		if err != nil {
			t.Fatal(err)
		}
		return pl
	}

	// 2-D instance: both migrations are parallel-feasible in one pool.
	if pl := build(0, true); len(pl.Pools) != 1 {
		t.Fatalf("2-D plan has %d pools, want 1:\n%s", len(pl.Pools), pl)
	}
	// 1 Gb NICs: each migration claims 800 Mbit/s, so N3's inbound link
	// only admits one at a time — two pools.
	pl := build(1000, true)
	if len(pl.Pools) != 2 {
		t.Fatalf("NIC-gated plan has %d pools, want 2:\n%s", len(pl.Pools), pl)
	}
	if err := pl.Validate(); err != nil {
		t.Fatalf("gated plan does not validate: %v", err)
	}
	// Blind mode reproduces the memory-only behavior, and Validate
	// rejects the oversubscribed pool it emits.
	blind := build(1000, false)
	if len(blind.Pools) != 1 {
		t.Fatalf("blind plan has %d pools, want 1:\n%s", len(blind.Pools), blind)
	}
	err := blind.Validate()
	if err == nil || !strings.Contains(err.Error(), "oversubscribes a NIC") {
		t.Fatalf("Validate(blind) = %v, want NIC oversubscription error", err)
	}
}

// TestLoneTransferAlwaysFits: a single migration into a NIC-poor node
// is slow, not infeasible — clamping guarantees builder progress.
func TestLoneTransferAlwaysFits(t *testing.T) {
	src := netCluster(t, 2, 8, 16384, 100) // NIC far below the 800 Mbit/s rate
	v := vjob.NewVM("v1", "j", 1, 512)
	src.AddVM(v)
	if err := src.SetRunning("v1", "N1"); err != nil {
		t.Fatal(err)
	}
	dst := src.Clone()
	if err := dst.SetRunning("v1", "N2"); err != nil {
		t.Fatal(err)
	}
	pl, err := Build(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Pools) != 1 || len(pl.Pools[0]) != 1 {
		t.Fatalf("plan = %s, want a single migration pool", pl)
	}
	if err := pl.Validate(); err != nil {
		t.Fatalf("lone clamped transfer rejected: %v", err)
	}
}

// TestTransferGatingMixedRates: remote suspends are cheap on the wire
// (80 Mbit/s), so many of them share a NIC that admits only one
// migration; the book must account rates per kind, not per action.
func TestTransferGatingMixedRates(t *testing.T) {
	src := netCluster(t, 3, 32, 65536, 1000)
	// Five VMs on N1 headed to a remote-suspend on N2: 5×80 = 400 Mbit/s.
	for i := 0; i < 5; i++ {
		v := vjob.NewVM("s"+string(rune('1'+i)), "js", 1, 256)
		src.AddVM(v)
		if err := src.SetRunning(v.Name, "N1"); err != nil {
			t.Fatal(err)
		}
	}
	dst := src.Clone()
	for i := 0; i < 5; i++ {
		if err := dst.SetSleeping("s"+string(rune('1'+i)), "N2"); err != nil {
			t.Fatal(err)
		}
	}
	pl, err := Build(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Pools) != 1 {
		t.Fatalf("five 80 Mbit/s suspends should share one pool, got:\n%s", pl)
	}
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
}
