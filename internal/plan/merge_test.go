package plan

import (
	"errors"
	"fmt"
	"testing"

	"cwcs/internal/vjob"
)

// mergeCluster builds a 4-node cluster split into two independent
// halves, each needing a two-pool reconfiguration (a suspend must free
// room before a migration becomes feasible).
func mergeCluster(t *testing.T) (src *vjob.Configuration, left, right *Plan) {
	t.Helper()
	src = vjob.NewConfiguration()
	for _, n := range []string{"n1", "n2", "n3", "n4"} {
		src.AddNode(vjob.NewNode(n, 2, 3072))
	}
	place := func(vm, node string, mem int) *vjob.VM {
		v := vjob.NewVM(vm, "j-"+vm, 1, mem)
		src.AddVM(v)
		if err := src.SetRunning(vm, node); err != nil {
			t.Fatal(err)
		}
		return v
	}
	place("a1", "n1", 2048)
	place("a2", "n2", 2048)
	place("b1", "n3", 2048)
	place("b2", "n4", 2048)

	mkHalf := func(keep, victim string, from, to string) *Plan {
		dst := src.Clone()
		if err := dst.SetSleeping(victim, from); err != nil {
			t.Fatal(err)
		}
		if err := dst.SetRunning(keep, from); err != nil {
			t.Fatal(err)
		}
		// Restrict to the half's nodes/VMs so the plans stay disjoint.
		subSrc, err := src.Extract([]string{from, to}, []string{keep, victim})
		if err != nil {
			t.Fatal(err)
		}
		subDst, err := dst.Extract([]string{from, to}, []string{keep, victim})
		if err != nil {
			t.Fatal(err)
		}
		p, err := Build(subSrc, subDst)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	// Left half: suspend a1 on n1, then migrate a2 from n2 to n1.
	left = mkHalf("a2", "a1", "n1", "n2")
	// Right half: suspend b1 on n3, then migrate b2 from n4 to n3.
	right = mkHalf("b2", "b1", "n3", "n4")
	return src, left, right
}

func TestMergeZipsPoolsAndStaysValid(t *testing.T) {
	src, left, right := mergeCluster(t)
	if len(left.Pools) < 2 || len(right.Pools) < 2 {
		t.Fatalf("halves should need 2 pools (got %d and %d)", len(left.Pools), len(right.Pools))
	}
	merged, err := Merge(src, left, right)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := merged.NumActions(), left.NumActions()+right.NumActions(); got != want {
		t.Fatalf("merged actions = %d, want %d", got, want)
	}
	if len(merged.Pools) != 2 {
		t.Fatalf("merged pools = %d, want 2 (zipped)", len(merged.Pools))
	}
	if err := merged.Validate(); err != nil {
		t.Fatalf("merged plan invalid: %v", err)
	}
	res, err := merged.Result()
	if err != nil {
		t.Fatal(err)
	}
	// The merged plan reaches the union of the halves' destinations.
	want := src.Clone()
	for _, half := range []*Plan{left, right} {
		sub, err := half.Result()
		if err != nil {
			t.Fatal(err)
		}
		if err := want.Rebase(half.Src, sub); err != nil {
			t.Fatal(err)
		}
	}
	if !res.Equal(want) {
		t.Fatalf("merged result:\n%svs rebased union:\n%s", res, want)
	}
}

func TestMergeRejectsOverlap(t *testing.T) {
	src, left, _ := mergeCluster(t)
	if _, err := Merge(src, left, left); !errors.Is(err, ErrOverlappingPlans) {
		t.Fatalf("err = %v, want ErrOverlappingPlans", err)
	}
	if _, err := Merge(src, left, nil); err == nil {
		t.Fatal("merge accepted a nil plan")
	}
}

func TestMergeUnevenPoolCounts(t *testing.T) {
	src := vjob.NewConfiguration()
	for i := 0; i < 4; i++ {
		src.AddNode(vjob.NewNode(fmt.Sprintf("m%d", i), 2, 4096))
	}
	v1 := vjob.NewVM("v1", "a", 1, 1024)
	v2 := vjob.NewVM("v2", "b", 1, 1024)
	src.AddVM(v1)
	src.AddVM(v2)
	if err := src.SetRunning("v1", "m0"); err != nil {
		t.Fatal(err)
	}
	if err := src.SetRunning("v2", "m2"); err != nil {
		t.Fatal(err)
	}
	long := &Plan{Src: src, Pools: []Pool{
		{&Migration{Machine: v1, Src: "m0", Dst: "m1"}},
		{&Migration{Machine: v1, Src: "m1", Dst: "m0"}},
	}}
	short := &Plan{Src: src, Pools: []Pool{
		{&Migration{Machine: v2, Src: "m2", Dst: "m3"}},
	}}
	merged, err := Merge(src, long, short)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Pools) != 2 || len(merged.Pools[0]) != 2 || len(merged.Pools[1]) != 1 {
		t.Fatalf("merged shape wrong: %v", merged)
	}
	if err := merged.Validate(); err != nil {
		t.Fatal(err)
	}
	if merged.Cost() <= 0 {
		t.Fatal("merged cost not computed")
	}
}

func TestMergeOfNothingIsEmptyPlan(t *testing.T) {
	src := vjob.NewConfiguration()
	src.AddNode(vjob.NewNode("n", 1, 1024))
	merged, err := Merge(src)
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumActions() != 0 || merged.Cost() != 0 {
		t.Fatalf("empty merge: %v", merged)
	}
}
