package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"cwcs/internal/core"
	"cwcs/internal/sched"
	"cwcs/internal/workload"
)

// PartitionOptions parameterizes the partitioned-vs-monolithic scaling
// study (no paper analogue: the paper's 200-node study is the size the
// monolithic model tops out at; partitioning is this repo's lever past
// it — see DESIGN.md §5).
type PartitionOptions struct {
	// NodeCounts are the cluster sizes to sweep.
	NodeCounts []int
	// VMFactor is the number of VMs generated per node.
	VMFactor float64
	// NodeCPU / NodeMemory are the per-node capacities.
	NodeCPU, NodeMemory int
	// Timeout is the solve budget, identical for both sides.
	Timeout time.Duration
	// Seed drives configuration generation.
	Seed int64
	// Workers is the optimizer's portfolio width (0 = GOMAXPROCS).
	Workers int
	// Partitions is the partition count of the partitioned run (0 =
	// auto, i.e. one partition per ~16 nodes).
	Partitions int
}

// DefaultPartitionOptions returns the BENCH_partition.json sweep:
// 100/500/2000 nodes at an equal per-solve budget.
func DefaultPartitionOptions() PartitionOptions {
	return PartitionOptions{
		NodeCounts: []int{100, 500, 2000},
		VMFactor:   1.5,
		NodeCPU:    2, NodeMemory: 4096,
		Timeout: 2 * time.Second,
		Seed:    1,
	}
}

// PartitionRow is one cluster size of the study: the same
// reconfiguration problem solved monolithically and partitioned, under
// the same budget.
type PartitionRow struct {
	Nodes, VMs int
	// MonoMS / PartMS are the solve wall-clock times in milliseconds.
	MonoMS, PartMS float64
	// MonoCost / PartCost are the §4.2 plan costs.
	MonoCost, PartCost int
	// MonoOptimal / PartOptimal report whether the solve proved its
	// model optimal within the budget (for the partitioned side: every
	// partition proved its slice).
	MonoOptimal, PartOptimal bool
	// MonoErr / PartErr record a failed solve (empty on success); a
	// failed side keeps cost 0, which would otherwise read as a
	// perfect plan in the exported data.
	MonoErr, PartErr string
	// Partitions is the effective partition count of the partitioned
	// run.
	Partitions int
	// Speedup is MonoMS / PartMS.
	Speedup float64
}

// PartitionStudy generates one consolidation problem per cluster size
// and solves it both ways.
func PartitionStudy(opts PartitionOptions) []PartitionRow {
	rng := rand.New(rand.NewSource(opts.Seed))
	rows := make([]PartitionRow, 0, len(opts.NodeCounts))
	for _, nodes := range opts.NodeCounts {
		g := workload.GenerateConfiguration(rng, workload.GenerateOptions{
			Nodes: nodes, NodeCPU: opts.NodeCPU, NodeMemory: opts.NodeMemory,
			VMs: int(float64(nodes) * opts.VMFactor),
		})
		problem := core.Problem{Src: g.Cfg, Target: sched.Consolidation{}.Decide(g.Cfg, g.Jobs)}
		row := PartitionRow{Nodes: nodes, VMs: g.Cfg.NumVMs()}

		start := time.Now()
		mono, monoErr := core.Optimizer{Timeout: opts.Timeout, Workers: opts.Workers, Partitions: 1}.Solve(problem)
		row.MonoMS = float64(time.Since(start).Microseconds()) / 1000
		if monoErr != nil {
			row.MonoErr = monoErr.Error()
		} else {
			row.MonoCost, row.MonoOptimal = mono.Cost, mono.Optimal
		}

		start = time.Now()
		part, partErr := core.Optimizer{Timeout: opts.Timeout, Workers: opts.Workers, Partitions: opts.Partitions}.Solve(problem)
		row.PartMS = float64(time.Since(start).Microseconds()) / 1000
		if partErr != nil {
			row.PartErr = partErr.Error()
		} else {
			row.PartCost, row.PartOptimal = part.Cost, part.Optimal
			row.Partitions = part.Partitions
			if row.Partitions == 0 {
				row.Partitions = 1
			}
		}
		if monoErr == nil && partErr == nil && row.PartMS > 0 {
			row.Speedup = row.MonoMS / row.PartMS
		}
		rows = append(rows, row)
	}
	return rows
}

// PartitionTable renders the rows.
func PartitionTable(rows []PartitionRow) string {
	var b strings.Builder
	b.WriteString("Partitioned vs monolithic solve (equal budget per side)\n")
	fmt.Fprintf(&b, "%6s %6s %6s | %10s %10s %4s | %10s %10s %4s | %8s\n",
		"nodes", "vms", "parts", "mono_ms", "mono_cost", "opt", "part_ms", "part_cost", "opt", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %6d %6d | %10.0f %10s %4v | %10.0f %10s %4v | %7.1fx\n",
			r.Nodes, r.VMs, r.Partitions,
			r.MonoMS, costOrErr(r.MonoCost, r.MonoErr), r.MonoOptimal,
			r.PartMS, costOrErr(r.PartCost, r.PartErr), r.PartOptimal, r.Speedup)
		if r.MonoErr != "" {
			fmt.Fprintf(&b, "       monolithic failed: %s\n", r.MonoErr)
		}
		if r.PartErr != "" {
			fmt.Fprintf(&b, "       partitioned failed: %s\n", r.PartErr)
		}
	}
	return b.String()
}

// costOrErr renders a plan cost, or a marker when the solve failed (a
// silent 0 would read as a perfect plan).
func costOrErr(cost int, errText string) string {
	if errText != "" {
		return "FAILED"
	}
	return fmt.Sprintf("%d", cost)
}

// PartitionCSV renders the rows as CSV for external plotting. The
// mono_ok/part_ok columns flag failed solves, whose costs are 0 and
// must not be read as results.
func PartitionCSV(rows []PartitionRow) string {
	var b strings.Builder
	b.WriteString("nodes,vms,partitions,mono_ok,mono_ms,mono_cost,mono_optimal,part_ok,part_ms,part_cost,part_optimal,speedup\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%d,%d,%d,%v,%.1f,%d,%v,%v,%.1f,%d,%v,%.2f\n",
			r.Nodes, r.VMs, r.Partitions,
			r.MonoErr == "", r.MonoMS, r.MonoCost, r.MonoOptimal,
			r.PartErr == "", r.PartMS, r.PartCost, r.PartOptimal, r.Speedup)
	}
	return b.String()
}
