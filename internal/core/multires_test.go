package core

import (
	"testing"
	"time"

	"cwcs/internal/resources"
	"cwcs/internal/vjob"
)

// TestCompileActiveDimensions: only dimensions some to-be-running VM
// demands become active — a pure CPU+memory problem compiles exactly
// the paper's two Packing instances, extra registered kinds compile
// away.
func TestCompileActiveDimensions(t *testing.T) {
	cfg := vjob.NewConfiguration()
	cap := resources.New(2, 4096)
	cap.Set(resources.NetBW, 1000) // capacity alone must not activate
	cfg.AddNode(vjob.NewNodeRes("n1", cap))
	cfg.AddNode(vjob.NewNodeRes("n2", cap))
	cfg.AddVM(vjob.NewVM("v1", "j", 1, 512))
	if err := cfg.SetRunning("v1", "n1"); err != nil {
		t.Fatal(err)
	}
	c, err := Optimizer{}.compile(Problem{Src: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if !c.active[resources.CPU] || !c.active[resources.Memory] {
		t.Fatalf("base dimensions inactive: %v", c.active)
	}
	if c.active[resources.NetBW] || c.active[resources.DiskIO] {
		t.Fatalf("undemanded dimensions active: %v", c.active)
	}

	// One VM with a net demand activates exactly that extra dimension.
	d := resources.New(1, 512)
	d.Set(resources.NetBW, 100)
	cfg.AddVM(vjob.NewVMRes("v2", "j", d))
	if err := cfg.SetRunning("v2", "n2"); err != nil {
		t.Fatal(err)
	}
	c, err = Optimizer{}.compile(Problem{Src: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if !c.active[resources.NetBW] || c.active[resources.DiskIO] {
		t.Fatalf("net activation wrong: %v", c.active)
	}
}

// TestSolveRespectsExtraDimension: two VMs that fit together on CPU
// and memory but jointly exceed one node's network capacity must be
// separated — the generalized §4.3 model treats the extra dimension as
// a first-class viability constraint.
func TestSolveRespectsExtraDimension(t *testing.T) {
	cfg := vjob.NewConfiguration()
	cap := resources.New(4, 8192)
	cap.Set(resources.NetBW, 100)
	cfg.AddNode(vjob.NewNodeRes("n1", cap))
	cfg.AddNode(vjob.NewNodeRes("n2", cap))
	d := resources.New(1, 512)
	d.Set(resources.NetBW, 60)
	cfg.AddVM(vjob.NewVMRes("v1", "j", d))
	cfg.AddVM(vjob.NewVMRes("v2", "j", d))
	if err := cfg.SetRunning("v1", "n1"); err != nil {
		t.Fatal(err)
	}
	if err := cfg.SetRunning("v2", "n1"); err != nil {
		t.Fatal(err)
	}
	if cfg.Viable() {
		t.Fatal("source should over-commit net on n1")
	}
	res, err := Optimizer{Timeout: 5 * time.Second, Workers: 1}.Solve(Problem{Src: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Dst.Viable() {
		t.Fatalf("destination not viable: %v", res.Dst.Violations())
	}
	if res.Dst.HostOf("v1") == res.Dst.HostOf("v2") {
		t.Fatalf("net-heavy VMs share %s", res.Dst.HostOf("v1"))
	}
	// The cheap fix is one migration: cost TransferSize = Dm + net
	// demand = 512 + 60 (the net-chatty VM dirties pages during the
	// pre-copy rounds, so its transfer volume folds the rate in).
	if res.Cost != 572 {
		t.Fatalf("cost = %d, want one 572-MiB-equivalent migration", res.Cost)
	}
}

// TestFitsMultiDimension: Configuration.Fits honours every dimension.
func TestFitsMultiDimension(t *testing.T) {
	cfg := vjob.NewConfiguration()
	cap := resources.New(2, 4096)
	cap.Set(resources.DiskIO, 100)
	cfg.AddNode(vjob.NewNodeRes("n1", cap))
	d := resources.New(1, 512)
	d.Set(resources.DiskIO, 150)
	v := vjob.NewVMRes("v1", "j", d)
	cfg.AddVM(v)
	if cfg.Fits(v, "n1") {
		t.Fatal("disk-starved node accepted the VM")
	}
	d.Set(resources.DiskIO, 50)
	v2 := vjob.NewVMRes("v2", "j", d)
	cfg.AddVM(v2)
	if !cfg.Fits(v2, "n1") {
		t.Fatal("fitting VM rejected")
	}
}

// TestPressureOverExtraDimensions: the partitioner's seam metric is
// the max over dimensions — an atom overloaded only on net reads as
// overloaded, one with headroom everywhere reads negative.
func TestPressureOverExtraDimensions(t *testing.T) {
	tot := resources.New(100, 1000)
	tot.Set(resources.NetBW, 500)
	hot := &atom{cap: resources.New(10, 100), dem: resources.New(5, 50)}
	hot.cap.Set(resources.NetBW, 50)
	hot.dem.Set(resources.NetBW, 80) // +30 of 500 total
	if p := hot.pressure(tot); p <= 0 {
		t.Fatalf("net-overloaded atom pressure = %v", p)
	}
	cool := &atom{cap: resources.New(10, 100), dem: resources.New(5, 50)}
	cool.cap.Set(resources.NetBW, 50)
	cool.dem.Set(resources.NetBW, 10)
	if p := cool.pressure(tot); p >= 0 {
		t.Fatalf("cool atom pressure = %v", p)
	}
	// A dimension the cluster does not offer is skipped, not a NaN.
	if p := cool.pressure(resources.New(100, 1000)); p >= 0 {
		t.Fatalf("pressure with missing totals = %v", p)
	}
}
