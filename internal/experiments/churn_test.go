package experiments

import (
	"strings"
	"testing"
	"time"
)

// quickChurnOptions shrinks the scenario so the comparison runs in
// seconds: a 32-node cluster, short workloads, a brief arrival window.
func quickChurnOptions() ChurnOptions {
	return ChurnOptions{
		Nodes: 64, NodeCPU: 2, NodeMemory: 4096,
		InitialVJobs: 6, VMsPerVJob: 4,
		ArrivalRate: 1.0 / 40, ArrivalStop: 200,
		WorkScale: 0.2,
		Horizon:   2000,
		Interval:  30, Debounce: 5,
		Timeout:     100 * time.Millisecond,
		FailureRate: 0.05,
		Seed:        7,
		// Sequential search: a portfolio race under a sub-second
		// budget would make the comparative assertions (and the
		// CI-gated BenchmarkChurnLoop* numbers) timing- and
		// core-count-dependent.
		Workers: 1,
	}
}

func TestChurnBothModesConverge(t *testing.T) {
	if testing.Short() {
		t.Skip("churn study solves repeatedly")
	}
	opts := quickChurnOptions()
	rows := ChurnStudy(opts)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	periodic, event := rows[0], rows[1]

	for _, r := range rows {
		if r.FinalViolations != 0 {
			t.Errorf("%s ended with %d capacity violations", r.Mode, r.FinalViolations)
		}
		if r.Arrived == 0 || r.Completed == 0 {
			t.Errorf("%s: arrived=%d completed=%d", r.Mode, r.Arrived, r.Completed)
		}
	}
	// Identical scenario on both sides.
	if periodic.Arrived != event.Arrived {
		t.Fatalf("scenarios diverged: %d vs %d arrivals", periodic.Arrived, event.Arrived)
	}
	// The event-driven loop must react to events rather than poll.
	if event.Stats.Events == 0 {
		t.Error("event-driven run observed no events")
	}
	if event.Stats.SolverCalls == 0 || periodic.Stats.SolverCalls == 0 {
		t.Fatalf("no solver calls: periodic=%+v event=%+v", periodic.Stats, event.Stats)
	}
	// The headline claims, on the comparable unit (sub-problem
	// optimizations): the event-driven loop spends fewer solves and
	// is exposed to violations for less time, at equal per-solve
	// budget. The quick scenario keeps healthy margins on both.
	if event.Stats.SubSolves >= periodic.Stats.SubSolves {
		t.Errorf("event-driven used %d sub-solves vs periodic %d",
			event.Stats.SubSolves, periodic.Stats.SubSolves)
	}
	if event.ViolationSeconds > periodic.ViolationSeconds {
		t.Errorf("event-driven violation-seconds %.0f vs periodic %.0f",
			event.ViolationSeconds, periodic.ViolationSeconds)
	}
	t.Logf("periodic: %+v viol=%.0f", periodic.Stats, periodic.ViolationSeconds)
	t.Logf("event:    %+v viol=%.0f", event.Stats, event.ViolationSeconds)
}

// TestChurnRemediationReconciles checks the span-derived remediation
// columns against monitor.WatchRecovery: aligned episode counts, and
// remediation <= recovery per episode (the reconfiguration span is
// clamped to the violation episode it closed).
func TestChurnRemediationReconciles(t *testing.T) {
	if testing.Short() {
		t.Skip("churn study solves repeatedly")
	}
	opts := quickChurnOptions()
	r := RunChurn(true, opts)

	if r.Episodes == 0 {
		t.Fatal("quick churn scenario produced no violation episodes")
	}
	if len(r.Recoveries) != r.Episodes || len(r.Remediations) != r.Episodes {
		t.Fatalf("episodes = %d but %d recoveries, %d remediations",
			r.Episodes, len(r.Recoveries), len(r.Remediations))
	}
	if r.MatchedEpisodes < 1 {
		t.Error("no episode matched a reconfiguration span")
	}
	if r.MatchedEpisodes > r.Episodes {
		t.Errorf("matched %d of %d episodes", r.MatchedEpisodes, r.Episodes)
	}
	for i := range r.Remediations {
		if r.Remediations[i] < 0 || r.Remediations[i] > r.Recoveries[i] {
			t.Errorf("episode %d: remediation %.1f outside [0, recovery %.1f]",
				i, r.Remediations[i], r.Recoveries[i])
		}
	}
	if r.RemediationMax < r.RemediationP95 || r.RemediationP95 < r.RemediationP50 {
		t.Errorf("quantiles not ordered: p50=%.1f p95=%.1f max=%.1f",
			r.RemediationP50, r.RemediationP95, r.RemediationMax)
	}
	// Span retention follows CollectSpans.
	if len(r.Spans) != 0 {
		t.Errorf("spans retained without CollectSpans: %d", len(r.Spans))
	}
	opts.CollectSpans = true
	r2 := RunChurn(true, opts)
	if len(r2.Spans) == 0 {
		t.Fatal("CollectSpans retained nothing")
	}
	// The tracer adds no randomness: the seeded scenario is unchanged.
	if r2.Episodes != r.Episodes || r2.Arrived != r.Arrived || r2.Stats != r.Stats {
		t.Errorf("span retention perturbed the run: %+v vs %+v", r2.Stats, r.Stats)
	}
}

// benchChurn runs one mode of the quick scenario, reporting the
// study's own metrics alongside ns/op.
func benchChurn(b *testing.B, eventDriven bool) {
	opts := quickChurnOptions()
	var last ChurnResult
	for i := 0; i < b.N; i++ {
		last = RunChurn(eventDriven, opts)
	}
	b.ReportMetric(float64(last.Stats.SubSolves), "sub-solves")
	b.ReportMetric(last.ViolationSeconds, "viol-sec")
	if last.FinalViolations != 0 {
		b.Fatalf("%s run ended with violations", last.Mode)
	}
}

func BenchmarkChurnLoopPeriodic(b *testing.B) { benchChurn(b, false) }
func BenchmarkChurnLoopEvent(b *testing.B)    { benchChurn(b, true) }

func TestChurnRendering(t *testing.T) {
	rows := []ChurnResult{
		{Mode: "periodic", Switches: 10, ViolationSeconds: 1234},
		{Mode: "event-driven", Switches: 4, ViolationSeconds: 321},
	}
	rows[0].Stats.SubSolves = 100
	rows[1].Stats.SubSolves = 20
	table := ChurnTable(rows)
	if !strings.Contains(table, "periodic") || !strings.Contains(table, "event-driven") {
		t.Fatalf("table:\n%s", table)
	}
	if !strings.Contains(table, "5.0x fewer") {
		t.Fatalf("table missing the ratio line:\n%s", table)
	}
	csv := ChurnCSV(rows)
	if !strings.HasPrefix(csv, "mode,sub_solves") || len(strings.Split(strings.TrimSpace(csv), "\n")) != 3 {
		t.Fatalf("csv:\n%s", csv)
	}
}
