package core

import (
	"fmt"

	"cwcs/internal/plan"
)

// EventKind classifies what changed in the cluster.
type EventKind int

const (
	// VMArrival: new VMs entered the queue (a vjob was submitted).
	VMArrival EventKind = iota
	// VMDeparture: VMs left the system (a vjob terminated).
	VMDeparture
	// LoadChange: a VM's observed demand shifted (phase advance,
	// workload completion).
	LoadChange
	// NodeDown: a node became unavailable.
	NodeDown
	// NodeUp: a node (re)joined the cluster.
	NodeUp
	// ActionFailure: an action of the executing plan failed to apply.
	ActionFailure
)

// String names the kind for logs and telemetry.
func (k EventKind) String() string {
	switch k {
	case VMArrival:
		return "vm-arrival"
	case VMDeparture:
		return "vm-departure"
	case LoadChange:
		return "load-change"
	case NodeDown:
		return "node-down"
	case NodeUp:
		return "node-up"
	case ActionFailure:
		return "action-failure"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// ParseEventKind maps the String name of a kind back to the kind: the
// wire format of the control plane's POST /v1/events.
func ParseEventKind(s string) (EventKind, error) {
	for _, k := range []EventKind{VMArrival, VMDeparture, LoadChange, NodeDown, NodeUp, ActionFailure} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("core: unknown event kind %q", s)
}

// Event is one cluster change fed into the event-driven loop
// (Loop.Notify): the kind, when it happened, and which nodes and VMs
// it touches. The touched elements seed the loop's dirty-set; the
// slices of the cluster containing them are the only ones re-solved.
type Event struct {
	Kind  EventKind
	At    float64
	Nodes []string
	VMs   []string
}

// FailureEvent describes a failed action as an event: the manipulated
// VM and every node the action read or wrote resources on go dirty.
func FailureEvent(at float64, a plan.Action) Event {
	return Event{Kind: ActionFailure, At: at, Nodes: plan.TouchedNodes(a), VMs: []string{a.VM().Name}}
}

// dirtySet accumulates the nodes and VMs touched by events since the
// last incremental iteration. Events landing in the same partition
// slice coalesce naturally: the set only records elements, and slice
// selection walks it once per wake-up.
type dirtySet struct {
	nodes map[string]bool
	vms   map[string]bool
}

func (d *dirtySet) add(ev Event) {
	if d.nodes == nil {
		d.nodes = make(map[string]bool)
		d.vms = make(map[string]bool)
	}
	for _, n := range ev.Nodes {
		d.nodes[n] = true
	}
	for _, v := range ev.VMs {
		d.vms[v] = true
	}
}

// addSets re-merges previously taken sets (a failed repair puts its
// region back).
func (d *dirtySet) addSets(nodes, vms map[string]bool) {
	if d.nodes == nil {
		d.nodes = make(map[string]bool)
		d.vms = make(map[string]bool)
	}
	for n := range nodes {
		d.nodes[n] = true
	}
	for v := range vms {
		d.vms[v] = true
	}
}

func (d *dirtySet) empty() bool { return len(d.nodes) == 0 && len(d.vms) == 0 }

// take returns the accumulated sets and resets the dirty-set.
func (d *dirtySet) take() (nodes, vms map[string]bool) {
	nodes, vms = d.nodes, d.vms
	d.nodes, d.vms = nil, nil
	if nodes == nil {
		nodes = map[string]bool{}
	}
	if vms == nil {
		vms = map[string]bool{}
	}
	return nodes, vms
}

// Execution is a handle on an in-flight managed plan execution
// (drivers.Execution implements it).
type Execution interface {
	// Remaining returns the pools that have not started, rooted at the
	// live configuration.
	Remaining() *plan.Plan
	// Splice replaces the pools that have not started with those of
	// the given plan (a plan.Repair output).
	Splice(*plan.Plan) error
	// Plan returns the plan as currently scheduled: the executed
	// prefix plus the (possibly spliced) remainder.
	Plan() *plan.Plan
	// Finished reports whether the last pool completed.
	Finished() bool
}

// ManagedActuator is an Actuator whose executions can be observed and
// repaired mid-flight. The event-driven loop uses it when available:
// onFailure fires at the instant an action fails, onPoolDone at every
// pool boundary (the safe splice point), and done as in Execute.
type ManagedActuator interface {
	Actuator
	ExecuteManaged(p *plan.Plan, onFailure func(plan.Action, error), onPoolDone func(), done func(duration float64, failures int)) Execution
}
