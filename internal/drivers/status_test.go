package drivers

import (
	"testing"

	"cwcs/internal/plan"
	"cwcs/internal/vjob"
)

// TestExecutionStatusTracksActionLifecycle: the per-action status the
// control plane serves — pending before the pool starts, running in
// flight, done/failed afterwards, with virtual timestamps.
func TestExecutionStatusTracksActionLifecycle(t *testing.T) {
	c := newSim(t, 3, 2, 4096)
	cfg := c.Config()
	vm1 := vjob.NewVM("vm1", "a", 1, 1024)
	vm2 := vjob.NewVM("vm2", "b", 1, 1024)
	cfg.AddVM(vm1)
	cfg.AddVM(vm2)
	if err := cfg.SetRunning("vm1", "n00"); err != nil {
		t.Fatal(err)
	}
	if err := cfg.SetRunning("vm2", "n01"); err != nil {
		t.Fatal(err)
	}
	p := &plan.Plan{Src: cfg.Clone(), Pools: []plan.Pool{
		{&plan.Migration{Machine: vm1, Src: "n00", Dst: "n02"}},
		{&plan.Migration{Machine: vm2, Src: "n01", Dst: "n00"}},
	}}

	e := Start(c, p, Callbacks{})
	st := e.Status()
	if len(st) != 2 {
		t.Fatalf("%d statuses", len(st))
	}
	if st[1].Phase != ActionPending || st[1].Pool != 1 {
		t.Fatalf("pool-1 action before start: %+v", st[1])
	}

	// Advance into pool 0: its migration is running, pool 1 pending.
	c.Run(1)
	st = e.Status()
	if st[0].Phase != ActionRunning || st[0].VM != "vm1" {
		t.Fatalf("pool-0 action mid-flight: %+v", st[0])
	}
	if st[0].Action == "" {
		t.Fatal("action rendering empty")
	}
	if st[1].Phase != ActionPending {
		t.Fatalf("pool-1 started early: %+v", st[1])
	}

	// Run to completion: both done, with ordered timestamps.
	c.Run(10_000)
	if !e.Finished() {
		t.Fatal("execution not finished")
	}
	st = e.Status()
	for i, a := range st {
		if a.Phase != ActionDone {
			t.Fatalf("action %d: %+v", i, a)
		}
		if a.Ended < a.Started {
			t.Fatalf("action %d timestamps: %+v", i, a)
		}
	}
	if st[1].Started < st[0].Ended {
		t.Fatal("pool 1 started before pool 0 completed")
	}
}

// TestExecutionStatusRecordsFailure: a failing action surfaces as
// ActionFailed with its error message.
func TestExecutionStatusRecordsFailure(t *testing.T) {
	c := newSim(t, 2, 2, 4096)
	cfg := c.Config()
	vm1 := vjob.NewVM("vm1", "a", 1, 1024)
	cfg.AddVM(vm1)
	if err := cfg.SetRunning("vm1", "n00"); err != nil {
		t.Fatal(err)
	}
	c.FailAction = func(a plan.Action) error {
		return errInjected
	}
	p := &plan.Plan{Src: cfg.Clone(), Pools: []plan.Pool{
		{&plan.Migration{Machine: vm1, Src: "n00", Dst: "n01"}},
	}}
	e := Start(c, p, Callbacks{})
	c.Run(10_000)
	st := e.Status()
	if len(st) != 1 || st[0].Phase != ActionFailed {
		t.Fatalf("statuses: %+v", st)
	}
	if st[0].Err == "" {
		t.Fatal("failure message lost")
	}
}

var errInjected = errInjectedType{}

type errInjectedType struct{}

func (errInjectedType) Error() string { return "injected failure" }

func TestActionPhaseStrings(t *testing.T) {
	for phase, want := range map[ActionPhase]string{
		ActionPending: "pending", ActionRunning: "running",
		ActionDone: "done", ActionFailed: "failed", ActionPhase(42): "phase(42)",
	} {
		if got := phase.String(); got != want {
			t.Fatalf("%d: %q (want %q)", int(phase), got, want)
		}
	}
}
