// Package packing provides the placement heuristics and the knapsack
// reasoning the paper relies on: the First-Fit-Decrease heuristic used
// by the sample decision module (§3.2) and by the baseline planner of
// the §5.1 evaluation, a Best-Fit-Decrease variant for ablation, and a
// dynamic-programming subset-sum bound in the spirit of Trick's
// knapsack propagation (§4.3) used by the constraint solver.
package packing

import (
	"fmt"
	"sort"

	"cwcs/internal/resources"
	"cwcs/internal/vjob"
)

// ErrNoFit is wrapped by placement errors when a VM fits on no node.
type ErrNoFit struct {
	// VM is the machine that could not be placed.
	VM *vjob.VM
}

// Error describes the unplaceable VM.
func (e ErrNoFit) Error() string {
	return fmt.Sprintf("packing: no node can host %s", e.VM)
}

// SortDecreasing orders VMs by decreasing memory demand, then
// decreasing CPU demand, then name — the FFD ordering of §3.2. The
// slice is sorted in place and returned for chaining.
func SortDecreasing(vms []*vjob.VM) []*vjob.VM {
	sort.SliceStable(vms, func(i, j int) bool {
		if vms[i].MemoryDemand() != vms[j].MemoryDemand() {
			return vms[i].MemoryDemand() > vms[j].MemoryDemand()
		}
		if vms[i].CPUDemand() != vms[j].CPUDemand() {
			return vms[i].CPUDemand() > vms[j].CPUDemand()
		}
		return vms[i].Name < vms[j].Name
	})
	return vms
}

// SortByDominantShare orders VMs by decreasing dominant-resource score
// — each VM's largest per-dimension share of the cluster capacity —
// breaking ties by the §3.2 (memory, CPU, name) ordering. On
// heterogeneous multi-dimensional workloads the score keeps a
// net-hungry VM ahead of a slightly larger-in-memory compute VM, which
// is what makes first-fit competitive across dimensions (DRF-style
// packing). The slice is sorted in place and returned for chaining.
func SortByDominantShare(total resources.Vector, vms []*vjob.VM) []*vjob.VM {
	sort.SliceStable(vms, func(i, j int) bool {
		si, sj := vms[i].Demand.DominantShare(total), vms[j].Demand.DominantShare(total)
		if si != sj {
			return si > sj
		}
		if vms[i].MemoryDemand() != vms[j].MemoryDemand() {
			return vms[i].MemoryDemand() > vms[j].MemoryDemand()
		}
		if vms[i].CPUDemand() != vms[j].CPUDemand() {
			return vms[i].CPUDemand() > vms[j].CPUDemand()
		}
		return vms[i].Name < vms[j].Name
	})
	return vms
}

// orderForPacking picks the decreasing order for a packing pass: the
// paper's (memory, CPU) ordering on pure 2-D instances — bit-for-bit
// the published FFD — and the weighted dominant-resource score as soon
// as any node or VM uses an extra dimension.
func orderForPacking(c *vjob.Configuration, vms []*vjob.VM) []*vjob.VM {
	ordered := append([]*vjob.VM(nil), vms...)
	var total resources.Vector
	multi := false
	for _, n := range c.Nodes() {
		total = total.Add(n.Capacity)
		multi = multi || n.Capacity.HasExtra()
	}
	if !multi {
		for _, v := range vms {
			if v.Demand.HasExtra() {
				multi = true
				break
			}
		}
	}
	if multi {
		return SortByDominantShare(total, ordered)
	}
	return SortDecreasing(ordered)
}

// FirstFitDecrease places every VM of vms as Running in c using the
// First Fit Decrease heuristic: VMs are considered in decreasing order
// — (memory, CPU) on 2-D instances, dominant-resource score when extra
// dimensions are in play — and assigned to the first node with
// sufficient free resources on every dimension. The configuration is
// mutated; on failure it is left untouched and an ErrNoFit is
// returned. Free resources are tracked incrementally, so a full pass
// costs O(nodes·VMs) rather than the quadratic rescans of
// Configuration.Fits.
func FirstFitDecrease(c *vjob.Configuration, vms []*vjob.VM) error {
	ordered := orderForPacking(c, vms)
	free := c.FreeResources()
	nodes := c.Nodes()
	assigned := make(map[string]string, len(vms))
	for _, v := range ordered {
		placed := false
		for _, n := range nodes {
			if v.Demand.Fits(free[n.Name]) {
				free[n.Name] = free[n.Name].Sub(v.Demand)
				assigned[v.Name] = n.Name
				placed = true
				break
			}
		}
		if !placed {
			return ErrNoFit{VM: v}
		}
		creditOldHost(c, v, free)
	}
	return commit(c, assigned, vms)
}

// BestFitDecrease is the ablation variant: same ordering, but each VM
// goes to the fitting node with the LEAST remaining memory, keeping
// large holes available for large VMs.
func BestFitDecrease(c *vjob.Configuration, vms []*vjob.VM) error {
	ordered := orderForPacking(c, vms)
	free := c.FreeResources()
	nodes := c.Nodes()
	assigned := make(map[string]string, len(vms))
	for _, v := range ordered {
		best := ""
		bestFree := -1
		for _, n := range nodes {
			if !v.Demand.Fits(free[n.Name]) {
				continue
			}
			if freeMem := free[n.Name].Get(resources.Memory); best == "" || freeMem < bestFree {
				best, bestFree = n.Name, freeMem
			}
		}
		if best == "" {
			return ErrNoFit{VM: v}
		}
		free[best] = free[best].Sub(v.Demand)
		assigned[v.Name] = best
		creditOldHost(c, v, free)
	}
	return commit(c, assigned, vms)
}

// creditOldHost returns the resources a just-re-placed VM was consuming
// on its current host to the free pool: the commit will move it, so
// later VMs of the same pass may use the space (the behavior of the
// former clone-based implementation).
func creditOldHost(c *vjob.Configuration, v *vjob.VM, free map[string]resources.Vector) {
	if host := c.HostOf(v.Name); host != "" {
		free[host] = free[host].Add(v.Demand)
	}
}

// commit applies the computed placements to c.
func commit(c *vjob.Configuration, assigned map[string]string, vms []*vjob.VM) error {
	for _, v := range vms {
		if err := c.SetRunning(v.Name, assigned[v.Name]); err != nil {
			return err
		}
	}
	return nil
}

// MaxReachableLoad returns the largest subset-sum of weights that does
// not exceed cap, computed with the dynamic-programming reachability
// of Trick's knapsack propagation. The solver uses it to bound the
// load a node can still accept: a partial packing whose reachable
// loads cannot absorb the remaining mandatory demand is dead and can
// be pruned.
func MaxReachableLoad(cap int, weights []int) int {
	if cap <= 0 {
		return 0
	}
	// Bitset DP: bit i set <=> load i reachable.
	words := cap/64 + 1
	reach := make([]uint64, words)
	reach[0] = 1
	for _, w := range weights {
		if w <= 0 {
			continue
		}
		if w > cap {
			continue
		}
		shiftOrInto(reach, w, cap)
	}
	for i := cap; i >= 0; i-- {
		if reach[i/64]&(1<<uint(i%64)) != 0 {
			return i
		}
	}
	return 0
}

// shiftOrInto performs reach |= reach << w, truncated to cap+1 bits.
func shiftOrInto(reach []uint64, w, cap int) {
	words := len(reach)
	wordShift := w / 64
	bitShift := uint(w % 64)
	for i := words - 1; i >= 0; i-- {
		var v uint64
		if i-wordShift >= 0 {
			v = reach[i-wordShift] << bitShift
			if bitShift > 0 && i-wordShift-1 >= 0 {
				v |= reach[i-wordShift-1] >> (64 - bitShift)
			}
		}
		reach[i] |= v
	}
	// Mask bits above cap.
	last := cap / 64
	reach[last] &= (1 << uint(cap%64+1)) - 1
	for i := last + 1; i < words; i++ {
		reach[i] = 0
	}
}

// Reachable reports whether some subset of weights sums exactly to
// target (a helper for tests and for exact-fit reasoning).
func Reachable(target int, weights []int) bool {
	if target < 0 {
		return false
	}
	if target == 0 {
		return true
	}
	reach := make([]uint64, target/64+1)
	reach[0] = 1
	for _, w := range weights {
		if w <= 0 || w > target {
			continue
		}
		shiftOrInto(reach, w, target)
	}
	return reach[target/64]&(1<<uint(target%64)) != 0
}
