package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"cwcs/internal/core"
	"cwcs/internal/duration"
	"cwcs/internal/plan"
	"cwcs/internal/sched"
	"cwcs/internal/sim"
	"cwcs/internal/trace"
	"cwcs/internal/vjob"
	"cwcs/internal/workload"
)

// Fig1 replays the backfilling schematic: the same four jobs under
// strict FCFS, EASY backfilling, and EASY with preemption, rendered as
// Gantt diagrams with makespan and wasted processor time.
func Fig1() string {
	jobs := []sched.BatchJob{
		{ID: "1", Procs: 2, Runtime: 2, Estimate: 2},
		{ID: "2", Procs: 4, Runtime: 3, Estimate: 3},
		{ID: "3", Procs: 1, Runtime: 2, Estimate: 2},
		{ID: "4", Procs: 1, Runtime: 4, Estimate: 4},
	}
	const procs = 4
	var b strings.Builder
	b.WriteString("Figure 1 — backfilling limitations (4 jobs, 4 processors)\n\n")
	b.WriteString("(a->b) FCFS + EASY backfilling vs plain FCFS:\n\n")
	b.WriteString("FCFS:\n" + sched.FCFS(jobs, procs).Gantt() + "\n")
	b.WriteString("EASY backfilling:\n" + sched.EASY(jobs, procs).Gantt() + "\n")
	b.WriteString("(c) EASY backfilling + preemption (the 4th job starts sooner):\n\n")
	b.WriteString(sched.EASYPreempt(jobs, procs).Gantt())
	return b.String()
}

// Table1 renders the action cost model for a sample VM, one row per
// action, exactly the shape of Table 1.
func Table1(memMiB int) string {
	vm := vjob.NewVM("vmj", "job", 1, memMiB)
	rows := []struct {
		action string
		cost   int
	}{
		{"migrate(vmj)", (&plan.Migration{Machine: vm, Src: "n1", Dst: "n2"}).Cost()},
		{"run(vmj)", (&plan.Run{Machine: vm, On: "n1"}).Cost()},
		{"stop(vmj)", (&plan.Stop{Machine: vm, On: "n1"}).Cost()},
		{"suspend(vmj)", (&plan.Suspend{Machine: vm, On: "n1", To: "n1"}).Cost()},
		{"resume(vmj) local", (&plan.Resume{Machine: vm, From: "n1", On: "n1"}).Cost()},
		{"resume(vmj) remote", (&plan.Resume{Machine: vm, From: "n1", On: "n2"}).Cost()},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 — action costs for Dm(vmj) = %d MiB\n", memMiB)
	fmt.Fprintf(&b, "%-22s %s\n", "Action", "Cost")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %d\n", r.action, r.cost)
	}
	return b.String()
}

// Fig3Row is one memory size of the Figure 3 study. Durations are in
// seconds, measured by executing the actions in the simulator with a
// busy 1 GiB VM co-hosted on the manipulated node, exactly like §2.3.
type Fig3Row struct {
	MemMiB                                 int
	Run, Stop, Migrate                     float64
	SuspendLocal, SuspendSCP, SuspendRsync float64
	ResumeLocal, ResumeSCP, ResumeRsync    float64
	// DecelBusy is the measured slowdown factor of the busy VM during
	// the local suspend (paper: ~1.3 local, ~1.5 remote).
	DecelBusyLocal, DecelBusyRemote float64
}

// Fig3 measures each VM context-switch operation for the paper's
// memory sizes.
func Fig3(sizes ...int) []Fig3Row {
	if len(sizes) == 0 {
		sizes = []int{512, 1024, 2048}
	}
	rows := make([]Fig3Row, 0, len(sizes))
	for _, mem := range sizes {
		r := Fig3Row{MemMiB: mem}
		r.Run = measure(mem, false, func(c *sim.Cluster, v *vjob.VM) plan.Action {
			return &plan.Run{Machine: v, On: "node"}
		})
		r.Stop = measure(mem, true, func(c *sim.Cluster, v *vjob.VM) plan.Action {
			return &plan.Stop{Machine: v, On: "node"}
		})
		r.Migrate = measure(mem, true, func(c *sim.Cluster, v *vjob.VM) plan.Action {
			return &plan.Migration{Machine: v, Src: "node", Dst: "peer"}
		})
		r.SuspendLocal = measure(mem, true, func(c *sim.Cluster, v *vjob.VM) plan.Action {
			return &plan.Suspend{Machine: v, On: "node", To: "node"}
		})
		r.SuspendSCP = measure(mem, true, func(c *sim.Cluster, v *vjob.VM) plan.Action {
			return &plan.Suspend{Machine: v, On: "node", To: "peer"}
		})
		r.ResumeLocal = measureResume(mem, true)
		r.ResumeSCP = measureResume(mem, false)
		// rsync transfers through the model directly (the simulator's
		// remote path models scp, the paper's default).
		m := duration.Default()
		r.SuspendRsync = m.Suspend(mem, duration.Rsync).Seconds()
		r.ResumeRsync = m.Resume(mem, duration.Rsync).Seconds()
		r.DecelBusyLocal = measureDecel(mem, false)
		r.DecelBusyRemote = measureDecel(mem, true)
		rows = append(rows, r)
	}
	return rows
}

// fig3Cluster builds the two-node §2.3 testbed with a busy stress VM.
func fig3Cluster(mem int, running bool) (*sim.Cluster, *vjob.VM) {
	cfg := vjob.NewConfiguration()
	cfg.AddNode(vjob.NewNode("node", 2, 8192))
	cfg.AddNode(vjob.NewNode("peer", 2, 8192))
	busy := vjob.NewVM("busy", "stress", 1, 1024)
	cfg.AddVM(busy)
	_ = cfg.SetRunning("busy", "node")
	c := sim.New(cfg, duration.Default())
	c.SetWorkload("busy", []sim.Phase{{CPU: 1, Seconds: 1e9}})
	v := vjob.NewVM("victim", "probe", 1, mem)
	cfg.AddVM(v)
	if running {
		_ = cfg.SetRunning("victim", "node")
	}
	return c, v
}

func measure(mem int, running bool, mk func(*sim.Cluster, *vjob.VM) plan.Action) float64 {
	c, v := fig3Cluster(mem, running)
	done := -1.0
	c.StartAction(mk(c, v), func(error) { done = c.Now() })
	c.Run(1e6)
	return done
}

func measureResume(mem int, local bool) float64 {
	c, v := fig3Cluster(mem, false)
	_ = c.Config().SetSleeping("victim", "node")
	on := "node"
	if !local {
		on = "peer"
	}
	done := -1.0
	c.StartAction(&plan.Resume{Machine: v, From: "node", On: on}, func(error) { done = c.Now() })
	c.Run(1e6)
	return done
}

// measureDecel measures the busy VM's slowdown during a suspend.
func measureDecel(mem int, remote bool) float64 {
	c, v := fig3Cluster(mem, true)
	to := "node"
	if remote {
		to = "peer"
	}
	factor := 0.0
	c.StartAction(&plan.Suspend{Machine: v, On: "node", To: to}, func(error) {
		// Slowdown = elapsed wall time / work actually performed,
		// both measured over exactly the operation window.
		if progressed := 1e9 - c.RemainingWork("busy"); progressed > 0 {
			factor = c.Now() / progressed
		}
	})
	c.Run(1e6)
	return factor
}

// Fig3Table renders the rows.
func Fig3Table(rows []Fig3Row) string {
	var b strings.Builder
	b.WriteString("Figure 3 — duration of each VM context switch (seconds) vs. memory\n")
	fmt.Fprintf(&b, "%6s %6s %6s %8s | %8s %8s %8s | %8s %8s %8s | %6s %6s\n",
		"mem", "run", "stop", "migrate", "sus-loc", "sus-scp", "sus-rsy", "res-loc", "res-scp", "res-rsy", "dec-l", "dec-r")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %6.1f %6.1f %8.1f | %8.1f %8.1f %8.1f | %8.1f %8.1f %8.1f | %6.2f %6.2f\n",
			r.MemMiB, r.Run, r.Stop, r.Migrate,
			r.SuspendLocal, r.SuspendSCP, r.SuspendRsync,
			r.ResumeLocal, r.ResumeSCP, r.ResumeRsync,
			r.DecelBusyLocal, r.DecelBusyRemote)
	}
	return b.String()
}

// Fig10Options parameterizes the scalability study.
type Fig10Options struct {
	// VMCounts are the x-axis points (paper: 54..486 step 54).
	VMCounts []int
	// Samples per count (paper: 30).
	Samples int
	// Timeout per Entropy optimization (paper: 40 s).
	Timeout time.Duration
	// Nodes/NodeCPU/NodeMemory describe the cluster (paper: 200 × 2
	// CPU × 4 GiB).
	Nodes, NodeCPU, NodeMemory int
	// Seed makes the study reproducible.
	Seed int64
	// Workers is the optimizer's portfolio width (0 = GOMAXPROCS).
	Workers int
	// Partitions is the optimizer's decomposition width (0 = auto,
	// 1 = monolithic).
	Partitions int
}

// DefaultFig10Options returns the paper's parameters. Partitions is
// pinned to 1: the published figure measures the monolithic model (the
// partitioned solve is this repo's extension, measured by the
// PartitionStudy instead).
func DefaultFig10Options() Fig10Options {
	return Fig10Options{
		VMCounts: []int{54, 108, 162, 216, 270, 324, 378, 432, 486},
		Samples:  30,
		Timeout:  40 * time.Second,
		Nodes:    200, NodeCPU: 2, NodeMemory: 4096,
		Seed:       1,
		Partitions: 1,
	}
}

// Fig10Row aggregates one VM count.
type Fig10Row struct {
	VMs                  int
	Samples              int
	FFDMean, EntropyMean float64
	// ReductionPct is how much cheaper Entropy's plans are (paper:
	// ~95% on average).
	ReductionPct float64
}

// Fig10 runs the §5.1 study: for each configuration sample, the RJSP
// decision is computed once, then the FFD heuristic and the Entropy
// optimizer plan the same reconfiguration; their §4.2 plan costs are
// compared.
func Fig10(opts Fig10Options) []Fig10Row {
	rng := rand.New(rand.NewSource(opts.Seed))
	rows := make([]Fig10Row, 0, len(opts.VMCounts))
	for _, n := range opts.VMCounts {
		row := Fig10Row{VMs: n}
		var ffdSum, entSum float64
		for s := 0; s < opts.Samples; s++ {
			g := workload.GenerateConfiguration(rng, workload.GenerateOptions{
				Nodes: opts.Nodes, NodeCPU: opts.NodeCPU, NodeMemory: opts.NodeMemory, VMs: n,
			})
			target := sched.Consolidation{}.Decide(g.Cfg, g.Jobs)
			problem := core.Problem{Src: g.Cfg, Target: target}
			ffd, err1 := core.FFDPlan(problem)
			ent, err2 := core.Optimizer{Timeout: opts.Timeout, Workers: opts.Workers, Partitions: opts.Partitions}.Solve(problem)
			if err1 != nil || err2 != nil {
				continue
			}
			row.Samples++
			ffdSum += float64(ffd.Cost)
			entSum += float64(ent.Cost)
		}
		if row.Samples > 0 {
			row.FFDMean = ffdSum / float64(row.Samples)
			row.EntropyMean = entSum / float64(row.Samples)
			if row.FFDMean > 0 {
				row.ReductionPct = 100 * (1 - row.EntropyMean/row.FFDMean)
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// Fig10Table renders the rows plus an ASCII plot of both series.
func Fig10Table(rows []Fig10Row) string {
	var b strings.Builder
	b.WriteString("Figure 10 — reconfiguration cost, 200-node configurations\n")
	fmt.Fprintf(&b, "%6s %8s %14s %14s %10s\n", "VMs", "samples", "FFD mean", "Entropy mean", "reduction")
	p := trace.NewPlot("reconfiguration cost vs #VMs", "VMs", "cost")
	ffd := p.AddSeries("First Fit Decrease")
	ent := p.AddSeries("Entropy")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %8d %14.0f %14.0f %9.1f%%\n", r.VMs, r.Samples, r.FFDMean, r.EntropyMean, r.ReductionPct)
		ffd.Add(float64(r.VMs), r.FFDMean)
		ent.Add(float64(r.VMs), r.EntropyMean)
	}
	b.WriteString("\n")
	b.WriteString(p.Render(60, 14))
	return b.String()
}

// Fig11Table renders the cost/duration scatter of the context switches
// of a cluster run.
func Fig11Table(res ClusterResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11 — cost and duration of the %d cluster-wide context switches\n", len(res.Records))
	fmt.Fprintf(&b, "%10s %12s %8s %6s\n", "cost", "duration_s", "actions", "pools")
	p := trace.NewPlot("context-switch duration vs cost", "cost", "seconds")
	s := p.AddSeries("switches")
	for _, r := range res.Records {
		fmt.Fprintf(&b, "%10d %12.1f %8d %6d\n", r.Cost, r.Duration, r.Actions, r.Pools)
		s.Add(float64(r.Cost), r.Duration)
	}
	fmt.Fprintf(&b, "mean duration: %.1f s\n\n", res.MeanSwitchDuration())
	b.WriteString(p.Render(60, 12))
	return b.String()
}

// Fig13Table compares the utilization series and completion times of
// the FCFS baseline and the Entropy run.
func Fig13Table(fcfs, entropy ClusterResult) string {
	var b strings.Builder
	b.WriteString("Figure 13 — resource utilization, Entropy vs FCFS\n\n")
	mem := trace.NewPlot("(a) memory utilization", "time (s)", "GiB")
	cpu := trace.NewPlot("(b) CPU utilization", "time (s)", "%")
	em := mem.AddSeries("Entropy")
	fm := mem.AddSeries("FCFS")
	ec := cpu.AddSeries("Entropy")
	fc := cpu.AddSeries("FCFS")
	for _, s := range entropy.Samples {
		em.Add(s.T, s.MemGiB())
		ec.Add(s.T, s.CPUPercent())
	}
	for _, s := range fcfs.Samples {
		fm.Add(s.T, s.MemGiB())
		fc.Add(s.T, s.CPUPercent())
	}
	b.WriteString(mem.Render(64, 12))
	b.WriteString("\n")
	b.WriteString(cpu.Render(64, 12))
	fmt.Fprintf(&b, "\nglobal completion: FCFS %.0f s (%.1f min), Entropy %.0f s (%.1f min), reduction %.0f%%\n",
		fcfs.Completion, fcfs.Completion/60, entropy.Completion, entropy.Completion/60,
		100*(1-entropy.Completion/fcfs.Completion))
	fmt.Fprintf(&b, "mean context-switch duration (Entropy): %.0f s\n", entropy.MeanSwitchDuration())
	fmt.Fprintf(&b, "transfers (Entropy): %d local, %d remote\n", entropy.LocalOps, entropy.RemoteOps)
	return b.String()
}
