package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestFig10Options(t *testing.T) {
	full := fig10Options(false, 7, 2, 1)
	if full.Samples != 30 || full.Timeout != 40*time.Second {
		t.Fatalf("full options = %+v, want the paper's 30 samples x 40s", full)
	}
	if full.Seed != 7 {
		t.Fatal("seed not forwarded")
	}
	if full.Workers != 2 {
		t.Fatal("workers not forwarded")
	}
	if full.Partitions != 1 {
		t.Fatal("partitions not forwarded")
	}
	quick := fig10Options(true, 7, 2, 1)
	if quick.Samples >= full.Samples || quick.Timeout >= full.Timeout {
		t.Fatal("quick options not reduced")
	}
	if len(quick.VMCounts) == 0 || len(quick.VMCounts) >= len(full.VMCounts) {
		t.Fatalf("quick VM counts = %v", quick.VMCounts)
	}
}

func TestPartitionOptions(t *testing.T) {
	full := partitionOptions(false, 3, 2, 0)
	if len(full.NodeCounts) != 3 || full.NodeCounts[2] != 2000 {
		t.Fatalf("full sweep = %v, want 100/500/2000", full.NodeCounts)
	}
	if full.Seed != 3 || full.Workers != 2 || full.Partitions != 0 {
		t.Fatalf("options not forwarded: %+v", full)
	}
	quick := partitionOptions(true, 3, 2, 0)
	if quick.NodeCounts[len(quick.NodeCounts)-1] >= full.NodeCounts[len(full.NodeCounts)-1] ||
		quick.Timeout >= full.Timeout {
		t.Fatalf("quick sweep not reduced: %+v", quick)
	}
}

func TestMultiResOptionsCLI(t *testing.T) {
	full := multiresOptions(false, 5, 2, 0)
	if full.Nodes != 500 || full.NodeNet == 0 || full.NodeDisk == 0 {
		t.Fatalf("full options = %+v, want the 500-node 4-dimension scenario", full)
	}
	if full.Seed != 5 || full.Workers != 2 || full.Partitions != 0 {
		t.Fatalf("options not forwarded: %+v", full)
	}
	quick := multiresOptions(true, 5, 1, 0)
	if quick.Nodes >= full.Nodes || quick.Timeout >= full.Timeout {
		t.Fatalf("quick options not reduced: %+v", quick)
	}
}

func TestClusterRunsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the reduced cluster experiment")
	}
	fcfs, entropy := clusterRuns(true, 42, 1, 1, false)
	if fcfs.Completion <= 0 || entropy.Completion <= 0 {
		t.Fatalf("completions = %v / %v", fcfs.Completion, entropy.Completion)
	}
	if entropy.Completion >= fcfs.Completion {
		t.Fatalf("entropy (%v) not faster than fcfs (%v)", entropy.Completion, fcfs.Completion)
	}
	// fcfsOnly skips the entropy run.
	onlyF, none := clusterRuns(true, 42, 1, 1, true)
	if onlyF.Completion <= 0 {
		t.Fatal("fcfs-only run missing")
	}
	if none.Completion != 0 {
		t.Fatal("entropy run performed despite fcfsOnly")
	}
}

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	writeCSV(dir, "x.csv", "a,b\n1,2\n")
	data, err := os.ReadFile(filepath.Join(dir, "x.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "a,b\n1,2\n" {
		t.Fatalf("content = %q", data)
	}
	// Empty dir is a no-op.
	writeCSV("", "y.csv", "ignored")
}

func TestChaosOptionsCLI(t *testing.T) {
	full := chaosOptions(false, 5, 2, 0, "web-tide")
	if full.Churn.Nodes != 500 || full.Bursts == 0 || full.Flappers == 0 || full.Loss.Fraction == 0 || full.StormRate == 0 {
		t.Fatalf("full options = %+v, want the 500-node scenario with every fault class armed", full)
	}
	if full.Churn.Seed != 5 || full.Churn.Workers != 2 || full.Churn.Partitions != 0 {
		t.Fatalf("options not forwarded: %+v", full.Churn)
	}
	if full.Trace != "web-tide" {
		t.Fatalf("trace not forwarded: %q", full.Trace)
	}
	quick := chaosOptions(true, 5, 1, 0, "batch-ramp")
	if quick.Churn.Nodes >= full.Churn.Nodes || quick.Churn.Horizon >= full.Churn.Horizon {
		t.Fatalf("quick options not reduced: %+v", quick.Churn)
	}
	if quick.BurstUntil > quick.Churn.Horizon || quick.FlapUntil > quick.Churn.Horizon || quick.Loss.Until > quick.Churn.Horizon {
		t.Fatalf("quick chaos windows outlive the horizon: %+v", quick)
	}
	if quick.Trace != "batch-ramp" {
		t.Fatalf("quick trace = %q", quick.Trace)
	}
}

func TestMigrationOptionsCLI(t *testing.T) {
	full := migrationOptions(false, 5, 2, 0)
	if full.Nodes != 500 || full.NICPoorFraction == 0 || full.Racks != 8 {
		t.Fatalf("full options = %+v, want the 500-node NIC-heterogeneous scenario", full)
	}
	if full.Seed != 5 || full.Workers != 2 || full.Partitions != 0 {
		t.Fatalf("options not forwarded: %+v", full)
	}
	quick := migrationOptions(true, 5, 1, 0)
	if quick.Nodes >= full.Nodes || quick.Timeout >= full.Timeout || quick.Racks >= full.Racks {
		t.Fatalf("quick options not reduced: %+v", quick)
	}
}
