package sim

import (
	"strings"
	"testing"

	"cwcs/internal/duration"
	"cwcs/internal/plan"
	"cwcs/internal/vjob"
)

// TestInvariantsCatchIntroducedOverload proves the watcher has teeth:
// an event that overloads a node after the baseline was taken must be
// reported.
func TestInvariantsCatchIntroducedOverload(t *testing.T) {
	cfg := vjob.NewConfiguration()
	cfg.AddNode(vjob.NewNode("n0", 1, 1024))
	c := New(cfg, duration.Default())
	w := WatchInvariants(c)

	c.Schedule(10, func() {
		for _, name := range []string{"a", "b"} {
			cfg.AddVM(vjob.NewVM(name, "j", 1, 512))
			if err := cfg.SetRunning(name, "n0"); err != nil {
				t.Fatal(err)
			}
		}
	})
	c.Run(100)
	err := w.Err()
	if err == nil {
		t.Fatal("introduced overload not reported")
	}
	if !strings.Contains(err.Error(), "n0") || !strings.Contains(err.Error(), "cpu") {
		t.Fatalf("unhelpful report: %v", err)
	}
}

// TestInvariantsTolerateBaselineOvercommit: over-commitment present
// when the simulation starts (the very situation a context switch
// repairs) is not an error; only new violations are.
func TestInvariantsTolerateBaselineOvercommit(t *testing.T) {
	cfg := vjob.NewConfiguration()
	cfg.AddNode(vjob.NewNode("n0", 1, 4096))
	cfg.AddNode(vjob.NewNode("n1", 1, 4096))
	for _, name := range []string{"a", "b"} {
		cfg.AddVM(vjob.NewVM(name, "j", 1, 512))
		if err := cfg.SetRunning(name, "n0"); err != nil {
			t.Fatal(err)
		}
	}
	c := New(cfg, duration.Default())
	w := WatchInvariants(c)
	vm := cfg.VM("b")
	c.StartAction(&plan.Migration{Machine: vm, Src: "n0", Dst: "n1"}, nil)
	c.Run(10_000)
	if err := w.Err(); err != nil {
		t.Fatalf("baseline over-commit reported as violation: %v", err)
	}
	if cfg.HostOf("b") != "n1" {
		t.Fatal("migration did not land")
	}
}
