package vjob

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzConfigurationJSON checks that every configuration the decoder
// accepts survives a marshal/unmarshal round trip: the re-encoded form
// parses back to an Equal configuration and re-encodes byte-identically
// (the format is the interchange between cmd/entropyd, cmd/planviz and
// hand-written test fixtures, so silent drift would corrupt runs).
func FuzzConfigurationJSON(f *testing.F) {
	f.Add([]byte(`{"nodes":[],"vms":[]}`))
	f.Add([]byte(`{"nodes":[{"name":"n1","cpu":2,"memory":4096}],"vms":[]}`))
	f.Add([]byte(`{"nodes":[{"name":"n1","cpu":2,"memory":4096},{"name":"n2","cpu":2,"memory":4096}],` +
		`"vms":[{"name":"vm1","vjob":"j1","cpu":1,"memory":1024,"state":"running","node":"n1"},` +
		`{"name":"vm2","vjob":"j1","cpu":0,"memory":512,"state":"sleeping","node":"n2"},` +
		`{"name":"vm3","cpu":1,"memory":256,"state":"waiting"}]}`))
	f.Add([]byte(`{"nodes":[{"name":"n","cpu":0,"memory":0}],` +
		`"vms":[{"name":"v","cpu":0,"memory":0,"state":"running","node":"n"}]}`))
	f.Add([]byte(`null`))
	// Multi-dimensional seeds: extra kinds ride in "resources"; a
	// zero-valued or absent extras map is the 2-D fast path and must
	// normalize away on re-encode.
	f.Add([]byte(`{"nodes":[{"name":"n1","cpu":2,"memory":4096,"resources":{"net":1000,"disk":600}}],` +
		`"vms":[{"name":"vm1","cpu":1,"memory":512,"resources":{"net":250},"state":"running","node":"n1"}]}`))
	f.Add([]byte(`{"nodes":[{"name":"n1","cpu":2,"memory":4096,"resources":{"disk":0}}],"vms":[]}`))
	f.Add([]byte(`{"nodes":[{"name":"n1","cpu":2,"memory":4096,"resources":{"tape":5}}],"vms":[]}`))
	f.Add([]byte(`{"nodes":[{"name":"n1","cpu":2,"memory":4096,"resources":{"cpu":9}}],"vms":[]}`))
	f.Add([]byte(`{"nodes":[{"name":"n1","cpu":1,"memory":1,"resources":{"net":-3}}],"vms":[]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var c Configuration
		if err := json.Unmarshal(data, &c); err != nil {
			return // rejected input: nothing to round-trip
		}
		first, err := json.Marshal(&c)
		if err != nil {
			t.Fatalf("marshal of accepted configuration failed: %v", err)
		}
		var back Configuration
		if err := json.Unmarshal(first, &back); err != nil {
			t.Fatalf("re-parse of own output failed: %v\noutput: %s", err, first)
		}
		if !c.Equal(&back) || !back.Equal(&c) {
			t.Fatalf("round trip changed the configuration:\n%s\nvs\n%s", &c, &back)
		}
		second, err := json.Marshal(&back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("encoding not stable:\n%s\nvs\n%s", first, second)
		}
		// Structural invariants of every decoded configuration.
		for _, v := range c.VMs() {
			st := c.StateOf(v.Name)
			loc := c.LocationOf(v.Name)
			switch st {
			case Running, Sleeping:
				if c.Node(loc) == nil {
					t.Fatalf("VM %s in state %v placed on unknown node %q", v.Name, st, loc)
				}
			case Waiting:
				if loc != "" {
					t.Fatalf("waiting VM %s holds location %q", v.Name, loc)
				}
			}
		}
		nodes := c.Nodes()
		for i := 1; i < len(nodes); i++ {
			if nodes[i-1].Name >= nodes[i].Name {
				t.Fatalf("nodes not in deterministic order: %q before %q", nodes[i-1].Name, nodes[i].Name)
			}
		}
		// The decoder is the trust boundary of the resource model: no
		// accepted vector may carry a negative dimension (unknown kinds
		// never make it this far — ParseKind rejects the whole input).
		for _, n := range nodes {
			if n.Capacity.AnyNegative() {
				t.Fatalf("node %s decoded with negative capacity %s", n.Name, n.Capacity)
			}
		}
		for _, v := range c.VMs() {
			if v.Demand.AnyNegative() {
				t.Fatalf("VM %s decoded with negative demand %s", v.Name, v.Demand)
			}
		}
	})
}
