package sim

import (
	"sort"

	"cwcs/internal/duration"
	"cwcs/internal/plan"
	"cwcs/internal/resources"
	"cwcs/internal/vjob"
)

// This file meters in-flight cross-node transfers (DESIGN.md §9).
// Actions whose endpoints have a modeled NIC do not get a fixed end
// time at start: their remaining work is re-timed by the Run loop at
// the bandwidth actually available, so two migrations squeezing into
// one 1 Gb node take longer than one — the fixed-end-time
// Schedule(now+d) path only remains for clusters without `net`
// capacities, where it stays byte-identical to the calibrated model.

// minTransferMbps is the floor wire rate: even a saturated NIC drains
// a transfer eventually (TCP keeps trickling), so progress — and the
// §4.1 termination guarantee — survives arbitrary oversubscription.
const minTransferMbps = 1.0

// transfer is the progress state of one metered in-flight transfer.
type transfer struct {
	spec   duration.TransferSpec
	demand plan.TransferDemand
	// endpoints are the transfer's nodes with a modeled NIC at start
	// time; only those meter demand and constrain the rate.
	endpoints []string
	// fixedLeft is the bandwidth-independent time remaining (seconds);
	// bitsLeft is the wire volume remaining (Mbit). The fixed part
	// runs first.
	fixedLeft float64
	bitsLeft  float64
}

// remainingSeconds returns the time to completion at the given rate.
func (x *transfer) remainingSeconds(rate float64) float64 {
	if rate < minTransferMbps {
		rate = minTransferMbps
	}
	return x.fixedLeft + x.bitsLeft/rate
}

// advance consumes dt seconds of progress at the given rate.
func (x *transfer) advance(dt, rate float64) {
	if rate < minTransferMbps {
		rate = minTransferMbps
	}
	if x.fixedLeft > 0 {
		if dt <= x.fixedLeft {
			x.fixedLeft -= dt
			return
		}
		dt -= x.fixedLeft
		x.fixedLeft = 0
	}
	x.bitsLeft -= dt * rate
	if x.bitsLeft < 0 {
		x.bitsLeft = 0
	}
}

const xferEps = 1e-6

// finished reports whether the transfer has no work left (within
// float residue).
func (x *transfer) finished() bool {
	return x.fixedLeft <= xferEps && x.bitsLeft <= xferEps
}

// newTransfer returns the metered transfer state for the action, or
// nil when the legacy fixed-duration path applies: the action moves
// nothing across nodes, suspend-to-RAM mode is on, or no endpoint has
// a modeled NIC — zero `net` capacity compiles the bandwidth model
// away, keeping 2-D timings byte-identical to the calibration.
func (c *Cluster) newTransfer(a plan.Action) *transfer {
	if c.SuspendToRAM {
		switch a.(type) {
		case *plan.Suspend, *plan.Resume:
			return nil
		}
	}
	spec, ok := c.model.ActionTransfer(a)
	if !ok {
		return nil
	}
	td, ok := plan.TransferDemandOf(a)
	if !ok {
		return nil
	}
	var eps []string
	for _, ep := range []string{td.Src, td.Dst} {
		if n := c.cfg.Node(ep); n != nil && n.Capacity.Get(resources.NetBW) > 0 {
			eps = append(eps, ep)
		}
	}
	if len(eps) == 0 {
		return nil
	}
	return &transfer{
		spec:      spec,
		demand:    td,
		endpoints: eps,
		fixedLeft: spec.Fixed.Seconds(),
		bitsLeft:  spec.Bits(),
	}
}

// removeTransfer drops the operation from the metered-transfer list.
func (c *Cluster) removeTransfer(op *operation) {
	for i, o := range c.xfers {
		if o == op {
			c.xfers = append(c.xfers[:i], c.xfers[i+1:]...)
			return
		}
	}
}

// transferRates computes the wire rate each metered transfer currently
// sustains: the nominal rate, capped on every metered endpoint by a
// fair share of the NIC's residual bandwidth — what the running VMs'
// own `net` demand leaves free, split evenly among the transfers
// touching that NIC — and floored at minTransferMbps.
func (c *Cluster) transferRates() map[*operation]float64 {
	if len(c.xfers) == 0 {
		return nil
	}
	free := c.cfg.FreeResources()
	count := make(map[string]int)
	for _, op := range c.xfers {
		for _, ep := range op.xfer.endpoints {
			count[ep]++
		}
	}
	out := make(map[*operation]float64, len(c.xfers))
	for _, op := range c.xfers {
		rate := op.xfer.spec.NominalMbps
		for _, ep := range op.xfer.endpoints {
			f, ok := free[ep]
			if !ok {
				continue // node went offline mid-transfer
			}
			share := float64(f.Get(resources.NetBW)) / float64(count[ep])
			if share < rate {
				rate = share
			}
		}
		if rate < minTransferMbps {
			rate = minTransferMbps
		}
		out[op] = rate
	}
	return out
}

// TransferDemands returns, per node, the `net` demand (Mbit/s) the
// in-flight transfers meter on it: each transfer's nominal rate
// clamped to the NIC, the same arithmetic the plan builder books when
// it admits a pool. Empty when nothing metered is in flight.
func (c *Cluster) TransferDemands() map[string]int {
	if len(c.xfers) == 0 {
		return nil
	}
	out := make(map[string]int)
	for _, op := range c.xfers {
		for _, ep := range op.xfer.endpoints {
			n := c.cfg.Node(ep)
			if n == nil {
				continue
			}
			out[ep] += op.xfer.demand.ClampedRate(n.Capacity.Get(resources.NetBW))
		}
	}
	return out
}

// TransferViolations returns the nodes whose NIC the in-flight
// transfers oversubscribe: running-VM `net` demand fits the capacity,
// but adding the metered transfer demand exceeds it. Nodes whose
// running VMs alone overload the NIC are excluded — those already
// appear in Config().Violations(), and counting them here would tally
// the same exposure twice.
func (c *Cluster) TransferViolations() []vjob.Violation {
	demands := c.TransferDemands()
	if len(demands) == 0 {
		return nil
	}
	free := c.cfg.FreeResources()
	nodes := make([]string, 0, len(demands))
	for n := range demands {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	var out []vjob.Violation
	for _, name := range nodes {
		n := c.cfg.Node(name)
		if n == nil {
			continue
		}
		nic := n.Capacity.Get(resources.NetBW)
		residual := free[name].Get(resources.NetBW)
		if residual >= 0 && demands[name] > residual {
			out = append(out, vjob.Violation{
				Node:     name,
				Resource: resources.NetBW.String(),
				Demand:   nic - residual + demands[name],
				Capacity: nic,
			})
		}
	}
	return out
}
