package monitor

import (
	"fmt"
	"testing"

	"cwcs/internal/core"
	"cwcs/internal/duration"
	"cwcs/internal/resources"
	"cwcs/internal/sim"
	"cwcs/internal/vjob"
)

func thresholdConfig() *vjob.Configuration {
	cfg := vjob.NewConfiguration()
	cfg.AddNode(vjob.NewNode("n0", 2, 4096))
	cfg.AddNode(vjob.NewNode("n1", 2, 4096))
	cfg.AddVM(vjob.NewVM("v1", "j", 2, 1024))
	return cfg
}

// TestThresholdSustainedOverload: one hot sample is noise; Sustain
// consecutive hot samples fire exactly one LoadChange, and no second
// event fires until the node cools below Low.
func TestThresholdSustainedOverload(t *testing.T) {
	cfg := thresholdConfig()
	if err := cfg.SetRunning("v1", "n0"); err != nil {
		t.Fatal(err)
	}
	w := &ThresholdWatcher{High: 0.9, Low: 0.5, Sustain: 2}

	// CPU demand 2 of 2 = 1.0 > High: hot.
	if evs := w.Sample(0, cfg); len(evs) != 0 {
		t.Fatalf("first hot sample fired early: %v", evs)
	}
	evs := w.Sample(10, cfg)
	if len(evs) != 1 || evs[0].Kind != core.LoadChange {
		t.Fatalf("sustained overload events: %v", evs)
	}
	if len(evs[0].Nodes) != 1 || evs[0].Nodes[0] != "n0" || len(evs[0].VMs) != 1 {
		t.Fatalf("event scope: %+v", evs[0])
	}
	// Still hot: hysteresis holds the event back.
	for i := 0; i < 5; i++ {
		if evs := w.Sample(float64(20+10*i), cfg); len(evs) != 0 {
			t.Fatalf("re-fired while hot: %v", evs)
		}
	}
	// Cool below Low, then overload again: a new event may fire.
	cfg.VM("v1").SetCPUDemand(0)
	if evs := w.Sample(100, cfg); len(evs) != 0 {
		t.Fatalf("cooling fired: %v", evs)
	}
	cfg.VM("v1").SetCPUDemand(2)
	w.Sample(110, cfg)
	if evs := w.Sample(120, cfg); len(evs) != 1 {
		t.Fatalf("re-armed overload not fired: %v", evs)
	}
}

// TestThresholdNodeDownUp: nodes vanishing from (and returning to) the
// configuration become NodeDown / NodeUp events.
func TestThresholdNodeDownUp(t *testing.T) {
	cfg := thresholdConfig()
	w := &ThresholdWatcher{}
	if evs := w.Sample(0, cfg); len(evs) != 0 {
		t.Fatalf("baseline fired: %v", evs)
	}
	if err := cfg.RemoveNode("n1"); err != nil {
		t.Fatal(err)
	}
	evs := w.Sample(10, cfg)
	if len(evs) != 1 || evs[0].Kind != core.NodeDown || evs[0].Nodes[0] != "n1" {
		t.Fatalf("node-down events: %v", evs)
	}
	if evs := w.Sample(20, cfg); len(evs) != 0 {
		t.Fatalf("node-down re-fired: %v", evs)
	}
	cfg.AddNode(vjob.NewNode("n1", 2, 4096))
	evs = w.Sample(30, cfg)
	if len(evs) != 1 || evs[0].Kind != core.NodeUp || evs[0].Nodes[0] != "n1" {
		t.Fatalf("node-up events: %v", evs)
	}
}

// TestThresholdMemoryAndZeroCapacity: the utilization fraction takes
// the worse of CPU and memory, and zero-capacity nodes only count as
// saturated when demanded.
func TestThresholdMemoryAndZeroCapacity(t *testing.T) {
	cfg := vjob.NewConfiguration()
	cfg.AddNode(vjob.NewNode("n0", 0, 1000))
	cfg.AddVM(vjob.NewVM("v1", "j", 0, 990))
	if err := cfg.SetRunning("v1", "n0"); err != nil {
		t.Fatal(err)
	}
	w := &ThresholdWatcher{Sustain: 1}
	// 99% memory > default High 0.9 and Sustain 1: fires immediately,
	// and the zero-capacity CPU (with zero demand) contributes nothing.
	if evs := w.Sample(0, cfg); len(evs) != 1 || evs[0].Kind != core.LoadChange {
		t.Fatalf("memory overload: %v", evs)
	}
	if evs := w.Sample(10, cfg); len(evs) != 0 {
		t.Fatalf("hysteresis broken: %v", evs)
	}
}

// TestThresholdAttachFeedsSim: wired to the simulator, the watcher
// samples on the virtual clock and pushes events through Emit.
func TestThresholdAttachFeedsSim(t *testing.T) {
	cfg := vjob.NewConfiguration()
	cfg.AddNode(vjob.NewNode("n0", 1, 4096))
	cfg.AddVM(vjob.NewVM("v1", "j", 1, 1024))
	if err := cfg.SetRunning("v1", "n0"); err != nil {
		t.Fatal(err)
	}
	c := sim.New(cfg, duration.Default())
	c.SetWorkload("v1", []sim.Phase{{CPU: 1, Seconds: 500}})

	var got []core.Event
	w := &ThresholdWatcher{Interval: 10, High: 0.9, Low: 0.5, Sustain: 2,
		Emit: func(ev core.Event) { got = append(got, ev) }}
	w.Attach(c)
	c.Run(100)
	if len(got) != 1 || got[0].Kind != core.LoadChange {
		t.Fatalf("attached watcher events: %v", got)
	}
	if got[0].At < 10 {
		t.Fatalf("event time: %+v", got[0])
	}
	w.Stop()
	before := len(got)
	c.Run(200)
	if len(got) != before {
		t.Fatal("watcher kept sampling after Stop")
	}
	_ = fmt.Sprint(got)
}

// TestThresholdExtraDimension: a node saturating only its network
// capacity — a dimension the pre-multi-resource watcher never saw —
// trips the watcher with the same hysteresis discipline.
func TestThresholdExtraDimension(t *testing.T) {
	cfg := vjob.NewConfiguration()
	cap := resources.New(8, 16384)
	cap.Set(resources.NetBW, 1000)
	cfg.AddNode(vjob.NewNodeRes("n0", cap))
	d := resources.New(1, 512)
	d.Set(resources.NetBW, 950) // 95% net, 12% cpu, 3% mem
	cfg.AddVM(vjob.NewVMRes("v1", "j", d))
	if err := cfg.SetRunning("v1", "n0"); err != nil {
		t.Fatal(err)
	}
	w := &ThresholdWatcher{High: 0.9, Low: 0.5, Sustain: 2}
	if evs := w.Sample(0, cfg); len(evs) != 0 {
		t.Fatalf("first hot sample fired early: %v", evs)
	}
	evs := w.Sample(10, cfg)
	if len(evs) != 1 || evs[0].Kind != core.LoadChange || evs[0].Nodes[0] != "n0" {
		t.Fatalf("net overload events: %v", evs)
	}
	// Hysteresis holds per dimension.
	if evs := w.Sample(20, cfg); len(evs) != 0 {
		t.Fatalf("re-fired while net-hot: %v", evs)
	}
}

// TestThresholdPerKindWatermarks: PerKind overrides move one
// dimension's trip point without touching the defaults, and a node hot
// on two dimensions at once still fires a single LoadChange.
func TestThresholdPerKindWatermarks(t *testing.T) {
	cfg := vjob.NewConfiguration()
	cap := resources.New(2, 4096)
	cap.Set(resources.NetBW, 1000)
	cfg.AddNode(vjob.NewNodeRes("n0", cap))
	d := resources.New(2, 512)
	d.Set(resources.NetBW, 800) // 80% net, 100% cpu
	cfg.AddVM(vjob.NewVMRes("v1", "j", d))
	if err := cfg.SetRunning("v1", "n0"); err != nil {
		t.Fatal(err)
	}
	// Default High 0.9 would ignore 80% net; the override trips it.
	w := &ThresholdWatcher{
		High: 0.9, Low: 0.5, Sustain: 2,
		PerKind: map[resources.Kind]Watermarks{resources.NetBW: {High: 0.7}},
	}
	if evs := w.Sample(0, cfg); len(evs) != 0 {
		t.Fatalf("first hot sample fired early: %v", evs)
	}
	// cpu (1.0 > 0.9) and net (0.8 > 0.7) are both hot; one event.
	evs := w.Sample(10, cfg)
	if len(evs) != 1 || evs[0].Kind != core.LoadChange {
		t.Fatalf("override events: %v", evs)
	}
	// Drop net below its Low while cpu stays hot: the cpu state machine
	// is already fired, the net one re-arms — still no event storm.
	cfg.VM("v1").Demand.Set(resources.NetBW, 100)
	for i := 0; i < 3; i++ {
		if evs := w.Sample(float64(20+10*i), cfg); len(evs) != 0 {
			t.Fatalf("stormed: %v", evs)
		}
	}
	// Net climbs again past its override High: its own state machine
	// fires independently of the still-hot cpu, after Sustain samples.
	cfg.VM("v1").Demand.Set(resources.NetBW, 800)
	if evs := w.Sample(60, cfg); len(evs) != 0 {
		t.Fatalf("net re-fired before sustain: %v", evs)
	}
	if evs := w.Sample(70, cfg); len(evs) != 1 {
		t.Fatalf("re-armed net overload not fired: %v", evs)
	}
}

// TestThresholdDefaults: zero-value knobs resolve to the documented
// defaults, and PerKind entries with one zero field fall back for the
// other.
func TestThresholdDefaults(t *testing.T) {
	w := &ThresholdWatcher{}
	if w.interval() != 10 || w.sustain() != 3 {
		t.Fatalf("defaults: interval=%v sustain=%d", w.interval(), w.sustain())
	}
	if w.high(resources.CPU) != 0.9 || w.low(resources.CPU) != 0.7 {
		t.Fatalf("defaults: high=%v low=%v", w.high(resources.CPU), w.low(resources.CPU))
	}
	w.Interval = 5
	w.High = 0.8
	w.Low = 0.6
	w.PerKind = map[resources.Kind]Watermarks{resources.NetBW: {High: 0.5}}
	if w.interval() != 5 || w.high(resources.Memory) != 0.8 || w.low(resources.Memory) != 0.6 {
		t.Fatal("explicit knobs ignored")
	}
	if w.high(resources.NetBW) != 0.5 {
		t.Fatal("PerKind High ignored")
	}
	// The fallback Low (0.6) sits above the overridden High (0.5);
	// clamping keeps the hysteresis non-inverted instead of letting a
	// 0.55-utilization node fire and re-arm every sample.
	if w.low(resources.NetBW) != 0.5 {
		t.Fatalf("inverted watermarks not clamped: low=%v", w.low(resources.NetBW))
	}
}

// TestThresholdInvertedWatermarksNoStorm: a PerKind High below the
// default Low must not turn the hysteresis into an every-sample event
// storm.
func TestThresholdInvertedWatermarksNoStorm(t *testing.T) {
	cfg := vjob.NewConfiguration()
	cap := resources.New(8, 8192)
	cap.Set(resources.NetBW, 1000)
	cfg.AddNode(vjob.NewNodeRes("n0", cap))
	d := resources.New(1, 512)
	d.Set(resources.NetBW, 650) // 65%: above the override High, below the default Low
	cfg.AddVM(vjob.NewVMRes("v1", "j", d))
	if err := cfg.SetRunning("v1", "n0"); err != nil {
		t.Fatal(err)
	}
	w := &ThresholdWatcher{Sustain: 1,
		PerKind: map[resources.Kind]Watermarks{resources.NetBW: {High: 0.6}}}
	if evs := w.Sample(0, cfg); len(evs) != 1 {
		t.Fatalf("override trip: %v", evs)
	}
	for i := 1; i <= 5; i++ {
		if evs := w.Sample(float64(10*i), cfg); len(evs) != 0 {
			t.Fatalf("event storm at sample %d: %v", i, evs)
		}
	}
}

// TestUtilizationZeroCapacity: demanding a dimension the node does not
// offer reads as saturated; not demanding it reads as idle.
func TestUtilizationZeroCapacity(t *testing.T) {
	cfg := vjob.NewConfiguration()
	cfg.AddNode(vjob.NewNode("n0", 0, 1024))
	cfg.AddVM(vjob.NewVM("v1", "j", 1, 512))
	if err := cfg.SetRunning("v1", "n0"); err != nil {
		t.Fatal(err)
	}
	free := cfg.FreeResources()
	n := cfg.Node("n0")
	if u := utilization(free, n, resources.CPU); u != 2 {
		t.Fatalf("cpu on zero-capacity node = %v", u)
	}
	if u := utilization(free, n, resources.NetBW); u != 0 {
		t.Fatalf("undemanded zero-capacity dimension = %v", u)
	}
	if u := utilization(free, n, resources.Memory); u != 0.5 {
		t.Fatalf("memory = %v", u)
	}
}

// TestWatchViolationSeconds: the integral advances with virtual time
// while violations persist.
func TestWatchViolationSeconds(t *testing.T) {
	cfg := vjob.NewConfiguration()
	cfg.AddNode(vjob.NewNode("n0", 1, 1024))
	c := sim.New(cfg, duration.Default())
	get := WatchViolationSeconds(c)
	c.Schedule(0, func() {
		for _, name := range []string{"a", "b"} {
			cfg.AddVM(vjob.NewVM(name, "j", 1, 256))
			if err := cfg.SetRunning(name, "n0"); err != nil {
				t.Fatal(err)
			}
		}
	})
	c.Schedule(10, func() {}) // advance the clock past the violation window
	c.Run(20)
	if got := get(); got < 10 {
		t.Fatalf("violation-seconds = %v, want >= 10", got)
	}
}
