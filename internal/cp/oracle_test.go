package cp

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// This file is the oracle suite: small random models (≤6 variables,
// ≤5 values) whose full assignment space a brute-force enumerator can
// check, asserting that Solve finds a solution iff one exists and that
// Minimize returns the true optimum — for the sequential search and
// for the parallel portfolio alike.

// neqSpec is x != y + offset over variable indices.
type neqSpec struct {
	x, y, offset int
}

// packSpec is a Packing instance over all variables.
type packSpec struct {
	weights  []int
	capacity []int
	knapsack bool
}

// oracleSpec is a randomly generated model small enough to enumerate.
type oracleSpec struct {
	doms    [][]int // per variable: initial domain (values in [0,5))
	neqs    []neqSpec
	allDiff []int // variable indices under an AllDifferent, if ≥2
	pack    *packSpec
	coefs   []int // objective = sum coefs[i]*x[i], coefs ≥ 0
}

const oracleMaxValue = 5

func randomOracleSpec(rng *rand.Rand) oracleSpec {
	nvars := 2 + rng.Intn(5) // 2..6
	sp := oracleSpec{doms: make([][]int, nvars), coefs: make([]int, nvars)}
	for i := range sp.doms {
		size := 1 + rng.Intn(oracleMaxValue)
		seen := map[int]bool{}
		for len(seen) < size {
			seen[rng.Intn(oracleMaxValue)] = true
		}
		for v := 0; v < oracleMaxValue; v++ {
			if seen[v] {
				sp.doms[i] = append(sp.doms[i], v)
			}
		}
		sp.coefs[i] = rng.Intn(4)
	}
	for k := rng.Intn(4); k > 0; k-- {
		x, y := rng.Intn(nvars), rng.Intn(nvars)
		if x == y {
			continue
		}
		sp.neqs = append(sp.neqs, neqSpec{x: x, y: y, offset: rng.Intn(3) - 1})
	}
	if rng.Intn(2) == 0 && nvars >= 3 {
		perm := rng.Perm(nvars)
		sp.allDiff = perm[:2+rng.Intn(nvars-1)]
	}
	if rng.Intn(2) == 0 {
		ps := &packSpec{
			weights:  make([]int, nvars),
			capacity: make([]int, oracleMaxValue),
			knapsack: rng.Intn(2) == 0,
		}
		for i := range ps.weights {
			ps.weights[i] = rng.Intn(3)
		}
		for b := range ps.capacity {
			ps.capacity[b] = 1 + rng.Intn(4)
		}
		sp.pack = ps
	}
	return sp
}

// build instantiates the spec on a fresh solver. The objective
// propagator carries a Rebind hook so the model clones for portfolio
// workers.
func (sp oracleSpec) build() (*Solver, []*IntVar, *IntVar) {
	s := NewSolver()
	vars := make([]*IntVar, len(sp.doms))
	for i, dom := range sp.doms {
		vars[i] = s.NewEnumVar(fmt.Sprintf("x%d", i), dom)
	}
	for _, n := range sp.neqs {
		s.Post(&NotEqualOffset{X: vars[n.x], Y: vars[n.y], Offset: n.offset})
	}
	if len(sp.allDiff) >= 2 {
		items := make([]*IntVar, len(sp.allDiff))
		for i, idx := range sp.allDiff {
			items[i] = vars[idx]
		}
		s.Post(&AllDifferent{Items: items})
	}
	if sp.pack != nil {
		s.Post(&Packing{
			Name:        "oracle",
			Items:       vars,
			Weights:     sp.pack.weights,
			Capacity:    sp.pack.capacity,
			UseKnapsack: sp.pack.knapsack,
		})
	}
	maxObj := 0
	for i, dom := range sp.doms {
		maxObj += sp.coefs[i] * dom[len(dom)-1]
	}
	obj := s.NewIntVar("obj", 0, maxObj)
	s.Post(weightedSum(vars, sp.coefs, obj))
	return s, vars, obj
}

// weightedSum keeps obj's bounds consistent with sum coefs[i]*vars[i]
// (coefficients must be non-negative). Rebind makes it cloneable.
func weightedSum(vars []*IntVar, coefs []int, obj *IntVar) Constraint {
	c := &FuncConstraint{On: append([]*IntVar{obj}, vars...)}
	c.Run = func(s *Solver) error {
		lo, hi := 0, 0
		for i, v := range vars {
			lo += coefs[i] * v.Min()
			hi += coefs[i] * v.Max()
		}
		if err := s.RemoveBelow(obj, lo); err != nil {
			return err
		}
		return s.RemoveAbove(obj, hi)
	}
	c.Rebind = func(remap func(*IntVar) *IntVar) Constraint {
		nv := make([]*IntVar, len(vars))
		for i, v := range vars {
			nv[i] = remap(v)
		}
		return weightedSum(nv, coefs, remap(obj))
	}
	return c
}

// satisfied checks a full assignment against every constraint.
func (sp oracleSpec) satisfied(assign []int) bool {
	for _, n := range sp.neqs {
		if assign[n.x] == assign[n.y]+n.offset {
			return false
		}
	}
	for i, a := range sp.allDiff {
		for _, b := range sp.allDiff[i+1:] {
			if assign[a] == assign[b] {
				return false
			}
		}
	}
	if sp.pack != nil {
		loads := make([]int, len(sp.pack.capacity))
		for i, bin := range assign {
			loads[bin] += sp.pack.weights[i]
		}
		for b, load := range loads {
			if load > sp.pack.capacity[b] {
				return false
			}
		}
	}
	return true
}

func (sp oracleSpec) objective(assign []int) int {
	obj := 0
	for i, v := range assign {
		obj += sp.coefs[i] * v
	}
	return obj
}

// enumerate brute-forces the assignment space: whether any solution
// exists and the minimal objective among solutions.
func (sp oracleSpec) enumerate() (feasible bool, minObj int) {
	assign := make([]int, len(sp.doms))
	var rec func(i int)
	rec = func(i int) {
		if i == len(sp.doms) {
			if sp.satisfied(assign) {
				if obj := sp.objective(assign); !feasible || obj < minObj {
					minObj = obj
				}
				feasible = true
			}
			return
		}
		for _, v := range sp.doms[i] {
			assign[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return feasible, minObj
}

// checkWitness verifies a returned solution against the spec.
func (sp oracleSpec) checkWitness(t *testing.T, vars []*IntVar, sol Solution) []int {
	t.Helper()
	assign := make([]int, len(vars))
	for i, v := range vars {
		assign[i] = sol.MustValue(v)
		found := false
		for _, d := range sp.doms[i] {
			if d == assign[i] {
				found = true
			}
		}
		if !found {
			t.Fatalf("x%d = %d outside its initial domain %v", i, assign[i], sp.doms[i])
		}
	}
	if !sp.satisfied(assign) {
		t.Fatalf("witness %v violates the model", assign)
	}
	return assign
}

const oracleSeeds = 60

// TestOracleSolve: Solve finds a solution iff the brute force does,
// sequentially and through the portfolio.
func TestOracleSolve(t *testing.T) {
	for seed := int64(0); seed < oracleSeeds; seed++ {
		sp := randomOracleSpec(rand.New(rand.NewSource(seed)))
		feasible, _ := sp.enumerate()

		s, vars, _ := sp.build()
		sol, err := s.Solve(Options{Vars: vars, FirstFail: true})
		if feasible {
			if err != nil {
				t.Fatalf("seed %d: sequential Solve failed on feasible model: %v", seed, err)
			}
			sp.checkWitness(t, vars, sol)
		} else if !errors.Is(err, ErrFailed) {
			t.Fatalf("seed %d: sequential Solve = %v on infeasible model, want ErrFailed", seed, err)
		}

		ps, pvars, _ := sp.build()
		psol, perr := ps.SolvePortfolio(PortfolioOptions{Workers: 4, Base: Options{Vars: pvars}})
		if feasible {
			if perr != nil {
				t.Fatalf("seed %d: portfolio Solve failed on feasible model: %v", seed, perr)
			}
			sp.checkWitness(t, pvars, psol)
		} else if !errors.Is(perr, ErrFailed) {
			t.Fatalf("seed %d: portfolio Solve = %v on infeasible model, want ErrFailed", seed, perr)
		}
	}
}

// TestOracleMinimize: Minimize returns the brute-force optimum with a
// proof (nil error), sequentially and through the portfolio.
func TestOracleMinimize(t *testing.T) {
	for seed := int64(0); seed < oracleSeeds; seed++ {
		sp := randomOracleSpec(rand.New(rand.NewSource(seed)))
		feasible, minObj := sp.enumerate()

		s, vars, obj := sp.build()
		best, err := s.Minimize(obj, Options{Vars: vars, FirstFail: true, PreferValue: true})
		if feasible {
			if err != nil {
				t.Fatalf("seed %d: sequential Minimize = %v, want proven optimum", seed, err)
			}
			if best.Objective != minObj {
				t.Fatalf("seed %d: sequential optimum = %d, brute force says %d", seed, best.Objective, minObj)
			}
			assign := sp.checkWitness(t, vars, best)
			if sp.objective(assign) != minObj {
				t.Fatalf("seed %d: witness cost %d != optimum %d", seed, sp.objective(assign), minObj)
			}
		} else if !errors.Is(err, ErrFailed) {
			t.Fatalf("seed %d: sequential Minimize = %v on infeasible model, want ErrFailed", seed, err)
		}

		for _, workers := range []int{2, 4} {
			ps, pvars, pobj := sp.build()
			pbest, perr := ps.MinimizePortfolio(pobj, PortfolioOptions{Workers: workers, Base: Options{Vars: pvars}})
			if feasible {
				if perr != nil {
					t.Fatalf("seed %d/workers %d: portfolio Minimize = %v, want proven optimum", seed, workers, perr)
				}
				if pbest.Objective != minObj {
					t.Fatalf("seed %d/workers %d: portfolio optimum = %d, brute force says %d", seed, workers, pbest.Objective, minObj)
				}
				assign := sp.checkWitness(t, pvars, pbest)
				if sp.objective(assign) != minObj {
					t.Fatalf("seed %d/workers %d: witness cost %d != optimum %d", seed, workers, sp.objective(assign), minObj)
				}
			} else if !errors.Is(perr, ErrFailed) {
				t.Fatalf("seed %d/workers %d: portfolio Minimize = %v on infeasible model, want ErrFailed", seed, workers, perr)
			}
		}
	}
}
