package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"cwcs/internal/core"
	"cwcs/internal/drivers"
	"cwcs/internal/duration"
	"cwcs/internal/monitor"
	"cwcs/internal/sched"
	"cwcs/internal/sim"
	"cwcs/internal/vjob"
	"cwcs/internal/workload"
)

// DrainOptions parameterizes the node-maintenance study: a cluster
// under churn receives drain orders for a fraction of its nodes (the
// control plane's POST /v1/nodes/{id}/drain path — DrainSet rules plus
// NodeDown events), the event-driven loop evacuates them, and the run
// records how long the evacuation took and what it cost in capacity
// violations. Fully emptied nodes are taken offline
// (sim.SetNodeOffline), exercising the whole lifecycle. No paper
// analogue: the paper's testbed never loses a node (§7 names
// resilience as future work).
type DrainOptions struct {
	// Nodes, NodeCPU, NodeMemory describe the cluster.
	Nodes, NodeCPU, NodeMemory int
	// InitialVJobs and VMsPerVJob shape the resident population.
	InitialVJobs, VMsPerVJob int
	// ArrivalRate is the Poisson vjob arrival rate per virtual second;
	// arrivals stop at ArrivalStop (churn continues through the
	// drain).
	ArrivalRate float64
	ArrivalStop float64
	// WorkScale multiplies workload durations.
	WorkScale float64
	// Horizon is the simulation cut-off.
	Horizon float64
	// Debounce is the loop's settle delay; Timeout the per-solve
	// budget.
	Debounce float64
	Timeout  time.Duration
	// Workers and Partitions configure the optimizer.
	Workers, Partitions int
	// DrainFraction is the fraction of nodes drained at DrainAt,
	// spread evenly over the node index space.
	DrainFraction float64
	DrainAt       float64
	// Seed drives workload generation and arrivals.
	Seed int64
}

// DefaultDrainOptions is the BENCH_drain.json scenario: evacuate 10%
// of a 500-node cluster under churn.
func DefaultDrainOptions() DrainOptions {
	return DrainOptions{
		Nodes: 500, NodeCPU: 2, NodeMemory: 4096,
		InitialVJobs: 40, VMsPerVJob: 9,
		ArrivalRate: 1.0 / 30, ArrivalStop: 600,
		WorkScale:     1.0,
		Horizon:       6000,
		Debounce:      5,
		Timeout:       500 * time.Millisecond,
		DrainFraction: 0.10, DrainAt: 600,
		Seed: 42,
	}
}

// DrainResult is the study's measurements.
type DrainResult struct {
	// Nodes is the cluster size; Drained how many received the order.
	Nodes, Drained int
	// Evacuated counts drained nodes with no running VM at the end;
	// Offline the subset that emptied completely (no image either) and
	// was taken out of the configuration.
	Evacuated, Offline int
	// PinnedByImage counts drained nodes that lost every running VM
	// but still store suspended images at the end — stuck, not in
	// progress: the optimizer cannot relocate an image, so these nodes
	// never go offline until the owning vjobs resume or are withdrawn.
	// PinnedVJobs lists those owners (sorted, deduplicated) — the
	// operator's resume/withdraw targets, mirroring the control
	// plane's pinned-by-image reason on GET /v1/nodes/{id}.
	PinnedByImage int
	PinnedVJobs   []string
	// TimeToEmpty is the virtual time from DrainAt until no drained
	// node hosted a running VM, or -1 when the horizon hit first.
	TimeToEmpty float64
	// ViolationSeconds integrates len(Violations()) over virtual time.
	ViolationSeconds float64
	// InvariantBreaches counts the structural sim.WatchInvariants
	// errors — negative usage, placements on absent nodes (0 = the
	// drain/offline machinery never corrupted the configuration).
	// Capacity overloads from churn are expected and measured by
	// ViolationSeconds instead.
	InvariantBreaches int
	// Stats is the loop telemetry; Switches the executed switches.
	Stats    core.LoopStats
	Switches int
	// Arrived and Completed count vjobs over the run.
	Arrived, Completed int
	// End is the virtual time the run finished; Wall the real time it
	// took.
	End  float64
	Wall time.Duration
}

// RunDrain replays the drain scenario.
func RunDrain(opts DrainOptions) DrainResult {
	genRng := rand.New(rand.NewSource(opts.Seed))
	arrRng := rand.New(rand.NewSource(opts.Seed + 1))

	cfg := vjob.NewConfiguration()
	for i := 0; i < opts.Nodes; i++ {
		cfg.AddNode(vjob.NewNode(fmt.Sprintf("node%03d", i), opts.NodeCPU, opts.NodeMemory))
	}
	c := sim.New(cfg, duration.Default())
	inv := sim.WatchInvariants(c)

	var jobs []*vjob.VJob
	submit := func(i int) workload.Spec {
		bench := workload.Benchmarks[i%len(workload.Benchmarks)]
		class := workload.Classes[1+i%2]
		spec := workload.NewSpec(fmt.Sprintf("vjob%03d", i), bench, class, opts.VMsPerVJob, i, genRng)
		scalePhases(&spec, opts.WorkScale)
		spec.Install(cfg, c)
		jobs = append(jobs, spec.Job)
		return spec
	}
	for i := 0; i < opts.InitialVJobs; i++ {
		submit(i)
	}

	res := DrainResult{Nodes: opts.Nodes, Arrived: opts.InitialVJobs, TimeToEmpty: -1}

	drains := &core.DrainSet{}
	loop := &core.Loop{
		Decision:    queueTerminator{c: c, inner: sched.Consolidation{}, queue: func() []*vjob.VJob { return jobs }},
		Optimizer:   core.Optimizer{Timeout: opts.Timeout, Workers: opts.Workers, Partitions: opts.Partitions},
		EventDriven: true,
		Debounce:    opts.Debounce,
		Drains:      drains,
		Queue:       func() []*vjob.VJob { return jobs },
	}
	act := &drivers.Actuator{C: c}
	c.OnLoadChange(func(vm string) {
		loop.Notify(act, core.Event{Kind: core.LoadChange, At: c.Now(), VMs: []string{vm}})
	})

	// Poisson arrivals until ArrivalStop: the drain competes with
	// normal churn for the loop's attention.
	idx := opts.InitialVJobs
	var scheduleArrival func()
	scheduleArrival = func() {
		dt := arrRng.ExpFloat64() / opts.ArrivalRate
		at := c.Now() + dt
		if at > opts.ArrivalStop {
			return
		}
		c.Schedule(at, func() {
			spec := submit(idx)
			idx++
			res.Arrived++
			names := make([]string, len(spec.Job.VMs))
			for i, v := range spec.Job.VMs {
				names[i] = v.Name
			}
			loop.Notify(act, core.Event{Kind: core.VMArrival, At: c.Now(), VMs: names})
			scheduleArrival()
		})
	}
	if opts.ArrivalRate > 0 {
		scheduleArrival()
	}

	// The drain orders: DrainFraction of the nodes, spread evenly.
	count := int(float64(opts.Nodes)*opts.DrainFraction + 0.5)
	if count < 1 {
		count = 1
	}
	res.Drained = count
	drained := make([]string, count)
	drainedSet := make(map[string]bool, count)
	for i := 0; i < count; i++ {
		drained[i] = fmt.Sprintf("node%03d", i*opts.Nodes/count)
		drainedSet[drained[i]] = true
	}
	c.Schedule(opts.DrainAt, func() {
		for _, n := range drained {
			drains.Drain(n)
			ev := core.Event{Kind: core.NodeDown, At: c.Now(), Nodes: []string{n}}
			for _, v := range cfg.RunningOn(n) {
				ev.VMs = append(ev.VMs, v.Name)
			}
			loop.Notify(act, ev)
		}
	})

	// drainedLoad reports whether any drained node still hosts a
	// running VM, in one O(VMs) pass.
	drainedLoad := func() bool {
		for _, v := range cfg.VMs() {
			if cfg.StateOf(v.Name) == vjob.Running && drainedSet[cfg.HostOf(v.Name)] {
				return true
			}
		}
		return false
	}

	// Emptiness probe: a cheap periodic tick (not per-event) that
	// records time-to-empty once and then takes fully empty nodes
	// offline, notifying the loop like an operator would.
	var probe func()
	probe = func() {
		if res.TimeToEmpty >= 0 {
			return
		}
		if !drainedLoad() {
			res.TimeToEmpty = c.Now() - opts.DrainAt
			for _, n := range drained {
				if c.SetNodeOffline(n) == nil {
					res.Offline++
					loop.Notify(act, core.Event{Kind: core.NodeDown, At: c.Now(), Nodes: []string{n}})
				}
			}
			return
		}
		c.Schedule(c.Now()+2, probe)
	}
	c.Schedule(opts.DrainAt+2, probe)

	violSec := monitor.WatchViolationSeconds(c)

	start := time.Now()
	loop.Start(act)
	c.Run(opts.Horizon)
	res.Wall = time.Since(start)
	res.ViolationSeconds = violSec()

	pinned := make(map[string]bool)
	for _, n := range drained {
		if len(cfg.RunningOn(n)) != 0 {
			continue
		}
		res.Evacuated++
		if sleeping := cfg.SleepingOn(n); len(sleeping) > 0 {
			res.PinnedByImage++
			for _, v := range sleeping {
				owner := v.Name
				if v.VJob != "" {
					owner = v.VJob
				}
				pinned[owner] = true
			}
		}
	}
	for owner := range pinned {
		res.PinnedVJobs = append(res.PinnedVJobs, owner)
	}
	sort.Strings(res.PinnedVJobs)
	res.InvariantBreaches = inv.StructuralCount()
	res.Stats = loop.Stats
	res.Switches = len(loop.Records)
	res.End = c.Now()
	for _, j := range jobs {
		if c.VJobDone(j) {
			res.Completed++
		}
	}
	return res
}

// DrainTable renders the study.
func DrainTable(r DrainResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Drain study — evacuate %d of %d nodes under churn (event-driven loop)\n", r.Drained, r.Nodes)
	fmt.Fprintf(&b, "%-22s %v\n", "evacuated", fmt.Sprintf("%d/%d (%d taken offline)", r.Evacuated, r.Drained, r.Offline))
	tte := "never"
	if r.TimeToEmpty >= 0 {
		tte = fmt.Sprintf("%.0f s", r.TimeToEmpty)
	}
	fmt.Fprintf(&b, "%-22s %s\n", "time-to-empty", tte)
	if r.PinnedByImage > 0 {
		fmt.Fprintf(&b, "%-22s %d node(s) pinned by suspended images of %s\n",
			"pinned-by-image", r.PinnedByImage, strings.Join(r.PinnedVJobs, ","))
	}
	fmt.Fprintf(&b, "%-22s %.0f\n", "violation-seconds", r.ViolationSeconds)
	fmt.Fprintf(&b, "%-22s %d\n", "invariant breaches", r.InvariantBreaches)
	fmt.Fprintf(&b, "%-22s %d sub-solves (%d slice, %d full), %d repairs, %d partition reuses\n",
		"solver", r.Stats.SubSolves, r.Stats.SliceSolves, r.Stats.FullSolves, r.Stats.Repairs, r.Stats.PartitionReuses)
	fmt.Fprintf(&b, "%-22s %d switches, %d/%d vjobs completed, end t=%.0f s\n",
		"run", r.Switches, r.Completed, r.Arrived, r.End)
	return b.String()
}

// DrainCSV renders the result for external plotting.
func DrainCSV(r DrainResult) string {
	var b strings.Builder
	b.WriteString("nodes,drained,evacuated,offline,pinned_by_image,time_to_empty,violation_seconds,invariant_breaches,sub_solves,slice_solves,full_solves,repairs,partition_reuses,switches,events,arrived,completed,end\n")
	fmt.Fprintf(&b, "%d,%d,%d,%d,%d,%.1f,%.1f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.0f\n",
		r.Nodes, r.Drained, r.Evacuated, r.Offline, r.PinnedByImage, r.TimeToEmpty, r.ViolationSeconds,
		r.InvariantBreaches, r.Stats.SubSolves, r.Stats.SliceSolves, r.Stats.FullSolves,
		r.Stats.Repairs, r.Stats.PartitionReuses, r.Switches, r.Stats.Events,
		r.Arrived, r.Completed, r.End)
	return b.String()
}
