package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestFig10Options(t *testing.T) {
	full := fig10Options(false, 7, 2)
	if full.Samples != 30 || full.Timeout != 40*time.Second {
		t.Fatalf("full options = %+v, want the paper's 30 samples x 40s", full)
	}
	if full.Seed != 7 {
		t.Fatal("seed not forwarded")
	}
	if full.Workers != 2 {
		t.Fatal("workers not forwarded")
	}
	quick := fig10Options(true, 7, 2)
	if quick.Samples >= full.Samples || quick.Timeout >= full.Timeout {
		t.Fatal("quick options not reduced")
	}
	if len(quick.VMCounts) == 0 || len(quick.VMCounts) >= len(full.VMCounts) {
		t.Fatalf("quick VM counts = %v", quick.VMCounts)
	}
}

func TestClusterRunsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the reduced cluster experiment")
	}
	fcfs, entropy := clusterRuns(true, 42, 1, false)
	if fcfs.Completion <= 0 || entropy.Completion <= 0 {
		t.Fatalf("completions = %v / %v", fcfs.Completion, entropy.Completion)
	}
	if entropy.Completion >= fcfs.Completion {
		t.Fatalf("entropy (%v) not faster than fcfs (%v)", entropy.Completion, fcfs.Completion)
	}
	// fcfsOnly skips the entropy run.
	onlyF, none := clusterRuns(true, 42, 1, true)
	if onlyF.Completion <= 0 {
		t.Fatal("fcfs-only run missing")
	}
	if none.Completion != 0 {
		t.Fatal("entropy run performed despite fcfsOnly")
	}
}

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	writeCSV(dir, "x.csv", "a,b\n1,2\n")
	data, err := os.ReadFile(filepath.Join(dir, "x.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "a,b\n1,2\n" {
		t.Fatalf("content = %q", data)
	}
	// Empty dir is a no-op.
	writeCSV("", "y.csv", "ignored")
}
