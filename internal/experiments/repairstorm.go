package experiments

import (
	"fmt"
	"strings"
)

// RepairStormOptions parameterizes the repair-storm study: the churn
// scenario pushed past its flat 2% action-failure rate, replayed at
// each storm rate twice — widening disabled (the PR 3 refuse-and-
// fall-back behavior) and enabled — to measure how many former failed
// repairs the region-widening splice recovers, and what it costs in
// violation exposure. Event-driven only: the periodic loop has no
// repair path to storm.
type RepairStormOptions struct {
	// Churn is the underlying scenario; FailureRate and RepairWiden
	// are overridden per cell.
	Churn ChurnOptions
	// Rates are the action-failure rates swept.
	Rates []float64
}

// DefaultRepairStormOptions is the BENCH_repair.json scenario: the
// 500-node churn cluster at 5/10/20% action-failure rates, with the
// structural-invariant audit on (a widened splice that corrupted the
// plan would surface here, not just in violation-seconds).
func DefaultRepairStormOptions() RepairStormOptions {
	churn := DefaultChurnOptions()
	churn.WatchInvariants = true
	return RepairStormOptions{Churn: churn, Rates: []float64{0.05, 0.10, 0.20}}
}

// RepairStormResult is one (rate, widening) cell of the study.
type RepairStormResult struct {
	// Rate is the action-failure rate of the cell.
	Rate float64
	// Widen reports whether region-widening was enabled.
	Widen bool
	// Repairs counts successful splices; WidenedRepairs the subset
	// that needed region expansion; RepairExpansions the expansion
	// steps; FailedRepairs the fall-backs to a post-execution
	// re-solve.
	Repairs, WidenedRepairs, RepairExpansions, FailedRepairs int
	// FullSolves counts monolithic fallbacks of the incremental loop.
	FullSolves int
	// ViolationSeconds integrates violation exposure over the run;
	// FinalViolations is the count at the horizon.
	ViolationSeconds float64
	FinalViolations  int
	// Breaches is the structural invariant-breach count (must be 0).
	Breaches int
	// Switches counts executed context switches.
	Switches int
	// TopVJob / TopNode name the worst-suffering vjob and node with
	// their violation-second integrals (attribution ledger; empty when
	// the cell stayed violation-free).
	TopVJob        string
	TopVJobSeconds float64
	TopNode        string
	TopNodeSeconds float64
}

// RepairStormStudy replays the scenario for every (rate, widening)
// cell. Within a rate the two cells replay the identical seeded
// scenario, so their repair counters are directly comparable.
func RepairStormStudy(opts RepairStormOptions) []RepairStormResult {
	var rows []RepairStormResult
	for _, rate := range opts.Rates {
		for _, widen := range []bool{false, true} {
			co := opts.Churn
			co.FailureRate = rate
			co.RepairWiden = -1
			if widen {
				co.RepairWiden = 0
			}
			r := RunChurn(true, co)
			rows = append(rows, RepairStormResult{
				Rate:             rate,
				Widen:            widen,
				Repairs:          r.Stats.Repairs,
				WidenedRepairs:   r.Stats.WidenedRepairs,
				RepairExpansions: r.Stats.RepairExpansions,
				FailedRepairs:    r.Stats.FailedRepairs,
				FullSolves:       r.Stats.FullSolves,
				ViolationSeconds: r.ViolationSeconds,
				FinalViolations:  r.FinalViolations,
				Breaches:         r.Breaches,
				Switches:         r.Switches,
				TopVJob:          r.TopVJob,
				TopVJobSeconds:   r.TopVJobSeconds,
				TopNode:          r.TopNode,
				TopNodeSeconds:   r.TopNodeSeconds,
			})
		}
	}
	return rows
}

// RecoveredFraction reports, for one rate's (off, on) pair, the share
// of the widening-off FailedRepairs that became successful splices
// with widening on. 1.0 means every former fallback now splices.
func RecoveredFraction(off, on RepairStormResult) float64 {
	if off.FailedRepairs == 0 {
		return 0
	}
	rec := off.FailedRepairs - on.FailedRepairs
	if rec < 0 {
		rec = 0
	}
	return float64(rec) / float64(off.FailedRepairs)
}

// RepairStormTable renders the study with one recovered-fraction line
// per rate.
func RepairStormTable(rows []RepairStormResult) string {
	var b strings.Builder
	b.WriteString("Repair storm: region-widening off vs on under action-failure storms (event-driven loop)\n")
	fmt.Fprintf(&b, "%6s %5s %8s %8s %8s %8s %8s %10s %8s %9s\n",
		"rate", "widen", "repairs", "widened", "expand", "failed", "full", "viol-sec", "final", "breaches")
	for _, r := range rows {
		widen := "off"
		if r.Widen {
			widen = "on"
		}
		fmt.Fprintf(&b, "%5.0f%% %5s %8d %8d %8d %8d %8d %10.0f %8d %9d\n",
			r.Rate*100, widen, r.Repairs, r.WidenedRepairs, r.RepairExpansions,
			r.FailedRepairs, r.FullSolves, r.ViolationSeconds, r.FinalViolations, r.Breaches)
	}
	for i := 0; i+1 < len(rows); i += 2 {
		off, on := rows[i], rows[i+1]
		if off.Widen || !on.Widen || off.Rate != on.Rate {
			continue
		}
		fmt.Fprintf(&b, "rate %.0f%%: %.0f%% of former failed repairs recovered by widening (%d -> %d), violation-seconds %.0f -> %.0f\n",
			off.Rate*100, RecoveredFraction(off, on)*100,
			off.FailedRepairs, on.FailedRepairs, off.ViolationSeconds, on.ViolationSeconds)
	}
	return b.String()
}

// RepairStormCSV renders the rows for external plotting.
func RepairStormCSV(rows []RepairStormResult) string {
	var b strings.Builder
	b.WriteString("rate,widen,repairs,widened_repairs,repair_expansions,failed_repairs,full_solves,violation_seconds,final_violations,breaches,switches,top_vjob,top_vjob_viol_sec,top_node,top_node_viol_sec\n")
	for _, r := range rows {
		widen := "off"
		if r.Widen {
			widen = "on"
		}
		fmt.Fprintf(&b, "%.2f,%s,%d,%d,%d,%d,%d,%.1f,%d,%d,%d,%s,%.1f,%s,%.1f\n",
			r.Rate, widen, r.Repairs, r.WidenedRepairs, r.RepairExpansions,
			r.FailedRepairs, r.FullSolves, r.ViolationSeconds, r.FinalViolations,
			r.Breaches, r.Switches, r.TopVJob, r.TopVJobSeconds, r.TopNode, r.TopNodeSeconds)
	}
	return b.String()
}
