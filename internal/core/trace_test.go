package core

import (
	"testing"

	"cwcs/internal/obs"
	"cwcs/internal/vjob"
)

// spansByKind indexes a span stream for assertions.
func spansByKind(spans []obs.SpanRecord) map[string][]obs.SpanRecord {
	out := map[string][]obs.SpanRecord{}
	for _, s := range spans {
		out[s.Kind] = append(out[s.Kind], s)
	}
	return out
}

// TestLoopTraceSpansEndToEnd replays the dirty-slice scenario with a
// tracer attached and checks the causal span chain the pipeline must
// emit: one reconfiguration span rooted at the arrival event, with
// debounce, wake, carve and solve children all carrying its cause ID,
// closed when the loop goes idle again.
func TestLoopTraceSpansEndToEnd(t *testing.T) {
	cfg, rules, jobs := fencedChurnCluster(t)
	l, a := eventLoop(cfg, rules, jobs)
	tr := obs.NewTracer(256)
	l.Trace = tr
	l.Start(a)
	a.run(4)

	a.Schedule(5, func() {
		arrive(t, cfg, "a2", "ja", "n00")
		l.Notify(a, Event{Kind: VMArrival, At: a.Now(), Nodes: []string{"n00"}, VMs: []string{"a2"}})
	})
	a.run(40)

	if !cfg.Viable() {
		t.Fatalf("cluster still non-viable: %v", cfg.Violations())
	}
	if got := tr.Cause(); got != 0 {
		t.Fatalf("loop idle but cause still %d: reconfiguration span not closed", got)
	}

	byKind := spansByKind(tr.Recent(0))
	recs := byKind["reconfig"]
	if len(recs) != 1 {
		t.Fatalf("reconfig spans = %d, want 1 (one causal episode)", len(recs))
	}
	root := recs[0]
	if root.Name != VMArrival.String() {
		t.Errorf("reconfig span name = %q, want the triggering event kind %q", root.Name, VMArrival.String())
	}
	if root.Events < 1 {
		t.Errorf("reconfig span events = %d, want >= 1", root.Events)
	}
	if root.Cause != root.ID {
		t.Errorf("reconfig span must self-cause: id=%d cause=%d", root.ID, root.Cause)
	}
	if root.VirtStart < 5 || root.VirtEnd <= root.VirtStart {
		t.Errorf("reconfig span bounds [%g, %g] do not cover the episode", root.VirtStart, root.VirtEnd)
	}

	for _, kind := range []string{"debounce", "wake", "carve", "solve"} {
		ss := byKind[kind]
		if len(ss) == 0 {
			t.Errorf("no %s span recorded", kind)
			continue
		}
		for _, s := range ss {
			if s.Cause != root.ID && s.VirtStart >= root.VirtStart {
				t.Errorf("%s span %d has cause %d, want %d", kind, s.ID, s.Cause, root.ID)
			}
		}
	}

	var switched int
	for _, w := range byKind["wake"] {
		if w.Switch {
			switched++
			if w.Name != "incremental" {
				t.Errorf("switching wake named %q, want incremental", w.Name)
			}
		}
	}
	if switched != 1 {
		t.Errorf("wake spans with Switch = %d, want 1", switched)
	}
	for _, s := range byKind["solve"] {
		if s.Name == "slice" && s.SubSolves != 1 {
			t.Errorf("slice solve sub_solves = %d, want 1", s.SubSolves)
		}
	}
	marks := map[string]bool{}
	for _, m := range byKind["mark"] {
		marks[m.Name] = true
	}
	if !marks["loop-start"] || !marks["switch-done"] {
		t.Errorf("lifecycle marks missing: %v", marks)
	}

	// Latency histograms fed by the same episode.
	for _, h := range tr.Histograms() {
		s := h.Snapshot()
		switch s.Name {
		case "cwcs_solve_duration_seconds", "cwcs_wake_to_switch_seconds", "cwcs_event_to_remediation_vseconds":
			if s.Count == 0 {
				t.Errorf("%s has no samples after a full episode", s.Name)
			}
		}
	}

	// A second episode opens (and closes) its own reconfiguration span.
	a.Schedule(a.now+5, func() {
		arrive(t, cfg, "b2", "jb", "n02")
		l.Notify(a, Event{Kind: VMArrival, At: a.Now(), Nodes: []string{"n02"}, VMs: []string{"b2"}})
	})
	a.run(a.now + 40)
	recs = spansByKind(tr.Recent(0))["reconfig"]
	if len(recs) != 2 {
		t.Fatalf("reconfig spans after second arrival = %d, want 2", len(recs))
	}
	if recs[1].ID == recs[0].ID || recs[1].Cause != recs[1].ID {
		t.Errorf("second episode did not get its own cause: %+v", recs[1])
	}
	if tr.Cause() != 0 {
		t.Errorf("cause %d still live after both episodes closed", tr.Cause())
	}
}

// TestLoopTraceSpliceSpan injects an action failure so the loop
// repairs the in-flight plan, and checks the splice span records the
// attempt with its outcome.
func TestLoopTraceSpliceSpan(t *testing.T) {
	cfg, rules, jobs := fencedChurnCluster(t)
	l, a := eventLoop(cfg, rules, jobs)
	tr := obs.NewTracer(256)
	l.Trace = tr
	a.failVMs = map[string]bool{}
	l.Start(a)
	a.run(2)

	a.Schedule(5, func() {
		arrive(t, cfg, "a2", "ja", "n00")
		arrive(t, cfg, "b2", "jb", "n02")
		a.failVMs["a2"] = true
		l.Notify(a, Event{Kind: VMArrival, At: a.Now(), VMs: []string{"a2", "b2"}, Nodes: []string{"n00", "n02"}})
	})
	a.Schedule(8.5, func() { a.failVMs = map[string]bool{} })
	a.run(120)

	if !cfg.Viable() {
		t.Fatalf("cluster still non-viable: %v", cfg.Violations())
	}
	if l.Stats.Repairs == 0 {
		t.Fatalf("failure did not trigger a repair: %+v", l.Stats)
	}
	var spliced []obs.SpanRecord
	for _, s := range tr.Recent(0) {
		if s.Kind == "splice" && s.Outcome == "spliced" {
			spliced = append(spliced, s)
		}
	}
	if len(spliced) == 0 {
		t.Fatal("no splice span with outcome spliced recorded")
	}
	if spliced[0].Cause == 0 {
		t.Error("splice span carries no cause: repair not attributed to its reconfiguration")
	}
	if spliced[0].WallSeconds < 0 {
		t.Errorf("splice wall duration = %g", spliced[0].WallSeconds)
	}
}

// TestLoopTraceDisabledIsByteIdentical runs the same scenario with and
// without a tracer and checks the loop's observable behaviour does not
// depend on tracing.
func TestLoopTraceDisabledIsByteIdentical(t *testing.T) {
	run := func(tr *obs.Tracer) (LoopStats, int) {
		cfg, rules, jobs := fencedChurnCluster(t)
		l, a := eventLoop(cfg, rules, jobs)
		l.Trace = tr
		l.Start(a)
		a.run(4)
		a.Schedule(5, func() {
			arrive(t, cfg, "a2", "ja", "n00")
			l.Notify(a, Event{Kind: VMArrival, At: a.Now(), Nodes: []string{"n00"}, VMs: []string{"a2"}})
		})
		a.run(40)
		return l.Stats, len(l.Records)
	}
	offStats, offRecs := run(nil)
	onStats, onRecs := run(obs.NewTracer(64))
	if offStats != onStats || offRecs != onRecs {
		t.Fatalf("tracing changed loop behaviour:\n off %+v (%d switches)\n on  %+v (%d switches)",
			offStats, offRecs, onStats, onRecs)
	}
}

// BenchmarkLoopTracingOff is the regress-gated proof that disabled
// tracing does not tax the event loop: the identical scenario to
// BenchmarkLoopEventIteration with Trace explicitly nil. The 0-alloc
// claim for the instrumentation itself is pinned by
// TestNilTracerIsInertAndFree in internal/obs; this benchmark pins the
// end-to-end ns/op against BENCH_obs.json.
func BenchmarkLoopTracingOff(b *testing.B) {
	benchLoopIteration(b, nil, nil)
}

// BenchmarkLoopTracingOn measures the same iteration with a live
// tracer, so the tracing tax is the delta to BenchmarkLoopTracingOff.
// Not regress-gated: it exists for comparison.
func BenchmarkLoopTracingOn(b *testing.B) {
	benchLoopIteration(b, obs.NewTracer(0), nil)
}

// BenchmarkLoopAttributionOff pins the attribution era's inert hot
// path: tracer AND solver telemetry both nil, so the cause-kind
// bookkeeping and recordSolve guards added for per-solve attribution
// are all the scenario can cost. Regress-gated against
// BENCH_attrib.json; the nil-ledger 0-alloc claim is pinned by
// TestLedgerNilIsInertAndFree in internal/monitor.
func BenchmarkLoopAttributionOff(b *testing.B) {
	benchLoopIteration(b, nil, nil)
}

// BenchmarkLoopAttributionOn measures the same iteration with live
// solver telemetry, so the attribution tax is the delta to
// BenchmarkLoopAttributionOff. Not regress-gated: it exists for
// comparison.
func BenchmarkLoopAttributionOn(b *testing.B) {
	benchLoopIteration(b, nil, NewSolverTelemetry(0))
}

func benchLoopIteration(b *testing.B, tr *obs.Tracer, st *SolverTelemetry) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg, rules, jobs := benchChurnCluster(b, 64)
		a := &fakeManaged{fakeActuator: fakeActuator{cfg: cfg}, poolSecs: 1}
		l := &Loop{
			Decision:    keepAll,
			EventDriven: true,
			Debounce:    1,
			Optimizer:   Optimizer{Partitions: 0, Workers: 1},
			Rules:       rules,
			Queue:       func() []*vjob.VJob { return jobs },
			Trace:       tr,
			Solver:      st,
		}
		l.Start(a)
		a.run(1)
		cfg.AddVM(vjob.NewVM("x000", "j000", 1, 1024))
		if err := cfg.SetRunning("x000", "n000"); err != nil {
			b.Fatal(err)
		}
		l.Notify(a, Event{Kind: VMArrival, VMs: []string{"x000"}, Nodes: []string{"n000"}})
		a.run(100)
		if l.Stats.SliceSolves == 0 {
			b.Fatal("no slice solve happened")
		}
	}
}
