package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"cwcs/internal/core"
	"cwcs/internal/drivers"
	"cwcs/internal/duration"
	"cwcs/internal/monitor"
	"cwcs/internal/resources"
	"cwcs/internal/sched"
	"cwcs/internal/sim"
	"cwcs/internal/vjob"
)

// testbed is a miniature daemon: a simulated cluster driven by an
// event-driven loop, with the control plane mounted over a mutex the
// sim driver shares — the same serialization cmd/entropyd uses.
type testbed struct {
	t    *testing.T
	mu   sync.Mutex
	c    *sim.Cluster
	cfg  *vjob.Configuration
	loop *core.Loop
	act  *drivers.Actuator
	inv  *sim.Invariants
	jobs []*vjob.VJob

	violSec func() float64

	srv *Server
	ts  *httptest.Server
}

func newTestbed(t *testing.T, nodes, cpu, mem int) *testbed {
	t.Helper()
	b := &testbed{t: t, cfg: vjob.NewConfiguration()}
	for i := 0; i < nodes; i++ {
		b.cfg.AddNode(vjob.NewNode(fmt.Sprintf("node%03d", i), cpu, mem))
	}
	b.c = sim.New(b.cfg, duration.Default())
	b.inv = sim.WatchInvariants(b.c)
	b.act = &drivers.Actuator{C: b.c}
	drains := &core.DrainSet{}
	b.loop = &core.Loop{
		Decision:    sched.Consolidation{},
		Optimizer:   core.Optimizer{Timeout: 2 * time.Second, Workers: 1},
		EventDriven: true,
		Debounce:    2,
		Drains:      drains,
		Queue:       func() []*vjob.VJob { return b.jobs },
	}
	led := monitor.WatchLedger(b.c, drains.Rules)
	b.violSec = led.Total
	b.loop.Solver = core.NewSolverTelemetry(0)
	b.c.OnLoadChange(func(vm string) {
		b.loop.Notify(b.act, core.Event{Kind: core.LoadChange, At: b.c.Now(), VMs: []string{vm}})
	})

	exec := func(fn func()) {
		b.mu.Lock()
		defer b.mu.Unlock()
		fn()
	}
	b.srv = &Server{
		Exec:     exec,
		Now:      b.c.Now,
		Config:   b.c.Config,
		Stats:    func() core.LoopStats { return b.loop.Stats },
		Switches: func() int { return len(b.loop.Records) },
		Execution: func() *drivers.Execution {
			ex, _ := b.loop.Execution().(*drivers.Execution)
			return ex
		},
		Notify:           func(ev core.Event) { b.loop.Notify(b.act, ev) },
		Drains:           drains,
		OnUndrain:        b.onUndrain,
		Submit:           b.submit,
		Withdraw:         b.withdraw,
		ViolationSeconds: b.violSec,
		QueueDepth:       func() int { return len(b.jobs) },
		Ledger:           led,
		Solver:           b.loop.Solver,
	}
	b.ts = httptest.NewServer(b.srv.Handler())
	t.Cleanup(b.ts.Close)
	return b
}

// onUndrain brings an offline node back before the loop may place work
// on it again.
func (b *testbed) onUndrain(node string) error {
	if b.cfg.Node(node) == nil {
		return b.c.SetNodeOnline(node)
	}
	return nil
}

// submit installs a vjob from the API spec: VMs enter Waiting and the
// loop is notified of the arrival.
func (b *testbed) submit(spec VJobSpec) error {
	for _, j := range b.jobs {
		if j.Name == spec.Name {
			return fmt.Errorf("vjob %s already exists", spec.Name)
		}
	}
	var vms []*vjob.VM
	var names []string
	for _, v := range spec.VMs {
		if b.cfg.VM(v.Name) != nil {
			return fmt.Errorf("VM %s already exists", v.Name)
		}
		vms = append(vms, vjob.NewVM(v.Name, spec.Name, v.CPU, v.Memory))
		names = append(names, v.Name)
	}
	job := vjob.NewVJob(spec.Name, len(b.jobs), vms...)
	job.Submitted = b.c.Now()
	for i, v := range vms {
		b.cfg.AddVM(v)
		var phases []sim.Phase
		for _, p := range spec.VMs[i].Phases {
			phases = append(phases, sim.Phase{CPU: p.CPU, Seconds: p.Seconds})
		}
		if len(phases) > 0 {
			b.c.SetWorkload(v.Name, phases)
		}
	}
	b.jobs = append(b.jobs, job)
	b.loop.Notify(b.act, core.Event{Kind: core.VMArrival, At: b.c.Now(), VMs: names})
	return nil
}

// withdraw removes a vjob whose VMs are still all waiting.
func (b *testbed) withdraw(name string) error {
	for i, j := range b.jobs {
		if j.Name != name {
			continue
		}
		var names []string
		for _, v := range j.VMs {
			if b.cfg.VM(v.Name) != nil && b.cfg.StateOf(v.Name) != vjob.Waiting {
				return fmt.Errorf("vjob %s is already placed; let it finish", name)
			}
			names = append(names, v.Name)
		}
		for _, vn := range names {
			b.cfg.RemoveVM(vn)
		}
		b.jobs = append(b.jobs[:i], b.jobs[i+1:]...)
		b.loop.Notify(b.act, core.Event{Kind: core.VMDeparture, At: b.c.Now(), VMs: names})
		return nil
	}
	return fmt.Errorf("unknown vjob %s", name)
}

// place starts a running vjob of n VMs round-robin over the given
// nodes, with a long single-phase workload so demand persists.
func (b *testbed) place(job string, n, cpu, mem int, nodes []string) *vjob.VJob {
	b.t.Helper()
	var vms []*vjob.VM
	for i := 0; i < n; i++ {
		vms = append(vms, vjob.NewVM(fmt.Sprintf("%s-vm%d", job, i), job, cpu, mem))
	}
	j := vjob.NewVJob(job, len(b.jobs), vms...)
	for i, v := range vms {
		b.cfg.AddVM(v)
		if err := b.cfg.SetRunning(v.Name, nodes[i%len(nodes)]); err != nil {
			b.t.Fatalf("place %s: %v", v.Name, err)
		}
		b.c.SetWorkload(v.Name, []sim.Phase{{CPU: cpu, Seconds: 1e6}})
	}
	b.jobs = append(b.jobs, j)
	return j
}

// advance runs the simulator forward dt virtual seconds.
func (b *testbed) advance(dt float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.c.Run(b.c.Now() + dt)
}

// locked runs fn under the sim mutex (the test-side Exec).
func (b *testbed) locked(fn func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	fn()
}

func (b *testbed) get(t *testing.T, path string, want int) []byte {
	t.Helper()
	resp, err := http.Get(b.ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != want {
		t.Fatalf("GET %s: status %d (want %d): %s", path, resp.StatusCode, want, body)
	}
	return body
}

func (b *testbed) do(t *testing.T, method, path string, body any, want int) []byte {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, b.ts.URL+path, rd)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != want {
		t.Fatalf("%s %s: status %d (want %d): %s", method, path, resp.StatusCode, want, data)
	}
	return data
}

func TestHealthzAndRouting(t *testing.T) {
	b := newTestbed(t, 4, 2, 4096)
	var health map[string]string
	if err := json.Unmarshal(b.get(t, "/healthz", http.StatusOK), &health); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if health["status"] != "ok" {
		t.Fatalf("healthz: %v", health)
	}
	if resp, err := http.Get(b.ts.URL + "/nope"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path: %v %v", resp.StatusCode, err)
	}
	// Wrong method on a routed path.
	resp, err := http.Post(b.ts.URL+"/v1/config", "application/json", nil)
	if err != nil || resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/config: %v %v", resp.StatusCode, err)
	}
}

func TestConfigEndpointRoundTrips(t *testing.T) {
	b := newTestbed(t, 4, 2, 4096)
	b.place("ja", 2, 1, 1024, []string{"node000", "node001"})
	body := b.get(t, "/v1/config", http.StatusOK)
	got := vjob.NewConfiguration()
	if err := json.Unmarshal(body, got); err != nil {
		t.Fatalf("config decode: %v", err)
	}
	if got.NumNodes() != 4 || got.NumVMs() != 2 {
		t.Fatalf("config: %d nodes, %d VMs", got.NumNodes(), got.NumVMs())
	}
	if got.HostOf("ja-vm0") != "node000" {
		t.Fatalf("config: ja-vm0 on %q", got.HostOf("ja-vm0"))
	}
}

func TestEventInjection(t *testing.T) {
	b := newTestbed(t, 4, 2, 4096)
	b.place("ja", 2, 1, 1024, []string{"node000", "node001"})
	events := []map[string]any{{"kind": "load-change", "vms": []string{"ja-vm0"}}}
	var acc map[string]int
	if err := json.Unmarshal(b.do(t, "POST", "/v1/events", events, http.StatusAccepted), &acc); err != nil {
		t.Fatalf("events: %v", err)
	}
	if acc["accepted"] != 1 {
		t.Fatalf("accepted %d", acc["accepted"])
	}
	b.locked(func() {
		if b.loop.Stats.Events != 1 {
			t.Fatalf("loop saw %d events", b.loop.Stats.Events)
		}
	})
	// Unknown kinds, injected failures and malformed bodies are all 400.
	b.do(t, "POST", "/v1/events", []map[string]any{{"kind": "bogus"}}, http.StatusBadRequest)
	b.do(t, "POST", "/v1/events", []map[string]any{{"kind": "action-failure"}}, http.StatusBadRequest)
	b.do(t, "POST", "/v1/events", map[string]any{"kind": "load-change"}, http.StatusBadRequest)
}

func TestNodeEndpoints(t *testing.T) {
	b := newTestbed(t, 4, 2, 4096)
	b.place("ja", 2, 1, 1024, []string{"node000", "node001"})
	var nodes []nodeJSON
	if err := json.Unmarshal(b.get(t, "/v1/nodes", http.StatusOK), &nodes); err != nil {
		t.Fatalf("nodes: %v", err)
	}
	if len(nodes) != 4 {
		t.Fatalf("nodes: %d", len(nodes))
	}
	var n0 nodeJSON
	if err := json.Unmarshal(b.get(t, "/v1/nodes/node000", http.StatusOK), &n0); err != nil {
		t.Fatalf("node000: %v", err)
	}
	if n0.UsedCPU != 1 || len(n0.Running) != 1 || n0.Draining {
		t.Fatalf("node000: %+v", n0)
	}
	b.get(t, "/v1/nodes/ghost", http.StatusNotFound)
	b.do(t, "POST", "/v1/nodes/ghost/drain", nil, http.StatusNotFound)
	b.do(t, "POST", "/v1/nodes/ghost/undrain", nil, http.StatusNotFound)
}

// TestNodePinnedByImageReason pins the drain-stuck diagnosis: a
// draining node whose only remaining content is a suspended image
// reports reason "pinned-by-image" with the owning vjobs, while a
// draining node still running guests reports "in-progress" — so an
// operator can tell a stuck drain from a slow one.
func TestNodePinnedByImageReason(t *testing.T) {
	b := newTestbed(t, 3, 2, 4096)
	b.place("ja", 1, 1, 1024, []string{"node000"})
	// jb suspends to node001: the drain order can never evacuate the
	// image — only resuming or withdrawing jb frees the node.
	b.locked(func() {
		vm := vjob.NewVM("jb-vm0", "jb", 1, 1024)
		b.cfg.AddVM(vm)
		if err := b.cfg.SetSleeping("jb-vm0", "node001"); err != nil {
			t.Fatalf("suspend jb-vm0: %v", err)
		}
	})

	var st nodeJSON
	if err := json.Unmarshal(b.do(t, "POST", "/v1/nodes/node001/drain", nil, http.StatusAccepted), &st); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st.Evacuated || st.Reason != ReasonPinnedByImage {
		t.Fatalf("draining image node: %+v", st)
	}
	if len(st.PinnedBy) != 1 || st.PinnedBy[0] != "jb" {
		t.Fatalf("pinnedBy = %v, want [jb]", st.PinnedBy)
	}
	// The diagnosis persists on reads, and survives the loop running:
	// the optimizer cannot move an image.
	b.advance(60)
	st = nodeJSON{}
	if err := json.Unmarshal(b.get(t, "/v1/nodes/node001", http.StatusOK), &st); err != nil {
		t.Fatalf("node001: %v", err)
	}
	if st.Evacuated || st.Reason != ReasonPinnedByImage || len(st.PinnedBy) != 1 {
		t.Fatalf("after loop: %+v", st)
	}

	// A draining node with running guests is merely in progress: no
	// pinning vjobs are reported.
	st = nodeJSON{}
	if err := json.Unmarshal(b.do(t, "POST", "/v1/nodes/node000/drain", nil, http.StatusAccepted), &st); err != nil {
		t.Fatalf("drain node000: %v", err)
	}
	if st.Reason != ReasonInProgress || st.PinnedBy != nil {
		t.Fatalf("draining busy node: %+v", st)
	}
	// An undrained node carries no reason at all.
	st = nodeJSON{}
	if err := json.Unmarshal(b.get(t, "/v1/nodes/node002", http.StatusOK), &st); err != nil {
		t.Fatalf("node002: %v", err)
	}
	if st.Reason != "" || st.PinnedBy != nil {
		t.Fatalf("clean node: %+v", st)
	}
}

// TestMetricsExposition is registry-driven: metricFamilies() is the
// single source of truth, so every family it reports with samples must
// appear in the scrape with its HELP/TYPE headers and every sample
// series, while a family that has no samples yet must not leave orphan
// headers. A new family added to the registry is covered automatically
// — there is no hand-kept name list to forget.
func TestMetricsExposition(t *testing.T) {
	b := newTestbed(t, 4, 2, 4096)
	b.place("ja", 2, 1, 1024, []string{"node000", "node001"})
	b.advance(60) // bootstrap iteration
	text := string(b.get(t, "/metrics", http.StatusOK))
	fams := b.srv.metricFamilies()
	if len(fams) < 20 {
		t.Fatalf("metric registry shrank to %d families", len(fams))
	}
	names := map[string]bool{}
	for _, f := range fams {
		names[f.name] = true
		if len(f.samples) == 0 {
			if strings.Contains(text, "# TYPE "+f.name+" ") {
				t.Errorf("family %s has no samples but left headers in the exposition", f.name)
			}
			continue
		}
		if !strings.Contains(text, "# HELP "+f.name+" "+f.help) ||
			!strings.Contains(text, "# TYPE "+f.name+" "+f.typ) {
			t.Errorf("metrics: headers of %s missing", f.name)
		}
		for _, smp := range f.samples {
			re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(f.name+smp.labels) + ` `)
			if !re.MatchString(text) {
				t.Errorf("metrics: series %s%s missing", f.name, smp.labels)
			}
		}
	}
	// The attribution-era families cannot silently leave the registry.
	for _, want := range []string{
		"cwcs_solves_total", "cwcs_violation_seconds_total",
		"cwcs_portfolio_wins_total", "cwcs_warm_start_hits_total",
		"cwcs_warm_start_misses_total", "cwcs_rule_breach_seconds_total",
		"cwcs_state_watch_drops_total", "cwcs_queue_depth",
	} {
		if !names[want] {
			t.Errorf("family %s missing from the registry", want)
		}
	}
	if v := metricValue(t, text, "cwcs_queue_depth"); v != 1 {
		t.Fatalf("queue depth %g", v)
	}
}

// metricValue extracts one sample from the exposition text.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` ([0-9.eE+-]+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("metric %s not found:\n%s", name, text)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s: %v", name, err)
	}
	return v
}

func TestVJobSubmitAndWithdraw(t *testing.T) {
	b := newTestbed(t, 4, 2, 4096)
	spec := VJobSpec{Name: "jx", VMs: []VMSpec{
		{Name: "jx-vm0", CPU: 1, Memory: 1024, Phases: []PhaseSpec{{CPU: 1, Seconds: 300}}},
	}}
	b.do(t, "POST", "/v1/vjobs", spec, http.StatusAccepted)
	// Resubmitting the same name conflicts; malformed bodies are 400.
	b.do(t, "POST", "/v1/vjobs", spec, http.StatusConflict)
	b.do(t, "POST", "/v1/vjobs", VJobSpec{Name: ""}, http.StatusBadRequest)
	b.do(t, "POST", "/v1/vjobs", VJobSpec{Name: "jy", VMs: []VMSpec{{Name: ""}}}, http.StatusBadRequest)
	// Duplicate VM names within one spec and negative phase values are
	// rejected before they can corrupt the simulator.
	b.do(t, "POST", "/v1/vjobs", VJobSpec{Name: "jz", VMs: []VMSpec{
		{Name: "jz-vm0", CPU: 1, Memory: 512}, {Name: "jz-vm0", CPU: 2, Memory: 8192},
	}}, http.StatusBadRequest)
	b.do(t, "POST", "/v1/vjobs", VJobSpec{Name: "jn", VMs: []VMSpec{
		{Name: "jn-vm0", CPU: 1, Memory: 512, Phases: []PhaseSpec{{CPU: -5, Seconds: 100}}},
	}}, http.StatusBadRequest)

	// The loop places the arrival on the next wake-up.
	b.advance(30)
	b.locked(func() {
		if st := b.cfg.StateOf("jx-vm0"); st != vjob.Running {
			t.Fatalf("jx-vm0 is %v after the wake-up", st)
		}
	})
	// A placed vjob cannot be withdrawn; an unknown one is a conflict
	// too.
	b.do(t, "DELETE", "/v1/vjobs/jx", nil, http.StatusConflict)
	b.do(t, "DELETE", "/v1/vjobs/ghost", nil, http.StatusConflict)

	// A still-waiting vjob withdraws cleanly.
	spec2 := VJobSpec{Name: "jw", VMs: []VMSpec{{Name: "jw-vm0", CPU: 1, Memory: 1024}}}
	b.do(t, "POST", "/v1/vjobs", spec2, http.StatusAccepted)
	b.do(t, "DELETE", "/v1/vjobs/jw", nil, http.StatusOK)
	b.locked(func() {
		if b.cfg.VM("jw-vm0") != nil {
			t.Fatal("jw-vm0 still in the configuration")
		}
	})
}

func TestPlanStatusDuringExecution(t *testing.T) {
	b := newTestbed(t, 6, 2, 4096)
	b.place("ja", 4, 1, 1024, []string{"node000", "node001", "node002", "node003"})
	// Idle: no plan.
	var idle planJSON
	if err := json.Unmarshal(b.get(t, "/v1/plan", http.StatusOK), &idle); err != nil {
		t.Fatalf("plan: %v", err)
	}
	if idle.Executing || len(idle.Actions) != 0 {
		t.Fatalf("idle plan: %+v", idle)
	}
	// Drain a hosting node, then catch the evacuation mid-flight.
	b.do(t, "POST", "/v1/nodes/node000/drain", nil, http.StatusAccepted)
	var got planJSON
	for i := 0; i < 200; i++ {
		b.advance(0.5)
		var busy bool
		b.locked(func() { busy = b.loop.Busy() })
		if !busy {
			continue
		}
		if err := json.Unmarshal(b.get(t, "/v1/plan", http.StatusOK), &got); err != nil {
			t.Fatalf("plan: %v", err)
		}
		if got.Executing {
			break
		}
	}
	if !got.Executing || len(got.Actions) == 0 {
		t.Fatalf("never observed an executing plan: %+v", got)
	}
	seen := map[string]bool{}
	for _, a := range got.Actions {
		seen[a.Phase] = true
		if a.Action == "" || a.VM == "" {
			t.Fatalf("action missing fields: %+v", a)
		}
	}
	if !seen["running"] && !seen["pending"] && !seen["done"] {
		t.Fatalf("phases: %+v", got.Actions)
	}
}

// TestDrainEndToEnd is the acceptance scenario: drain a hosting node
// of a 100-node cluster through the API, let the event-driven loop
// evacuate it with zero invariant breaches, take it offline, bring it
// back with undrain, and scrape the metrics the whole time.
func TestDrainEndToEnd(t *testing.T) {
	b := newTestbed(t, 100, 2, 4096)
	var busyNodes []string
	for i := 0; i < 60; i++ {
		busyNodes = append(busyNodes, fmt.Sprintf("node%03d", i))
	}
	for j := 0; j < 30; j++ {
		b.place(fmt.Sprintf("job%02d", j), 4, 1, 1024, busyNodes[j*2:j*2+2])
	}
	b.advance(5) // bootstrap: everything is already satisfied

	target := "node000"
	var drained nodeJSON
	if err := json.Unmarshal(b.do(t, "POST", "/v1/nodes/"+target+"/drain", nil, http.StatusAccepted), &drained); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !drained.Draining || drained.Evacuated {
		t.Fatalf("drain response: %+v", drained)
	}
	// Draining twice is idempotent.
	b.do(t, "POST", "/v1/nodes/"+target+"/drain", nil, http.StatusAccepted)

	evacuated := false
	for i := 0; i < 120 && !evacuated; i++ {
		b.advance(10)
		var st nodeJSON
		if err := json.Unmarshal(b.get(t, "/v1/nodes/"+target, http.StatusOK), &st); err != nil {
			t.Fatalf("node status: %v", err)
		}
		evacuated = st.Evacuated
	}
	if !evacuated {
		t.Fatal("node was not evacuated")
	}
	b.locked(func() {
		if err := b.inv.Err(); err != nil {
			t.Fatalf("invariant breaches during evacuation: %v", err)
		}
		if !b.cfg.Viable() {
			t.Fatalf("non-viable configuration after evacuation: %v", b.cfg.Violations())
		}
		if n := len(b.cfg.RunningOn(target)); n != 0 {
			t.Fatalf("%d VMs still on %s", n, target)
		}
		if b.loop.Stats.SolverCalls == 0 {
			t.Fatal("evacuation without solver calls")
		}
	})

	// Maintenance: take the empty node offline; the API still reports
	// it as operator state.
	b.locked(func() {
		if err := b.c.SetNodeOffline(target); err != nil {
			t.Fatalf("offline: %v", err)
		}
	})
	var off nodeJSON
	if err := json.Unmarshal(b.get(t, "/v1/nodes/"+target, http.StatusOK), &off); err != nil {
		t.Fatalf("offline status: %v", err)
	}
	if !off.Offline || !off.Draining {
		t.Fatalf("offline status: %+v", off)
	}

	// Undrain restores the node (the OnUndrain hook brings it online).
	var back nodeJSON
	if err := json.Unmarshal(b.do(t, "POST", "/v1/nodes/"+target+"/undrain", nil, http.StatusOK), &back); err != nil {
		t.Fatalf("undrain: %v", err)
	}
	if back.Draining || back.Offline || back.CPU != 2 {
		t.Fatalf("undrain status: %+v", back)
	}
	b.locked(func() {
		if b.cfg.Node(target) == nil {
			t.Fatal("node missing after undrain")
		}
	})

	// The restored node is usable again: submit work that the loop
	// places.
	spec := VJobSpec{Name: "after", VMs: []VMSpec{
		{Name: "after-vm0", CPU: 1, Memory: 1024, Phases: []PhaseSpec{{CPU: 1, Seconds: 1e6}}},
		{Name: "after-vm1", CPU: 1, Memory: 1024, Phases: []PhaseSpec{{CPU: 1, Seconds: 1e6}}},
	}}
	b.do(t, "POST", "/v1/vjobs", spec, http.StatusAccepted)
	placed := false
	for i := 0; i < 60 && !placed; i++ {
		b.advance(10)
		b.locked(func() {
			placed = b.cfg.StateOf("after-vm0") == vjob.Running && b.cfg.StateOf("after-vm1") == vjob.Running
		})
	}
	if !placed {
		t.Fatal("submitted vjob never placed after undrain")
	}
	b.locked(func() {
		if err := b.inv.Err(); err != nil {
			t.Fatalf("invariant breaches: %v", err)
		}
	})

	// The metrics surface the whole story.
	text := string(b.get(t, "/metrics", http.StatusOK))
	if v := metricValue(t, text, "cwcs_solves_total"); v < 1 {
		t.Fatalf("solves %g", v)
	}
	if v := metricValue(t, text, "cwcs_switches_total"); v < 1 {
		t.Fatalf("switches %g", v)
	}
	if v := metricValue(t, text, "cwcs_draining_nodes"); v != 0 {
		t.Fatalf("draining nodes %g", v)
	}
	metricValue(t, text, "cwcs_violation_seconds_total")

	var stats statsJSON
	if err := json.Unmarshal(b.get(t, "/v1/stats", http.StatusOK), &stats); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if stats.Loop.SolverCalls < 1 || stats.QueueDepth < 1 {
		t.Fatalf("stats: %+v", stats)
	}
}

func TestDrainHookFailureRollsBack(t *testing.T) {
	b := newTestbed(t, 4, 2, 4096)
	b.place("ja", 2, 1, 1024, []string{"node000", "node001"})
	b.srv.OnDrain = func(node string) error { return fmt.Errorf("refused") }
	b.do(t, "POST", "/v1/nodes/node000/drain", nil, http.StatusConflict)
	b.locked(func() {
		if b.srv.Drains.IsDrained("node000") {
			t.Fatal("drain not rolled back")
		}
	})
}

// TestNodeResourceDimensions: the node endpoints report every
// dimension with capacity or usage, and /metrics exports the labeled
// per-node per-kind gauges.
func TestNodeResourceDimensions(t *testing.T) {
	b := newTestbed(t, 2, 2, 4096)
	// Upgrade node000 with extra dimensions and host a net-hungry VM.
	n0 := b.cfg.Node("node000")
	n0.Capacity.Set(resources.NetBW, 1000)
	n0.Capacity.Set(resources.DiskIO, 600)
	d := resources.New(1, 1024)
	d.Set(resources.NetBW, 250)
	v := vjob.NewVMRes("net-vm", "jn", d)
	b.cfg.AddVM(v)
	if err := b.cfg.SetRunning("net-vm", "node000"); err != nil {
		t.Fatal(err)
	}

	var st nodeJSON
	if err := json.Unmarshal(b.get(t, "/v1/nodes/node000", http.StatusOK), &st); err != nil {
		t.Fatal(err)
	}
	if st.Resources["net"].Used != 250 || st.Resources["net"].Capacity != 1000 {
		t.Fatalf("net dimension: %+v", st.Resources)
	}
	if st.Resources["cpu"].Used != 1 || st.Resources["cpu"].Capacity != 2 {
		t.Fatalf("cpu dimension: %+v", st.Resources)
	}
	if st.Resources["disk"].Capacity != 600 {
		t.Fatalf("disk dimension: %+v", st.Resources)
	}
	if st.UsedCPU != 1 || st.UsedMemory != 1024 {
		t.Fatalf("flat fields drifted: %+v", st)
	}
	// node001 stays 2-D: no net/disk entries.
	var st1 nodeJSON
	if err := json.Unmarshal(b.get(t, "/v1/nodes/node001", http.StatusOK), &st1); err != nil {
		t.Fatal(err)
	}
	if _, ok := st1.Resources["net"]; ok {
		t.Fatalf("2-D node grew a net dimension: %+v", st1.Resources)
	}
	if st1.Resources["memory"].Capacity != 4096 {
		t.Fatalf("memory dimension: %+v", st1.Resources)
	}

	body := string(b.get(t, "/metrics", http.StatusOK))
	for _, want := range []string{
		`cwcs_node_resource_used{node="node000",kind="net"} 250`,
		`cwcs_node_resource_capacity{node="node000",kind="net"} 1000`,
		`cwcs_node_resource_used{node="node001",kind="memory"} 0`,
		`cwcs_node_resource_capacity{node="node001",kind="cpu"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
	if strings.Contains(body, `{node="node001",kind="net"}`) {
		t.Fatalf("2-D node exports a net gauge:\n%s", body)
	}
}
