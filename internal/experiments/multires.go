package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"cwcs/internal/core"
	"cwcs/internal/resources"
	"cwcs/internal/sched"
	"cwcs/internal/vjob"
	"cwcs/internal/workload"
)

// MultiResOptions parameterizes the multi-dimensional packing study:
// a heterogeneous cluster (compute-, net- and disk-bound vjobs over
// nodes with CPU/memory/network/disk capacities) is reconfigured twice
// — once by a stack that only sees CPU and memory, once by the full
// 4-dimension model — and the study measures what the blind stack
// over-commits. No paper analogue: the paper packs the first two
// dimensions only (§4.3) and names nothing past them.
type MultiResOptions struct {
	// Nodes is the cluster size.
	Nodes int
	// NodeCPU/NodeMemory/NodeNet/NodeDisk are per-node capacities.
	NodeCPU, NodeMemory, NodeNet, NodeDisk int
	// VMFactor is the number of VMs generated per node.
	VMFactor float64
	// NetFraction / DiskFraction of the vjobs are net- / disk-bound
	// (see workload.Profile).
	NetFraction, DiskFraction float64
	// Timeout is the per-solve budget, identical for both sides.
	Timeout time.Duration
	// Seed drives configuration generation.
	Seed int64
	// Workers is the optimizer's portfolio width (0 = GOMAXPROCS).
	Workers int
	// Partitions is the optimizer's partition count (0 = auto).
	Partitions int
}

// DefaultMultiResOptions is the BENCH_multires.json scenario: a
// 500-node cluster, half of whose vjobs are bound on a dimension the
// 2-D model cannot see.
func DefaultMultiResOptions() MultiResOptions {
	return MultiResOptions{
		Nodes:   500,
		NodeCPU: 2, NodeMemory: 4096,
		NodeNet: workload.DefaultNodeNet, NodeDisk: workload.DefaultNodeDisk,
		VMFactor:    1.5,
		NetFraction: 0.3, DiskFraction: 0.2,
		Timeout: 2 * time.Second,
		Seed:    1,
	}
}

// MultiResSide is one solve of the study.
type MultiResSide struct {
	// Model names the side: "cpu+mem" or "4-dim".
	Model string
	// SolveMS is the solve wall-clock in milliseconds.
	SolveMS float64
	// Cost is the §4.2 plan cost; Optimal whether the model was proven.
	Cost    int
	Optimal bool
	// Err records a failed solve (empty on success).
	Err string
	// Running counts VMs left running by the destination.
	Running int
	// Violations counts, per resource kind, the capacity violations of
	// the destination measured against the TRUE demands — the blind
	// side computes its destination on stripped demands, so this is
	// where its over-commitment surfaces.
	Violations map[string]int
}

// ViolationFree reports whether the side's destination over-commits
// nothing on any dimension.
func (s MultiResSide) ViolationFree() bool {
	if s.Err != "" {
		return false
	}
	for _, n := range s.Violations {
		if n > 0 {
			return false
		}
	}
	return true
}

// MultiResResult is the study's measurements.
type MultiResResult struct {
	Nodes, VMs int
	// NetBoundVMs / DiskBoundVMs count VMs whose demand reaches the
	// bound profiles' headline quantity on the respective dimension
	// (disk-bound VMs carry a light net demand too, and vice versa, so
	// a non-zero test would double-count).
	NetBoundVMs, DiskBoundVMs int
	// SrcViolations counts the initial placement's violations per
	// kind (the memory-first-fit start over-commits freely).
	SrcViolations map[string]int
	// Blind is the CPU+memory-only stack; Aware the 4-dimension model.
	Blind, Aware MultiResSide
}

// stripExtras deep-copies the configuration with every extra dimension
// zeroed on nodes and VMs: the view a CPU+memory-only stack observes.
// VM and node objects are fresh, so mutating demands cannot leak back.
func stripExtras(src *vjob.Configuration) *vjob.Configuration {
	out := vjob.NewConfiguration()
	for _, n := range src.Nodes() {
		out.AddNode(vjob.NewNode(n.Name, n.CPU(), n.Memory()))
	}
	for _, v := range src.VMs() {
		out.AddVM(vjob.NewVM(v.Name, v.VJob, v.CPUDemand(), v.MemoryDemand()))
	}
	for _, v := range src.VMs() {
		switch src.StateOf(v.Name) {
		case vjob.Running:
			_ = out.SetRunning(v.Name, src.HostOf(v.Name))
		case vjob.Sleeping:
			_ = out.SetSleeping(v.Name, src.ImageHostOf(v.Name))
		}
	}
	return out
}

// jobsOf regroups the configuration's VMs into vjobs, preserving the
// priority order of the originals — the blind stack needs vjob handles
// over its own stripped VM objects.
func jobsOf(cfg *vjob.Configuration, orig []*vjob.VJob) []*vjob.VJob {
	out := make([]*vjob.VJob, 0, len(orig))
	for _, j := range orig {
		vms := make([]*vjob.VM, 0, len(j.VMs))
		for _, v := range j.VMs {
			if sv := cfg.VM(v.Name); sv != nil {
				vms = append(vms, sv)
			}
		}
		nj := vjob.NewVJob(j.Name, j.Priority, vms...)
		nj.Submitted = j.Submitted
		out = append(out, nj)
	}
	return out
}

// transplant replays dst's states and placements onto a clone of the
// true configuration, so a destination computed on stripped demands
// can be audited against the demands it ignored.
func transplant(trueSrc, dst *vjob.Configuration) (*vjob.Configuration, error) {
	out := trueSrc.Clone()
	for _, v := range trueSrc.VMs() {
		var err error
		switch dst.StateOf(v.Name) {
		case vjob.Running:
			err = out.SetRunning(v.Name, dst.HostOf(v.Name))
		case vjob.Sleeping:
			err = out.SetSleeping(v.Name, dst.ImageHostOf(v.Name))
		case vjob.Waiting:
			err = out.SetWaiting(v.Name)
		case vjob.Terminated:
			out.RemoveVM(v.Name)
		}
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// violationsByKind tallies the configuration's capacity violations per
// resource kind (all kinds present, zero when clean).
func violationsByKind(cfg *vjob.Configuration) map[string]int {
	out := make(map[string]int, resources.NumKinds())
	for _, k := range resources.Kinds() {
		out[k.String()] = 0
	}
	for _, v := range cfg.Violations() {
		out[v.Resource]++
	}
	return out
}

// RunMultiRes executes the study.
func RunMultiRes(opts MultiResOptions) MultiResResult {
	rng := rand.New(rand.NewSource(opts.Seed))
	g := workload.GenerateConfiguration(rng, workload.GenerateOptions{
		Nodes:   opts.Nodes,
		NodeCPU: opts.NodeCPU, NodeMemory: opts.NodeMemory,
		NodeNet: opts.NodeNet, NodeDisk: opts.NodeDisk,
		VMs:         int(float64(opts.Nodes) * opts.VMFactor),
		NetFraction: opts.NetFraction, DiskFraction: opts.DiskFraction,
	})
	res := MultiResResult{
		Nodes:         opts.Nodes,
		VMs:           g.Cfg.NumVMs(),
		SrcViolations: violationsByKind(g.Cfg),
	}
	for _, v := range g.Cfg.VMs() {
		if v.Demand.Get(resources.NetBW) >= workload.NetBoundBandwidth {
			res.NetBoundVMs++
		}
		if v.Demand.Get(resources.DiskIO) >= workload.DiskBoundThroughput {
			res.DiskBoundVMs++
		}
	}

	opt := core.Optimizer{Timeout: opts.Timeout, Workers: opts.Workers, Partitions: opts.Partitions}

	// Blind side: decision AND optimization see stripped demands, then
	// the destination is audited against the truth.
	blindSrc := stripExtras(g.Cfg)
	blindJobs := jobsOf(blindSrc, g.Jobs)
	res.Blind = solveSide("cpu+mem", opt, core.Problem{
		Src:    blindSrc,
		Target: sched.Consolidation{}.Decide(blindSrc, blindJobs),
	}, g.Cfg)

	// Aware side: the full 4-dimension model end to end.
	res.Aware = solveSide("4-dim", opt, core.Problem{
		Src:    g.Cfg,
		Target: sched.Consolidation{}.Decide(g.Cfg, g.Jobs),
	}, g.Cfg)
	return res
}

// solveSide runs one optimization and audits its destination against
// the true configuration. Violations stays nil until the audit ran: a
// failed solve has no destination, and reporting the source's counts
// in its place would attribute the initial over-commitment to the
// model.
func solveSide(model string, opt core.Optimizer, p core.Problem, trueSrc *vjob.Configuration) MultiResSide {
	side := MultiResSide{Model: model}
	start := time.Now()
	r, err := opt.Solve(p)
	side.SolveMS = float64(time.Since(start).Microseconds()) / 1000
	if err != nil {
		side.Err = err.Error()
		return side
	}
	side.Cost, side.Optimal = r.Cost, r.Optimal
	truth, terr := transplant(trueSrc, r.Dst)
	if terr != nil {
		side.Err = terr.Error()
		return side
	}
	side.Running = len(truth.InState(vjob.Running))
	side.Violations = violationsByKind(truth)
	return side
}

// MultiResTable renders the study.
func MultiResTable(r MultiResResult) string {
	var b strings.Builder
	b.WriteString("Multi-dimensional packing: CPU+mem-only vs 4-dim model\n")
	fmt.Fprintf(&b, "%d nodes, %d VMs (%d net-bound, %d disk-bound); initial violations %s\n",
		r.Nodes, r.VMs, r.NetBoundVMs, r.DiskBoundVMs, renderViolations(r.SrcViolations))
	fmt.Fprintf(&b, "%8s | %10s %10s %4s %8s | %s\n", "model", "solve_ms", "cost", "opt", "running", "violations (true demands)")
	for _, s := range []MultiResSide{r.Blind, r.Aware} {
		if s.Err != "" {
			fmt.Fprintf(&b, "%8s | FAILED: %s\n", s.Model, s.Err)
			continue
		}
		fmt.Fprintf(&b, "%8s | %10.0f %10d %4v %8d | %s\n",
			s.Model, s.SolveMS, s.Cost, s.Optimal, s.Running, renderViolations(s.Violations))
	}
	return b.String()
}

// renderViolations lists the per-kind counts in registry order.
func renderViolations(m map[string]int) string {
	parts := make([]string, 0, len(m))
	for _, k := range resources.Kinds() {
		parts = append(parts, fmt.Sprintf("%s=%d", k, m[k.String()]))
	}
	return strings.Join(parts, " ")
}

// MultiResCSV renders the study as CSV for external plotting. A failed
// solve has no destination audit, so its violation columns stay empty
// rather than echoing counts that would read as results.
func MultiResCSV(r MultiResResult) string {
	var b strings.Builder
	b.WriteString("model,ok,solve_ms,cost,optimal,running,cpu_viol,memory_viol,net_viol,disk_viol\n")
	for _, s := range []MultiResSide{r.Blind, r.Aware} {
		if s.Err != "" {
			fmt.Fprintf(&b, "%s,false,%.1f,,,,,,,\n", s.Model, s.SolveMS)
			continue
		}
		fmt.Fprintf(&b, "%s,true,%.1f,%d,%v,%d,%d,%d,%d,%d\n",
			s.Model, s.SolveMS, s.Cost, s.Optimal, s.Running,
			s.Violations["cpu"], s.Violations["memory"], s.Violations["net"], s.Violations["disk"])
	}
	return b.String()
}
