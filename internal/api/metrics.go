package api

import (
	"fmt"
	"net/http"
	"strings"

	"cwcs/internal/obs"
	"cwcs/internal/resources"
)

// metric is one exposition line group of GET /metrics.
type metric struct {
	name, help, typ string
	value           float64
}

// metricsSnapshot gathers every gauge/counter under Exec.
func (s *Server) metricsSnapshot() []metric {
	snap := s.snapshot()
	g := func(name, help, typ string, v float64) metric {
		return metric{name: name, help: help, typ: typ, value: v}
	}
	executing := 0.0
	if snap.Executing {
		executing = 1
	}
	return []metric{
		g("cwcs_iterations_total", "Wake-ups that ran the decision module.", "counter", float64(snap.Loop.Iterations)),
		g("cwcs_solves_total", "Optimizer invocations (monolithic solves plus dirty-slice solves).", "counter", float64(snap.Loop.SolverCalls)),
		g("cwcs_sub_solves_total", "Independent sub-problem optimizations, the comparable solve unit.", "counter", float64(snap.Loop.SubSolves)),
		g("cwcs_slice_solves_total", "Solver invocations restricted to a dirty partition slice.", "counter", float64(snap.Loop.SliceSolves)),
		g("cwcs_full_solves_total", "Incremental iterations that fell back to the monolithic model.", "counter", float64(snap.Loop.FullSolves)),
		g("cwcs_repairs_total", "In-flight plan repairs spliced successfully.", "counter", float64(snap.Loop.Repairs)),
		g("cwcs_failed_repairs_total", "Repair attempts that fell back to a full re-solve.", "counter", float64(snap.Loop.FailedRepairs)),
		g("cwcs_widened_repairs_total", "Spliced repairs that needed region widening over a broken dependency chain.", "counter", float64(snap.Loop.WidenedRepairs)),
		g("cwcs_repair_expansions_total", "Region-widening steps across all repairs (depth = expansions/widened).", "counter", float64(snap.Loop.RepairExpansions)),
		g("cwcs_events_total", "Cluster events received by the loop.", "counter", float64(snap.Loop.Events)),
		g("cwcs_events_coalesced_total", "Events absorbed into an armed wake-up or in-flight execution.", "counter", float64(snap.Loop.Coalesced)),
		g("cwcs_partition_reuses_total", "Wake-ups that reused the cached partition carve.", "counter", float64(snap.Loop.PartitionReuses)),
		g("cwcs_switches_total", "Executed cluster-wide context switches.", "counter", float64(snap.Switches)),
		g("cwcs_violation_seconds_total", "Integral of capacity violations over virtual time.", "counter", snap.ViolationSeconds),
		g("cwcs_queue_depth", "VJobs in the submission queue.", "gauge", float64(snap.QueueDepth)),
		g("cwcs_draining_nodes", "Nodes currently under a drain order.", "gauge", float64(len(snap.DrainingNodes))),
		g("cwcs_executing", "1 while a context switch is executing.", "gauge", executing),
		g("cwcs_virtual_time_seconds", "Current virtual time of the cluster.", "gauge", snap.Now),
	}
}

// nodeGauge is one labeled sample of the per-node resource gauges.
type nodeGauge struct {
	node, kind     string
	used, capacity float64
}

// nodeGauges walks the configuration once under Exec and returns one
// sample per node and per dimension the node offers (or over-uses), in
// node then registry order.
func (s *Server) nodeGauges() []nodeGauge {
	var out []nodeGauge
	s.exec(func() {
		cfg := s.Config()
		load := loadByNode(cfg)
		for _, n := range cfg.Nodes() {
			var used resources.Vector
			if ld := load[n.Name]; ld != nil {
				used = ld.used
			}
			for _, k := range resources.Kinds() {
				if n.Capacity.Get(k) == 0 && used.Get(k) == 0 {
					continue
				}
				out = append(out, nodeGauge{
					node: n.Name, kind: k.String(),
					used: float64(used.Get(k)), capacity: float64(n.Capacity.Get(k)),
				})
			}
		}
	})
	return out
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.Stats == nil {
		writeError(w, http.StatusNotImplemented, "no stats source")
		return
	}
	var b strings.Builder
	for _, m := range s.metricsSnapshot() {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", m.name, m.help, m.name, m.typ, m.name, m.value)
	}
	if s.Config != nil {
		gauges := s.nodeGauges()
		b.WriteString("# HELP cwcs_node_resource_used Per-node per-dimension resource demand of running VMs.\n# TYPE cwcs_node_resource_used gauge\n")
		for _, g := range gauges {
			fmt.Fprintf(&b, "cwcs_node_resource_used{node=%q,kind=%q} %g\n", g.node, g.kind, g.used)
		}
		b.WriteString("# HELP cwcs_node_resource_capacity Per-node per-dimension resource capacity.\n# TYPE cwcs_node_resource_capacity gauge\n")
		for _, g := range gauges {
			fmt.Fprintf(&b, "cwcs_node_resource_capacity{node=%q,kind=%q} %g\n", g.node, g.kind, g.capacity)
		}
	}
	info := obs.BuildInfo()
	fmt.Fprintf(&b, "# HELP cwcs_build_info Build metadata of the serving binary; the value is always 1.\n# TYPE cwcs_build_info gauge\ncwcs_build_info{version=%q,go_version=%q} 1\n",
		info.Version, info.GoVersion)
	if s.Trace != nil {
		fmt.Fprintf(&b, "# HELP cwcs_watch_drops_total Watch events dropped (and subscribers disconnected) because a client fell behind.\n# TYPE cwcs_watch_drops_total counter\ncwcs_watch_drops_total %d\n",
			s.Trace.WatchDrops())
		writeHistograms(&b, s.Trace.Histograms())
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(b.String()))
}
